package ntgd_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"ntgd"
)

// TestSolverWallClock pins the resource-governance contract of
// Options.MaxWallClock: the run ends promptly with an error that is
// both ErrWallClock and (being a budget) ErrBudget, partial stats are
// preserved, and the Solver remains reusable — a second run behaves
// the same rather than wedging.
func TestSolverWallClock(t *testing.T) {
	prog := subsetProgram(18) // 2^18 models: never finishes in 5ms
	baseline := runtime.NumGoroutine()
	s := ntgd.MustCompile(prog, ntgd.CompileOptions{
		Options: ntgd.Options{Workers: 2, MaxWallClock: 5 * time.Millisecond},
	})
	for round := 0; round < 2; round++ {
		_, err := collectModels(context.Background(), s)
		if !errors.Is(err, ntgd.ErrWallClock) {
			t.Fatalf("round %d: err = %v, want ErrWallClock", round, err)
		}
		if !errors.Is(err, ntgd.ErrBudget) {
			t.Fatalf("round %d: ErrWallClock must also match ErrBudget, got %v", round, err)
		}
		if !s.Exhausted() {
			t.Fatalf("round %d: Exhausted() = false after a wall-clock abort", round)
		}
	}
	if st := s.Stats(); st.Nodes == 0 {
		t.Fatalf("partial stats lost: %+v", st)
	}
	awaitGoroutines(t, baseline)
}

// TestSolverMemoryWatermark pins Options.MaxMemory: tripping the
// retained-allocation proxy aborts the whole run with ErrMemory,
// partial stats survive, and the Solver stays reusable with the same
// deterministic outcome.
func TestSolverMemoryWatermark(t *testing.T) {
	prog := subsetProgram(6)
	baseline := runtime.NumGoroutine()
	s := ntgd.MustCompile(prog, ntgd.CompileOptions{
		Options: ntgd.Options{MaxMemory: 8},
	})
	var firstModels int
	for round := 0; round < 2; round++ {
		models, err := collectModels(context.Background(), s)
		if !errors.Is(err, ntgd.ErrMemory) {
			t.Fatalf("round %d: err = %v, want ErrMemory", round, err)
		}
		if errors.Is(err, ntgd.ErrBudget) {
			t.Fatalf("round %d: ErrMemory must be distinct from ErrBudget", round)
		}
		if !s.Exhausted() {
			t.Fatalf("round %d: Exhausted() = false after a memory abort", round)
		}
		if round == 0 {
			firstModels = len(models)
		} else if len(models) != firstModels {
			t.Fatalf("sequential memory aborts diverged: %d then %d models", firstModels, len(models))
		}
	}
	if st := s.Stats(); st.Nodes == 0 {
		t.Fatalf("partial stats lost: %+v", st)
	}
	// The same program without the watermark still enumerates fully.
	free := ntgd.MustCompile(prog, ntgd.CompileOptions{})
	if models, err := collectModels(context.Background(), free); err != nil || len(models) != 64 {
		t.Fatalf("unrestricted run: %d models, err %v; want 64, nil", len(models), err)
	}
	awaitGoroutines(t, baseline)
}

// TestSolverAdmissionGate pins Options.MaxConcurrentRuns: with one
// slot, a second call arriving while an enumeration holds the gate
// waits — and if its context expires first it is refused with
// ErrAdmission (which also matches the context cause). Once the gate
// frees, the same call succeeds.
func TestSolverAdmissionGate(t *testing.T) {
	prog := ntgd.MustParse(choiceSrc)
	qBool := prog.Queries[0]
	baseline := runtime.NumGoroutine()
	s := ntgd.MustCompile(prog, ntgd.CompileOptions{
		Options: ntgd.Options{MaxConcurrentRuns: 1},
	})
	var refused error
	var refusedRes ntgd.QAResult
	for _, err := range s.Models(context.Background()) {
		if err != nil {
			t.Fatalf("enumeration: %v", err)
		}
		if refused == nil {
			// The loop body runs while the enumeration holds the only
			// slot, so an already-expired context cannot be admitted.
			ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
			refusedRes, refused = s.Entails(ctx, qBool, ntgd.Brave)
			cancel()
		}
	}
	if !errors.Is(refused, ntgd.ErrAdmission) {
		t.Fatalf("in-flight Entails err = %v, want ErrAdmission", refused)
	}
	if !errors.Is(refused, context.DeadlineExceeded) {
		t.Fatalf("ErrAdmission must carry the context cause, got %v", refused)
	}
	if !refusedRes.Exhausted {
		t.Fatal("refused run must report Exhausted")
	}
	// Gate released: the identical call now succeeds.
	res, err := s.Entails(context.Background(), qBool, ntgd.Brave)
	if err != nil || !res.Entailed {
		t.Fatalf("post-release Entails = (%v, %v), want (true, nil)", res.Entailed, err)
	}
	awaitGoroutines(t, baseline)
}

// TestSolverVisitorPanic pins satellite #2: a panic in the range loop
// body must propagate to the caller (range-over-func semantics), but
// only after the search workers have been stopped and joined — no
// leaked goroutines, no wedged Solver; a follow-up enumeration
// completes in full.
func TestSolverVisitorPanic(t *testing.T) {
	prog := subsetProgram(8) // 256 models
	baseline := runtime.NumGoroutine()
	s := ntgd.MustCompile(prog, ntgd.CompileOptions{
		Options: ntgd.Options{Workers: 4},
	})
	func() {
		defer func() {
			if r := recover(); r != "visitor boom" {
				t.Fatalf("recovered %v, want the visitor's own panic value", r)
			}
		}()
		n := 0
		for _, err := range s.Models(context.Background()) {
			if err != nil {
				t.Errorf("unexpected stream error before panic: %v", err)
				return
			}
			n++
			if n == 3 {
				panic("visitor boom")
			}
		}
		t.Error("loop completed; the panic was swallowed")
	}()
	awaitGoroutines(t, baseline)
	models, err := collectModels(context.Background(), s)
	if err != nil || len(models) != 256 {
		t.Fatalf("post-panic enumeration: %d models, err %v; want 256, nil", len(models), err)
	}
}

// TestSolverSeqReinvocation pins the other half of satellite #2: the
// iter.Seq2 returned by Models may be ranged over more than once; each
// invocation is an independent, complete run.
func TestSolverSeqReinvocation(t *testing.T) {
	prog := subsetProgram(4) // 16 models
	s := ntgd.MustCompile(prog, ntgd.CompileOptions{})
	seq := s.Models(context.Background())
	var first, second []*ntgd.FactStore
	for m, err := range seq {
		if err != nil {
			t.Fatalf("first invocation: %v", err)
		}
		first = append(first, m)
	}
	for m, err := range seq {
		if err != nil {
			t.Fatalf("second invocation: %v", err)
		}
		second = append(second, m)
	}
	// Delivery order is scheduling-dependent under a parallel pool;
	// the contract is set equality.
	if len(first) != 16 || !equalStringSlices(canonicalSet(first), canonicalSet(second)) {
		t.Fatalf("invocations diverged: %d vs %d models", len(first), len(second))
	}
}
