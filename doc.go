// Package ntgd is a faithful, from-scratch implementation of
//
//	Mario Alviano, Michael Morak, Andreas Pieris.
//	"Stable Model Semantics for Tuple-Generating Dependencies
//	Revisited." PODS 2017.
//
// The paper proposes a new stable model semantics for normal
// tuple-generating dependencies (NTGDs — TGDs whose bodies may use
// default negation) that applies directly to rules with existentially
// quantified variables, without Skolemization, via the
// Ferraris–Lee–Lifschitz second-order characterization of stable
// models. This library implements that semantics operationally,
// together with every baseline and construction the paper discusses:
//
//   - the new SO-based semantics (query answering, model enumeration,
//     the Proposition 11 stability check) — ntgd.Compile with
//     Semantics SO;
//   - the classical LP approach (Skolemization + grounding + ground
//     ASP solving, Section 3.1) — Semantics LP;
//   - the operational chase-based semantics of Baget et al. [3] —
//     Semantics Operational;
//   - the bounded equality-friendly well-founded semantics of [21] —
//     internal/efwfs via ntgd.EFWFSEntails;
//   - the decidability paradigms (weak-acyclicity, stickiness with the
//     Figure 1 marking procedure, guardedness) — ntgd.Classify;
//   - the chase for positive TGDs — ntgd.Chase;
//   - the SM[D,Σ]/MM[D,Σ] second-order formulas — ntgd.SMFormula,
//     ntgd.MMFormula;
//   - the disjunction elimination of Lemma 13 and the DATALOG¬,∨ →
//     WATGD¬ translation of Theorems 15/16 — ntgd.EliminateDisjunction,
//     ntgd.DatalogToWATGD;
//   - the declarative encodings of Sections 5.3 and 7.1 (2-QBF,
//     certain k-colorability, consistent query answering) —
//     internal/encodings, surfaced through cmd/smsbench.
//
// # Surface syntax
//
// Programs are written in a Datalog-style syntax; head variables
// absent from the body are existentially quantified:
//
//	person(alice).
//	person(X) -> hasFather(X,Y).
//	hasFather(X,Y) -> sameAs(Y,Y).
//	hasFather(X,Y), hasFather(X,Z), not sameAs(Y,Z) -> abnormal(X).
//	?- person(X), not abnormal(X).
//
// # Quick start
//
// Compile a program once into a Solver session, then stream models and
// answer queries against the compiled artifacts:
//
//	prog, err := ntgd.Parse(src)
//	solver, err := ntgd.Compile(prog, ntgd.CompileOptions{Semantics: ntgd.SO})
//	for m, err := range solver.Models(ctx) {
//		if err != nil { ... }         // ErrBudget or ctx.Err()
//		fmt.Println(m.CanonicalString())
//	}
//	verdict, err := solver.Entails(ctx, prog.Queries[0], ntgd.Cautious)
//
// See the examples/ directory for runnable programs and EXPERIMENTS.md
// for the paper-reproduction experiments.
//
// # Solver sessions
//
// ntgd.Compile performs everything derivable from the program alone
// exactly once — validation, syntactic classification, per-rule search
// metadata and chase-derived atom budgets (SO/Operational), and the
// Skolemization + grounding pipeline (LP) — and returns a Solver bound
// to one Semantics. All three semantics run behind one internal engine
// interface, so Models, Entails, Answers, and Consistent behave
// uniformly: the same options plumbing, the same Stats and Exhausted
// reporting, the same budget error (ErrBudget).
//
// Solver.Models returns an iter.Seq2 stream: models are delivered as
// the search finds them, breaking out of the range loop releases the
// search immediately, and cancelling the context (or letting its
// deadline expire) aborts mid-search, yielding the context error as
// the stream's final element. Solver.Stats reports the cumulative
// search effort — including runs cut short — and the Solver remains
// reusable after a cancellation or budget hit. Per-query witness-pool
// extension (the query's constants, Example 2's bob) is handled
// automatically by Entails and Answers.
//
// The package-level one-shot functions (StableModels, Entails,
// Answers, and their ...Under variants) are retained as deprecated
// wrappers: each compiles a throwaway Solver per call and delegates,
// so existing callers keep working but pay the compile cost every
// time.
//
// # Robustness
//
// A Solver is built for long-lived concurrent hosts. It is safe for
// concurrent use — any number of goroutines may run Models, Entails,
// Answers, and Consistent against one compiled Solver; runs share only
// immutable artifacts and internally synchronized caches, and
// Options.MaxConcurrentRuns bounds how many are admitted at once.
// Every terminal error matches exactly one class of a small taxonomy
// under errors.Is: ErrBudget (node, atom, or — via ErrWallClock, which
// is itself a budget — Options.MaxWallClock exhaustion), ErrMemory
// (the Options.MaxMemory retained-allocation watermark: bytes of
// packed tuples added across all branches plus stability-clause
// literals), ErrAdmission
// (the gate refused a run because its context ended while queued; the
// context cause is wrapped), and ErrInternal (an engine panic,
// recovered at the worker boundary and converted to a typed
// *engine.InternalError carrying the panic value and stack). In every
// case the search workers are stopped and joined, partial Stats are
// recorded, and the Solver remains reusable. Misuse is hardened the
// same way: the Models sequence may be ranged more than once (each
// invocation is an independent run), and a panic in the range loop
// body propagates to the caller — as range-over-func semantics
// require — only after the workers have been joined. The
// internal/failpoint package (built with -tags failpoint, a no-op
// otherwise) injects panics at the engine's riskiest seams, and a
// chaos suite drives every site to pin these guarantees.
//
// # Serving
//
// The ntgdd daemon (cmd/ntgdd, implemented by internal/server) puts a
// long-lived HTTP/JSON front end over the Solver stack:
//
//	go run ./cmd/ntgdd -addr 127.0.0.1:8377 -max-runs 16 &
//	curl -s http://127.0.0.1:8377/v1/solve -d '{"program":"p(a). p(X) -> q(X)."}'
//
// POST /v1/solve, /v1/entails, /v1/answers, and /v1/consistent carry a
// program plus a query; /v1/batch runs many queries against one
// compiled program in a single round trip. Programs are compiled once
// and cached by canonical hash — facts and rules are sorted and
// deduplicated, so submissions differing only in whitespace, comments,
// or ordering share one entry — with single-flight compilation and LRU
// eviction. Every request runs under a deadline (timeout_ms, clamped
// by the server), client disconnects cancel the run through the same
// context plumbing as Models(ctx), and one shared admission Gate
// (CompileOptions.Gate) bounds concurrent engine runs across all
// cached programs. The error taxonomy above maps onto distinct HTTP
// statuses mirroring the ntgdctl exit-code contract: 422 budget,
// 429 admission, 504 timeout, 507 memory, 500 internal — every error
// body carrying the partial Stats of the interrupted run. /healthz and
// /statz expose liveness and cumulative cache/engine counters, and
// SIGTERM drains gracefully. cmd/ntgdbench drives an experiments.json
// grid against the daemon at rising client concurrency, reporting
// p50/p95/p99 latency and models/sec into the BENCH_*.json trajectory;
// see examples/server for a runnable quickstart.
//
// # Overload
//
// Under sustained overload the daemon sheds load instead of queueing
// it. The admission Gate (ntgd.NewGateQueue) bounds not just the
// in-flight runs but the waiting line behind them, and refuses — in
// microseconds, not after a deadline expires — any request that
// arrives to a full queue or whose estimated wait (queue length ×
// an exponentially-weighted moving average of recent run times)
// already exceeds its deadline. Shedding is an opt-in of the bounded
// queue (cmd/ntgdd -max-queued): an unbounded gate keeps the
// historical parking behavior exactly. A refusal is an *ntgd.AdmissionError
// carrying the shed reason (ShedQueueFull, ShedDeadlineHopeless,
// ShedQueuedExpired) and a RetryAfter hint; the server surfaces it as
// 429 with a Retry-After header and retry_after_ms in the body —
// every 429/503 the daemon emits carries that guidance. Oversized
// request bodies are a distinct non-retryable class: 413
// request_too_large. A memory watchdog (-mem-soft/-mem-hard) samples
// the live heap and browns the daemon out under pressure: past the
// soft watermark it evicts the program and database caches and halves
// the admission queue; past the hard watermark it refuses API work
// outright with 503 + Retry-After until the heap recedes. /statz
// reports the gate's queue depth, per-reason shed counters, the run
// time EWMA, and the current pressure level.
//
// The ntgdclient package is the matching client: it retries exactly
// the transient statuses (429, 503, 504, and transport errors) with
// capped exponential backoff and full jitter, never sleeping less
// than the server's Retry-After hint and never exceeding a per-call
// retry budget; deterministic failures (400, 404, 413, 422, 500, 507)
// surface immediately as *ntgdclient.APIError. ntgdbench -overload
// measures the policy end to end — open-loop load at 1x/2x/4x
// measured capacity against a shedding and a parking daemon —
// recording in BENCH_*.json that shedding preserves goodput where
// parking collapses; see examples/ntgdclient for a runnable
// quickstart.
//
// # Storage
//
// Fact stores are interned and packed (internal/logic). Every
// predicate name and ground term resolves once, per store chain,
// to a dense uint32 id in a shared logic.Symbols table; a ground fact
// is a FactKey — the predicate id followed by one id per argument,
// 4 bytes each — and the indexes (per-predicate lists, posting lists,
// the incremental domain) hold packed ids, not strings or terms.
// Membership probes, joins, and canonical ordering all reduce to
// integer comparisons, and the memory watermark charges exactly the
// packed bytes (TupleBytes).
//
// The root of every snapshot chain sits behind the logic.Storage
// interface. The default in-memory implementation keeps the packed
// keys in one contiguous blob under an open-addressed index. It has
// exactly one write path: AddAll renders and interns the whole batch
// under a single interner lock, deduplicates against the
// pre-reserved key index, and builds the posting lists by counting
// sort over the dense ids — per-fact Add is the degenerate one-atom
// batch, paying the per-call setup that bulk loads amortize
// (BenchmarkBulkLoad pins the ≥5x gap on a 10⁶-fact base). Snapshot
// layers above the root are unchanged by the storage API: layer
// reads merge over Storage exactly as they merge over parent layers.
// Alternative backings plug in through ntgd.CompileOptions.Store or,
// for reusable pre-loaded fact bases, an ntgd.Database built once
// and shared across compiles; a randomized differential suite plus
// FuzzStorage pin any Storage-visible behavior to the per-fact
// reference build.
//
// # Evaluation engine
//
// Every verdict funnels through homomorphism search over fact stores
// (internal/logic), which is indexed and incremental:
//
//   - FactStore maintains, besides the per-predicate index, a
//     (predicate, argument-position, ground-term) posting-list index,
//     updated on every Add. FindHoms probes it whenever a body-atom
//     position is ground under the substitution built so far — the
//     smallest matching posting list is intersected in place instead of
//     scanning the predicate — and a body atom that is fully ground
//     reduces to a single hash probe.
//
//   - Fixpoint computations are delta-driven (semi-naive): every atom
//     has a stable store index, so "the atoms derived last round" is an
//     index window, and FindHomsFrom enumerates exactly the
//     homomorphisms that use at least one window atom. The chase
//     (internal/chase), the grounder's derivable base
//     (internal/ground), and the T∞ operator (internal/core) all seed
//     their rounds this way, turning O(rounds × store) re-scans into
//     O(new facts) work. The same discipline drives the propositional
//     well-founded fixpoint (internal/asp) via occurrence lists and
//     counters, and the circumscription subset checks (internal/core)
//     via rule instances materialized once and replayed as bitmask
//     operations.
//
//   - Join order is planned, not written: before enumeration, the body
//     atoms of FindHoms/FindHomsFrom are reordered by a greedy
//     selectivity planner (internal/logic/plan.go) — atoms fully
//     ground under the bindings so far are pushed ahead of all joins
//     (each is one hash probe), then atoms are picked by class (bound
//     variable join, ground-argument indexed scan, unconstrained scan)
//     and, within a class, by smallest current candidate estimate.
//     Long-lived callers (the trigger agenda, the stability sessions,
//     the chase) hold a per-rule-body plan cache (logic.BodyPlans)
//     keyed by delta seed and binding pattern, shared across parallel
//     workers via lock-free lookups, and re-planned only when a
//     predicate's fact count grows past a threshold. In a delta search
//     the seed atom always stays first, so the exactly-once window
//     semantics is untouched. Hom emission order is explicitly NOT
//     part of the contract — consumers that need plan-independent
//     determinism impose their own order (the search orders branching
//     triggers by canonical trigger key; see internal/core), and
//     fuzz + differential suites pin planner-on against planner-off
//     and the naive oracle.
//
// The stable model search itself (internal/core) is incremental along
// both axes that dominate its cost:
//
//   - Branching uses copy-on-write store snapshots: FactStore.Snapshot
//     returns an O(1) child layer that shares the parent's atoms and
//     indexes and records only its own additions, with every read —
//     hash probes, posting lists, Domain, canonical rendering — merged
//     transparently across the layer chain. Store indices stay global
//     across a chain, so delta windows survive branching. Chains deeper
//     than a fixed cap flatten into a fresh root; the store's domain
//     (its constant/null term set) is maintained incrementally by Add.
//   - Trigger detection is agenda-driven: each search node carries a
//     queue of candidate triggers, seeded once at the root and extended
//     per node by sweeping only the store delta (FindHomsFrom above the
//     node's high-water mark). Entries are re-validated when popped —
//     a satisfied head disjunct, a derived negative body instance, or a
//     deferral retires a trigger permanently, since all three are
//     monotone along a branch.
//   - Branch exploration is parallel: because every branch child is an
//     isolated snapshot with its own agenda, independent sibling
//     subtrees are explored by a bounded worker pool
//     (Options.Workers; 0 = GOMAXPROCS, 1 = sequential). Idle workers
//     pick up branch children as they are created; a shared
//     deduplicating sink delivers models on the caller's goroutine.
//     Per-node branch-trigger selection order — which is part of the
//     semantics, since witness pools are drawn from the domain at
//     branch time — is unchanged, so a complete enumeration emits a
//     canonical model set bit-identical to the sequential search;
//     only Workers == 1 additionally fixes the delivery order.
//   - Stability checking is session-based: the Proposition 11 check
//     (no J with D ⊆ J ⊊ M⁺ satisfies the τ-translation) is encoded
//     into CNF incrementally along the search tree instead of from
//     scratch per candidate model. A per-state stability session
//     mirrors the snapshot chain — each layer owns the clauses and
//     atom variables of its store window, keyed by global store index,
//     and a child extends its parent by encoding only the delta:
//     FindHomsFrom above the parent's high-water mark for new body
//     homomorphisms, plus completion joins that chain newly visible
//     head witnesses onto existing clauses through extension-tail
//     literals. One CDCL SAT solver instance (internal/sat:
//     solve-under-assumptions leaving clauses intact, first-UIP clause
//     learning, copy-on-extend Clone at worker forks) serves every
//     model emitted beneath a branch; the per-model conditions — which
//     homomorphisms are unblocked in M, each clause's latest witness
//     set, and the proper-subset requirement — are assumptions and
//     activation literals, never rebuilt formulas.
//
// The pre-index code paths are retained package-privately
// (logic.naiveFindHoms, chase.runNaive, asp.gammaNaive, the naive
// minimality enumerations, core.findTriggerNaive — the full-rescan
// trigger detection behind the agenda-based search — and
// core.stableAgainstSubsetsNaive, the full-rebuild stability encoder
// behind the sessions) as oracles: randomized differential tests pin
// the optimized engines to them, so future changes to the index or
// the delta discipline are caught by `go test ./...`.
package ntgd
