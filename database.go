package ntgd

import (
	"fmt"
	"sync"

	"ntgd/internal/logic"
)

// Database is a bulk-loaded fact base shared across compiles. Build one
// with NewDatabase, load it with AddFacts (any number of calls, any
// batch size), and seal it with Freeze; compiling against it then costs
// O(1) per Solver — every Solver layers a copy-on-write snapshot over
// the same frozen root, so a large extensional database is interned,
// packed, and indexed exactly once no matter how many programs query
// it.
//
//	db := ntgd.NewDatabase()
//	if err := db.AddFacts(facts...); err != nil { ... }
//	db.Freeze()
//	s, err := ntgd.Compile(prog, ntgd.CompileOptions{Database: db})
//
// Compile freezes an unfrozen Database automatically, so the explicit
// Freeze call is only needed to front-load the bulk load (or to make
// later AddFacts calls fail fast). A frozen Database is immutable and
// safe for any number of concurrent Compile and query calls; the
// shared Symbols table keeps growing as programs intern new terms,
// which is safe by design (interning is monotonic and internally
// synchronized).
type Database struct {
	mu     sync.Mutex
	store  *logic.FactStore
	pend   []Atom
	frozen bool
}

// NewDatabase returns an empty fact base backed by the default
// in-memory storage.
func NewDatabase() *Database {
	return &Database{store: logic.NewFactStore()}
}

// NewDatabaseOn returns a fact base backed by the given Storage, which
// may already contain facts (they count toward Len after Freeze).
func NewDatabaseOn(st Storage) *Database {
	return &Database{store: logic.NewFactStoreOn(st)}
}

// AddFacts appends facts to the pending batch. Facts must be ground
// and null-free (databases contain constants only, Section 2 of the
// paper). Nothing is interned until Freeze, so interleaving many small
// AddFacts calls stays cheap. AddFacts fails once the database is
// frozen.
func (d *Database) AddFacts(facts ...Atom) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.frozen {
		return fmt.Errorf("ntgd: AddFacts on a frozen Database")
	}
	for i, f := range facts {
		if !f.IsGround() {
			return fmt.Errorf("ntgd: fact %d (%s): databases must be ground", i, f)
		}
		if f.HasNull() {
			return fmt.Errorf("ntgd: fact %d (%s): databases must not contain nulls", i, f)
		}
	}
	d.pend = append(d.pend, facts...)
	return nil
}

// Freeze bulk-loads every pending fact into the root store and seals
// the database; it returns the number of distinct facts the store now
// holds. Freeze is idempotent — further calls are no-ops.
func (d *Database) Freeze() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.freezeLocked()
}

func (d *Database) freezeLocked() int {
	if !d.frozen {
		d.store.AddAll(d.pend)
		d.pend = nil
		d.frozen = true
	}
	return d.store.Len()
}

// Len returns the number of distinct facts loaded so far: the frozen
// store's size plus the pending batch (an upper bound before Freeze,
// since pending duplicates collapse at load time).
func (d *Database) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.frozen {
		return d.store.Len()
	}
	return d.store.Len() + len(d.pend)
}

// snapshot freezes (if needed) and returns a copy-on-write layer over
// the root store for one compiled program to own.
func (d *Database) snapshot() *FactStore {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.freezeLocked()
	return d.store.Snapshot()
}

// rootDatabase resolves CompileOptions' storage seam: a pre-loaded
// Database or a caller-supplied Storage backs the root, with the
// program's own facts added on a private snapshot layer; by default
// the program's facts become a fresh root of their own (the legacy
// path, which the seam generalizes).
func rootDatabase(p *Program, opt CompileOptions) (*FactStore, error) {
	switch {
	case opt.Database != nil && opt.Store != nil:
		return nil, fmt.Errorf("ntgd: CompileOptions.Database and CompileOptions.Store are mutually exclusive")
	case opt.Database != nil:
		db := opt.Database.snapshot()
		db.AddAll(p.Facts)
		return db, nil
	case opt.Store != nil:
		db := logic.NewFactStoreOn(opt.Store).Snapshot()
		db.AddAll(p.Facts)
		return db, nil
	default:
		return p.Database(), nil
	}
}
