package ntgd

import (
	"context"
	"fmt"
	"iter"
	"sync"

	"ntgd/internal/asp"
	"ntgd/internal/baget"
	"ntgd/internal/classify"
	"ntgd/internal/core"
	"ntgd/internal/engine"
	"ntgd/internal/lp"
)

// CompileOptions configures Compile.
type CompileOptions struct {
	// Semantics selects which stable model semantics interprets the
	// program (SO, the default, is the paper's new semantics).
	Semantics Semantics
	// Options carries the search knobs. Under SO and Operational every
	// field applies — including Options.Workers, which sizes the
	// parallel branch-exploration pool (0 = GOMAXPROCS, 1 =
	// sequential). Under LP the pipeline honors MaxModels and
	// MaxNodes (the witness space is fixed by Skolemization, so
	// WitnessPolicy, ExtraConstants, and Workers do not apply, and
	// MaxAtoms is replaced by the grounder's own bounds).
	Options Options
	// Gate, when non-nil, is a shared admission gate: every run of this
	// Solver acquires a slot from it, and several Solvers compiled with
	// the same Gate share one concurrency bound. Long-lived hosts
	// serving many compiled programs (the ntgdd daemon) use this to
	// bound total load rather than per-program load. When nil, a
	// private gate is derived from Options.MaxConcurrentRuns (0 = no
	// gate). Refusal surfaces as ErrAdmission either way.
	Gate *Gate
	// Database, when non-nil, supplies a pre-loaded fact base: the
	// compiled program's root database becomes a copy-on-write snapshot
	// of the (frozen) Database, with the program's own facts added on
	// the snapshot layer. Compiling many programs against one Database
	// shares the interned, packed, indexed root across all of them
	// instead of rebuilding it per Compile. An unfrozen Database is
	// frozen by Compile. Mutually exclusive with Store.
	Database *Database
	// Store, when non-nil, supplies the storage backend for the root
	// database: the program's facts are added on a snapshot layered
	// over whatever the Storage already holds. This is the seam for
	// alternative root implementations (see Storage and NewStorage);
	// the backend must not be written concurrently with Compile.
	// Mutually exclusive with Database.
	Store Storage
}

// Gate is a counting admission semaphore bounding concurrent
// enumerations, with bounded deadline-aware admission: on a
// bounded-queue gate, a caller arriving with the waiter queue at its
// bound, or whose deadline must expire before a slot can free
// (estimated from the gate's EWMA of run times), is refused
// immediately instead of parking. Construct one with NewGate
// (unbounded queue — every excess caller parks until its context
// ends, never refused up front) or NewGateQueue (bounded) and share
// it across CompileOptions.Gate to bound the combined load of several
// Solvers. Snapshot exposes occupancy, queue depth, the EWMA, and shed
// counters by reason; SetQueueBound adjusts the queue bound at runtime
// (the daemon's memory brownout shrinks and restores it).
type Gate = engine.Gate

// GateStats is a point-in-time view of a Gate (see Gate.Snapshot).
type GateStats = engine.GateStats

// AdmissionError is the concrete refusal error of a Gate: it matches
// errors.Is(err, ErrAdmission) and carries the shed reason and a
// machine-readable RetryAfter hint.
type AdmissionError = engine.AdmissionError

// Shed reasons recorded on AdmissionError.Reason.
const (
	ShedQueueFull = engine.ShedQueueFull
	ShedDeadline  = engine.ShedDeadline
	ShedExpired   = engine.ShedExpired
)

// NewGate returns a gate admitting up to n concurrent runs with an
// unbounded waiter queue, or nil (admit everything) when n <= 0. A
// queued run whose context ends before a slot frees is refused with an
// ErrAdmission-matching error.
func NewGate(n int) *Gate { return engine.NewGate(n) }

// NewGateQueue returns a gate admitting up to slots concurrent runs
// with at most maxQueue parked waiters: excess arrivals are refused
// immediately (no parking) with an *AdmissionError carrying a
// RetryAfter hint. maxQueue < 0 leaves the queue unbounded, 0 refuses
// whenever every slot is busy.
func NewGateQueue(slots, maxQueue int) *Gate { return engine.NewGateQueue(slots, maxQueue) }

// Solver is a compiled program under one semantics: validation,
// syntactic classification, Skolemization and grounding artifacts (LP),
// per-rule search metadata, and chase-derived budgets (SO/Operational)
// are computed once by Compile, then every enumeration and query runs
// against the shared artifacts. All entry points take a
// context.Context: cancellation or a deadline aborts the search
// mid-flight with the partial Stats accumulated so far, and the Solver
// remains reusable afterwards.
//
// A Solver is safe for concurrent use: any number of goroutines may
// run Models, Entails, Answers, and Consistent against one Solver at
// once. Runs share only immutable compiled artifacts and internally
// synchronized caches (the chase-derived budget cache, the cumulative
// Stats); each run owns its search state outright, layering
// copy-on-write snapshots over the frozen root database. Within one
// call the search itself may also run parallel — Options.Workers sizes
// a worker pool that explores independent branch subtrees concurrently
// (see Models for the ordering guarantee), and
// Options.MaxConcurrentRuns bounds how many runs are admitted at once.
//
// The Solver is also hardened for long-lived hosts: every terminal
// error is errors.Is-matchable against the taxonomy ErrBudget (node or
// wall-clock budget), ErrMemory (watermark), ErrAdmission (gate), and
// ErrInternal (a recovered engine panic, carrying the stack); in each
// case the workers are joined, partial Stats are recorded, and the
// Solver remains reusable.
type Solver struct {
	prog   *Program
	sem    Semantics
	opt    Options
	report *Report
	eng    engine.Engine

	mu        sync.Mutex
	stats     Stats
	exhausted bool
}

// Compile validates the program, classifies it syntactically, and
// compiles it under the chosen semantics. The returned Solver amortizes
// that work across any number of Models, Entails, Answers, and
// Consistent calls.
func Compile(p *Program, opt CompileOptions) (*Solver, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	db, err := rootDatabase(p, opt)
	if err != nil {
		return nil, err
	}
	var eng engine.Engine
	switch opt.Semantics {
	case SO:
		eng, err = core.Compile(db, p.Rules, opt.Options)
	case Operational:
		eng, err = baget.Compile(db, p.Rules, opt.Options)
	case LP:
		// MaxModels is enforced by Solver.Models' own counter (the
		// engine contract is visitor-driven), so only the node budget
		// reaches the pipeline.
		eng, err = lp.Compile(db, p.Rules, lp.Options{
			Solve: asp.SolveOptions{MaxNodes: opt.Options.MaxNodes},
		})
	default:
		err = fmt.Errorf("ntgd: unknown semantics %v", opt.Semantics)
	}
	if err != nil {
		return nil, err
	}
	// The robustness layer wraps every semantics uniformly: admission
	// gating, the wall-clock watchdog, and panic isolation (recovered
	// engine panics become typed ErrInternal; a panicking visitor is
	// re-raised only after the engine has unwound and joined its
	// workers). A caller-supplied Gate takes precedence so several
	// Solvers can share one admission bound.
	gate := opt.Gate
	if gate == nil {
		gate = engine.NewGate(opt.Options.MaxConcurrentRuns)
	}
	eng = engine.Guard(eng, engine.GuardConfig{
		Gate:      gate,
		WallClock: opt.Options.MaxWallClock,
	})
	return &Solver{
		prog:   p,
		sem:    opt.Semantics,
		opt:    opt.Options,
		report: classify.Classify(p.Rules),
		eng:    eng,
	}, nil
}

// MustCompile compiles and panics on error; intended for tests and
// examples.
func MustCompile(p *Program, opt CompileOptions) *Solver {
	s, err := Compile(p, opt)
	if err != nil {
		panic(err)
	}
	return s
}

// record folds one run's effort into the solver's cumulative stats.
func (s *Solver) record(st Stats, exhausted bool) {
	s.mu.Lock()
	s.stats.Add(st)
	s.exhausted = exhausted
	s.mu.Unlock()
}

// Models streams the stable models of the program. Breaking out of the
// range loop releases the search immediately; cancelling ctx (or its
// deadline expiring) aborts mid-search, yielding the context error as
// the final element. A budget hit yields ErrBudget the same way, a
// memory-watermark hit ErrMemory, a refused admission ErrAdmission,
// and a recovered engine panic ErrInternal. In every case Stats
// reports the partial effort and the Solver remains reusable for
// further calls. Options.MaxModels, when set, bounds the number of
// models yielded.
//
// Misuse hardening: the returned sequence may be ranged over more than
// once (each invocation is an independent run), and a panic in the
// loop body propagates to the caller — as range-over-func semantics
// require — only after the search workers have been stopped and
// joined, so neither leaks goroutines nor wedges the pool. Stats from
// a run aborted by a loop-body panic are not recorded.
//
// Ordering: with Options.Workers == 1 the stream is the deterministic
// sequential depth-first order; with a larger pool (the default is
// GOMAXPROCS) sibling subtrees are explored concurrently and a
// complete enumeration yields the same canonical model set in a
// scheduling-dependent order. Models are always delivered on the
// caller's goroutine, whatever the pool size.
func (s *Solver) Models(ctx context.Context) iter.Seq2[*FactStore, error] {
	return func(yield func(*FactStore, error) bool) {
		stopped := false
		n := 0
		stats, exhausted, err := s.eng.Enumerate(ctx, engine.Params{}, func(m *FactStore) bool {
			n++
			if !yield(m, nil) {
				stopped = true
				return false
			}
			if s.opt.MaxModels > 0 && n >= s.opt.MaxModels {
				stopped = true
				return false
			}
			return true
		})
		s.record(stats, exhausted)
		if err != nil && !stopped {
			yield(nil, err)
		}
	}
}

// Collect materializes up to maxModels stable models (0 = all, subject
// to Options.MaxModels when that is smaller) and returns them together
// with the run's own Stats — unlike Solver.Stats, which is cumulative
// across every call, Result.Stats covers exactly this run. On a
// terminal error (budget, memory, admission, cancellation, internal
// fault) the partial Result is returned alongside the error with
// Result.Exhausted set. Hosts that serve per-request effort reports
// (the ntgdd daemon) use this instead of ranging Models.
func (s *Solver) Collect(ctx context.Context, maxModels int) (*Result, error) {
	if s.opt.MaxModels > 0 && (maxModels == 0 || maxModels > s.opt.MaxModels) {
		maxModels = s.opt.MaxModels
	}
	res, err := engine.CollectModels(ctx, s.eng, engine.Params{}, maxModels)
	s.record(res.Stats, res.Exhausted)
	return res, err
}

// Entails answers a Boolean query under the solver's semantics and the
// given reasoning mode. The query's constants extend the witness pool
// where the semantics allows it (SO).
func (s *Solver) Entails(ctx context.Context, q Query, mode Mode) (QAResult, error) {
	var res QAResult
	var err error
	if mode == Brave {
		res, err = engine.BraveEntails(ctx, s.eng, engine.Params{}, q)
	} else {
		res, err = engine.CautiousEntails(ctx, s.eng, engine.Params{}, q)
	}
	s.record(res.Stats, res.Exhausted)
	return res, err
}

// Answers computes the certain (Cautious) or possible (Brave) answers
// of an n-ary query under the solver's semantics. ok is false when the
// answer set is ill-defined (cautious answering over an empty stable
// model set) or the enumeration was incomplete.
func (s *Solver) Answers(ctx context.Context, q Query, mode Mode) ([]AnswerTuple, bool, error) {
	tuples, ok, stats, exhausted, err := engine.Answers(ctx, s.eng, engine.Params{}, q, mode == Brave)
	s.record(stats, exhausted)
	return tuples, ok, err
}

// AnswersResult is the outcome of Solver.AnswerSet: the tuples of an
// n-ary query together with the run's own effort report.
type AnswersResult struct {
	// Tuples are the certain (Cautious) or possible (Brave) answers.
	Tuples []AnswerTuple
	// Complete is false when the answer set is ill-defined (cautious
	// answering over an empty stable model set) or the enumeration was
	// incomplete.
	Complete bool
	// Exhausted reports a possibly incomplete enumeration.
	Exhausted bool
	// Stats is this run's effort (not the Solver's cumulative total).
	Stats Stats
}

// AnswerSet is Answers extended with the run's own Stats and Exhausted
// flag, for hosts that report per-request effort (the ntgdd daemon).
// On a terminal error the partial AnswersResult accompanies it.
func (s *Solver) AnswerSet(ctx context.Context, q Query, mode Mode) (AnswersResult, error) {
	tuples, ok, stats, exhausted, err := engine.Answers(ctx, s.eng, engine.Params{}, q, mode == Brave)
	s.record(stats, exhausted)
	return AnswersResult{Tuples: tuples, Complete: ok, Exhausted: exhausted, Stats: stats}, err
}

// Consistent reports whether the program has at least one stable model
// under the solver's semantics. A found model makes the positive
// verdict definitive even if a budget was hit afterwards.
func (s *Solver) Consistent(ctx context.Context) (bool, error) {
	ok, stats, exhausted, err := engine.Consistent(ctx, s.eng, engine.Params{})
	s.record(stats, exhausted)
	return ok, err
}

// Stats returns the cumulative search effort across every completed
// call made on this Solver, including runs aborted by cancellation or
// a budget. It is safe to call while other calls are in flight; a run
// still in flight contributes once it completes.
func (s *Solver) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Exhausted reports whether the most recently completed call's
// enumeration was possibly incomplete: a budget or watermark was hit,
// the context was cancelled, or the run failed internally. It is safe
// to call while other calls are in flight ("most recent" then means
// the latest run to complete).
func (s *Solver) Exhausted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.exhausted
}

// Classification returns the syntactic classification (weak-acyclicity,
// stickiness, guardedness) computed at compile time.
func (s *Solver) Classification() *Report { return s.report }

// Semantics returns the semantics the program was compiled under.
func (s *Solver) Semantics() Semantics { return s.sem }

// Program returns the compiled program.
func (s *Solver) Program() *Program { return s.prog }

// ensure the engines satisfy the shared interface.
var (
	_ engine.Engine = (*core.Compiled)(nil)
	_ engine.Engine = (*lp.Compiled)(nil)
	_ engine.Engine = (*baget.Compiled)(nil)
)
