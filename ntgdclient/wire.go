// Wire types of the ntgdd /v1 API, client edition. They mirror the
// daemon's types (internal/server/api.go) field for field; the copy
// exists because the server package is internal on purpose — its
// handler plumbing is not API — while clients need nameable request
// and response types. The JSON tags are the contract; the chaos and
// round-trip tests in the server package pin both sides against the
// same fixtures.
package ntgdclient

// Request is the JSON body shared by the POST endpoints; endpoints
// ignore fields they do not use. See the internal/server package
// documentation for per-field semantics.
type Request struct {
	// Program is the program source in the surface syntax (required by
	// every endpoint except /v1/db).
	Program string `json:"program,omitempty"`
	// Semantics selects "so" (default), "lp", or "op".
	Semantics string `json:"semantics,omitempty"`
	// DB references a previously uploaded fact base by handle.
	DB string `json:"db,omitempty"`
	// Facts is the fact source for UploadDB.
	Facts string `json:"facts,omitempty"`
	// Query is the query in surface syntax ("?- p(X), not q(X).").
	Query string `json:"query,omitempty"`
	// Mode is "cautious" (default) or "brave".
	Mode string `json:"mode,omitempty"`
	// MaxModels bounds the models a solve returns (0 = server cap).
	MaxModels int `json:"max_models,omitempty"`
	// TimeoutMS is the per-request deadline in milliseconds (0 =
	// server default; the server clamps to its maximum).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Queries is the batch payload.
	Queries []BatchItem `json:"queries,omitempty"`
}

// BatchItem is one query of a Batch request.
type BatchItem struct {
	Query string `json:"query"`
	Mode  string `json:"mode,omitempty"`
}

// Stats is the engine-effort block attached to every response.
type Stats struct {
	Nodes           int64 `json:"nodes"`
	Branches        int64 `json:"branches"`
	Deterministic   int64 `json:"deterministic"`
	Completed       int64 `json:"completed"`
	StabilityChecks int64 `json:"stability_checks"`
	StabilityFailed int64 `json:"stability_failed"`
	ModelsEmitted   int64 `json:"models_emitted"`
	Conflicts       int64 `json:"conflicts"`
}

// SolveResponse is the /v1/solve success body.
type SolveResponse struct {
	Models    []string `json:"models"`
	Count     int      `json:"count"`
	Exhausted bool     `json:"exhausted"`
	Stats     Stats    `json:"stats"`
}

// EntailsResponse is the /v1/entails success body.
type EntailsResponse struct {
	Entailed  bool   `json:"entailed"`
	Witness   string `json:"witness,omitempty"`
	NoModels  bool   `json:"no_models"`
	Exhausted bool   `json:"exhausted"`
	Stats     Stats  `json:"stats"`
}

// AnswersResponse is the /v1/answers success body.
type AnswersResponse struct {
	Tuples   [][]string `json:"tuples"`
	Complete bool       `json:"complete"`
	Stats    Stats      `json:"stats"`
}

// ConsistentResponse is the /v1/consistent success body.
type ConsistentResponse struct {
	Consistent bool `json:"consistent"`
}

// DBResponse is the /v1/db success body.
type DBResponse struct {
	Handle string `json:"handle"`
	Facts  int    `json:"facts"`
}

// BatchResponse is the /v1/batch success body.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
	Stats   Stats         `json:"stats"`
}

// BatchResult is the outcome of one batch item (Error empty = success).
type BatchResult struct {
	Error    string     `json:"error,omitempty"`
	Class    string     `json:"class,omitempty"`
	Entailed bool       `json:"entailed,omitempty"`
	Witness  string     `json:"witness,omitempty"`
	NoModels bool       `json:"no_models,omitempty"`
	Tuples   [][]string `json:"tuples,omitempty"`
	Complete bool       `json:"complete,omitempty"`
	Stats    Stats      `json:"stats"`
}

// errorResponse is the body of every non-2xx daemon response; it is
// surfaced to callers as *APIError, not directly.
type errorResponse struct {
	Error        string `json:"error"`
	Class        string `json:"class"`
	Stats        Stats  `json:"stats"`
	Exhausted    bool   `json:"exhausted"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}
