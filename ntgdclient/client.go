// Package ntgdclient is the Go client for the ntgdd daemon's /v1
// HTTP/JSON API, with overload-aware retries built in.
//
// The daemon sheds load instead of parking it (see internal/server and
// the root package's Overload section): under pressure it answers 429
// or 503 immediately, carrying retry guidance in the Retry-After
// header and the retry_after_ms body field. This client completes the
// contract on the caller's side:
//
//   - 429 (admission refused), 503 (draining or brownout), 504
//     (deadline expired), and transport errors are retried with capped
//     exponential backoff and full jitter, sleeping at least the
//     server's Retry-After hint when one is present;
//   - 400, 404, 413, 422, 500, and 507 are never retried: daemon
//     responses are a pure function of the canonical program, so an
//     unchanged request cannot do better — 404 needs a re-upload, 413
//     a smaller body, the rest a different program or budget;
//   - every call has a retry budget (RetryPolicy.Budget) so a client
//     cannot amplify an outage by retrying forever.
//
// Failures surface as *APIError carrying the HTTP status, taxonomy
// class, the server's partial Stats, and the attempt count.
//
//	c := ntgdclient.New("http://127.0.0.1:8377")
//	res, err := c.Solve(ctx, ntgdclient.Request{Program: "p :- not q."})
package ntgdclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// RetryPolicy bounds the client's retry behavior. The zero value is
// replaced by the documented defaults field by field.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (default 4; 1 disables retries, negative is treated as 1).
	MaxAttempts int
	// BaseBackoff is the first retry's backoff ceiling; attempt n's
	// ceiling is BaseBackoff·2^(n-1), capped by MaxBackoff, and the
	// actual sleep is uniform in [0, ceiling] (full jitter) — then
	// raised to the server's Retry-After hint if that is larger.
	// Default 100ms.
	BaseBackoff time.Duration
	// MaxBackoff caps a single backoff sleep (default 5s).
	MaxBackoff time.Duration
	// Budget caps the total time a call may spend across attempts and
	// backoff sleeps; once the next sleep would cross it, the last
	// error is returned instead. Default 30s; negative disables the
	// budget.
	Budget time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 4
	}
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 100 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 5 * time.Second
	}
	if p.Budget == 0 {
		p.Budget = 30 * time.Second
	}
	return p
}

// APIError is a non-2xx daemon response (or, with Status 0, a
// transport failure that exhausted its retries). It reports the state
// of the final attempt.
type APIError struct {
	// Status is the HTTP status code (0 for transport errors).
	Status int
	// Class is the body's taxonomy class ("admission", "budget",
	// "overloaded", ...), empty for transport errors.
	Class string
	// Message is the server's error text (or the transport error).
	Message string
	// RetryAfter is the server's backoff hint (0 when absent).
	RetryAfter time.Duration
	// Stats is the partial effort of the final attempt's run.
	Stats Stats
	// Exhausted mirrors the error body's flag.
	Exhausted bool
	// Attempts is how many times the request was sent.
	Attempts int
	cause    error
}

func (e *APIError) Error() string {
	if e.Status == 0 {
		return fmt.Sprintf("ntgdclient: %s (after %d attempts)", e.Message, e.Attempts)
	}
	return fmt.Sprintf("ntgdclient: %d %s: %s (after %d attempts)", e.Status, e.Class, e.Message, e.Attempts)
}

func (e *APIError) Unwrap() error { return e.cause }

// Retryable reports whether the failure is of a kind the client
// retries: shed/overload refusals (429, 503), expired deadlines (504),
// and transport errors. Deterministic failures (400, 404, 413, 422,
// 500, 507) are not.
func (e *APIError) Retryable() bool { return retryableStatus(e.Status) }

func retryableStatus(status int) bool {
	switch status {
	case 0, http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	default:
		return false
	}
}

// Client talks to one ntgdd daemon. It is safe for concurrent use.
type Client struct {
	base  string
	httpc *http.Client
	retry RetryPolicy

	// sleep and jitter are the retry loop's clock and randomness,
	// injectable so the policy tests run instantly and
	// deterministically.
	sleep  func(context.Context, time.Duration) error
	jitter func() float64
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (default
// http.DefaultClient; per-call deadlines come from the context, so the
// default client's lack of a global timeout is fine).
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.httpc = h } }

// WithRetryPolicy substitutes the retry policy.
func WithRetryPolicy(p RetryPolicy) Option { return func(c *Client) { c.retry = p } }

// withClock injects the retry loop's sleep and jitter source — the
// test seam; not exported because production callers have no business
// replacing time.
func withClock(sleep func(context.Context, time.Duration) error, jitter func() float64) Option {
	return func(c *Client) { c.sleep, c.jitter = sleep, jitter }
}

// New builds a Client for the daemon at baseURL (e.g.
// "http://127.0.0.1:8377").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:  strings.TrimRight(baseURL, "/"),
		httpc: http.DefaultClient,
		sleep: func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return context.Cause(ctx)
			case <-t.C:
				return nil
			}
		},
		jitter: rand.Float64,
	}
	for _, o := range opts {
		o(c)
	}
	c.retry = c.retry.withDefaults()
	return c
}

// Solve enumerates stable models.
func (c *Client) Solve(ctx context.Context, req Request) (*SolveResponse, error) {
	out := &SolveResponse{}
	return out, c.post(ctx, "/v1/solve", req, out)
}

// Entails answers one Boolean query.
func (c *Client) Entails(ctx context.Context, req Request) (*EntailsResponse, error) {
	out := &EntailsResponse{}
	return out, c.post(ctx, "/v1/entails", req, out)
}

// Answers answers one n-ary query.
func (c *Client) Answers(ctx context.Context, req Request) (*AnswersResponse, error) {
	out := &AnswersResponse{}
	return out, c.post(ctx, "/v1/answers", req, out)
}

// Consistent checks consistency.
func (c *Client) Consistent(ctx context.Context, req Request) (*ConsistentResponse, error) {
	out := &ConsistentResponse{}
	return out, c.post(ctx, "/v1/consistent", req, out)
}

// Batch runs many queries against one compiled program.
func (c *Client) Batch(ctx context.Context, req Request) (*BatchResponse, error) {
	out := &BatchResponse{}
	return out, c.post(ctx, "/v1/batch", req, out)
}

// UploadDB uploads a fact base and returns its content-addressed
// handle for later Requests' DB field.
func (c *Client) UploadDB(ctx context.Context, facts string) (*DBResponse, error) {
	out := &DBResponse{}
	return out, c.post(ctx, "/v1/db", Request{Facts: facts}, out)
}

// post is the retry loop every endpoint shares.
func (c *Client) post(ctx context.Context, path string, req, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("ntgdclient: encoding request: %w", err)
	}
	start := time.Now()
	var last *APIError
	for attempt := 1; ; attempt++ {
		apiErr := c.once(ctx, path, body, out)
		if apiErr == nil {
			return nil
		}
		apiErr.Attempts = attempt
		last = apiErr
		if !apiErr.Retryable() || attempt >= c.retry.MaxAttempts {
			return last
		}
		if err := context.Cause(ctx); err != nil {
			// The caller's deadline ended the last attempt; a retry
			// would fail the same way instantly.
			return last
		}
		d := c.backoff(attempt, apiErr.RetryAfter)
		if c.retry.Budget > 0 && time.Since(start)+d > c.retry.Budget {
			return last
		}
		if err := c.sleep(ctx, d); err != nil {
			return last
		}
	}
}

// backoff computes the sleep before retry number attempt: full jitter
// over an exponentially growing, capped ceiling, floored by the
// server's hint.
func (c *Client) backoff(attempt int, hint time.Duration) time.Duration {
	ceiling := c.retry.BaseBackoff << (attempt - 1)
	if ceiling > c.retry.MaxBackoff || ceiling <= 0 {
		ceiling = c.retry.MaxBackoff
	}
	d := time.Duration(c.jitter() * float64(ceiling))
	if hint > d {
		d = hint
	}
	return d
}

// once performs one HTTP exchange. nil means success (out is filled);
// otherwise the returned *APIError has everything but Attempts set.
func (c *Client) once(ctx context.Context, path string, body []byte, out any) *APIError {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return &APIError{Message: err.Error(), cause: err}
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.httpc.Do(hreq)
	if err != nil {
		return &APIError{Message: err.Error(), cause: err}
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		_ = resp.Body.Close()
	}()
	if resp.StatusCode/100 == 2 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return &APIError{Message: "decoding response: " + err.Error(), cause: err}
		}
		return nil
	}
	apiErr := &APIError{Status: resp.StatusCode}
	var eresp errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&eresp); err == nil {
		apiErr.Class = eresp.Class
		apiErr.Message = eresp.Error
		apiErr.Stats = eresp.Stats
		apiErr.Exhausted = eresp.Exhausted
		apiErr.RetryAfter = time.Duration(eresp.RetryAfterMS) * time.Millisecond
	} else {
		apiErr.Message = resp.Status
	}
	if apiErr.RetryAfter <= 0 {
		// Fall back to the coarser header (whole seconds).
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return apiErr
}

// AsAPIError unwraps err to the *APIError the client produced, if any.
func AsAPIError(err error) (*APIError, bool) {
	var ae *APIError
	ok := errors.As(err, &ae)
	return ae, ok
}
