package ntgdclient

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// shedServer answers n refusals with the given status and retry hint
// before succeeding with a fixed solve body.
func shedServer(t *testing.T, refusals *atomic.Int64, status int, retryAfterMS int64) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if refusals.Add(-1) >= 0 {
			if retryAfterMS > 0 {
				w.Header().Set("Retry-After", "1")
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			_ = json.NewEncoder(w).Encode(map[string]any{
				"error": "shed", "class": "admission", "retry_after_ms": retryAfterMS,
			})
			return
		}
		_ = json.NewEncoder(w).Encode(SolveResponse{Models: []string{"p"}, Count: 1})
	}))
}

// instantClock returns a clock option that records sleeps without
// sleeping, plus the recorded slice, with jitter pinned to j.
func instantClock(j float64) (Option, *[]time.Duration) {
	var slept []time.Duration
	return withClock(func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}, func() float64 { return j }), &slept
}

// TestRetryPolicyByStatus is the contract table: which statuses the
// client retries, and which it must return on first sight.
func TestRetryPolicyByStatus(t *testing.T) {
	cases := []struct {
		status    int
		class     string
		retryable bool
	}{
		{http.StatusTooManyRequests, "admission", true},
		{http.StatusServiceUnavailable, "overloaded", true},
		{http.StatusGatewayTimeout, "timeout", true},
		{http.StatusBadRequest, "bad_request", false},
		{http.StatusNotFound, "not_found", false},
		{http.StatusRequestEntityTooLarge, "request_too_large", false},
		{http.StatusUnprocessableEntity, "budget", false},
		{http.StatusInternalServerError, "internal", false},
		{http.StatusInsufficientStorage, "memory", false},
	}
	for _, tc := range cases {
		t.Run(tc.class, func(t *testing.T) {
			var calls atomic.Int64
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				calls.Add(1)
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(tc.status)
				_ = json.NewEncoder(w).Encode(map[string]any{"error": "x", "class": tc.class})
			}))
			defer srv.Close()
			clock, _ := instantClock(0.5)
			c := New(srv.URL, clock, WithRetryPolicy(RetryPolicy{MaxAttempts: 3}))
			_, err := c.Solve(context.Background(), Request{Program: "p :- not q."})
			ae, ok := AsAPIError(err)
			if !ok {
				t.Fatalf("err = %v, want *APIError", err)
			}
			if ae.Status != tc.status || ae.Class != tc.class {
				t.Fatalf("got %d/%s, want %d/%s", ae.Status, ae.Class, tc.status, tc.class)
			}
			if ae.Retryable() != tc.retryable {
				t.Fatalf("Retryable() = %v, want %v", ae.Retryable(), tc.retryable)
			}
			wantCalls := int64(1)
			if tc.retryable {
				wantCalls = 3
			}
			if calls.Load() != wantCalls {
				t.Fatalf("server saw %d calls, want %d", calls.Load(), wantCalls)
			}
			if ae.Attempts != int(wantCalls) {
				t.Fatalf("Attempts = %d, want %d", ae.Attempts, wantCalls)
			}
		})
	}
}

func TestRetrySucceedsAfterShed(t *testing.T) {
	var refusals atomic.Int64
	refusals.Store(2)
	srv := shedServer(t, &refusals, http.StatusTooManyRequests, 250)
	defer srv.Close()
	clock, slept := instantClock(0) // jitter 0: sleep is exactly the hint
	c := New(srv.URL, clock)
	res, err := c.Solve(context.Background(), Request{Program: "p :- not q."})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Count != 1 || res.Models[0] != "p" {
		t.Fatalf("unexpected response %+v", res)
	}
	if len(*slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(*slept))
	}
	for i, d := range *slept {
		if d != 250*time.Millisecond {
			t.Fatalf("sleep %d = %v, want the 250ms retry_after_ms hint (jitter pinned to 0)", i, d)
		}
	}
}

// TestRetryAfterHeaderFallback drops the body hint so the client must
// read the coarser Retry-After header.
func TestRetryAfterHeaderFallback(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "2")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]any{"error": "draining", "class": "draining"})
	}))
	defer srv.Close()
	clock, slept := instantClock(0)
	c := New(srv.URL, clock, WithRetryPolicy(RetryPolicy{MaxAttempts: 2, Budget: -1}))
	_, err := c.Solve(context.Background(), Request{Program: "p :- not q."})
	if ae, ok := AsAPIError(err); !ok || ae.RetryAfter != 2*time.Second {
		t.Fatalf("err = %v, want APIError with 2s RetryAfter from the header", err)
	}
	if len(*slept) != 1 || (*slept)[0] != 2*time.Second {
		t.Fatalf("slept %v, want one 2s sleep honoring the header", *slept)
	}
}

// TestBackoffJitterAndCap pins the backoff shape: full jitter over an
// exponentially doubling ceiling, capped at MaxBackoff, floored by the
// server hint.
func TestBackoffJitterAndCap(t *testing.T) {
	c := New("http://unused", WithRetryPolicy(RetryPolicy{
		BaseBackoff: 100 * time.Millisecond,
		MaxBackoff:  300 * time.Millisecond,
	}), withClock(nil, func() float64 { return 1 }))
	for _, tc := range []struct {
		attempt int
		hint    time.Duration
		want    time.Duration
	}{
		{1, 0, 100 * time.Millisecond},                      // base
		{2, 0, 200 * time.Millisecond},                      // doubled
		{3, 0, 300 * time.Millisecond},                      // capped (would be 400)
		{9, 0, 300 * time.Millisecond},                      // still capped far out
		{1, 150 * time.Millisecond, 150 * time.Millisecond}, // hint floors
	} {
		if got := c.backoff(tc.attempt, tc.hint); got != tc.want {
			t.Fatalf("backoff(%d, %v) = %v, want %v", tc.attempt, tc.hint, got, tc.want)
		}
	}
	// Jitter is uniform in [0, ceiling]: with jitter 0 and no hint the
	// sleep is 0 (retry immediately is a legal draw).
	c2 := New("http://unused", withClock(nil, func() float64 { return 0 }))
	if got := c2.backoff(1, 0); got != 0 {
		t.Fatalf("zero-jitter backoff = %v, want 0", got)
	}
}

// TestRetryBudget stops retrying once the next sleep would cross the
// per-call budget, even with attempts remaining.
func TestRetryBudget(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusTooManyRequests)
		_ = json.NewEncoder(w).Encode(map[string]any{
			"error": "shed", "class": "admission", "retry_after_ms": int64(3600000),
		})
	}))
	defer srv.Close()
	clock, slept := instantClock(1)
	c := New(srv.URL, clock, WithRetryPolicy(RetryPolicy{MaxAttempts: 10, Budget: time.Second}))
	_, err := c.Solve(context.Background(), Request{Program: "p :- not q."})
	ae, ok := AsAPIError(err)
	if !ok || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want the 429", err)
	}
	// The hour-long hint can never fit the 1s budget: exactly one
	// attempt, zero sleeps.
	if calls.Load() != 1 || len(*slept) != 0 {
		t.Fatalf("calls=%d sleeps=%d, want 1 and 0 (budget exhausted)", calls.Load(), len(*slept))
	}
}

// TestNoRetryAfterCallerDeadline pins that an expired caller context
// short-circuits the loop rather than burning attempts on guaranteed
// failures.
func TestNoRetryAfterCallerDeadline(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusGatewayTimeout)
		_ = json.NewEncoder(w).Encode(map[string]any{"error": "deadline", "class": "timeout"})
	}))
	defer srv.Close()
	clock, _ := instantClock(0)
	c := New(srv.URL, clock, WithRetryPolicy(RetryPolicy{MaxAttempts: 5, Budget: -1}))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Solve(ctx, Request{Program: "p :- not q."})
	if err == nil {
		t.Fatal("want an error")
	}
	if calls.Load() > 1 {
		t.Fatalf("server saw %d calls after the caller's context ended, want at most 1", calls.Load())
	}
}

func TestTransportErrorsRetryThenSurface(t *testing.T) {
	// A closed server: every attempt is a connection error.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close()
	clock, slept := instantClock(0.5)
	c := New(srv.URL, clock, WithRetryPolicy(RetryPolicy{MaxAttempts: 3, Budget: -1}))
	_, err := c.Solve(context.Background(), Request{Program: "p :- not q."})
	ae, ok := AsAPIError(err)
	if !ok || ae.Status != 0 {
		t.Fatalf("err = %v, want a status-0 transport APIError", err)
	}
	if !ae.Retryable() || ae.Attempts != 3 || len(*slept) != 2 {
		t.Fatalf("attempts=%d sleeps=%d retryable=%v, want 3/2/true", ae.Attempts, len(*slept), ae.Retryable())
	}
}

func TestEndpointsRoundTrip(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req Request
		_ = json.NewDecoder(r.Body).Decode(&req)
		switch r.URL.Path {
		case "/v1/entails":
			_ = json.NewEncoder(w).Encode(EntailsResponse{Entailed: true, Witness: "p"})
		case "/v1/answers":
			_ = json.NewEncoder(w).Encode(AnswersResponse{Tuples: [][]string{{"a"}}, Complete: true})
		case "/v1/consistent":
			_ = json.NewEncoder(w).Encode(ConsistentResponse{Consistent: true})
		case "/v1/db":
			if req.Facts == "" {
				t.Error("db upload lost the facts field")
			}
			_ = json.NewEncoder(w).Encode(DBResponse{Handle: "h", Facts: 2})
		case "/v1/batch":
			_ = json.NewEncoder(w).Encode(BatchResponse{Results: make([]BatchResult, len(req.Queries))})
		default:
			t.Errorf("unexpected path %s", r.URL.Path)
		}
	}))
	defer srv.Close()
	c := New(srv.URL)
	ctx := context.Background()
	if res, err := c.Entails(ctx, Request{Program: "p.", Query: "?- p."}); err != nil || !res.Entailed {
		t.Fatalf("Entails = %+v, %v", res, err)
	}
	if res, err := c.Answers(ctx, Request{Program: "p(a).", Query: "?-[X] p(X)."}); err != nil || len(res.Tuples) != 1 {
		t.Fatalf("Answers = %+v, %v", res, err)
	}
	if res, err := c.Consistent(ctx, Request{Program: "p."}); err != nil || !res.Consistent {
		t.Fatalf("Consistent = %+v, %v", res, err)
	}
	if res, err := c.UploadDB(ctx, "p(a). p(b)."); err != nil || res.Handle != "h" {
		t.Fatalf("UploadDB = %+v, %v", res, err)
	}
	if res, err := c.Batch(ctx, Request{Program: "p.", Queries: []BatchItem{{Query: "?- p."}, {Query: "?- q."}}}); err != nil || len(res.Results) != 2 {
		t.Fatalf("Batch = %+v, %v", res, err)
	}
}

func TestAPIErrorUnwrapsTransportCause(t *testing.T) {
	sentinel := errors.New("boom")
	ae := &APIError{Message: "boom", cause: sentinel}
	if !errors.Is(ae, sentinel) {
		t.Fatal("APIError must unwrap to its transport cause")
	}
}
