package ntgd_test

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"ntgd"
)

// choiceSrc has 2^4 = 16 stable models under every semantics (no
// existentials, so SO, LP, and Operational coincide), plus one Boolean
// and one n-ary query — enough surface to exercise Models, Entails,
// and Answers against one shared Solver.
const choiceSrc = `
item(i0). item(i1). item(i2). item(i3).
item(X), not out(X) -> in(X).
item(X), not in(X) -> out(X).
?- in(i0).
?-[X] in(X).
`

// TestSolverConcurrentSharing is the tentpole pin: one compiled Solver,
// shared by nine goroutines running Models, Entails, and Answers
// simultaneously (each itself with a worker pool), must produce exactly
// the sequential reference results on every call, under every
// semantics, without leaking goroutines. Run under -race this also
// audits the shared caches and cumulative Stats.
func TestSolverConcurrentSharing(t *testing.T) {
	prog := ntgd.MustParse(choiceSrc)
	qBool, qNary := prog.Queries[0], prog.Queries[1]
	for _, sem := range []ntgd.Semantics{ntgd.SO, ntgd.LP, ntgd.Operational} {
		t.Run(sem.String(), func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			s := ntgd.MustCompile(prog, ntgd.CompileOptions{
				Semantics: sem,
				Options:   ntgd.Options{Workers: 2},
			})
			ctx := context.Background()

			// Sequential reference results, computed on the same Solver
			// before the concurrent phase begins.
			refModels, err := collectModels(ctx, s)
			if err != nil {
				t.Fatalf("reference enumeration: %v", err)
			}
			refSet := canonicalSet(refModels)
			if len(refSet) != 16 {
				t.Fatalf("reference: %d models, want 16", len(refSet))
			}
			refEnt, err := s.Entails(ctx, qBool, ntgd.Brave)
			if err != nil {
				t.Fatalf("reference entails: %v", err)
			}
			refTuples, refOK, err := s.Answers(ctx, qNary, ntgd.Brave)
			if err != nil {
				t.Fatalf("reference answers: %v", err)
			}

			errs := make(chan error, 9)
			var wg sync.WaitGroup
			for i := 0; i < 3; i++ {
				wg.Add(3)
				go func() {
					defer wg.Done()
					models, err := collectModels(ctx, s)
					if err != nil {
						errs <- fmt.Errorf("concurrent Models: %v", err)
						return
					}
					if got := canonicalSet(models); !equalStringSlices(got, refSet) {
						errs <- fmt.Errorf("concurrent Models diverged: %d models vs %d", len(got), len(refSet))
					}
				}()
				go func() {
					defer wg.Done()
					res, err := s.Entails(ctx, qBool, ntgd.Brave)
					if err != nil {
						errs <- fmt.Errorf("concurrent Entails: %v", err)
						return
					}
					if res.Entailed != refEnt.Entailed {
						errs <- fmt.Errorf("concurrent Entails = %v, reference %v", res.Entailed, refEnt.Entailed)
					}
				}()
				go func() {
					defer wg.Done()
					tuples, ok, err := s.Answers(ctx, qNary, ntgd.Brave)
					if err != nil {
						errs <- fmt.Errorf("concurrent Answers: %v", err)
						return
					}
					if ok != refOK || len(tuples) != len(refTuples) {
						errs <- fmt.Errorf("concurrent Answers = (%d tuples, ok=%v), reference (%d, %v)",
							len(tuples), ok, len(refTuples), refOK)
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			awaitGoroutines(t, baseline)
		})
	}
}

// TestSolverStatsDuringFlight pins satellite #1: Stats, Exhausted, and
// Classification must be safe to call — under -race — while a Models
// enumeration is in flight on another goroutine.
func TestSolverStatsDuringFlight(t *testing.T) {
	prog := subsetProgram(8) // 256 models
	s := ntgd.MustCompile(prog, ntgd.CompileOptions{
		Options: ntgd.Options{Workers: 4},
	})
	done := make(chan struct{})
	var probes sync.WaitGroup
	probes.Add(1)
	go func() {
		defer probes.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			_ = s.Stats()
			_ = s.Exhausted()
			if s.Classification() == nil {
				t.Error("Classification() = nil during flight")
				return
			}
		}
	}()
	n := 0
	for _, err := range s.Models(context.Background()) {
		if err != nil {
			t.Fatalf("enumeration: %v", err)
		}
		n++
		_ = s.Stats() // probe from the visitor goroutine too
	}
	close(done)
	probes.Wait()
	if n != 256 {
		t.Fatalf("%d models, want 256", n)
	}
	if st := s.Stats(); st.ModelsEmitted < 256 {
		t.Fatalf("cumulative stats lost models: %+v", st)
	}
}
