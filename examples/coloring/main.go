// Coloring: the CERT3COL-style certain k-colorability problem of
// Section 7.1 — edges are labeled with Boolean literals; the instance
// is certainly colorable iff for EVERY assignment the active subgraph
// is k-colorable (a ΠP2-complete question). The example solves it
// three ways: natively as a WATGD¬,∨ program (Theorem 12/18), through
// the Theorem 15 translation to WATGD¬, and by brute force.
package main

import (
	"fmt"
	"log"

	"ntgd/internal/core"
	"ntgd/internal/encodings"
	"ntgd/internal/logic"
)

func main() {
	g := encodings.CertColGraph{
		Vertices: []string{"a", "b", "c"},
		Vars:     []string{"p"},
		K:        2,
		Edges: []encodings.LabeledEdge{
			// A conditional triangle: all three edges are active only
			// when p is true.
			{U: "a", W: "b", Var: "p"},
			{U: "b", W: "c", Var: "p"},
			{U: "a", W: "c", Var: "p"},
			// This edge is always inactive-or-active oppositely.
			{U: "a", W: "b", Var: "p", Neg: true},
		},
	}
	fmt.Printf("graph: %d vertices, %d labeled edges, k=%d\n", len(g.Vertices), len(g.Edges), g.K)

	// Native disjunctive run.
	res, err := core.BraveEntails(g.Database(), g.DatalogProgram(), g.BadQuery(), core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	native := !res.Entailed
	fmt.Printf("native WATGD¬,∨ verdict:    certainly %d-colorable = %v\n", g.K, native)

	// Theorem 15 translation.
	w, err := g.WATGDProgram()
	if err != nil {
		log.Fatal(err)
	}
	qT := logic.Query{Pos: []logic.Atom{logic.A(w.QueryPred)}}
	resT, err := core.BraveEntails(g.Database(), w.Rules, qT, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Theorem 15 WATGD¬ verdict:  certainly %d-colorable = %v\n", g.K, !resT.Entailed)

	// Brute force reference.
	fmt.Printf("brute force reference:      certainly %d-colorable = %v\n", g.K, g.BruteForce())

	// With three colors every assignment is fine.
	g.K = 3
	res3, err := core.BraveEntails(g.Database(), g.DatalogProgram(), g.BadQuery(), core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith k=3: certainly colorable = %v (brute: %v)\n", !res3.Entailed, g.BruteForce())
}
