// Ntgdclient: the overload-aware Go client end to end — start an
// in-process daemon with one engine slot and no waiting queue, fill
// the slot, and watch the client turn the daemon's 429 + Retry-After
// refusals into a transparent retry that eventually succeeds. Against
// a standalone daemon the same client is just:
//
//	c := ntgdclient.New("http://127.0.0.1:8377")
//	res, err := c.Solve(ctx, ntgdclient.Request{Program: "..."})
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"ntgd/internal/server"
	"ntgd/ntgdclient"
)

const program = `item(i0). item(i1). item(i2).
item(X), not out(X) -> in(X).
item(X), not in(X) -> out(X).
`

func main() {
	// A deliberately tiny daemon: one engine slot, queue disabled —
	// any request arriving while the slot is busy is shed immediately
	// with 429 and retry guidance instead of parking.
	srv := server.New(server.Config{MaxConcurrentRuns: 1, MaxQueuedRuns: -1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln) //nolint:errcheck // torn down with the process
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("daemon: %s (1 slot, no queue)\n\n", base)

	ctx := context.Background()

	// 1. A plain call: client and daemon agree on the wire types.
	c := ntgdclient.New(base)
	solve, err := c.Solve(ctx, ntgdclient.Request{Program: program})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solve: %d models, e.g. %s\n\n", solve.Count, solve.Models[0])

	// 2. Overload. A request that enumerates 2^16 models can never
	//    finish inside its 800ms deadline, so it occupies the only
	//    slot until the deadline expires...
	big := ""
	for i := 0; i < 16; i++ {
		big += fmt.Sprintf("item(i%d).\n", i)
	}
	big += "item(X), not out(X) -> in(X).\nitem(X), not in(X) -> out(X).\n"
	slow := make(chan error, 1)
	go func() {
		// One attempt: a hopeless request should not be retried into
		// the daemon over and over.
		c := ntgdclient.New(base, ntgdclient.WithRetryPolicy(ntgdclient.RetryPolicy{MaxAttempts: 1}))
		_, err := c.Entails(ctx, ntgdclient.Request{
			Program: big, Query: "?- item(i0).", Mode: "cautious", TimeoutMS: 800,
		})
		slow <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the slow request take the slot

	// ...so a one-attempt client is refused on the spot:
	once := ntgdclient.New(base, ntgdclient.WithRetryPolicy(ntgdclient.RetryPolicy{MaxAttempts: 1}))
	_, err = once.Entails(ctx, ntgdclient.Request{Program: program, Query: "?- in(i0).", Mode: "brave"})
	if ae, ok := ntgdclient.AsAPIError(err); ok {
		fmt.Printf("no retries: %d/%s, server says retry in %s\n",
			ae.Status, ae.Class, ae.RetryAfter)
	} else {
		log.Fatalf("expected a 429 refusal, got %v", err)
	}

	// 3. The default client retries 429/503/504 with capped
	//    exponential backoff and full jitter, sleeping at least the
	//    server's hint — so the same call simply succeeds once the
	//    slot frees. 400/404/413/422/500/507 are never retried.
	retrying := ntgdclient.New(base, ntgdclient.WithRetryPolicy(ntgdclient.RetryPolicy{
		MaxAttempts: 6,
		BaseBackoff: 200 * time.Millisecond,
		Budget:      10 * time.Second,
	}))
	ent, err := retrying.Entails(ctx, ntgdclient.Request{Program: program, Query: "?- in(i0).", Mode: "brave"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with retries: entailed=%v (the client waited the slot out)\n", ent.Entailed)
	if err := <-slow; err != nil {
		fmt.Printf("slow request finished with: %v\n", err)
	}
}
