// QBF: solve 2-QBF∃ formulas declaratively through the paper's
// Section 5.3 reduction — encode ∃X∀Yψ as a database Dϕ plus the fixed
// weakly-acyclic NTGD set Σ, and decide satisfiability as
// (Dϕ,Σ) ⊭SMS error. The verdicts are cross-checked against a direct
// brute-force evaluator, and the brave-semantics variant of
// Section 7.1 is demonstrated as well.
package main

import (
	"fmt"
	"log"

	"ntgd/internal/core"
	"ntgd/internal/encodings"
	"ntgd/internal/qbf"
)

func main() {
	l := func(v string) qbf.Lit { return qbf.Lit{Var: v} }
	nl := func(v string) qbf.Lit { return qbf.Lit{Var: v, Neg: true} }

	formulas := []qbf.Formula{
		// ∃x ∀y: (x∧y) ∨ (x∧¬y) — satisfiable with x = true.
		{Exists: []string{"x"}, Forall: []string{"y"},
			Terms: []qbf.Term{{l("x"), l("y"), l("y")}, {l("x"), nl("y"), nl("y")}}},
		// ∃x ∀y: x∧y — unsatisfiable (take y = false).
		{Exists: []string{"x"}, Forall: []string{"y"},
			Terms: []qbf.Term{{l("x"), l("y"), l("y")}}},
		// ∀y: y ∨ ¬y — valid.
		{Forall: []string{"y"},
			Terms: []qbf.Term{{l("y"), l("y"), l("y")}, {nl("y"), nl("y"), nl("y")}}},
	}

	for _, f := range formulas {
		inst, err := encodings.EncodeQBF(f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", f)
		fmt.Printf("  database: %d facts, fixed Σ: %d NTGDs\n", inst.DB.Len(), len(inst.Rules))

		// Cautious reduction: satisfiable iff error is NOT entailed.
		res, err := core.CautiousEntails(inst.DB, inst.Rules, inst.Query, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		sat := !res.Entailed
		fmt.Printf("  encoding verdict: satisfiable=%v  (brute force: %v)\n", sat, f.EvalBrute())

		// Brave variant of Section 7.1: Σ ∪ {¬error → ans}.
		braveRules, braveQ := encodings.QBFBraveQuery()
		bres, err := core.BraveEntails(inst.DB, braveRules, braveQ, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  brave variant (ans bravely entailed): %v\n\n", bres.Entailed)
	}
}
