// Server: the ntgdd daemon end to end — start an in-process server
// (the exact handler stack `go run ./cmd/ntgdd` serves), POST a
// program with queries over HTTP, and watch the compiled-program cache
// at work. Every request is also printed as the equivalent curl
// command against a standalone daemon, so this doubles as the HTTP API
// quickstart:
//
//	go run ./cmd/ntgdd -addr 127.0.0.1:8377 &
//	curl -s http://127.0.0.1:8377/v1/solve -d '{"program":"..."}'
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"

	"ntgd/internal/server"
)

const program = `item(i0). item(i1). item(i2).
item(X), not out(X) -> in(X).
item(X), not in(X) -> out(X).
`

func main() {
	// An in-process daemon: server.New + net/http is everything
	// cmd/ntgdd does, minus flags and signal handling.
	srv := server.New(server.Config{MaxConcurrentRuns: 4})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln) //nolint:errcheck // torn down with the process
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("daemon: %s\n\n", base)

	// 1. Enumerate the stable models (2^3 subset choices).
	var solve server.SolveResponse
	post(base, "/v1/solve", server.Request{Program: program}, &solve)
	fmt.Printf("solve: %d models, e.g. %s\n\n", solve.Count, solve.Models[0])

	// 2. Boolean queries under both reasoning modes. The program is
	//    already cached: these requests skip compilation entirely.
	var brave, cautious server.EntailsResponse
	post(base, "/v1/entails", server.Request{Program: program, Query: "?- in(i0).", Mode: "brave"}, &brave)
	post(base, "/v1/entails", server.Request{Program: program, Query: "?- in(i0).", Mode: "cautious"}, &cautious)
	fmt.Printf("in(i0): brave=%v cautious=%v (some models include i0, others exclude it)\n\n",
		brave.Entailed, cautious.Entailed)

	// 3. A batch: many queries against one compiled program, one
	//    round trip.
	var batch server.BatchResponse
	post(base, "/v1/batch", server.Request{
		Program: program,
		Queries: []server.BatchItem{
			{Query: "?- in(i0), in(i1), in(i2).", Mode: "brave"},
			{Query: "?-[X] item(X).", Mode: "cautious"},
		},
	}, &batch)
	fmt.Printf("batch: all-in bravely entailed=%v, certain items=%d\n\n",
		batch.Results[0].Entailed, len(batch.Results[1].Tuples))

	// 4. The cache did its job: one compile served everything above.
	resp, err := http.Get(base + "/statz")
	if err != nil {
		log.Fatal(err)
	}
	var stz server.Statz
	if err := json.NewDecoder(resp.Body).Decode(&stz); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("statz: compiles=%d hits=%d (curl -s %s/statz)\n",
		stz.Cache.Compiles, stz.Cache.Hits, base)
}

// post sends one request, decodes the response, and prints the
// equivalent curl invocation.
func post(base, path string, req server.Request, out any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false) // keep "->" readable in the printed curl
	if err := enc.Encode(req); err != nil {
		log.Fatal(err)
	}
	body := bytes.TrimSpace(buf.Bytes())
	fmt.Printf("curl -s %s%s -d '%s'\n", base, path, strings.ReplaceAll(string(body), "'", `'\''`))
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e server.ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("POST %s: %d %s (%s)", path, resp.StatusCode, e.Error, e.Class)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
