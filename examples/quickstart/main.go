// Quickstart: the paper's running example (Examples 1, 2 and 4) end to
// end — parse the father program, classify it, enumerate its stable
// models under the new SO semantics, and contrast the answers with the
// classical LP approach.
package main

import (
	"fmt"
	"log"

	"ntgd"
)

const program = `
% Every person has a biological father; a person with two distinct
% fathers is abnormal (Example 1 of the paper).
person(alice).
person(X) -> hasFather(X,Y).
hasFather(X,Y) -> sameAs(Y,Y).
hasFather(X,Y), hasFather(X,Z), not sameAs(Y,Z) -> abnormal(X).

?- person(alice), not hasFather(alice,bob).
?- person(X), not abnormal(X).
`

func main() {
	prog, err := ntgd.Parse(program)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== classification ==")
	fmt.Print(ntgd.Classify(prog))

	fmt.Println("\n== stable models (SO semantics) ==")
	res, err := ntgd.StableModels(prog, ntgd.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for i, m := range res.Models {
		fmt.Printf("model %d: { %s }\n", i+1, m.CanonicalString())
	}

	fmt.Println("\n== query answering ==")
	for _, q := range prog.Queries {
		so, err := ntgd.Entails(prog, q, ntgd.Cautious, ntgd.Options{})
		if err != nil {
			log.Fatal(err)
		}
		lp, err := ntgd.EntailsUnder(prog, q, ntgd.Cautious, ntgd.LP, ntgd.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n  SO (paper): %v   LP (Skolemized): %v\n", q, so.Entailed, lp.Entailed)
	}

	fmt.Println("\nThe disagreement on the first query is the heart of the paper:")
	fmt.Println("under the SO semantics there is a stable model in which bob IS the")
	fmt.Println("father of alice, so ¬hasFather(alice,bob) must not be entailed.")
}
