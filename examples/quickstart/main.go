// Quickstart: the paper's running example (Examples 1, 2 and 4) end to
// end — parse the father program, compile it once into a Solver,
// stream its stable models under the new SO semantics, contrast the
// answers with the classical LP approach, and show deadline-bounded
// solving on the same compiled program.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"ntgd"
)

const program = `
% Every person has a biological father; a person with two distinct
% fathers is abnormal (Example 1 of the paper).
person(alice).
person(X) -> hasFather(X,Y).
hasFather(X,Y) -> sameAs(Y,Y).
hasFather(X,Y), hasFather(X,Z), not sameAs(Y,Z) -> abnormal(X).

?- person(alice), not hasFather(alice,bob).
?- person(X), not abnormal(X).
`

func main() {
	prog, err := ntgd.Parse(program)
	if err != nil {
		log.Fatal(err)
	}

	// Compile validates, classifies, and derives the search budgets
	// once; the Solver then amortizes that work across every call.
	so, err := ntgd.Compile(prog, ntgd.CompileOptions{Semantics: ntgd.SO})
	if err != nil {
		log.Fatal(err)
	}
	lp, err := ntgd.Compile(prog, ntgd.CompileOptions{Semantics: ntgd.LP})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== classification (computed at compile time) ==")
	fmt.Print(so.Classification())

	// Models streams: breaking out of the loop releases the search,
	// and a cancelled context aborts it mid-flight.
	fmt.Println("\n== stable models (SO semantics, streamed) ==")
	i := 0
	for m, err := range so.Models(context.Background()) {
		if err != nil {
			log.Fatal(err)
		}
		i++
		fmt.Printf("model %d: { %s }\n", i, m.CanonicalString())
	}

	fmt.Println("\n== query answering (one compiled Solver per semantics) ==")
	for _, q := range prog.Queries {
		sov, err := so.Entails(context.Background(), q, ntgd.Cautious)
		if err != nil {
			log.Fatal(err)
		}
		lpv, err := lp.Entails(context.Background(), q, ntgd.Cautious)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n  SO (paper): %v   LP (Skolemized): %v\n", q, sov.Entailed, lpv.Entailed)
	}

	fmt.Println("\nThe disagreement on the first query is the heart of the paper:")
	fmt.Println("under the SO semantics there is a stable model in which bob IS the")
	fmt.Println("father of alice, so ¬hasFather(alice,bob) must not be entailed.")

	// Deadline-bounded solving: an already-expired context aborts
	// immediately, reporting the partial search effort; a real deadline
	// (context.WithTimeout(ctx, time.Second)) aborts mid-search the
	// same way. The Solver stays reusable afterwards.
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	for _, err := range so.Models(ctx) {
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Printf("\n== deadline demo ==\nexpired deadline aborted the search (cumulative nodes so far: %d)\n",
				so.Stats().Nodes)
		}
	}
	if n, err := countModels(so); err == nil {
		fmt.Printf("after the timeout the same Solver still enumerates all %d models\n", n)
	}

	// Parallel search: Options.Workers sizes a worker pool that
	// explores independent branch subtrees concurrently (0, the
	// default, uses GOMAXPROCS; 1 forces the sequential search). The
	// canonical model SET is identical for every setting — branching
	// decisions inside each search node are untouched — but only
	// Workers == 1 guarantees a deterministic enumeration order.
	par, err := ntgd.Compile(prog, ntgd.CompileOptions{
		Semantics: ntgd.SO,
		Options:   ntgd.Options{Workers: 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	if n, err := countModels(par); err == nil {
		fmt.Printf("\n== parallel demo ==\na 4-worker pool finds the same %d models (set-equal to sequential)\n", n)
	}
}

func countModels(s *ntgd.Solver) (int, error) {
	n := 0
	for _, err := range s.Models(context.Background()) {
		if err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
