// Genealogy: a larger knowledge-base in the style of the paper's
// introduction — default reasoning over an ontology with existential
// rules. People inherit citizenship by default unless they are known
// to have renounced it; everyone has a birthplace; people born in the
// same city as their registered residence are locals. The example
// shows n-ary certain/possible answers, consistency checking, and the
// model-level API.
package main

import (
	"fmt"
	"log"

	"ntgd"
)

const kb = `
person(ada). person(bert). person(cleo).
parent(ada, bert).          % ada is bert's parent
parent(bert, cleo).
citizen(ada, utopia).
renounced(cleo).

% citizenship is inherited by default
parent(X, Y), citizen(X, C), not renounced(Y) -> citizen(Y, C).

% everyone was born somewhere
person(X) -> bornIn(X, P).

% registered residence exists for every citizen
citizen(X, C) -> residesIn(X, R).

% someone born where they reside is a local
bornIn(X, P), residesIn(X, P) -> local(X).

?-[X,C] citizen(X, C).
?-[X] person(X), not citizen(X, utopia).
?- local(ada).
`

func main() {
	prog, err := ntgd.Parse(kb)
	if err != nil {
		log.Fatal(err)
	}
	rep := ntgd.Classify(prog)
	fmt.Printf("class: %s (weakly acyclic: %v)\n\n", rep.Class(), rep.WeaklyAcyclic)

	ok, err := ntgd.StableModels(prog, ntgd.Options{MaxModels: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("consistent: %v\n\n", len(ok.Models) > 0)

	// Certain citizenship pairs: ada and bert inherit, cleo renounced.
	tuples, _, err := ntgd.Answers(prog, prog.Queries[0], ntgd.Cautious, ntgd.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("certain citizen(X,C) answers:")
	for _, t := range tuples {
		fmt.Printf("  %s\n", t)
	}

	tuples, _, err = ntgd.Answers(prog, prog.Queries[1], ntgd.Cautious, ntgd.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("certainly non-utopian persons:")
	for _, t := range tuples {
		fmt.Printf("  %s\n", t)
	}

	// local(ada) is possible (birthplace may coincide with residence)
	// but not certain.
	brave, err := ntgd.Entails(prog, prog.Queries[2], ntgd.Brave, ntgd.Options{})
	if err != nil {
		log.Fatal(err)
	}
	cautious, err := ntgd.Entails(prog, prog.Queries[2], ntgd.Cautious, ntgd.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlocal(ada): possible=%v certain=%v\n", brave.Entailed, cautious.Entailed)
	fmt.Println("(a stable model may witness ada's birthplace with her residence —")
	fmt.Println(" that is exactly the constant-reuse the SO semantics allows)")
}
