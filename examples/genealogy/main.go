// Genealogy: a larger knowledge-base in the style of the paper's
// introduction — default reasoning over an ontology with existential
// rules. People inherit citizenship by default unless they are known
// to have renounced it; everyone has a birthplace; people born in the
// same city as their registered residence are locals. The example
// shows n-ary certain/possible answers, consistency checking, and the
// model-level API.
package main

import (
	"context"
	"fmt"
	"log"

	"ntgd"
)

const kb = `
person(ada). person(bert). person(cleo).
parent(ada, bert).          % ada is bert's parent
parent(bert, cleo).
citizen(ada, utopia).
renounced(cleo).

% citizenship is inherited by default
parent(X, Y), citizen(X, C), not renounced(Y) -> citizen(Y, C).

% everyone was born somewhere
person(X) -> bornIn(X, P).

% registered residence exists for every citizen
citizen(X, C) -> residesIn(X, R).

% someone born where they reside is a local
bornIn(X, P), residesIn(X, P) -> local(X).

?-[X,C] citizen(X, C).
?-[X] person(X), not citizen(X, utopia).
?- local(ada).
`

func main() {
	prog, err := ntgd.Parse(kb)
	if err != nil {
		log.Fatal(err)
	}
	// One compiled Solver serves every question about the knowledge
	// base: consistency, n-ary answers, and entailment all reuse the
	// compile-time artifacts (validation, classification, budgets).
	s, err := ntgd.Compile(prog, ntgd.CompileOptions{Semantics: ntgd.SO})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	rep := s.Classification()
	fmt.Printf("class: %s (weakly acyclic: %v)\n\n", rep.Class(), rep.WeaklyAcyclic)

	ok, err := s.Consistent(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("consistent: %v\n\n", ok)

	// Certain citizenship pairs: ada and bert inherit, cleo renounced.
	tuples, _, err := s.Answers(ctx, prog.Queries[0], ntgd.Cautious)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("certain citizen(X,C) answers:")
	for _, t := range tuples {
		fmt.Printf("  %s\n", t)
	}

	tuples, _, err = s.Answers(ctx, prog.Queries[1], ntgd.Cautious)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("certainly non-utopian persons:")
	for _, t := range tuples {
		fmt.Printf("  %s\n", t)
	}

	// local(ada) is possible (birthplace may coincide with residence)
	// but not certain.
	brave, err := s.Entails(ctx, prog.Queries[2], ntgd.Brave)
	if err != nil {
		log.Fatal(err)
	}
	cautious, err := s.Entails(ctx, prog.Queries[2], ntgd.Cautious)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlocal(ada): possible=%v certain=%v\n", brave.Entailed, cautious.Entailed)
	fmt.Println("(a stable model may witness ada's birthplace with her residence —")
	fmt.Println(" that is exactly the constant-reuse the SO semantics allows)")
}
