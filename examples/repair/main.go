// Repair: consistent query answering over subset repairs
// (Section 7.1's application (i)) — an inconsistent personnel database
// is repaired into its maximal consistent subsets; a query is certain
// iff it holds over every repair (with a weakly-acyclic TGD ontology
// applied on top). The declarative stable-model encoding is compared
// against brute-force repair enumeration.
package main

import (
	"fmt"
	"log"

	"ntgd"
	"ntgd/internal/core"
	"ntgd/internal/encodings"
)

const src = `
% Conflicting manager records for the sales department.
mgr(sales, ann).
mgr(sales, bob).
mgr(hr, eve).
neq(ann,bob). neq(bob,ann).

% Denial: a department has at most one manager.
:- mgr(D, X), mgr(D, Y), neq(X, Y).

% Ontology: every manager is an employee; employees have offices.
mgr(D, X) -> emp(X).
emp(X) -> office(X, O).

?- emp(eve).
?- emp(ann).
?- office(eve, O).
?- mgr(sales, X), emp(X).
`

func main() {
	prog, err := ntgd.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	inst := &encodings.CQAInstance{DB: prog.Database()}
	for _, r := range prog.Rules {
		if r.IsConstraint() {
			inst.Denials = append(inst.Denials, r)
		} else {
			inst.TGDs = append(inst.TGDs, r)
		}
	}

	repairs, err := inst.BruteForceRepairs()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("subset repairs: %d\n", len(repairs))
	for i, r := range repairs {
		fmt.Printf("  repair %d: { %s }\n", i+1, r.CanonicalString())
	}

	fmt.Println("\ncertain answers (encoding vs brute force):")
	for _, q := range prog.Queries {
		enc, err := inst.CertainEncoded(q, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		brute, err := inst.CertainBrute(q, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-32s  encoding=%v brute=%v\n", q, enc, brute)
	}
}
