package ntgd_test

import (
	"testing"

	"ntgd"
)

// TestParseTestdataFiles parses every shipped example program and
// spot-checks the expected verdicts.
func TestParseTestdataFiles(t *testing.T) {
	father, err := ntgd.ParseFile("testdata/father.ntgd")
	if err != nil {
		t.Fatalf("father.ntgd: %v", err)
	}
	if len(father.Rules) != 3 || len(father.Queries) != 2 {
		t.Fatalf("father.ntgd shape wrong: %d rules, %d queries", len(father.Rules), len(father.Queries))
	}
	v, err := ntgd.Entails(father, father.Queries[0], ntgd.Cautious, ntgd.Options{})
	if err != nil || v.Entailed {
		t.Fatalf("father q1 should not be entailed (err=%v)", err)
	}

	s32, err := ntgd.ParseFile("testdata/section32.ntgd")
	if err != nil {
		t.Fatalf("section32.ntgd: %v", err)
	}
	res, err := ntgd.StableModels(s32, ntgd.Options{})
	if err != nil || len(res.Models) != 0 {
		t.Fatalf("section32 should have no stable models (err=%v, models=%d)", err, len(res.Models))
	}

	col, err := ntgd.ParseFile("testdata/coloring.ntgd")
	if err != nil {
		t.Fatalf("coloring.ntgd: %v", err)
	}
	v, err = ntgd.Entails(col, col.Queries[0], ntgd.Brave, ntgd.Options{})
	if err != nil || !v.Entailed {
		t.Fatalf("triangle is not 2-colorable; bad should be bravely entailed (err=%v)", err)
	}

	fig1, err := ntgd.ParseFile("testdata/figure1.ntgd")
	if err != nil {
		t.Fatalf("figure1.ntgd: %v", err)
	}
	if rep := ntgd.Classify(fig1); rep.Sticky {
		t.Fatalf("figure1.ntgd is the non-sticky set")
	}
}

func TestParseFileMissing(t *testing.T) {
	if _, err := ntgd.ParseFile("testdata/nonexistent.ntgd"); err == nil {
		t.Fatalf("missing file should error")
	}
}
