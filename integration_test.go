package ntgd_test

import (
	"testing"

	"ntgd"
)

// TestPublicAPIQuickstart exercises the documented quick-start path
// end to end.
func TestPublicAPIQuickstart(t *testing.T) {
	prog, err := ntgd.Parse(`
person(alice).
person(X) -> hasFather(X,Y).
hasFather(X,Y) -> sameAs(Y,Y).
hasFather(X,Y), hasFather(X,Z), not sameAs(Y,Z) -> abnormal(X).
?- person(X), not abnormal(X).
?- person(alice), not hasFather(alice,bob).
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	rep := ntgd.Classify(prog)
	if !rep.WeaklyAcyclic {
		t.Fatalf("father program is weakly acyclic: %s", rep)
	}
	res, err := ntgd.StableModels(prog, ntgd.Options{})
	if err != nil {
		t.Fatalf("StableModels: %v", err)
	}
	if len(res.Models) != 2 {
		t.Fatalf("models = %d, want 2", len(res.Models))
	}
	v, err := ntgd.Entails(prog, prog.Queries[0], ntgd.Cautious, ntgd.Options{})
	if err != nil || !v.Entailed {
		t.Fatalf("q1 should be cautiously entailed (err=%v)", err)
	}
	v, err = ntgd.Entails(prog, prog.Queries[1], ntgd.Cautious, ntgd.Options{})
	if err != nil || v.Entailed {
		t.Fatalf("q2 must not be entailed under the SO semantics (err=%v)", err)
	}
}

// TestSemanticsComparisonMatrix is the E1/E2 experiment as a test: the
// three semantics disagree exactly as the paper's introduction
// describes on q = ¬hasFather(alice,bob).
func TestSemanticsComparisonMatrix(t *testing.T) {
	prog := ntgd.MustParse(`
person(alice).
person(X) -> hasFather(X,Y).
hasFather(X,Y) -> sameAs(Y,Y).
hasFather(X,Y), hasFather(X,Z), not sameAs(Y,Z) -> abnormal(X).
?- person(alice), not hasFather(alice,bob).
`)
	q := prog.Queries[0]
	want := map[ntgd.Semantics]bool{
		ntgd.SO:          false, // intended answer
		ntgd.LP:          true,  // Skolemization loses the bob model
		ntgd.Operational: true,  // fresh-nulls-only loses it too
	}
	for sem, expect := range want {
		v, err := ntgd.EntailsUnder(prog, q, ntgd.Cautious, sem, ntgd.Options{})
		if err != nil {
			t.Fatalf("%v: %v", sem, err)
		}
		if v.Entailed != expect {
			t.Fatalf("%v: entailed=%v, want %v", sem, v.Entailed, expect)
		}
	}
	// EFWFS gives the intended answer on this query (Example 2) …
	efwfs, err := ntgd.EFWFSEntails(prog, q, 1, 1)
	if err != nil {
		t.Fatalf("efwfs: %v", err)
	}
	if efwfs {
		t.Fatalf("EFWFS should not entail ¬hasFather(alice,bob)")
	}
}

// TestTheorem18DisjunctionAddsNothing: a disjunctive program and its
// Lemma 13 elimination agree through the public API.
func TestTheorem18DisjunctionAddsNothing(t *testing.T) {
	prog := ntgd.MustParse(`
node(a). node(b). edge(a,b).
node(X) -> red(X) | green(X).
edge(X,Y), red(X), red(Y) -> clash.
edge(X,Y), green(X), green(Y) -> clash.
?- clash.
`)
	q := prog.Queries[0]
	elim, err := ntgd.EliminateDisjunction(prog)
	if err != nil {
		t.Fatalf("EliminateDisjunction: %v", err)
	}
	for _, mode := range []ntgd.Mode{ntgd.Cautious, ntgd.Brave} {
		a, err := ntgd.Entails(prog, q, mode, ntgd.Options{})
		if err != nil {
			t.Fatalf("original %v: %v", mode, err)
		}
		b, err := ntgd.Entails(elim, q, mode, ntgd.Options{})
		if err != nil {
			t.Fatalf("eliminated %v: %v", mode, err)
		}
		if a.Entailed != b.Entailed {
			t.Fatalf("%v: disagreement %v vs %v", mode, a.Entailed, b.Entailed)
		}
	}
}

// TestFormulasRendered: the SM and MM formulas for the Section 3.2
// program render and differ exactly on the starred negation.
func TestFormulasRendered(t *testing.T) {
	prog := ntgd.MustParse(`
p(0).
p(X), not t(X) -> r(X).
r(X) -> t(X).
`)
	sm := ntgd.SMFormula(prog)
	mm := ntgd.MMFormula(prog)
	if sm == mm {
		t.Fatalf("SM and MM must differ")
	}
	if len(sm) == 0 || len(mm) == 0 {
		t.Fatalf("formulas should render")
	}
}

// TestChasePublicAPI: the restricted chase is reachable from the
// public API.
func TestChasePublicAPI(t *testing.T) {
	prog := ntgd.MustParse(`
emp(ann).
emp(X) -> dept(X,D).
`)
	inst, err := ntgd.Chase(prog)
	if err != nil {
		t.Fatalf("Chase: %v", err)
	}
	if inst.CountPred("dept") != 1 {
		t.Fatalf("chase should invent one dept atom: %s", inst.CanonicalString())
	}
}
