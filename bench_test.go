package ntgd_test

// One testing.B benchmark per experiment row of EXPERIMENTS.md
// (E1–E15). The paper is a theory paper: its "tables" are the verdict
// matrices of the worked examples, the Figure 1 marking, and the
// complexity-shape claims; every benchmark here regenerates the
// corresponding computation so the scaling shape can be measured with
// `go test -bench=. -benchmem`.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"ntgd"
	"ntgd/internal/baget"
	"ntgd/internal/chase"
	"ntgd/internal/classify"
	"ntgd/internal/core"
	"ntgd/internal/efwfs"
	"ntgd/internal/encodings"
	"ntgd/internal/lp"
	"ntgd/internal/qbf"
	"ntgd/internal/transform"
)

const fatherSrc = `
person(alice).
person(X) -> hasFather(X,Y).
hasFather(X,Y) -> sameAs(Y,Y).
hasFather(X,Y), hasFather(X,Z), not sameAs(Y,Z) -> abnormal(X).
?- person(alice), not hasFather(alice,bob).
`

// BenchmarkE1SOCautious: the new semantics on Example 2's query
// (counter-model found; not entailed).
func BenchmarkE1SOCautious(b *testing.B) {
	prog := ntgd.MustParse(fatherSrc)
	db := prog.Database()
	q := prog.Queries[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.CautiousEntails(db, prog.Rules, q, core.Options{})
		if err != nil || res.Entailed {
			b.Fatalf("unexpected verdict: %v err=%v", res.Entailed, err)
		}
	}
}

// BenchmarkE1LPPipeline: Skolemize → ground → solve on the same
// program (entailed — the unintended verdict).
func BenchmarkE1LPPipeline(b *testing.B) {
	prog := ntgd.MustParse(fatherSrc)
	db := prog.Database()
	q := prog.Queries[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ok, err := lp.CautiousEntails(db, prog.Rules, q, lp.Options{})
		if err != nil || !ok {
			b.Fatalf("unexpected verdict: %v err=%v", ok, err)
		}
	}
}

// BenchmarkE2Operational: the Baget et al. semantics on the same
// query.
func BenchmarkE2Operational(b *testing.B) {
	prog := ntgd.MustParse(fatherSrc)
	db := prog.Database()
	q := prog.Queries[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := baget.CautiousEntails(db, prog.Rules, q, core.Options{})
		if err != nil || !res.Entailed {
			b.Fatalf("unexpected verdict: %v err=%v", res.Entailed, err)
		}
	}
}

// BenchmarkE3EFWFS: the bounded EFWFS family search for Example 3.
func BenchmarkE3EFWFS(b *testing.B) {
	prog := ntgd.MustParse(fatherSrc)
	q := ntgd.MustParse(fatherSrc + "?- person(alice), not abnormal(alice).").Queries[1]
	db := prog.Database()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v, err := efwfs.Entails(db, prog.Rules, q, efwfs.Options{FreshConstants: 2, MaxInstancesPerAssignment: 2})
		if err != nil || v.Entailed {
			b.Fatalf("unexpected verdict: %+v err=%v", v, err)
		}
	}
}

// BenchmarkE4StabilityCheck: the Proposition 11 SAT-based stability
// check on the Example 4 model.
func BenchmarkE4StabilityCheck(b *testing.B) {
	prog := ntgd.MustParse(fatherSrc)
	db := prog.Database()
	m := ntgd.StoreOf(
		ntgd.A("person", ntgd.C("alice")),
		ntgd.A("hasFather", ntgd.C("alice"), ntgd.C("bob")),
		ntgd.A("sameAs", ntgd.C("bob"), ntgd.C("bob")),
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !core.IsStableModel(db, prog.Rules, m) {
			b.Fatalf("model must be stable")
		}
	}
}

// BenchmarkE5StickinessMarking: the Figure 1 marking procedure, on
// the figure's sets and on a scaled family.
func BenchmarkE5StickinessMarking(b *testing.B) {
	fig1 := ntgd.MustParse(`
t(X,Y,Z) -> s(X,W).
r(X,Y), p(Y,Z) -> t(X,Y,W).
`).Rules
	b.Run("figure1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if classify.IsSticky(fig1) {
				b.Fatalf("second Figure 1 set is not sticky")
			}
		}
	})
	for _, n := range []int{4, 16, 64} {
		src := ""
		for i := 0; i < n; i++ {
			src += fmt.Sprintf("p%d(X,Y) -> p%d(Y,Z).\n", i, (i+1)%n)
		}
		rules := ntgd.MustParse(src).Rules
		b.Run(fmt.Sprintf("chain%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				classify.MarkVariables(rules)
			}
		})
	}
}

// BenchmarkE6LPvsSOOnSkolemized: Theorem 1 workload — the same
// existential-free program through both pipelines.
func BenchmarkE6LPvsSOOnSkolemized(b *testing.B) {
	src := `
a(1). a(2). a(3).
a(X), not q(X) -> p(X).
a(X), not p(X) -> q(X).
`
	prog := ntgd.MustParse(src)
	db := prog.Database()
	b.Run("lp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lp.StableModels(db, prog.Rules, lp.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("so", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.StableModels(db, prog.Rules, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE7DataScaling: query answering under WATGD¬ as the
// database grows (the ΠP2 guess-and-check), contrasted with the
// PTIME positive chase on the same data.
func BenchmarkE7DataScaling(b *testing.B) {
	mkDB := func(n int) string {
		src := ""
		for i := 0; i < n; i++ {
			src += fmt.Sprintf("item(i%d).\n", i)
		}
		return src
	}
	rules := `
item(X), not out(X) -> in(X).
item(X), not in(X) -> out(X).
in(X) -> tagged(X,Y).
?- item(X), in(X).
`
	for _, n := range []int{1, 2, 3, 4} {
		prog := ntgd.MustParse(mkDB(n) + rules)
		db := prog.Database()
		q := prog.Queries[0]
		b.Run(fmt.Sprintf("ntgd/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.BraveEntails(db, prog.Rules, q, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, n := range []int{4, 16, 64} {
		prog := ntgd.MustParse(mkDB(n) + "item(X) -> tagged(X,Y).\n?- tagged(i0,Y).")
		db := prog.Database()
		q := prog.Queries[0]
		b.Run(fmt.Sprintf("chase/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := chase.CertainBCQ(db, prog.Rules, q, chase.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8QBFReduction: the Section 5.3 reduction end to end, by
// formula size.
func BenchmarkE8QBFReduction(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	sizes := []struct{ e, a, t int }{{1, 0, 1}, {1, 1, 1}, {1, 1, 2}}
	for _, sz := range sizes {
		f := qbf.Random(rng, sz.e, sz.a, sz.t)
		inst, err := encodings.EncodeQBF(f)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("e%da%dt%d", sz.e, sz.a, sz.t), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.CautiousEntails(inst.DB, inst.Rules, inst.Query, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9GadgetBoundedSearch: bounded exploration of the sticky
// undecidability gadget (Theorem 4) under fresh-only witnesses — the
// chase-style growth makes the work scale with the atom budget.
func BenchmarkE9GadgetBoundedSearch(b *testing.B) {
	prog := ntgd.MustParse(`
p(a). s(b).
p(X), s(Y) -> t(X,Y).
t(X,Y) -> u(Y,Z).
u(Y,Z) -> s(Z).
`)
	db := prog.Database()
	for _, budget := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("budget%d", budget), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _ = core.StableModels(db, prog.Rules, core.Options{
					MaxAtoms: budget, MaxNodes: 1 << 20, MaxModels: 1,
					WitnessPolicy: core.WitnessFreshOnly,
				})
			}
		})
	}
}

// BenchmarkE10DisjunctionElimination: native disjunction vs the
// Lemma 13 translation on the same instance.
func BenchmarkE10DisjunctionElimination(b *testing.B) {
	src := `
node(a). node(b). edge(a,b).
node(X) -> red(X) | green(X).
edge(X,Y), red(X), red(Y) -> clash.
?- clash.
`
	prog := ntgd.MustParse(src)
	q := prog.Queries[0]
	elim, err := transform.EliminateDisjunction(prog.Database(), prog.Rules)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("native", func(b *testing.B) {
		db := prog.Database()
		for i := 0; i < b.N; i++ {
			if _, err := core.CautiousEntails(db, prog.Rules, q, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("eliminated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.CautiousEntails(elim.DB, elim.Rules, q, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE11Theorem15: a 2-coloring saturation program natively vs
// through the DATALOG¬,∨ → WATGD¬ translation.
func BenchmarkE11Theorem15(b *testing.B) {
	src := `
node(a). node(b). edge(a,b).
node(X) -> r(X) | g(X).
edge(X,Y), r(X), r(Y) -> w.
edge(X,Y), g(X), g(Y) -> w.
w, node(X) -> r(X).
w, node(X) -> g(X).
w -> bad.
`
	prog := ntgd.MustParse(src)
	db := prog.Database()
	q := ntgd.Query{Pos: []ntgd.Atom{ntgd.A("bad")}}
	b.Run("native", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.BraveEntails(db, prog.Rules, q, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	w, err := transform.DatalogToWATGD(transform.DatalogQuery{Rules: prog.Rules, QueryPred: "bad"}, 0)
	if err != nil {
		b.Fatal(err)
	}
	qT := ntgd.Query{Pos: []ntgd.Atom{ntgd.A(w.QueryPred)}}
	b.Run("watgd", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.BraveEntails(db, w.Rules, qT, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE12QBFBrave: the Section 7.1 brave-semantics 2-QBF query.
func BenchmarkE12QBFBrave(b *testing.B) {
	f := qbf.Formula{Exists: []string{"x"},
		Terms: []qbf.Term{{qbf.Lit{Var: "x"}, qbf.Lit{Var: "x"}, qbf.Lit{Var: "x"}}}}
	db, err := encodings.QBFDatabase(f)
	if err != nil {
		b.Fatal(err)
	}
	rules, q := encodings.QBFBraveQuery()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.BraveEntails(db, rules, q, core.Options{})
		if err != nil || !res.Entailed {
			b.Fatalf("satisfiable formula: verdict %v err=%v", res.Entailed, err)
		}
	}
}

// BenchmarkE13CertCol: the certain-colorability encoding vs brute
// force.
func BenchmarkE13CertCol(b *testing.B) {
	g := encodings.CertColGraph{
		Vertices: []string{"a", "b", "c"},
		Vars:     []string{"p"},
		K:        2,
		Edges: []encodings.LabeledEdge{
			{U: "a", W: "b", Var: "p"},
			{U: "b", W: "c", Var: "p", Neg: true},
		},
	}
	db := g.Database()
	rules := g.DatalogProgram()
	q := g.BadQuery()
	b.Run("encoding", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.BraveEntails(db, rules, q, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("brute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.BruteForce()
		}
	})
}

// BenchmarkE14CQA: consistent query answering, encoding vs brute
// force.
func BenchmarkE14CQA(b *testing.B) {
	prog := ntgd.MustParse(`
mgr(sales, ann).
mgr(sales, bob).
neq(ann,bob). neq(bob,ann).
:- mgr(D, X), mgr(D, Y), neq(X, Y).
mgr(D, X) -> emp(X).
?- emp(ann).
`)
	inst := &encodings.CQAInstance{DB: prog.Database()}
	for _, r := range prog.Rules {
		if r.IsConstraint() {
			inst.Denials = append(inst.Denials, r)
		} else {
			inst.TGDs = append(inst.TGDs, r)
		}
	}
	q := prog.Queries[0]
	b.Run("encoding", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := inst.CertainEncoded(q, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("brute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := inst.CertainBrute(q, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE15ExpressivenessGap: model counting under SO vs LP on the
// father family — the SO side has strictly more models (Theorem 19's
// intuition: Skolemization collapses the witness space).
func BenchmarkE15ExpressivenessGap(b *testing.B) {
	prog := ntgd.MustParse(fatherSrc)
	db := prog.Database()
	b.Run("so", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.StableModels(db, prog.Rules, core.Options{})
			if err != nil || len(res.Models) != 2 {
				b.Fatalf("want 2 models, got %d err=%v", len(res.Models), err)
			}
		}
	})
	b.Run("lp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := lp.StableModels(db, prog.Rules, lp.Options{})
			if err != nil || len(res.Models) != 1 {
				b.Fatalf("want 1 model, got %d err=%v", len(res.Models), err)
			}
		}
	})
}

// BenchmarkE16IndexedChaseScale: the indexed store + semi-naive chase
// through the public API at database sizes where the seed's
// recompute-everything rounds were prohibitive.
func BenchmarkE16IndexedChaseScale(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		src := ""
		for i := 0; i < n; i++ {
			src += fmt.Sprintf("emp(e%d).\n", i)
		}
		src += "emp(X) -> dept(X,D).\ndept(X,D) -> org(D).\n"
		prog := ntgd.MustParse(src)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				inst, err := ntgd.Chase(prog)
				if err != nil || inst.Len() != 3*n {
					b.Fatalf("size=%d err=%v", inst.Len(), err)
				}
			}
		})
	}
}

// BenchmarkSolverReuse pins the compile-once amortization of the
// Solver session API: N enumerations on one compiled Solver versus N
// one-shot StableModels calls (each of which re-validates,
// re-classifies, re-derives the chase budget, and recompiles the
// search metadata).
func BenchmarkSolverReuse(b *testing.B) {
	src := ""
	for i := 0; i < 24; i++ {
		src += fmt.Sprintf("item(i%d).\n", i)
	}
	src += "item(X), not out(X) -> in(X).\nitem(X), not in(X) -> out(X).\n"
	prog := ntgd.MustParse(src)
	// Each enumeration stops at the first model, the session pattern of
	// a consistency probe: the per-call cost is then dominated by what
	// Compile can amortize (validation, classification, the
	// chase-derived budget, the rule metadata).
	opt := ntgd.Options{MaxModels: 1}
	const runs = 8
	count := func(b *testing.B, s *ntgd.Solver) {
		n := 0
		for _, err := range s.Models(context.Background()) {
			if err != nil {
				b.Fatal(err)
			}
			n++
		}
		if n != 1 {
			b.Fatalf("models = %d, want 1", n)
		}
	}
	b.Run("compiled-once", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := ntgd.Compile(prog, ntgd.CompileOptions{Options: opt})
			if err != nil {
				b.Fatal(err)
			}
			for r := 0; r < runs; r++ {
				count(b, s)
			}
		}
	})
	b.Run("one-shot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for r := 0; r < runs; r++ {
				res, err := ntgd.StableModels(prog, opt)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Models) != 1 {
					b.Fatalf("models = %d, want 1", len(res.Models))
				}
			}
		}
	})
}
