package ntgd

import (
	"context"
	"fmt"

	"ntgd/internal/chase"
	"ntgd/internal/classify"
	"ntgd/internal/core"
	"ntgd/internal/efwfs"
	"ntgd/internal/engine"
	"ntgd/internal/logic"
	"ntgd/internal/parser"
	"ntgd/internal/soformula"
	"ntgd/internal/transform"
)

// Re-exported building blocks. The internal packages carry the full
// APIs; the aliases below form the supported public surface.
type (
	// Program is a parsed set of rules, facts and queries.
	Program = logic.Program
	// Rule is an NTGD/NDTGD (or an integrity constraint).
	Rule = logic.Rule
	// Atom is an atomic formula.
	Atom = logic.Atom
	// Term is a constant, labeled null, variable or function term.
	Term = logic.Term
	// Query is a normal (Boolean) conjunctive query.
	Query = logic.Query
	// FactStore is a set of ground atoms (databases, models).
	FactStore = logic.FactStore
	// Storage is the pluggable backend behind a root FactStore: interned
	// packed tuples, posting lists, and the bulk loader (see
	// CompileOptions.Store and the package doc's Storage section).
	Storage = logic.Storage
	// Symbols is the per-program term interner every Storage carries;
	// stores layered over one Storage share its table.
	Symbols = logic.Symbols
	// FactKey is a packed ground tuple: the interned predicate id
	// followed by the interned argument ids, 4 bytes each.
	FactKey = logic.FactKey
	// Options configures the stable model search (budget, witness
	// policy, extra constants).
	Options = core.Options
	// Result is a stable model enumeration outcome.
	Result = core.Result
	// QAResult is a query answering outcome.
	QAResult = core.QAResult
	// Stats is the uniform search-effort report shared by all three
	// semantics.
	Stats = core.Stats
	// AnswerTuple is one answer of an n-ary query.
	AnswerTuple = logic.AnswerTuple
	// Report is a syntactic classification report.
	Report = classify.Report
)

// The error taxonomy of the robustness layer: every terminal error an
// enumeration or query can surface matches exactly one of these under
// errors.Is (plus the caller's own context errors), so long-lived
// hosts dispatch on the class instead of parsing messages. In every
// case the partial Stats are preserved and the Solver stays reusable.
var (
	// ErrBudget is reported (alongside partial results) when a search
	// budget was hit; the enumeration may then be incomplete. All three
	// semantics report this same value.
	ErrBudget = engine.ErrBudget
	// ErrWallClock is reported when Options.MaxWallClock expired. It is
	// a budget: errors.Is(ErrWallClock, ErrBudget) holds.
	ErrWallClock = engine.ErrWallClock
	// ErrMemory is reported when Options.MaxMemory tripped: the run's
	// retained-allocation watermark — bytes of packed tuples added
	// across all branches plus stability-clause literals — grew past
	// the cap.
	ErrMemory = engine.ErrMemory
	// ErrAdmission is reported when Options.MaxConcurrentRuns kept a
	// run queued until its context ended. The context cause is wrapped:
	// errors.Is also matches context.Canceled/DeadlineExceeded.
	ErrAdmission = engine.ErrAdmission
	// ErrInternal marks a recovered engine panic, converted to a typed
	// error at the worker boundary with all workers joined; the
	// concrete *engine.InternalError carries the panic value and stack.
	ErrInternal = engine.ErrInternal
)

// Constructors re-exported for building programs programmatically.
var (
	// C constructs a constant term.
	C = logic.C
	// V constructs a variable term.
	V = logic.V
	// N constructs a labeled null.
	N = logic.N
	// A constructs an atom.
	A = logic.A
	// StoreOf builds a fact store from atoms.
	StoreOf = logic.StoreOf
	// NewStorage builds the default in-memory Storage backend.
	NewStorage = logic.NewStorage
	// NewFactStoreOn builds a root fact store over a Storage backend.
	NewFactStoreOn = logic.NewFactStoreOn
)

// Parse parses a program in the surface syntax (see package doc).
func Parse(src string) (*Program, error) { return parser.Parse(src) }

// ParseFile parses the program in the named file.
func ParseFile(path string) (*Program, error) { return parser.ParseFile(path) }

// MustParse parses src and panics on error; intended for tests and
// examples.
func MustParse(src string) *Program { return parser.MustParse(src) }

// Semantics selects which stable model semantics interprets the
// program.
type Semantics int

const (
	// SO is the paper's new second-order-based semantics
	// (Definition 1), applied directly to rules with existentials.
	SO Semantics = iota
	// LP is the classical approach: Skolemize, ground, and use the
	// standard stable model semantics of normal logic programs
	// (Section 3.1).
	LP
	// Operational is the chase-based semantics of Baget et al. [3]:
	// existential variables are always witnessed by fresh nulls.
	Operational
)

func (s Semantics) String() string {
	switch s {
	case SO:
		return "so"
	case LP:
		return "lp"
	case Operational:
		return "operational"
	default:
		return fmt.Sprintf("Semantics(%d)", int(s))
	}
}

// Mode selects cautious (certain) or brave (possible) reasoning.
type Mode int

const (
	// Cautious entailment: the query must hold in every stable model
	// (the paper's |=SMS).
	Cautious Mode = iota
	// Brave entailment: the query must hold in some stable model.
	Brave
)

func (m Mode) String() string {
	if m == Brave {
		return "brave"
	}
	return "cautious"
}

// StableModels enumerates the stable models of the program under the
// SO semantics. Use StableModelsUnder to select a different
// semantics.
//
// Deprecated: use Compile and Solver.Models, which compile the program
// once, stream the models, and support cancellation. This wrapper
// compiles a fresh Solver per call.
func StableModels(p *Program, opt Options) (*Result, error) {
	return StableModelsUnder(p, SO, opt)
}

// StableModelsUnder enumerates stable models under the chosen
// semantics. On budget exhaustion the partial Result is returned
// alongside ErrBudget.
//
// Deprecated: use Compile and Solver.Models, which compile the program
// once, stream the models, and support cancellation. This wrapper
// compiles a fresh Solver per call.
func StableModelsUnder(p *Program, sem Semantics, opt Options) (*Result, error) {
	s, err := Compile(p, CompileOptions{Semantics: sem, Options: opt})
	if err != nil {
		return nil, err
	}
	res := &Result{}
	for m, err := range s.Models(context.Background()) {
		if err != nil {
			res.Stats = s.Stats()
			res.Exhausted = s.Exhausted()
			return res, err
		}
		res.Models = append(res.Models, m)
	}
	res.Stats = s.Stats()
	res.Exhausted = s.Exhausted()
	return res, nil
}

// Entails answers a Boolean query under the SO semantics.
//
// Deprecated: use Compile and Solver.Entails, which compile the
// program once per Solver and support cancellation. This wrapper
// compiles a fresh Solver per call.
func Entails(p *Program, q Query, mode Mode, opt Options) (QAResult, error) {
	return EntailsUnder(p, q, mode, SO, opt)
}

// EntailsUnder answers a Boolean query under the chosen semantics and
// reasoning mode.
//
// Deprecated: use Compile and Solver.Entails, which compile the
// program once per Solver and support cancellation. This wrapper
// compiles a fresh Solver per call.
func EntailsUnder(p *Program, q Query, mode Mode, sem Semantics, opt Options) (QAResult, error) {
	s, err := Compile(p, CompileOptions{Semantics: sem, Options: opt})
	if err != nil {
		return QAResult{}, err
	}
	return s.Entails(context.Background(), q, mode)
}

// Answers computes the certain (Cautious) or possible (Brave) answers
// of an n-ary query under the SO semantics. Use AnswersUnder to select
// a different semantics.
//
// Deprecated: use Compile and Solver.Answers, which compile the
// program once per Solver and support cancellation. This wrapper
// compiles a fresh Solver per call.
func Answers(p *Program, q Query, mode Mode, opt Options) ([]AnswerTuple, bool, error) {
	return AnswersUnder(p, q, mode, SO, opt)
}

// AnswersUnder computes the certain (Cautious) or possible (Brave)
// answers of an n-ary query under the chosen semantics.
//
// Deprecated: use Compile and Solver.Answers, which compile the
// program once per Solver and support cancellation. This wrapper
// compiles a fresh Solver per call.
func AnswersUnder(p *Program, q Query, mode Mode, sem Semantics, opt Options) ([]AnswerTuple, bool, error) {
	s, err := Compile(p, CompileOptions{Semantics: sem, Options: opt})
	if err != nil {
		return nil, false, err
	}
	return s.Answers(context.Background(), q, mode)
}

// IsStableModel checks Definition 1 for a candidate interpretation
// (given by its positive part).
func IsStableModel(p *Program, m *FactStore) bool {
	return core.IsStableModel(p.Database(), p.Rules, m)
}

// Classify computes the syntactic classification (weak-acyclicity,
// stickiness, guardedness) of the program's rules.
func Classify(p *Program) *Report { return classify.Classify(p.Rules) }

// Chase runs the restricted chase on the program's database and its
// (negation- and disjunction-free) rules.
func Chase(p *Program) (*FactStore, error) {
	res, err := chase.Run(p.Database(), p.Rules, chase.Options{})
	if err != nil {
		return nil, err
	}
	return res.Instance, nil
}

// SMFormula renders the second-order formula SM[D,Σ] of Section 3.3.
func SMFormula(p *Program) string { return soformula.SM(p.Database(), p.Rules) }

// MMFormula renders the circumscription formula MM[D,Σ] of
// Section 3.2.
func MMFormula(p *Program) string { return soformula.MM(p.Database(), p.Rules) }

// EliminateDisjunction applies the Lemma 13 construction, returning an
// equivalent disjunction-free program (database and rules).
func EliminateDisjunction(p *Program) (*Program, error) {
	out, err := transform.EliminateDisjunction(p.Database(), p.Rules)
	if err != nil {
		return nil, err
	}
	np := &Program{Rules: out.Rules, Queries: p.Queries}
	np.Facts = append(np.Facts, out.DB.Atoms()...)
	return np, nil
}

// DatalogToWATGD applies the Theorem 15/16 construction to a
// DATALOG¬,∨ program with the given answer predicate and arity; it
// returns the weakly-acyclic rules and the fresh answer predicate.
func DatalogToWATGD(rules []*Rule, queryPred string, arity int) ([]*Rule, string, error) {
	out, err := transform.DatalogToWATGD(transform.DatalogQuery{Rules: rules, QueryPred: queryPred}, arity)
	if err != nil {
		return nil, "", err
	}
	return out.Rules, out.QueryPred, nil
}

// EFWFSEntails checks a query under the bounded equality-friendly
// well-founded semantics of [21] (see internal/efwfs for the precise
// bounded family).
func EFWFSEntails(p *Program, q Query, freshConstants, maxInstances int) (bool, error) {
	v, err := efwfs.Entails(p.Database(), p.Rules, q, efwfs.Options{
		FreshConstants:            freshConstants,
		MaxInstancesPerAssignment: maxInstances,
	})
	if err != nil {
		return false, err
	}
	return v.Entailed, nil
}

// WitnessFreshOnly and WitnessAnyDomain re-export the witness
// policies for Options.
const (
	WitnessAnyDomain = core.WitnessAnyDomain
	WitnessFreshOnly = core.WitnessFreshOnly
)
