//go:build failpoint

package ntgd_test

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"ntgd"
	"ntgd/internal/engine"
	"ntgd/internal/failpoint"
)

// chaosWorkload returns a program and options that deterministically
// reach the given failpoint site through the public Solver. Most sites
// are on the path of any branching program with stability checks (the
// coloring triangle); store/flatten additionally needs a search deep
// enough to exceed the snapshot-depth threshold, which a 40-item
// subset-choice program provides on its first root-to-leaf descent.
func chaosWorkload(t *testing.T, site string) (*ntgd.Program, ntgd.Options) {
	t.Helper()
	if site == failpoint.StoreFlatten {
		// Workers 1 keeps the MaxModels-truncated enumeration
		// deterministic, so the recovery run is comparable.
		return subsetProgram(40), ntgd.Options{MaxModels: 4, Workers: 1}
	}
	prog, err := ntgd.ParseFile("testdata/coloring.ntgd")
	if err != nil {
		t.Fatal(err)
	}
	return prog, ntgd.Options{Workers: 2}
}

// TestChaosEverySite arms each failpoint site in turn and drives a full
// enumeration through the public Solver: the injected panic must
// surface as a typed ErrInternal naming the site, with no goroutine
// leaked and the Solver still able to produce the exact reference
// model set once the site is disarmed.
func TestChaosEverySite(t *testing.T) {
	defer failpoint.Reset()
	for _, site := range failpoint.Sites() {
		t.Run(site, func(t *testing.T) {
			if site == failpoint.ServerHandler || site == failpoint.ServerShed {
				// Not reachable through the bare Solver; the
				// internal/server chaos suite drives these through
				// HTTP requests.
				t.Skip("covered by internal/server's chaos suite")
			}
			failpoint.Reset()
			prog, opt := chaosWorkload(t, site)
			baseline := runtime.NumGoroutine()
			s := ntgd.MustCompile(prog, ntgd.CompileOptions{Options: opt})

			// Arm before any run: several sites (the budget probe's
			// chase among them) execute once and are cached, so a prior
			// reference run would mask them.
			failpoint.Arm(site, 1)
			_, err := collectModels(context.Background(), s)
			if !errors.Is(err, ntgd.ErrInternal) {
				t.Fatalf("armed run err = %v, want ErrInternal", err)
			}
			var ie *engine.InternalError
			if !errors.As(err, &ie) {
				t.Fatalf("err %v does not carry *engine.InternalError", err)
			}
			if fp, ok := ie.Value.(failpoint.Panic); !ok || fp.Site != site {
				t.Fatalf("internal error value = %#v, want the %s failpoint", ie.Value, site)
			}
			if len(ie.Stack) == 0 {
				t.Fatal("internal error lost the panic stack")
			}
			if failpoint.Fired(site) == 0 {
				t.Fatalf("site %s never fired", site)
			}
			if !s.Exhausted() {
				t.Fatal("Exhausted() = false after an internal fault")
			}

			// Disarmed, the same Solver must recover completely: its
			// enumeration equals a fresh, never-faulted Solver's.
			failpoint.Disarm(site)
			got, err := collectModels(context.Background(), s)
			if err != nil {
				t.Fatalf("recovery run: %v", err)
			}
			ref := ntgd.MustCompile(prog, ntgd.CompileOptions{Options: opt})
			want, err := collectModels(context.Background(), ref)
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			if len(want) == 0 {
				t.Fatal("reference workload produced no models; the site was not stressed")
			}
			if !equalStringSlices(canonicalSet(got), canonicalSet(want)) {
				t.Fatalf("recovery diverged: %d models vs reference %d", len(got), len(want))
			}
			awaitGoroutines(t, baseline)
		})
	}
}

// TestChaosEntailsAndAnswers drives the query paths through an armed
// sink failpoint: both must return the typed fault (not wedge or leak)
// and succeed after disarming.
func TestChaosEntailsAndAnswers(t *testing.T) {
	defer failpoint.Reset()
	prog := ntgd.MustParse(`
item(i0). item(i1).
item(X), not out(X) -> in(X).
item(X), not in(X) -> out(X).
?- in(i0).
?-[X] in(X).
`)
	baseline := runtime.NumGoroutine()
	s := ntgd.MustCompile(prog, ntgd.CompileOptions{Options: ntgd.Options{Workers: 2}})
	failpoint.Arm(failpoint.CoreSink, 1)
	if _, err := s.Entails(context.Background(), prog.Queries[0], ntgd.Brave); !errors.Is(err, ntgd.ErrInternal) {
		t.Fatalf("Entails err = %v, want ErrInternal", err)
	}
	failpoint.Arm(failpoint.CoreSink, 1)
	if _, _, err := s.Answers(context.Background(), prog.Queries[1], ntgd.Brave); !errors.Is(err, ntgd.ErrInternal) {
		t.Fatalf("Answers err = %v, want ErrInternal", err)
	}
	failpoint.Disarm(failpoint.CoreSink)
	res, err := s.Entails(context.Background(), prog.Queries[0], ntgd.Brave)
	if err != nil || !res.Entailed {
		t.Fatalf("post-disarm Entails = (%v, %v), want (true, nil)", res.Entailed, err)
	}
	tuples, ok, err := s.Answers(context.Background(), prog.Queries[1], ntgd.Brave)
	if err != nil || !ok || len(tuples) != 2 {
		t.Fatalf("post-disarm Answers = (%d tuples, ok=%v, err=%v), want 2 brave answers", len(tuples), ok, err)
	}
	awaitGoroutines(t, baseline)
}

// TestChaosInternalIsDistinct pins the taxonomy boundaries hosts (and
// the ntgdctl exit-code switch) dispatch on: an injected fault is
// ErrInternal and nothing else.
func TestChaosInternalIsDistinct(t *testing.T) {
	defer failpoint.Reset()
	prog := subsetProgram(3)
	s := ntgd.MustCompile(prog, ntgd.CompileOptions{})
	failpoint.Arm(failpoint.CoreFork, 1)
	_, err := collectModels(context.Background(), s)
	failpoint.Disarm(failpoint.CoreFork)
	if !errors.Is(err, ntgd.ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	for name, other := range map[string]error{
		"ErrBudget":    ntgd.ErrBudget,
		"ErrMemory":    ntgd.ErrMemory,
		"ErrAdmission": ntgd.ErrAdmission,
	} {
		if errors.Is(err, other) {
			t.Fatalf("ErrInternal must not match %s", name)
		}
	}
}
