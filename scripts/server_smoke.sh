#!/usr/bin/env bash
# Server smoke: builds ntgdd, boots it on a random loopback port, and
# drives the HTTP contract end to end with curl — successful solve,
# entails, and batch requests; one request that must time out (504,
# class "timeout"); one that must be refused by admission (429, class
# "admission" — the daemon runs with -max-runs 1 -max-queued 1 and a
# slow request holding the only slot); one that must be shed
# immediately because the queue is full (429 with a Retry-After header,
# retry_after_ms in the body, and the refusal counted by reason in
# /statz); then a SIGTERM, asserting the daemon drains and exits 0
# within the deadline. CI runs this on the default leg.
set -euo pipefail

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
pid=""
cleanup() {
  [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

fail() { echo "server_smoke: FAIL: $*" >&2; exit 1; }

# field FILE KEY — extract a scalar field from a JSON body.
field() {
  python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))[sys.argv[2]])' "$1" "$2"
}

echo "server_smoke: building ntgdd..." >&2
go build -o "$tmp/ntgdd" ./cmd/ntgdd

"$tmp/ntgdd" -addr 127.0.0.1:0 -max-runs 1 -max-queued 1 -default-timeout 10s -drain 20s \
  >"$tmp/out.log" 2>"$tmp/err.log" &
pid=$!

base=""
for _ in $(seq 100); do
  base="$(sed -n 's/^ntgdd: listening on //p' "$tmp/out.log")"
  [ -n "$base" ] && break
  kill -0 "$pid" 2>/dev/null || { cat "$tmp/err.log" >&2; fail "daemon died on startup"; }
  sleep 0.1
done
[ -n "$base" ] || fail "daemon never reported its address"
echo "server_smoke: daemon at $base" >&2

prog='item(i0). item(i1). item(i2).\nitem(X), not out(X) -> in(X).\nitem(X), not in(X) -> out(X).\n'
# 2^24 models: no smoke-scale deadline can see the end of a cautious
# enumeration, making the timeout and admission probes deterministic.
bigprog=''
for i in $(seq 0 23); do bigprog="${bigprog}item(i${i}). "; done
bigprog="${bigprog}\nitem(X), not out(X) -> in(X).\nitem(X), not in(X) -> out(X).\n"

# post PATH BODY — POST and echo the HTTP status; body lands in
# $tmp/body, response headers in $tmp/headers.
post() {
  curl -s -o "$tmp/body" -D "$tmp/headers" -w '%{http_code}' -X POST "$base$1" -d "$2"
}

code=$(curl -s -o "$tmp/body" -w '%{http_code}' "$base/healthz")
[ "$code" = 200 ] || fail "healthz: status $code"

code=$(post /v1/solve "{\"program\":\"$prog\"}")
[ "$code" = 200 ] || { cat "$tmp/body" >&2; fail "solve: status $code"; }
count=$(field "$tmp/body" count)
[ "$count" = 8 ] || fail "solve: $count models, want 8"

code=$(post /v1/entails "{\"program\":\"$prog\",\"query\":\"?- in(i0).\",\"mode\":\"brave\"}")
[ "$code" = 200 ] || fail "entails: status $code"
[ "$(field "$tmp/body" entailed)" = True ] || fail "entails: not entailed"

code=$(post /v1/batch "{\"program\":\"$prog\",\"queries\":[{\"query\":\"?- in(i0).\",\"mode\":\"brave\"},{\"query\":\"?-[X] item(X).\",\"mode\":\"cautious\"}]}")
[ "$code" = 200 ] || fail "batch: status $code"
results=$(python3 -c 'import json,sys; print(len(json.load(open(sys.argv[1]))["results"]))' "$tmp/body")
[ "$results" = 2 ] || fail "batch: $results results, want 2"

echo "server_smoke: happy path ok" >&2

# Timeout: a cautious enumeration over 2^24 models under a 200ms
# deadline must answer 504/timeout.
code=$(post /v1/entails "{\"program\":\"$bigprog\",\"query\":\"?- item(i0).\",\"mode\":\"cautious\",\"timeout_ms\":200}")
[ "$code" = 504 ] || { cat "$tmp/body" >&2; fail "timeout probe: status $code, want 504"; }
[ "$(field "$tmp/body" class)" = timeout ] || fail "timeout probe: wrong class"
echo "server_smoke: deadline contract ok (504/timeout)" >&2

# Admission: park a slow request on the daemon's only engine slot, then
# probe with a short deadline — the probe must be refused with 429.
curl -s -o "$tmp/slow.body" -X POST "$base/v1/entails" \
  -d "{\"program\":\"$bigprog\",\"query\":\"?- item(i0).\",\"mode\":\"cautious\",\"timeout_ms\":4000}" &
slow=$!
sleep 0.5
code=$(post /v1/entails "{\"program\":\"$prog\",\"query\":\"?- in(i0).\",\"mode\":\"brave\",\"timeout_ms\":300}")
[ "$code" = 429 ] || { cat "$tmp/body" >&2; fail "admission probe: status $code, want 429"; }
[ "$(field "$tmp/body" class)" = admission ] || fail "admission probe: wrong class"
grep -qi '^retry-after:' "$tmp/headers" || fail "admission probe: no Retry-After header"
echo "server_smoke: admission contract ok (429/admission + Retry-After)" >&2

# Queue-full shed: with the slot still busy, park a second slow request
# as the queue's one allowed waiter, then probe with a generous
# deadline — the probe must be shed immediately (queue full), not
# parked until its deadline, carrying full retry guidance.
curl -s -o "$tmp/slow2.body" -X POST "$base/v1/entails" \
  -d "{\"program\":\"$bigprog\",\"query\":\"?- item(i0).\",\"mode\":\"cautious\",\"timeout_ms\":3000}" &
slow2=$!
sleep 0.5
t0=$(date +%s)
code=$(post /v1/entails "{\"program\":\"$prog\",\"query\":\"?- in(i0).\",\"mode\":\"brave\",\"timeout_ms\":30000}")
t1=$(date +%s)
[ "$code" = 429 ] || { cat "$tmp/body" >&2; fail "queue-full probe: status $code, want 429"; }
[ "$(field "$tmp/body" class)" = admission ] || fail "queue-full probe: wrong class"
grep -qi '^retry-after:' "$tmp/headers" || fail "queue-full probe: no Retry-After header"
retry_ms=$(field "$tmp/body" retry_after_ms)
[ "$retry_ms" -ge 1 ] 2>/dev/null || fail "queue-full probe: retry_after_ms=$retry_ms, want >= 1"
[ $((t1 - t0)) -le 5 ] || fail "queue-full probe took $((t1 - t0))s; shedding must be immediate, not parked"
wait "$slow" "$slow2" || true

# The refusals are visible in /statz, counted by reason.
curl -s -o "$tmp/statz" "$base/statz"
shed_full=$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["gate"]["shed_queue_full"])' "$tmp/statz")
[ "$shed_full" -ge 1 ] || fail "statz: gate.shed_queue_full=$shed_full, want >= 1"
errs_admission=$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["errors"].get("admission", 0))' "$tmp/statz")
[ "$errs_admission" -ge 2 ] || fail "statz: errors.admission=$errs_admission, want >= 2"
echo "server_smoke: queue-full shed ok (immediate 429 + Retry-After + statz counters)" >&2

# Drain: SIGTERM must end the process cleanly (exit 0) well inside the
# drain deadline.
kill -TERM "$pid"
status=0
wait "$pid" || status=$?
[ "$status" = 0 ] || { cat "$tmp/err.log" >&2; fail "drain: exit $status, want 0"; }
grep -q 'drained, exiting' "$tmp/err.log" || fail "drain: no clean-drain log line"
pid=""
echo "server_smoke: drain ok (exit 0)" >&2
echo "server_smoke: PASS" >&2
