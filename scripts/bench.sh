#!/usr/bin/env bash
# Runs the gate benchmarks for the CI bench-diff job and writes the raw
# `go test -bench` output to the given file. The job copies this script
# to /tmp before checking out the merge-base, so head and base run the
# exact same harness even when the script itself changed in the PR.
#
#   scripts/bench.sh /tmp/bench-head.txt
#
# BENCH_COUNT (default 6) controls the sample count benchstat and
# cmd/benchdiff aggregate over; BENCH_TIME (default 300ms) the per-run
# benchtime.
set -euo pipefail

out="${1:?usage: bench.sh <output-file>}"
count="${BENCH_COUNT:-6}"
benchtime="${BENCH_TIME:-300ms}"

# The gate set: the branch-heavy search (sequential and parallel), the
# incremental stability sessions (PR 5), the Solver-session
# amortization, the assumption-based SAT solving primitive, the store
# branching primitive, the adversarial join-order body pinning the
# PR 6 planner, and the PR 9 packed-store levers — the 10⁶-fact bulk
# load (AddAll vs per-fact Add) and point probes against that base.
# Names must stay unique across packages — cmd/benchdiff and benchstat
# aggregate on the bare benchmark name.
pattern='StableSearchChoiceWide|ParallelSearch|StabilitySession|SolveAssumptions|SolverReuse|StoreBranch|JoinOrderAdversarial|BulkLoad|StoreProbe'

go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -count "$count" \
  ./ ./internal/core/ ./internal/logic/ ./internal/sat/ | tee "$out"
