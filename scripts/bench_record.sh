#!/usr/bin/env bash
# Records one point of the benchmark trajectory: runs the smsbench
# experiment suite, the ntgdbench server-throughput grid, and the
# search/stability benchmarks, then writes BENCH_<n>.json at the
# repository root (default BENCH_5.json; override with BENCH_TAG).
#
#   scripts/bench_record.sh            # writes ./BENCH_5.json
#   BENCH_TAG=6 scripts/bench_record.sh
#
# Format of BENCH_<n>.json — a single JSON object:
#
#   {
#     "pr":         <n>,               trajectory tag
#     "recorded":   "<RFC3339 UTC>",   when the record was taken
#     "go":         "<go version>",
#     "experiments": [                 one entry per smsbench experiment,
#       {"name":"E1","ns_op":...,      verbatim from smsbench's JSON line
#        "models":...,"nodes":...,     (engine effort aggregated over the
#        "workers":...}, ...           experiment)
#       ...plus one entry per ntgdbench (experiment, concurrency)
#       point: {"name":"SrvSolveSubset/c=4","ns_op":<p50 latency>,
#       "p50_ns":...,"p95_ns":...,"p99_ns":...,"rps":...,
#       "models_per_sec":...,"workers":<client concurrency>,...}
#       ...plus one entry per ntgdbench -overload point:
#       {"name":"SrvOverload/shed/x4","ns_op":<p50 latency>,
#       "policy":"shed|park","offered_x":...,"offered_rps":...,
#       "goodput_rps":...,"shed_rate":...,...}
#     ],
#     "benchmarks": [                  one entry per `go test -bench` run
#       {"name":"StabilitySession/deep-pad/workers=1",
#        "ns_op":..., "allocs_op":..., "bytes_op":..}, ...
#     ]
#   }
#
# smsbench experiments run with -workers 1 so their output (and effort
# counters) stay reproducible; ntgdbench drives an in-process daemon
# (sequential engine, concurrency from the client side) through the
# embedded grid. Benchmarks run the bench.sh gate set plus the
# stability benchmarks at BENCH_TIME (default 300ms) x BENCH_COUNT
# (default 1; the trajectory stores a single sample — use bench.sh +
# benchstat for change detection).
set -euo pipefail

cd "$(dirname "$0")/.."

tag="${BENCH_TAG:-5}"
out="BENCH_${tag}.json"
benchtime="${BENCH_TIME:-300ms}"
count="${BENCH_COUNT:-1}"
# The gate benchmark set is defined once, in scripts/bench.sh; read it
# from there so the trajectory records exactly what the CI gate runs.
pattern="$(sed -n "s/^pattern='\(.*\)'$/\1/p" scripts/bench.sh)"
[ -n "$pattern" ] || { echo "bench_record: could not read pattern from scripts/bench.sh" >&2; exit 1; }

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "bench_record: running smsbench..." >&2
go run ./cmd/smsbench -workers 1 >"$tmp/sms.out" 2>"$tmp/sms.err" || {
  echo "smsbench failed:" >&2
  tail -20 "$tmp/sms.err" >&2
  exit 1
}
grep '^{' "$tmp/sms.out" >"$tmp/sms.jsonl" || true

echo "bench_record: running ntgdbench..." >&2
go run ./cmd/ntgdbench >"$tmp/srv.out" 2>"$tmp/srv.err" || {
  echo "ntgdbench failed:" >&2
  tail -20 "$tmp/srv.err" >&2
  exit 1
}
grep '^{' "$tmp/srv.out" >>"$tmp/sms.jsonl" || true

echo "bench_record: running ntgdbench -overload..." >&2
go run ./cmd/ntgdbench -overload >"$tmp/ovl.out" 2>"$tmp/ovl.err" || {
  echo "ntgdbench -overload failed:" >&2
  tail -20 "$tmp/ovl.err" >&2
  exit 1
}
grep '^{' "$tmp/ovl.out" >>"$tmp/sms.jsonl" || true

echo "bench_record: running go benchmarks..." >&2
go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -count "$count" \
  ./ ./internal/core/ ./internal/logic/ ./internal/sat/ >"$tmp/bench.out"

python3 - "$tmp/sms.jsonl" "$tmp/bench.out" "$tag" >"$out" <<'PY'
import json, re, subprocess, sys, datetime

sms_path, bench_path, tag = sys.argv[1], sys.argv[2], sys.argv[3]
experiments = []
with open(sms_path) as f:
    for line in f:
        line = line.strip()
        if line:
            experiments.append(json.loads(line))

benchmarks = []
pat = re.compile(
    r'^Benchmark(\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op'
    r'(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?')
with open(bench_path) as f:
    for line in f:
        m = pat.match(line)
        if not m:
            continue
        entry = {"name": m.group(1), "ns_op": float(m.group(2))}
        if m.group(3) is not None:
            entry["bytes_op"] = float(m.group(3))
        if m.group(4) is not None:
            entry["allocs_op"] = float(m.group(4))
        benchmarks.append(entry)

go_version = subprocess.run(["go", "version"], capture_output=True,
                            text=True).stdout.strip()
record = {
    "pr": int(tag),
    "recorded": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
    "go": go_version,
    "experiments": experiments,
    "benchmarks": benchmarks,
}
json.dump(record, sys.stdout, indent=1)
sys.stdout.write("\n")
PY

echo "bench_record: wrote $out (experiments: $(grep -c '^{' "$tmp/sms.jsonl" || echo 0), benchmarks: $(grep -c 'ns/op' "$tmp/bench.out"))" >&2
