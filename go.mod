module ntgd

go 1.24
