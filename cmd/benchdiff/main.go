// Command benchdiff compares two `go test -bench` outputs and fails on
// time regressions beyond a threshold. It is the CI gate behind the
// bench-diff job (.github/workflows/ci.yml): benchstat renders the
// human report that is uploaded as an artifact, while benchdiff makes
// the pass/fail decision with a stable, dependency-free parser.
//
//	benchdiff [-threshold 25] base.txt head.txt
//
// Both files hold raw `go test -bench` output (any -count; multiple
// packages are fine as long as benchmark names stay unique). Samples
// are aggregated per benchmark by median ns/op, which tolerates the
// odd noisy run without requiring benchstat's statistics. Benchmarks
// present in only one file are reported but never gate. The exit code
// is 1 when any benchmark present in both files regressed by more than
// threshold percent.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches one result line, capturing the benchmark name
// (with the trailing -GOMAXPROCS token stripped) and the ns/op figure.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9]+(?:\.[0-9]+)?) ns/op`)

// parseBench extracts the ns/op samples per benchmark name from raw
// `go test -bench` output.
func parseBench(r io.Reader) (map[string][]float64, error) {
	out := make(map[string][]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %v", sc.Text(), err)
		}
		out[m[1]] = append(out[m[1]], ns)
	}
	return out, sc.Err()
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// row is one benchmark's comparison.
type row struct {
	name       string
	base, head float64 // median ns/op; 0 = absent on that side
	delta      float64 // head/base - 1, in percent
	regressed  bool
}

// compare aggregates both sides and flags every common benchmark whose
// median slowed down by more than threshold percent.
func compare(base, head map[string][]float64, threshold float64) []row {
	names := make(map[string]bool, len(base)+len(head))
	for n := range base {
		names[n] = true
	}
	for n := range head {
		names[n] = true
	}
	var rows []row
	for n := range names {
		r := row{name: n}
		if b, ok := base[n]; ok {
			r.base = median(b)
		}
		if h, ok := head[n]; ok {
			r.head = median(h)
		}
		if r.base > 0 && r.head > 0 {
			r.delta = (r.head/r.base - 1) * 100
			r.regressed = r.delta > threshold
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	return rows
}

func loadFile(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseBench(f)
}

func main() {
	threshold := flag.Float64("threshold", 25, "fail when a benchmark's median ns/op regressed by more than this many percent")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold pct] base.txt head.txt")
		os.Exit(2)
	}
	base, err := loadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	head, err := loadFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	rows := compare(base, head, *threshold)
	if len(rows) == 0 {
		// An empty comparison almost always means a broken bench run;
		// fail loudly rather than silently passing the gate.
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark results found in either input")
		os.Exit(2)
	}
	failed := false
	fmt.Printf("%-56s %14s %14s %9s\n", "benchmark", "base ns/op", "head ns/op", "delta")
	for _, r := range rows {
		switch {
		case r.base == 0:
			fmt.Printf("%-56s %14s %14.0f %9s\n", r.name, "(new)", r.head, "-")
		case r.head == 0:
			fmt.Printf("%-56s %14.0f %14s %9s\n", r.name, r.base, "(gone)", "-")
		default:
			mark := ""
			if r.regressed {
				mark = "  REGRESSION"
				failed = true
			}
			fmt.Printf("%-56s %14.0f %14.0f %+8.1f%%%s\n", r.name, r.base, r.head, r.delta, mark)
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: time regression beyond %.0f%% detected\n", *threshold)
		os.Exit(1)
	}
}
