package main

import (
	"strings"
	"testing"
)

const baseOut = `
goos: linux
goarch: amd64
pkg: ntgd/internal/core
BenchmarkStableSearchChoiceWide/items=5/pad=64-8         	     100	   1000000 ns/op	  310 B/op	       5 allocs/op
BenchmarkStableSearchChoiceWide/items=5/pad=64-8         	     100	   1200000 ns/op	  310 B/op	       5 allocs/op
BenchmarkStableSearchChoiceWide/items=5/pad=64-8         	     100	   1100000 ns/op	  310 B/op	       5 allocs/op
BenchmarkStoreBranch/snapshot-8                          	 5000000	       250 ns/op
BenchmarkStoreBranch/snapshot-8                          	 5000000	       260 ns/op
BenchmarkGone-8                                          	     100	     50000 ns/op
PASS
ok  	ntgd/internal/core	2.1s
`

const headOut = `
pkg: ntgd/internal/core
BenchmarkStableSearchChoiceWide/items=5/pad=64-8         	     100	   1050000 ns/op
BenchmarkStableSearchChoiceWide/items=5/pad=64-8         	     100	   1150000 ns/op
BenchmarkStableSearchChoiceWide/items=5/pad=64-8         	     100	   1100000 ns/op
BenchmarkStoreBranch/snapshot-8                          	 5000000	       400 ns/op
BenchmarkStoreBranch/snapshot-8                          	 5000000	       410 ns/op
BenchmarkParallelSearch/workers=4-8                      	     100	    500000 ns/op
PASS
`

func parse(t *testing.T, s string) map[string][]float64 {
	t.Helper()
	m, err := parseBench(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseBenchStripsGomaxprocsAndAggregates(t *testing.T) {
	m := parse(t, baseOut)
	if got := len(m["BenchmarkStableSearchChoiceWide/items=5/pad=64"]); got != 3 {
		t.Fatalf("samples = %d, want 3 (names must strip the -N suffix); keys: %v", got, m)
	}
	if med := median(m["BenchmarkStableSearchChoiceWide/items=5/pad=64"]); med != 1100000 {
		t.Fatalf("median = %v, want 1100000", med)
	}
	if med := median(m["BenchmarkStoreBranch/snapshot"]); med != 255 {
		t.Fatalf("even-count median = %v, want 255", med)
	}
}

func TestCompareFlagsOnlyRealRegressions(t *testing.T) {
	rows := compare(parse(t, baseOut), parse(t, headOut), 25)
	byName := map[string]row{}
	for _, r := range rows {
		byName[r.name] = r
	}
	if r := byName["BenchmarkStableSearchChoiceWide/items=5/pad=64"]; r.regressed {
		t.Fatalf("within-threshold change flagged as regression: %+v", r)
	}
	if r := byName["BenchmarkStoreBranch/snapshot"]; !r.regressed {
		t.Fatalf("~59%% slowdown not flagged: %+v", r)
	}
	if r := byName["BenchmarkParallelSearch/workers=4"]; r.base != 0 || r.regressed {
		t.Fatalf("benchmark new on head must not gate: %+v", r)
	}
	if r := byName["BenchmarkGone"]; r.head != 0 || r.regressed {
		t.Fatalf("benchmark missing on head must not gate: %+v", r)
	}
}

func TestCompareThresholdBoundary(t *testing.T) {
	base := map[string][]float64{"BenchmarkX": {100}}
	head := map[string][]float64{"BenchmarkX": {125}}
	if rows := compare(base, head, 25); rows[0].regressed {
		t.Fatalf("exactly +25%% must not fail a 25%% threshold: %+v", rows[0])
	}
	head["BenchmarkX"] = []float64{126}
	if rows := compare(base, head, 25); !rows[0].regressed {
		t.Fatalf("+26%% must fail a 25%% threshold: %+v", rows[0])
	}
}
