// Command smsbench regenerates every experiment of EXPERIMENTS.md
// (E1–E15): the verdict matrices of the paper's worked examples, the
// Figure 1 marking, the complexity-shape measurements, and the
// encoding validations. Run all experiments or a comma-separated
// subset:
//
//	smsbench            # all
//	smsbench -run E1,E5
//
// -workers sets the worker-pool size of the SO/operational searches
// (default 1 so experiment output stays reproducible; 0 = GOMAXPROCS).
// -wall puts a per-run wall-clock budget on every SO/operational
// search (via the same robustness layer the public Solver uses);
// truncated runs print their partial stats instead of failing.
// After each experiment one machine-readable JSON line is printed —
// {"name","ns_op","models","nodes","workers"} — for the CI bench-diff
// job and BENCH_*.json trajectories to consume.
//
// For performance work, -cpuprofile and -memprofile write pprof
// profiles covering the selected experiments:
//
//	smsbench -run E7 -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"ntgd"
	"ntgd/internal/baget"
	"ntgd/internal/chase"
	"ntgd/internal/classify"
	"ntgd/internal/core"
	"ntgd/internal/efwfs"
	"ntgd/internal/encodings"
	"ntgd/internal/engine"
	"ntgd/internal/lp"
	"ntgd/internal/qbf"
	"ntgd/internal/soformula"
	"ntgd/internal/transform"
)

const fatherSrc = `
person(alice).
person(X) -> hasFather(X,Y).
hasFather(X,Y) -> sameAs(Y,Y).
hasFather(X,Y), hasFather(X,Z), not sameAs(Y,Z) -> abnormal(X).
`

var experiments = map[string]func(){
	"E1":  runE1,
	"E2":  runE2,
	"E3":  runE3,
	"E4":  runE4,
	"E5":  runE5,
	"E6":  runE6,
	"E7":  runE7,
	"E8":  runE8,
	"E9":  runE9,
	"E10": runE10,
	"E11": runE11,
	"E12": runE12,
	"E13": runE13,
	"E14": runE14,
	"E15": runE15,
}

func main() {
	// All exits funnel through run's return value so deferred profile
	// writers actually run (os.Exit would skip them, truncating the
	// pprof files).
	os.Exit(run())
}

func run() (code int) {
	defer func() {
		if r := recover(); r != nil {
			fe, ok := r.(fatalError)
			if !ok {
				panic(r)
			}
			fmt.Fprintln(os.Stderr, "error:", fe.err)
			code = 1
		}
	}()
	runFlag := flag.String("run", "all", "comma-separated experiment ids (E1..E15) or 'all'")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	timeout := flag.Duration("timeout", 0, "abort the selected experiments after this long, printing partial stats (0 = none)")
	flag.IntVar(&workers, "workers", 1, "worker pool size for the SO/operational searches (1 = sequential, reproducible output order; 0 = GOMAXPROCS)")
	flag.DurationVar(&wallClock, "wall", 0, "per-run wall-clock budget for the SO/operational searches, printing partial stats on expiry (0 = none)")
	flag.Parse()
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		benchCtx = ctx
	}
	// The heap-profile defer is registered first so that (defers being
	// LIFO) the CPU profile has stopped before the forced GC and heap
	// write happen — otherwise they would pollute the CPU profile's tail.
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			must(err)
			runtime.GC() // settle allocations so the heap profile is meaningful
			must(pprof.WriteHeapProfile(f))
			must(f.Close())
		}()
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		must(err)
		must(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			must(f.Close())
		}()
	}
	var ids []string
	if *runFlag == "all" {
		for id := range experiments {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool {
			return len(ids[i]) < len(ids[j]) || (len(ids[i]) == len(ids[j]) && ids[i] < ids[j])
		})
	} else {
		ids = strings.Split(*runFlag, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		fn, ok := experiments[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			return 2
		}
		expStats = engine.Stats{}
		start := time.Now()
		fn()
		printExperimentJSON(id, time.Since(start))
		fmt.Println()
	}
	return 0
}

// workers is the -workers flag, threaded into every SO/operational
// engine the experiments compile (0 = GOMAXPROCS).
var workers int

// wallClock is the -wall flag: a per-run wall-clock budget installed by
// wrapping each compiled engine in the robustness layer's Guard.
var wallClock time.Duration

// expStats accumulates the engine effort of the experiment currently
// running; the context-aware helpers below feed it.
var expStats engine.Stats

// printExperimentJSON emits one machine-readable line per experiment —
// name, wall time, and the aggregated engine effort — for the CI
// bench-diff job and BENCH_*.json trajectories to consume.
func printExperimentJSON(id string, elapsed time.Duration) {
	w := workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	line, err := json.Marshal(struct {
		Name    string `json:"name"`
		NsOp    int64  `json:"ns_op"`
		Models  int64  `json:"models"`
		Nodes   int64  `json:"nodes"`
		Workers int    `json:"workers"`
	}{id, elapsed.Nanoseconds(), expStats.ModelsEmitted, expStats.Nodes, w})
	must(err)
	fmt.Printf("%s\n", line)
}

func header(id, title string) {
	fmt.Printf("== %s: %s ==\n", id, title)
}

func verdict(v bool) string {
	if v {
		return "entailed"
	}
	return "not entailed"
}

// fatalError aborts run via panic so that in-flight defers (the pprof
// writers) still execute; run's recover turns it into exit code 1.
type fatalError struct{ err error }

func must(err error) {
	if err != nil {
		panic(fatalError{err})
	}
}

// benchCtx is the run context shared by every experiment: Background
// unless -timeout installed a deadline, in which case mid-search
// cancellation aborts the enumeration and the helpers below print the
// partial effort instead of failing.
var benchCtx = context.Background()

// guarded wraps a compiled engine in the robustness layer when -wall
// installed a budget (the raw engines do not read MaxWallClock).
func guarded(e engine.Engine) engine.Engine {
	if wallClock <= 0 {
		return e
	}
	return engine.Guard(e, engine.GuardConfig{WallClock: wallClock})
}

func soEngine(db *ntgd.FactStore, rules []*ntgd.Rule, opt core.Options) engine.Engine {
	opt.Workers = workers
	c, err := core.Compile(db, rules, opt)
	must(err)
	return guarded(c)
}

func opEngine(db *ntgd.FactStore, rules []*ntgd.Rule, opt core.Options) engine.Engine {
	opt.Workers = workers
	c, err := baget.Compile(db, rules, opt)
	must(err)
	return guarded(c)
}

func lpEngine(db *ntgd.FactStore, rules []*ntgd.Rule) engine.Engine {
	c, err := lp.Compile(db, rules, lp.Options{})
	must(err)
	return c
}

func ctxExpired(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

func reportPartial(st engine.Stats, err error) {
	fmt.Printf("  [%v: partial results; nodes=%d models=%d]\n", err, st.Nodes, st.ModelsEmitted)
}

// checkRun reports context expiry and the opt-in -wall budget as
// partial-results notes and treats every other error — including node
// or atom budget exhaustion — as fatal: the experiments are sized to
// complete, so a truncated enumeration would silently corrupt their
// cross-checks. E9, which probes budgets on purpose, uses
// modelsBudgeted instead.
func checkRun(st engine.Stats, err error) {
	switch {
	case err == nil:
	case ctxExpired(err), errors.Is(err, engine.ErrWallClock):
		reportPartial(st, err)
	default:
		must(err)
	}
}

func cautiousCtx(e engine.Engine, q ntgd.Query) engine.QAResult {
	res, err := engine.CautiousEntails(benchCtx, e, engine.Params{}, q)
	expStats.Add(res.Stats)
	checkRun(res.Stats, err)
	return res
}

func braveCtx(e engine.Engine, q ntgd.Query) engine.QAResult {
	res, err := engine.BraveEntails(benchCtx, e, engine.Params{}, q)
	expStats.Add(res.Stats)
	checkRun(res.Stats, err)
	return res
}

func modelsCtx(e engine.Engine, maxModels int) *engine.Result {
	res, err := engine.CollectModels(benchCtx, e, engine.Params{}, maxModels)
	expStats.Add(res.Stats)
	checkRun(res.Stats, err)
	return res
}

// modelsBudgeted is modelsCtx for runs that deliberately exhaust a
// budget (E9's divergence gadgets): ErrBudget passes through, with
// Result.Exhausted marking the truncation.
func modelsBudgeted(e engine.Engine, maxModels int) *engine.Result {
	res, err := engine.CollectModels(benchCtx, e, engine.Params{}, maxModels)
	expStats.Add(res.Stats)
	if !errors.Is(err, engine.ErrBudget) {
		checkRun(res.Stats, err)
	}
	return res
}

// E1 — Examples 1, 2, 4: the verdict matrix for the father program
// under SO vs LP.
func runE1() {
	header("E1", "Examples 1/2/4 — father program, SO vs LP verdicts")
	prog := ntgd.MustParse(fatherSrc + `
?- person(alice), not hasFather(alice,bob).
?- person(X), not abnormal(X).
?- person(X), abnormal(X).
`)
	names := []string{
		"q1 = ¬hasFather(alice,bob)",
		"q2 = ∃X person ∧ ¬abnormal",
		"q3 = ∃X person ∧ abnormal",
	}
	paper := [][2]string{
		{"not entailed", "entailed"}, // q1: SO refutes, LP wrongly entails
		{"entailed", "entailed"},
		{"not entailed", "not entailed"},
	}
	fmt.Printf("%-32s | %-14s | %-14s | paper(SO/LP)\n", "query", "SO", "LP")
	db := prog.Database()
	soEng := soEngine(db, prog.Rules, core.Options{})
	lpEng := lpEngine(db, prog.Rules)
	for i, q := range prog.Queries {
		so := cautiousCtx(soEng, q)
		lpv := cautiousCtx(lpEng, q)
		fmt.Printf("%-32s | %-14s | %-14s | %s/%s\n", names[i], verdict(so.Entailed), verdict(lpv.Entailed), paper[i][0], paper[i][1])
	}
	res := modelsCtx(soEng, 0)
	fmt.Printf("SO stable models (no query constants): %d\n", len(res.Models))
	for _, m := range res.Models {
		fmt.Printf("  %s\n", m.CanonicalString())
	}
}

// E2 — the operational semantics of Baget et al. [3] on Example 2.
func runE2() {
	header("E2", "Example 2 under the operational semantics of [3]")
	prog := ntgd.MustParse(fatherSrc + "?- person(alice), not hasFather(alice,bob).")
	op := opEngine(prog.Database(), prog.Rules, core.Options{})
	res := cautiousCtx(op, prog.Queries[0])
	fmt.Printf("q = ¬hasFather(alice,bob): %s   (paper: unexpectedly entailed — fresh nulls only)\n", verdict(res.Entailed))
	ms := modelsCtx(op, 0)
	for _, m := range ms.Models {
		fmt.Printf("  operational model: %s\n", m.CanonicalString())
	}
}

// E3 — EFWFS on Examples 2 and 3.
func runE3() {
	header("E3", "EFWFS (bounded family) on Examples 2 and 3")
	prog := ntgd.MustParse(fatherSrc)
	q2 := ntgd.MustParse(fatherSrc + "?- person(alice), not hasFather(alice,bob).").Queries[0]
	q3 := ntgd.MustParse(fatherSrc + "?- person(alice), not abnormal(alice).").Queries[0]
	v2, err := efwfs.Entails(prog.Database(), prog.Rules, q2, efwfs.Options{FreshConstants: 1, MaxInstancesPerAssignment: 1})
	must(err)
	fmt.Printf("Example 2, q = ¬hasFather(alice,bob): %s (paper: not entailed — the intended answer)\n", verdict(v2.Entailed))
	v3, err := efwfs.Entails(prog.Database(), prog.Rules, q3, efwfs.Options{FreshConstants: 2, MaxInstancesPerAssignment: 2})
	must(err)
	fmt.Printf("Example 3, q = ¬abnormal(alice):      %s (paper: unexpectedly NOT entailed)\n", verdict(v3.Entailed))
	if v3.CounterTrue != nil {
		fmt.Printf("  counterexample WFS model: %s\n", v3.CounterTrue.CanonicalString())
	}
}

// E4 — MM[D,Σ] vs SM[D,Σ] on the Section 3.2 program.
func runE4() {
	header("E4", "Section 3.2/3.3 — minimal models vs stable models")
	prog := ntgd.MustParse(`
p(0).
p(X), not t(X) -> r(X).
r(X) -> t(X).
`)
	db := prog.Database()
	j := ntgd.StoreOf(ntgd.A("p", ntgd.C("0")), ntgd.A("t", ntgd.C("0")))
	fmt.Printf("J = {p(0), t(0)}: minimal model: %v, stable model: %v (paper: true / false)\n",
		core.IsMinimalModel(db, prog.Rules, j), core.IsStableModel(db, prog.Rules, j))
	res := modelsCtx(soEngine(db, prog.Rules, core.Options{}), 0)
	fmt.Printf("stable models of (D,Σ): %d (paper: none)\n", len(res.Models))
	fmt.Println("SM[D,Σ]:")
	fmt.Println(indent(soformula.SM(db, prog.Rules)))
}

// E5 — Figure 1: the stickiness marking procedure.
func runE5() {
	header("E5", "Figure 1 — stickiness marking")
	sets := []struct {
		name string
		src  string
	}{
		{"set (a): sticky", "t(X,Y,Z) -> s(Y,W).\nr(X,Y), p(Y,Z) -> t(X,Y,W).\n"},
		{"set (b): not sticky", "t(X,Y,Z) -> s(X,W).\nr(X,Y), p(Y,Z) -> t(X,Y,W).\n"},
	}
	for _, s := range sets {
		rules := ntgd.MustParse(s.src).Rules
		m := classify.MarkVariables(rules)
		fmt.Printf("%s\n%s", s.name, indent(m.String()))
		fmt.Printf("  sticky: %v, violations: %v\n", classify.IsSticky(rules), m.Violations())
	}
}

// E6 — Theorem 1: SMS_LP = SMS_SO on Skolemized programs.
func runE6() {
	header("E6", "Theorem 1 — LP and SO coincide on Skolemized programs")
	rng := rand.New(rand.NewSource(23))
	agree, total := 0, 30
	for i := 0; i < total; i++ {
		src := randomNormalProgram(rng)
		prog := ntgd.MustParse(src)
		db := prog.Database()
		lpRes := modelsCtx(lpEngine(db, prog.Rules), 0)
		soRes := modelsCtx(soEngine(db, prog.Rules, core.Options{}), 0)
		if sameModelSets(lpRes.Models, soRes.Models) {
			agree++
		} else {
			fmt.Printf("  DISAGREEMENT on:\n%s\n", src)
		}
	}
	fmt.Printf("random existential-free programs with identical model sets: %d/%d (paper: all)\n", agree, total)
}

// E7 — Theorems 3/6: decidable, but exponential guess-and-check vs
// the PTIME positive chase.
func runE7() {
	header("E7", "Theorems 3/6 — WATGD¬ scaling vs positive chase")
	fmt.Printf("%-10s %-14s %-14s\n", "n", "ntgd(ms)", "models")
	for _, n := range []int{1, 2, 3, 4, 5} {
		src := ""
		for i := 0; i < n; i++ {
			src += fmt.Sprintf("item(i%d).\n", i)
		}
		src += "item(X), not out(X) -> in(X).\nitem(X), not in(X) -> out(X).\n"
		prog := ntgd.MustParse(src)
		start := time.Now()
		res := modelsCtx(soEngine(prog.Database(), prog.Rules, core.Options{}), 0)
		fmt.Printf("%-10d %-14.2f %-14d\n", n, float64(time.Since(start).Microseconds())/1000, len(res.Models))
	}
	fmt.Printf("%-10s %-14s %-14s\n", "n", "chase(ms)", "atoms")
	for _, n := range []int{8, 32, 128, 512} {
		src := ""
		for i := 0; i < n; i++ {
			src += fmt.Sprintf("item(i%d).\n", i)
		}
		src += "item(X) -> tagged(X,Y).\n"
		prog := ntgd.MustParse(src)
		start := time.Now()
		res, err := chase.RunCtx(benchCtx, prog.Database(), prog.Rules, chase.Options{})
		if ctxExpired(err) {
			fmt.Printf("  [%v: chase aborted at %d atoms]\n", err, res.Instance.Len())
			continue
		}
		must(err)
		fmt.Printf("%-10d %-14.2f %-14d\n", n, float64(time.Since(start).Microseconds())/1000, res.Instance.Len())
	}
}

// E8 — the 2-QBF∃ reduction of Section 5.3 vs the direct evaluators.
func runE8() {
	header("E8", "Section 5.3 — 2-QBF∃ reduction vs direct evaluation")
	rng := rand.New(rand.NewSource(7))
	lit := func(v string) qbf.Lit { return qbf.Lit{Var: v} }
	nlit := func(v string) qbf.Lit { return qbf.Lit{Var: v, Neg: true} }
	instances := []qbf.Formula{
		// ∃x∀y: (x∧y) ∨ (x∧¬y) — satisfiable.
		{Exists: []string{"x"}, Forall: []string{"y"},
			Terms: []qbf.Term{{lit("x"), lit("y"), lit("y")}, {lit("x"), nlit("y"), nlit("y")}}},
	}
	for i := 0; i < 4; i++ {
		instances = append(instances, qbf.Random(rng, 1, 1, 2))
	}
	fmt.Printf("%-34s %-8s %-10s %-10s %s\n", "formula", "brute", "sat-oracle", "encoding", "time")
	for _, f := range instances {
		inst, err := encodings.EncodeQBF(f)
		must(err)
		start := time.Now()
		res := cautiousCtx(soEngine(inst.DB, inst.Rules, core.Options{}), inst.Query)
		enc := !res.Entailed
		fmt.Printf("%-34s %-8v %-10v %-10v %s\n", f, f.EvalBrute(), f.EvalSAT(), enc, time.Since(start).Round(time.Millisecond))
	}
}

// E9 — the undecidability gadgets of Theorems 4 and 5: sticky (resp.
// guarded) sets outside WATGD¬ whose fresh-null chase grows without
// bound (the infinite-grid machinery of the proofs). Under the SO
// semantics finite stable models may still exist via constant reuse;
// the divergence is exhibited under the fresh-only witness policy.
func runE9() {
	header("E9", "Theorems 4/5 — sticky and guarded gadgets diverge")
	sticky := ntgd.MustParse(`
p(a). s(b).
p(X), s(Y) -> t(X,Y).
t(X,Y) -> u(Y,Z).
u(Y,Z) -> s(Z).
`)
	rep := classify.Classify(sticky.Rules)
	fmt.Printf("cartesian gadget: sticky=%v weaklyAcyclic=%v (paper: sticky, not WA)\n", rep.Sticky, rep.WeaklyAcyclic)
	for _, budget := range []int{16, 32, 64} {
		res := modelsBudgeted(soEngine(sticky.Database(), sticky.Rules, core.Options{
			MaxAtoms: budget, MaxNodes: 1 << 20,
			WitnessPolicy: core.WitnessFreshOnly,
		}), 1)
		fmt.Printf("  fresh-only, atom budget %2d: exhausted=%v nodes=%d\n", budget, res.Exhausted, res.Stats.Nodes)
	}
	guarded := ntgd.MustParse(`g(a,b). g(X,Y), not stop(Y) -> g(Y,Z).`)
	grep := classify.Classify(guarded.Rules)
	fmt.Printf("growing-guard gadget: guarded=%v weaklyAcyclic=%v (paper: guarded, not WA)\n", grep.Guarded, grep.WeaklyAcyclic)
	for _, budget := range []int{16, 32, 64} {
		res := modelsBudgeted(soEngine(guarded.Database(), guarded.Rules, core.Options{
			MaxAtoms: budget, MaxNodes: 1 << 20,
			WitnessPolicy: core.WitnessFreshOnly,
		}), 1)
		fmt.Printf("  fresh-only, atom budget %2d: exhausted=%v nodes=%d models=%d\n",
			budget, res.Exhausted, res.Stats.Nodes, len(res.Models))
	}
}

// E10 — Lemma 13 / Theorem 12: disjunction elimination.
func runE10() {
	header("E10", "Lemma 13 — disjunction elimination preserves answers")
	src := `
node(a). node(b). edge(a,b).
node(X) -> red(X) | green(X).
edge(X,Y), red(X), red(Y) -> clash.
edge(X,Y), green(X), green(Y) -> clash.
`
	prog := ntgd.MustParse(src)
	elim, err := transform.EliminateDisjunction(prog.Database(), prog.Rules)
	must(err)
	fmt.Printf("rules: %d disjunctive -> %d normal\n", len(prog.Rules), len(elim.Rules))
	native := soEngine(prog.Database(), prog.Rules, core.Options{})
	elimEng := soEngine(elim.DB, elim.Rules, core.Options{})
	for _, qs := range []string{"?- clash.", "?- red(a).", "?- node(a), not clash."} {
		q := ntgd.MustParse(qs).Queries[0]
		a := cautiousCtx(native, q)
		b := cautiousCtx(elimEng, q)
		fmt.Printf("  %-28s native=%-12s eliminated=%-12s agree=%v\n", qs, verdict(a.Entailed), verdict(b.Entailed), a.Entailed == b.Entailed)
	}
}

// E11 — Theorems 15/16: DATALOG¬,∨ = WATGD¬.
func runE11() {
	header("E11", "Theorem 15 — DATALOG∨ vs WATGD¬ on 2-coloring saturation")
	for _, tc := range []struct {
		name string
		src  string
		want bool // brave bad
	}{
		{"path a-b (2-colorable)", `
node(a). node(b). edge(a,b).
node(X) -> r(X) | g(X).
edge(X,Y), r(X), r(Y) -> w.
edge(X,Y), g(X), g(Y) -> w.
w, node(X) -> r(X).
w, node(X) -> g(X).
w -> bad.
`, false},
		{"triangle (not 2-colorable)", `
node(a). node(b). node(c). edge(a,b). edge(b,c). edge(a,c).
node(X) -> r(X) | g(X).
edge(X,Y), r(X), r(Y) -> w.
edge(X,Y), g(X), g(Y) -> w.
w, node(X) -> r(X).
w, node(X) -> g(X).
w -> bad.
`, true},
	} {
		prog := ntgd.MustParse(tc.src)
		db := prog.Database()
		q := ntgd.Query{Pos: []ntgd.Atom{ntgd.A("bad")}}
		native := braveCtx(soEngine(db, prog.Rules, core.Options{}), q)
		w, err := transform.DatalogToWATGD(transform.DatalogQuery{Rules: prog.Rules, QueryPred: "bad"}, 0)
		must(err)
		qT := ntgd.Query{Pos: []ntgd.Atom{ntgd.A(w.QueryPred)}}
		trans := braveCtx(soEngine(db, w.Rules, core.Options{}), qT)
		fmt.Printf("  %-28s native=%v watgd=%v expected=%v weaklyAcyclic(translation)=%v\n",
			tc.name, native.Entailed, trans.Entailed, tc.want, classify.IsWeaklyAcyclic(w.Rules))
	}
}

// E12 — Section 7.1: 2-QBF via the brave query language WATGD¬_b.
func runE12() {
	header("E12", "Section 7.1 — 2-QBF∃ via WATGD¬ under brave semantics")
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 4; i++ {
		f := qbf.Random(rng, 1, 1, 2)
		db, err := encodings.QBFDatabase(f)
		must(err)
		rules, q := encodings.QBFBraveQuery()
		res := braveCtx(soEngine(db, rules, core.Options{}), q)
		fmt.Printf("  %-34s brave ans=%v brute=%v\n", f, res.Entailed, f.EvalBrute())
	}
}

// E13 — Section 7.1: certain k-colorability.
func runE13() {
	header("E13", "Section 7.1 — certain k-colorability (CERT3COL-style)")
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 4; i++ {
		g := encodings.CertColGraph{K: 2}
		for v := 0; v < 3; v++ {
			g.Vertices = append(g.Vertices, fmt.Sprintf("v%d", v))
		}
		g.Vars = []string{"p"}
		for e := 0; e < 2; e++ {
			u, w := rng.Intn(3), rng.Intn(3)
			for w == u {
				w = rng.Intn(3)
			}
			g.Edges = append(g.Edges, encodings.LabeledEdge{
				U: g.Vertices[u], W: g.Vertices[w], Var: "p", Neg: rng.Intn(2) == 1})
		}
		res := braveCtx(soEngine(g.Database(), g.DatalogProgram(), core.Options{}), g.BadQuery())
		fmt.Printf("  instance %d: encoding certain=%v brute=%v\n", i, !res.Entailed, g.BruteForce())
	}
}

// E14 — Section 7.1: consistent query answering.
func runE14() {
	header("E14", "Section 7.1 — consistent query answering (⊆-repairs)")
	prog := ntgd.MustParse(`
mgr(sales, ann).
mgr(sales, bob).
mgr(hr, eve).
neq(ann,bob). neq(bob,ann).
:- mgr(D, X), mgr(D, Y), neq(X, Y).
mgr(D, X) -> emp(X).
`)
	inst := &encodings.CQAInstance{DB: prog.Database()}
	for _, r := range prog.Rules {
		if r.IsConstraint() {
			inst.Denials = append(inst.Denials, r)
		} else {
			inst.TGDs = append(inst.TGDs, r)
		}
	}
	repairs, err := inst.BruteForceRepairs()
	must(err)
	fmt.Printf("repairs: %d\n", len(repairs))
	for _, qs := range []string{"?- emp(eve).", "?- emp(ann).", "?- mgr(sales,X), emp(X)."} {
		q := ntgd.MustParse(qs).Queries[0]
		enc, err := inst.CertainEncoded(q, core.Options{})
		must(err)
		brute, err := inst.CertainBrute(q, core.Options{})
		must(err)
		fmt.Printf("  %-28s encoding=%v brute=%v agree=%v\n", qs, enc, brute, enc == brute)
	}
}

// E15 — Theorems 19/20: the expressiveness gap between LP and SO.
func runE15() {
	header("E15", "Theorems 19/20 — LP vs SO model spaces")
	prog := ntgd.MustParse(fatherSrc)
	db := prog.Database()
	so := modelsCtx(soEngine(db, prog.Rules, core.Options{ExtraConstants: []ntgd.Term{ntgd.C("bob")}}), 0)
	lpRes := modelsCtx(lpEngine(db, prog.Rules), 0)
	fmt.Printf("SO stable models (witness pool incl. bob): %d\n", len(so.Models))
	fmt.Printf("LP stable models:                          %d (Skolemization collapses the witness space)\n", len(lpRes.Models))
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

func sameModelSets(a, b []*ntgd.FactStore) bool {
	if len(a) != len(b) {
		return false
	}
	set := map[string]bool{}
	for _, m := range a {
		set[m.CanonicalString()] = true
	}
	for _, m := range b {
		if !set[m.CanonicalString()] {
			return false
		}
	}
	return true
}

func randomNormalProgram(rng *rand.Rand) string {
	preds := []string{"p0", "p1", "p2", "p3"}
	consts := []string{"c0", "c1", "c2"}
	var out string
	for i := 0; i < 1+rng.Intn(3); i++ {
		out += fmt.Sprintf("%s(%s).\n", preds[rng.Intn(len(preds))], consts[rng.Intn(len(consts))])
	}
	for i := 0; i < 1+rng.Intn(4); i++ {
		body := fmt.Sprintf("%s(X)", preds[rng.Intn(len(preds))])
		if rng.Intn(2) == 0 {
			body += fmt.Sprintf(", not %s(X)", preds[rng.Intn(len(preds))])
		}
		out += fmt.Sprintf("%s -> %s(X).\n", body, preds[rng.Intn(len(preds))])
	}
	return out
}
