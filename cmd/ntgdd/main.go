// Command ntgdd is the long-lived solver daemon: an HTTP/JSON front
// end over compile-once ntgd Solvers, built for concurrent query
// traffic.
//
//	ntgdd -addr :8377 -max-runs 16 -workers 0
//
// Programs are cached by canonical hash (LRU, single-flight compiles),
// every request runs under a deadline and client-disconnect
// cancellation, and one shared admission gate bounds concurrent engine
// runs across the whole daemon. Terminal errors map onto distinct HTTP
// status codes mirroring the ntgdctl exit-code contract; see
// internal/server for the endpoint and status documentation.
//
// On SIGTERM or SIGINT the daemon drains gracefully: /healthz flips to
// 503, new API requests are refused, in-flight requests run to
// completion, and the process exits 0 once idle (or 1 if -drain
// expires first).
//
// The listen address is printed as "ntgdd: listening on http://<addr>"
// once the socket is bound, so scripts using -addr 127.0.0.1:0 can
// discover the port.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime/metrics"
	"syscall"
	"time"

	"ntgd"
	"ntgd/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the daemon behind an exit code, with streams injected so the
// lifecycle is testable in-process.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ntgdd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8377", "listen address (host:port; port 0 picks a free port)")
	cacheSize := fs.Int("cache", 128, "compiled-program cache capacity (entries)")
	maxRuns := fs.Int("max-runs", 0, "max concurrent engine runs across the daemon (0 = unlimited)")
	maxQueued := fs.Int("max-queued", 0, "max runs parked waiting for a slot before shedding with 429 (0 = unbounded queue, -1 = no queue; needs -max-runs)")
	writeTimeout := fs.Duration("write-timeout", 30*time.Second, "per-response write deadline, started after the solve completes (0 = none)")
	memSoft := fs.Int64("mem-soft", 0, "soft heap watermark in live bytes: evict caches and halve the admission queue (0 = off)")
	memHard := fs.Int64("mem-hard", 0, "hard heap watermark in live bytes: refuse new API work with 503 until below (0 = off)")
	memInterval := fs.Duration("mem-interval", time.Second, "heap sampling interval for the brownout watchdog")
	workers := fs.Int("workers", 1, "search worker pool size per run (1 = sequential, 0 = GOMAXPROCS)")
	defTimeout := fs.Duration("default-timeout", 30*time.Second, "deadline for requests that carry no timeout_ms (0 = none)")
	maxTimeout := fs.Duration("max-timeout", 5*time.Minute, "clamp on per-request deadlines (0 = none)")
	maxMem := fs.Int64("max-mem", 0, "per-run memory watermark in bytes of retained tuples and clause literals (0 = none)")
	wall := fs.Duration("wall", 0, "per-run wall-clock budget (0 = none)")
	maxModels := fs.Int("max-models", 10000, "cap on models returned per solve request")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown deadline after SIGTERM")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "ntgdd: unexpected arguments:", fs.Args())
		return 2
	}

	if *memSoft < 0 || *memHard < 0 {
		fmt.Fprintln(stderr, "ntgdd: -mem-soft and -mem-hard must be non-negative")
		return 2
	}
	if *memSoft > 0 && *memHard > 0 && *memHard < *memSoft {
		fmt.Fprintln(stderr, "ntgdd: -mem-hard must be >= -mem-soft")
		return 2
	}

	srv := server.New(server.Config{
		CacheSize:         *cacheSize,
		MaxConcurrentRuns: *maxRuns,
		MaxQueuedRuns:     *maxQueued,
		DefaultTimeout:    *defTimeout,
		MaxTimeout:        *maxTimeout,
		MaxModels:         *maxModels,
		WriteTimeout:      *writeTimeout,
		MemSoftBytes:      uint64(*memSoft),
		MemHardBytes:      uint64(*memHard),
		Options: ntgd.Options{
			Workers:      *workers,
			MaxMemory:    *maxMem,
			MaxWallClock: *wall,
		},
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "ntgdd:", err)
		return 1
	}
	fmt.Fprintf(stdout, "ntgdd: listening on http://%s\n", ln.Addr())

	// No http.Server.WriteTimeout on purpose: a fixed write deadline
	// starting at the request header would kill every solve longer than
	// it. Slow-client protection comes from the per-response deadline
	// the server applies after the solve (-write-timeout) plus
	// IdleTimeout reaping keep-alive connections between requests.
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	go srv.MemoryWatchdog(ctx, *memInterval, heapLive)
	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "ntgdd:", err)
		return 1
	case <-ctx.Done():
	}

	// Drain: refuse new work, let in-flight requests finish, bound the
	// wait. Shutdown closes the listener and returns once every
	// connection is idle or the deadline expires.
	fmt.Fprintln(stderr, "ntgdd: draining")
	srv.StartDrain()
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		fmt.Fprintln(stderr, "ntgdd: drain incomplete:", err)
		return 1
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "ntgdd:", err)
		return 1
	}
	fmt.Fprintln(stderr, "ntgdd: drained, exiting")
	return 0
}

// heapLive samples the live heap (bytes surviving the last GC plus
// bytes allocated since) via runtime/metrics — the watchdog's view of
// memory pressure. Reading one known metric is cheap enough for a
// per-second tick.
func heapLive() uint64 {
	samples := []metrics.Sample{{Name: "/gc/heap/live:bytes"}}
	metrics.Read(samples)
	if samples[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return samples[0].Value.Uint64()
}
