package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeProg materializes a program source as a temp .ntgd file.
func writeProg(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.ntgd")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// runCLI invokes the CLI in-process and captures both streams.
func runCLI(args ...string) (code int, stdout, stderr string) {
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

const coloringSrc = `
node(1). node(2). node(3).
edge(1,2). edge(2,3). edge(3,1).

node(X) -> red(X) | green(X).
edge(X,Y), red(X), red(Y) -> bad.
edge(X,Y), green(X), green(Y) -> bad.
`

const querySrc = `
person(alice).

person(X) -> hasFather(X,Y).
hasFather(X,Y) -> sameAs(Y,Y).
hasFather(X,Y), hasFather(X,Z), not sameAs(Y,Z) -> abnormal(X).

?- person(alice).
`

func TestSolveExitOK(t *testing.T) {
	path := writeProg(t, coloringSrc)
	code, out, errw := runCLI("solve", path)
	if code != exitOK {
		t.Fatalf("exit = %d, want %d (stderr: %s)", code, exitOK, errw)
	}
	if !strings.Contains(out, "8 stable model(s)") {
		t.Fatalf("stdout = %q, want the 8 colorings", out)
	}
	if strings.Contains(out, "incomplete") {
		t.Fatalf("complete enumeration flagged incomplete: %q", out)
	}
}

func TestUsageExitCodes(t *testing.T) {
	for _, args := range [][]string{
		{},                  // no command
		{"frobnicate"},      // unknown command
		{"solve"},           // missing file
		{"solve", "-n"},     // malformed flag value
		{"solve", "a", "b"}, // too many args
	} {
		if code, _, _ := runCLI(args...); code != exitUsage {
			t.Errorf("run(%q) = %d, want %d", args, code, exitUsage)
		}
	}
}

func TestLoadErrorExitsOne(t *testing.T) {
	code, _, errw := runCLI("solve", filepath.Join(t.TempDir(), "absent.ntgd"))
	if code != exitError {
		t.Fatalf("exit = %d, want %d", code, exitError)
	}
	if !strings.Contains(errw, "ntgdctl:") {
		t.Fatalf("stderr = %q, want an ntgdctl: error line", errw)
	}
}

func TestWallClockExitsBudget(t *testing.T) {
	path := writeProg(t, coloringSrc)
	code, _, errw := runCLI("solve", "-wall", "1ns", path)
	if code != exitBudget {
		t.Fatalf("exit = %d, want %d (stderr: %s)", code, exitBudget, errw)
	}
	if !strings.Contains(errw, "wall-clock budget exhausted") ||
		!strings.Contains(errw, "partial stats:") {
		t.Fatalf("stderr = %q, want wall-clock cause with partial stats", errw)
	}
}

func TestAtomBudgetExitsBudget(t *testing.T) {
	path := writeProg(t, coloringSrc)
	code, out, errw := runCLI("solve", "-max-atoms", "1", path)
	if code != exitBudget {
		t.Fatalf("exit = %d, want %d (stderr: %s)", code, exitBudget, errw)
	}
	if !strings.Contains(errw, "search budget exhausted") {
		t.Fatalf("stderr = %q, want the budget cause", errw)
	}
	if !strings.Contains(out, "(enumeration may be incomplete)") {
		t.Fatalf("stdout = %q, want the incomplete marker", out)
	}
}

func TestTimeoutExitsTimeout(t *testing.T) {
	path := writeProg(t, coloringSrc)
	code, _, errw := runCLI("solve", "-timeout", "1ns", path)
	if code != exitTimeout {
		t.Fatalf("exit = %d, want %d (stderr: %s)", code, exitTimeout, errw)
	}
	if !strings.Contains(errw, "timed out") || !strings.Contains(errw, "partial stats:") {
		t.Fatalf("stderr = %q, want timeout cause with partial stats", errw)
	}
}

func TestMemoryWatermarkExitsMemory(t *testing.T) {
	path := writeProg(t, coloringSrc)
	code, _, errw := runCLI("solve", "-max-mem", "1", path)
	if code != exitMemory {
		t.Fatalf("exit = %d, want %d (stderr: %s)", code, exitMemory, errw)
	}
	if !strings.Contains(errw, "memory watermark exceeded") {
		t.Fatalf("stderr = %q, want the memory cause", errw)
	}
}

func TestQueryContract(t *testing.T) {
	path := writeProg(t, querySrc)
	code, out, errw := runCLI("query", path)
	if code != exitOK {
		t.Fatalf("exit = %d, want %d (stderr: %s)", code, exitOK, errw)
	}
	if !strings.Contains(out, "cautious: true") {
		t.Fatalf("stdout = %q, want a cautious: true verdict", out)
	}
}

func TestQueryTimeoutExitsTimeout(t *testing.T) {
	path := writeProg(t, querySrc)
	code, out, errw := runCLI("query", "-timeout", "1ns", path)
	if code != exitTimeout {
		t.Fatalf("exit = %d, want %d (stderr: %s)", code, exitTimeout, errw)
	}
	if !strings.Contains(out, "unknown") {
		t.Fatalf("stdout = %q, want the unknown verdict", out)
	}
	if !strings.Contains(errw, "partial stats:") {
		t.Fatalf("stderr = %q, want partial stats", errw)
	}
}

func TestClassifyAndFormula(t *testing.T) {
	path := writeProg(t, coloringSrc)
	if code, out, _ := runCLI("classify", path); code != exitOK || out == "" {
		t.Fatalf("classify: exit %d, out %q", code, out)
	}
	if code, out, _ := runCLI("formula", path); code != exitOK || out == "" {
		t.Fatalf("formula: exit %d, out %q", code, out)
	}
}
