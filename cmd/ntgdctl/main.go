// Command ntgdctl is the command-line interface to the library:
//
//	ntgdctl classify file.ntgd          # WA / sticky / guarded report
//	ntgdctl solve [-sem so|lp|op] [-n N] [-timeout 5s] [-wall 5s] [-workers N] file.ntgd
//	ntgdctl query [-sem so|lp|op] [-mode cautious|brave] [-timeout 5s] [-wall 5s] [-workers N] file.ntgd
//	ntgdctl chase file.ntgd             # restricted chase (positive TGDs)
//	ntgdctl ground file.ntgd            # Skolemize + ground, print program
//	ntgdctl formula [-mm] file.ntgd     # print SM[D,Σ] (or MM[D,Σ])
//
// Programs use the surface syntax documented in the README; queries
// (“?- …”) inside the file are answered by the query subcommand.
//
// Exit codes (solve and query) follow the library's error taxonomy so
// scripts and services can dispatch without parsing messages:
//
//	0  success (complete enumeration / all queries answered)
//	1  load or run error outside the taxonomy
//	2  usage error
//	3  search budget exhausted (nodes, atoms, or -wall wall-clock)
//	4  timed out or cancelled (-timeout, the caller's context)
//	5  memory watermark exceeded (-max-mem)
//	6  internal engine fault (a recovered panic; stack on stderr)
//
// Codes 3-6 still print the partial stats accumulated so far on
// stderr. The other subcommands use 0/1/2 only.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ntgd"
	"ntgd/internal/chase"
	"ntgd/internal/engine"
	"ntgd/internal/ground"
)

// Exit codes of the taxonomy-aware subcommands (solve, query).
const (
	exitOK       = 0
	exitError    = 1
	exitUsage    = 2
	exitBudget   = 3
	exitTimeout  = 4
	exitMemory   = 5
	exitInternal = 6
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole CLI behind an exit code, with output streams
// injected so the exit-code contract is testable in-process.
func run(argv []string, stdout, stderr io.Writer) int {
	if len(argv) < 1 {
		return usage(stderr)
	}
	cmd, args := argv[0], argv[1:]
	switch cmd {
	case "classify":
		return cmdClassify(args, stdout, stderr)
	case "solve":
		return cmdSolve(args, stdout, stderr)
	case "query":
		return cmdQuery(args, stdout, stderr)
	case "chase":
		return cmdChase(args, stdout, stderr)
	case "ground":
		return cmdGround(args, stdout, stderr)
	case "formula":
		return cmdFormula(args, stdout, stderr)
	default:
		return usage(stderr)
	}
}

func usage(stderr io.Writer) int {
	fmt.Fprintf(stderr, `usage: ntgdctl <command> [flags] <file>

commands:
  classify   syntactic classification (weak-acyclicity, stickiness, guardedness)
  solve      enumerate stable models
  query      answer the queries in the file
  chase      run the restricted chase (positive TGDs only)
  ground     Skolemize and ground, print the ground program
  formula    print the second-order formula SM[D,Σ] (-mm for MM[D,Σ])
`)
	return exitUsage
}

// fail reports an error outside the taxonomy.
func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "ntgdctl:", err)
	return exitError
}

// newFlagSet builds a subcommand flag set that reports parse errors to
// stderr and returns instead of exiting the process.
func newFlagSet(name string, stderr io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	return fs
}

func loadProgram(fs *flag.FlagSet, stderr io.Writer) (*ntgd.Program, int) {
	if fs.NArg() != 1 {
		return nil, usage(stderr)
	}
	prog, err := ntgd.ParseFile(fs.Arg(0))
	if err != nil {
		return nil, fail(stderr, err)
	}
	return prog, exitOK
}

func semFromFlag(s string) (ntgd.Semantics, error) {
	switch s {
	case "so":
		return ntgd.SO, nil
	case "lp":
		return ntgd.LP, nil
	case "op", "operational", "baget":
		return ntgd.Operational, nil
	default:
		return 0, fmt.Errorf("unknown semantics %q (want so, lp, or op)", s)
	}
}

func cmdClassify(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("classify", stderr)
	marking := fs.Bool("marking", false, "print the stickiness marking")
	if fs.Parse(args) != nil {
		return exitUsage
	}
	prog, code := loadProgram(fs, stderr)
	if prog == nil {
		return code
	}
	rep := ntgd.Classify(prog)
	fmt.Fprint(stdout, rep.String())
	if *marking {
		fmt.Fprintln(stdout, "\nstickiness marking:")
		fmt.Fprint(stdout, rep.Marking.String())
	}
	return exitOK
}

// solveContext builds the run context from a -timeout flag value
// (0 = no deadline).
func solveContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout > 0 {
		return context.WithTimeout(context.Background(), timeout)
	}
	return context.Background(), func() {}
}

// classifyErr maps a terminal run error to its exit code and a short
// cause for the partial-stats line.
func classifyErr(err error) (int, string) {
	switch {
	case errors.Is(err, ntgd.ErrInternal):
		return exitInternal, "internal engine fault"
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		return exitTimeout, "timed out"
	case errors.Is(err, ntgd.ErrMemory):
		return exitMemory, "memory watermark exceeded"
	case errors.Is(err, ntgd.ErrWallClock):
		return exitBudget, "wall-clock budget exhausted"
	case errors.Is(err, ntgd.ErrBudget):
		return exitBudget, "search budget exhausted"
	default:
		return exitError, err.Error()
	}
}

// reportRunError prints the cause and the partial stats, plus the
// recovered stack for internal faults, and returns the exit code.
func reportRunError(stderr io.Writer, err error, st ntgd.Stats) int {
	code, cause := classifyErr(err)
	fmt.Fprintf(stderr, "ntgdctl: %s; partial stats: nodes=%d branches=%d models=%d\n",
		cause, st.Nodes, st.Branches, st.ModelsEmitted)
	var ie *engine.InternalError
	if errors.As(err, &ie) {
		fmt.Fprintf(stderr, "ntgdctl: recovered panic: %v\n%s", ie.Value, ie.Stack)
	}
	return code
}

func cmdSolve(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("solve", stderr)
	sem := fs.String("sem", "so", "semantics: so, lp, or op")
	n := fs.Int("n", 0, "stop after N models (0 = all)")
	maxAtoms := fs.Int("max-atoms", 0, "atom budget (0 = auto)")
	maxMem := fs.Int64("max-mem", 0, "memory watermark in bytes of retained tuples and clause literals (0 = none)")
	timeout := fs.Duration("timeout", 0, "abort after this long, printing partial results (0 = none)")
	wall := fs.Duration("wall", 0, "per-run wall-clock budget, reported as a budget rather than a timeout (0 = none)")
	workers := fs.Int("workers", 1, "search worker pool size (1 = sequential, deterministic output order; 0 = GOMAXPROCS)")
	if fs.Parse(args) != nil {
		return exitUsage
	}
	prog, code := loadProgram(fs, stderr)
	if prog == nil {
		return code
	}
	semv, err := semFromFlag(*sem)
	if err != nil {
		return fail(stderr, err)
	}
	s, err := ntgd.Compile(prog, ntgd.CompileOptions{
		Semantics: semv,
		Options: ntgd.Options{
			MaxModels: *n, MaxAtoms: *maxAtoms, Workers: *workers,
			MaxMemory: *maxMem, MaxWallClock: *wall,
		},
	})
	if err != nil {
		return fail(stderr, err)
	}
	ctx, cancel := solveContext(*timeout)
	defer cancel()
	count := 0
	code = exitOK
	for m, err := range s.Models(ctx) {
		if err != nil {
			code = reportRunError(stderr, err, s.Stats())
			break
		}
		count++
		fmt.Fprintf(stdout, "model %d: { %s }\n", count, m.CanonicalString())
	}
	fmt.Fprintf(stdout, "%d stable model(s)", count)
	if s.Exhausted() {
		fmt.Fprintf(stdout, " (enumeration may be incomplete)")
	}
	fmt.Fprintln(stdout)
	return code
}

func cmdQuery(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("query", stderr)
	sem := fs.String("sem", "so", "semantics: so, lp, or op")
	mode := fs.String("mode", "cautious", "cautious or brave")
	maxMem := fs.Int64("max-mem", 0, "memory watermark in bytes of retained tuples and clause literals (0 = none)")
	timeout := fs.Duration("timeout", 0, "abort after this long, printing partial results (0 = none)")
	wall := fs.Duration("wall", 0, "per-run wall-clock budget, reported as a budget rather than a timeout (0 = none)")
	workers := fs.Int("workers", 1, "search worker pool size (1 = sequential, deterministic output order; 0 = GOMAXPROCS)")
	if fs.Parse(args) != nil {
		return exitUsage
	}
	prog, code := loadProgram(fs, stderr)
	if prog == nil {
		return code
	}
	if len(prog.Queries) == 0 {
		return fail(stderr, fmt.Errorf("no queries (\"?- ...\") in the file"))
	}
	semv, err := semFromFlag(*sem)
	if err != nil {
		return fail(stderr, err)
	}
	m := ntgd.Cautious
	if *mode == "brave" {
		m = ntgd.Brave
	}
	// One compiled Solver answers every query in the file.
	s, err := ntgd.Compile(prog, ntgd.CompileOptions{
		Semantics: semv,
		Options:   ntgd.Options{Workers: *workers, MaxMemory: *maxMem, MaxWallClock: *wall},
	})
	if err != nil {
		return fail(stderr, err)
	}
	ctx, cancel := solveContext(*timeout)
	defer cancel()
	code = exitOK
	for _, q := range prog.Queries {
		if q.IsBoolean() {
			v, err := s.Entails(ctx, q, m)
			if err != nil {
				code = reportRunError(stderr, err, s.Stats())
				fmt.Fprintf(stdout, "%s  %s: unknown\n", q, m)
				continue
			}
			fmt.Fprintf(stdout, "%s  %s: %v\n", q, m, v.Entailed)
			if v.Witness != nil {
				fmt.Fprintf(stdout, "  witness model: { %s }\n", v.Witness.CanonicalString())
			}
			continue
		}
		tuples, complete, err := s.Answers(ctx, q, m)
		if err != nil {
			code = reportRunError(stderr, err, s.Stats())
			fmt.Fprintf(stdout, "%s  %s answers: unknown\n", q, m)
			continue
		}
		fmt.Fprintf(stdout, "%s  %s answers:", q, m)
		for _, t := range tuples {
			fmt.Fprintf(stdout, " %s", t)
		}
		if !complete {
			fmt.Fprintf(stdout, "  (incomplete)")
		}
		fmt.Fprintln(stdout)
	}
	return code
}

func cmdChase(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("chase", stderr)
	oblivious := fs.Bool("oblivious", false, "use the oblivious chase")
	if fs.Parse(args) != nil {
		return exitUsage
	}
	prog, code := loadProgram(fs, stderr)
	if prog == nil {
		return code
	}
	opt := chase.Options{}
	if *oblivious {
		opt.Variant = chase.Oblivious
	}
	res, err := chase.Run(prog.Database(), prog.Rules, opt)
	if err != nil {
		return fail(stderr, err)
	}
	for _, a := range res.Instance.Sorted() {
		fmt.Fprintln(stdout, a)
	}
	fmt.Fprintf(stdout, "%% %d atoms, %d applications, %d nulls, %d rounds\n",
		res.Instance.Len(), res.Applications, res.NullsInvented, res.Rounds)
	return exitOK
}

func cmdGround(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("ground", stderr)
	if fs.Parse(args) != nil {
		return exitUsage
	}
	prog, code := loadProgram(fs, stderr)
	if prog == nil {
		return code
	}
	sk := ground.Skolemize(prog.Rules)
	g, err := ground.Ground(prog.Database(), sk, ground.Options{})
	if err != nil {
		return fail(stderr, err)
	}
	fmt.Fprint(stdout, g.Prog.String())
	fmt.Fprintf(stdout, "%% %d atoms, %d ground rules\n", len(g.Atoms), len(g.Prog.Rules))
	return exitOK
}

func cmdFormula(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("formula", stderr)
	mm := fs.Bool("mm", false, "print MM[D,Σ] (circumscription) instead of SM[D,Σ]")
	if fs.Parse(args) != nil {
		return exitUsage
	}
	prog, code := loadProgram(fs, stderr)
	if prog == nil {
		return code
	}
	if *mm {
		fmt.Fprintln(stdout, ntgd.MMFormula(prog))
	} else {
		fmt.Fprintln(stdout, ntgd.SMFormula(prog))
	}
	return exitOK
}
