// Command ntgdctl is the command-line interface to the library:
//
//	ntgdctl classify file.ntgd          # WA / sticky / guarded report
//	ntgdctl solve [-sem so|lp|op] [-n N] [-timeout 5s] [-workers N] file.ntgd
//	ntgdctl query [-sem so|lp|op] [-mode cautious|brave] [-timeout 5s] [-workers N] file.ntgd
//	ntgdctl chase file.ntgd             # restricted chase (positive TGDs)
//	ntgdctl ground file.ntgd            # Skolemize + ground, print program
//	ntgdctl formula [-mm] file.ntgd     # print SM[D,Σ] (or MM[D,Σ])
//
// Programs use the surface syntax documented in the README; queries
// (“?- …”) inside the file are answered by the query subcommand.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"ntgd"
	"ntgd/internal/chase"
	"ntgd/internal/ground"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: ntgdctl <command> [flags] <file>

commands:
  classify   syntactic classification (weak-acyclicity, stickiness, guardedness)
  solve      enumerate stable models
  query      answer the queries in the file
  chase      run the restricted chase (positive TGDs only)
  ground     Skolemize and ground, print the ground program
  formula    print the second-order formula SM[D,Σ] (-mm for MM[D,Σ])
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "classify":
		cmdClassify(args)
	case "solve":
		cmdSolve(args)
	case "query":
		cmdQuery(args)
	case "chase":
		cmdChase(args)
	case "ground":
		cmdGround(args)
	case "formula":
		cmdFormula(args)
	default:
		usage()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ntgdctl:", err)
	os.Exit(1)
}

func loadProgram(fs *flag.FlagSet) *ntgd.Program {
	if fs.NArg() != 1 {
		usage()
	}
	prog, err := ntgd.ParseFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	return prog
}

func semFromFlag(s string) ntgd.Semantics {
	switch s {
	case "so":
		return ntgd.SO
	case "lp":
		return ntgd.LP
	case "op", "operational", "baget":
		return ntgd.Operational
	default:
		fatal(fmt.Errorf("unknown semantics %q (want so, lp, or op)", s))
		panic("unreachable")
	}
}

func cmdClassify(args []string) {
	fs := flag.NewFlagSet("classify", flag.ExitOnError)
	marking := fs.Bool("marking", false, "print the stickiness marking")
	_ = fs.Parse(args)
	prog := loadProgram(fs)
	rep := ntgd.Classify(prog)
	fmt.Print(rep.String())
	if *marking {
		fmt.Println("\nstickiness marking:")
		fmt.Print(rep.Marking.String())
	}
}

// solveContext builds the run context from a -timeout flag value
// (0 = no deadline).
func solveContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout > 0 {
		return context.WithTimeout(context.Background(), timeout)
	}
	return context.Background(), func() {}
}

// printPartial reports a timed-out or budget-limited run's partial
// effort on stderr.
func printPartial(cause string, st ntgd.Stats) {
	fmt.Fprintf(os.Stderr, "ntgdctl: %s; partial stats: nodes=%d branches=%d models=%d\n",
		cause, st.Nodes, st.Branches, st.ModelsEmitted)
}

func cmdSolve(args []string) {
	fs := flag.NewFlagSet("solve", flag.ExitOnError)
	sem := fs.String("sem", "so", "semantics: so, lp, or op")
	n := fs.Int("n", 0, "stop after N models (0 = all)")
	maxAtoms := fs.Int("max-atoms", 0, "atom budget (0 = auto)")
	timeout := fs.Duration("timeout", 0, "abort after this long, printing partial results (0 = none)")
	workers := fs.Int("workers", 1, "search worker pool size (1 = sequential, deterministic output order; 0 = GOMAXPROCS)")
	_ = fs.Parse(args)
	prog := loadProgram(fs)
	s, err := ntgd.Compile(prog, ntgd.CompileOptions{
		Semantics: semFromFlag(*sem),
		Options:   ntgd.Options{MaxModels: *n, MaxAtoms: *maxAtoms, Workers: *workers},
	})
	if err != nil {
		fatal(err)
	}
	ctx, cancel := solveContext(*timeout)
	defer cancel()
	count := 0
	for m, err := range s.Models(ctx) {
		if err != nil {
			switch {
			case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
				printPartial(fmt.Sprintf("timeout after %s", *timeout), s.Stats())
			case errors.Is(err, ntgd.ErrBudget):
				printPartial("search budget exhausted", s.Stats())
			default:
				fatal(err)
			}
			break
		}
		count++
		fmt.Printf("model %d: { %s }\n", count, m.CanonicalString())
	}
	fmt.Printf("%d stable model(s)", count)
	if s.Exhausted() {
		fmt.Printf(" (enumeration may be incomplete)")
	}
	fmt.Println()
}

func cmdQuery(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	sem := fs.String("sem", "so", "semantics: so, lp, or op")
	mode := fs.String("mode", "cautious", "cautious or brave")
	timeout := fs.Duration("timeout", 0, "abort after this long, printing partial results (0 = none)")
	workers := fs.Int("workers", 1, "search worker pool size (1 = sequential, deterministic output order; 0 = GOMAXPROCS)")
	_ = fs.Parse(args)
	prog := loadProgram(fs)
	if len(prog.Queries) == 0 {
		fatal(fmt.Errorf("no queries (\"?- ...\") in the file"))
	}
	m := ntgd.Cautious
	if *mode == "brave" {
		m = ntgd.Brave
	}
	// One compiled Solver answers every query in the file.
	s, err := ntgd.Compile(prog, ntgd.CompileOptions{
		Semantics: semFromFlag(*sem),
		Options:   ntgd.Options{Workers: *workers},
	})
	if err != nil {
		fatal(err)
	}
	ctx, cancel := solveContext(*timeout)
	defer cancel()
	for _, q := range prog.Queries {
		if q.IsBoolean() {
			v, err := s.Entails(ctx, q, m)
			if err != nil {
				if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
					printPartial(fmt.Sprintf("timeout after %s", *timeout), s.Stats())
					fmt.Printf("%s  %s: unknown (timed out)\n", q, m)
					continue
				}
				fatal(err)
			}
			fmt.Printf("%s  %s: %v\n", q, m, v.Entailed)
			if v.Witness != nil {
				fmt.Printf("  witness model: { %s }\n", v.Witness.CanonicalString())
			}
			continue
		}
		tuples, complete, err := s.Answers(ctx, q, m)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				printPartial(fmt.Sprintf("timeout after %s", *timeout), s.Stats())
				fmt.Printf("%s  %s answers: unknown (timed out)\n", q, m)
				continue
			}
			fatal(err)
		}
		fmt.Printf("%s  %s answers:", q, m)
		for _, t := range tuples {
			fmt.Printf(" %s", t)
		}
		if !complete {
			fmt.Printf("  (incomplete)")
		}
		fmt.Println()
	}
}

func cmdChase(args []string) {
	fs := flag.NewFlagSet("chase", flag.ExitOnError)
	oblivious := fs.Bool("oblivious", false, "use the oblivious chase")
	_ = fs.Parse(args)
	prog := loadProgram(fs)
	opt := chase.Options{}
	if *oblivious {
		opt.Variant = chase.Oblivious
	}
	res, err := chase.Run(prog.Database(), prog.Rules, opt)
	if err != nil {
		fatal(err)
	}
	for _, a := range res.Instance.Sorted() {
		fmt.Println(a)
	}
	fmt.Printf("%% %d atoms, %d applications, %d nulls, %d rounds\n",
		res.Instance.Len(), res.Applications, res.NullsInvented, res.Rounds)
}

func cmdGround(args []string) {
	fs := flag.NewFlagSet("ground", flag.ExitOnError)
	_ = fs.Parse(args)
	prog := loadProgram(fs)
	sk := ground.Skolemize(prog.Rules)
	g, err := ground.Ground(prog.Database(), sk, ground.Options{})
	if err != nil {
		fatal(err)
	}
	fmt.Print(g.Prog.String())
	fmt.Printf("%% %d atoms, %d ground rules\n", len(g.Atoms), len(g.Prog.Rules))
}

func cmdFormula(args []string) {
	fs := flag.NewFlagSet("formula", flag.ExitOnError)
	mm := fs.Bool("mm", false, "print MM[D,Σ] (circumscription) instead of SM[D,Σ]")
	_ = fs.Parse(args)
	prog := loadProgram(fs)
	if *mm {
		fmt.Println(ntgd.MMFormula(prog))
	} else {
		fmt.Println(ntgd.SMFormula(prog))
	}
}
