// The -overload experiment: shedding versus parking under open-loop
// load. It answers the PR 10 design question with numbers in
// BENCH_*.json rather than prose: when offered load exceeds capacity,
// does bounded deadline-aware admission (shed) deliver more goodput —
// requests completed within their deadline — than the historical
// unbounded parking queue (park)?
//
// Method:
//
//  1. Start two in-process daemons, identical except for the admission
//     queue: "park" has MaxQueuedRuns 0 (unbounded, PR 8 behavior),
//     "shed" bounds the queue at 2× the slot count.
//  2. Calibrate: a closed loop of exactly `slots` workers against an
//     idle daemon measures real capacity (requests per second with
//     every slot busy — HTTP overhead and CPU contention included);
//     the mean service time S = slots/capacity sets every request's
//     deadline at 3×S — tight enough that time spent queued is time
//     stolen from the solve. Slots are clamped to the core count: a
//     slot that cannot run in parallel adds queueing, not capacity.
//  3. For each multiple m in {1, 2, 4}: offer m×capacity as an open
//     loop (arrivals fire on a fixed clock and do NOT wait for earlier
//     responses — exactly how real overload arrives) through
//     ntgdclient with retries disabled, against each daemon in turn.
//
// Parking loses goodput at overload two ways: requests sit in the
// unbounded queue burning their deadline before they ever run (then
// waste a slot on work that can no longer finish in time), and every
// excess request holds its connection for its full deadline before
// failing. Shedding refuses queue-full and deadline-hopeless work in
// microseconds, so slots only run requests that still have headroom.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"ntgd"
	"ntgd/internal/server"
	"ntgd/ntgdclient"
)

// overloadPoint is one JSON line of the -overload experiment.
type overloadPoint struct {
	Name string `json:"name"` // "SrvOverload/<policy>/x<multiple>"
	// NsOp is the p50 latency of completed requests, keeping the line
	// aggregable in the BENCH_*.json trajectory.
	NsOp       int64   `json:"ns_op"`
	Policy     string  `json:"policy"`    // "shed" | "park"
	OfferedX   float64 `json:"offered_x"` // offered load as a multiple of capacity
	OfferedRPS float64 `json:"offered_rps"`
	// GoodputRPS is the headline number: requests completed within
	// their deadline per second of wall clock.
	GoodputRPS float64 `json:"goodput_rps"`
	// ShedRate is refused requests (429/503) over offered requests.
	ShedRate  float64 `json:"shed_rate"`
	Requests  int     `json:"requests"`
	Completed int     `json:"completed"`
	Shed      int     `json:"shed"`
	TimedOut  int     `json:"timed_out"`
	Errors    int     `json:"errors"`
	Workers   int     `json:"workers"` // daemon slots
}

// overloadProgram is the calibration workload: a subset-choice program
// whose full solve enumerates 2^n models — deterministic work whose
// duration the calibration step measures rather than assumes.
func overloadProgram(n int) string {
	var b []byte
	for i := 0; i < n; i++ {
		b = fmt.Appendf(b, "item(i%d).\n", i)
	}
	b = append(b, "item(X), not out(X) -> in(X).\nitem(X), not in(X) -> out(X).\n"...)
	return string(b)
}

// startDaemon boots an in-process daemon with the given queue policy
// and returns its base URL and a shutdown func.
func startDaemon(slots, maxQueued int) (string, func(), error) {
	srv := server.New(server.Config{
		MaxConcurrentRuns: slots,
		MaxQueuedRuns:     maxQueued,
		Options:           ntgd.Options{Workers: 1},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln) //nolint:errcheck // torn down via Close
	return "http://" + ln.Addr().String(), func() { hs.Close() }, nil
}

func overloadClient(base string) *ntgdclient.Client {
	return ntgdclient.New(base,
		// Retries off: the experiment measures the daemon's shedding,
		// not the client's persistence, and the open loop must offer
		// exactly the configured rate.
		ntgdclient.WithRetryPolicy(ntgdclient.RetryPolicy{MaxAttempts: 1, Budget: -1}),
		ntgdclient.WithHTTPClient(&http.Client{Transport: &http.Transport{
			MaxIdleConns:        4096,
			MaxIdleConnsPerHost: 4096,
		}}),
	)
}

// runOverload executes the whole experiment, printing one JSON line
// per (policy, multiple) point to stdout and a summary table to stderr.
func runOverload(stdout, stderr io.Writer, slots int, duration time.Duration) int {
	if slots <= 0 {
		slots = 4
	}
	if n := runtime.NumCPU(); slots > n {
		slots = n
	}
	if duration <= 0 {
		duration = 3 * time.Second
	}
	// 2^8 models ≈ tens of milliseconds per solve: heavy enough that
	// capacity is a few dozen rps and the load generator (sharing this
	// machine) can genuinely offer 4× that over HTTP.
	prog := overloadProgram(8)

	parkURL, stopPark, err := startDaemon(slots, 0)
	if err != nil {
		fmt.Fprintln(stderr, "ntgdbench:", err)
		return 1
	}
	defer stopPark()
	shedURL, stopShed, err := startDaemon(slots, 2*slots)
	if err != nil {
		fmt.Fprintln(stderr, "ntgdbench:", err)
		return 1
	}
	defer stopShed()
	park, shed := overloadClient(parkURL), overloadClient(shedURL)

	// Calibrate capacity on each daemon (warming both program
	// caches); use the slower estimate so "1x" is never an accidental
	// overload.
	capacity, err := calibrate(park, prog, slots)
	if err == nil {
		var c2 float64
		c2, err = calibrate(shed, prog, slots)
		if err == nil && c2 < capacity {
			capacity = c2
		}
	}
	if err != nil {
		fmt.Fprintln(stderr, "ntgdbench: calibration:", err)
		return 1
	}
	service := time.Duration(float64(slots) / capacity * float64(time.Second))
	deadline := 3 * service
	if deadline < 10*time.Millisecond {
		deadline = 10 * time.Millisecond
	}
	fmt.Fprintf(stderr, "ntgdbench: overload: service=%s capacity=%.1f rps deadline=%s slots=%d\n",
		service.Round(time.Microsecond), capacity, deadline.Round(time.Millisecond), slots)
	fmt.Fprintf(stderr, "%-22s %8s %10s %10s %9s %9s %7s\n",
		"point", "offered", "goodput", "p50", "shed%", "timeout", "errs")

	for _, m := range []float64{1, 2, 4} {
		for _, pc := range []struct {
			name string
			c    *ntgdclient.Client
		}{{"shed", shed}, {"park", park}} {
			pt := drive(pc.c, prog, m*capacity, deadline, duration)
			pt.Name = fmt.Sprintf("SrvOverload/%s/x%g", pc.name, m)
			pt.Policy = pc.name
			pt.OfferedX = m
			pt.Workers = slots
			fmt.Fprintf(stderr, "%-22s %8.1f %10.1f %10s %8.1f%% %9d %7d\n",
				pt.Name, pt.OfferedRPS, pt.GoodputRPS,
				time.Duration(pt.NsOp).Round(time.Microsecond),
				100*pt.ShedRate, pt.TimedOut, pt.Errors)
			line, err := json.Marshal(pt)
			if err != nil {
				fmt.Fprintln(stderr, "ntgdbench:", err)
				return 1
			}
			fmt.Fprintf(stdout, "%s\n", line)
		}
	}
	return 0
}

// calibrate measures the daemon's capacity in requests/second: slots
// closed-loop workers hammer it for a fixed window after warmup, so
// the number already reflects HTTP overhead and real CPU contention.
func calibrate(c *ntgdclient.Client, prog string, slots int) (float64, error) {
	req := ntgdclient.Request{Program: prog, TimeoutMS: 30_000}
	for i := 0; i < 2; i++ {
		if _, err := c.Solve(context.Background(), req); err != nil {
			return 0, err
		}
	}
	const window = time.Second
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		done     int
		firstErr error
	)
	start := time.Now()
	for w := 0; w < slots; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Since(start) < window {
				_, err := c.Solve(context.Background(), req)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				done++
				mu.Unlock()
				if err != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return 0, firstErr
	}
	if done == 0 {
		return 0, fmt.Errorf("calibration completed no requests")
	}
	return float64(done) / elapsed.Seconds(), nil
}

// drive offers rate requests/second for duration as an open loop and
// classifies every outcome.
func drive(c *ntgdclient.Client, prog string, rate float64, deadline, duration time.Duration) overloadPoint {
	interval := time.Duration(float64(time.Second) / rate)
	// Fire arrivals in small batches when the interval outruns timer
	// granularity; the offered rate stays exact.
	batch := 1
	for interval < time.Millisecond {
		batch *= 2
		interval *= 2
	}
	total := int(duration.Seconds() * rate)
	if total < 1 {
		total = 1
	}
	req := ntgdclient.Request{Program: prog, TimeoutMS: deadline.Milliseconds()}

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		completed []time.Duration
		pt        overloadPoint
	)
	fire := func() {
		defer wg.Done()
		t0 := time.Now()
		_, err := c.Solve(context.Background(), req)
		lat := time.Since(t0)
		mu.Lock()
		defer mu.Unlock()
		switch ae, ok := ntgdclient.AsAPIError(err); {
		case err == nil:
			pt.Completed++
			completed = append(completed, lat)
		case ok && (ae.Status == http.StatusTooManyRequests || ae.Status == http.StatusServiceUnavailable):
			pt.Shed++
		case ok && ae.Status == http.StatusGatewayTimeout:
			pt.TimedOut++
		default:
			pt.Errors++
		}
	}

	start := time.Now()
	tick := time.NewTicker(interval)
	fired := 0
	for fired < total {
		<-tick.C
		for b := 0; b < batch && fired < total; b++ {
			wg.Add(1)
			fired++
			go fire()
		}
	}
	tick.Stop()
	// Offered rate over the arrival window (before the drain tail); if
	// the generator could not keep the pace — tick coalescing under
	// load — the point honestly reports the rate it achieved.
	arrivals := time.Since(start)
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(completed, func(i, j int) bool { return completed[i] < completed[j] })
	pt.Requests = pt.Completed + pt.Shed + pt.TimedOut + pt.Errors
	pt.OfferedRPS = float64(fired) / arrivals.Seconds()
	pt.GoodputRPS = float64(pt.Completed) / elapsed.Seconds()
	if pt.Requests > 0 {
		pt.ShedRate = float64(pt.Shed) / float64(pt.Requests)
	}
	pt.NsOp = pctile(completed, 0.50).Nanoseconds()
	return pt
}
