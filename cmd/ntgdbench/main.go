// Command ntgdbench drives query traffic against an ntgdd daemon and
// reports latency percentiles and throughput, following the
// experiment-runner discipline of the BENCH_*.json trajectory: a
// reproducible grid (experiments.json) with warmup and repeats, one
// machine-readable JSON line per (experiment, concurrency) point, and
// a human summary on stderr.
//
//	ntgdbench                         # embedded default grid, in-process server
//	ntgdbench -grid grid.json         # custom grid
//	ntgdbench -addr 127.0.0.1:8377    # drive an already-running daemon
//
// With no -addr the bench starts an in-process daemon (same handler
// stack as cmd/ntgdd) on a loopback port, so a single command measures
// the full HTTP serving path. Each JSON line has the shape
//
//	{"name":"SrvSolveSubset/c=4","ns_op":<p50 latency>,
//	 "p50_ns":...,"p95_ns":...,"p99_ns":...,
//	 "rps":...,"models_per_sec":...,
//	 "models":...,"nodes":...,"workers":<concurrency>,
//	 "requests":...,"errors":...}
//
// ns_op is the p50 request latency so the lines aggregate alongside
// the smsbench experiment lines in BENCH_*.json; "workers" records the
// client concurrency of the point.
package main

import (
	"bytes"
	_ "embed"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ntgd"
	"ntgd/internal/server"
)

//go:embed experiments.json
var defaultGrid []byte

type gridFile struct {
	Experiments []experiment `json:"experiments"`
}

type experiment struct {
	Name        string             `json:"name"`
	Kind        string             `json:"kind"` // solve | entails | answers | consistent | batch
	Program     string             `json:"program,omitempty"`
	ProgramFile string             `json:"program_file,omitempty"`
	Semantics   string             `json:"semantics,omitempty"`
	Query       string             `json:"query,omitempty"`
	Mode        string             `json:"mode,omitempty"`
	MaxModels   int                `json:"max_models,omitempty"`
	TimeoutMS   int64              `json:"timeout_ms,omitempty"`
	Batch       []server.BatchItem `json:"batch,omitempty"`
	Concurrency []int              `json:"concurrency"`
	Requests    int                `json:"requests"`
	Warmup      int                `json:"warmup"`
	Repeats     int                `json:"repeats,omitempty"`
}

// point is the measured outcome of one (experiment, concurrency) cell.
type point struct {
	Name         string  `json:"name"`
	NsOp         int64   `json:"ns_op"` // p50, for trajectory compatibility
	P50Ns        int64   `json:"p50_ns"`
	P95Ns        int64   `json:"p95_ns"`
	P99Ns        int64   `json:"p99_ns"`
	RPS          float64 `json:"rps"`
	ModelsPerSec float64 `json:"models_per_sec"`
	Models       int64   `json:"models"`
	Nodes        int64   `json:"nodes"`
	Workers      int     `json:"workers"`
	Requests     int     `json:"requests"`
	Errors       int64   `json:"errors"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ntgdbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	gridPath := fs.String("grid", "", "experiment grid JSON (default: the embedded grid)")
	addr := fs.String("addr", "", "address of a running ntgdd (default: start an in-process daemon)")
	maxRuns := fs.Int("max-runs", 0, "in-process daemon: max concurrent engine runs (0 = unlimited)")
	workers := fs.Int("workers", 1, "in-process daemon: engine worker pool size per run")
	cache := fs.Int("cache", 128, "in-process daemon: compiled-program cache capacity")
	overload := fs.Bool("overload", false, "run the shed-vs-park overload experiment instead of the grid (see overload.go)")
	overloadDur := fs.Duration("overload-duration", 3*time.Second, "open-loop duration per overload point")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *overload {
		slots := *maxRuns
		if slots <= 0 {
			slots = 4
		}
		return runOverload(stdout, stderr, slots, *overloadDur)
	}

	grid := defaultGrid
	if *gridPath != "" {
		b, err := os.ReadFile(*gridPath)
		if err != nil {
			fmt.Fprintln(stderr, "ntgdbench:", err)
			return 1
		}
		grid = b
	}
	var gf gridFile
	if err := json.Unmarshal(grid, &gf); err != nil {
		fmt.Fprintln(stderr, "ntgdbench: parsing grid:", err)
		return 1
	}

	base := "http://" + *addr
	if *addr == "" {
		srv := server.New(server.Config{
			CacheSize:         *cache,
			MaxConcurrentRuns: *maxRuns,
			Options:           ntgd.Options{Workers: *workers},
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(stderr, "ntgdbench:", err)
			return 1
		}
		defer ln.Close()
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln) //nolint:errcheck // torn down with the process
		defer hs.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(stderr, "ntgdbench: in-process daemon on %s\n", base)
	}

	maxC := 1
	for _, e := range gf.Experiments {
		for _, c := range e.Concurrency {
			if c > maxC {
				maxC = c
			}
		}
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        maxC * 2,
		MaxIdleConnsPerHost: maxC * 2,
	}}

	fmt.Fprintf(stderr, "%-24s %5s %10s %10s %10s %10s %12s %7s\n",
		"experiment", "c", "p50", "p95", "p99", "req/s", "models/s", "errs")
	for _, e := range gf.Experiments {
		body, err := requestBody(e)
		if err != nil {
			fmt.Fprintf(stderr, "ntgdbench: %s: %v\n", e.Name, err)
			return 1
		}
		for _, c := range e.Concurrency {
			pt, err := runPoint(client, base, e, body, c)
			if err != nil {
				fmt.Fprintf(stderr, "ntgdbench: %s/c=%d: %v\n", e.Name, c, err)
				return 1
			}
			fmt.Fprintf(stderr, "%-24s %5d %10s %10s %10s %10.1f %12.1f %7d\n",
				e.Name, c,
				time.Duration(pt.P50Ns).Round(time.Microsecond),
				time.Duration(pt.P95Ns).Round(time.Microsecond),
				time.Duration(pt.P99Ns).Round(time.Microsecond),
				pt.RPS, pt.ModelsPerSec, pt.Errors)
			line, err := json.Marshal(pt)
			if err != nil {
				fmt.Fprintln(stderr, "ntgdbench:", err)
				return 1
			}
			fmt.Fprintf(stdout, "%s\n", line)
		}
	}
	return 0
}

// requestBody builds the JSON body an experiment POSTs on every
// request, and resolves which endpoint it targets.
func requestBody(e experiment) ([]byte, error) {
	req := server.Request{
		Program:   e.Program,
		Semantics: e.Semantics,
		Query:     e.Query,
		Mode:      e.Mode,
		MaxModels: e.MaxModels,
		TimeoutMS: e.TimeoutMS,
		Queries:   e.Batch,
	}
	if e.ProgramFile != "" {
		b, err := os.ReadFile(e.ProgramFile)
		if err != nil {
			return nil, err
		}
		req.Program = string(b)
	}
	if req.Program == "" {
		return nil, fmt.Errorf("experiment carries no program")
	}
	switch e.Kind {
	case "solve", "entails", "answers", "consistent", "batch":
	default:
		return nil, fmt.Errorf("unknown kind %q", e.Kind)
	}
	return json.Marshal(req)
}

// respStats is the subset of every success body the bench aggregates.
type respStats struct {
	Count int          `json:"count"`
	Stats server.Stats `json:"stats"`
}

// runPoint measures one (experiment, concurrency) cell: warmup
// requests first, then repeats × requests timed requests issued by c
// workers pulling from one shared counter.
func runPoint(client *http.Client, base string, e experiment, body []byte, c int) (point, error) {
	url := base + "/v1/" + e.Kind
	do := func() (time.Duration, respStats, error) {
		start := time.Now()
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, respStats{}, err
		}
		var rs respStats
		derr := json.NewDecoder(resp.Body).Decode(&rs)
		resp.Body.Close()
		lat := time.Since(start)
		if resp.StatusCode != http.StatusOK {
			return lat, rs, fmt.Errorf("status %d", resp.StatusCode)
		}
		if derr != nil {
			return lat, rs, derr
		}
		return lat, rs, nil
	}

	warmup := e.Warmup
	if warmup <= 0 {
		warmup = c
	}
	for i := 0; i < warmup; i++ {
		if _, _, err := do(); err != nil {
			return point{}, fmt.Errorf("warmup: %w", err)
		}
	}

	repeats := e.Repeats
	if repeats <= 0 {
		repeats = 1
	}
	total := e.Requests * repeats
	if total <= 0 {
		total = 64
	}

	var (
		remaining atomic.Int64
		errs      atomic.Int64
		models    atomic.Int64
		nodes     atomic.Int64
		mu        sync.Mutex
		lats      = make([]time.Duration, 0, total)
		wg        sync.WaitGroup
	)
	remaining.Store(int64(total))
	start := time.Now()
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, total/c+1)
			for remaining.Add(-1) >= 0 {
				lat, rs, err := do()
				if err != nil {
					errs.Add(1)
				}
				// Solve bodies carry the model count; every body carries
				// engine stats. models_emitted covers entails/answers/batch.
				n := int64(rs.Count)
				if n == 0 {
					n = rs.Stats.ModelsEmitted
				}
				models.Add(n)
				nodes.Add(rs.Stats.Nodes)
				local = append(local, lat)
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	secs := elapsed.Seconds()
	pt := point{
		Name:         fmt.Sprintf("%s/c=%d", e.Name, c),
		P50Ns:        pctile(lats, 0.50).Nanoseconds(),
		P95Ns:        pctile(lats, 0.95).Nanoseconds(),
		P99Ns:        pctile(lats, 0.99).Nanoseconds(),
		RPS:          float64(len(lats)) / secs,
		ModelsPerSec: float64(models.Load()) / secs,
		Models:       models.Load(),
		Nodes:        nodes.Load(),
		Workers:      c,
		Requests:     len(lats),
		Errors:       errs.Load(),
	}
	pt.NsOp = pt.P50Ns
	return pt, nil
}

// pctile returns the q-quantile of sorted latencies (nearest-rank).
func pctile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
