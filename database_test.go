package ntgd_test

import (
	"context"
	"strings"
	"sync"
	"testing"

	"ntgd"
)

// TestDatabaseMatchesLegacyCompile pins the PR 9 wrapper-equivalence
// contract: compiling a program whose facts live in a pre-loaded
// Database (or a caller-supplied Storage) yields exactly the canonical
// model set of the legacy path that carries the facts inside the
// Program — under every semantics, including when the facts are split
// between the Database and the Program.
func TestDatabaseMatchesLegacyCompile(t *testing.T) {
	progs := []string{
		"e(a,b). e(b,c). e(c,a). u(a). e(X,Y), not u(Y) -> r(X,Y).",
		"p(a). p(b). p(X) -> q(X) | r(X).",
		"n(a). n(b). same(a,a). same(b,b). n(X), not out(X) -> in(X). n(X), in(X), same(X,X), not in(X) -> bad.",
		"v(a). v(b). v(X) -> edge(X,Y).",
	}
	sems := []ntgd.Semantics{ntgd.SO, ntgd.LP, ntgd.Operational}
	opt := ntgd.Options{MaxModels: 32, MaxNodes: 200000}
	for pi, src := range progs {
		prog := ntgd.MustParse(src)
		for _, sem := range sems {
			t.Run(sem.String(), func(t *testing.T) {
				legacy, err := ntgd.Compile(prog, ntgd.CompileOptions{Semantics: sem, Options: opt})
				if err != nil {
					if strings.Contains(err.Error(), "existential") || strings.Contains(err.Error(), "disjunct") {
						t.Skipf("program %d unsupported under %v: %v", pi, sem, err)
					}
					t.Fatalf("legacy compile: %v", err)
				}
				want, werr := collectModels(context.Background(), legacy)
				if werr != nil {
					t.Fatalf("legacy models: %v", werr)
				}
				wantSet := canonicalSet(want)

				rulesOnly := &ntgd.Program{Rules: prog.Rules, Queries: prog.Queries}

				// Database path: every fact bulk-loaded up front.
				db := ntgd.NewDatabase()
				if err := db.AddFacts(prog.Facts...); err != nil {
					t.Fatalf("AddFacts: %v", err)
				}
				sdb := ntgd.MustCompile(rulesOnly, ntgd.CompileOptions{Semantics: sem, Options: opt, Database: db})
				got, err := collectModels(context.Background(), sdb)
				if err != nil {
					t.Fatalf("database-path models: %v", err)
				}
				if !equalStringSlices(canonicalSet(got), wantSet) {
					t.Fatalf("program %d: database path differs:\n%v\nwant %v", pi, canonicalSet(got), wantSet)
				}

				// Storage path: facts pre-loaded into a raw backend.
				st := ntgd.NewStorage()
				ntgd.NewFactStoreOn(st).AddAll(prog.Facts)
				sst := ntgd.MustCompile(rulesOnly, ntgd.CompileOptions{Semantics: sem, Options: opt, Store: st})
				got, err = collectModels(context.Background(), sst)
				if err != nil {
					t.Fatalf("storage-path models: %v", err)
				}
				if !equalStringSlices(canonicalSet(got), wantSet) {
					t.Fatalf("program %d: storage path differs:\n%v\nwant %v", pi, canonicalSet(got), wantSet)
				}

				// Split path: half the facts in the Database, half still in
				// the Program (layered on the snapshot at compile time).
				half := len(prog.Facts) / 2
				db2 := ntgd.NewDatabase()
				if err := db2.AddFacts(prog.Facts[:half]...); err != nil {
					t.Fatalf("AddFacts: %v", err)
				}
				mixed := &ntgd.Program{Rules: prog.Rules, Facts: prog.Facts[half:], Queries: prog.Queries}
				smix := ntgd.MustCompile(mixed, ntgd.CompileOptions{Semantics: sem, Options: opt, Database: db2})
				got, err = collectModels(context.Background(), smix)
				if err != nil {
					t.Fatalf("split-path models: %v", err)
				}
				if !equalStringSlices(canonicalSet(got), wantSet) {
					t.Fatalf("program %d: split path differs:\n%v\nwant %v", pi, canonicalSet(got), wantSet)
				}
			})
		}
	}
}

// TestDatabaseLifecycle pins the builder contract: validation at
// AddFacts, idempotent Freeze, the frozen-write error, Len before and
// after Freeze, and the Database/Store exclusivity check.
func TestDatabaseLifecycle(t *testing.T) {
	db := ntgd.NewDatabase()
	if err := db.AddFacts(ntgd.A("p", ntgd.C("a")), ntgd.A("p", ntgd.C("b")), ntgd.A("p", ntgd.C("a"))); err != nil {
		t.Fatalf("AddFacts: %v", err)
	}
	if got := db.Len(); got != 3 {
		t.Fatalf("pending Len = %d, want 3 (pre-freeze upper bound)", got)
	}
	if err := db.AddFacts(ntgd.A("q", ntgd.V("X"))); err == nil {
		t.Fatalf("non-ground fact must be rejected")
	}
	if err := db.AddFacts(ntgd.A("q", ntgd.N("n1"))); err == nil {
		t.Fatalf("null-carrying fact must be rejected")
	}
	if got := db.Freeze(); got != 2 {
		t.Fatalf("Freeze = %d, want 2 (duplicates collapse)", got)
	}
	if got := db.Freeze(); got != 2 {
		t.Fatalf("second Freeze = %d, want 2 (idempotent)", got)
	}
	if err := db.AddFacts(ntgd.A("p", ntgd.C("c"))); err == nil {
		t.Fatalf("AddFacts after Freeze must fail")
	}
	if got := db.Len(); got != 2 {
		t.Fatalf("frozen Len = %d, want 2", got)
	}

	prog := ntgd.MustParse("p(X) -> q(X).")
	if _, err := ntgd.Compile(prog, ntgd.CompileOptions{Database: db, Store: ntgd.NewStorage()}); err == nil {
		t.Fatalf("Database and Store together must be rejected")
	}
}

// TestDatabaseSharedAcrossSolvers compiles several different programs
// against one Database concurrently and checks each sees exactly the
// shared facts plus its own rules' consequences — the snapshot layers
// keep the solvers isolated while the root is shared.
func TestDatabaseSharedAcrossSolvers(t *testing.T) {
	db := ntgd.NewDatabase()
	if err := db.AddFacts(
		ntgd.A("e", ntgd.C("a"), ntgd.C("b")),
		ntgd.A("e", ntgd.C("b"), ntgd.C("c")),
		ntgd.A("u", ntgd.C("a")),
	); err != nil {
		t.Fatalf("AddFacts: %v", err)
	}
	rules := []string{
		"e(X,Y), e(Y,Z) -> t(X,Z).",
		"e(X,Y), not u(X) -> w(X).",
		"u(X), e(X,Y) -> both(X).",
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(rules)*4)
	for i := 0; i < 4; i++ {
		for _, r := range rules {
			wg.Add(1)
			go func(r string) {
				defer wg.Done()
				prog := ntgd.MustParse(r)
				s, err := ntgd.Compile(prog, ntgd.CompileOptions{Database: db})
				if err != nil {
					errs <- err
					return
				}
				models, err := collectModels(context.Background(), s)
				if err != nil {
					errs <- err
					return
				}
				if len(models) != 1 {
					errs <- context.DeadlineExceeded // any sentinel: count mismatch
				}
			}(r)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("shared-database solve failed: %v", err)
	}
	if got := db.Len(); got != 3 {
		t.Fatalf("shared root grew to %d facts; solver layers leaked into the root", got)
	}
}
