// Package sat implements a CDCL (conflict-driven clause learning) CNF
// satisfiability solver: two-watched-literal unit propagation,
// first-UIP conflict analysis with non-chronological backjumping,
// activity-based branching with phase saving, and solving under
// assumptions. It is the reasoning substrate for the W-Stability check
// of Proposition 11 (deciding whether a candidate stable model admits
// a smaller τ-model) and for the direct 2-QBF evaluator used as an
// experimental baseline.
//
// The solver is designed for incremental sessions: Solve accepts
// assumption literals and leaves the clause database intact, so one
// instance can answer a long sequence of queries over a growing
// formula — clauses are only ever added, and per-query conditions are
// expressed as assumptions or activation literals instead of rebuilt
// clauses. Assumptions are posted as decisions, so learnt clauses
// mention them negatively where relevant and are implied by the clause
// database alone: they remain valid for every later query. Clause
// learning is what makes the sessions viable — a query typically
// touches a small live slice of a much larger accumulated formula, and
// learning confines the search to the connected conflict structure
// instead of enumerating the dead parts. Clone produces an independent
// copy for callers that branch a session across goroutines
// (copy-on-extend).
//
// The encoding of literals in the public API follows the DIMACS
// convention: variables are positive integers 1..n, a positive literal
// is +v and a negative literal is -v.
package sat

import (
	"sort"

	"ntgd/internal/failpoint"
)

const unassigned int8 = -1

// noReason marks a decision, assumption or top-level fact on the trail.
const noReason = -1

// Solver is a reusable, incremental CNF solver. Add variables with
// NewVar, clauses with AddClause, then call Solve — with or without
// assumptions — any number of times, interleaving further NewVar and
// AddClause calls freely. After a satisfiable call, Value reports the
// model. The zero value is ready to use.
type Solver struct {
	nVars   int
	clauses [][]int // internal literals; first two are watched (original + learnt)
	watches [][]int // internal literal -> clause indexes watching it
	units   []int   // internal literals from unit clauses (original + learnt)
	unsat   bool    // an empty clause was added

	assign   []int8 // per-variable: unassigned, 0 (false), 1 (true)
	level    []int  // per-variable decision level of the assignment
	reason   []int  // per-variable antecedent clause index, or noReason
	phase    []int8 // per-variable saved phase (1 = try true first)
	trail    []int
	trailLim []int // trail length at each decision level
	qhead    int

	activity []float64 // per-variable branching activity (bumped on conflicts)
	actInc   float64
	seen     []bool // conflict-analysis scratch

	// Stats
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Learnt       int64
}

// New returns an empty solver.
func New() *Solver { return &Solver{} }

// NewVar allocates a fresh variable and returns its (1-based) index.
func (s *Solver) NewVar() int {
	s.nVars++
	s.watches = append(s.watches, nil, nil)
	s.assign = append(s.assign, unassigned)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, noReason)
	s.phase = append(s.phase, 1)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	return s.nVars
}

// NVars returns the number of allocated variables.
func (s *Solver) NVars() int { return s.nVars }

// NClauses returns the number of stored (non-unit, non-empty) clauses,
// including learnt clauses.
func (s *Solver) NClauses() int { return len(s.clauses) }

// intern converts a DIMACS literal to the internal encoding
// (2*var for positive, 2*var+1 for negative, 0-based var).
func intern(lit int) int {
	if lit > 0 {
		return 2 * (lit - 1)
	}
	return 2*(-lit-1) + 1
}

func neg(l int) int     { return l ^ 1 }
func litVar(l int) int  { return l >> 1 }
func litSign(l int) int { return l & 1 } // 1 = negated

// AddClause adds a clause given as DIMACS literals. Duplicate literals
// are removed and tautological clauses dropped. Adding an empty clause
// makes the instance trivially unsatisfiable. Variables are allocated
// implicitly if needed.
func (s *Solver) AddClause(lits ...int) {
	for _, l := range lits {
		v := l
		if v < 0 {
			v = -v
		}
		for s.nVars < v {
			s.NewVar()
		}
	}
	cl := make([]int, 0, len(lits))
	for _, l := range lits {
		cl = append(cl, intern(l))
	}
	sort.Ints(cl)
	out := cl[:0]
	for i, l := range cl {
		if i > 0 && l == cl[i-1] {
			continue
		}
		if i > 0 && l == neg(cl[i-1]) {
			return // tautology
		}
		out = append(out, l)
	}
	cl = out
	switch len(cl) {
	case 0:
		s.unsat = true
	case 1:
		s.units = append(s.units, cl[0])
		s.activity[litVar(cl[0])] += 4
	default:
		s.attachClause(cl)
		for _, l := range cl {
			s.activity[litVar(l)]++
		}
	}
}

// attachClause stores an internal clause and watches its first two
// literals.
func (s *Solver) attachClause(cl []int) int {
	idx := len(s.clauses)
	s.clauses = append(s.clauses, cl)
	s.watches[cl[0]] = append(s.watches[cl[0]], idx)
	s.watches[cl[1]] = append(s.watches[cl[1]], idx)
	return idx
}

// value returns the truth value of an internal literal under the
// current assignment: 1 true, 0 false, unassigned otherwise.
func (s *Solver) value(l int) int8 {
	a := s.assign[litVar(l)]
	if a == unassigned {
		return unassigned
	}
	return a ^ int8(litSign(l))
}

// decisionLevel returns the current number of decision levels.
func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// enqueue asserts an internal literal with the given antecedent;
// reports false on conflict.
func (s *Solver) enqueue(l, from int) bool {
	switch s.value(l) {
	case 1:
		return true
	case 0:
		return false
	}
	v := litVar(l)
	s.assign[v] = int8(1 - litSign(l))
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

// propagate performs unit propagation, returning the index of a
// conflicting clause or noReason when the queue drains cleanly.
func (s *Solver) propagate() int {
	failpoint.Inject(failpoint.SatPropagate)
	for s.qhead < len(s.trail) {
		l := s.trail[s.qhead]
		s.qhead++
		s.Propagations++
		falsified := neg(l)
		ws := s.watches[falsified]
		kept := ws[:0]
		for wi := 0; wi < len(ws); wi++ {
			ci := ws[wi]
			cl := s.clauses[ci]
			// Ensure the falsified literal is at position 1.
			if cl[0] == falsified {
				cl[0], cl[1] = cl[1], cl[0]
			}
			// If the other watch is true, the clause is satisfied.
			if s.value(cl[0]) == 1 {
				kept = append(kept, ci)
				continue
			}
			// Look for a new literal to watch.
			moved := false
			for k := 2; k < len(cl); k++ {
				if s.value(cl[k]) != 0 {
					cl[1], cl[k] = cl[k], cl[1]
					s.watches[cl[1]] = append(s.watches[cl[1]], ci)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, ci)
			if !s.enqueue(cl[0], ci) {
				// Conflict: keep remaining watches intact.
				kept = append(kept, ws[wi+1:]...)
				s.watches[falsified] = kept
				s.Conflicts++
				return ci
			}
		}
		s.watches[falsified] = kept
	}
	return noReason
}

// newDecisionLevel opens a decision level.
func (s *Solver) newDecisionLevel() { s.trailLim = append(s.trailLim, len(s.trail)) }

// cancelUntil undoes every assignment above the given decision level,
// saving phases.
func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	start := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= start; i-- {
		v := litVar(s.trail[i])
		s.phase[v] = s.assign[v]
		s.assign[v] = unassigned
		s.reason[v] = noReason
	}
	s.trail = s.trail[:start]
	s.qhead = len(s.trail)
	s.trailLim = s.trailLim[:lvl]
}

// reset clears the assignment (clauses, learnt clauses and activities
// are kept).
func (s *Solver) reset() {
	for i := len(s.trail) - 1; i >= 0; i-- {
		v := litVar(s.trail[i])
		s.phase[v] = s.assign[v]
		s.assign[v] = unassigned
		s.reason[v] = noReason
	}
	s.trail = s.trail[:0]
	s.trailLim = s.trailLim[:0]
	s.qhead = 0
}

// bumpVar increases a variable's branching activity, rescaling the
// whole table when it overflows.
func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.actInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.actInc *= 1e-100
	}
}

// pickBranch returns an unassigned internal literal to branch on —
// the most active unassigned variable in its saved phase — or -1 when
// the assignment is total.
func (s *Solver) pickBranch() int {
	best := -1
	bestAct := -1.0
	for v := 0; v < s.nVars; v++ {
		if s.assign[v] == unassigned && s.activity[v] > bestAct {
			best, bestAct = v, s.activity[v]
		}
	}
	if best < 0 {
		return -1
	}
	if s.phase[best] == 0 {
		return 2*best + 1
	}
	return 2 * best
}

// analyze performs first-UIP conflict analysis from the conflicting
// clause, returning the learnt clause (internal literals, asserting
// literal first) and the level to backjump to. The learnt clause is a
// resolvent of stored clauses only — assumptions enter as negated
// literals, never as expanded antecedents — so it is implied by the
// clause database and stays valid across later Solve calls.
func (s *Solver) analyze(confl int, learnt []int) ([]int, int) {
	learnt = append(learnt[:0], 0) // slot for the asserting literal
	counter := 0
	p := -1
	index := len(s.trail) - 1
	backLevel := 0
	for {
		cl := s.clauses[confl]
		for _, q := range cl {
			if q == p {
				continue
			}
			v := litVar(q)
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if s.level[v] >= s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
				if s.level[v] > backLevel {
					backLevel = s.level[v]
				}
			}
		}
		// Walk the trail back to the next marked literal.
		for !s.seen[litVar(s.trail[index])] {
			index--
		}
		p = s.trail[index]
		v := litVar(p)
		index--
		counter--
		s.seen[v] = false
		if counter == 0 {
			learnt[0] = neg(p)
			break
		}
		confl = s.reason[v]
	}
	for _, q := range learnt[1:] {
		s.seen[litVar(q)] = false
	}
	return learnt, backLevel
}

// Clone returns an independent deep copy of the solver: same
// variables, clauses (learnt clauses included) and statistics, with
// the assignment cleared. The copy and the original may afterwards
// grow and solve independently — the hook for branching an incremental
// session across goroutines.
func (s *Solver) Clone() *Solver {
	c := &Solver{
		nVars:        s.nVars,
		unsat:        s.unsat,
		actInc:       s.actInc,
		Decisions:    s.Decisions,
		Propagations: s.Propagations,
		Conflicts:    s.Conflicts,
		Learnt:       s.Learnt,
	}
	c.clauses = make([][]int, len(s.clauses))
	for i, cl := range s.clauses {
		c.clauses[i] = append([]int(nil), cl...)
	}
	c.watches = make([][]int, len(s.watches))
	for i, w := range s.watches {
		if len(w) > 0 {
			c.watches[i] = append([]int(nil), w...)
		}
	}
	c.units = append([]int(nil), s.units...)
	c.activity = append([]float64(nil), s.activity...)
	c.phase = append([]int8(nil), s.phase...)
	c.assign = make([]int8, s.nVars)
	for i := range c.assign {
		c.assign[i] = unassigned
	}
	c.level = make([]int, s.nVars)
	c.reason = make([]int, s.nVars)
	for i := range c.reason {
		c.reason[i] = noReason
	}
	c.seen = make([]bool, s.nVars)
	return c
}

// Solve reports whether the clause set is satisfiable under the given
// assumption literals (DIMACS encoding). The clause database — learnt
// clauses included — is left intact: callers may interleave
// AddClause/NewVar with Solve calls, expressing per-query conditions
// as assumptions rather than rebuilt formulas. With no assumptions it
// decides plain satisfiability.
func (s *Solver) Solve(assumptions ...int) bool { return s.SolveAssuming(assumptions...) }

// SolveAssuming reports satisfiability under the given assumption
// literals (DIMACS encoding). It is equivalent to Solve.
func (s *Solver) SolveAssuming(assumptions ...int) bool {
	if s.unsat {
		return false
	}
	if s.actInc == 0 {
		s.actInc = 1
	}
	s.reset()
	// Top-level facts (original and learnt units).
	for _, u := range s.units {
		if !s.enqueue(u, noReason) {
			return false
		}
	}
	if s.propagate() != noReason {
		return false
	}
	// Assumptions are posted as decisions: conflict analysis never
	// expands them, so learnt clauses stay implied by the clause
	// database alone.
	for _, a := range assumptions {
		l := intern(a)
		switch s.value(l) {
		case 0:
			return false
		case 1:
			continue
		}
		s.newDecisionLevel()
		s.enqueue(l, noReason)
		if s.propagate() != noReason {
			return false
		}
	}
	rootLevel := s.decisionLevel()
	var learnt []int
	for {
		confl := s.propagate()
		if confl != noReason {
			if s.decisionLevel() <= rootLevel {
				return false
			}
			var backLevel int
			learnt, backLevel = s.analyze(confl, learnt)
			if backLevel < rootLevel {
				backLevel = rootLevel
			}
			s.cancelUntil(backLevel)
			s.Learnt++
			s.actInc *= 1.05
			if len(learnt) == 1 {
				// A learnt unit is a resolvent of stored clauses, hence
				// implied by the clause database alone (assumptions are
				// never expanded): record it as a top-level fact for
				// later solves too.
				s.units = append(s.units, learnt[0])
				if !s.enqueue(learnt[0], noReason) {
					return false
				}
				continue
			}
			// Watch the asserting literal and a literal of the backjump
			// level so the watch invariants hold after the jump.
			for k := 2; k < len(learnt); k++ {
				if s.level[litVar(learnt[k])] > s.level[litVar(learnt[1])] {
					learnt[1], learnt[k] = learnt[k], learnt[1]
				}
			}
			cl := append([]int(nil), learnt...)
			ci := s.attachClause(cl)
			if !s.enqueue(cl[0], ci) {
				return false
			}
			continue
		}
		l := s.pickBranch()
		if l < 0 {
			return true
		}
		s.Decisions++
		s.newDecisionLevel()
		s.enqueue(l, noReason)
	}
}

// Value reports the truth value of variable v (1-based) in the model
// found by the last successful Solve call.
func (s *Solver) Value(v int) bool { return s.assign[v-1] == 1 }

// Model returns the model as a slice indexed by variable (entry 0
// unused).
func (s *Solver) Model() []bool {
	m := make([]bool, s.nVars+1)
	for v := 1; v <= s.nVars; v++ {
		m[v] = s.Value(v)
	}
	return m
}
