// Package sat implements a small CNF satisfiability solver: DPLL search
// with two-watched-literal unit propagation, chronological backtracking
// and an occurrence-based branching heuristic. It is the reasoning
// substrate for the W-Stability check of Proposition 11 (deciding
// whether a candidate stable model admits a smaller τ-model) and for
// the direct 2-QBF evaluator used as an experimental baseline.
//
// The encoding of literals in the public API follows the DIMACS
// convention: variables are positive integers 1..n, a positive literal
// is +v and a negative literal is -v.
package sat

import "sort"

const unassigned int8 = -1

// Solver is a reusable CNF solver. Add variables with NewVar, clauses
// with AddClause, then call Solve or SolveAssuming. After a satisfiable
// call, Value reports the model. The zero value is ready to use.
type Solver struct {
	nVars   int
	clauses [][]int // internal literals; first two are watched
	watches [][]int // internal literal -> clause indexes watching it
	units   []int   // internal literals from unit clauses
	occ     []int   // per-variable occurrence counts (branching heuristic)

	assign  []int8 // per-variable: unassigned, 0 (false), 1 (true)
	trail   []int
	lim     []int
	flipped []bool
	qhead   int
	unsat   bool // an empty clause was added

	// Stats
	Decisions    int64
	Propagations int64
	Conflicts    int64
}

// New returns an empty solver.
func New() *Solver { return &Solver{} }

// NewVar allocates a fresh variable and returns its (1-based) index.
func (s *Solver) NewVar() int {
	s.nVars++
	s.watches = append(s.watches, nil, nil)
	s.occ = append(s.occ, 0)
	s.assign = append(s.assign, unassigned)
	return s.nVars
}

// NVars returns the number of allocated variables.
func (s *Solver) NVars() int { return s.nVars }

// NClauses returns the number of stored (non-unit, non-empty) clauses.
func (s *Solver) NClauses() int { return len(s.clauses) }

// intern converts a DIMACS literal to the internal encoding
// (2*var for positive, 2*var+1 for negative, 0-based var).
func intern(lit int) int {
	if lit > 0 {
		return 2 * (lit - 1)
	}
	return 2*(-lit-1) + 1
}

func neg(l int) int     { return l ^ 1 }
func litVar(l int) int  { return l >> 1 }
func litSign(l int) int { return l & 1 } // 1 = negated

// AddClause adds a clause given as DIMACS literals. Duplicate literals
// are removed and tautological clauses dropped. Adding an empty clause
// makes the instance trivially unsatisfiable. Variables are allocated
// implicitly if needed.
func (s *Solver) AddClause(lits ...int) {
	for _, l := range lits {
		v := l
		if v < 0 {
			v = -v
		}
		for s.nVars < v {
			s.NewVar()
		}
	}
	cl := make([]int, 0, len(lits))
	for _, l := range lits {
		cl = append(cl, intern(l))
	}
	sort.Ints(cl)
	out := cl[:0]
	for i, l := range cl {
		if i > 0 && l == cl[i-1] {
			continue
		}
		if i > 0 && l == neg(cl[i-1]) {
			return // tautology
		}
		out = append(out, l)
	}
	cl = out
	switch len(cl) {
	case 0:
		s.unsat = true
	case 1:
		s.units = append(s.units, cl[0])
		s.occ[litVar(cl[0])] += 4
	default:
		idx := len(s.clauses)
		s.clauses = append(s.clauses, cl)
		s.watches[cl[0]] = append(s.watches[cl[0]], idx)
		s.watches[cl[1]] = append(s.watches[cl[1]], idx)
		for _, l := range cl {
			s.occ[litVar(l)]++
		}
	}
}

// value returns the truth value of an internal literal under the
// current assignment: 1 true, 0 false, unassigned otherwise.
func (s *Solver) value(l int) int8 {
	a := s.assign[litVar(l)]
	if a == unassigned {
		return unassigned
	}
	return a ^ int8(litSign(l))
}

// enqueue asserts an internal literal; reports false on conflict.
func (s *Solver) enqueue(l int) bool {
	switch s.value(l) {
	case 1:
		return true
	case 0:
		return false
	}
	s.assign[litVar(l)] = int8(1 - litSign(l))
	s.trail = append(s.trail, l)
	return true
}

// propagate performs unit propagation; reports false on conflict.
func (s *Solver) propagate() bool {
	for s.qhead < len(s.trail) {
		l := s.trail[s.qhead]
		s.qhead++
		s.Propagations++
		falsified := neg(l)
		ws := s.watches[falsified]
		kept := ws[:0]
		for wi := 0; wi < len(ws); wi++ {
			ci := ws[wi]
			cl := s.clauses[ci]
			// Ensure the falsified literal is at position 1.
			if cl[0] == falsified {
				cl[0], cl[1] = cl[1], cl[0]
			}
			// If the other watch is true, the clause is satisfied.
			if s.value(cl[0]) == 1 {
				kept = append(kept, ci)
				continue
			}
			// Look for a new literal to watch.
			moved := false
			for k := 2; k < len(cl); k++ {
				if s.value(cl[k]) != 0 {
					cl[1], cl[k] = cl[k], cl[1]
					s.watches[cl[1]] = append(s.watches[cl[1]], ci)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, ci)
			if !s.enqueue(cl[0]) {
				// Conflict: keep remaining watches intact.
				kept = append(kept, ws[wi+1:]...)
				s.watches[falsified] = kept
				s.Conflicts++
				return false
			}
		}
		s.watches[falsified] = kept
	}
	return true
}

func (s *Solver) newLevel(flip bool) {
	s.lim = append(s.lim, len(s.trail))
	s.flipped = append(s.flipped, flip)
}

// undoLevel removes the top decision level and returns its decision
// literal.
func (s *Solver) undoLevel() int {
	top := len(s.lim) - 1
	start := s.lim[top]
	decLit := s.trail[start]
	for i := len(s.trail) - 1; i >= start; i-- {
		s.assign[litVar(s.trail[i])] = unassigned
	}
	s.trail = s.trail[:start]
	s.qhead = len(s.trail)
	s.lim = s.lim[:top]
	s.flipped = s.flipped[:top]
	return decLit
}

// reset clears the assignment (clauses are kept).
func (s *Solver) reset() {
	for i := range s.assign {
		s.assign[i] = unassigned
	}
	s.trail = s.trail[:0]
	s.lim = s.lim[:0]
	s.flipped = s.flipped[:0]
	s.qhead = 0
}

// pickBranch returns an unassigned internal literal to branch on, or
// -1 if the assignment is total.
func (s *Solver) pickBranch() int {
	best, bestOcc := -1, -1
	for v := 0; v < s.nVars; v++ {
		if s.assign[v] == unassigned && s.occ[v] > bestOcc {
			best, bestOcc = v, s.occ[v]
		}
	}
	if best < 0 {
		return -1
	}
	return 2 * best // positive polarity first
}

// Solve reports whether the clause set is satisfiable.
func (s *Solver) Solve() bool { return s.SolveAssuming() }

// SolveAssuming reports satisfiability under the given assumption
// literals (DIMACS encoding).
func (s *Solver) SolveAssuming(assumptions ...int) bool {
	if s.unsat {
		return false
	}
	s.reset()
	// Top-level units.
	for _, u := range s.units {
		if !s.enqueue(u) {
			return false
		}
	}
	if !s.propagate() {
		return false
	}
	// Assumptions become non-flippable decision levels.
	for _, a := range assumptions {
		l := intern(a)
		if s.value(l) == 0 {
			return false
		}
		if s.value(l) == unassigned {
			s.newLevel(true) // flipped=true: never flip assumptions
			if !s.enqueue(l) {
				return false
			}
		}
		if !s.propagate() {
			return false
		}
	}
	nAssumpLevels := len(s.lim)
	for {
		l := s.pickBranch()
		if l < 0 {
			return true
		}
		s.Decisions++
		s.newLevel(false)
		s.enqueue(l)
		for !s.propagate() {
			// Chronological backtracking: find the deepest unflipped
			// decision, flip it.
			flippedOne := false
			for len(s.lim) > nAssumpLevels {
				top := len(s.lim) - 1
				if s.flipped[top] {
					s.undoLevel()
					continue
				}
				dec := s.undoLevel()
				s.newLevel(true)
				s.enqueue(neg(dec))
				flippedOne = true
				break
			}
			if !flippedOne {
				return false
			}
		}
	}
}

// Value reports the truth value of variable v (1-based) in the model
// found by the last successful Solve call.
func (s *Solver) Value(v int) bool { return s.assign[v-1] == 1 }

// Model returns the model as a slice indexed by variable (entry 0
// unused).
func (s *Solver) Model() []bool {
	m := make([]bool, s.nVars+1)
	for v := 1; v <= s.nVars; v++ {
		m[v] = s.Value(v)
	}
	return m
}
