package sat

import (
	"fmt"
	"math/rand"
	"testing"
)

// random3CNF builds an n-variable, m-clause instance.
func random3CNF(rng *rand.Rand, n, m int) *Solver {
	s := New()
	for i := 0; i < m; i++ {
		cl := make([]int, 3)
		for j := range cl {
			lit := 1 + rng.Intn(n)
			if rng.Intn(2) == 0 {
				lit = -lit
			}
			cl[j] = lit
		}
		s.AddClause(cl...)
	}
	return s
}

func BenchmarkSolveRandom3CNF(b *testing.B) {
	for _, size := range []struct{ n, m int }{{20, 60}, {50, 150}, {100, 300}} {
		b.Run(fmt.Sprintf("n%dm%d", size.n, size.m), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				rng := rand.New(rand.NewSource(int64(i)))
				s := random3CNF(rng, size.n, size.m)
				b.StartTimer()
				_ = s.Solve()
			}
		})
	}
}

func BenchmarkSolvePigeonhole(b *testing.B) {
	// PHP(5,4): small but genuinely hard for plain DPLL.
	build := func() *Solver {
		s := New()
		v := func(i, h int) int { return i*4 + h + 1 }
		for i := 0; i < 5; i++ {
			s.AddClause(v(i, 0), v(i, 1), v(i, 2), v(i, 3))
		}
		for h := 0; h < 4; h++ {
			for i := 0; i < 5; i++ {
				for j := i + 1; j < 5; j++ {
					s.AddClause(-v(i, h), -v(j, h))
				}
			}
		}
		return s
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if build().Solve() {
			b.Fatal("PHP(5,4) must be UNSAT")
		}
	}
}

func BenchmarkUnitPropagationChain(b *testing.B) {
	s := New()
	s.AddClause(1)
	for v := 1; v < 2000; v++ {
		s.AddClause(-v, v+1)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !s.Solve() {
			b.Fatal("chain is SAT")
		}
	}
}

// BenchmarkSolveAssumptions pins the incremental-session usage pattern
// of the stability checker: one solver instance, clauses built once
// (guarded PHP(5,4) — every pigeon's placement clause carries an
// activation literal), then many Solve calls whose assumptions select
// which guards are active. reuse solves the same instance under
// rotating assumption sets; rebuild re-encodes the formula per query,
// the cost the session API exists to avoid.
func BenchmarkSolveAssumptions(b *testing.B) {
	const holes, pigeons = 4, 5
	v := func(i, h int) int { return i*holes + h + 1 }
	act := func(i int) int { return pigeons*holes + i + 1 }
	build := func() *Solver {
		s := New()
		for i := 0; i < pigeons; i++ {
			cl := []int{-act(i)}
			for h := 0; h < holes; h++ {
				cl = append(cl, v(i, h))
			}
			s.AddClause(cl...)
		}
		for h := 0; h < holes; h++ {
			for i := 0; i < pigeons; i++ {
				for j := i + 1; j < pigeons; j++ {
					s.AddClause(-v(i, h), -v(j, h))
				}
			}
		}
		return s
	}
	queries := make([][]int, pigeons+1)
	for skip := 0; skip < pigeons; skip++ {
		for i := 0; i < pigeons; i++ {
			if i != skip {
				queries[skip] = append(queries[skip], act(i))
			}
		}
	}
	for i := 0; i < pigeons; i++ { // the UNSAT query: all guards active
		queries[pigeons] = append(queries[pigeons], act(i))
	}
	b.Run("reuse", func(b *testing.B) {
		s := build()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			want := i%len(queries) < pigeons
			if s.Solve(q...) != want {
				b.Fatalf("query %d: want sat=%v", i%len(queries), want)
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := build()
			q := queries[i%len(queries)]
			want := i%len(queries) < pigeons
			if s.Solve(q...) != want {
				b.Fatalf("query %d: want sat=%v", i%len(queries), want)
			}
		}
	})
}
