package sat

import (
	"math/rand"
	"testing"
)

func TestTrivialCases(t *testing.T) {
	s := New()
	if !s.Solve() {
		t.Fatalf("empty instance is satisfiable")
	}
	s.AddClause(1)
	if !s.Solve() || !s.Value(1) {
		t.Fatalf("unit clause")
	}
	s.AddClause(-1)
	if s.Solve() {
		t.Fatalf("x ∧ ¬x is unsatisfiable")
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	s.AddClause()
	if s.Solve() {
		t.Fatalf("empty clause must yield UNSAT")
	}
}

func TestTautologyDropped(t *testing.T) {
	s := New()
	s.AddClause(1, -1)
	if s.NClauses() != 0 {
		t.Fatalf("tautology should be dropped")
	}
	if !s.Solve() {
		t.Fatalf("tautology-only instance is satisfiable")
	}
}

func TestSmallUnsatCore(t *testing.T) {
	// (a∨b) ∧ (a∨¬b) ∧ (¬a∨b) ∧ (¬a∨¬b)
	s := New()
	s.AddClause(1, 2)
	s.AddClause(1, -2)
	s.AddClause(-1, 2)
	s.AddClause(-1, -2)
	if s.Solve() {
		t.Fatalf("complete 2-variable contradiction must be UNSAT")
	}
}

func TestImplicationChain(t *testing.T) {
	// x1 ∧ (x1→x2) ∧ … ∧ (x99→x100)
	s := New()
	s.AddClause(1)
	for v := 1; v < 100; v++ {
		s.AddClause(-v, v+1)
	}
	if !s.Solve() {
		t.Fatalf("chain is satisfiable")
	}
	for v := 1; v <= 100; v++ {
		if !s.Value(v) {
			t.Fatalf("x%d must be true", v)
		}
	}
}

func TestPigeonhole32(t *testing.T) {
	// 3 pigeons, 2 holes: UNSAT. Var p(i,h) = i*2 + h + 1.
	s := New()
	v := func(i, h int) int { return i*2 + h + 1 }
	for i := 0; i < 3; i++ {
		s.AddClause(v(i, 0), v(i, 1))
	}
	for h := 0; h < 2; h++ {
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				s.AddClause(-v(i, h), -v(j, h))
			}
		}
	}
	if s.Solve() {
		t.Fatalf("PHP(3,2) must be UNSAT")
	}
}

func TestSolveAssuming(t *testing.T) {
	s := New()
	s.AddClause(1, 2)
	if !s.SolveAssuming(-1) || !s.Value(2) {
		t.Fatalf("assuming ¬x1 forces x2")
	}
	if !s.SolveAssuming(-2) || !s.Value(1) {
		t.Fatalf("assuming ¬x2 forces x1")
	}
	if s.SolveAssuming(-1, -2) {
		t.Fatalf("assuming both false is UNSAT")
	}
	// Solver remains reusable after assumption calls.
	if !s.Solve() {
		t.Fatalf("instance is satisfiable without assumptions")
	}
}

// bruteSat is a reference implementation for the property test.
func bruteSat(nVars int, clauses [][]int) bool {
	for mask := 0; mask < 1<<nVars; mask++ {
		ok := true
		for _, cl := range clauses {
			clOK := false
			for _, lit := range cl {
				v := lit
				if v < 0 {
					v = -v
				}
				val := mask&(1<<(v-1)) != 0
				if val == (lit > 0) {
					clOK = true
					break
				}
			}
			if !clOK {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestRandomAgainstBrute (property): the DPLL verdict matches brute
// force on random 3-CNF instances.
func TestRandomAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 300; iter++ {
		nVars := 2 + rng.Intn(8)
		nClauses := 1 + rng.Intn(4*nVars)
		var clauses [][]int
		s := New()
		for i := 0; i < nClauses; i++ {
			width := 1 + rng.Intn(3)
			cl := make([]int, 0, width)
			for j := 0; j < width; j++ {
				lit := 1 + rng.Intn(nVars)
				if rng.Intn(2) == 0 {
					lit = -lit
				}
				cl = append(cl, lit)
			}
			clauses = append(clauses, cl)
			s.AddClause(cl...)
		}
		want := bruteSat(nVars, clauses)
		got := s.Solve()
		if got != want {
			t.Fatalf("iter %d: solver=%v brute=%v clauses=%v", iter, got, want, clauses)
		}
		if got {
			// Verify the model actually satisfies every clause.
			for _, cl := range clauses {
				ok := false
				for _, lit := range cl {
					v := lit
					if v < 0 {
						v = -v
					}
					if s.Value(v) == (lit > 0) {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("iter %d: returned model violates clause %v", iter, cl)
				}
			}
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := New()
	for v := 1; v <= 6; v += 2 {
		s.AddClause(v, v+1)
		s.AddClause(-v, -(v + 1))
	}
	if !s.Solve() {
		t.Fatalf("satisfiable")
	}
	if s.Decisions == 0 {
		t.Fatalf("expected at least one decision")
	}
}

// TestPigeonholeUnderAssumptions pins the assumption mechanism on a
// formula whose unsatisfiability is only triggered by the assumptions:
// PHP(n+1, n) with every placement variable guarded by a per-pigeon
// activation literal. The instance is SAT while any guard is free and
// UNSAT exactly when all guards are assumed, and the same solver
// instance must answer both phases (clauses intact across calls).
func TestPigeonholeUnderAssumptions(t *testing.T) {
	const holes = 4
	const pigeons = holes + 1
	s := New()
	v := func(i, h int) int { return i*holes + h + 1 }
	act := make([]int, pigeons) // activation var per pigeon, above the placement block
	for i := 0; i < pigeons; i++ {
		act[i] = pigeons*holes + i + 1
	}
	for i := 0; i < pigeons; i++ {
		cl := []int{-act[i]}
		for h := 0; h < holes; h++ {
			cl = append(cl, v(i, h))
		}
		s.AddClause(cl...)
	}
	for h := 0; h < holes; h++ {
		for i := 0; i < pigeons; i++ {
			for j := i + 1; j < pigeons; j++ {
				s.AddClause(-v(i, h), -v(j, h))
			}
		}
	}
	if !s.Solve() {
		t.Fatalf("unguarded PHP must be SAT (all guards may be false)")
	}
	// Activating all but one pigeon stays SAT...
	for skip := 0; skip < pigeons; skip++ {
		assumps := make([]int, 0, pigeons-1)
		for i := 0; i < pigeons; i++ {
			if i != skip {
				assumps = append(assumps, act[i])
			}
		}
		if !s.Solve(assumps...) {
			t.Fatalf("PHP with pigeon %d deactivated must be SAT", skip)
		}
	}
	// ...while activating every pigeon is UNSAT, repeatedly.
	all := append([]int(nil), act...)
	for round := 0; round < 3; round++ {
		if s.Solve(all...) {
			t.Fatalf("round %d: PHP(%d,%d) under full assumptions must be UNSAT", round, pigeons, holes)
		}
	}
	// The clause database survived every call.
	if !s.Solve() {
		t.Fatalf("solver must remain SAT once assumptions are dropped")
	}
}

// TestRepeatedSolveGrowingClauses drives one instance through an
// AddClause/Solve interleaving: an implication cycle is grown one edge
// per round and solved under both polarities of the seed assumption
// after every extension, finishing with a contradiction that flips the
// verdict permanently.
func TestRepeatedSolveGrowingClauses(t *testing.T) {
	const n = 32
	s := New()
	for v := 1; v < n; v++ {
		s.AddClause(-v, v+1) // x_v -> x_{v+1}
		if !s.Solve(1) {
			t.Fatalf("round %d: chain under x1 must be SAT", v)
		}
		for u := 1; u <= v+1; u++ {
			if !s.Value(u) {
				t.Fatalf("round %d: x%d must propagate true under x1", v, u)
			}
		}
		if !s.Solve(-(v + 1)) {
			t.Fatalf("round %d: chain under ¬x%d must be SAT", v, v+1)
		}
		if s.Value(1) {
			t.Fatalf("round %d: ¬x%d must propagate ¬x1 up the chain", v, v+1)
		}
	}
	s.AddClause(-n) // close the contradiction under x1
	if s.Solve(1) {
		t.Fatalf("x1 with x1→…→x%d and ¬x%d must be UNSAT", n, n)
	}
	if !s.Solve(-1) {
		t.Fatalf("¬x1 must remain SAT")
	}
	if !s.Solve() {
		t.Fatalf("instance without assumptions must remain SAT")
	}
}

// TestDuplicateAndTautologyClauses pins AddClause's normalization: the
// stability encoder can emit clauses with repeated literals (the same
// witness variable reached through different head atoms) and opposed
// literals; duplicates must collapse and tautologies vanish without
// corrupting the instance.
func TestDuplicateAndTautologyClauses(t *testing.T) {
	s := New()
	s.AddClause(1, 1, 1)
	if s.NClauses() != 0 {
		t.Fatalf("triplicated unit should normalize to a unit, got %d stored clauses", s.NClauses())
	}
	if !s.Solve() || !s.Value(1) {
		t.Fatalf("x ∨ x ∨ x must behave as the unit x")
	}
	s.AddClause(2, -2, 3)
	if s.NClauses() != 0 {
		t.Fatalf("tautological clause must be dropped")
	}
	s.AddClause(-1, 2, 2, -1)
	if s.NClauses() != 1 {
		t.Fatalf("duplicated binary should store one two-literal clause, got %d", s.NClauses())
	}
	if !s.Solve() || !s.Value(2) {
		t.Fatalf("¬x1 ∨ x2 under unit x1 must force x2")
	}
	if s.Solve(-2) {
		t.Fatalf("assuming ¬x2 contradicts x1 ∧ (¬x1∨x2)")
	}
	// A clause that normalizes to empty is impossible (duplicates and
	// complements only shrink toward tautology), but an explicit empty
	// clause must poison the instance permanently.
	s.AddClause()
	if s.Solve() || s.Solve(3) {
		t.Fatalf("empty clause must be UNSAT under any assumptions")
	}
}

// TestCloneIndependence pins Clone: the copy answers like the original
// and the two instances diverge independently afterwards.
func TestCloneIndependence(t *testing.T) {
	s := New()
	s.AddClause(1, 2)
	s.AddClause(-1, 3)
	if !s.Solve(1) || !s.Value(3) {
		t.Fatalf("original must be SAT with x1→x3")
	}
	c := s.Clone()
	if c.NVars() != s.NVars() || c.NClauses() != s.NClauses() {
		t.Fatalf("clone shape mismatch: vars %d/%d clauses %d/%d",
			c.NVars(), s.NVars(), c.NClauses(), s.NClauses())
	}
	if !c.Solve(1) || !c.Value(3) {
		t.Fatalf("clone must reproduce the original's verdict")
	}
	// Diverge: contradiction in the clone only.
	c.AddClause(-3)
	if c.Solve(1) {
		t.Fatalf("clone with ¬x3 must be UNSAT under x1")
	}
	if !s.Solve(1) || !s.Value(3) {
		t.Fatalf("original must be unaffected by the clone's clauses")
	}
	// Diverge the other way: new variable and clause in the original.
	v := s.NewVar()
	s.AddClause(-v)
	if !s.Solve(1) || s.Value(v) {
		t.Fatalf("original must absorb new clauses after cloning")
	}
	if c.NVars() != 3 {
		t.Fatalf("clone must not see the original's new variable")
	}
}

// TestAssumptionsMatchBrute (property): Solve under random assumptions
// agrees with brute force over the clause set extended by the
// assumption units.
func TestAssumptionsMatchBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(977))
	for iter := 0; iter < 200; iter++ {
		nVars := 2 + rng.Intn(7)
		nClauses := 1 + rng.Intn(3*nVars)
		var clauses [][]int
		s := New()
		for s.NVars() < nVars {
			s.NewVar()
		}
		for i := 0; i < nClauses; i++ {
			width := 1 + rng.Intn(3)
			cl := make([]int, 0, width)
			for j := 0; j < width; j++ {
				lit := 1 + rng.Intn(nVars)
				if rng.Intn(2) == 0 {
					lit = -lit
				}
				cl = append(cl, lit)
			}
			clauses = append(clauses, cl)
			s.AddClause(cl...)
		}
		// Several assumption queries against the same instance.
		for q := 0; q < 4; q++ {
			var assumps []int
			seen := map[int]bool{}
			for j := 0; j < rng.Intn(nVars+1); j++ {
				v := 1 + rng.Intn(nVars)
				if seen[v] {
					continue
				}
				seen[v] = true
				if rng.Intn(2) == 0 {
					assumps = append(assumps, -v)
				} else {
					assumps = append(assumps, v)
				}
			}
			ext := append([][]int{}, clauses...)
			for _, a := range assumps {
				ext = append(ext, []int{a})
			}
			want := bruteSat(nVars, ext)
			if got := s.Solve(assumps...); got != want {
				t.Fatalf("iter %d q %d: solver=%v brute=%v assumps=%v clauses=%v",
					iter, q, got, want, assumps, clauses)
			}
		}
	}
}
