package sat

import (
	"math/rand"
	"testing"
)

func TestTrivialCases(t *testing.T) {
	s := New()
	if !s.Solve() {
		t.Fatalf("empty instance is satisfiable")
	}
	s.AddClause(1)
	if !s.Solve() || !s.Value(1) {
		t.Fatalf("unit clause")
	}
	s.AddClause(-1)
	if s.Solve() {
		t.Fatalf("x ∧ ¬x is unsatisfiable")
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	s.AddClause()
	if s.Solve() {
		t.Fatalf("empty clause must yield UNSAT")
	}
}

func TestTautologyDropped(t *testing.T) {
	s := New()
	s.AddClause(1, -1)
	if s.NClauses() != 0 {
		t.Fatalf("tautology should be dropped")
	}
	if !s.Solve() {
		t.Fatalf("tautology-only instance is satisfiable")
	}
}

func TestSmallUnsatCore(t *testing.T) {
	// (a∨b) ∧ (a∨¬b) ∧ (¬a∨b) ∧ (¬a∨¬b)
	s := New()
	s.AddClause(1, 2)
	s.AddClause(1, -2)
	s.AddClause(-1, 2)
	s.AddClause(-1, -2)
	if s.Solve() {
		t.Fatalf("complete 2-variable contradiction must be UNSAT")
	}
}

func TestImplicationChain(t *testing.T) {
	// x1 ∧ (x1→x2) ∧ … ∧ (x99→x100)
	s := New()
	s.AddClause(1)
	for v := 1; v < 100; v++ {
		s.AddClause(-v, v+1)
	}
	if !s.Solve() {
		t.Fatalf("chain is satisfiable")
	}
	for v := 1; v <= 100; v++ {
		if !s.Value(v) {
			t.Fatalf("x%d must be true", v)
		}
	}
}

func TestPigeonhole32(t *testing.T) {
	// 3 pigeons, 2 holes: UNSAT. Var p(i,h) = i*2 + h + 1.
	s := New()
	v := func(i, h int) int { return i*2 + h + 1 }
	for i := 0; i < 3; i++ {
		s.AddClause(v(i, 0), v(i, 1))
	}
	for h := 0; h < 2; h++ {
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				s.AddClause(-v(i, h), -v(j, h))
			}
		}
	}
	if s.Solve() {
		t.Fatalf("PHP(3,2) must be UNSAT")
	}
}

func TestSolveAssuming(t *testing.T) {
	s := New()
	s.AddClause(1, 2)
	if !s.SolveAssuming(-1) || !s.Value(2) {
		t.Fatalf("assuming ¬x1 forces x2")
	}
	if !s.SolveAssuming(-2) || !s.Value(1) {
		t.Fatalf("assuming ¬x2 forces x1")
	}
	if s.SolveAssuming(-1, -2) {
		t.Fatalf("assuming both false is UNSAT")
	}
	// Solver remains reusable after assumption calls.
	if !s.Solve() {
		t.Fatalf("instance is satisfiable without assumptions")
	}
}

// bruteSat is a reference implementation for the property test.
func bruteSat(nVars int, clauses [][]int) bool {
	for mask := 0; mask < 1<<nVars; mask++ {
		ok := true
		for _, cl := range clauses {
			clOK := false
			for _, lit := range cl {
				v := lit
				if v < 0 {
					v = -v
				}
				val := mask&(1<<(v-1)) != 0
				if val == (lit > 0) {
					clOK = true
					break
				}
			}
			if !clOK {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestRandomAgainstBrute (property): the DPLL verdict matches brute
// force on random 3-CNF instances.
func TestRandomAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 300; iter++ {
		nVars := 2 + rng.Intn(8)
		nClauses := 1 + rng.Intn(4*nVars)
		var clauses [][]int
		s := New()
		for i := 0; i < nClauses; i++ {
			width := 1 + rng.Intn(3)
			cl := make([]int, 0, width)
			for j := 0; j < width; j++ {
				lit := 1 + rng.Intn(nVars)
				if rng.Intn(2) == 0 {
					lit = -lit
				}
				cl = append(cl, lit)
			}
			clauses = append(clauses, cl)
			s.AddClause(cl...)
		}
		want := bruteSat(nVars, clauses)
		got := s.Solve()
		if got != want {
			t.Fatalf("iter %d: solver=%v brute=%v clauses=%v", iter, got, want, clauses)
		}
		if got {
			// Verify the model actually satisfies every clause.
			for _, cl := range clauses {
				ok := false
				for _, lit := range cl {
					v := lit
					if v < 0 {
						v = -v
					}
					if s.Value(v) == (lit > 0) {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("iter %d: returned model violates clause %v", iter, cl)
				}
			}
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := New()
	for v := 1; v <= 6; v += 2 {
		s.AddClause(v, v+1)
		s.AddClause(-v, -(v + 1))
	}
	if !s.Solve() {
		t.Fatalf("satisfiable")
	}
	if s.Decisions == 0 {
		t.Fatalf("expected at least one decision")
	}
}
