package encodings_test

import (
	"fmt"
	"math/rand"
	"testing"

	"ntgd/internal/classify"
	"ntgd/internal/core"
	"ntgd/internal/encodings"
)

// solveCertCol decides the instance through the native disjunctive
// engine (WATGD¬,∨): YES iff bad is not bravely entailed.
func solveCertCol(t *testing.T, g encodings.CertColGraph) bool {
	t.Helper()
	res, err := core.BraveEntails(g.Database(), g.DatalogProgram(), g.BadQuery(), core.Options{})
	if err != nil {
		t.Fatalf("brave entailment: %v", err)
	}
	if res.Exhausted {
		t.Fatalf("budget exhausted")
	}
	return !res.Entailed
}

func TestCertColHandPicked(t *testing.T) {
	// Triangle with always-active edges: 3-colorable, not 2-colorable.
	triangle := func(k int) encodings.CertColGraph {
		return encodings.CertColGraph{
			Vertices: []string{"a", "b", "c"},
			Vars:     []string{"p"},
			K:        k,
			Edges: []encodings.LabeledEdge{
				// p and ~p labels make each edge active under every
				// assignment.
				{U: "a", W: "b", Var: "p"}, {U: "a", W: "b", Var: "p", Neg: true},
				{U: "b", W: "c", Var: "p"}, {U: "b", W: "c", Var: "p", Neg: true},
				{U: "a", W: "c", Var: "p"}, {U: "a", W: "c", Var: "p", Neg: true},
			},
		}
	}
	if got := triangle(3).BruteForce(); !got {
		t.Fatalf("brute force: triangle should be certainly 3-colorable")
	}
	if got := triangle(2).BruteForce(); got {
		t.Fatalf("brute force: triangle should not be certainly 2-colorable")
	}
	if got := solveCertCol(t, triangle(3)); !got {
		t.Fatalf("encoding: triangle should be certainly 3-colorable")
	}
	if got := solveCertCol(t, triangle(2)); got {
		t.Fatalf("encoding: triangle should not be certainly 2-colorable")
	}

	// A single edge active only when p is true: 1-colorable for p
	// false, not for p true → not certainly 1-colorable, but
	// certainly 2-colorable.
	oneEdge := encodings.CertColGraph{
		Vertices: []string{"a", "b"},
		Vars:     []string{"p"},
		K:        1,
		Edges:    []encodings.LabeledEdge{{U: "a", W: "b", Var: "p"}},
	}
	if oneEdge.BruteForce() {
		t.Fatalf("brute force: one conditional edge is not certainly 1-colorable")
	}
	if solveCertCol(t, oneEdge) {
		t.Fatalf("encoding: one conditional edge is not certainly 1-colorable")
	}
	oneEdge.K = 2
	if !oneEdge.BruteForce() || !solveCertCol(t, oneEdge) {
		t.Fatalf("one conditional edge should be certainly 2-colorable")
	}
}

func TestCertColRandomAgainstBrute(t *testing.T) {
	if testing.Short() {
		t.Skip("random cert-col agreement is slow")
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5; i++ {
		g := randomCertCol(rng, 3, 1, 3, 2)
		want := g.BruteForce()
		if got := solveCertCol(t, g); got != want {
			t.Fatalf("instance %d: encoding = %v, brute = %v (%+v)", i, got, want, g)
		}
	}
}

// TestCertColDatalogProgramIsWeaklyAcyclic: the DATALOG∨ encoding is
// trivially weakly acyclic (no existentials), and its Theorem 15
// translation is weakly acyclic by construction.
func TestCertColDatalogProgramIsWeaklyAcyclic(t *testing.T) {
	g := randomCertCol(rand.New(rand.NewSource(1)), 3, 2, 3, 3)
	if !classify.IsWeaklyAcyclic(g.DatalogProgram()) {
		t.Fatalf("DATALOG∨ encoding should be weakly acyclic")
	}
	w, err := g.WATGDProgram()
	if err != nil {
		t.Fatalf("WATGDProgram: %v", err)
	}
	if !classify.IsWeaklyAcyclic(w.Rules) {
		t.Fatalf("Theorem 15 translation must be weakly acyclic")
	}
	for _, r := range w.Rules {
		if r.IsDisjunctive() {
			t.Fatalf("Theorem 15 translation must be disjunction-free: %s", r)
		}
	}
}

func randomCertCol(rng *rand.Rand, nVertices, nVars, nEdges, k int) encodings.CertColGraph {
	g := encodings.CertColGraph{K: k}
	for i := 0; i < nVertices; i++ {
		g.Vertices = append(g.Vertices, fmt.Sprintf("v%d", i))
	}
	for i := 0; i < nVars; i++ {
		g.Vars = append(g.Vars, fmt.Sprintf("p%d", i))
	}
	for i := 0; i < nEdges; i++ {
		u := rng.Intn(nVertices)
		w := rng.Intn(nVertices)
		for w == u {
			w = rng.Intn(nVertices)
		}
		g.Edges = append(g.Edges, encodings.LabeledEdge{
			U:   g.Vertices[u],
			W:   g.Vertices[w],
			Var: g.Vars[rng.Intn(nVars)],
			Neg: rng.Intn(2) == 1,
		})
	}
	return g
}
