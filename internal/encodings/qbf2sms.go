// Package encodings implements the paper's declarative encodings of
// second-level problems (Sections 5.3 and 7.1): satisfiability of
// 2-QBF formulas, the CERT3COL-style certain k-colorability problem,
// and consistent query answering over subset repairs. Each encoding is
// validated in the test suite against an independent brute-force
// solver.
package encodings

import (
	"fmt"

	"ntgd/internal/logic"
	"ntgd/internal/parser"
	"ntgd/internal/qbf"
)

// Star is the special constant ⋆ of the 2-QBF reduction.
const Star = "star"

// qbfSigma is the fixed rule set Σ of Section 5.3 (it does not depend
// on the formula): guess a truth value object for zero and one, guess
// an assignment for every variable, and perform the universal check by
// saturation. ϕ = ∃X∀Yψ is satisfiable iff (Dϕ, Σ) ⊭SMS error.
const qbfSigma = `
-> zero(X).
-> one(X).
zero(X), one(X) -> error.
zero(X) -> truthVal(X).
one(X) -> truthVal(X).
exists(X) -> assign(X,Y).
forall(X) -> assign(X,Y).
assign(X,Y), not truthVal(Y) -> error.
not saturate -> saturate.
forall(X), truthVal(Y), saturate -> assign(X,Y).
nil(X), truthVal(Y) -> assign(X,Y).
cl(P1,P2,P3,N1,N2,N3),
  assign(P1,O), assign(P2,O), assign(P3,O), one(O),
  assign(N1,Z), assign(N2,Z), assign(N3,Z), zero(Z) -> saturate.
`

// QBFRules returns the fixed weakly-acyclic NTGD set Σ of the
// reduction. The set is independent of the input formula — that is
// what makes the reduction a data-complexity lower bound.
func QBFRules() []*logic.Rule {
	return parser.MustParse(qbfSigma).Rules
}

// QBFDatabase builds Dϕ for a 2-QBF∃ formula: exists/forall facts for
// the quantifier blocks, one cl fact per 3DNF term storing the
// positively occurring variables in the first three positions (⋆
// elsewhere) and the negatively occurring ones in the last three, and
// nil(⋆).
func QBFDatabase(f qbf.Formula) (*logic.FactStore, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	db := logic.NewFactStore()
	for _, x := range f.Exists {
		db.Add(logic.A("exists", logic.C(qvar(x))))
	}
	for _, y := range f.Forall {
		db.Add(logic.A("forall", logic.C(qvar(y))))
	}
	star := logic.C(Star)
	pi := func(l qbf.Lit) logic.Term {
		if l.Neg {
			return star
		}
		return logic.C(qvar(l.Var))
	}
	nu := func(l qbf.Lit) logic.Term {
		if l.Neg {
			return logic.C(qvar(l.Var))
		}
		return star
	}
	for _, t := range f.Terms {
		db.Add(logic.A("cl",
			pi(t[0]), pi(t[1]), pi(t[2]),
			nu(t[0]), nu(t[1]), nu(t[2])))
	}
	db.Add(logic.A("nil", star))
	return db, nil
}

// qvar maps a QBF variable name to a database constant (lower-cased
// prefix keeps it parseable and distinct from ⋆).
func qvar(v string) string { return "v_" + v }

// QBFErrorQuery is the 0-ary query of the reduction.
func QBFErrorQuery() logic.Query {
	return logic.Query{Pos: []logic.Atom{logic.A("error")}}
}

// QBFBraveQuery returns the brave-semantics variant of Section 7.1:
// the query program Σ ∪ {¬error → ans} with answer predicate ans.
// ϕ is satisfiable iff ans is bravely entailed.
func QBFBraveQuery() ([]*logic.Rule, logic.Query) {
	rules := QBFRules()
	rules = append(rules, parser.MustParse("not error -> ans.").Rules...)
	return rules, logic.Query{Pos: []logic.Atom{logic.A("ans")}}
}

// QBFInstance bundles a reduction instance.
type QBFInstance struct {
	Formula qbf.Formula
	DB      *logic.FactStore
	Rules   []*logic.Rule
	Query   logic.Query
}

// EncodeQBF builds the full reduction for a formula.
func EncodeQBF(f qbf.Formula) (*QBFInstance, error) {
	db, err := QBFDatabase(f)
	if err != nil {
		return nil, err
	}
	return &QBFInstance{Formula: f, DB: db, Rules: QBFRules(), Query: QBFErrorQuery()}, nil
}

// String summarizes the instance.
func (i *QBFInstance) String() string {
	return fmt.Sprintf("2-QBF∃ %s over %d facts", i.Formula.String(), i.DB.Len())
}
