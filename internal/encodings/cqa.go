package encodings

import (
	"fmt"
	"sort"

	"ntgd/internal/core"
	"ntgd/internal/logic"
)

// CQAInstance is a consistent query answering instance in the style of
// ten Cate, Fontaine and Kolaitis ([30] in the paper, cited in
// Section 7.1): a database that may violate a set of denial
// constraints, repaired by taking ⊆-maximal consistent subsets, with a
// weakly-acyclic set of TGDs used for ontological reasoning on top of
// each repair. An n-ary query is certain iff it holds in every stable
// model of (D', Σ_TGD) for every subset repair D'.
//
// (The paper only states that such an encoding exists for its
// languages; the concrete encoding below is ours. See DESIGN.md for
// the precise variant and its validation against brute force.)
type CQAInstance struct {
	DB *logic.FactStore
	// Denials are constraint rules (empty heads) over the database
	// predicates; a repair must not trigger any of them.
	Denials []*logic.Rule
	// TGDs are (negation-free, non-disjunctive) weakly-acyclic TGDs
	// applied over the repaired database.
	TGDs []*logic.Rule
}

// Validate checks the shape restrictions.
func (in *CQAInstance) Validate() error {
	for _, d := range in.Denials {
		if !d.IsConstraint() {
			return fmt.Errorf("cqa: %s is not a denial constraint", d.Label)
		}
		if d.HasNegation() {
			return fmt.Errorf("cqa: denial %s uses negation", d.Label)
		}
	}
	for _, t := range in.TGDs {
		if !t.IsTGD() {
			return fmt.Errorf("cqa: %s is not a plain TGD", t.Label)
		}
	}
	return nil
}

func dbPred(p string) string     { return "db_" + p }
func inPred(p string) string     { return "in_" + p }
func outPred(p string) string    { return "out_" + p }
func blamedPred(p string) string { return "bl_" + p }

// Encode compiles the instance into a single (D*, Σ*) pair whose
// stable models are exactly the pairs (repair, TGD model): database
// facts are moved to shadow db_ predicates; in/out membership is
// guessed by the standard cyclic-negation choice; repairs must satisfy
// the denials (via the false/aux idiom) and be maximal (every out atom
// must be *blamed*: re-adding it would trigger a denial together with
// in atoms); in_ atoms are copied to the original predicates, over
// which the TGDs and the query run unchanged.
func (in *CQAInstance) Encode() (*logic.FactStore, []*logic.Rule, error) {
	if err := in.Validate(); err != nil {
		return nil, nil, err
	}
	db := logic.NewFactStore()
	preds := map[string]int{}
	for _, f := range in.DB.Atoms() {
		preds[f.Pred] = f.Arity()
		db.Add(logic.Atom{Pred: dbPred(f.Pred), Args: f.Args})
	}
	var rules []*logic.Rule
	var predList []string
	for p := range preds {
		predList = append(predList, p)
	}
	sort.Strings(predList)

	vars := func(n int) []logic.Term {
		ts := make([]logic.Term, n)
		for i := range ts {
			ts[i] = logic.V("X" + fmt.Sprint(i))
		}
		return ts
	}
	for _, p := range predList {
		xs := vars(preds[p])
		// Choice: db_p ∧ ¬out_p → in_p; db_p ∧ ¬in_p → out_p.
		rules = append(rules,
			&logic.Rule{Label: "keep_" + p,
				Body: []logic.Literal{
					logic.Pos(logic.Atom{Pred: dbPred(p), Args: xs}),
					logic.Neg(logic.Atom{Pred: outPred(p), Args: xs})},
				Heads: [][]logic.Atom{{{Pred: inPred(p), Args: xs}}}},
			&logic.Rule{Label: "drop_" + p,
				Body: []logic.Literal{
					logic.Pos(logic.Atom{Pred: dbPred(p), Args: xs}),
					logic.Neg(logic.Atom{Pred: inPred(p), Args: xs})},
				Heads: [][]logic.Atom{{{Pred: outPred(p), Args: xs}}}},
			// Copy to the reasoning layer: in_p → p.
			&logic.Rule{Label: "copy_" + p,
				Body:  []logic.Literal{logic.Pos(logic.Atom{Pred: inPred(p), Args: xs})},
				Heads: [][]logic.Atom{{{Pred: p, Args: xs}}}},
			// Maximality: a dropped atom must be blamed.
			&logic.Rule{Label: "maxim_" + p,
				Body: []logic.Literal{
					logic.Pos(logic.Atom{Pred: outPred(p), Args: xs}),
					logic.Neg(logic.Atom{Pred: blamedPred(p), Args: xs})},
				Heads: [][]logic.Atom{{logic.A("false")}}},
		)
	}
	// Denial satisfaction on the repair: body over in_ predicates.
	for _, d := range in.Denials {
		body := make([]logic.Literal, 0, len(d.Body))
		for _, l := range d.Body {
			body = append(body, logic.Pos(logic.Atom{Pred: inPred(l.Atom.Pred), Args: l.Atom.Args}))
		}
		rules = append(rules, &logic.Rule{
			Label: d.Label + "_denial",
			Body:  body,
			Heads: [][]logic.Atom{{logic.A("false")}},
		})
		// Blame rules: for every non-empty unifiable subset S of body
		// positions, re-adding the (unified) atom at S completes the
		// denial with in_ atoms elsewhere.
		rules = append(rules, blameRules(d)...)
	}
	// The false/aux killer.
	rules = append(rules, &logic.Rule{
		Label: "killfalse",
		Body: []logic.Literal{
			logic.Pos(logic.A("false")),
			logic.Neg(logic.A("aux"))},
		Heads: [][]logic.Atom{{logic.A("aux")}},
	})
	rules = append(rules, in.TGDs...)
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, nil, fmt.Errorf("cqa: generated rule %s invalid: %w", r.Label, err)
		}
	}
	return db, rules, nil
}

// blameRules generates, for one denial with body atoms a₁…a_m, the
// rules bl_p(ā_S) ← out_p(ā_S), ∧_{i∉S} in(a_i) for each non-empty
// subset S of positions whose atoms unify to a single atom ā_S (the
// re-added tuple may occur at several body positions at once).
func blameRules(d *logic.Rule) []*logic.Rule {
	atoms := d.PosBody()
	m := len(atoms)
	var out []*logic.Rule
	for mask := 1; mask < 1<<m; mask++ {
		// All selected positions must share a predicate and unify.
		var sel []int
		for i := 0; i < m; i++ {
			if mask&(1<<i) != 0 {
				sel = append(sel, i)
			}
		}
		u, ok := unifyAtoms(atoms, sel)
		if !ok {
			continue
		}
		target := u.ApplyAtom(atoms[sel[0]])
		body := []logic.Literal{logic.Pos(logic.Atom{Pred: outPred(target.Pred), Args: target.Args})}
		for i := 0; i < m; i++ {
			if mask&(1<<i) != 0 {
				continue
			}
			a := u.ApplyAtom(atoms[i])
			body = append(body, logic.Pos(logic.Atom{Pred: inPred(a.Pred), Args: a.Args}))
		}
		out = append(out, &logic.Rule{
			Label: fmt.Sprintf("%s_blame%d", d.Label, mask),
			Body:  body,
			Heads: [][]logic.Atom{{{Pred: blamedPred(target.Pred), Args: target.Args}}},
		})
	}
	return out
}

// unifyAtoms computes a most general unifier of the selected body
// atoms (flat terms: variables and constants only).
func unifyAtoms(atoms []logic.Atom, sel []int) (logic.Subst, bool) {
	u := logic.Subst{}
	first := atoms[sel[0]]
	for _, i := range sel[1:] {
		a := atoms[i]
		if a.Pred != first.Pred || len(a.Args) != len(first.Args) {
			return nil, false
		}
	}
	resolve := func(t logic.Term) logic.Term {
		for t.Kind == logic.Var {
			b, ok := u[t.Name]
			if !ok {
				return t
			}
			t = b
		}
		return t
	}
	for _, i := range sel[1:] {
		a := atoms[i]
		for k := range a.Args {
			s, t := resolve(first.Args[k]), resolve(a.Args[k])
			switch {
			case s.Equal(t):
			case s.Kind == logic.Var:
				u[s.Name] = t
			case t.Kind == logic.Var:
				u[t.Name] = s
			default:
				return nil, false
			}
		}
	}
	return u, true
}

// BruteForceRepairs enumerates the ⊆-maximal subsets of the database
// that satisfy every denial constraint.
func (in *CQAInstance) BruteForceRepairs() ([]*logic.FactStore, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	facts := in.DB.Atoms()
	n := len(facts)
	if n > 20 {
		return nil, fmt.Errorf("cqa: brute force limited to 20 facts")
	}
	consistent := func(sub *logic.FactStore) bool {
		for _, d := range in.Denials {
			if logic.ExistsHom(d.PosBody(), nil, sub, logic.Subst{}) {
				return false
			}
		}
		return true
	}
	var subsets []*logic.FactStore
	var masks []int
	for mask := 0; mask < 1<<n; mask++ {
		sub := logic.NewFactStore()
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sub.Add(facts[i])
			}
		}
		if consistent(sub) {
			subsets = append(subsets, sub)
			masks = append(masks, mask)
		}
	}
	var repairs []*logic.FactStore
	for i, sub := range subsets {
		maximal := true
		for j, other := range subsets {
			if i != j && masks[i]&masks[j] == masks[i] && masks[i] != masks[j] {
				maximal = false
				_ = other
				break
			}
		}
		if maximal {
			repairs = append(repairs, sub)
		}
	}
	return repairs, nil
}

// CertainBrute decides certain answers by brute force: q must hold in
// every stable model of (D', TGDs) for every repair D'.
func (in *CQAInstance) CertainBrute(q logic.Query, opt core.Options) (bool, error) {
	repairs, err := in.BruteForceRepairs()
	if err != nil {
		return false, err
	}
	for _, rep := range repairs {
		res, err := core.CautiousEntails(rep, in.TGDs, q, opt)
		if err != nil {
			return false, err
		}
		if !res.Entailed {
			return false, nil
		}
	}
	return true, nil
}

// CertainEncoded decides certain answers through the declarative
// encoding and the stable model engine.
func (in *CQAInstance) CertainEncoded(q logic.Query, opt core.Options) (bool, error) {
	db, rules, err := in.Encode()
	if err != nil {
		return false, err
	}
	res, err := core.CautiousEntails(db, rules, q, opt)
	if err != nil {
		return false, err
	}
	return res.Entailed, nil
}
