package encodings_test

import (
	"testing"

	"ntgd/internal/core"
	"ntgd/internal/encodings"
	"ntgd/internal/parser"
)

// cqaKeyConflict is a classic CQA instance: two conflicting manager
// records; each repair keeps exactly one.
func cqaKeyConflict(t *testing.T) *encodings.CQAInstance {
	t.Helper()
	prog := parser.MustParse(`
mgr(sales, ann).
mgr(sales, bob).
mgr(hr, eve).
:- mgr(D, X), mgr(D, Y), neq(X, Y).
neq(ann,bob). neq(bob,ann).
mgr(D, X) -> emp(X).
`)
	var inst encodings.CQAInstance
	inst.DB = prog.Database()
	for _, r := range prog.Rules {
		if r.IsConstraint() {
			inst.Denials = append(inst.Denials, r)
		} else {
			inst.TGDs = append(inst.TGDs, r)
		}
	}
	return &inst
}

func TestCQARepairsKeyConflict(t *testing.T) {
	inst := cqaKeyConflict(t)
	repairs, err := inst.BruteForceRepairs()
	if err != nil {
		t.Fatalf("repairs: %v", err)
	}
	// Three maximal consistent subsets: keep ann (drop bob), keep bob
	// (drop ann), or drop both neq facts (the inequality facts are
	// ordinary, repairable database facts too).
	if len(repairs) != 3 {
		for _, r := range repairs {
			t.Logf("repair: %s", r.CanonicalString())
		}
		t.Fatalf("expected 3 repairs, got %d", len(repairs))
	}
}

func TestCQAEncodingAgreesWithBrute(t *testing.T) {
	inst := cqaKeyConflict(t)
	cases := []struct {
		query string
		want  bool
	}{
		// eve's record is in no conflict: certain.
		{"?- emp(eve).", true},
		// ann survives in only one repair: not certain.
		{"?- emp(ann).", false},
		// some sales manager employee exists in every repair.
		{"?- mgr(sales, X), emp(X).", true},
		// ann and bob never coexist.
		{"?- emp(ann), emp(bob).", false},
	}
	for _, tc := range cases {
		q := parser.MustParse(tc.query).Queries[0]
		brute, err := inst.CertainBrute(q, core.Options{})
		if err != nil {
			t.Fatalf("%s: brute: %v", tc.query, err)
		}
		if brute != tc.want {
			t.Fatalf("%s: brute force gives %v, hand analysis says %v", tc.query, brute, tc.want)
		}
		enc, err := inst.CertainEncoded(q, core.Options{})
		if err != nil {
			t.Fatalf("%s: encoded: %v", tc.query, err)
		}
		if enc != tc.want {
			t.Fatalf("%s: encoding gives %v, want %v", tc.query, enc, tc.want)
		}
	}
}
