package encodings

import (
	"fmt"
	"strconv"

	"ntgd/internal/logic"
	"ntgd/internal/transform"
)

// CertColGraph is an instance of the certain k-colorability problem
// that Section 7.1 describes as "an interesting variation of graph
// k-colorability, which generalizes the well-known problem CERT3COL":
// every edge is labeled with a Boolean literal over Vars; the instance
// is a YES instance iff for every truth assignment the subgraph of
// edges whose label is true is k-colorable. For k = 3 this is
// Stewart's ΠP2-complete CERT3COL.
type CertColGraph struct {
	Vertices []string
	Edges    []LabeledEdge
	Vars     []string
	K        int
}

// LabeledEdge is an edge active when its label literal is true.
type LabeledEdge struct {
	U, W string
	Var  string
	Neg  bool
}

func colPred(c int) string { return "col" + strconv.Itoa(c) }

// Database builds the database facts for the instance.
func (g CertColGraph) Database() *logic.FactStore {
	db := logic.NewFactStore()
	for _, v := range g.Vertices {
		db.Add(logic.A("vtx", logic.C(v)))
	}
	for _, v := range g.Vars {
		db.Add(logic.A("bvar", logic.C(v)))
	}
	for _, e := range g.Edges {
		pred := "edgp"
		if e.Neg {
			pred = "edgn"
		}
		db.Add(logic.A(pred, logic.C(e.U), logic.C(e.W), logic.C(e.Var)))
	}
	return db
}

// DatalogProgram builds the DATALOG∨ saturation encoding: guess an
// assignment and a coloring disjunctively; derive w on a monochromatic
// active edge; saturate the coloring under w. A stable model contains
// w iff its assignment admits no proper k-coloring, so the instance is
// a YES instance iff w is not bravely entailed. The program is
// negation-free and existential-free (hence trivially weakly acyclic),
// making it a valid input both for the native NDTGD engine
// (WATGD¬,∨, Theorem 12) and for the Theorem 15 translation to WATGD¬.
func (g CertColGraph) DatalogProgram() []*logic.Rule {
	var rules []*logic.Rule
	x, y, v := logic.V("X"), logic.V("Y"), logic.V("V")
	// Coloring guess: col1(X) | … | colk(X) :- vtx(X).
	var colDisj [][]logic.Atom
	for c := 1; c <= g.K; c++ {
		colDisj = append(colDisj, []logic.Atom{logic.A(colPred(c), x)})
	}
	rules = append(rules, &logic.Rule{
		Label: "guesscol",
		Body:  []logic.Literal{logic.Pos(logic.A("vtx", x))},
		Heads: colDisj,
	})
	// Assignment guess: tt(V) | ff(V) :- bvar(V).
	rules = append(rules, &logic.Rule{
		Label: "guessasg",
		Body:  []logic.Literal{logic.Pos(logic.A("bvar", v))},
		Heads: [][]logic.Atom{{logic.A("tt", v)}, {logic.A("ff", v)}},
	})
	// Clash detection per color and per label polarity.
	for c := 1; c <= g.K; c++ {
		rules = append(rules, &logic.Rule{
			Label: fmt.Sprintf("clashp%d", c),
			Body: []logic.Literal{
				logic.Pos(logic.A("edgp", x, y, v)),
				logic.Pos(logic.A("tt", v)),
				logic.Pos(logic.A(colPred(c), x)),
				logic.Pos(logic.A(colPred(c), y)),
			},
			Heads: [][]logic.Atom{{logic.A("w")}},
		})
		rules = append(rules, &logic.Rule{
			Label: fmt.Sprintf("clashn%d", c),
			Body: []logic.Literal{
				logic.Pos(logic.A("edgn", x, y, v)),
				logic.Pos(logic.A("ff", v)),
				logic.Pos(logic.A(colPred(c), x)),
				logic.Pos(logic.A(colPred(c), y)),
			},
			Heads: [][]logic.Atom{{logic.A("w")}},
		})
	}
	// Saturation: w forces every color on every vertex.
	for c := 1; c <= g.K; c++ {
		rules = append(rules, &logic.Rule{
			Label: fmt.Sprintf("sat%d", c),
			Body: []logic.Literal{
				logic.Pos(logic.A("w")),
				logic.Pos(logic.A("vtx", x)),
			},
			Heads: [][]logic.Atom{{logic.A(colPred(c), x)}},
		})
	}
	// Answer copy so the query predicate does not occur in bodies.
	rules = append(rules, &logic.Rule{
		Label: "anscp",
		Body:  []logic.Literal{logic.Pos(logic.A("w"))},
		Heads: [][]logic.Atom{{logic.A("bad")}},
	})
	return rules
}

// BadQuery is the Boolean query asked under the brave semantics: the
// instance is certainly colorable iff bad is NOT bravely entailed.
func (g CertColGraph) BadQuery() logic.Query {
	return logic.Query{Pos: []logic.Atom{logic.A("bad")}}
}

// WATGDProgram translates the DATALOG∨ encoding into a WATGD¬ query
// via the construction of Theorem 15/16.
func (g CertColGraph) WATGDProgram() (*transform.WATGDQuery, error) {
	return transform.DatalogToWATGD(transform.DatalogQuery{
		Rules:     g.DatalogProgram(),
		QueryPred: "bad",
	}, 0)
}

// BruteForce decides the instance by enumerating assignments and, for
// each, k-colorings of the active subgraph by backtracking.
func (g CertColGraph) BruteForce() bool {
	n := len(g.Vars)
	if n > 20 {
		panic("encodings: CertColGraph.BruteForce limited to 20 variables")
	}
	idx := make(map[string]int, n)
	for i, v := range g.Vars {
		idx[v] = i
	}
	for mask := 0; mask < 1<<n; mask++ {
		// Active edges under this assignment.
		var active [][2]string
		for _, e := range g.Edges {
			val := mask&(1<<idx[e.Var]) != 0
			if val != e.Neg {
				active = append(active, [2]string{e.U, e.W})
			}
		}
		if !kColorable(g.Vertices, active, g.K) {
			return false
		}
	}
	return true
}

func kColorable(vertices []string, edges [][2]string, k int) bool {
	color := make(map[string]int, len(vertices))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(vertices) {
			return true
		}
		v := vertices[i]
		for c := 1; c <= k; c++ {
			ok := true
			for _, e := range edges {
				var other string
				switch v {
				case e[0]:
					other = e[1]
				case e[1]:
					other = e[0]
				default:
					continue
				}
				if oc, set := color[other]; set && oc == c {
					ok = false
					break
				}
				if other == v {
					ok = false // self-loop is never colorable
					break
				}
			}
			if ok {
				color[v] = c
				if rec(i + 1) {
					return true
				}
				delete(color, v)
			}
		}
		return false
	}
	return rec(0)
}
