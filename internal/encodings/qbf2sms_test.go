package encodings_test

import (
	"math/rand"
	"testing"

	"ntgd/internal/core"
	"ntgd/internal/encodings"
	"ntgd/internal/qbf"
)

// solveViaEncoding decides 2-QBF∃ satisfiability through the paper's
// reduction: ϕ is satisfiable iff (Dϕ, Σ) ⊭SMS error.
func solveViaEncoding(t *testing.T, f qbf.Formula) bool {
	t.Helper()
	inst, err := encodings.EncodeQBF(f)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	res, err := core.CautiousEntails(inst.DB, inst.Rules, inst.Query, core.Options{})
	if err != nil {
		t.Fatalf("query answering: %v", err)
	}
	if res.Exhausted {
		t.Fatalf("budget exhausted on %s", f)
	}
	return !res.Entailed
}

func TestQBFEncodingTinyHandPicked(t *testing.T) {
	x := func(v string) qbf.Lit { return qbf.Lit{Var: v} }
	nx := func(v string) qbf.Lit { return qbf.Lit{Var: v, Neg: true} }

	cases := []struct {
		name string
		f    qbf.Formula
		want bool
	}{
		{
			name: "exists x: x — satisfiable",
			f: qbf.Formula{Exists: []string{"x"},
				Terms: []qbf.Term{{x("x"), x("x"), x("x")}}},
			want: true,
		},
		{
			name: "exists x: x and not x — unsatisfiable",
			f: qbf.Formula{Exists: []string{"x"},
				Terms: []qbf.Term{{x("x"), nx("x"), x("x")}}},
			want: false,
		},
		{
			name: "forall y: y — unsatisfiable",
			f: qbf.Formula{Forall: []string{"y"},
				Terms: []qbf.Term{{x("y"), x("y"), x("y")}}},
			want: false,
		},
		{
			name: "forall y: y or not y — valid",
			f: qbf.Formula{Forall: []string{"y"},
				Terms: []qbf.Term{{x("y"), x("y"), x("y")}, {nx("y"), nx("y"), nx("y")}}},
			want: true,
		},
		{
			name: "exists x forall y: (x&y) | (x&~y) — x makes it true",
			f: qbf.Formula{Exists: []string{"x"}, Forall: []string{"y"},
				Terms: []qbf.Term{{x("x"), x("y"), x("y")}, {x("x"), nx("y"), nx("y")}}},
			want: true,
		},
		{
			name: "exists x forall y: x&y — y can be false",
			f: qbf.Formula{Exists: []string{"x"}, Forall: []string{"y"},
				Terms: []qbf.Term{{x("x"), x("y"), x("y")}}},
			want: false,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.f.EvalBrute(); got != tc.want {
				t.Fatalf("brute-force reference disagrees with hand analysis: got %v", got)
			}
			if got := solveViaEncoding(t, tc.f); got != tc.want {
				t.Fatalf("encoding verdict = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestQBFEncodingRandomAgainstBrute(t *testing.T) {
	if testing.Short() {
		t.Skip("random QBF agreement is slow")
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 6; i++ {
		f := qbf.Random(rng, 1, 1, 2)
		want := f.EvalBrute()
		if got := f.EvalSAT(); got != want {
			t.Fatalf("EvalSAT disagrees with EvalBrute on %s", f)
		}
		if got := solveViaEncoding(t, f); got != want {
			t.Fatalf("instance %d: encoding = %v, brute = %v, formula %s", i, got, want, f)
		}
	}
}
