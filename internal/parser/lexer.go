// Package parser implements the surface syntax for NTGD programs,
// databases and normal conjunctive queries:
//
//	% comment (to end of line)
//	person(alice).                             % fact
//	person(X) -> hasFather(X,Y).               % NTGD (Y is existential)
//	hasFather(X,Y), not sameAs(X,Y) -> abnormal(X).
//	node(X) -> red(X) | green(X) | blue(X).    % disjunctive head
//	:- edge(X,Y), red(X), red(Y).              % integrity constraint
//	?- person(X), not abnormal(X).             % Boolean query
//	?-[X] person(X), not abnormal(X).          % query with answer vars
//
// Identifiers starting with a lowercase letter (or digits, or quoted
// strings) are constants / predicate symbols; identifiers starting with
// an uppercase letter or underscore are variables. Head variables that
// do not occur in the positive body are existentially quantified.
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF            tokenKind = iota
	tokIdent                    // lowercase identifier, number, or quoted string (constant/predicate)
	tokVar                      // uppercase/underscore identifier (variable)
	tokNot                      // not
	tokLParen                   // (
	tokRParen                   // )
	tokLBracket                 // [
	tokRBracket                 // ]
	tokComma                    // ,
	tokDot                      // .
	tokPipe                     // |
	tokArrow                    // ->
	tokConstraintHead           // :-
	tokQuery                    // ?-
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokVar:
		return "variable"
	case tokNot:
		return "'not'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokPipe:
		return "'|'"
	case tokArrow:
		return "'->'"
	case tokConstraintHead:
		return "':-'"
	case tokQuery:
		return "'?-'"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errorf(line, col int, format string, args ...any) error {
	return fmt.Errorf("%d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '%':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '\'' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	c := l.peekByte()
	switch {
	case c == '(':
		l.advance()
		return token{tokLParen, "(", line, col}, nil
	case c == ')':
		l.advance()
		return token{tokRParen, ")", line, col}, nil
	case c == '[':
		l.advance()
		return token{tokLBracket, "[", line, col}, nil
	case c == ']':
		l.advance()
		return token{tokRBracket, "]", line, col}, nil
	case c == ',':
		l.advance()
		return token{tokComma, ",", line, col}, nil
	case c == '.':
		l.advance()
		return token{tokDot, ".", line, col}, nil
	case c == '|':
		l.advance()
		return token{tokPipe, "|", line, col}, nil
	case c == '-':
		l.advance()
		if l.peekByte() == '>' {
			l.advance()
			return token{tokArrow, "->", line, col}, nil
		}
		return token{}, l.errorf(line, col, "unexpected '-' (did you mean '->'?)")
	case c == ':':
		l.advance()
		if l.peekByte() == '-' {
			l.advance()
			return token{tokConstraintHead, ":-", line, col}, nil
		}
		return token{}, l.errorf(line, col, "unexpected ':' (did you mean ':-'?)")
	case c == '?':
		l.advance()
		if l.peekByte() == '-' {
			l.advance()
			return token{tokQuery, "?-", line, col}, nil
		}
		return token{}, l.errorf(line, col, "unexpected '?' (did you mean '?-'?)")
	case c == '"':
		l.advance()
		var b strings.Builder
		for l.pos < len(l.src) && l.peekByte() != '"' {
			b.WriteByte(l.advance())
		}
		if l.pos >= len(l.src) {
			return token{}, l.errorf(line, col, "unterminated string literal")
		}
		l.advance() // closing quote
		return token{tokIdent, b.String(), line, col}, nil
	case unicode.IsDigit(rune(c)):
		var b strings.Builder
		for l.pos < len(l.src) && (unicode.IsDigit(rune(l.peekByte())) || l.peekByte() == '_') {
			b.WriteByte(l.advance())
		}
		return token{tokIdent, b.String(), line, col}, nil
	case isIdentStart(c):
		var b strings.Builder
		for l.pos < len(l.src) && isIdentPart(l.peekByte()) {
			b.WriteByte(l.advance())
		}
		text := b.String()
		if text == "not" {
			return token{tokNot, text, line, col}, nil
		}
		first := rune(text[0])
		if first == '_' || unicode.IsUpper(first) {
			return token{tokVar, text, line, col}, nil
		}
		return token{tokIdent, text, line, col}, nil
	default:
		return token{}, l.errorf(line, col, "unexpected character %q", string(rune(c)))
	}
}
