package parser

import (
	"fmt"
	"os"

	"ntgd/internal/logic"
)

// Parse parses a program in the surface syntax. Rules are labelled
// r1, r2, ... in source order unless they carry explicit labels
// (not supported in the syntax; labels are assigned automatically).
func Parse(src string) (*logic.Program, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	prog := &logic.Program{}
	ruleN := 0
	for p.tok.kind != tokEOF {
		switch p.tok.kind {
		case tokQuery:
			q, err := p.parseQuery()
			if err != nil {
				return nil, err
			}
			prog.Queries = append(prog.Queries, q)
		case tokConstraintHead:
			r, err := p.parseConstraint()
			if err != nil {
				return nil, err
			}
			ruleN++
			r.Label = fmt.Sprintf("r%d", ruleN)
			prog.Rules = append(prog.Rules, r)
		default:
			factOrRule, err := p.parseStatement()
			if err != nil {
				return nil, err
			}
			if factOrRule.rule != nil {
				ruleN++
				factOrRule.rule.Label = fmt.Sprintf("r%d", ruleN)
				prog.Rules = append(prog.Rules, factOrRule.rule)
			} else {
				prog.Facts = append(prog.Facts, factOrRule.facts...)
			}
		}
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// ParseFile parses the program in the named file.
func ParseFile(path string) (*logic.Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	prog, err := Parse(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s:%w", path, err)
	}
	return prog, nil
}

// MustParse parses src and panics on error; for tests and examples.
func MustParse(src string) *logic.Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(kind tokenKind) (token, error) {
	if p.tok.kind != kind {
		return token{}, fmt.Errorf("%d:%d: expected %s, found %s (%q)", p.tok.line, p.tok.col, kind, p.tok.kind, p.tok.text)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

type statement struct {
	facts []logic.Atom
	rule  *logic.Rule
}

// parseStatement parses either a fact list ("a(1). "), a rule
// ("body -> head ."), or an empty-body rule ("-> head ." — used for
// the paper's "→ ∃X zero(X)" style guessing rules).
func (p *parser) parseStatement() (statement, error) {
	if p.tok.kind == tokArrow {
		if err := p.advance(); err != nil {
			return statement{}, err
		}
		heads, err := p.parseHead()
		if err != nil {
			return statement{}, err
		}
		if _, err := p.expect(tokDot); err != nil {
			return statement{}, err
		}
		return statement{rule: &logic.Rule{Heads: heads}}, nil
	}
	body, err := p.parseLiteralList()
	if err != nil {
		return statement{}, err
	}
	switch p.tok.kind {
	case tokDot:
		if err := p.advance(); err != nil {
			return statement{}, err
		}
		// A fact list: every literal must be a ground positive atom.
		facts := make([]logic.Atom, 0, len(body))
		for _, l := range body {
			if l.Neg {
				return statement{}, fmt.Errorf("%d:%d: negative literal in fact position", p.tok.line, p.tok.col)
			}
			facts = append(facts, l.Atom)
		}
		return statement{facts: facts}, nil
	case tokArrow:
		if err := p.advance(); err != nil {
			return statement{}, err
		}
		heads, err := p.parseHead()
		if err != nil {
			return statement{}, err
		}
		if _, err := p.expect(tokDot); err != nil {
			return statement{}, err
		}
		return statement{rule: &logic.Rule{Body: body, Heads: heads}}, nil
	default:
		return statement{}, fmt.Errorf("%d:%d: expected '.' or '->', found %s (%q)", p.tok.line, p.tok.col, p.tok.kind, p.tok.text)
	}
}

// parseConstraint parses ":- body ." into a rule with an empty head.
func (p *parser) parseConstraint() (*logic.Rule, error) {
	if _, err := p.expect(tokConstraintHead); err != nil {
		return nil, err
	}
	body, err := p.parseLiteralList()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokDot); err != nil {
		return nil, err
	}
	return &logic.Rule{Body: body}, nil
}

// parseHead parses disjuncts separated by '|'; each disjunct is a
// comma-separated conjunction of atoms. The keyword #false is not used;
// constraints use the ':-' form.
func (p *parser) parseHead() ([][]logic.Atom, error) {
	var heads [][]logic.Atom
	for {
		var disj []logic.Atom
		for {
			a, err := p.parseAtom()
			if err != nil {
				return nil, err
			}
			disj = append(disj, a)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		heads = append(heads, disj)
		if p.tok.kind != tokPipe {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return heads, nil
}

func (p *parser) parseQuery() (logic.Query, error) {
	if _, err := p.expect(tokQuery); err != nil {
		return logic.Query{}, err
	}
	var q logic.Query
	if p.tok.kind == tokLBracket {
		if err := p.advance(); err != nil {
			return logic.Query{}, err
		}
		for p.tok.kind != tokRBracket {
			v, err := p.expect(tokVar)
			if err != nil {
				return logic.Query{}, err
			}
			q.AnswerVars = append(q.AnswerVars, v.text)
			if p.tok.kind == tokComma {
				if err := p.advance(); err != nil {
					return logic.Query{}, err
				}
			}
		}
		if err := p.advance(); err != nil { // consume ]
			return logic.Query{}, err
		}
	}
	lits, err := p.parseLiteralList()
	if err != nil {
		return logic.Query{}, err
	}
	if _, err := p.expect(tokDot); err != nil {
		return logic.Query{}, err
	}
	q.Pos, q.Neg = logic.SplitLiterals(lits)
	return q, nil
}

func (p *parser) parseLiteralList() ([]logic.Literal, error) {
	var lits []logic.Literal
	for {
		l, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		lits = append(lits, l)
		if p.tok.kind != tokComma {
			return lits, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}

func (p *parser) parseLiteral() (logic.Literal, error) {
	neg := false
	if p.tok.kind == tokNot {
		neg = true
		if err := p.advance(); err != nil {
			return logic.Literal{}, err
		}
	}
	a, err := p.parseAtom()
	if err != nil {
		return logic.Literal{}, err
	}
	return logic.Literal{Neg: neg, Atom: a}, nil
}

func (p *parser) parseAtom() (logic.Atom, error) {
	pred, err := p.expect(tokIdent)
	if err != nil {
		return logic.Atom{}, fmt.Errorf("expected a predicate: %w", err)
	}
	a := logic.Atom{Pred: pred.text}
	if p.tok.kind != tokLParen {
		return a, nil // 0-ary atom
	}
	if err := p.advance(); err != nil {
		return logic.Atom{}, err
	}
	for {
		t, err := p.parseTerm()
		if err != nil {
			return logic.Atom{}, err
		}
		a.Args = append(a.Args, t)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return logic.Atom{}, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return logic.Atom{}, err
	}
	return a, nil
}

func (p *parser) parseTerm() (logic.Term, error) {
	switch p.tok.kind {
	case tokVar:
		t := logic.V(p.tok.text)
		if err := p.advance(); err != nil {
			return logic.Term{}, err
		}
		return t, nil
	case tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return logic.Term{}, err
		}
		if p.tok.kind == tokLParen { // function term f(...)
			if err := p.advance(); err != nil {
				return logic.Term{}, err
			}
			var args []logic.Term
			for {
				arg, err := p.parseTerm()
				if err != nil {
					return logic.Term{}, err
				}
				args = append(args, arg)
				if p.tok.kind == tokComma {
					if err := p.advance(); err != nil {
						return logic.Term{}, err
					}
					continue
				}
				break
			}
			if _, err := p.expect(tokRParen); err != nil {
				return logic.Term{}, err
			}
			return logic.F(name, args...), nil
		}
		return logic.C(name), nil
	default:
		return logic.Term{}, fmt.Errorf("%d:%d: expected a term, found %s (%q)", p.tok.line, p.tok.col, p.tok.kind, p.tok.text)
	}
}
