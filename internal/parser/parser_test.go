package parser

import (
	"strings"
	"testing"

	"ntgd/internal/logic"
)

func TestParseFactsRulesQueries(t *testing.T) {
	prog, err := Parse(`
% a comment
person(alice). person(bob).
person(X) -> hasFather(X,Y).        // another comment style
hasFather(X,Y), not sameAs(X,Y) -> abnormal(X).
node(X) -> red(X) | green(X), mark(X) | blue(X).
:- red(X), blue(X).
-> zero(X).
?- person(X), not abnormal(X).
?-[X,Y] hasFather(X,Y).
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(prog.Facts) != 2 {
		t.Fatalf("facts = %d", len(prog.Facts))
	}
	if len(prog.Rules) != 5 {
		t.Fatalf("rules = %d", len(prog.Rules))
	}
	if len(prog.Queries) != 2 {
		t.Fatalf("queries = %d", len(prog.Queries))
	}
	// Disjunct grouping: red(X) | green(X), mark(X) | blue(X) is three
	// disjuncts, the middle one a conjunction.
	disj := prog.Rules[2].Heads
	if len(disj) != 3 || len(disj[1]) != 2 {
		t.Fatalf("head disjuncts wrong: %v", disj)
	}
	if !prog.Rules[3].IsConstraint() {
		t.Fatalf("constraint not recognized")
	}
	if len(prog.Rules[4].Body) != 0 || prog.Rules[4].ExistVars(0)[0] != "X" {
		t.Fatalf("empty-body rule wrong: %v", prog.Rules[4])
	}
	if got := prog.Queries[1].AnswerVars; len(got) != 2 || got[0] != "X" {
		t.Fatalf("answer vars = %v", got)
	}
}

func TestNonGroundFactRejected(t *testing.T) {
	if _, err := Parse(`p(alice, X).`); err == nil {
		t.Fatalf("non-ground fact should be rejected")
	}
}

func TestParseTermKinds(t *testing.T) {
	prog, err := Parse(`p(alice, f(b, g(a)), "quoted name", 42).`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	args := prog.Facts[0].Args
	if args[0].Kind != logic.Const || args[1].Kind != logic.Func ||
		args[2].Kind != logic.Const || args[2].Name != "quoted name" ||
		args[3].Kind != logic.Const || args[3].Name != "42" {
		t.Fatalf("term kinds wrong: %v", args)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{`p(X.`, "expected"},
		{`p(a)`, "expected"},
		{`p(a) -> .`, "predicate"},
		{`p(a), -> q(a).`, "predicate"},
		{`p(a) > q(a).`, "unexpected character"},
		{`p(a) - q(a).`, "'->'"},
		{`p(a) :- q(a).`, ""},
		{`not p(a).`, "negative literal in fact position"},
		{`p(X) -> q(X), not r(X).`, "predicate"}, // negation not allowed in heads
		{`p("unterminated.`, "unterminated"},
		{`p(X), not q(Y) -> r(X).`, "unsafe"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("%q: expected error", tc.src)
			continue
		}
		if tc.frag != "" && !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%q: error %q does not mention %q", tc.src, err, tc.frag)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	src := `p(a).
p(X), not q(X) -> r(X,Y) | s(X).
?- r(a,Y), not s(a).
`
	prog := MustParse(src)
	again, err := Parse(prog.String())
	if err != nil {
		t.Fatalf("reparse of %q: %v", prog.String(), err)
	}
	if prog.String() != again.String() {
		t.Fatalf("round trip unstable:\n%s\nvs\n%s", prog.String(), again.String())
	}
}

func TestArityConsistencyViaSchema(t *testing.T) {
	prog := MustParse(`p(a). p(a,b).`)
	if _, err := prog.Schema(); err == nil {
		t.Fatalf("arity clash should be reported by Schema")
	}
}

func TestVariableLexing(t *testing.T) {
	prog := MustParse(`p(a). p(X) -> q(X). p(_under) -> r(_under).`)
	if prog.Rules[0].PosBody()[0].Args[0].Kind != logic.Var {
		t.Fatalf("uppercase should lex as variable")
	}
	if prog.Rules[1].PosBody()[0].Args[0].Kind != logic.Var {
		t.Fatalf("underscore-leading should lex as variable")
	}
}
