package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"ntgd/internal/logic"
)

// The robustness taxonomy: every terminal error an enumeration can
// surface matches exactly one of ErrBudget (engine.go), ErrMemory,
// ErrAdmission, or ErrInternal under errors.Is, plus the caller's own
// context errors. Long-lived hosts dispatch on the class, not the
// message.
var (
	// ErrMemory is reported when a run trips its memory watermark
	// (core.Options.MaxMemory): the retained-allocation watermark —
	// bytes of packed tuples added across all branches plus
	// stability-clause literals — grew past the cap. Partial Stats are
	// preserved and Exhausted is true.
	ErrMemory = errors.New("ntgd: memory watermark exceeded; enumeration may be incomplete")

	// ErrAdmission is reported when a run is refused admission: the
	// solver's concurrent-run gate (core.Options.MaxConcurrentRuns) was
	// full and the caller's context ended while the run was queued.
	ErrAdmission = errors.New("ntgd: run not admitted; concurrent-run gate full until context end")

	// ErrInternal marks a recovered engine panic. Match with
	// errors.Is(err, ErrInternal); the concrete *InternalError carries
	// the panic value and stack. The solver joins all workers before
	// returning it and remains reusable.
	ErrInternal = errors.New("ntgd: internal engine fault")
)

// ErrWallClock is the terminal error of a run stopped by the wall-clock
// watchdog (core.Options.MaxWallClock). It is a budget in the taxonomy:
// errors.Is(ErrWallClock, ErrBudget) holds, and partial Stats plus
// Exhausted=true are preserved exactly as for a node budget.
var ErrWallClock = fmt.Errorf("ntgd: wall-clock budget exhausted; enumeration may be incomplete (%w)", ErrBudget)

// InternalError is the concrete error for a panic recovered at a worker
// or enumeration boundary. It satisfies errors.Is(err, ErrInternal).
type InternalError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the stack of the panicking goroutine, captured at the
	// recovery point.
	Stack []byte
}

// NewInternalError captures the current goroutine's stack around a
// recovered panic value. Call it from the deferred recover site so the
// stack still shows the panic origin.
func NewInternalError(v any) *InternalError {
	return &InternalError{Value: v, Stack: debug.Stack()}
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("ntgd: internal engine fault: %v", e.Value)
}

// Is makes errors.Is(err, ErrInternal) match.
func (e *InternalError) Is(target error) bool { return target == ErrInternal }

// Shed reasons recorded on AdmissionError.Reason and counted per
// reason in GateStats: why the gate refused a run.
const (
	// ShedQueueFull: the gate's waiter queue was at its bound, so the
	// request was refused immediately instead of parking.
	ShedQueueFull = "queue_full"
	// ShedDeadline: the request's deadline would provably expire before
	// a slot could free (estimated wait ≥ time-to-deadline), so parking
	// it could only produce wasted work.
	ShedDeadline = "deadline_hopeless"
	// ShedExpired: the request parked in the queue and its context
	// ended before a slot freed.
	ShedExpired = "queued_expired"
)

// AdmissionError is the concrete refusal error of a Gate. It matches
// errors.Is(err, ErrAdmission); when the refusal was caused by the
// caller's context ending while queued (ShedExpired), the context
// cause is wrapped so errors.Is(err, context.DeadlineExceeded) (or
// Canceled) also holds. RetryAfter is the gate's machine-readable
// backoff hint: the estimated time until a retried request could be
// admitted (zero when the gate has no run-time estimate yet). Hosts
// surface it to clients (the ntgdd daemon's Retry-After header).
type AdmissionError struct {
	// Reason is one of ShedQueueFull, ShedDeadline, ShedExpired.
	Reason string
	// RetryAfter estimates when a retry could be admitted (0 = no
	// estimate).
	RetryAfter time.Duration
	cause      error
}

func (e *AdmissionError) Error() string {
	if e.cause != nil {
		return fmt.Sprintf("%v (%s: %v)", ErrAdmission, e.Reason, e.cause)
	}
	return fmt.Sprintf("%v (%s)", ErrAdmission, e.Reason)
}

func (e *AdmissionError) Is(target error) bool { return target == ErrAdmission }

func (e *AdmissionError) Unwrap() error { return e.cause }

// GateStats is a point-in-time view of a Gate: occupancy, queue depth,
// the run-time estimate driving deadline-aware shedding, and the shed
// counters by reason. Hosts surface it for observability (the ntgdd
// daemon's /statz).
type GateStats struct {
	// Slots is the configured concurrency bound.
	Slots int
	// InFlight is the number of admitted runs currently holding a slot.
	InFlight int
	// Waiters is the current queue depth (admission requests parked
	// waiting for a slot).
	Waiters int
	// QueueBound is the effective waiter-queue bound: -1 when the
	// queue is unbounded (every excess request parks), otherwise the
	// maximum number of parked waiters before queue-full shedding.
	QueueBound int
	// EWMARunTime is the exponentially-weighted moving average of
	// completed run times (0 until the first timed release).
	EWMARunTime time.Duration
	// Admitted counts runs that acquired a slot.
	Admitted int64
	// ShedQueueFull / ShedDeadline / ShedExpired count refusals by
	// reason (see the Shed* constants).
	ShedQueueFull int64
	ShedDeadline  int64
	ShedExpired   int64
}

// ewmaAlpha is the smoothing factor of the gate's run-time average:
// heavy enough that a shift in workload cost shows up within a few
// runs, light enough that one outlier does not dominate the estimate.
const ewmaAlpha = 0.2

// Gate is a counting admission semaphore bounding how many enumerations
// run concurrently against one compiled engine, extended with bounded,
// deadline-aware admission:
//
//   - A full gate queues callers up to the configured queue bound; a
//     queued caller whose context ends is refused with an
//     ErrAdmission-matching *AdmissionError wrapping the context cause.
//   - When the queue is at its bound, excess callers are refused
//     immediately (ShedQueueFull) instead of parking — under sustained
//     overload the gate says "back off" in O(1) rather than absorbing
//     an unbounded backlog of doomed work.
//   - When the queue is bounded, the caller carries a deadline, and
//     the gate has a run-time estimate (EWMA of timed releases), a
//     caller whose estimated wait (waiters+1) × EWMA / slots reaches
//     its time-to-deadline is refused immediately (ShedDeadline):
//     parking it could only burn a slot on a run that must expire
//     before finishing.
//
// Both shed rules are part of the bounded-admission opt-in: an
// unbounded gate (NewGate) keeps the historical
// park-until-the-context-ends behavior exactly — it never refuses up
// front. NewGateQueue bounds the queue. Every refusal carries a
// RetryAfter hint.
type Gate struct {
	ch chan struct{}

	mu                                                 sync.Mutex
	bound                                              int // effective queue bound; -1 = unbounded
	waiters                                            int
	ewmaNS                                             float64
	admitted, shedQueueFull, shedDeadline, shedExpired int64
}

// NewGate returns a gate admitting up to n concurrent runs with an
// unbounded waiter queue (every excess request parks until its context
// ends), or nil (admit everything) when n <= 0.
func NewGate(n int) *Gate { return NewGateQueue(n, -1) }

// NewGateQueue returns a gate admitting up to slots concurrent runs
// with at most maxQueue parked waiters: a request arriving with the
// queue at its bound is refused immediately (ShedQueueFull). maxQueue
// < 0 leaves the queue unbounded, 0 refuses whenever every slot is
// busy. A nil gate (slots <= 0) admits everything.
func NewGateQueue(slots, maxQueue int) *Gate {
	if slots <= 0 {
		return nil
	}
	if maxQueue < 0 {
		maxQueue = -1
	}
	return &Gate{ch: make(chan struct{}, slots), bound: maxQueue}
}

// Acquire blocks until a slot is free or ctx ends, refusing immediately
// when the queue is full or the caller's deadline is provably hopeless.
// A nil gate admits immediately. Every refusal is an ErrAdmission-
// matching *AdmissionError carrying the shed reason and a RetryAfter
// hint.
func (g *Gate) Acquire(ctx context.Context) error {
	if g == nil {
		return nil
	}
	select {
	case g.ch <- struct{}{}:
		g.mu.Lock()
		g.admitted++
		g.mu.Unlock()
		return nil
	default:
	}

	g.mu.Lock()
	if g.bound >= 0 && g.waiters >= g.bound {
		g.shedQueueFull++
		hint := g.estWaitLocked(g.waiters)
		g.mu.Unlock()
		return &AdmissionError{Reason: ShedQueueFull, RetryAfter: hint}
	}
	// The deadline-hopeless test: with this caller parked behind the
	// current waiters, a slot is expected to reach it only after
	// (waiters+1) × EWMA / slots — if that is not sooner than its
	// deadline, admitting it later could only produce a run that must
	// expire before completing. An unbounded gate (the historical
	// NewGate contract), no estimate yet (EWMA 0), or no deadline
	// means never shedding on this rule.
	if dl, ok := ctx.Deadline(); g.bound >= 0 && ok {
		if est := g.estWaitLocked(g.waiters + 1); est > 0 && est >= time.Until(dl) {
			g.shedDeadline++
			g.mu.Unlock()
			return &AdmissionError{Reason: ShedDeadline, RetryAfter: est}
		}
	}
	g.waiters++
	g.mu.Unlock()

	select {
	case g.ch <- struct{}{}:
		g.mu.Lock()
		g.waiters--
		g.admitted++
		g.mu.Unlock()
		return nil
	case <-ctx.Done():
		g.mu.Lock()
		g.waiters--
		hint := g.estWaitLocked(g.waiters + 1)
		g.shedExpired++
		g.mu.Unlock()
		return &AdmissionError{Reason: ShedExpired, RetryAfter: hint, cause: context.Cause(ctx)}
	}
}

// estWaitLocked estimates how long a caller queued behind `queued`
// requests waits for a slot: queued × EWMA, spread across the slots
// draining the queue in parallel. Zero when no run has completed yet.
func (g *Gate) estWaitLocked(queued int) time.Duration {
	if g.ewmaNS <= 0 || queued <= 0 {
		return 0
	}
	return time.Duration(g.ewmaNS * float64(queued) / float64(cap(g.ch)))
}

// Release frees a slot acquired by Acquire without feeding the
// run-time estimate. A nil gate is a no-op. Prefer ReleaseTimed where
// the run duration is known.
func (g *Gate) Release() {
	if g != nil {
		<-g.ch
	}
}

// ReleaseTimed frees a slot and folds the run's duration into the
// gate's EWMA run-time estimate, which drives deadline-aware shedding
// and RetryAfter hints. A nil gate is a no-op.
func (g *Gate) ReleaseTimed(elapsed time.Duration) {
	if g == nil {
		return
	}
	<-g.ch
	if elapsed <= 0 {
		return
	}
	g.mu.Lock()
	if g.ewmaNS <= 0 {
		g.ewmaNS = float64(elapsed)
	} else {
		g.ewmaNS += ewmaAlpha * (float64(elapsed) - g.ewmaNS)
	}
	g.mu.Unlock()
}

// SetQueueBound adjusts the effective waiter-queue bound at runtime
// (n < 0 = unbounded). The memory-pressure brownout uses this to
// shrink admission under load and restore it on recovery; already
// parked waiters are never evicted by a shrink. A nil gate is a no-op.
func (g *Gate) SetQueueBound(n int) {
	if g == nil {
		return
	}
	if n < 0 {
		n = -1
	}
	g.mu.Lock()
	g.bound = n
	g.mu.Unlock()
}

// QueueBound reports the effective waiter-queue bound (-1 =
// unbounded). A nil gate reports -1.
func (g *Gate) QueueBound() int {
	if g == nil {
		return -1
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.bound
}

// Snapshot returns the gate's current occupancy, queue depth, run-time
// estimate, and shed counters. A nil gate returns the zero GateStats.
func (g *Gate) Snapshot() GateStats {
	if g == nil {
		return GateStats{QueueBound: -1}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return GateStats{
		Slots:         cap(g.ch),
		InFlight:      len(g.ch),
		Waiters:       g.waiters,
		QueueBound:    g.bound,
		EWMARunTime:   time.Duration(g.ewmaNS),
		Admitted:      g.admitted,
		ShedQueueFull: g.shedQueueFull,
		ShedDeadline:  g.shedDeadline,
		ShedExpired:   g.shedExpired,
	}
}

// GuardConfig configures the robustness wrapper.
type GuardConfig struct {
	// Gate bounds concurrent runs (nil = unlimited).
	Gate *Gate
	// WallClock bounds each run's wall-clock time (0 = unbounded). The
	// run is driven through the engines' existing cancellation paths
	// via a derived deadline; expiry is reported as ErrWallClock, not
	// as the caller's context error.
	WallClock time.Duration
}

// Guard wraps an engine in the robustness layer shared by all three
// semantics: admission gating, the wall-clock watchdog, and panic
// isolation. Any panic escaping the inner engine is recovered after
// the engine has unwound (joining its workers), and converted to an
// *InternalError — except a panic raised by the caller's own visitor,
// which is re-raised once the engine has unwound so that
// range-over-func iteration semantics are preserved (the iterator must
// propagate a loop-body panic, not swallow it into an error).
func Guard(e Engine, cfg GuardConfig) Engine {
	return &guarded{e: e, cfg: cfg}
}

type guarded struct {
	e   Engine
	cfg GuardConfig
}

func (g *guarded) Semantics() string { return g.e.Semantics() }

// visitorPanic tags a panic that originated in the caller's visitor so
// the recovery layer re-raises it instead of typing it ErrInternal.
type visitorPanic struct{ val any }

func (g *guarded) Enumerate(ctx context.Context, p Params, visit func(*logic.FactStore) bool) (st Stats, ex bool, err error) {
	if aerr := g.cfg.Gate.Acquire(ctx); aerr != nil {
		return Stats{}, true, aerr
	}
	// The timed release feeds the gate's EWMA run-time estimate, the
	// signal behind deadline-aware shedding and RetryAfter hints. Runs
	// cut short by a deadline still count: they held the slot exactly
	// that long.
	runStart := time.Now()
	defer func() { g.cfg.Gate.ReleaseTimed(time.Since(runStart)) }()

	runCtx := ctx
	if g.cfg.WallClock > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeoutCause(ctx, g.cfg.WallClock, ErrWallClock)
		defer cancel()
	}

	// The wrapped visitor recovers a visitor panic before it can unwind
	// engine internals (which may hold locks or own pool goroutines),
	// tells the engine to stop, and stashes the value for re-raise.
	var vp *visitorPanic
	wrapped := func(m *logic.FactStore) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				vp = &visitorPanic{val: r}
				ok = false
			}
		}()
		return visit(m)
	}

	defer func() {
		if r := recover(); r != nil {
			// The engine itself panicked out of Enumerate. Its stack has
			// fully unwound here, so pool cleanup (deferred joins) ran.
			st, ex, err = Stats{}, true, NewInternalError(r)
		}
		if vp != nil {
			// Stats from the aborted run are dropped: the iteration dies
			// by panic, so there is no error channel to pair them with.
			panic(vp.val)
		}
		if err != nil && errors.Is(err, context.DeadlineExceeded) && context.Cause(runCtx) == ErrWallClock {
			// Our derived deadline fired, not the caller's (the cause
			// pins which): report it as a wall-clock budget, preserving
			// partial stats.
			ex, err = true, ErrWallClock
		}
	}()

	st, ex, err = g.e.Enumerate(runCtx, p, wrapped)
	return st, ex, err
}
