package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"ntgd/internal/logic"
)

// The robustness taxonomy: every terminal error an enumeration can
// surface matches exactly one of ErrBudget (engine.go), ErrMemory,
// ErrAdmission, or ErrInternal under errors.Is, plus the caller's own
// context errors. Long-lived hosts dispatch on the class, not the
// message.
var (
	// ErrMemory is reported when a run trips its memory watermark
	// (core.Options.MaxMemory): the retained-allocation watermark —
	// bytes of packed tuples added across all branches plus
	// stability-clause literals — grew past the cap. Partial Stats are
	// preserved and Exhausted is true.
	ErrMemory = errors.New("ntgd: memory watermark exceeded; enumeration may be incomplete")

	// ErrAdmission is reported when a run is refused admission: the
	// solver's concurrent-run gate (core.Options.MaxConcurrentRuns) was
	// full and the caller's context ended while the run was queued.
	ErrAdmission = errors.New("ntgd: run not admitted; concurrent-run gate full until context end")

	// ErrInternal marks a recovered engine panic. Match with
	// errors.Is(err, ErrInternal); the concrete *InternalError carries
	// the panic value and stack. The solver joins all workers before
	// returning it and remains reusable.
	ErrInternal = errors.New("ntgd: internal engine fault")
)

// ErrWallClock is the terminal error of a run stopped by the wall-clock
// watchdog (core.Options.MaxWallClock). It is a budget in the taxonomy:
// errors.Is(ErrWallClock, ErrBudget) holds, and partial Stats plus
// Exhausted=true are preserved exactly as for a node budget.
var ErrWallClock = fmt.Errorf("ntgd: wall-clock budget exhausted; enumeration may be incomplete (%w)", ErrBudget)

// InternalError is the concrete error for a panic recovered at a worker
// or enumeration boundary. It satisfies errors.Is(err, ErrInternal).
type InternalError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the stack of the panicking goroutine, captured at the
	// recovery point.
	Stack []byte
}

// NewInternalError captures the current goroutine's stack around a
// recovered panic value. Call it from the deferred recover site so the
// stack still shows the panic origin.
func NewInternalError(v any) *InternalError {
	return &InternalError{Value: v, Stack: debug.Stack()}
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("ntgd: internal engine fault: %v", e.Value)
}

// Is makes errors.Is(err, ErrInternal) match.
func (e *InternalError) Is(target error) bool { return target == ErrInternal }

// admissionError wraps the context cause of a refused admission so both
// errors.Is(err, ErrAdmission) and errors.Is(err, context.Canceled) (or
// DeadlineExceeded) hold.
type admissionError struct{ cause error }

func (e *admissionError) Error() string {
	return fmt.Sprintf("%v (%v)", ErrAdmission, e.cause)
}

func (e *admissionError) Is(target error) bool { return target == ErrAdmission }

func (e *admissionError) Unwrap() error { return e.cause }

// Gate is a counting admission semaphore bounding how many enumerations
// run concurrently against one compiled engine. A full gate queues
// callers instead of oversubscribing the worker pool; a queued caller
// whose context ends is refused with an ErrAdmission-matching error.
type Gate struct{ ch chan struct{} }

// NewGate returns a gate admitting up to n concurrent runs, or nil
// (admit everything) when n <= 0.
func NewGate(n int) *Gate {
	if n <= 0 {
		return nil
	}
	return &Gate{ch: make(chan struct{}, n)}
}

// Acquire blocks until a slot is free or ctx ends. A nil gate admits
// immediately.
func (g *Gate) Acquire(ctx context.Context) error {
	if g == nil {
		return nil
	}
	select {
	case g.ch <- struct{}{}:
		return nil
	default:
	}
	select {
	case g.ch <- struct{}{}:
		return nil
	case <-ctx.Done():
		return &admissionError{cause: context.Cause(ctx)}
	}
}

// Release frees a slot acquired by Acquire. A nil gate is a no-op.
func (g *Gate) Release() {
	if g != nil {
		<-g.ch
	}
}

// GuardConfig configures the robustness wrapper.
type GuardConfig struct {
	// Gate bounds concurrent runs (nil = unlimited).
	Gate *Gate
	// WallClock bounds each run's wall-clock time (0 = unbounded). The
	// run is driven through the engines' existing cancellation paths
	// via a derived deadline; expiry is reported as ErrWallClock, not
	// as the caller's context error.
	WallClock time.Duration
}

// Guard wraps an engine in the robustness layer shared by all three
// semantics: admission gating, the wall-clock watchdog, and panic
// isolation. Any panic escaping the inner engine is recovered after
// the engine has unwound (joining its workers), and converted to an
// *InternalError — except a panic raised by the caller's own visitor,
// which is re-raised once the engine has unwound so that
// range-over-func iteration semantics are preserved (the iterator must
// propagate a loop-body panic, not swallow it into an error).
func Guard(e Engine, cfg GuardConfig) Engine {
	return &guarded{e: e, cfg: cfg}
}

type guarded struct {
	e   Engine
	cfg GuardConfig
}

func (g *guarded) Semantics() string { return g.e.Semantics() }

// visitorPanic tags a panic that originated in the caller's visitor so
// the recovery layer re-raises it instead of typing it ErrInternal.
type visitorPanic struct{ val any }

func (g *guarded) Enumerate(ctx context.Context, p Params, visit func(*logic.FactStore) bool) (st Stats, ex bool, err error) {
	if aerr := g.cfg.Gate.Acquire(ctx); aerr != nil {
		return Stats{}, true, aerr
	}
	defer g.cfg.Gate.Release()

	runCtx := ctx
	if g.cfg.WallClock > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeoutCause(ctx, g.cfg.WallClock, ErrWallClock)
		defer cancel()
	}

	// The wrapped visitor recovers a visitor panic before it can unwind
	// engine internals (which may hold locks or own pool goroutines),
	// tells the engine to stop, and stashes the value for re-raise.
	var vp *visitorPanic
	wrapped := func(m *logic.FactStore) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				vp = &visitorPanic{val: r}
				ok = false
			}
		}()
		return visit(m)
	}

	defer func() {
		if r := recover(); r != nil {
			// The engine itself panicked out of Enumerate. Its stack has
			// fully unwound here, so pool cleanup (deferred joins) ran.
			st, ex, err = Stats{}, true, NewInternalError(r)
		}
		if vp != nil {
			// Stats from the aborted run are dropped: the iteration dies
			// by panic, so there is no error channel to pair them with.
			panic(vp.val)
		}
		if err != nil && errors.Is(err, context.DeadlineExceeded) && context.Cause(runCtx) == ErrWallClock {
			// Our derived deadline fired, not the caller's (the cause
			// pins which): report it as a wall-clock budget, preserving
			// partial stats.
			ex, err = true, ErrWallClock
		}
	}()

	st, ex, err = g.e.Enumerate(runCtx, p, wrapped)
	return st, ex, err
}
