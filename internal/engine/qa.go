package engine

import (
	"context"
	"errors"
	"sort"

	"ntgd/internal/logic"
)

// QAResult is the outcome of a Boolean query answering call, uniform
// across the three semantics.
type QAResult struct {
	// Entailed reports the verdict ((D,Σ) |=SMS q for cautious,
	// ∃M ∈ SMS: M |= q for brave).
	Entailed bool
	// Witness is, for cautious answering, a counter-model (a stable
	// model not satisfying q) when Entailed is false; for brave
	// answering, a witnessing model when Entailed is true.
	Witness *logic.FactStore
	// ModelsChecked counts the stable models inspected.
	ModelsChecked int64
	// NoModels reports that the stable model set is empty (cautious
	// entailment is then vacuously true and brave entailment false).
	NoModels bool
	// Exhausted reports that a search budget was hit or the context
	// was cancelled; the verdict may then be incomplete (for cautious
	// answering a "true" verdict is unconfirmed; a "false" verdict with
	// a witness remains sound).
	Exhausted bool
	Stats     Stats
}

// queryParams extends the witness pool with the query constants,
// without which an engine could miss stable models that distinguish
// the query (the paper's Example 2: the model containing
// hasFather(alice, bob) exists only if bob can witness the
// existential).
func queryParams(p Params, q logic.Query) Params {
	have := make(map[string]bool, len(p.ExtraConstants))
	extras := append([]logic.Term(nil), p.ExtraConstants...)
	for _, c := range extras {
		have[c.Key()] = true
	}
	for _, c := range q.Constants() {
		if !have[c.Key()] {
			have[c.Key()] = true
			extras = append(extras, c)
		}
	}
	p.ExtraConstants = extras
	return p
}

// CautiousEntails decides (D,Σ) |=SMS q under the engine's semantics:
// q must hold in every stable model. The enumeration stops at the
// first counter-model.
func CautiousEntails(ctx context.Context, e Engine, p Params, q logic.Query) (QAResult, error) {
	if err := q.Validate(); err != nil {
		return QAResult{}, err
	}
	p = queryParams(p, q)
	res := QAResult{Entailed: true, NoModels: true}
	stats, exhausted, err := e.Enumerate(ctx, p, func(m *logic.FactStore) bool {
		res.ModelsChecked++
		res.NoModels = false
		if !q.Holds(m) {
			res.Entailed = false
			res.Witness = m
			return false
		}
		return true
	})
	res.Stats = stats
	res.Exhausted = exhausted
	if errors.Is(err, ErrBudget) && !res.Entailed {
		// A concrete counter-model keeps the negative verdict sound.
		err = nil
		res.Exhausted = true
	}
	return res, err
}

// BraveEntails decides whether some stable model satisfies q. The
// enumeration stops at the first witness.
func BraveEntails(ctx context.Context, e Engine, p Params, q logic.Query) (QAResult, error) {
	if err := q.Validate(); err != nil {
		return QAResult{}, err
	}
	p = queryParams(p, q)
	res := QAResult{NoModels: true}
	stats, exhausted, err := e.Enumerate(ctx, p, func(m *logic.FactStore) bool {
		res.ModelsChecked++
		res.NoModels = false
		if q.Holds(m) {
			res.Entailed = true
			res.Witness = m
			return false
		}
		return true
	})
	res.Stats = stats
	res.Exhausted = exhausted
	if errors.Is(err, ErrBudget) && res.Entailed {
		err = nil
		res.Exhausted = true
	}
	return res, err
}

// Answers computes the certain (cautious) or possible (brave) answers
// of an n-ary NCQ: the intersection (resp. union) of q(M) over all
// stable models. For cautious answering with an empty stable model set
// the answer set is ill-defined (every tuple qualifies vacuously);
// ok=false is returned in that case, and also when the enumeration was
// incomplete.
func Answers(ctx context.Context, e Engine, p Params, q logic.Query, brave bool) (tuples []logic.AnswerTuple, ok bool, stats Stats, exhausted bool, err error) {
	if err := q.Validate(); err != nil {
		return nil, false, Stats{}, false, err
	}
	p = queryParams(p, q)
	var acc map[string]logic.AnswerTuple
	models := 0
	stats, exhausted, err = e.Enumerate(ctx, p, func(m *logic.FactStore) bool {
		models++
		cur := make(map[string]logic.AnswerTuple)
		for _, t := range q.Answers(m) {
			cur[t.Key()] = t
		}
		if acc == nil {
			acc = cur
			return true
		}
		if brave {
			for k, t := range cur {
				acc[k] = t
			}
		} else {
			for k := range acc {
				if _, keep := cur[k]; !keep {
					delete(acc, k)
				}
			}
		}
		return true
	})
	if err != nil && !errors.Is(err, ErrBudget) {
		return nil, false, stats, exhausted, err
	}
	if models == 0 {
		if brave {
			// An empty possible-answer set is definitive only if the
			// enumeration actually completed.
			return nil, !exhausted, stats, exhausted, err
		}
		return nil, false, stats, exhausted, err
	}
	keys := make([]string, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		tuples = append(tuples, acc[k])
	}
	return tuples, !exhausted, stats, exhausted, err
}

// Consistent reports whether the stable model set is non-empty. A
// found model makes the positive verdict definitive even if a budget
// was hit afterwards.
func Consistent(ctx context.Context, e Engine, p Params) (bool, Stats, bool, error) {
	found := false
	stats, exhausted, err := e.Enumerate(ctx, p, func(*logic.FactStore) bool {
		found = true
		return false
	})
	if found {
		return true, stats, exhausted, nil
	}
	return false, stats, exhausted, err
}
