// Package engine defines the uniform evaluation interface behind the
// public ntgd.Solver: one Engine contract that the three stable model
// semantics of the paper — the SO-based semantics (internal/core), the
// Skolemized-LP approach (internal/lp), and the operational chase
// semantics of Baget et al. (internal/baget) — all implement. A
// compiled engine holds every artifact derivable from the program
// alone (validation, budgets, Skolemization, grounding), so repeated
// enumeration and query answering amortize that work, and every run is
// context-aware: cancellation or a deadline aborts mid-search with the
// partial Stats accumulated so far.
//
// The generic query-answering algorithms (cautious/brave entailment,
// n-ary answers, consistency) live here too, written once against the
// Engine interface instead of per semantics.
package engine

import (
	"context"
	"errors"

	"ntgd/internal/logic"
)

// ErrBudget is reported (alongside partial results) when an engine's
// search budget was hit before the enumeration completed. All three
// engines normalize their internal budget errors to this value.
var ErrBudget = errors.New("ntgd: search budget exhausted; enumeration may be incomplete")

// Params carries the per-call knobs of an enumeration run. Everything
// else (budgets, witness policy, grounding bounds) is fixed when the
// engine is compiled.
type Params struct {
	// ExtraConstants extends the witness pool for this run, typically
	// with the constants of the query being answered. Engines whose
	// witness space is fixed at compile time (the LP pipeline) ignore
	// it.
	ExtraConstants []logic.Term
	// Workers overrides the compiled worker-pool size of the stable
	// model search for this run (see core.Options.Workers): 0 keeps
	// the compiled setting, 1 forces the sequential search, n > 1
	// bounds the pool at n. Engines without a parallel search (the LP
	// pipeline) ignore it.
	Workers int
}

// Stats is the uniform search-effort report shared by all engines.
// Engines fill the fields that apply to them and leave the rest zero.
type Stats struct {
	// Nodes counts search nodes visited.
	Nodes int64
	// Branches counts non-deterministic branch points (SO/operational).
	Branches int64
	// Deterministic counts forced trigger applications (SO/operational).
	Deterministic int64
	// Completed counts fixpoint candidates reached (SO/operational).
	Completed int64
	// StabilityChecks counts full stability validations.
	StabilityChecks int64
	// StabilityFailed counts candidates rejected as unstable.
	StabilityFailed int64
	// ModelsEmitted counts stable models delivered to the visitor.
	ModelsEmitted int64
	// Conflicts counts propagation conflicts (LP pipeline).
	Conflicts int64
}

// Add accumulates another run's effort into s.
func (s *Stats) Add(o Stats) {
	s.Nodes += o.Nodes
	s.Branches += o.Branches
	s.Deterministic += o.Deterministic
	s.Completed += o.Completed
	s.StabilityChecks += o.StabilityChecks
	s.StabilityFailed += o.StabilityFailed
	s.ModelsEmitted += o.ModelsEmitted
	s.Conflicts += o.Conflicts
}

// Engine is a compiled program under one stable model semantics. An
// Engine is safe for sequential reuse: enumeration runs share the
// compiled artifacts but mutate nothing visible across calls.
type Engine interface {
	// Semantics names the semantics ("so", "lp", "operational").
	Semantics() string
	// Enumerate streams the stable models to visit (return false to
	// stop early, which is not an error). It reports the run's effort,
	// whether the enumeration is possibly incomplete (a budget was hit
	// or ctx was cancelled), and the terminal error: nil, ErrBudget, or
	// ctx.Err(). Each delivered store is owned by the caller.
	Enumerate(ctx context.Context, p Params, visit func(*logic.FactStore) bool) (Stats, bool, error)
}

// Result holds a collected enumeration outcome.
type Result struct {
	Models []*logic.FactStore
	Stats  Stats
	// Exhausted is true when a budget was hit or the context was
	// cancelled, in which case the enumeration may be incomplete
	// (additional stable models may exist).
	Exhausted bool
}

// CollectModels materializes up to maxModels stable models (0 = all).
// On budget exhaustion or cancellation the partial Result is returned
// alongside the error.
func CollectModels(ctx context.Context, e Engine, p Params, maxModels int) (*Result, error) {
	res := &Result{}
	stats, exhausted, err := e.Enumerate(ctx, p, func(m *logic.FactStore) bool {
		res.Models = append(res.Models, m)
		return maxModels == 0 || len(res.Models) < maxModels
	})
	res.Stats = stats
	res.Exhausted = exhausted
	return res, err
}
