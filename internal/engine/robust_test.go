package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"ntgd/internal/logic"
)

// stubEngine drives Guard without a real search: it emits n empty
// stores, then finishes with the configured outcome (or panics).
type stubEngine struct {
	emit     int
	stats    Stats
	ex       bool
	err      error
	panicVal any
	// block, when set, ignores emit/err and waits for ctx to end the
	// way a long search would, checking cancellation periodically.
	block bool
}

func (s *stubEngine) Semantics() string { return "stub" }

func (s *stubEngine) Enumerate(ctx context.Context, p Params, visit func(*logic.FactStore) bool) (Stats, bool, error) {
	if s.block {
		<-ctx.Done()
		return s.stats, true, ctx.Err()
	}
	for i := 0; i < s.emit; i++ {
		if !visit(logic.NewFactStore()) {
			return s.stats, false, nil
		}
	}
	if s.panicVal != nil {
		panic(s.panicVal)
	}
	return s.stats, s.ex, s.err
}

func TestGuardConvertsEnginePanic(t *testing.T) {
	g := Guard(&stubEngine{emit: 1, panicVal: "boom"}, GuardConfig{})
	st, ex, err := g.Enumerate(context.Background(), Params{}, func(*logic.FactStore) bool { return true })
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	var ie *InternalError
	if !errors.As(err, &ie) || ie.Value != "boom" || len(ie.Stack) == 0 {
		t.Fatalf("InternalError not carrying value+stack: %+v", ie)
	}
	if !ex {
		t.Fatalf("internal fault must report Exhausted")
	}
	if st != (Stats{}) {
		t.Fatalf("stats after a panic must be zero, got %+v", st)
	}
}

func TestGuardReraisesVisitorPanic(t *testing.T) {
	inner := &stubEngine{emit: 3, stats: Stats{ModelsEmitted: 3}}
	g := Guard(inner, GuardConfig{})
	defer func() {
		r := recover()
		if r != "visitor-died" {
			t.Fatalf("recovered %v, want the visitor's own panic value", r)
		}
	}()
	g.Enumerate(context.Background(), Params{}, func(*logic.FactStore) bool {
		panic("visitor-died")
	})
	t.Fatalf("visitor panic must propagate out of Enumerate")
}

func TestGuardWallClock(t *testing.T) {
	g := Guard(&stubEngine{block: true, stats: Stats{Nodes: 7}}, GuardConfig{WallClock: 10 * time.Millisecond})
	st, ex, err := g.Enumerate(context.Background(), Params{}, func(*logic.FactStore) bool { return true })
	if !errors.Is(err, ErrWallClock) || !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrWallClock (an ErrBudget)", err)
	}
	if !ex || st.Nodes != 7 {
		t.Fatalf("wall-clock expiry must keep partial stats and Exhausted: ex=%v st=%+v", ex, st)
	}
}

func TestGuardCallerDeadlineNotMasked(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	g := Guard(&stubEngine{block: true}, GuardConfig{WallClock: time.Hour})
	_, _, err := g.Enumerate(ctx, Params{}, func(*logic.FactStore) bool { return true })
	if !errors.Is(err, context.DeadlineExceeded) || errors.Is(err, ErrBudget) {
		t.Fatalf("caller's own deadline must surface as DeadlineExceeded, got %v", err)
	}
}

func TestGateAdmissionQueueAndRefusal(t *testing.T) {
	gate := NewGate(1)
	if err := gate.Acquire(context.Background()); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := gate.Acquire(ctx)
	if !errors.Is(err, ErrAdmission) {
		t.Fatalf("queued acquire under full gate: err = %v, want ErrAdmission", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("admission refusal must unwrap the context cause, got %v", err)
	}
	gate.Release()
	if err := gate.Acquire(context.Background()); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	gate.Release()

	var nilGate *Gate
	if err := nilGate.Acquire(context.Background()); err != nil {
		t.Fatalf("nil gate must admit: %v", err)
	}
	nilGate.Release()
}

func TestGuardGateRefusalBeforeRun(t *testing.T) {
	gate := NewGate(1)
	if err := gate.Acquire(context.Background()); err != nil {
		t.Fatalf("pre-fill: %v", err)
	}
	defer gate.Release()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := Guard(&stubEngine{emit: 1}, GuardConfig{Gate: gate})
	_, ex, err := g.Enumerate(ctx, Params{}, func(*logic.FactStore) bool { return true })
	if !errors.Is(err, ErrAdmission) || !ex {
		t.Fatalf("full gate + dead ctx: err=%v ex=%v, want ErrAdmission with Exhausted", err, ex)
	}
}
