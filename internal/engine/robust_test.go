package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"ntgd/internal/logic"
)

// stubEngine drives Guard without a real search: it emits n empty
// stores, then finishes with the configured outcome (or panics).
type stubEngine struct {
	emit     int
	stats    Stats
	ex       bool
	err      error
	panicVal any
	// block, when set, ignores emit/err and waits for ctx to end the
	// way a long search would, checking cancellation periodically.
	block bool
}

func (s *stubEngine) Semantics() string { return "stub" }

func (s *stubEngine) Enumerate(ctx context.Context, p Params, visit func(*logic.FactStore) bool) (Stats, bool, error) {
	if s.block {
		<-ctx.Done()
		return s.stats, true, ctx.Err()
	}
	for i := 0; i < s.emit; i++ {
		if !visit(logic.NewFactStore()) {
			return s.stats, false, nil
		}
	}
	if s.panicVal != nil {
		panic(s.panicVal)
	}
	return s.stats, s.ex, s.err
}

func TestGuardConvertsEnginePanic(t *testing.T) {
	g := Guard(&stubEngine{emit: 1, panicVal: "boom"}, GuardConfig{})
	st, ex, err := g.Enumerate(context.Background(), Params{}, func(*logic.FactStore) bool { return true })
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	var ie *InternalError
	if !errors.As(err, &ie) || ie.Value != "boom" || len(ie.Stack) == 0 {
		t.Fatalf("InternalError not carrying value+stack: %+v", ie)
	}
	if !ex {
		t.Fatalf("internal fault must report Exhausted")
	}
	if st != (Stats{}) {
		t.Fatalf("stats after a panic must be zero, got %+v", st)
	}
}

func TestGuardReraisesVisitorPanic(t *testing.T) {
	inner := &stubEngine{emit: 3, stats: Stats{ModelsEmitted: 3}}
	g := Guard(inner, GuardConfig{})
	defer func() {
		r := recover()
		if r != "visitor-died" {
			t.Fatalf("recovered %v, want the visitor's own panic value", r)
		}
	}()
	g.Enumerate(context.Background(), Params{}, func(*logic.FactStore) bool {
		panic("visitor-died")
	})
	t.Fatalf("visitor panic must propagate out of Enumerate")
}

func TestGuardWallClock(t *testing.T) {
	g := Guard(&stubEngine{block: true, stats: Stats{Nodes: 7}}, GuardConfig{WallClock: 10 * time.Millisecond})
	st, ex, err := g.Enumerate(context.Background(), Params{}, func(*logic.FactStore) bool { return true })
	if !errors.Is(err, ErrWallClock) || !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrWallClock (an ErrBudget)", err)
	}
	if !ex || st.Nodes != 7 {
		t.Fatalf("wall-clock expiry must keep partial stats and Exhausted: ex=%v st=%+v", ex, st)
	}
}

func TestGuardCallerDeadlineNotMasked(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	g := Guard(&stubEngine{block: true}, GuardConfig{WallClock: time.Hour})
	_, _, err := g.Enumerate(ctx, Params{}, func(*logic.FactStore) bool { return true })
	if !errors.Is(err, context.DeadlineExceeded) || errors.Is(err, ErrBudget) {
		t.Fatalf("caller's own deadline must surface as DeadlineExceeded, got %v", err)
	}
}

func TestGateAdmissionQueueAndRefusal(t *testing.T) {
	gate := NewGate(1)
	if err := gate.Acquire(context.Background()); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := gate.Acquire(ctx)
	if !errors.Is(err, ErrAdmission) {
		t.Fatalf("queued acquire under full gate: err = %v, want ErrAdmission", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("admission refusal must unwrap the context cause, got %v", err)
	}
	gate.Release()
	if err := gate.Acquire(context.Background()); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	gate.Release()

	var nilGate *Gate
	if err := nilGate.Acquire(context.Background()); err != nil {
		t.Fatalf("nil gate must admit: %v", err)
	}
	nilGate.Release()
}

// TestGateQueueFullShed pins bounded admission: with the queue at its
// bound, the next caller is refused immediately — no parking, reason
// queue_full — while a queued caller still parks and is refused with
// the context cause once its deadline expires.
func TestGateQueueFullShed(t *testing.T) {
	gate := NewGateQueue(1, 1)
	if err := gate.Acquire(context.Background()); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	// Park one waiter (fills the queue).
	parked := make(chan error, 1)
	waiterCtx, waiterCancel := context.WithCancel(context.Background())
	defer waiterCancel()
	go func() { parked <- gate.Acquire(waiterCtx) }()
	for gate.Snapshot().Waiters != 1 {
		time.Sleep(time.Millisecond)
	}

	// The queue is full: this refusal must be immediate.
	start := time.Now()
	err := gate.Acquire(context.Background())
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("queue-full refusal parked for %v, want immediate", elapsed)
	}
	var ae *AdmissionError
	if !errors.Is(err, ErrAdmission) || !errors.As(err, &ae) || ae.Reason != ShedQueueFull {
		t.Fatalf("err = %v, want AdmissionError{queue_full}", err)
	}
	if st := gate.Snapshot(); st.ShedQueueFull != 1 || st.Waiters != 1 || st.InFlight != 1 {
		t.Fatalf("snapshot = %+v, want 1 shed, 1 waiter, 1 in flight", st)
	}

	// The parked waiter is refused with the wrapped context cause.
	waiterCancel()
	werr := <-parked
	if !errors.As(werr, &ae) || ae.Reason != ShedExpired || !errors.Is(werr, context.Canceled) {
		t.Fatalf("parked waiter err = %v, want ShedExpired wrapping Canceled", werr)
	}
	if st := gate.Snapshot(); st.ShedExpired != 1 || st.Waiters != 0 {
		t.Fatalf("snapshot after expiry = %+v", st)
	}
	gate.Release()
}

// TestGateDeadlineHopelessShed pins deadline-aware admission: once the
// EWMA says the caller's deadline must expire before a slot frees, the
// caller is refused immediately with a RetryAfter hint, while a caller
// with a comfortable deadline still parks.
func TestGateDeadlineHopelessShed(t *testing.T) {
	gate := NewGateQueue(1, 8)
	if err := gate.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	gate.ReleaseTimed(time.Second) // EWMA estimate: runs take ~1s
	if err := gate.Acquire(context.Background()); err != nil {
		t.Fatal(err) // hold the only slot again
	}

	// Time-to-deadline 50ms << estimated wait 1s: hopeless, shed now.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := gate.Acquire(ctx)
	if elapsed := time.Since(start); elapsed >= 50*time.Millisecond {
		t.Fatalf("hopeless refusal took %v, want immediate (before the deadline)", elapsed)
	}
	var ae *AdmissionError
	if !errors.As(err, &ae) || ae.Reason != ShedDeadline {
		t.Fatalf("err = %v, want AdmissionError{deadline_hopeless}", err)
	}
	if ae.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want a positive hint", ae.RetryAfter)
	}

	// A deadline far beyond the estimate parks instead of shedding.
	longCtx, longCancel := context.WithTimeout(context.Background(), time.Hour)
	defer longCancel()
	admitted := make(chan error, 1)
	go func() { admitted <- gate.Acquire(longCtx) }()
	for gate.Snapshot().Waiters != 1 {
		time.Sleep(time.Millisecond)
	}
	gate.Release()
	if err := <-admitted; err != nil {
		t.Fatalf("comfortable-deadline acquire: %v", err)
	}
	gate.Release()
	if st := gate.Snapshot(); st.ShedDeadline != 1 {
		t.Fatalf("snapshot = %+v, want ShedDeadline 1", st)
	}
}

// TestGateSetQueueBound pins the brownout hook: shrinking the bound
// sheds new arrivals at the smaller depth, restoring re-admits them.
func TestGateSetQueueBound(t *testing.T) {
	gate := NewGateQueue(1, 4)
	if err := gate.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	gate.SetQueueBound(0)
	err := gate.Acquire(context.Background())
	var ae *AdmissionError
	if !errors.As(err, &ae) || ae.Reason != ShedQueueFull {
		t.Fatalf("bound 0: err = %v, want queue_full", err)
	}
	if got := gate.QueueBound(); got != 0 {
		t.Fatalf("QueueBound = %d, want 0", got)
	}
	gate.SetQueueBound(4)
	done := make(chan error, 1)
	go func() { done <- gate.Acquire(context.Background()) }()
	for gate.Snapshot().Waiters != 1 {
		time.Sleep(time.Millisecond)
	}
	gate.Release()
	if err := <-done; err != nil {
		t.Fatalf("restored bound must park and admit: %v", err)
	}
	gate.Release()
}

// TestGateEWMA pins the estimate: the first timed release seeds it,
// later ones move it by the smoothing factor, and untimed Release
// leaves it alone.
func TestGateEWMA(t *testing.T) {
	gate := NewGate(2)
	ctx := context.Background()
	if err := gate.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	gate.ReleaseTimed(100 * time.Millisecond)
	if got := gate.Snapshot().EWMARunTime; got != 100*time.Millisecond {
		t.Fatalf("seed EWMA = %v, want 100ms", got)
	}
	if err := gate.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	gate.ReleaseTimed(200 * time.Millisecond)
	if got := gate.Snapshot().EWMARunTime; got != 120*time.Millisecond {
		t.Fatalf("EWMA after 200ms sample = %v, want 120ms (alpha 0.2)", got)
	}
	if err := gate.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	gate.Release()
	if got := gate.Snapshot().EWMARunTime; got != 120*time.Millisecond {
		t.Fatalf("untimed Release moved the EWMA to %v", got)
	}
}

func TestGuardGateRefusalBeforeRun(t *testing.T) {
	gate := NewGate(1)
	if err := gate.Acquire(context.Background()); err != nil {
		t.Fatalf("pre-fill: %v", err)
	}
	defer gate.Release()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := Guard(&stubEngine{emit: 1}, GuardConfig{Gate: gate})
	_, ex, err := g.Enumerate(ctx, Params{}, func(*logic.FactStore) bool { return true })
	if !errors.Is(err, ErrAdmission) || !ex {
		t.Fatalf("full gate + dead ctx: err=%v ex=%v, want ErrAdmission with Exhausted", err, ex)
	}
}
