package efwfs_test

import (
	"testing"

	"ntgd/internal/efwfs"
	"ntgd/internal/parser"
)

const fatherProgram = `
person(alice).
person(X) -> hasFather(X,Y).
hasFather(X,Y) -> sameAs(Y,Y).
hasFather(X,Y), hasFather(X,Z), not sameAs(Y,Z) -> abnormal(X).
`

// TestEFWFSExample2IntendedAnswer: under EFWFS the query
// ¬hasFather(alice, bob) is not entailed — the intended answer, as the
// paper notes ("if we apply the EFWFS to Example 2, then we get the
// expected answer").
func TestEFWFSExample2IntendedAnswer(t *testing.T) {
	prog := parser.MustParse(fatherProgram + "?- person(alice), not hasFather(alice,bob).")
	v, err := efwfs.Entails(prog.Database(), prog.Rules, prog.Queries[0], efwfs.Options{
		FreshConstants:            1,
		MaxInstancesPerAssignment: 1,
	})
	if err != nil {
		t.Fatalf("Entails: %v", err)
	}
	if v.Entailed {
		t.Fatalf("EFWFS should NOT entail ¬hasFather(alice,bob) (checked %d programs)", v.ProgramsChecked)
	}
	if v.CounterTrue == nil {
		t.Fatalf("expected a counterexample well-founded model")
	}
}

// TestEFWFSExample3UnintendedAnswer reproduces Example 3: one expects
// ¬abnormal(alice) to be entailed (there is no evidence alice has two
// fathers), but EFWFS fails to entail it because some instance program
// gives alice two distinct fathers — e.g. the program containing
// person(alice) → hasFather(alice, bob) and person(alice) →
// hasFather(alice, john).
func TestEFWFSExample3UnintendedAnswer(t *testing.T) {
	prog := parser.MustParse(fatherProgram + "?- person(alice), not abnormal(alice).")
	v, err := efwfs.Entails(prog.Database(), prog.Rules, prog.Queries[0], efwfs.Options{
		FreshConstants:            2, // bob and john, in effect
		MaxInstancesPerAssignment: 2, // a body assignment may get two instances
	})
	if err != nil {
		t.Fatalf("Entails: %v", err)
	}
	if v.Entailed {
		t.Fatalf("Example 3: EFWFS should NOT entail ¬abnormal(alice) (checked %d programs)", v.ProgramsChecked)
	}
	if v.CounterTrue == nil || v.CounterTrue.CountPred("abnormal") == 0 {
		t.Fatalf("the counterexample model should make abnormal(alice) true; got %v", v.CounterTrue)
	}
	if v.CounterTrue.CountPred("hasFather") < 2 {
		t.Fatalf("the counterexample should give alice two fathers: %s", v.CounterTrue.CanonicalString())
	}
}

// TestEFWFSEntailsPositiveFacts: database facts are entailed in every
// instance program.
func TestEFWFSEntailsPositiveFacts(t *testing.T) {
	prog := parser.MustParse(fatherProgram + "?- person(alice).")
	v, err := efwfs.Entails(prog.Database(), prog.Rules, prog.Queries[0], efwfs.Options{
		FreshConstants:            1,
		MaxInstancesPerAssignment: 1,
		MaxPrograms:               5000,
	})
	if err != nil {
		t.Fatalf("Entails: %v", err)
	}
	if !v.Entailed {
		t.Fatalf("person(alice) must be EFWFS-entailed")
	}
}
