// Package efwfs implements (a bounded variant of) the equality-friendly
// well-founded semantics of Gottlob, Hernich, Kupke and Lukasiewicz
// (AAAI 2012), reference [21] of the paper. Given (D, Σ), the paper
// describes the semantics as the set of well-founded models of all
// normal programs Π ∈ I(D,Σ) obtained by (i) optionally unifying
// constants of D (no unique name assumption) and (ii) replacing every
// NTGD by arbitrary ground instances over constants — at least one per
// body assignment.
//
// I(D,Σ) is infinite (instances range over the whole constant
// universe); this implementation bounds it by a finite fresh-constant
// pool and a maximum number of head instances per body assignment.
// That bounded family is sufficient to reproduce both observations the
// paper makes about EFWFS: Example 2 is answered as intended (there is
// an equality-friendly well-founded model with hasFather(alice, bob)),
// while Example 3 is not (some model makes abnormal(alice) true
// because two distinct fresh fathers can be chosen). See DESIGN.md,
// substitution #2.
package efwfs

import (
	"fmt"
	"sort"
	"strconv"

	"ntgd/internal/asp"
	"ntgd/internal/logic"
)

// Options bounds the instance family.
type Options struct {
	// FreshConstants is the number of fresh constants added to the
	// instantiation pool (default 2).
	FreshConstants int
	// MaxInstancesPerAssignment bounds how many head instantiations a
	// single (rule, body assignment) pair may receive (default 2;
	// Example 3 needs 2).
	MaxInstancesPerAssignment int
	// MaxPrograms bounds the number of programs examined (default
	// 200000).
	MaxPrograms int
	// ExtraConstants extends the pool (typically query constants).
	ExtraConstants []logic.Term
}

func (o *Options) fill() {
	if o.FreshConstants <= 0 {
		o.FreshConstants = 2
	}
	if o.MaxInstancesPerAssignment <= 0 {
		o.MaxInstancesPerAssignment = 2
	}
	if o.MaxPrograms <= 0 {
		o.MaxPrograms = 200000
	}
}

// Verdict is the outcome of an entailment check over the bounded
// family.
type Verdict struct {
	// Entailed reports whether q held in the well-founded model of
	// every examined program.
	Entailed bool
	// CounterTrue/CounterUndefined describe the well-founded model of
	// the first counterexample program (nil when Entailed).
	CounterTrue *logic.FactStore
	// ProgramsChecked counts examined instance programs.
	ProgramsChecked int
	// Complete is false when MaxPrograms truncated the family; an
	// Entailed verdict is then only "no counterexample found within
	// the bounded family".
	Complete bool
}

// Entails checks q against the well-founded model of every program in
// the bounded instance family: q is EFWFS-entailed when its positive
// atoms are well-founded true and its negated atoms well-founded false
// in every model.
func Entails(db *logic.FactStore, rules []*logic.Rule, q logic.Query, opt Options) (Verdict, error) {
	if err := q.Validate(); err != nil {
		return Verdict{}, err
	}
	opt.fill()
	pool := buildPool(db, q, opt)

	// Enumerate per-(rule, body assignment) head-instantiation choices.
	var sites []site
	for _, r := range rules {
		if r.IsDisjunctive() || r.IsConstraint() {
			return Verdict{}, fmt.Errorf("efwfs: rule %s: EFWFS is defined for normal TGDs", r.Label)
		}
		bodyVars := sortedVars(r.BodyVars())
		exist := r.ExistVars(0)
		for _, bodyAsg := range allAssignments(bodyVars, pool) {
			st := site{rule: r, body: bodyAsg}
			if len(exist) == 0 {
				st.headChoices = []logic.Subst{{}}
			} else {
				st.headChoices = allAssignments(exist, pool)
			}
			sites = append(sites, st)
		}
	}

	v := Verdict{Entailed: true, Complete: true}
	// DFS over choice combinations: each site picks a non-empty subset
	// of headChoices with size ≤ MaxInstancesPerAssignment.
	var chosen [][]logic.Subst
	var dfs func(i int) bool // returns false to stop (counterexample or budget)
	dfs = func(i int) bool {
		if i == len(sites) {
			v.ProgramsChecked++
			if v.ProgramsChecked > opt.MaxPrograms {
				v.Complete = false
				return false
			}
			trueStore, ok := wfsOf(db, sites2instances(sites, chosen))
			if !ok {
				return true
			}
			if !holdsWFS(q, trueStore) {
				v.Entailed = false
				v.CounterTrue = trueStore
				return false
			}
			return true
		}
		subsets := nonEmptySubsets(len(sites[i].headChoices), opt.MaxInstancesPerAssignment)
		for _, sel := range subsets {
			var picks []logic.Subst
			for _, idx := range sel {
				picks = append(picks, sites[i].headChoices[idx])
			}
			chosen = append(chosen, picks)
			ok := dfs(i + 1)
			chosen = chosen[:len(chosen)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	dfs(0)
	return v, nil
}

// site is one (rule, body assignment) pair of the instance family: the
// paper requires at least one instance per body assignment; headChoices
// lists the candidate existential-variable assignments.
type site struct {
	rule        *logic.Rule
	body        logic.Subst
	headChoices []logic.Subst
}

// instance is one ground normal rule of an instance program.
type instance struct {
	pos, neg []logic.Atom
	head     []logic.Atom
}

func sites2instances(sites []site, chosen [][]logic.Subst) []instance {
	var out []instance
	for i, st := range sites {
		pos, neg := logic.SplitLiterals(st.rule.Body)
		for _, headAsg := range chosen[i] {
			full := st.body.Clone()
			for k, t := range headAsg {
				full[k] = t
			}
			out = append(out, instance{
				pos:  full.ApplyAtoms(pos),
				neg:  full.ApplyAtoms(neg),
				head: full.ApplyAtoms(st.rule.Heads[0]),
			})
		}
	}
	return out
}

// wfsOf computes the well-founded model of the ground instance
// program; it returns the store of well-founded-true atoms. ok=false
// signals an (unexpected) WFS failure.
func wfsOf(db *logic.FactStore, insts []instance) (*logic.FactStore, bool) {
	ids := map[string]int{}
	var atoms []logic.Atom
	intern := func(a logic.Atom) int {
		k := a.Key()
		if id, ok := ids[k]; ok {
			return id
		}
		ids[k] = len(atoms)
		atoms = append(atoms, a)
		return len(atoms) - 1
	}
	prog := &asp.Program{}
	for _, f := range db.Atoms() {
		prog.Rules = append(prog.Rules, asp.Rule{Disjuncts: [][]int{{intern(f)}}})
	}
	for _, in := range insts {
		r := asp.Rule{}
		for _, a := range in.pos {
			r.Pos = append(r.Pos, intern(a))
		}
		for _, a := range in.neg {
			r.Neg = append(r.Neg, intern(a))
		}
		var d []int
		for _, a := range in.head {
			d = append(d, intern(a))
		}
		r.Disjuncts = [][]int{d}
		prog.Rules = append(prog.Rules, r)
	}
	prog.NAtoms = len(atoms)
	w, err := asp.WellFounded(prog)
	if err != nil {
		return nil, false
	}
	trueStore := logic.NewFactStore()
	for _, id := range w.True {
		trueStore.Add(atoms[id])
	}
	return trueStore, true
}

// holdsWFS evaluates the NBCQ over a well-founded model: positive
// atoms must be well-founded true; negated instances must not be.
// (Atoms outside the program's vocabulary are well-founded false, so
// checking membership in the true-store is exact for safe queries.)
func holdsWFS(q logic.Query, trueStore *logic.FactStore) bool {
	return logic.ExistsHom(q.Pos, q.Neg, trueStore, logic.Subst{})
}

func buildPool(db *logic.FactStore, q logic.Query, opt Options) []logic.Term {
	seen := map[string]logic.Term{}
	for _, t := range db.Domain() {
		seen[t.Key()] = t
	}
	for _, t := range q.Constants() {
		seen[t.Key()] = t
	}
	for _, t := range opt.ExtraConstants {
		seen[t.Key()] = t
	}
	for i := 1; i <= opt.FreshConstants; i++ {
		t := logic.C("fresh" + strconv.Itoa(i))
		seen[t.Key()] = t
	}
	out := make([]logic.Term, 0, len(seen))
	for _, t := range seen {
		out = append(out, t)
	}
	logic.SortTerms(out)
	return out
}

func sortedVars(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func allAssignments(vars []string, pool []logic.Term) []logic.Subst {
	out := []logic.Subst{{}}
	for _, v := range vars {
		var next []logic.Subst
		for _, s := range out {
			for _, t := range pool {
				c := s.Clone()
				c[v] = t
				next = append(next, c)
			}
		}
		out = next
	}
	return out
}

// nonEmptySubsets returns index subsets of {0..n-1} of size 1..max, in
// deterministic order (singletons first).
func nonEmptySubsets(n, max int) [][]int {
	var out [][]int
	var cur []int
	var rec func(start, size int)
	rec = func(start, size int) {
		if size == 0 {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := start; i < n; i++ {
			cur = append(cur, i)
			rec(i+1, size-1)
			cur = cur[:len(cur)-1]
		}
	}
	for size := 1; size <= max && size <= n; size++ {
		rec(0, size)
	}
	return out
}
