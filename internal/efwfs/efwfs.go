// Package efwfs implements (a bounded variant of) the equality-friendly
// well-founded semantics of Gottlob, Hernich, Kupke and Lukasiewicz
// (AAAI 2012), reference [21] of the paper. Given (D, Σ), the paper
// describes the semantics as the set of well-founded models of all
// normal programs Π ∈ I(D,Σ) obtained by (i) optionally unifying
// constants of D (no unique name assumption) and (ii) replacing every
// NTGD by arbitrary ground instances over constants — at least one per
// body assignment.
//
// I(D,Σ) is infinite (instances range over the whole constant
// universe); this implementation bounds it by a finite fresh-constant
// pool and a maximum number of head instances per body assignment.
// That bounded family is sufficient to reproduce both observations the
// paper makes about EFWFS: Example 2 is answered as intended (there is
// an equality-friendly well-founded model with hasFather(alice, bob)),
// while Example 3 is not (some model makes abnormal(alice) true
// because two distinct fresh fathers can be chosen). See DESIGN.md,
// substitution #2.
package efwfs

import (
	"fmt"
	"sort"
	"strconv"

	"ntgd/internal/asp"
	"ntgd/internal/logic"
)

// Options bounds the instance family.
type Options struct {
	// FreshConstants is the number of fresh constants added to the
	// instantiation pool (default 2).
	FreshConstants int
	// MaxInstancesPerAssignment bounds how many head instantiations a
	// single (rule, body assignment) pair may receive (default 2;
	// Example 3 needs 2).
	MaxInstancesPerAssignment int
	// MaxPrograms bounds the number of programs examined (default
	// 200000).
	MaxPrograms int
	// ExtraConstants extends the pool (typically query constants).
	ExtraConstants []logic.Term
}

func (o *Options) fill() {
	if o.FreshConstants <= 0 {
		o.FreshConstants = 2
	}
	if o.MaxInstancesPerAssignment <= 0 {
		o.MaxInstancesPerAssignment = 2
	}
	if o.MaxPrograms <= 0 {
		o.MaxPrograms = 200000
	}
}

// Verdict is the outcome of an entailment check over the bounded
// family.
type Verdict struct {
	// Entailed reports whether q held in the well-founded model of
	// every examined program.
	Entailed bool
	// CounterTrue/CounterUndefined describe the well-founded model of
	// the first counterexample program (nil when Entailed).
	CounterTrue *logic.FactStore
	// ProgramsChecked counts examined instance programs.
	ProgramsChecked int
	// Complete is false when MaxPrograms truncated the family; an
	// Entailed verdict is then only "no counterexample found within
	// the bounded family".
	Complete bool
}

// Entails checks q against the well-founded model of every program in
// the bounded instance family: q is EFWFS-entailed when its positive
// atoms are well-founded true and its negated atoms well-founded false
// in every model.
func Entails(db *logic.FactStore, rules []*logic.Rule, q logic.Query, opt Options) (Verdict, error) {
	if err := q.Validate(); err != nil {
		return Verdict{}, err
	}
	opt.fill()
	pool := buildPool(db, q, opt)

	// Enumerate per-(rule, body assignment) head-instantiation choices,
	// and compile every candidate ground instance to a propositional
	// rule once, up front: the DFS below revisits each site across many
	// instance programs, and re-grounding and re-interning per leaf
	// dominated the family search before this hoisting.
	comp := newCompiler(db)
	var sites []site
	for _, r := range rules {
		if r.IsDisjunctive() || r.IsConstraint() {
			return Verdict{}, fmt.Errorf("efwfs: rule %s: EFWFS is defined for normal TGDs", r.Label)
		}
		bodyVars := sortedVars(r.BodyVars())
		exist := r.ExistVars(0)
		for _, bodyAsg := range allAssignments(bodyVars, pool) {
			st := site{rule: r, body: bodyAsg}
			if len(exist) == 0 {
				st.headChoices = []logic.Subst{{}}
			} else {
				st.headChoices = allAssignments(exist, pool)
			}
			for _, headAsg := range st.headChoices {
				st.choiceRules = append(st.choiceRules, comp.compile(r, bodyAsg, headAsg))
			}
			sites = append(sites, st)
		}
	}

	v := Verdict{Entailed: true, Complete: true}
	// DFS over choice combinations: each site picks a non-empty subset
	// of headChoices with size ≤ MaxInstancesPerAssignment.
	chosen := make([][]int, 0, len(sites))
	var dfs func(i int) bool // returns false to stop (counterexample or budget)
	dfs = func(i int) bool {
		if i == len(sites) {
			v.ProgramsChecked++
			if v.ProgramsChecked > opt.MaxPrograms {
				v.Complete = false
				return false
			}
			trueStore, ok := comp.wfs(sites, chosen)
			if !ok {
				return true
			}
			if !holdsWFS(q, trueStore) {
				v.Entailed = false
				v.CounterTrue = trueStore
				return false
			}
			return true
		}
		subsets := nonEmptySubsets(len(sites[i].headChoices), opt.MaxInstancesPerAssignment)
		for _, sel := range subsets {
			chosen = append(chosen, sel)
			ok := dfs(i + 1)
			chosen = chosen[:len(chosen)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	dfs(0)
	return v, nil
}

// site is one (rule, body assignment) pair of the instance family: the
// paper requires at least one instance per body assignment; headChoices
// lists the candidate existential-variable assignments and choiceRules
// the corresponding precompiled propositional rules (parallel slices).
type site struct {
	rule        *logic.Rule
	body        logic.Subst
	headChoices []logic.Subst
	choiceRules []asp.Rule
}

// compiler interns ground atoms into a single propositional vocabulary
// shared by every instance program of the family. Atoms belonging only
// to non-selected instances are merely unused ids in a given program
// (well-founded false), which does not affect the true-store.
type compiler struct {
	ids     map[string]int
	atoms   []logic.Atom
	dbRules []asp.Rule
}

func newCompiler(db *logic.FactStore) *compiler {
	c := &compiler{ids: map[string]int{}}
	for _, f := range db.Atoms() {
		c.dbRules = append(c.dbRules, asp.Rule{Disjuncts: [][]int{{c.intern(f)}}})
	}
	return c
}

func (c *compiler) intern(a logic.Atom) int {
	k := a.Key()
	if id, ok := c.ids[k]; ok {
		return id
	}
	c.ids[k] = len(c.atoms)
	c.atoms = append(c.atoms, a)
	return len(c.atoms) - 1
}

// compile grounds one rule under body and head assignments into a
// propositional rule.
func (c *compiler) compile(r *logic.Rule, body, head logic.Subst) asp.Rule {
	full := body.Clone()
	for k, t := range head {
		full[k] = t
	}
	pos, neg := logic.SplitLiterals(r.Body)
	out := asp.Rule{}
	for _, a := range full.ApplyAtoms(pos) {
		out.Pos = append(out.Pos, c.intern(a))
	}
	for _, a := range full.ApplyAtoms(neg) {
		out.Neg = append(out.Neg, c.intern(a))
	}
	var d []int
	for _, a := range full.ApplyAtoms(r.Heads[0]) {
		d = append(d, c.intern(a))
	}
	out.Disjuncts = [][]int{d}
	return out
}

// wfs assembles the instance program selected by chosen (per site, the
// indices of the picked head choices) from the precompiled rules and
// computes its well-founded model; it returns the store of
// well-founded-true atoms. ok=false signals an (unexpected) WFS
// failure.
func (c *compiler) wfs(sites []site, chosen [][]int) (*logic.FactStore, bool) {
	nrules := len(c.dbRules)
	for _, sel := range chosen {
		nrules += len(sel)
	}
	prog := &asp.Program{NAtoms: len(c.atoms)}
	prog.Rules = make([]asp.Rule, 0, nrules)
	prog.Rules = append(prog.Rules, c.dbRules...)
	for i, sel := range chosen {
		for _, idx := range sel {
			prog.Rules = append(prog.Rules, sites[i].choiceRules[idx])
		}
	}
	w, err := asp.WellFounded(prog)
	if err != nil {
		return nil, false
	}
	atoms := make([]logic.Atom, len(w.True))
	for i, id := range w.True {
		atoms[i] = c.atoms[id]
	}
	return logic.StoreOf(atoms...), true
}

// holdsWFS evaluates the NBCQ over a well-founded model: positive
// atoms must be well-founded true; negated instances must not be.
// (Atoms outside the program's vocabulary are well-founded false, so
// checking membership in the true-store is exact for safe queries.)
func holdsWFS(q logic.Query, trueStore *logic.FactStore) bool {
	return logic.ExistsHom(q.Pos, q.Neg, trueStore, logic.Subst{})
}

func buildPool(db *logic.FactStore, q logic.Query, opt Options) []logic.Term {
	seen := map[string]logic.Term{}
	for _, t := range db.Domain() {
		seen[t.Key()] = t
	}
	for _, t := range q.Constants() {
		seen[t.Key()] = t
	}
	for _, t := range opt.ExtraConstants {
		seen[t.Key()] = t
	}
	for i := 1; i <= opt.FreshConstants; i++ {
		t := logic.C("fresh" + strconv.Itoa(i))
		seen[t.Key()] = t
	}
	out := make([]logic.Term, 0, len(seen))
	for _, t := range seen {
		out = append(out, t)
	}
	logic.SortTerms(out)
	return out
}

func sortedVars(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func allAssignments(vars []string, pool []logic.Term) []logic.Subst {
	out := []logic.Subst{{}}
	for _, v := range vars {
		var next []logic.Subst
		for _, s := range out {
			for _, t := range pool {
				c := s.Clone()
				c[v] = t
				next = append(next, c)
			}
		}
		out = next
	}
	return out
}

// nonEmptySubsets returns index subsets of {0..n-1} of size 1..max, in
// deterministic order (singletons first).
func nonEmptySubsets(n, max int) [][]int {
	var out [][]int
	var cur []int
	var rec func(start, size int)
	rec = func(start, size int) {
		if size == 0 {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := start; i < n; i++ {
			cur = append(cur, i)
			rec(i+1, size-1)
			cur = cur[:len(cur)-1]
		}
	}
	for size := 1; size <= max && size <= n; size++ {
		rec(0, size)
	}
	return out
}
