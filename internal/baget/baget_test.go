package baget_test

import (
	"testing"

	"ntgd/internal/baget"
	"ntgd/internal/core"
	"ntgd/internal/logic"
	"ntgd/internal/parser"
)

const fatherProgram = `
person(alice).
person(X) -> hasFather(X,Y).
hasFather(X,Y) -> sameAs(Y,Y).
hasFather(X,Y), hasFather(X,Z), not sameAs(Y,Z) -> abnormal(X).
`

// TestOperationalSemanticsFreshNullsOnly: under [3] the chase always
// invents a fresh null, so the unique stable model (up to null
// renaming) witnesses the father with a null, never with alice or bob.
func TestOperationalSemanticsFreshNullsOnly(t *testing.T) {
	prog := parser.MustParse(fatherProgram)
	db := prog.Database()
	res, err := baget.StableModels(db, prog.Rules, core.Options{})
	if err != nil {
		t.Fatalf("StableModels: %v", err)
	}
	if len(res.Models) != 1 {
		t.Fatalf("expected exactly one operational stable model, got %d", len(res.Models))
	}
	fa := res.Models[0].ByPred("hasFather")[0]
	if fa.Args[1].Kind != logic.Null {
		t.Fatalf("the witness must be a fresh null, got %s", fa)
	}
}

// TestSection1Criticism reproduces the paper's criticism: under [3],
// (D,Σ) |= ¬hasFather(alice,bob) — the unintended answer — while the
// SO semantics refutes it.
func TestSection1Criticism(t *testing.T) {
	prog := parser.MustParse(fatherProgram + "?- person(alice), not hasFather(alice,bob).")
	db := prog.Database()
	q := prog.Queries[0]

	op, err := baget.CautiousEntails(db, prog.Rules, q, core.Options{})
	if err != nil {
		t.Fatalf("baget: %v", err)
	}
	if !op.Entailed {
		t.Fatalf("the operational semantics should (wrongly) entail the query")
	}

	so, err := core.CautiousEntails(db, prog.Rules, q, core.Options{})
	if err != nil {
		t.Fatalf("core: %v", err)
	}
	if so.Entailed {
		t.Fatalf("the SO semantics must not entail the query")
	}
}

// TestOperationalModelsAreSOStable: every model of the operational
// semantics is also a stable model under the SO semantics (fresh-null
// witnesses are a special case of arbitrary witnesses).
func TestOperationalModelsAreSOStable(t *testing.T) {
	prog := parser.MustParse(fatherProgram)
	db := prog.Database()
	res, err := baget.StableModels(db, prog.Rules, core.Options{})
	if err != nil {
		t.Fatalf("StableModels: %v", err)
	}
	for _, m := range res.Models {
		if !core.IsStableModel(db, prog.Rules, m) {
			t.Fatalf("operational model is not SO-stable: %s", m.CanonicalString())
		}
	}
}

// TestBraveAgreesOnNegationFreeGround: on an existential-free program
// both semantics coincide.
func TestBraveAgreesOnNegationFreeGround(t *testing.T) {
	prog := parser.MustParse(`
a(1).
a(X), not q(X) -> p(X).
a(X), not p(X) -> q(X).
?- p(1).
`)
	db := prog.Database()
	q := prog.Queries[0]
	op, err := baget.BraveEntails(db, prog.Rules, q, core.Options{})
	if err != nil {
		t.Fatalf("baget: %v", err)
	}
	so, err := core.BraveEntails(db, prog.Rules, q, core.Options{})
	if err != nil {
		t.Fatalf("core: %v", err)
	}
	if op.Entailed != so.Entailed {
		t.Fatalf("existential-free programs: semantics must agree (op=%v so=%v)", op.Entailed, so.Entailed)
	}
}
