// Package baget implements the operational, chase-based stable model
// semantics of Baget, Garreau, Mugnier and Rocher ("Revisiting chase
// termination for existential rules and their extension to
// nonmonotonic negation", NMR 2014), reference [3] of the paper: a
// (possibly infinite) set of atoms M is a stable model of (D ∧ Σ) if
// it is obtained by a complete and sound chase of Σ⁺ from D — every
// applicable unblocked TGD is eventually applied, no applied TGD has a
// negative literal in M, and, crucially, every existential variable is
// witnessed by a freshly invented null, never by a constant.
//
// That last point is exactly what the paper criticizes (Section 1):
// with fresh-only witnesses there is no stable model containing
// hasFather(alice, bob), so ¬hasFather(alice, bob) is (unexpectedly)
// entailed. The implementation simply runs the internal/core search
// with WitnessFreshOnly, which realizes this semantics.
package baget

import (
	"ntgd/internal/core"
	"ntgd/internal/logic"
)

// StableModels enumerates the stable models under the operational
// semantics of [3].
func StableModels(db *logic.FactStore, rules []*logic.Rule, opt core.Options) (*core.Result, error) {
	opt.WitnessPolicy = core.WitnessFreshOnly
	return core.StableModels(db, rules, opt)
}

// CautiousEntails decides certain entailment under the operational
// semantics of [3].
func CautiousEntails(db *logic.FactStore, rules []*logic.Rule, q logic.Query, opt core.Options) (core.QAResult, error) {
	opt.WitnessPolicy = core.WitnessFreshOnly
	return core.CautiousEntails(db, rules, q, opt)
}

// BraveEntails decides brave entailment under the operational
// semantics of [3].
func BraveEntails(db *logic.FactStore, rules []*logic.Rule, q logic.Query, opt core.Options) (core.QAResult, error) {
	opt.WitnessPolicy = core.WitnessFreshOnly
	return core.BraveEntails(db, rules, q, opt)
}
