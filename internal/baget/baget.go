// Package baget implements the operational, chase-based stable model
// semantics of Baget, Garreau, Mugnier and Rocher ("Revisiting chase
// termination for existential rules and their extension to
// nonmonotonic negation", NMR 2014), reference [3] of the paper: a
// (possibly infinite) set of atoms M is a stable model of (D ∧ Σ) if
// it is obtained by a complete and sound chase of Σ⁺ from D — every
// applicable unblocked TGD is eventually applied, no applied TGD has a
// negative literal in M, and, crucially, every existential variable is
// witnessed by a freshly invented null, never by a constant.
//
// That last point is exactly what the paper criticizes (Section 1):
// with fresh-only witnesses there is no stable model containing
// hasFather(alice, bob), so ¬hasFather(alice, bob) is (unexpectedly)
// entailed. The implementation simply runs the internal/core search
// with WitnessFreshOnly, which realizes this semantics.
package baget

import (
	"context"

	"ntgd/internal/core"
	"ntgd/internal/engine"
	"ntgd/internal/logic"
)

// Compiled is the operational semantics compiled for one program: the
// SO search engine fixed to the fresh-only witness policy. It
// implements the engine.Engine interface.
type Compiled struct {
	c *core.Compiled
}

// Compile validates the rules and precomputes the search metadata,
// forcing the fresh-only witness policy of [3].
func Compile(db *logic.FactStore, rules []*logic.Rule, opt core.Options) (*Compiled, error) {
	opt.WitnessPolicy = core.WitnessFreshOnly
	c, err := core.Compile(db, rules, opt)
	if err != nil {
		return nil, err
	}
	return &Compiled{c: c}, nil
}

// Semantics implements engine.Engine.
func (c *Compiled) Semantics() string { return "operational" }

// Enumerate implements engine.Engine.
func (c *Compiled) Enumerate(ctx context.Context, p engine.Params, visit func(*logic.FactStore) bool) (engine.Stats, bool, error) {
	return c.c.Enumerate(ctx, p, visit)
}

// StableModels enumerates the stable models under the operational
// semantics of [3].
func StableModels(db *logic.FactStore, rules []*logic.Rule, opt core.Options) (*core.Result, error) {
	c, err := Compile(db, rules, opt)
	if err != nil {
		return nil, err
	}
	return engine.CollectModels(context.Background(), c, engine.Params{}, opt.MaxModels)
}

// CautiousEntails decides certain entailment under the operational
// semantics of [3].
func CautiousEntails(db *logic.FactStore, rules []*logic.Rule, q logic.Query, opt core.Options) (core.QAResult, error) {
	c, err := Compile(db, rules, opt)
	if err != nil {
		return core.QAResult{}, err
	}
	return engine.CautiousEntails(context.Background(), c, engine.Params{}, q)
}

// BraveEntails decides brave entailment under the operational
// semantics of [3].
func BraveEntails(db *logic.FactStore, rules []*logic.Rule, q logic.Query, opt core.Options) (core.QAResult, error) {
	c, err := Compile(db, rules, opt)
	if err != nil {
		return core.QAResult{}, err
	}
	return engine.BraveEntails(context.Background(), c, engine.Params{}, q)
}
