package transform_test

import (
	"testing"

	"ntgd/internal/asp"
	"ntgd/internal/classify"
	"ntgd/internal/core"
	"ntgd/internal/ground"
	"ntgd/internal/logic"
	"ntgd/internal/parser"
	"ntgd/internal/transform"
)

// agree checks that the original disjunctive program and its Lemma 13
// elimination give the same verdict on a query, both cautiously and
// bravely.
func agreeOnQuery(t *testing.T, src, query string) {
	t.Helper()
	prog := parser.MustParse(src)
	q := parser.MustParse(query).Queries[0]
	db := prog.Database()

	elim, err := transform.EliminateDisjunction(db, prog.Rules)
	if err != nil {
		t.Fatalf("EliminateDisjunction: %v", err)
	}
	for _, r := range elim.Rules {
		if r.IsDisjunctive() {
			t.Fatalf("elimination left a disjunctive rule: %s", r)
		}
	}

	for _, mode := range []string{"cautious", "brave"} {
		var orig, tran core.QAResult
		if mode == "cautious" {
			orig, err = core.CautiousEntails(db, prog.Rules, q, core.Options{})
			if err != nil {
				t.Fatalf("original %s: %v", mode, err)
			}
			tran, err = core.CautiousEntails(elim.DB, elim.Rules, q, core.Options{})
			if err != nil {
				t.Fatalf("translated %s: %v", mode, err)
			}
		} else {
			orig, err = core.BraveEntails(db, prog.Rules, q, core.Options{})
			if err != nil {
				t.Fatalf("original %s: %v", mode, err)
			}
			tran, err = core.BraveEntails(elim.DB, elim.Rules, q, core.Options{})
			if err != nil {
				t.Fatalf("translated %s: %v", mode, err)
			}
		}
		if orig.Entailed != tran.Entailed {
			t.Fatalf("%s disagreement on %q: original=%v translated=%v", mode, query, orig.Entailed, tran.Entailed)
		}
	}
}

func TestLemma13SimpleGuess(t *testing.T) {
	src := `
node(a). node(b).
edge(a,b).
node(X) -> red(X) | green(X).
edge(X,Y), red(X), red(Y) -> clash.
edge(X,Y), green(X), green(Y) -> clash.
`
	agreeOnQuery(t, src, "?- red(a).")
	agreeOnQuery(t, src, "?- clash.")
	agreeOnQuery(t, src, "?- node(a), not clash.")
}

func TestLemma13WithExistentialDisjunct(t *testing.T) {
	// Example 5's shape: disjunction mixed with an existential rule.
	src := `
r(a).
p(X) -> s(X,Y).
r(X) -> p(X) | s(X,X).
`
	agreeOnQuery(t, src, "?- s(a,a).")
	agreeOnQuery(t, src, "?- p(a).")
	agreeOnQuery(t, src, "?-[X] r(X), p(X).")
}

func TestLemma13WithNegation(t *testing.T) {
	src := `
item(a). item(b).
item(X), not sold(X) -> kept(X) | gifted(X).
gifted(X) -> happy.
`
	agreeOnQuery(t, src, "?- happy.")
	agreeOnQuery(t, src, "?- kept(a).")
	agreeOnQuery(t, src, "?- item(a), not gifted(a).")
}

// TestExample5NotWeaklyAcyclic reproduces Example 5: the elimination
// output violates weak-acyclicity (a cycle through a special edge via
// the t_σ predicate), yet remains harmless — Section 6 explains why
// Lemma 13 is still usable.
func TestExample5NotWeaklyAcyclic(t *testing.T) {
	prog := parser.MustParse(`
r(a).
p(X) -> s(X,Y).
r(X) -> p(X) | s(X,X).
`)
	if !classify.IsWeaklyAcyclic(prog.Rules) {
		t.Fatalf("the source program is weakly acyclic")
	}
	elim, err := transform.EliminateDisjunction(prog.Database(), prog.Rules)
	if err != nil {
		t.Fatalf("EliminateDisjunction: %v", err)
	}
	if classify.IsWeaklyAcyclic(elim.Rules) {
		t.Fatalf("Example 5: the translated program should violate weak-acyclicity")
	}
}

// TestTheorem15ThreeWayAgreement runs a DATALOG∨ program through
// (a) the ground disjunctive ASP solver, (b) the native NDTGD engine
// (Theorem 12/18), and (c) the Theorem 15 WATGD¬ translation, and
// checks that all three agree on brave entailment.
func TestTheorem15ThreeWayAgreement(t *testing.T) {
	src := `
node(a). node(b). node(c).
edge(a,b). edge(b,c). edge(a,c).
node(X) -> r(X) | g(X) | b(X).
edge(X,Y), r(X), r(Y) -> w.
edge(X,Y), g(X), g(Y) -> w.
edge(X,Y), b(X), b(Y) -> w.
w, node(X) -> r(X).
w, node(X) -> g(X).
w, node(X) -> b(X).
w -> bad.
`
	prog := parser.MustParse(src)
	db := prog.Database()
	q := logic.Query{Pos: []logic.Atom{logic.A("bad")}}

	// (a) ground disjunctive ASP.
	g, err := ground.Ground(db, ground.Skolemize(prog.Rules), ground.Options{})
	if err != nil {
		t.Fatalf("ground: %v", err)
	}
	braveASP := false
	if _, err := asp.Solve(g.Prog, asp.SolveOptions{}, func(m asp.Model) bool {
		if q.Holds(g.ModelStore(m)) {
			braveASP = true
			return false
		}
		return true
	}); err != nil {
		t.Fatalf("asp solve: %v", err)
	}

	// (b) native NDTGD engine.
	resNative, err := core.BraveEntails(db, prog.Rules, q, core.Options{})
	if err != nil {
		t.Fatalf("native: %v", err)
	}

	// (c) Theorem 15 translation.
	w, err := transform.DatalogToWATGD(transform.DatalogQuery{Rules: prog.Rules, QueryPred: "bad"}, 0)
	if err != nil {
		t.Fatalf("DatalogToWATGD: %v", err)
	}
	qT := logic.Query{Pos: []logic.Atom{logic.A(w.QueryPred)}}
	resT, err := core.BraveEntails(db, w.Rules, qT, core.Options{})
	if err != nil {
		t.Fatalf("translated: %v", err)
	}

	// The triangle is 3-colorable, so no stable model contains w.
	if braveASP || resNative.Entailed || resT.Entailed {
		t.Fatalf("triangle is 3-colorable: asp=%v native=%v watgd=%v (all should be false)",
			braveASP, resNative.Entailed, resT.Entailed)
	}
}

// TestTheorem15AgreementUncolorable repeats the three-way agreement on
// a 2-color triangle, where saturation wins and bad is bravely
// entailed.
func TestTheorem15AgreementUncolorable(t *testing.T) {
	src := `
node(a). node(b). node(c).
edge(a,b). edge(b,c). edge(a,c).
node(X) -> r(X) | g(X).
edge(X,Y), r(X), r(Y) -> w.
edge(X,Y), g(X), g(Y) -> w.
w, node(X) -> r(X).
w, node(X) -> g(X).
w -> bad.
`
	prog := parser.MustParse(src)
	db := prog.Database()
	q := logic.Query{Pos: []logic.Atom{logic.A("bad")}}

	resNative, err := core.BraveEntails(db, prog.Rules, q, core.Options{})
	if err != nil {
		t.Fatalf("native: %v", err)
	}
	if !resNative.Entailed {
		t.Fatalf("triangle is not 2-colorable: native engine should bravely entail bad")
	}

	w, err := transform.DatalogToWATGD(transform.DatalogQuery{Rules: prog.Rules, QueryPred: "bad"}, 0)
	if err != nil {
		t.Fatalf("DatalogToWATGD: %v", err)
	}
	if !classify.IsWeaklyAcyclic(w.Rules) {
		t.Fatalf("Theorem 15 translation must be weakly acyclic")
	}
	qT := logic.Query{Pos: []logic.Atom{logic.A(w.QueryPred)}}
	resT, err := core.BraveEntails(db, w.Rules, qT, core.Options{})
	if err != nil {
		t.Fatalf("translated: %v", err)
	}
	if !resT.Entailed {
		t.Fatalf("translated program should bravely entail the answer predicate")
	}
}
