// Package transform implements the paper's program transformations:
//
//   - EliminateDisjunction: the construction of Lemma 13 (Section 6),
//     which compiles a set of NDTGDs into non-disjunctive NTGDs by
//     guessing a disjunct index with an existential variable, inferring
//     the chosen disjunct, and adding stability rules so that an
//     already-satisfied disjunct supports the guess. It shows that
//     disjunction adds no complexity (Theorem 12).
//
//   - DatalogToWATGD: the construction behind Theorems 15/16
//     (Section 7.2), which translates a DATALOG¬,∨ query program into a
//     weakly-acyclic WATGD¬ program with the same cautious/brave
//     answers, by simulating disjunction with existential quantification
//     and stable negation over guessed predicate identifiers.
//
// Both constructions use the paper's false/aux idiom — the rule
// "false ∧ ¬aux → aux" makes every candidate model containing `false`
// unstable — rather than native integrity constraints.
package transform

import (
	"fmt"
	"sort"
	"strconv"

	"ntgd/internal/logic"
)

// freshNamer hands out predicate names that do not clash with a
// schema.
type freshNamer struct{ taken map[string]bool }

func newFreshNamer(rules []*logic.Rule, db *logic.FactStore) *freshNamer {
	n := &freshNamer{taken: make(map[string]bool)}
	for _, r := range rules {
		for p := range r.Preds() {
			n.taken[p] = true
		}
	}
	if db != nil {
		for _, p := range db.Preds() {
			n.taken[p] = true
		}
	}
	return n
}

func (n *freshNamer) name(base string) string {
	cand := base
	for i := 0; n.taken[cand]; i++ {
		cand = base + "_" + strconv.Itoa(i)
	}
	n.taken[cand] = true
	return cand
}

// DisjunctionFree is the output of EliminateDisjunction.
type DisjunctionFree struct {
	DB    *logic.FactStore
	Rules []*logic.Rule
	// FalsePred and AuxPred name the killing predicates.
	FalsePred, AuxPred string
}

// EliminateDisjunction compiles (D, Σ) with Σ ∈ TGD¬,∨ into (D', Σ')
// with Σ' ∈ TGD¬ such that (D,Σ) |=SMS q iff (D',Σ') |=SMS q for every
// NBCQ q over the original schema (Lemma 13). D' extends D with the
// disjunct-index constants idx_i(c_i) and nil(⋆).
func EliminateDisjunction(db *logic.FactStore, rules []*logic.Rule) (*DisjunctionFree, error) {
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	names := newFreshNamer(rules, db)
	maxDisj := 0
	for _, r := range rules {
		if len(r.Heads) > maxDisj {
			maxDisj = len(r.Heads)
		}
	}
	out := &DisjunctionFree{DB: db.Clone()}
	if maxDisj <= 1 {
		out.Rules = rules
		return out, nil
	}

	nilPred := names.name("nil")
	idxPred := make([]string, maxDisj)
	for i := range idxPred {
		idxPred[i] = names.name("idx" + strconv.Itoa(i+1))
	}
	out.FalsePred = names.name("false")
	out.AuxPred = names.name("aux")

	star := logic.C("star_0")
	out.DB.Add(logic.A(nilPred, star))
	for i, p := range idxPred {
		out.DB.Add(logic.A(p, logic.C("idxc"+strconv.Itoa(i+1))))
	}
	// false ∧ ¬aux → aux.
	out.Rules = append(out.Rules, &logic.Rule{
		Label: "killfalse",
		Body: []logic.Literal{
			logic.Pos(logic.A(out.FalsePred)),
			logic.Neg(logic.A(out.AuxPred)),
		},
		Heads: [][]logic.Atom{{logic.A(out.AuxPred)}},
	})

	for _, r := range rules {
		if len(r.Heads) == 1 {
			out.Rules = append(out.Rules, r)
			continue
		}
		tr, err := eliminateOne(r, names, nilPred, idxPred, out.FalsePred)
		if err != nil {
			return nil, err
		}
		out.Rules = append(out.Rules, tr...)
	}
	return out, nil
}

// eliminateOne builds Σ_guess ∪ Σ_infer ∪ Σ_stab for one NDTGD.
func eliminateOne(r *logic.Rule, names *freshNamer, nilPred string, idxPred []string, falsePred string) ([]*logic.Rule, error) {
	n := len(r.Heads)
	// Rename each disjunct's existential variables apart so the
	// concatenated Z tuple is well-defined.
	heads := make([][]logic.Atom, n)
	existOf := make([][]string, n)
	for i := range r.Heads {
		ren := make(logic.Subst)
		for _, z := range r.ExistVars(i) {
			ren[z] = logic.V(z + "__d" + strconv.Itoa(i))
		}
		heads[i] = ren.ApplyAtoms(r.Heads[i])
		for _, z := range r.ExistVars(i) {
			existOf[i] = append(existOf[i], z+"__d"+strconv.Itoa(i))
		}
	}
	// Frontier X: universal variables occurring in some head, in a
	// fixed order.
	pb := r.PosBodyVars()
	var frontier []string
	seen := map[string]bool{}
	var buf []string
	for i := range heads {
		for _, a := range heads[i] {
			buf = a.Vars(buf[:0])
			for _, v := range buf {
				if pb[v] && !seen[v] {
					seen[v] = true
					frontier = append(frontier, v)
				}
			}
		}
	}
	var zAll []string
	for i := range existOf {
		zAll = append(zAll, existOf[i]...)
	}
	tPred := names.name("t_" + r.Label)
	iVar, nVar := "I__idx", "N__nil"
	tAtom := func(ivar string, xs []string, zs []logic.Term) logic.Atom {
		args := make([]logic.Term, 0, 1+len(xs)+len(zs))
		args = append(args, logic.V(ivar))
		for _, x := range xs {
			args = append(args, logic.V(x))
		}
		args = append(args, zs...)
		return logic.A(tPred, args...)
	}
	zVars := func() []logic.Term {
		ts := make([]logic.Term, len(zAll))
		for i, z := range zAll {
			ts[i] = logic.V(z)
		}
		return ts
	}

	var out []*logic.Rule
	// Σ_guess 1: ϕ(X,Y) → ∃I∃Z tσ(I,X,Z).
	out = append(out, &logic.Rule{
		Label: r.Label + "_guess",
		Body:  r.Body,
		Heads: [][]logic.Atom{{tAtom(iVar, frontier, zVars())}},
	})
	// Σ_guess 2: tσ(I,X,Z) ∧ ¬idx1(I) ∧ … ∧ ¬idxn(I) → false.
	idxBody := []logic.Literal{logic.Pos(tAtom(iVar, frontier, zVars()))}
	for i := 0; i < n; i++ {
		idxBody = append(idxBody, logic.Neg(logic.A(idxPred[i], logic.V(iVar))))
	}
	out = append(out, &logic.Rule{
		Label: r.Label + "_idxchk",
		Body:  idxBody,
		Heads: [][]logic.Atom{{logic.A(falsePred)}},
	})
	// Σ_infer: tσ(I,X,Z) ∧ idx_i(I) → ψ_i(X,Z_i).
	for i := 0; i < n; i++ {
		out = append(out, &logic.Rule{
			Label: fmt.Sprintf("%s_infer%d", r.Label, i+1),
			Body: []logic.Literal{
				logic.Pos(tAtom(iVar, frontier, zVars())),
				logic.Pos(logic.A(idxPred[i], logic.V(iVar))),
			},
			Heads: [][]logic.Atom{heads[i]},
		})
	}
	// Σ_stab: ϕ ∧ ψ_i(X,Z_i) ∧ idx_i(I) ∧ nil(N) → tσ(I,X,N…Z_i…N).
	for i := 0; i < n; i++ {
		body := append([]logic.Literal(nil), r.Body...)
		for _, a := range heads[i] {
			body = append(body, logic.Pos(a))
		}
		body = append(body,
			logic.Pos(logic.A(idxPred[i], logic.V(iVar))),
			logic.Pos(logic.A(nilPred, logic.V(nVar))))
		zs := make([]logic.Term, len(zAll))
		for j, z := range zAll {
			mine := false
			for _, zi := range existOf[i] {
				if zi == z {
					mine = true
					break
				}
			}
			if mine {
				zs[j] = logic.V(z)
			} else {
				zs[j] = logic.V(nVar)
			}
		}
		out = append(out, &logic.Rule{
			Label: fmt.Sprintf("%s_stab%d", r.Label, i+1),
			Body:  body,
			Heads: [][]logic.Atom{{tAtom(iVar, frontier, zs)}},
		})
	}
	for _, rr := range out {
		if err := rr.Validate(); err != nil {
			return nil, fmt.Errorf("transform: generated rule invalid: %w", err)
		}
	}
	return out, nil
}

// DatalogQuery is a DATALOG¬,∨ query (Σ, q): an existential-free
// program whose head disjuncts are single atoms, plus an answer
// predicate not occurring in rule bodies.
type DatalogQuery struct {
	Rules     []*logic.Rule
	QueryPred string
}

// WATGDQuery is the translated weakly-acyclic query of Theorem 15/16.
type WATGDQuery struct {
	Rules []*logic.Rule
	// QueryPred is the fresh answer predicate q'.
	QueryPred string
	// ExtraFacts must be added to every input database (the paper puts
	// nothing in D for this construction; kept for symmetry).
	ExtraFacts []logic.Atom
}

// DatalogToWATGD translates a DATALOG¬,∨ query into a WATGD¬ query
// with the same answers under both cautious and brave stable model
// semantics (Theorems 15 and 16): predicates are simulated by guessed
// identifiers (→ ∃X pred_p(X), pairwise disjoint), and each
// disjunctive rule is compiled into guess/infer/stability rules over a
// fresh t_ρ predicate. As an optimization over the uniform
// construction, identifiers are introduced only for predicates that
// occur in a disjunctive head; the paper's correctness argument is
// unaffected.
func DatalogToWATGD(q DatalogQuery, arity int) (*WATGDQuery, error) {
	for _, r := range q.Rules {
		if r.HasExistentials() {
			return nil, fmt.Errorf("transform: rule %s has existentials; not a DATALOG¬,∨ rule", r.Label)
		}
		for _, d := range r.Heads {
			if len(d) != 1 {
				return nil, fmt.Errorf("transform: rule %s: DATALOG¬,∨ heads are disjunctions of single atoms", r.Label)
			}
		}
	}
	names := newFreshNamer(q.Rules, nil)
	out := &WATGDQuery{}
	falsePred := names.name("false")
	auxPred := names.name("aux")
	out.QueryPred = names.name(q.QueryPred + "_ans")

	// Identifier predicates for disjunctive-head predicates.
	needID := map[string]bool{}
	for _, r := range q.Rules {
		if len(r.Heads) > 1 {
			for _, d := range r.Heads {
				needID[d[0].Pred] = true
			}
		}
	}
	idPreds := make(map[string]string)
	var idList []string
	for p := range needID {
		idList = append(idList, p)
	}
	sort.Strings(idList)
	for _, p := range idList {
		idPreds[p] = names.name("pred_" + p)
	}
	// → ∃X pred_p(X) and pairwise disjointness.
	for _, p := range idList {
		out.Rules = append(out.Rules, &logic.Rule{
			Label: "id_" + p,
			Heads: [][]logic.Atom{{logic.A(idPreds[p], logic.V("X"))}},
		})
	}
	for i := 0; i < len(idList); i++ {
		for j := i + 1; j < len(idList); j++ {
			out.Rules = append(out.Rules, &logic.Rule{
				Label: fmt.Sprintf("iddisj_%s_%s", idList[i], idList[j]),
				Body: []logic.Literal{
					logic.Pos(logic.A(idPreds[idList[i]], logic.V("X"))),
					logic.Pos(logic.A(idPreds[idList[j]], logic.V("X"))),
				},
				Heads: [][]logic.Atom{{logic.A(falsePred)}},
			})
		}
	}
	if len(idList) > 0 {
		out.Rules = append(out.Rules, &logic.Rule{
			Label: "killfalse",
			Body: []logic.Literal{
				logic.Pos(logic.A(falsePred)),
				logic.Neg(logic.A(auxPred)),
			},
			Heads: [][]logic.Atom{{logic.A(auxPred)}},
		})
	}

	for _, r := range q.Rules {
		if len(r.Heads) == 1 {
			out.Rules = append(out.Rules, r)
			continue
		}
		// X: union of head variables, fixed order.
		var xs []string
		seen := map[string]bool{}
		var buf []string
		for _, d := range r.Heads {
			buf = d[0].Vars(buf[:0])
			for _, v := range buf {
				if !seen[v] {
					seen[v] = true
					xs = append(xs, v)
				}
			}
		}
		tPred := names.name("t_" + r.Label)
		zVar := "Z__id"
		tAtom := func() logic.Atom {
			args := make([]logic.Term, 0, 1+len(xs))
			args = append(args, logic.V(zVar))
			for _, x := range xs {
				args = append(args, logic.V(x))
			}
			return logic.A(tPred, args...)
		}
		// ϕ → ∃Z tρ(Z,X).
		out.Rules = append(out.Rules, &logic.Rule{
			Label: r.Label + "_guess",
			Body:  r.Body,
			Heads: [][]logic.Atom{{tAtom()}},
		})
		// tρ(Z,X) ∧ ¬pred_p1(Z) ∧ … → false.
		body := []logic.Literal{logic.Pos(tAtom())}
		for _, d := range r.Heads {
			body = append(body, logic.Neg(logic.A(idPreds[d[0].Pred], logic.V(zVar))))
		}
		out.Rules = append(out.Rules, &logic.Rule{
			Label: r.Label + "_idchk",
			Body:  body,
			Heads: [][]logic.Atom{{logic.A(falsePred)}},
		})
		// tρ(Z,X) ∧ pred_pi(Z) → pi(Xi) and the stability rules.
		for i, d := range r.Heads {
			out.Rules = append(out.Rules, &logic.Rule{
				Label: fmt.Sprintf("%s_infer%d", r.Label, i+1),
				Body: []logic.Literal{
					logic.Pos(tAtom()),
					logic.Pos(logic.A(idPreds[d[0].Pred], logic.V(zVar))),
				},
				Heads: [][]logic.Atom{{d[0]}},
			})
			sbody := append([]logic.Literal(nil), r.Body...)
			sbody = append(sbody,
				logic.Pos(d[0]),
				logic.Pos(logic.A(idPreds[d[0].Pred], logic.V(zVar))))
			out.Rules = append(out.Rules, &logic.Rule{
				Label: fmt.Sprintf("%s_stab%d", r.Label, i+1),
				Body:  sbody,
				Heads: [][]logic.Atom{{tAtom()}},
			})
		}
	}
	// q(X) → q'(X).
	qArgs := make([]logic.Term, arity)
	for i := range qArgs {
		qArgs[i] = logic.V("X" + strconv.Itoa(i))
	}
	out.Rules = append(out.Rules, &logic.Rule{
		Label: "anscopy",
		Body:  []logic.Literal{logic.Pos(logic.A(q.QueryPred, qArgs...))},
		Heads: [][]logic.Atom{{logic.A(out.QueryPred, qArgs...)}},
	})
	for _, rr := range out.Rules {
		if err := rr.Validate(); err != nil {
			return nil, fmt.Errorf("transform: generated rule invalid (%s): %w", rr.Label, err)
		}
	}
	return out, nil
}
