package transform_test

import (
	"fmt"
	"math/rand"
	"testing"

	"ntgd/internal/core"
	"ntgd/internal/parser"
	"ntgd/internal/transform"
)

// TestLemma13RandomAgreement: on random small disjunctive programs the
// native engine and the Lemma 13 elimination agree on model existence
// and on a probe query, under both reasoning modes.
func TestLemma13RandomAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("random Lemma 13 agreement is slow")
	}
	rng := rand.New(rand.NewSource(99))
	preds := []string{"p0", "p1", "p2"}
	consts := []string{"c0", "c1"}
	checked := 0
	for iter := 0; iter < 60 && checked < 12; iter++ {
		src := ""
		for i := 0; i < 1+rng.Intn(2); i++ {
			src += fmt.Sprintf("%s(%s).\n", preds[rng.Intn(len(preds))], consts[rng.Intn(len(consts))])
		}
		for i := 0; i < 1+rng.Intn(2); i++ {
			body := fmt.Sprintf("%s(X)", preds[rng.Intn(len(preds))])
			if rng.Intn(3) == 0 {
				body += fmt.Sprintf(", not %s(X)", preds[rng.Intn(len(preds))])
			}
			head := fmt.Sprintf("%s(X)", preds[rng.Intn(len(preds))])
			head += fmt.Sprintf(" | %s(X)", preds[rng.Intn(len(preds))])
			src += fmt.Sprintf("%s -> %s.\n", body, head)
		}
		prog, err := parser.Parse(src)
		if err != nil {
			continue
		}
		probe := fmt.Sprintf("?- %s(%s).", preds[rng.Intn(len(preds))], consts[rng.Intn(len(consts))])
		q := parser.MustParse(probe).Queries[0]
		db := prog.Database()
		elim, err := transform.EliminateDisjunction(db, prog.Rules)
		if err != nil {
			t.Fatalf("EliminateDisjunction: %v on\n%s", err, src)
		}
		for _, brave := range []bool{false, true} {
			var a, b core.QAResult
			if brave {
				a, err = core.BraveEntails(db, prog.Rules, q, core.Options{})
			} else {
				a, err = core.CautiousEntails(db, prog.Rules, q, core.Options{})
			}
			if err != nil {
				t.Fatalf("native: %v on\n%s", err, src)
			}
			if brave {
				b, err = core.BraveEntails(elim.DB, elim.Rules, q, core.Options{})
			} else {
				b, err = core.CautiousEntails(elim.DB, elim.Rules, q, core.Options{})
			}
			if err != nil {
				t.Fatalf("eliminated: %v on\n%s", err, src)
			}
			if a.Entailed != b.Entailed {
				t.Fatalf("iter %d brave=%v: native=%v eliminated=%v on\n%s query %s",
					iter, brave, a.Entailed, b.Entailed, src, probe)
			}
		}
		checked++
	}
	if checked < 8 {
		t.Fatalf("too few random programs checked: %d", checked)
	}
}
