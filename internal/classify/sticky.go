package classify

import (
	"sort"
	"strings"

	"ntgd/internal/logic"
)

// Marking is the result of the stickiness marking procedure (Section
// 4.2 and Figure 1). It records, for every rule, which body variables
// are marked, and globally which body positions carry a marked
// variable occurrence.
type Marking struct {
	// MarkedVars maps rule label -> set of marked body variables.
	MarkedVars map[string]map[string]bool
	// MarkedPositions is the set of positions at which some rule's
	// marked variable occurs in a body.
	MarkedPositions map[Position]bool
	rules           []*logic.Rule
}

// MarkVariables runs the inductive marking procedure on Σ⁺,∧ (negative
// literals converted to atoms, disjunction to conjunction, as
// prescribed for NTGDs in Section 4.2 / [1]):
//
//   - Base step: a variable occurring in the body of a rule σ but not in
//     every head atom of σ is marked in σ.
//   - Propagation: if a variable v occurs in the head of σ at a position
//     where some rule has a marked body occurrence, then v is marked
//     in σ.
func MarkVariables(rules []*logic.Rule) *Marking {
	m := &Marking{
		MarkedVars:      make(map[string]map[string]bool),
		MarkedPositions: make(map[Position]bool),
		rules:           rules,
	}
	for _, r := range rules {
		m.MarkedVars[r.Label] = make(map[string]bool)
	}

	bodyAtoms := func(r *logic.Rule) []logic.Atom {
		pos, neg := logic.SplitLiterals(r.Body)
		return append(append([]logic.Atom(nil), pos...), neg...)
	}

	mark := func(r *logic.Rule, v string) bool {
		if m.MarkedVars[r.Label][v] {
			return false
		}
		m.MarkedVars[r.Label][v] = true
		for _, a := range bodyAtoms(r) {
			for i, t := range a.Args {
				if t.Kind == logic.Var && t.Name == v {
					m.MarkedPositions[Position{a.Pred, i + 1}] = true
				}
			}
		}
		return true
	}

	// Base step.
	for _, r := range rules {
		head := mergedHead(r)
		var bodyVars []string
		seen := map[string]bool{}
		var buf []string
		for _, a := range bodyAtoms(r) {
			buf = a.Vars(buf[:0])
			for _, v := range buf {
				if !seen[v] {
					seen[v] = true
					bodyVars = append(bodyVars, v)
				}
			}
		}
		for _, v := range bodyVars {
			inEvery := len(head) > 0
			for _, ha := range head {
				found := false
				buf = ha.Vars(buf[:0])
				for _, hv := range buf {
					if hv == v {
						found = true
						break
					}
				}
				if !found {
					inEvery = false
					break
				}
			}
			if !inEvery {
				mark(r, v)
			}
		}
	}

	// Propagation to fixpoint.
	for changed := true; changed; {
		changed = false
		for _, r := range rules {
			head := mergedHead(r)
			for _, ha := range head {
				for i, t := range ha.Args {
					if t.Kind != logic.Var {
						continue
					}
					if m.MarkedPositions[Position{ha.Pred, i + 1}] {
						if mark(r, t.Name) {
							changed = true
						}
					}
				}
			}
		}
	}
	return m
}

// StickyViolation names a rule and a marked variable with two or more
// body occurrences, i.e. a violation of stickiness.
type StickyViolation struct {
	Rule     string
	Variable string
}

// Violations returns the stickiness violations under the marking: for
// each rule, marked variables occurring at least twice in the body.
func (m *Marking) Violations() []StickyViolation {
	var out []StickyViolation
	for _, r := range m.rules {
		pos, neg := logic.SplitLiterals(r.Body)
		count := make(map[string]int)
		var buf []string
		for _, a := range append(append([]logic.Atom(nil), pos...), neg...) {
			buf = a.Vars(buf[:0])
			for _, v := range buf {
				count[v]++
			}
		}
		var vars []string
		for v := range count {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		for _, v := range vars {
			if count[v] >= 2 && m.MarkedVars[r.Label][v] {
				out = append(out, StickyViolation{Rule: r.Label, Variable: v})
			}
		}
	}
	return out
}

// IsSticky reports whether the rule set is sticky (STGD¬ membership):
// no rule contains two occurrences of a marked variable.
func IsSticky(rules []*logic.Rule) bool {
	return len(MarkVariables(rules).Violations()) == 0
}

// String renders the marking as a human-readable report mirroring
// Figure 1: for each rule its marked variables, then the marked
// positions.
func (m *Marking) String() string {
	var b strings.Builder
	for _, r := range m.rules {
		b.WriteString(r.Label)
		b.WriteString(": ")
		b.WriteString(r.String())
		vars := make([]string, 0, len(m.MarkedVars[r.Label]))
		for v := range m.MarkedVars[r.Label] {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		b.WriteString("   marked: {")
		b.WriteString(strings.Join(vars, ","))
		b.WriteString("}\n")
	}
	poss := make([]string, 0, len(m.MarkedPositions))
	for p := range m.MarkedPositions {
		poss = append(poss, p.String())
	}
	sort.Strings(poss)
	b.WriteString("marked positions: {")
	b.WriteString(strings.Join(poss, ", "))
	b.WriteString("}\n")
	return b.String()
}
