// Package classify implements the syntactic decidability paradigms the
// paper studies: weak-acyclicity (via the position graph of Fagin et
// al., Definition 3), stickiness (via the marking procedure of Calì,
// Gottlob and Pieris, illustrated in Figure 1), and guardedness. All
// three notions are defined on Σ⁺ (respectively Σ⁺,∧): negative body
// literals are treated as positive atoms and disjunctive heads as
// conjunctions, exactly as prescribed in Sections 4.1–4.3 and 6.
package classify

import (
	"fmt"
	"sort"

	"ntgd/internal/logic"
)

// Position is an attribute position p[i] of an n-ary predicate p, with
// i ∈ [n] (1-based, as in the paper).
type Position struct {
	Pred string
	Idx  int
}

// String renders the position as p[i].
func (p Position) String() string { return fmt.Sprintf("%s[%d]", p.Pred, p.Idx) }

// Edge is an edge of the position graph. Special edges record that
// propagating a value into From's rule also creates a fresh value at
// To (an existential position).
type Edge struct {
	From, To Position
	Special  bool
	// Rule is the label of the rule that induced the edge.
	Rule string
}

// PositionGraph is the dependency graph PoG(Σ) of Definition 3.
type PositionGraph struct {
	Nodes []Position
	Edges []Edge

	adj map[Position][]int // node -> indexes into Edges (outgoing)
}

// BuildPositionGraph constructs PoG(Σ⁺,∧): for each rule, negative body
// literals are dropped and all head disjuncts are merged into one
// conjunction. For each universally quantified variable X occurring in
// the (merged) head and each body position π of X: a regular edge to
// every head position of X, and a special edge to every head position
// of an existential variable of the same rule.
func BuildPositionGraph(rules []*logic.Rule) *PositionGraph {
	g := &PositionGraph{adj: make(map[Position][]int)}
	nodeSet := make(map[Position]bool)
	addNode := func(p Position) {
		if !nodeSet[p] {
			nodeSet[p] = true
			g.Nodes = append(g.Nodes, p)
		}
	}
	edgeSeen := make(map[string]bool)
	addEdge := func(e Edge) {
		key := fmt.Sprintf("%s>%s>%v", e.From, e.To, e.Special)
		addNode(e.From)
		addNode(e.To)
		if edgeSeen[key] {
			return
		}
		edgeSeen[key] = true
		g.Edges = append(g.Edges, e)
		g.adj[e.From] = append(g.adj[e.From], len(g.Edges)-1)
	}

	for _, r := range rules {
		// Register every position so isolated ones appear as nodes.
		for _, a := range r.PosBody() {
			for i := range a.Args {
				addNode(Position{a.Pred, i + 1})
			}
		}
		head := mergedHead(r)
		for _, a := range head {
			for i := range a.Args {
				addNode(Position{a.Pred, i + 1})
			}
		}
		pb := r.PosBodyVars()
		// Head positions per variable, split by universal/existential.
		headPos := make(map[string][]Position)
		for _, a := range head {
			for i, t := range a.Args {
				if t.Kind == logic.Var {
					headPos[t.Name] = append(headPos[t.Name], Position{a.Pred, i + 1})
				}
			}
		}
		var existPos []Position
		for v, ps := range headPos {
			if !pb[v] {
				existPos = append(existPos, ps...)
			}
		}
		sort.Slice(existPos, func(i, j int) bool {
			return existPos[i].Pred < existPos[j].Pred ||
				(existPos[i].Pred == existPos[j].Pred && existPos[i].Idx < existPos[j].Idx)
		})
		// Body positions of each universal variable that occurs in the
		// head.
		for _, a := range r.PosBody() {
			for i, t := range a.Args {
				if t.Kind != logic.Var {
					continue
				}
				v := t.Name
				hps, occursInHead := headPos[v]
				if !occursInHead || !pb[v] {
					continue
				}
				from := Position{a.Pred, i + 1}
				for _, hp := range hps {
					addEdge(Edge{From: from, To: hp, Rule: r.Label})
				}
				for _, ep := range existPos {
					addEdge(Edge{From: from, To: ep, Special: true, Rule: r.Label})
				}
			}
		}
	}
	sort.Slice(g.Nodes, func(i, j int) bool {
		return g.Nodes[i].Pred < g.Nodes[j].Pred ||
			(g.Nodes[i].Pred == g.Nodes[j].Pred && g.Nodes[i].Idx < g.Nodes[j].Idx)
	})
	return g
}

// mergedHead returns the union of all head disjuncts (Σ⁺,∧ of
// Section 6). Constraints yield an empty head.
func mergedHead(r *logic.Rule) []logic.Atom {
	if len(r.Heads) == 1 {
		return r.Heads[0]
	}
	var out []logic.Atom
	for _, d := range r.Heads {
		out = append(out, d...)
	}
	return out
}

// reaches reports whether to is reachable from from (following edges of
// any kind), including via a non-empty path when from == to.
func (g *PositionGraph) reaches(from, to Position) bool {
	visited := make(map[Position]bool)
	stack := []Position{from}
	first := true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !first && n == to {
			return true
		}
		if !first {
			if visited[n] {
				continue
			}
			visited[n] = true
		}
		first = false
		for _, ei := range g.adj[n] {
			e := g.Edges[ei]
			if e.To == to {
				return true
			}
			if !visited[e.To] {
				stack = append(stack, e.To)
			}
		}
	}
	return false
}

// HasSpecialCycle reports whether some cycle contains a special edge —
// the negation of weak-acyclicity.
func (g *PositionGraph) HasSpecialCycle() bool {
	for _, e := range g.Edges {
		if e.Special && (e.To == e.From || g.reaches(e.To, e.From)) {
			return true
		}
	}
	return false
}

// Ranks computes the rank of every position: the maximum number of
// special edges on any path ending at the position (Fagin et al.'s
// termination argument for the weakly-acyclic chase). It returns
// (nil, false) if the graph has a cycle through a special edge, in
// which case ranks are unbounded.
func (g *PositionGraph) Ranks() (map[Position]int, bool) {
	if g.HasSpecialCycle() {
		return nil, false
	}
	rank := make(map[Position]int, len(g.Nodes))
	// Bellman-Ford style relaxation; path special-counts are bounded by
	// the number of special edges, so at most |Edges|+1 rounds settle.
	bound := 0
	for _, e := range g.Edges {
		if e.Special {
			bound++
		}
	}
	for round := 0; ; round++ {
		changed := false
		for _, e := range g.Edges {
			w := 0
			if e.Special {
				w = 1
			}
			if r := rank[e.From] + w; r > rank[e.To] {
				rank[e.To] = r
				changed = true
			}
		}
		if !changed {
			break
		}
		if round > len(g.Edges)+bound+1 {
			// Defensive: cannot happen when HasSpecialCycle is false.
			return nil, false
		}
	}
	return rank, true
}

// IsWeaklyAcyclic reports whether the rule set is weakly acyclic
// (WATGD¬ / WATGD¬,∨ membership test): no cycle of PoG(Σ⁺,∧) contains a
// special edge.
func IsWeaklyAcyclic(rules []*logic.Rule) bool {
	return !BuildPositionGraph(rules).HasSpecialCycle()
}

// MaxRank returns the maximum position rank of a weakly-acyclic rule
// set, and false if the set is not weakly acyclic.
func MaxRank(rules []*logic.Rule) (int, bool) {
	ranks, ok := BuildPositionGraph(rules).Ranks()
	if !ok {
		return 0, false
	}
	max := 0
	for _, r := range ranks {
		if r > max {
			max = r
		}
	}
	return max, true
}
