package classify

import (
	"ntgd/internal/logic"
)

// GuardOf returns a guard atom for the rule — a positive body atom
// containing every variable of the (whole) body — and whether one
// exists (Section 4.3: an NTGD is guarded if such an atom exists).
// Rules with empty bodies are trivially guarded.
func GuardOf(r *logic.Rule) (logic.Atom, bool) {
	need := r.BodyVars()
	if len(need) == 0 {
		if len(r.PosBody()) > 0 {
			return r.PosBody()[0], true
		}
		return logic.Atom{}, true
	}
	var buf []string
	for _, a := range r.PosBody() {
		buf = a.Vars(buf[:0])
		has := make(map[string]bool, len(buf))
		for _, v := range buf {
			has[v] = true
		}
		all := true
		for v := range need {
			if !has[v] {
				all = false
				break
			}
		}
		if all {
			return a, true
		}
	}
	return logic.Atom{}, false
}

// IsGuarded reports whether every rule of the set is guarded (GTGD¬
// membership).
func IsGuarded(rules []*logic.Rule) bool {
	for _, r := range rules {
		if _, ok := GuardOf(r); !ok {
			return false
		}
	}
	return true
}
