package classify

import (
	"fmt"
	"strings"

	"ntgd/internal/logic"
)

// Report summarizes the syntactic classification of a rule set along
// the three decidability paradigms the paper studies, plus derived
// data (position ranks, marking) used by the engines and benchmarks.
type Report struct {
	WeaklyAcyclic bool
	Sticky        bool
	Guarded       bool
	// Disjunctive reports whether some rule has a disjunctive head
	// (TGD¬,∨ vs TGD¬).
	Disjunctive bool
	// HasNegation reports whether some rule uses default negation.
	HasNegation bool
	// HasExistentials reports whether some rule has an existentially
	// quantified head variable.
	HasExistentials bool
	// MaxRank is the maximum position rank (meaningful only when
	// WeaklyAcyclic).
	MaxRank int
	// Ranks maps positions to ranks (nil unless WeaklyAcyclic).
	Ranks map[Position]int
	// Marking is the stickiness marking.
	Marking *Marking
	// StickyViolations lists the (rule, variable) pairs violating
	// stickiness (empty iff Sticky).
	StickyViolations []StickyViolation
	// UnguardedRules lists labels of rules without a guard.
	UnguardedRules []string
}

// Classify computes the full classification report for a rule set.
func Classify(rules []*logic.Rule) *Report {
	rep := &Report{}
	g := BuildPositionGraph(rules)
	if ranks, ok := g.Ranks(); ok {
		rep.WeaklyAcyclic = true
		rep.Ranks = ranks
		for _, r := range ranks {
			if r > rep.MaxRank {
				rep.MaxRank = r
			}
		}
	}
	rep.Marking = MarkVariables(rules)
	rep.StickyViolations = rep.Marking.Violations()
	rep.Sticky = len(rep.StickyViolations) == 0
	rep.Guarded = true
	for _, r := range rules {
		if _, ok := GuardOf(r); !ok {
			rep.Guarded = false
			rep.UnguardedRules = append(rep.UnguardedRules, r.Label)
		}
		if r.IsDisjunctive() {
			rep.Disjunctive = true
		}
		if r.HasNegation() {
			rep.HasNegation = true
		}
		if r.HasExistentials() {
			rep.HasExistentials = true
		}
	}
	return rep
}

// Class returns the paper's name for the most specific class the rule
// set provably belongs to under this report, e.g. "WATGD¬,∨" or
// "STGD¬" or "TGD" (fallback).
func (r *Report) Class() string {
	suffix := ""
	if r.HasNegation {
		suffix += "¬"
	}
	if r.Disjunctive {
		if suffix == "" {
			suffix = ","
		}
		suffix += ",∨"
		suffix = strings.Replace(suffix, ",,", ",", 1)
	}
	switch {
	case r.WeaklyAcyclic:
		return "WATGD" + suffix
	case r.Sticky:
		return "STGD" + suffix
	case r.Guarded:
		return "GTGD" + suffix
	default:
		return "TGD" + suffix
	}
}

// String renders a multi-line report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "weakly acyclic: %v", r.WeaklyAcyclic)
	if r.WeaklyAcyclic {
		fmt.Fprintf(&b, " (max rank %d)", r.MaxRank)
	}
	fmt.Fprintf(&b, "\nsticky:         %v", r.Sticky)
	if !r.Sticky {
		parts := make([]string, len(r.StickyViolations))
		for i, v := range r.StickyViolations {
			parts[i] = fmt.Sprintf("%s/%s", v.Rule, v.Variable)
		}
		fmt.Fprintf(&b, " (violations: %s)", strings.Join(parts, ", "))
	}
	fmt.Fprintf(&b, "\nguarded:        %v", r.Guarded)
	if !r.Guarded {
		fmt.Fprintf(&b, " (unguarded: %s)", strings.Join(r.UnguardedRules, ", "))
	}
	fmt.Fprintf(&b, "\nnegation: %v, disjunction: %v, existentials: %v\nclass: %s\n",
		r.HasNegation, r.Disjunctive, r.HasExistentials, r.Class())
	return b.String()
}
