package classify_test

import (
	"strings"
	"testing"

	"ntgd/internal/classify"
	"ntgd/internal/parser"
)

// Figure 1 of the paper: the first set is sticky, the second is not
// (the marked join variable Y occurs twice in the body of the second
// rule).
const fig1StickySet = `
t(X,Y,Z) -> s(Y,W).
r(X,Y), p(Y,Z) -> t(X,Y,W).
`

const fig1NonStickySet = `
t(X,Y,Z) -> s(X,W).
r(X,Y), p(Y,Z) -> t(X,Y,W).
`

// TestFigure1Marking regenerates Figure 1: the marking procedure and
// the sticky / non-sticky verdicts.
func TestFigure1Marking(t *testing.T) {
	sticky := parser.MustParse(fig1StickySet).Rules
	if !classify.IsSticky(sticky) {
		m := classify.MarkVariables(sticky)
		t.Fatalf("Figure 1(a), first set: should be sticky.\n%s", m)
	}

	nonSticky := parser.MustParse(fig1NonStickySet).Rules
	m := classify.MarkVariables(nonSticky)
	viol := m.Violations()
	if len(viol) == 0 {
		t.Fatalf("Figure 1(a), second set: should NOT be sticky.\n%s", m)
	}
	// The violation is Y in the second rule (Y is marked through the
	// propagation step and occurs twice in r(X,Y), p(Y,Z)).
	if viol[0].Rule != "r2" || viol[0].Variable != "Y" {
		t.Fatalf("expected violation r2/Y, got %+v", viol)
	}
	// Figure 1(b)'s propagation: in the second set, the body variables
	// Y and Z of r2 are marked, and X of r1 is marked (base step).
	if !m.MarkedVars["r1"]["Y"] || !m.MarkedVars["r1"]["Z"] {
		t.Fatalf("r1: Y and Z should be base-marked: %v", m.MarkedVars["r1"])
	}
	if !m.MarkedVars["r2"]["Y"] {
		t.Fatalf("r2: Y should be marked by propagation: %v", m.MarkedVars["r2"])
	}
}

func TestWeakAcyclicity(t *testing.T) {
	wa := parser.MustParse(`
person(X) -> hasFather(X,Y).
hasFather(X,Y) -> sameAs(Y,Y).
`).Rules
	if !classify.IsWeaklyAcyclic(wa) {
		t.Fatalf("the father program is weakly acyclic")
	}
	notWA := parser.MustParse(`
p(X) -> q(X,Y).
q(X,Y) -> p(Y).
`).Rules
	if classify.IsWeaklyAcyclic(notWA) {
		t.Fatalf("p→∃q, q→p cycles through a special edge")
	}
	// Regular cycles are fine.
	regular := parser.MustParse(`
e(X,Y) -> t(X,Y).
t(X,Y), e(Y,Z) -> t(X,Z).
`).Rules
	if !classify.IsWeaklyAcyclic(regular) {
		t.Fatalf("transitive closure has no special edges")
	}
}

func TestRanks(t *testing.T) {
	rules := parser.MustParse(`
a(X) -> b(X,Y).
b(X,Y) -> c(Y,Z).
`).Rules
	g := classify.BuildPositionGraph(rules)
	ranks, ok := g.Ranks()
	if !ok {
		t.Fatalf("weakly acyclic set must have finite ranks")
	}
	// a[1] rank 0; b[2] rank 1 (one special edge); c[2] rank 2.
	checks := map[classify.Position]int{
		{Pred: "a", Idx: 1}: 0,
		{Pred: "b", Idx: 2}: 1,
		{Pred: "c", Idx: 2}: 2,
	}
	for pos, want := range checks {
		if got := ranks[pos]; got != want {
			t.Errorf("rank(%s) = %d, want %d", pos, got, want)
		}
	}
	if max, ok := classify.MaxRank(rules); !ok || max != 2 {
		t.Errorf("MaxRank = %d/%v, want 2/true", max, ok)
	}
}

func TestGuardedness(t *testing.T) {
	guarded := parser.MustParse(`
g(X,Y), p(X), not q(Y) -> r(X).
person(X) -> hasFather(X,Y).
`).Rules
	if !classify.IsGuarded(guarded) {
		t.Fatalf("set should be guarded")
	}
	if a, ok := classify.GuardOf(guarded[0]); !ok || a.Pred != "g" {
		t.Fatalf("guard should be g(X,Y), got %v/%v", a, ok)
	}
	unguarded := parser.MustParse(`
p(X), q(Y) -> r(X,Y).
`).Rules
	if classify.IsGuarded(unguarded) {
		t.Fatalf("cartesian product rule is unguarded")
	}
}

// TestTheorem4and5Gadgets: the grid-building gadget families used by
// the undecidability proofs are accepted by the respective syntactic
// classes — sticky sets can express cartesian products, and guarded
// sets can grow unbounded guards.
func TestTheorem4and5Gadgets(t *testing.T) {
	stickyGrid := parser.MustParse(`
p(X), s(Y) -> t(X,Y).
t(X,Y) -> p(X).
`).Rules
	if !classify.IsSticky(stickyGrid) {
		t.Fatalf("the cartesian-product gadget must be sticky")
	}
	if classify.IsWeaklyAcyclic(parser.MustParse(`
node(X) -> succ(X,Y).
succ(X,Y) -> node(Y).
`).Rules) {
		t.Fatalf("the unbounded-successor gadget must violate weak-acyclicity")
	}
	guardedGrow := parser.MustParse(`
g(X,Y), not stop(Y) -> g(Y,Z).
`).Rules
	if !classify.IsGuarded(guardedGrow) {
		t.Fatalf("the growing-guard gadget must be guarded")
	}
}

func TestClassifyReport(t *testing.T) {
	rules := parser.MustParse(`
person(X) -> hasFather(X,Y).
hasFather(X,Y), not sameAs(Y,Y) -> abnormal(X).
`).Rules
	rep := classify.Classify(rules)
	if !rep.WeaklyAcyclic || !rep.HasNegation || !rep.HasExistentials || rep.Disjunctive {
		t.Fatalf("report flags wrong: %+v", rep)
	}
	if got := rep.Class(); got != "WATGD¬" {
		t.Fatalf("Class() = %q", got)
	}
	if !strings.Contains(rep.String(), "weakly acyclic: true") {
		t.Fatalf("String() = %q", rep.String())
	}
}

func TestPositionGraphEdges(t *testing.T) {
	rules := parser.MustParse(`t(X) -> u(X,Y).`).Rules
	g := classify.BuildPositionGraph(rules)
	var regular, special int
	for _, e := range g.Edges {
		if e.Special {
			special++
		} else {
			regular++
		}
	}
	// X: t[1] -> u[1] regular; t[1] -> u[2] special.
	if regular != 1 || special != 1 {
		t.Fatalf("edges: regular=%d special=%d, want 1/1", regular, special)
	}
}

// TestDisjunctionMergedForClassification: Σ⁺,∧ merges disjuncts.
func TestDisjunctionMergedForClassification(t *testing.T) {
	rules := parser.MustParse(`p(X) -> q(X) | r(X,Y).`).Rules
	g := classify.BuildPositionGraph(rules)
	found := false
	for _, e := range g.Edges {
		if e.Special && e.To.Pred == "r" && e.To.Idx == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("special edge into r[2] expected from the merged head")
	}
}
