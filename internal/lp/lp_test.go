package lp_test

import (
	"fmt"
	"math/rand"
	"testing"

	"ntgd/internal/core"
	"ntgd/internal/ground"
	"ntgd/internal/logic"
	"ntgd/internal/lp"
	"ntgd/internal/parser"
)

const fatherProgram = `
person(alice).
person(X) -> hasFather(X,Y).
hasFather(X,Y) -> sameAs(Y,Y).
hasFather(X,Y), hasFather(X,Z), not sameAs(Y,Z) -> abnormal(X).
`

// TestLPSkolemizedFatherExample reproduces Section 1's discussion: the
// LP approach yields exactly one stable model, containing the Skolem
// witness, and therefore (wrongly) entails ¬hasFather(alice, bob).
func TestLPSkolemizedFatherExample(t *testing.T) {
	prog := parser.MustParse(fatherProgram)
	db := prog.Database()
	res, err := lp.StableModels(db, prog.Rules, lp.Options{})
	if err != nil {
		t.Fatalf("StableModels: %v", err)
	}
	if len(res.Models) != 1 {
		t.Fatalf("LP approach: expected exactly one stable model, got %d", len(res.Models))
	}
	m := res.Models[0]
	if m.CountPred("hasFather") != 1 {
		t.Fatalf("expected a single hasFather atom, got %s", m.CanonicalString())
	}
	fa := m.ByPred("hasFather")[0]
	if fa.Args[1].Kind != logic.Func {
		t.Fatalf("LP witness must be a Skolem term, got %s", fa)
	}

	q := parser.MustParse("?- person(alice), not hasFather(alice,bob).").Queries[0]
	entailed, err := lp.CautiousEntails(db, prog.Rules, q, lp.Options{})
	if err != nil {
		t.Fatalf("CautiousEntails: %v", err)
	}
	if !entailed {
		t.Fatalf("the LP approach should (unintendedly) entail ¬hasFather(alice,bob)")
	}
}

// TestTheorem1AgreementHandPicked: on programs already Skolemized (or
// existential-free), SMS_LP = SMS_SO. We compare model sets produced
// by both pipelines on a few fixed programs.
func TestTheorem1AgreementHandPicked(t *testing.T) {
	programs := []string{
		// Choice between two atoms via cyclic negation.
		`a(1). a(X), not q(X) -> p(X). a(X), not p(X) -> q(X).`,
		// Stratified negation.
		`b(1). b(2). e(1,2). b(X), not e(X,X) -> loopfree(X).`,
		// Even loop: two stable models.
		`s. s, not p -> q. s, not q -> p.`,
		// Odd loop: no stable model.
		`s. s, not p -> p.`,
		// Positive recursion: unsupported atoms stay out.
		`r(1,2). r(2,3). r(X,Y) -> t(X,Y). t(X,Y), r(Y,Z) -> t(X,Z).`,
		// Skolemized existential (function term in the head).
		`person(alice). person(X) -> hasFather(X, f(X)). hasFather(X,Y) -> sameAs(Y,Y).`,
	}
	for i, src := range programs {
		src := src
		t.Run(fmt.Sprintf("program%d", i), func(t *testing.T) {
			compareLPvsSO(t, src)
		})
	}
}

// compareLPvsSO checks SMS_LP(Π) == SMS_SO(Π) as sets of atom sets.
func compareLPvsSO(t *testing.T, src string) {
	t.Helper()
	prog := parser.MustParse(src)
	if !ground.IsSkolemized(prog.Rules) {
		t.Fatalf("Theorem 1 comparison needs a Skolemized program")
	}
	db := prog.Database()

	lpRes, err := lp.StableModels(db, prog.Rules, lp.Options{})
	if err != nil {
		t.Fatalf("lp: %v", err)
	}
	soRes, err := core.StableModels(db, prog.Rules, core.Options{})
	if err != nil {
		t.Fatalf("so: %v", err)
	}

	lpSet := map[string]bool{}
	for _, m := range lpRes.Models {
		lpSet[m.CanonicalString()] = true
	}
	soSet := map[string]bool{}
	for _, m := range soRes.Models {
		soSet[m.CanonicalString()] = true
	}
	if len(lpSet) != len(soSet) {
		t.Fatalf("Theorem 1 violated on %q:\n  LP (%d): %v\n  SO (%d): %v", src, len(lpSet), keys(lpSet), len(soSet), keys(soSet))
	}
	for k := range lpSet {
		if !soSet[k] {
			t.Fatalf("Theorem 1 violated on %q: LP model %s missing from SO", src, k)
		}
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestTheorem1AgreementRandom compares the two pipelines on random
// existential-free normal programs (the class where both semantics are
// defined and must coincide).
func TestTheorem1AgreementRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("random agreement is slow")
	}
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 25; i++ {
		src := randomNormalProgram(rng)
		t.Run(fmt.Sprintf("rand%d", i), func(t *testing.T) {
			compareLPvsSO(t, src)
		})
	}
}

// randomNormalProgram generates a small existential-free normal
// program over unary predicates p0..p3 and constants c0..c2.
func randomNormalProgram(rng *rand.Rand) string {
	preds := []string{"p0", "p1", "p2", "p3"}
	consts := []string{"c0", "c1", "c2"}
	var out string
	nFacts := 1 + rng.Intn(3)
	for i := 0; i < nFacts; i++ {
		out += fmt.Sprintf("%s(%s).\n", preds[rng.Intn(len(preds))], consts[rng.Intn(len(consts))])
	}
	nRules := 1 + rng.Intn(4)
	for i := 0; i < nRules; i++ {
		// body: one positive literal with variable X, optionally one
		// more positive and one negative (all over X for safety).
		body := fmt.Sprintf("%s(X)", preds[rng.Intn(len(preds))])
		if rng.Intn(2) == 0 {
			body += fmt.Sprintf(", %s(X)", preds[rng.Intn(len(preds))])
		}
		if rng.Intn(2) == 0 {
			body += fmt.Sprintf(", not %s(X)", preds[rng.Intn(len(preds))])
		}
		head := fmt.Sprintf("%s(X)", preds[rng.Intn(len(preds))])
		out += fmt.Sprintf("%s -> %s.\n", body, head)
	}
	return out
}
