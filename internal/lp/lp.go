// Package lp implements the classical "LP approach" to stable model
// semantics for NTGDs (Section 3.1): existential head variables are
// eliminated by Skolemization, the resulting normal program is
// grounded over its derivable Herbrand base, and the standard stable
// model semantics for (ground) normal logic programs is applied.
//
// The paper's Theorem 1 shows that on Skolemized programs this
// coincides with the new SO-based semantics of internal/core, while
// Examples 2 and 4 show that applying it to NTGDs with genuine
// existentials loses the intended models (the Skolem term f(alice) can
// never equal bob). Both facts are exercised by the test suite.
package lp

import (
	"ntgd/internal/asp"
	"ntgd/internal/ground"
	"ntgd/internal/logic"
)

// Options configures the pipeline.
type Options struct {
	// Ground bounds the grounding phase.
	Ground ground.Options
	// Solve configures stable model enumeration.
	Solve asp.SolveOptions
	// MaxModels limits enumeration (0 = all).
	MaxModels int
}

// Result is the outcome of stable model computation under the LP
// approach.
type Result struct {
	// Models holds the stable models over the original vocabulary
	// (atoms may contain Skolem function terms).
	Models []*logic.FactStore
	// Grounding gives access to the intermediate ground program.
	Grounding *ground.Grounding
	Stats     asp.Stats
}

// StableModels computes the stable models of (D, Σ) under the LP
// approach: SMS_LP(Π_{D,Σ}).
func StableModels(db *logic.FactStore, rules []*logic.Rule, opt Options) (*Result, error) {
	sk := ground.Skolemize(rules)
	g, err := ground.Ground(db, sk, opt.Ground)
	if err != nil {
		return nil, err
	}
	res := &Result{Grounding: g}
	solveOpt := opt.Solve
	if solveOpt.MaxModels == 0 {
		solveOpt.MaxModels = opt.MaxModels
	}
	solveOpt.SeedWFS = true
	stats, err := asp.Solve(g.Prog, solveOpt, func(m asp.Model) bool {
		res.Models = append(res.Models, g.ModelStore(m))
		return opt.MaxModels == 0 || len(res.Models) < opt.MaxModels
	})
	res.Stats = stats
	if err != nil {
		return res, err
	}
	return res, nil
}

// CautiousEntails decides whether q holds in every LP-stable model.
func CautiousEntails(db *logic.FactStore, rules []*logic.Rule, q logic.Query, opt Options) (bool, error) {
	if err := q.Validate(); err != nil {
		return false, err
	}
	res, err := StableModels(db, rules, opt)
	if err != nil {
		return false, err
	}
	for _, m := range res.Models {
		if !q.Holds(m) {
			return false, nil
		}
	}
	return true, nil
}

// BraveEntails decides whether q holds in some LP-stable model.
func BraveEntails(db *logic.FactStore, rules []*logic.Rule, q logic.Query, opt Options) (bool, error) {
	if err := q.Validate(); err != nil {
		return false, err
	}
	res, err := StableModels(db, rules, opt)
	if err != nil {
		return false, err
	}
	for _, m := range res.Models {
		if q.Holds(m) {
			return true, nil
		}
	}
	return false, nil
}
