// Package lp implements the classical "LP approach" to stable model
// semantics for NTGDs (Section 3.1): existential head variables are
// eliminated by Skolemization, the resulting normal program is
// grounded over its derivable Herbrand base, and the standard stable
// model semantics for (ground) normal logic programs is applied.
//
// The paper's Theorem 1 shows that on Skolemized programs this
// coincides with the new SO-based semantics of internal/core, while
// Examples 2 and 4 show that applying it to NTGDs with genuine
// existentials loses the intended models (the Skolem term f(alice) can
// never equal bob). Both facts are exercised by the test suite.
package lp

import (
	"context"
	"errors"

	"ntgd/internal/asp"
	"ntgd/internal/engine"
	"ntgd/internal/ground"
	"ntgd/internal/logic"
)

// Options configures the pipeline.
type Options struct {
	// Ground bounds the grounding phase.
	Ground ground.Options
	// Solve configures stable model enumeration.
	Solve asp.SolveOptions
	// MaxModels limits enumeration (0 = all).
	MaxModels int
}

// Result is the outcome of stable model computation under the LP
// approach.
type Result struct {
	// Models holds the stable models over the original vocabulary
	// (atoms may contain Skolem function terms).
	Models []*logic.FactStore
	// Grounding gives access to the intermediate ground program.
	Grounding *ground.Grounding
	Stats     asp.Stats
}

// Compiled is the LP pipeline compiled for one program: rules
// Skolemized and the resulting normal program grounded over its
// derivable Herbrand base, once. Enumeration runs replay the ground
// program through the ASP solver without re-grounding. Compiled
// implements the engine.Engine interface.
type Compiled struct {
	g     *ground.Grounding
	solve asp.SolveOptions
}

// Compile Skolemizes and grounds the program. The grounding (and with
// it the witness space — Skolem terms only) is fixed here; later
// per-query constants cannot change it, which is exactly the
// Skolemization weakness the paper's Examples 2 and 4 exhibit.
func Compile(db *logic.FactStore, rules []*logic.Rule, opt Options) (*Compiled, error) {
	sk := ground.Skolemize(rules)
	g, err := ground.Ground(db, sk, opt.Ground)
	if err != nil {
		return nil, err
	}
	if err := g.Prog.Validate(); err != nil {
		return nil, err
	}
	solveOpt := opt.Solve
	solveOpt.SeedWFS = true
	solveOpt.MaxModels = 0         // enumeration is visitor-driven
	solveOpt.SkipValidation = true // validated once just above
	return &Compiled{g: g, solve: solveOpt}, nil
}

// Semantics implements engine.Engine.
func (c *Compiled) Semantics() string { return "lp" }

// Grounding exposes the intermediate ground program.
func (c *Compiled) Grounding() *ground.Grounding { return c.g }

// Enumerate streams the LP-stable models over the original vocabulary
// (atoms may contain Skolem function terms), implementing
// engine.Engine. Params.ExtraConstants is ignored: the witness space
// was fixed by Skolemization at compile time.
func (c *Compiled) Enumerate(ctx context.Context, _ engine.Params, visit func(*logic.FactStore) bool) (engine.Stats, bool, error) {
	var emitted int64
	stats, err := asp.SolveCtx(ctx, c.g.Prog, c.solve, func(m asp.Model) bool {
		emitted++
		return visit(c.g.ModelStore(m))
	})
	es := engine.Stats{
		Nodes:           stats.Nodes,
		Conflicts:       stats.Conflicts,
		StabilityChecks: stats.Checks,
		ModelsEmitted:   emitted,
	}
	exhausted := false
	if errors.Is(err, asp.ErrBudget) {
		err = engine.ErrBudget
		exhausted = true
	} else if err != nil && ctx.Err() != nil {
		exhausted = true
	}
	return es, exhausted, err
}

// StableModels computes the stable models of (D, Σ) under the LP
// approach: SMS_LP(Π_{D,Σ}).
func StableModels(db *logic.FactStore, rules []*logic.Rule, opt Options) (*Result, error) {
	c, err := Compile(db, rules, opt)
	if err != nil {
		return nil, err
	}
	res := &Result{Grounding: c.g}
	solveOpt := opt.Solve
	if solveOpt.MaxModels == 0 {
		solveOpt.MaxModels = opt.MaxModels
	}
	solveOpt.SeedWFS = true
	stats, err := asp.Solve(c.g.Prog, solveOpt, func(m asp.Model) bool {
		res.Models = append(res.Models, c.g.ModelStore(m))
		return opt.MaxModels == 0 || len(res.Models) < opt.MaxModels
	})
	res.Stats = stats
	if err != nil {
		return res, err
	}
	return res, nil
}

// CautiousEntails decides whether q holds in every LP-stable model.
func CautiousEntails(db *logic.FactStore, rules []*logic.Rule, q logic.Query, opt Options) (bool, error) {
	c, err := Compile(db, rules, opt)
	if err != nil {
		return false, err
	}
	res, err := engine.CautiousEntails(context.Background(), c, engine.Params{}, q)
	return res.Entailed, err
}

// BraveEntails decides whether q holds in some LP-stable model.
func BraveEntails(db *logic.FactStore, rules []*logic.Rule, q logic.Query, opt Options) (bool, error) {
	c, err := Compile(db, rules, opt)
	if err != nil {
		return false, err
	}
	res, err := engine.BraveEntails(context.Background(), c, engine.Params{}, q)
	return res.Entailed, err
}
