package lp_test

import (
	"fmt"
	"math/rand"
	"testing"

	"ntgd/internal/core"
	"ntgd/internal/lp"
	"ntgd/internal/parser"
)

// TestTheorem20DisjunctiveSkolemized: footnote 6 extends Theorem 1 to
// NDTGDs — on Skolemized (here existential-free) disjunctive programs
// the LP pipeline (ground disjunctive ASP with SAT minimality) and the
// native SO engine produce the same stable models.
func TestTheorem20DisjunctiveSkolemized(t *testing.T) {
	programs := []string{
		// Plain guess.
		`n(a). n(b). n(X) -> r(X) | g(X).`,
		// Guess + saturation (non-head-cycle-free behaviour).
		`n(a).
n(X) -> r(X) | g(X).
r(X) -> m.
g(X) -> m.
m, n(X) -> r(X).
m, n(X) -> g(X).`,
		// Disjunction interacting with negation.
		`item(a). item(b).
item(X), not sold(X) -> kept(X) | gifted(X).
gifted(X) -> happy.`,
		// Conjunctive disjuncts.
		`p(a). p(X) -> q(X), r(X) | s(X).`,
	}
	for i, src := range programs {
		src := src
		t.Run(fmt.Sprintf("program%d", i), func(t *testing.T) {
			prog := parser.MustParse(src)
			db := prog.Database()
			lpRes, err := lp.StableModels(db, prog.Rules, lp.Options{})
			if err != nil {
				t.Fatalf("lp: %v", err)
			}
			soRes, err := core.StableModels(db, prog.Rules, core.Options{})
			if err != nil {
				t.Fatalf("so: %v", err)
			}
			lpSet := map[string]bool{}
			for _, m := range lpRes.Models {
				lpSet[m.CanonicalString()] = true
			}
			if len(lpSet) != len(soRes.Models) {
				t.Fatalf("model counts differ: lp=%d so=%d on %q", len(lpSet), len(soRes.Models), src)
			}
			for _, m := range soRes.Models {
				if !lpSet[m.CanonicalString()] {
					t.Fatalf("SO model missing from LP: %s", m.CanonicalString())
				}
			}
		})
	}
}

// TestTheorem20Random extends the agreement check to random
// existential-free disjunctive programs.
func TestTheorem20Random(t *testing.T) {
	if testing.Short() {
		t.Skip("random disjunctive agreement is slow")
	}
	rng := rand.New(rand.NewSource(55))
	preds := []string{"p0", "p1", "p2"}
	consts := []string{"c0", "c1"}
	for iter := 0; iter < 20; iter++ {
		src := ""
		for i := 0; i < 1+rng.Intn(2); i++ {
			src += fmt.Sprintf("%s(%s).\n", preds[rng.Intn(len(preds))], consts[rng.Intn(len(consts))])
		}
		for i := 0; i < 1+rng.Intn(3); i++ {
			body := fmt.Sprintf("%s(X)", preds[rng.Intn(len(preds))])
			if rng.Intn(3) == 0 {
				body += fmt.Sprintf(", not %s(X)", preds[rng.Intn(len(preds))])
			}
			head := fmt.Sprintf("%s(X)", preds[rng.Intn(len(preds))])
			if rng.Intn(2) == 0 {
				head += fmt.Sprintf(" | %s(X)", preds[rng.Intn(len(preds))])
			}
			src += fmt.Sprintf("%s -> %s.\n", body, head)
		}
		prog, err := parser.Parse(src)
		if err != nil {
			continue
		}
		db := prog.Database()
		lpRes, err := lp.StableModels(db, prog.Rules, lp.Options{})
		if err != nil {
			t.Fatalf("lp: %v on\n%s", err, src)
		}
		soRes, err := core.StableModels(db, prog.Rules, core.Options{})
		if err != nil {
			t.Fatalf("so: %v on\n%s", err, src)
		}
		lpSet := map[string]bool{}
		for _, m := range lpRes.Models {
			lpSet[m.CanonicalString()] = true
		}
		soSet := map[string]bool{}
		for _, m := range soRes.Models {
			soSet[m.CanonicalString()] = true
		}
		if len(lpSet) != len(soSet) {
			t.Fatalf("iter %d: lp=%d so=%d on\n%s", iter, len(lpSet), len(soSet), src)
		}
		for k := range lpSet {
			if !soSet[k] {
				t.Fatalf("iter %d: LP model %s missing from SO on\n%s", iter, k, src)
			}
		}
	}
}
