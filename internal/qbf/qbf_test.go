package qbf

import (
	"math/rand"
	"testing"
)

func l(v string) Lit  { return Lit{Var: v} }
func nl(v string) Lit { return Lit{Var: v, Neg: true} }

func TestValidate(t *testing.T) {
	good := Formula{Exists: []string{"x"}, Forall: []string{"y"},
		Terms: []Term{{l("x"), l("y"), nl("x")}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid formula rejected: %v", err)
	}
	bad := Formula{Exists: []string{"x"}, Terms: []Term{{l("x"), l("z"), l("x")}}}
	if err := bad.Validate(); err == nil {
		t.Fatalf("unquantified variable accepted")
	}
	dup := Formula{Exists: []string{"x"}, Forall: []string{"x"}}
	if err := dup.Validate(); err == nil {
		t.Fatalf("doubly quantified variable accepted")
	}
}

func TestEvalMatrix(t *testing.T) {
	f := Formula{Exists: []string{"x", "y"},
		Terms: []Term{{l("x"), nl("y"), l("x")}}}
	if !f.EvalMatrix(Assignment{"x": true, "y": false}) {
		t.Fatalf("x ∧ ¬y ∧ x should hold")
	}
	if f.EvalMatrix(Assignment{"x": true, "y": true}) {
		t.Fatalf("matrix should fail when y is true")
	}
}

func TestEvalBruteHandPicked(t *testing.T) {
	cases := []struct {
		f    Formula
		want bool
	}{
		// ∃x: x — sat.
		{Formula{Exists: []string{"x"}, Terms: []Term{{l("x"), l("x"), l("x")}}}, true},
		// ∃x: x ∧ ¬x — unsat.
		{Formula{Exists: []string{"x"}, Terms: []Term{{l("x"), nl("x"), l("x")}}}, false},
		// ∀y: y ∨ ¬y — valid.
		{Formula{Forall: []string{"y"},
			Terms: []Term{{l("y"), l("y"), l("y")}, {nl("y"), nl("y"), nl("y")}}}, true},
		// ∃x∀y: (x∧y) ∨ (x∧¬y) — pick x.
		{Formula{Exists: []string{"x"}, Forall: []string{"y"},
			Terms: []Term{{l("x"), l("y"), l("y")}, {l("x"), nl("y"), nl("y")}}}, true},
		// ∃x∀y: x∧y — no.
		{Formula{Exists: []string{"x"}, Forall: []string{"y"},
			Terms: []Term{{l("x"), l("y"), l("y")}}}, false},
		// Empty matrix is false.
		{Formula{Exists: []string{"x"}}, false},
	}
	for i, tc := range cases {
		if got := tc.f.EvalBrute(); got != tc.want {
			t.Errorf("case %d (%s): brute = %v, want %v", i, tc.f, got, tc.want)
		}
		if got := tc.f.EvalSAT(); got != tc.want {
			t.Errorf("case %d (%s): sat = %v, want %v", i, tc.f, got, tc.want)
		}
	}
}

// TestEvalAgreement (property): the two evaluators agree on random
// instances.
func TestEvalAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		f := Random(rng, 1+rng.Intn(3), 1+rng.Intn(3), 1+rng.Intn(4))
		if err := f.Validate(); err != nil {
			t.Fatalf("Random produced invalid formula: %v", err)
		}
		if b, s := f.EvalBrute(), f.EvalSAT(); b != s {
			t.Fatalf("iter %d: brute=%v sat=%v on %s", i, b, s, f)
		}
	}
}

func TestNegate2QBFForall(t *testing.T) {
	// ∀x ∃∅: x (as a "3CNF" clause x∨x∨x) is falsifiable (x=false),
	// so its negation ∃x∀∅: ¬x must be satisfiable.
	neg := Negate2QBFForall([]string{"x"}, nil, []Term{{l("x"), l("x"), l("x")}})
	if !neg.EvalBrute() {
		t.Fatalf("negation should be satisfiable")
	}
	// ∀x: x∨¬x is valid, so the negation is unsatisfiable.
	neg2 := Negate2QBFForall([]string{"x"}, nil, []Term{{l("x"), nl("x"), l("x")}})
	if neg2.EvalBrute() {
		t.Fatalf("negation of a valid formula must be unsatisfiable")
	}
}

func TestStringRendering(t *testing.T) {
	f := Formula{Exists: []string{"x"}, Forall: []string{"y"},
		Terms: []Term{{l("x"), nl("y"), l("x")}}}
	got := f.String()
	want := "∃{x} ∀{y} (x & ~y & x)"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
