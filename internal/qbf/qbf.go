// Package qbf provides the 2-QBF substrate for the paper's lower-bound
// and application experiments (Sections 5.3 and 7.1): quantified
// Boolean formulas with one quantifier alternation, 2-QBF∃ formulas
// ∃X∀Y ψ(X,Y) with ψ in 3DNF (the exact shape used by the paper's
// ΠP2-hardness reduction), a deterministic random generator, and two
// reference evaluators (brute force, and existential enumeration with
// a SAT-based tautology oracle) against which the declarative
// encodings of internal/encodings are validated.
package qbf

import (
	"fmt"
	"math/rand"
	"strings"

	"ntgd/internal/sat"
)

// Lit is a Boolean literal over a named variable.
type Lit struct {
	Var string
	Neg bool
}

// String renders the literal, prefixing negations with "~".
func (l Lit) String() string {
	if l.Neg {
		return "~" + l.Var
	}
	return l.Var
}

// Term is a conjunction of three literals (one disjunct of the 3DNF
// matrix).
type Term [3]Lit

// String renders the term as (l1 & l2 & l3).
func (t Term) String() string {
	return "(" + t[0].String() + " & " + t[1].String() + " & " + t[2].String() + ")"
}

// Formula is a 2-QBF∃ formula ∃X ∀Y ∨ᵢ(ℓ¹ᵢ ∧ ℓ²ᵢ ∧ ℓ³ᵢ).
type Formula struct {
	Exists []string
	Forall []string
	Terms  []Term
}

// String renders the formula.
func (f Formula) String() string {
	parts := make([]string, len(f.Terms))
	for i, t := range f.Terms {
		parts[i] = t.String()
	}
	return fmt.Sprintf("∃{%s} ∀{%s} %s",
		strings.Join(f.Exists, ","), strings.Join(f.Forall, ","),
		strings.Join(parts, " | "))
}

// Validate checks that every literal's variable is quantified.
func (f Formula) Validate() error {
	q := make(map[string]bool)
	for _, v := range f.Exists {
		if q[v] {
			return fmt.Errorf("qbf: variable %s quantified twice", v)
		}
		q[v] = true
	}
	for _, v := range f.Forall {
		if q[v] {
			return fmt.Errorf("qbf: variable %s quantified twice", v)
		}
		q[v] = true
	}
	for _, t := range f.Terms {
		for _, l := range t {
			if !q[l.Var] {
				return fmt.Errorf("qbf: literal over unquantified variable %s", l.Var)
			}
		}
	}
	return nil
}

// Assignment maps variables to truth values.
type Assignment map[string]bool

// EvalMatrix evaluates the 3DNF matrix under a total assignment.
func (f Formula) EvalMatrix(a Assignment) bool {
	for _, t := range f.Terms {
		ok := true
		for _, l := range t {
			if a[l.Var] == l.Neg {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// EvalBrute decides satisfiability (∃X ∀Y ψ) by full enumeration;
// intended for small instances (≤ ~20 variables total).
func (f Formula) EvalBrute() bool {
	a := Assignment{}
	var forallOK func(i int) bool
	forallOK = func(i int) bool {
		if i == len(f.Forall) {
			return f.EvalMatrix(a)
		}
		for _, v := range []bool{false, true} {
			a[f.Forall[i]] = v
			if !forallOK(i + 1) {
				return false
			}
		}
		return true
	}
	var existsOK func(i int) bool
	existsOK = func(i int) bool {
		if i == len(f.Exists) {
			return forallOK(0)
		}
		for _, v := range []bool{false, true} {
			a[f.Exists[i]] = v
			if existsOK(i + 1) {
				return true
			}
		}
		return false
	}
	return existsOK(0)
}

// EvalSAT decides satisfiability by enumerating existential
// assignments and checking "∀Y ψ[x]" with a SAT oracle: ψ[x] is a
// tautology over Y iff its negation (a 3CNF over Y) is unsatisfiable.
func (f Formula) EvalSAT() bool {
	a := Assignment{}
	var exists func(i int) bool
	exists = func(i int) bool {
		if i == len(f.Exists) {
			return f.tautologyUnder(a)
		}
		for _, v := range []bool{false, true} {
			a[f.Exists[i]] = v
			if exists(i + 1) {
				return true
			}
		}
		return false
	}
	return exists(0)
}

// tautologyUnder checks ∀Y ψ[x] via UNSAT(¬ψ[x]).
func (f Formula) tautologyUnder(x Assignment) bool {
	s := sat.New()
	varID := map[string]int{}
	id := func(v string) int {
		if i, ok := varID[v]; ok {
			return i
		}
		i := s.NewVar()
		varID[v] = i
		return i
	}
	for _, t := range f.Terms {
		// ¬(ℓ1 ∧ ℓ2 ∧ ℓ3) = clause of complemented literals; fixed
		// existential literals simplify.
		clause := make([]int, 0, 3)
		termFalse := false
		for _, l := range t {
			if val, fixed := x[l.Var]; fixed {
				if val == l.Neg {
					// ℓ is false: the term is false; ¬term is true —
					// the clause is satisfied, skip it.
					termFalse = true
					break
				}
				continue // ℓ is true: drop from the clause
			}
			v := id(l.Var)
			if l.Neg {
				clause = append(clause, v)
			} else {
				clause = append(clause, -v)
			}
		}
		if termFalse {
			continue
		}
		s.AddClause(clause...) // possibly empty = term is true: UNSAT
	}
	return !s.Solve()
}

// Random generates a deterministic pseudo-random 2-QBF∃ instance with
// nExists existential variables x1..xn, nForall universal variables
// y1..ym, and nTerms 3DNF terms.
func Random(rng *rand.Rand, nExists, nForall, nTerms int) Formula {
	f := Formula{}
	var all []string
	for i := 1; i <= nExists; i++ {
		v := fmt.Sprintf("x%d", i)
		f.Exists = append(f.Exists, v)
		all = append(all, v)
	}
	for i := 1; i <= nForall; i++ {
		v := fmt.Sprintf("y%d", i)
		f.Forall = append(f.Forall, v)
		all = append(all, v)
	}
	for i := 0; i < nTerms; i++ {
		var t Term
		for j := 0; j < 3; j++ {
			t[j] = Lit{Var: all[rng.Intn(len(all))], Neg: rng.Intn(2) == 1}
		}
		f.Terms = append(f.Terms, t)
	}
	return f
}

// Negate2QBFForall converts a 2-QBF∀ formula ∀X∃Y ψ' into the
// equivalent statement "¬(∃X∀Y ¬ψ')": the returned 2-QBF∃ formula is
// satisfiable iff the original 2-QBF∀ formula is falsifiable. Callers
// evaluating universal formulas should negate the verdict. ψ' must be
// given in 3CNF (clauses of three literals); its negation is the 3DNF
// matrix of the result.
func Negate2QBFForall(forallVars, existsVars []string, clauses []Term) Formula {
	neg := make([]Term, len(clauses))
	for i, c := range clauses {
		neg[i] = Term{
			Lit{Var: c[0].Var, Neg: !c[0].Neg},
			Lit{Var: c[1].Var, Neg: !c[1].Neg},
			Lit{Var: c[2].Var, Neg: !c[2].Neg},
		}
	}
	return Formula{Exists: forallVars, Forall: existsVars, Terms: neg}
}
