package logic

import (
	"strings"
	"testing"
)

func progFixture() *Program {
	return &Program{
		Facts: []Atom{A("p", C("a")), A("q", C("b"), C("a"))},
		Rules: []*Rule{
			NewRule("r1", []Literal{Pos(A("p", V("X")))}, []Atom{A("s", V("X"), V("Y"))}),
		},
		Queries: []Query{{Pos: []Atom{A("s", V("X"), V("Y"))}}},
	}
}

func TestProgramDatabase(t *testing.T) {
	db := progFixture().Database()
	if db.Len() != 2 || !db.Has(A("p", C("a"))) {
		t.Fatalf("Database wrong: %s", db.CanonicalString())
	}
}

func TestProgramSchema(t *testing.T) {
	schema, err := progFixture().Schema()
	if err != nil {
		t.Fatalf("Schema: %v", err)
	}
	if schema["p"] != 1 || schema["q"] != 2 || schema["s"] != 2 {
		t.Fatalf("Schema = %v", schema)
	}
	clash := &Program{Facts: []Atom{A("p", C("a")), A("p", C("a"), C("b"))}}
	if _, err := clash.Schema(); err == nil {
		t.Fatalf("arity clash should be detected")
	}
}

func TestProgramActiveDomain(t *testing.T) {
	dom := progFixture().ActiveDomain()
	if len(dom) != 2 || dom[0].Name != "a" || dom[1].Name != "b" {
		t.Fatalf("ActiveDomain = %v", dom)
	}
}

func TestProgramStringRendersAll(t *testing.T) {
	s := progFixture().String()
	for _, frag := range []string{"p(a).", "q(b,a).", "p(X) -> s(X,Y).", "?- s(X,Y)."} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() missing %q:\n%s", frag, s)
		}
	}
}

func TestProgramValidateRejectsNullFacts(t *testing.T) {
	p := &Program{Facts: []Atom{A("p", N("n1"))}}
	if err := p.Validate(); err == nil {
		t.Fatalf("null in database must be rejected")
	}
}

func TestQueryConstants(t *testing.T) {
	q := Query{
		Pos: []Atom{A("p", C("a"), V("X"))},
		Neg: []Atom{A("q", C("b"), V("X"))},
	}
	cs := q.Constants()
	if len(cs) != 2 {
		t.Fatalf("Constants = %v", cs)
	}
}

func TestSubstHelpers(t *testing.T) {
	s := Subst{"X": C("a")}
	c := s.Clone()
	c["Y"] = C("b")
	if _, leaked := s["Y"]; leaked {
		t.Fatalf("Clone not isolated")
	}
	l := s.ApplyLiteral(Neg(A("p", V("X"), V("Z"))))
	if !l.Neg || l.Atom.Args[0].Name != "a" || l.Atom.Args[1].Kind != Var {
		t.Fatalf("ApplyLiteral wrong: %v", l)
	}
	if got := s.String(); got != "{X->a}" {
		t.Fatalf("String = %q", got)
	}
}

func TestRenameNulls(t *testing.T) {
	a := A("p", N("n1"), F("f", N("n2")), C("c"))
	out := RenameNulls(a, map[string]string{"n1": "m1", "n2": "m2"})
	if out.Args[0].Name != "m1" || out.Args[1].Args[0].Name != "m2" || out.Args[2].Name != "c" {
		t.Fatalf("RenameNulls wrong: %v", out)
	}
	// Unknown labels survive.
	out2 := RenameNulls(a, map[string]string{})
	if out2.Args[0].Name != "n1" {
		t.Fatalf("unmapped null should be kept")
	}
}

func TestViolationReporting(t *testing.T) {
	r := NewRule("r", []Literal{Pos(A("p", V("X")))}, []Atom{A("q", V("X"))})
	s := StoreOf(A("p", C("a")), A("p", C("b")), A("q", C("a")))
	vs := FindViolations([]*Rule{r}, s, 0)
	if len(vs) != 1 || vs[0].Hom["X"].Name != "b" {
		t.Fatalf("violations = %+v", vs)
	}
	vsCapped := FindViolations([]*Rule{r}, StoreOf(A("p", C("a")), A("p", C("b"))), 1)
	if len(vsCapped) != 1 {
		t.Fatalf("cap ignored: %d", len(vsCapped))
	}
}
