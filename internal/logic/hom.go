package logic

// This file implements homomorphism search: finding substitutions h such
// that h(pos) ⊆ store and, for the closed-world reading used throughout
// the paper, h(neg) ∩ store = ∅. It is the workhorse behind trigger
// detection in the chase and the stable model search, model checking,
// and (normal) conjunctive query evaluation.

// HomVisitor receives one homomorphism; returning false stops the
// search.
type HomVisitor func(Subst) bool

// FindHoms enumerates every substitution h extending init such that
// h(pos[i]) ∈ store for all i and h(neg[j]) ∉ store for all j, invoking
// fn for each. Every variable of neg must occur in pos or be bound by
// init (safety); otherwise negative literals with unbound variables are
// evaluated only for their bound instances, which matches the safe
// fragment used in the paper. The substitutions passed to fn are
// reused between invocations: clone them if they escape. FindHoms
// reports whether the enumeration ran to completion (i.e. fn never
// returned false).
func FindHoms(pos, neg []Atom, store *FactStore, init Subst, fn HomVisitor) bool {
	h := init.Clone()
	order := orderAtoms(pos, h)
	return extendHom(order, 0, neg, store, h, fn)
}

// ExistsHom reports whether at least one homomorphism exists (see
// FindHoms for the semantics of pos/neg/init).
func ExistsHom(pos, neg []Atom, store *FactStore, init Subst) bool {
	found := false
	FindHoms(pos, neg, store, init, func(Subst) bool {
		found = true
		return false
	})
	return found
}

// orderAtoms returns the atoms in a join order chosen greedily: start
// from the atom with the fewest candidate facts, then repeatedly pick
// the atom sharing the most variables with those already placed
// (breaking ties by candidate count). This is a standard lightweight
// heuristic that keeps backtracking shallow on the rule bodies arising
// in practice.
func orderAtoms(pos []Atom, init Subst) []Atom {
	if len(pos) <= 1 {
		return pos
	}
	remaining := append([]Atom(nil), pos...)
	bound := make(map[string]bool, len(init))
	for v := range init {
		bound[v] = true
	}
	ordered := make([]Atom, 0, len(pos))
	var buf []string
	for len(remaining) > 0 {
		best, bestScore := 0, -1<<30
		for i, a := range remaining {
			buf = a.Vars(buf[:0])
			sharing := 0
			for _, v := range buf {
				if bound[v] {
					sharing++
				}
			}
			// Prefer high sharing; among equal sharing prefer earlier
			// (stable, deterministic).
			score := sharing * 1000
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		a := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		ordered = append(ordered, a)
		buf = a.Vars(buf[:0])
		for _, v := range buf {
			bound[v] = true
		}
	}
	return ordered
}

func extendHom(pos []Atom, i int, neg []Atom, store *FactStore, h Subst, fn HomVisitor) bool {
	if i == len(pos) {
		for _, n := range neg {
			g := h.ApplyAtom(n)
			if store.Has(g) {
				return true // blocked: this h is not a solution, keep searching
			}
		}
		return fn(h)
	}
	pattern := pos[i]
	for _, cand := range store.ByPred(pattern.Pred) {
		trail := make([]string, 0, len(pattern.Args))
		if matchAtomTrail(h, pattern, cand, &trail) {
			if !extendHom(pos, i+1, neg, store, h, fn) {
				undo(h, trail)
				return false
			}
		}
		undo(h, trail)
	}
	return true
}

// matchAtomTrail is MatchAtom with an undo trail: variables newly bound
// are appended to *trail so the caller can roll back.
func matchAtomTrail(h Subst, pattern, ground Atom, trail *[]string) bool {
	if pattern.Pred != ground.Pred || len(pattern.Args) != len(ground.Args) {
		return false
	}
	for i := range pattern.Args {
		if !matchTermTrail(h, pattern.Args[i], ground.Args[i], trail) {
			return false
		}
	}
	return true
}

func matchTermTrail(h Subst, pattern, ground Term, trail *[]string) bool {
	switch pattern.Kind {
	case Var:
		if bound, ok := h[pattern.Name]; ok {
			return bound.Equal(ground)
		}
		h[pattern.Name] = ground
		*trail = append(*trail, pattern.Name)
		return true
	case Func:
		if ground.Kind != Func || ground.Name != pattern.Name || len(ground.Args) != len(pattern.Args) {
			return false
		}
		for i := range pattern.Args {
			if !matchTermTrail(h, pattern.Args[i], ground.Args[i], trail) {
				return false
			}
		}
		return true
	default:
		return pattern.Equal(ground)
	}
}

func undo(h Subst, trail []string) {
	for _, v := range trail {
		delete(h, v)
	}
}

// MapsTo reports whether there is a homomorphism from the atom set src
// to the atom set dst (both possibly containing nulls; nulls in src are
// treated as variables, per the standard "homomorphism between
// instances" notion used for the restricted chase and BCQ evaluation
// over instances with nulls). Constants are fixed.
func MapsTo(src []Atom, dst *FactStore) bool {
	vars := make(map[string]string) // null label -> fresh var name
	pats := make([]Atom, len(src))
	for i, a := range src {
		pats[i] = nullsToVars(a, vars)
	}
	return ExistsHom(pats, nil, dst, Subst{})
}

func nullsToVars(a Atom, ren map[string]string) Atom {
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		args[i] = nullsToVarsTerm(t, ren)
	}
	return Atom{Pred: a.Pred, Args: args}
}

func nullsToVarsTerm(t Term, ren map[string]string) Term {
	switch t.Kind {
	case Null:
		v, ok := ren[t.Name]
		if !ok {
			v = "$null_" + t.Name
			ren[t.Name] = v
		}
		return Term{Kind: Var, Name: v}
	case Func:
		args := make([]Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = nullsToVarsTerm(a, ren)
		}
		return Term{Kind: Func, Name: t.Name, Args: args}
	default:
		return t
	}
}
