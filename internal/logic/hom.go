package logic

import "sort"

// This file implements homomorphism search: finding substitutions h such
// that h(pos) ⊆ store and, for the closed-world reading used throughout
// the paper, h(neg) ∩ store = ∅. It is the workhorse behind trigger
// detection in the chase and the stable model search, model checking,
// and (normal) conjunctive query evaluation.

// HomVisitor receives one homomorphism; returning false stops the
// search.
type HomVisitor func(Subst) bool

// FindHoms enumerates every substitution h extending init such that
// h(pos[i]) ∈ store for all i and h(neg[j]) ∉ store for all j, invoking
// fn for each. Every variable of neg must occur in pos or be bound by
// init (safety); otherwise negative literals with unbound variables are
// evaluated only for their bound instances, which matches the safe
// fragment used in the paper. The substitutions passed to fn are
// reused between invocations: clone them if they escape. FindHoms
// reports whether the enumeration ran to completion (i.e. fn never
// returned false).
//
// Candidates for each body atom are drawn from the store's
// (predicate, position, term) posting lists whenever a position is
// ground under the substitution built so far; unconstrained atoms fall
// back to the per-predicate scan. Body atoms are visited in the greedy
// selectivity order computed by the join planner (see plan.go; when
// planning is toggled off they are visited in written order), so hom
// emission order is not part of the contract. naiveFindHoms preserves
// the plain scan path as the differential-test oracle; callers joining
// the same body repeatedly should hold a BodyPlans to amortize the
// per-call planning.
func FindHoms(pos, neg []Atom, store *FactStore, init Subst, fn HomVisitor) bool {
	h := init.Clone()
	pats := make([]pat, len(pos))
	for i, a := range pos {
		pats[i] = pat{atom: a, lo: 0, hi: store.Len()}
	}
	if !joinPlanningOff.Load() {
		planOrder(pats, nil, 0, init, store)
	}
	hs := &homSearch{store: store, neg: neg, fn: fn, pats: pats}
	return hs.extend(0, h)
}

// ExistsHom reports whether at least one homomorphism exists (see
// FindHoms for the semantics of pos/neg/init).
func ExistsHom(pos, neg []Atom, store *FactStore, init Subst) bool {
	found := false
	FindHoms(pos, neg, store, init, func(Subst) bool {
		found = true
		return false
	})
	return found
}

// FindHomsFrom is the semi-naive variant of FindHoms: it enumerates
// exactly those homomorphisms that use at least one store atom with
// index ≥ from for a positive body atom (the "delta" of a growing
// store). Each such homomorphism is produced exactly once: it is keyed
// by the last body position (in pos order) matched inside the delta —
// that atom ranges over [from, Len), later atoms over [0, from), and
// earlier atoms over the full store. With from <= 0 it degenerates to
// FindHoms. Fixpoint loops call FindHoms once on the initial store and
// FindHomsFrom with the previous round's high-water mark afterwards,
// turning O(rounds × store) re-scans into O(new facts) work.
func FindHomsFrom(pos, neg []Atom, store *FactStore, from int, init Subst, fn HomVisitor) bool {
	if from <= 0 {
		return FindHoms(pos, neg, store, init, fn)
	}
	n := store.Len()
	if from >= n || len(pos) == 0 {
		// Empty delta, or no positive atom to cover it: nothing new.
		return true
	}
	for j := range pos {
		pats := make([]pat, 0, len(pos))
		// The seed atom goes first: the delta window is the most
		// selective constraint available, and it anchors the plan.
		pats = append(pats, pat{atom: pos[j], lo: from, hi: n})
		for k := range pos {
			switch {
			case k < j:
				pats = append(pats, pat{atom: pos[k], lo: 0, hi: n})
			case k > j:
				pats = append(pats, pat{atom: pos[k], lo: 0, hi: from})
			}
		}
		if !joinPlanningOff.Load() {
			planOrder(pats, nil, 1, init, store)
		}
		h := init.Clone()
		hs := &homSearch{store: store, neg: neg, fn: fn, pats: pats}
		if !hs.extend(0, h) {
			return false
		}
	}
	return true
}

// pat is one positive body atom together with its admissible window of
// store indices [lo, hi): a candidate fact is only considered when its
// insertion rank falls inside the window. Full searches use [0, Len);
// the semi-naive seeding of FindHomsFrom narrows windows to address
// the delta of a growing store.
type pat struct {
	atom   Atom
	lo, hi int
}

// candidateEstimate upper-bounds the number of candidate facts for the
// pattern: the predicate count within the window, improved by the
// posting list of any argument already ground under init.
func candidateEstimate(p pat, init Subst, store *FactStore) int {
	pid, ok := store.syms.LookupPred(p.atom.Pred)
	if !ok {
		return 0
	}
	est := store.countPredWindow(pid, p.lo, p.hi)
	for i, t := range p.atom.Args {
		if !termBoundUnder(init, t) {
			continue
		}
		tid, ok := store.syms.lookupBound(init, t)
		if !ok {
			return 0 // the term was never interned: no fact can match
		}
		if n := store.postingsCount(pid, i, tid, p.lo, p.hi); n < est {
			est = n
		}
	}
	return est
}

// homSearch carries the state of one FindHoms enumeration; scratch
// buffers are reused across backtracking steps to keep the hot path
// allocation-free.
type homSearch struct {
	store *FactStore
	neg   []Atom
	fn    HomVisitor
	pats  []pat
	// per-depth scratch: candidate intersection buffer and undo trail.
	scratch [][]uint32
	trails  [][]string
	keyBuf  []byte // packed-key probe scratch, reused across probes
}

// probeBound resolves the index of h(a) (which the caller established
// is ground under h) via a packed-key probe; a symbol miss means h(a)
// cannot be in the store.
func (hs *homSearch) probeBound(h Subst, a Atom) (int, bool) {
	key, ok := hs.store.syms.appendBoundAtomKey(h, a, hs.keyBuf[:0])
	hs.keyBuf = key[:0]
	if !ok {
		return 0, false
	}
	return hs.store.lookupPacked(key)
}

func (hs *homSearch) extend(i int, h Subst) bool {
	if i == len(hs.pats) {
		for _, n := range hs.neg {
			if atomBoundUnder(h, n) {
				if _, ok := hs.probeBound(h, n); ok {
					return true // blocked: this h is not a solution, keep searching
				}
			}
			// Unbound variables left in a negative literal: only bound
			// instances are evaluated (safe fragment), nothing blocks.
		}
		return hs.fn(h)
	}
	for len(hs.scratch) <= i {
		hs.scratch = append(hs.scratch, nil)
		hs.trails = append(hs.trails, nil)
	}
	p := hs.pats[i]
	// Fast path: a pattern fully ground under h needs one hash probe,
	// not a posting-list walk. This is the common case for restricted
	// chase head checks and negative-body-style filters.
	if atomBoundUnder(h, p.atom) {
		if idx, ok := hs.probeBound(h, p.atom); ok && idx >= p.lo && idx < p.hi {
			return hs.extend(i+1, h) // no new bindings to undo
		}
		return true
	}
	cands := hs.candidates(i, p, h)
	trail := hs.trails[i][:0]
	for _, idx := range cands {
		trail = trail[:0]
		if matchAtomTrail(h, p.atom, hs.store.atomAt(int(idx)), &trail) {
			if !hs.extend(i+1, h) {
				undo(h, trail)
				hs.trails[i] = trail
				return false
			}
		}
		undo(h, trail)
	}
	hs.trails[i] = trail
	return true
}

// candidates returns the store indices to try for pattern i under h:
// the posting lists of all argument positions ground under h,
// intersected in place into the depth's scratch buffer (smallest list
// first), clipped to the pattern's window; with no ground position it
// falls back to the per-predicate index. Snapshot layers take a merged
// path instead (see candidatesLayered).
func (hs *homSearch) candidates(depth int, p pat, h Subst) []uint32 {
	if hs.store.parent != nil {
		return hs.candidatesLayered(depth, p, h)
	}
	pid, ok := hs.store.syms.LookupPred(p.atom.Pred)
	if !ok {
		return nil
	}
	var listsBuf [4][]uint32
	lists := listsBuf[:0]
	for i, t := range p.atom.Args {
		if !termBoundUnder(h, t) {
			continue
		}
		tid, ok := hs.store.syms.lookupBound(h, t)
		if !ok {
			return nil // the term was never interned: no fact matches
		}
		l := hs.store.postings(pid, i, tid)
		if len(l) == 0 {
			return nil
		}
		lists = append(lists, l)
	}
	if len(lists) == 0 {
		return clipWindowU32(hs.store.predIndices(pid), p.lo, p.hi)
	}
	// Smallest posting list first: the intersection never grows.
	sort.Slice(lists, func(a, b int) bool { return len(lists[a]) < len(lists[b]) })
	out := clipWindowU32(lists[0], p.lo, p.hi)
	if len(lists) == 1 {
		return out
	}
	buf := append(hs.scratch[depth][:0], out...)
	for _, l := range lists[1:] {
		buf = intersectSorted(buf, clipWindowU32(l, p.lo, p.hi))
		if len(buf) == 0 {
			break
		}
	}
	hs.scratch[depth] = buf
	return buf
}

// candidatesLayered is the snapshot-chain variant of candidates:
// posting lists are split across layers, so instead of intersecting
// shared slices it materializes only the most selective list (the
// per-predicate index or one ground position's postings) into the
// depth's scratch buffer; matchAtomTrail filters the remaining
// positions.
func (hs *homSearch) candidatesLayered(depth int, p pat, h Subst) []uint32 {
	st := hs.store
	pid, ok := st.syms.LookupPred(p.atom.Pred)
	if !ok {
		return nil
	}
	bestPos, bestID := -1, uint32(0)
	bestCount := st.countPredWindow(pid, p.lo, p.hi)
	if bestCount == 0 {
		return nil
	}
	for i, t := range p.atom.Args {
		if !termBoundUnder(h, t) {
			continue
		}
		tid, ok := st.syms.lookupBound(h, t)
		if !ok {
			return nil // the term was never interned: no fact matches
		}
		n := st.postingsCount(pid, i, tid, p.lo, p.hi)
		if n == 0 {
			return nil
		}
		if n < bestCount {
			bestCount, bestPos, bestID = n, i, tid
		}
	}
	buf := hs.scratch[depth][:0]
	if bestPos < 0 {
		buf = st.appendPredIndices(pid, p.lo, p.hi, buf)
	} else {
		buf = st.appendPostings(pid, bestPos, bestID, p.lo, p.hi, buf)
	}
	hs.scratch[depth] = buf
	return buf
}

// atomBoundUnder reports whether every variable of a is bound to a
// ground term under h, i.e. whether h(a) is ground. It allocates
// nothing and exits on the first unbound variable.
func atomBoundUnder(h Subst, a Atom) bool {
	for _, t := range a.Args {
		if !termBoundUnder(h, t) {
			return false
		}
	}
	return true
}

func termBoundUnder(h Subst, t Term) bool {
	switch t.Kind {
	case Var:
		u, ok := h[t.Name]
		return ok && u.IsGround()
	case Func:
		for _, a := range t.Args {
			if !termBoundUnder(h, a) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// HasUnder reports whether h(a) is in the store, where a is expected to
// be ground under h; an atom left non-ground reports false, matching
// the bound-instances-only reading of negative literals in FindHoms. It
// allocates nothing beyond the probe key.
func (s *FactStore) HasUnder(h Subst, a Atom) bool {
	_, ok := s.IndexUnder(h, a)
	return ok
}

// BoundUnder reports whether h(a) is ground: every variable of a is
// bound by h to a ground term. It is the boundness test behind
// HasUnder/IndexUnder, exported for encoders that must distinguish
// "instance absent" from "instance not yet determined".
func BoundUnder(h Subst, a Atom) bool { return atomBoundUnder(h, a) }

// IndexUnder returns the global store index of h(a), where a is
// expected to be ground under h; ok is false when h(a) is non-ground or
// absent. It is the index-based companion of HasUnder for encoders that
// address atoms by store index instead of allocated key strings — the
// index is stable across the snapshot chain and across the store's
// later growth, so it can key long-lived per-atom state (e.g. SAT
// variables) without retaining the rendered key.
func (s *FactStore) IndexUnder(h Subst, a Atom) (int, bool) {
	if !atomBoundUnder(h, a) {
		return 0, false
	}
	var kb [64]byte
	key, ok := s.syms.appendBoundAtomKey(h, a, kb[:0])
	if !ok {
		return 0, false
	}
	return s.lookupPacked(key)
}

// clipWindowU32 narrows an ascending index list to [lo, hi) by binary
// search; the result aliases the input.
func clipWindowU32(idxs []uint32, lo, hi int) []uint32 {
	if len(idxs) == 0 {
		return idxs
	}
	a := sort.Search(len(idxs), func(i int) bool { return int(idxs[i]) >= lo })
	b := sort.Search(len(idxs), func(i int) bool { return int(idxs[i]) >= hi })
	return idxs[a:b]
}

// intersectSorted intersects two ascending lists, writing the result
// over the prefix of a (in place).
func intersectSorted(a, b []uint32) []uint32 {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// naiveFindHoms is the pre-index search kept verbatim as the
// differential-test oracle: candidates always come from the full
// per-predicate scan, in the original greedy sharing order.
func naiveFindHoms(pos, neg []Atom, store *FactStore, init Subst, fn HomVisitor) bool {
	h := init.Clone()
	order := naiveOrderAtoms(pos, h)
	return naiveExtendHom(order, 0, neg, store, h, fn)
}

func naiveOrderAtoms(pos []Atom, init Subst) []Atom {
	if len(pos) <= 1 {
		return pos
	}
	remaining := append([]Atom(nil), pos...)
	bound := make(map[string]bool, len(init))
	for v := range init {
		bound[v] = true
	}
	ordered := make([]Atom, 0, len(pos))
	var buf []string
	for len(remaining) > 0 {
		best, bestScore := 0, -1<<30
		for i, a := range remaining {
			buf = a.Vars(buf[:0])
			sharing := 0
			for _, v := range buf {
				if bound[v] {
					sharing++
				}
			}
			// Prefer high sharing; among equal sharing prefer earlier
			// (stable, deterministic).
			score := sharing * 1000
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		a := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		ordered = append(ordered, a)
		buf = a.Vars(buf[:0])
		for _, v := range buf {
			bound[v] = true
		}
	}
	return ordered
}

func naiveExtendHom(pos []Atom, i int, neg []Atom, store *FactStore, h Subst, fn HomVisitor) bool {
	if i == len(pos) {
		for _, n := range neg {
			g := h.ApplyAtom(n)
			if store.Has(g) {
				return true // blocked: this h is not a solution, keep searching
			}
		}
		return fn(h)
	}
	pattern := pos[i]
	for _, cand := range store.ByPred(pattern.Pred) {
		trail := make([]string, 0, len(pattern.Args))
		if matchAtomTrail(h, pattern, cand, &trail) {
			if !naiveExtendHom(pos, i+1, neg, store, h, fn) {
				undo(h, trail)
				return false
			}
		}
		undo(h, trail)
	}
	return true
}

// matchAtomTrail is MatchAtom with an undo trail: variables newly bound
// are appended to *trail so the caller can roll back.
func matchAtomTrail(h Subst, pattern, ground Atom, trail *[]string) bool {
	if pattern.Pred != ground.Pred || len(pattern.Args) != len(ground.Args) {
		return false
	}
	for i := range pattern.Args {
		if !matchTermTrail(h, pattern.Args[i], ground.Args[i], trail) {
			return false
		}
	}
	return true
}

func matchTermTrail(h Subst, pattern, ground Term, trail *[]string) bool {
	switch pattern.Kind {
	case Var:
		if bound, ok := h[pattern.Name]; ok {
			return bound.Equal(ground)
		}
		h[pattern.Name] = ground
		*trail = append(*trail, pattern.Name)
		return true
	case Func:
		if ground.Kind != Func || ground.Name != pattern.Name || len(ground.Args) != len(pattern.Args) {
			return false
		}
		for i := range pattern.Args {
			if !matchTermTrail(h, pattern.Args[i], ground.Args[i], trail) {
				return false
			}
		}
		return true
	default:
		return pattern.Equal(ground)
	}
}

func undo(h Subst, trail []string) {
	for _, v := range trail {
		delete(h, v)
	}
}

// MapsTo reports whether there is a homomorphism from the atom set src
// to the atom set dst (both possibly containing nulls; nulls in src are
// treated as variables, per the standard "homomorphism between
// instances" notion used for the restricted chase and BCQ evaluation
// over instances with nulls). Constants are fixed.
func MapsTo(src []Atom, dst *FactStore) bool {
	vars := make(map[string]string) // null label -> fresh var name
	pats := make([]Atom, len(src))
	for i, a := range src {
		pats[i] = nullsToVars(a, vars)
	}
	return ExistsHom(pats, nil, dst, Subst{})
}

func nullsToVars(a Atom, ren map[string]string) Atom {
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		args[i] = nullsToVarsTerm(t, ren)
	}
	return Atom{Pred: a.Pred, Args: args}
}

func nullsToVarsTerm(t Term, ren map[string]string) Term {
	switch t.Kind {
	case Null:
		v, ok := ren[t.Name]
		if !ok {
			v = "$null_" + t.Name
			ren[t.Name] = v
		}
		return Term{Kind: Var, Name: v}
	case Func:
		args := make([]Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = nullsToVarsTerm(a, ren)
		}
		return Term{Kind: Func, Name: t.Name, Args: args}
	default:
		return t
	}
}
