package logic

import (
	"fmt"
	"sort"
	"strings"
)

// Program bundles a set of rules (NTGDs/NDTGDs) with a database and the
// queries parsed from the same source. It corresponds to the paper's
// pair (D, Σ) plus the NBCQs under consideration.
type Program struct {
	Rules   []*Rule
	Facts   []Atom
	Queries []Query
}

// Database returns the facts as a store.
func (p *Program) Database() *FactStore { return StoreOf(p.Facts...) }

// Validate checks every rule and query for safety and checks that the
// database is ground and null-free (databases contain constants only,
// Section 2).
func (p *Program) Validate() error {
	for _, r := range p.Rules {
		if err := r.Validate(); err != nil {
			return err
		}
	}
	for i, f := range p.Facts {
		if !f.IsGround() {
			return fmt.Errorf("fact %d (%s): databases must be ground", i, f)
		}
		if f.HasNull() {
			return fmt.Errorf("fact %d (%s): databases must not contain nulls", i, f)
		}
	}
	for i := range p.Queries {
		if err := p.Queries[i].Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Schema returns the predicates (with arities) occurring in rules,
// facts and queries. An error is returned if a predicate is used with
// two different arities.
func (p *Program) Schema() (map[string]int, error) {
	out := make(map[string]int)
	add := func(pred string, ar int, where string) error {
		if prev, ok := out[pred]; ok && prev != ar {
			return fmt.Errorf("predicate %s used with arities %d and %d (%s)", pred, prev, ar, where)
		}
		out[pred] = ar
		return nil
	}
	for _, r := range p.Rules {
		for pred, ar := range r.Preds() {
			if err := add(pred, ar, r.String()); err != nil {
				return nil, err
			}
		}
	}
	for _, f := range p.Facts {
		if err := add(f.Pred, f.Arity(), "database"); err != nil {
			return nil, err
		}
	}
	for _, q := range p.Queries {
		for _, a := range q.Pos {
			if err := add(a.Pred, a.Arity(), "query"); err != nil {
				return nil, err
			}
		}
		for _, a := range q.Neg {
			if err := add(a.Pred, a.Arity(), "query"); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// String renders the program in surface syntax.
func (p *Program) String() string {
	var b strings.Builder
	for _, f := range p.Facts {
		b.WriteString(f.String())
		b.WriteString(".\n")
	}
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteString(".\n")
	}
	for _, q := range p.Queries {
		b.WriteString(q.String())
		b.WriteString("\n")
	}
	return b.String()
}

// ActiveDomain returns the constants occurring in the database, sorted.
func (p *Program) ActiveDomain() []Term {
	seen := make(map[string]Term)
	for _, f := range p.Facts {
		for _, t := range f.Args {
			if t.Kind == Const {
				seen[t.Key()] = t
			}
		}
	}
	out := make([]Term, 0, len(seen))
	for _, t := range seen {
		out = append(out, t)
	}
	SortTerms(out)
	return out
}

// Query is an n-ary normal conjunctive query (NCQ, Section 2):
//
//	∃Y ( ∧ᵢ pᵢ(X,Y) ∧ ∧ⱼ ¬pⱼ(X,Y) )
//
// with answer variables X (empty for an NBCQ). Safety requires every
// variable of a negative literal to occur in a positive literal.
type Query struct {
	// AnswerVars are the free variables X; empty for Boolean queries.
	AnswerVars []string
	Pos        []Atom
	Neg        []Atom
}

// IsBoolean reports whether the query has no answer variables.
func (q Query) IsBoolean() bool { return len(q.AnswerVars) == 0 }

// Validate checks safety and that answer variables occur in a positive
// literal.
func (q Query) Validate() error {
	if len(q.Pos) == 0 {
		return fmt.Errorf("query %s: at least one positive literal is required (m ≥ 1)", q)
	}
	pv := VarSet(q.Pos...)
	var buf []string
	for _, a := range q.Neg {
		buf = a.Vars(buf[:0])
		for _, v := range buf {
			if !pv[v] {
				return fmt.Errorf("query %s: unsafe variable %s in negative literal", q, v)
			}
		}
	}
	for _, v := range q.AnswerVars {
		if !pv[v] {
			return fmt.Errorf("query %s: answer variable %s does not occur positively", q, v)
		}
	}
	return nil
}

// Constants returns the constants occurring in the query, sorted.
func (q Query) Constants() []Term {
	seen := make(map[string]Term)
	var walk func(t Term)
	walk = func(t Term) {
		switch t.Kind {
		case Const:
			seen[t.Key()] = t
		case Func:
			for _, a := range t.Args {
				walk(a)
			}
		}
	}
	for _, a := range q.Pos {
		for _, t := range a.Args {
			walk(t)
		}
	}
	for _, a := range q.Neg {
		for _, t := range a.Args {
			walk(t)
		}
	}
	out := make([]Term, 0, len(seen))
	for _, t := range seen {
		out = append(out, t)
	}
	SortTerms(out)
	return out
}

// Holds evaluates the Boolean query over an interpretation given by its
// positive part: true iff some homomorphism maps Pos into store and no
// Neg instance is present (closed-world reading of ¬, as in q(I) of
// Section 2).
func (q Query) Holds(store *FactStore) bool {
	return ExistsHom(q.Pos, q.Neg, store, Subst{})
}

// Answers evaluates the query over an interpretation and returns the
// set of answer tuples (as canonical strings mapping to tuples).
// Only tuples consisting entirely of constants are returned, matching
// the paper's definition q(I) ⊆ C^n.
func (q Query) Answers(store *FactStore) []AnswerTuple {
	seen := make(map[string][]Term)
	FindHoms(q.Pos, q.Neg, store, Subst{}, func(h Subst) bool {
		tuple := make([]Term, len(q.AnswerVars))
		for i, v := range q.AnswerVars {
			t, ok := h[v]
			if !ok || t.Kind != Const {
				return true // not a constant tuple; skip
			}
			tuple[i] = t
		}
		key := tupleKey(tuple)
		if _, ok := seen[key]; !ok {
			seen[key] = tuple
		}
		return true
	})
	out := make([]AnswerTuple, 0, len(seen))
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, AnswerTuple(seen[k]))
	}
	return out
}

// AnswerTuple is a tuple of constants answering an NCQ.
type AnswerTuple []Term

// String renders the tuple as (c1,...,cn).
func (t AnswerTuple) String() string {
	parts := make([]string, len(t))
	for i, c := range t {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Key returns a canonical key for the tuple.
func (t AnswerTuple) Key() string { return tupleKey(t) }

func tupleKey(tuple []Term) string {
	var b strings.Builder
	for i, t := range tuple {
		if i > 0 {
			b.WriteByte(',')
		}
		t.writeKey(&b)
	}
	return b.String()
}

// String renders the query in surface syntax: "?- p(X), not q(X)." with
// answer variables listed when present.
func (q Query) String() string {
	var b strings.Builder
	b.WriteString("?-")
	if len(q.AnswerVars) > 0 {
		b.WriteByte('[')
		b.WriteString(strings.Join(q.AnswerVars, ","))
		b.WriteByte(']')
	}
	b.WriteByte(' ')
	first := true
	for _, a := range q.Pos {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(a.String())
	}
	for _, a := range q.Neg {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString("not ")
		b.WriteString(a.String())
	}
	b.WriteByte('.')
	return b.String()
}
