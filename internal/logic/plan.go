package logic

import (
	"sync"
	"sync/atomic"
)

// This file implements the greedy selectivity-ordered join planner
// behind FindHoms/FindHomsFrom (ROADMAP open item: janus-datalog's
// "When Greedy Beats Optimal" result — greedy smallest-relation-first
// ordering with zero statistics beats cost-based planning for pattern
// queries). A plan is a visiting order over the positive body atoms:
//
//   - atoms fully ground under the bindings established so far are
//     pushed ahead of all joins (each is one hash probe, and a miss
//     kills the whole enumeration before any join work);
//   - remaining atoms are picked greedily, preferring atoms with at
//     least one bound variable, then atoms constrained by a ground
//     argument term (a posting-list probe), then unconstrained scans —
//     and within each class the smallest current candidate estimate
//     (the predicate count, improved by the posting list of any ground
//     argument), ties broken by most bound argument variables, then by
//     written position (deterministic).
//
// Plans are either computed per call (the package-level FindHoms and
// FindHomsFrom) or cached per (body, delta seed, binding pattern) in a
// BodyPlans owned by the caller — one per rule body — and invalidated
// when a predicate's fact count grows past the re-plan threshold.
//
// Correctness never depends on the order (the enumeration visits every
// homomorphism under any permutation, and the delta windows of
// FindHomsFrom travel with their atoms through reordering, so each
// delta-seeded homomorphism is still produced exactly once); only the
// emission order and the join cost do. Hom emission order is therefore
// explicitly NOT part of this package's contract — callers that need a
// deterministic, plan-independent selection among homomorphisms must
// impose their own order (the stable-model search orders branching
// triggers by canonical trigger key; see internal/core).

// joinPlanningOff disables the planner when set: body atoms are then
// visited in written order (the delta seed still leads in
// FindHomsFrom). It exists so the differential suites and benchmarks
// can compare planner-on against the written-order baseline; the
// default is planning on.
var joinPlanningOff atomic.Bool

// SetJoinPlanning toggles the join planner globally and returns a
// function restoring the previous setting. Test-only: the toggle is
// process-wide, so concurrent tests flipping it would interfere.
func SetJoinPlanning(on bool) (restore func()) {
	prev := !joinPlanningOff.Load()
	joinPlanningOff.Store(!on)
	return func() { joinPlanningOff.Store(!prev) }
}

// JoinPlanningEnabled reports whether the join planner is active.
func JoinPlanningEnabled() bool { return !joinPlanningOff.Load() }

// Re-plan threshold: a cached plan is invalidated when any body
// predicate's fact count exceeds 2x its count at plan time plus slack.
// Growth-only invalidation keeps sibling search branches of different
// sizes from thrashing a shared cache: a plan computed on a larger
// store stays valid on a smaller sibling.
const (
	replanGrowth = 2
	replanSlack  = 8
)

// BodyPlans caches join plans for one fixed body (pos, neg) across
// binding patterns and delta seeds. Create one per rule body and reuse
// it for every FindHoms/FindHomsFrom over that body; the zero cost of
// a cache hit replaces the per-call greedy ordering (O(atoms²) with
// posting-list probes per pair).
//
// Concurrency: safe for concurrent readers and writers. Lookups are
// lock-free (an atomic pointer to an immutable map); a replan copies
// the map under a mutex and publishes the new pointer, so readers on
// other goroutines — e.g. parallel search workers planning against
// their own store snapshots — never observe a partially built plan.
// Plans cached from one snapshot chain may be reused against another;
// that is sound (plans only order the join) and the growth threshold
// re-plans when the stores have meaningfully diverged.
type BodyPlans struct {
	pos, neg []Atom
	vars     []string // sorted distinct positive-body variables
	varIdx   map[string]int
	plans    atomic.Pointer[map[planKey]*bodyPlan]
	mu       sync.Mutex // serializes replans (lookups are lock-free)

	// hits/misses/replans instrument the cache for tests: a miss fills
	// an empty slot, a replan replaces an invalidated plan.
	hits, misses, replans atomic.Int64
}

// planKey identifies a cached plan: the delta-seed body position (-1
// for a full FindHoms) and the binding pattern — the set of body
// variables ground under the initial substitution, as a bitmask over
// the sorted variable list.
type planKey struct {
	seed int
	mask uint64
}

// bodyPlan is one cached join order: the body-atom visiting order (for
// a delta plan, order[0] is the seed) and the per-atom predicate
// counts at plan time, which the re-plan threshold checks against.
type bodyPlan struct {
	order   []int
	predCnt []int
}

// NewBodyPlans prepares a plan cache for the body (pos, neg). The
// atom slices are retained and must not be mutated afterwards.
func NewBodyPlans(pos, neg []Atom) *BodyPlans {
	bp := &BodyPlans{pos: pos, neg: neg}
	seen := make(map[string]bool, 8)
	var buf []string
	for _, a := range pos {
		buf = a.Vars(buf[:0])
		for _, v := range buf {
			if !seen[v] {
				seen[v] = true
				bp.vars = append(bp.vars, v)
			}
		}
	}
	sortStringsInPlace(bp.vars)
	bp.varIdx = make(map[string]int, len(bp.vars))
	for i, v := range bp.vars {
		bp.varIdx[v] = i
	}
	return bp
}

func sortStringsInPlace(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// maskOf computes the binding-pattern bitmask of init: bit i is set
// when bp.vars[i] is bound to a ground term. ok is false when the body
// has more than 64 variables (then plans are computed per call).
func (bp *BodyPlans) maskOf(init Subst) (mask uint64, ok bool) {
	if len(bp.vars) > 64 {
		return 0, false
	}
	if len(init) == 0 {
		return 0, true
	}
	for v, t := range init {
		if i, here := bp.varIdx[v]; here && t.IsGround() {
			mask |= 1 << uint(i)
		}
	}
	return mask, true
}

// valid reports whether a cached plan is still inside its re-plan
// thresholds against the given store.
func (bp *BodyPlans) valid(p *bodyPlan, store *FactStore) bool {
	for i, a := range bp.pos {
		if store.CountPred(a.Pred) > replanGrowth*p.predCnt[i]+replanSlack {
			return false
		}
	}
	return true
}

// applyPlan arranges pats — parallel to idxs, the original body
// positions, with the first `pinned` entries fixed (the delta seed) —
// into the cached plan order for (seed, binding pattern of init),
// computing and caching a fresh plan on miss or threshold crossing.
func (bp *BodyPlans) applyPlan(seed, pinned int, pats []pat, idxs []int, init Subst, store *FactStore) {
	mask, cacheable := bp.maskOf(init)
	if !cacheable {
		planOrder(pats, nil, pinned, init, store)
		return
	}
	key := planKey{seed: seed, mask: mask}
	if m := bp.plans.Load(); m != nil {
		if p := (*m)[key]; p != nil && bp.valid(p, store) {
			bp.hits.Add(1)
			// Rearrange pats into the cached order. The caller's base
			// arrangement is deterministic — the seed first, the rest in
			// written order — so the original body position orig sits at
			// a computable offset and no index map is needed. Windows
			// travel with their atoms through the rearrangement.
			var tmpBuf [8]pat
			tmp := append(tmpBuf[:0], pats...)
			for at, orig := range p.order {
				pats[at] = tmp[baseSlot(orig, seed)]
				idxs[at] = orig
			}
			return
		}
	}
	// Miss or invalidated: compute the greedy order against the current
	// store and publish it.
	planOrder(pats, idxs, pinned, init, store)
	plan := &bodyPlan{
		order:   append([]int(nil), idxs...),
		predCnt: make([]int, len(bp.pos)),
	}
	for i, a := range bp.pos {
		plan.predCnt[i] = store.CountPred(a.Pred)
	}
	bp.mu.Lock()
	old := bp.plans.Load()
	var next map[planKey]*bodyPlan
	if old == nil || len(*old) >= 256 {
		// Cap runaway caches (distinct binding patterns are few in
		// practice); resetting drops only cached orders, never results.
		next = make(map[planKey]*bodyPlan, 4)
	} else {
		next = make(map[planKey]*bodyPlan, len(*old)+1)
		for k, v := range *old {
			next[k] = v
		}
	}
	if old != nil && (*old)[key] != nil {
		bp.replans.Add(1)
	} else {
		bp.misses.Add(1)
	}
	next[key] = plan
	bp.plans.Store(&next)
	bp.mu.Unlock()
}

// baseSlot returns where original body position orig sits in the
// caller's base pats arrangement: identity for a full search
// (seed < 0), and [seed, 0..seed-1, seed+1..] for a delta search.
func baseSlot(orig, seed int) int {
	switch {
	case seed < 0:
		return orig
	case orig == seed:
		return 0
	case orig < seed:
		return orig + 1
	default:
		return orig
	}
}

// FindHoms is FindHoms over this body with the cached plan for init's
// binding pattern (see the package-level FindHoms for the semantics).
func (bp *BodyPlans) FindHoms(store *FactStore, init Subst, fn HomVisitor) bool {
	h := init.Clone()
	pats := make([]pat, len(bp.pos))
	idxs := make([]int, len(bp.pos))
	n := store.Len()
	for i, a := range bp.pos {
		pats[i] = pat{atom: a, lo: 0, hi: n}
		idxs[i] = i
	}
	if !joinPlanningOff.Load() && len(pats) > 1 {
		bp.applyPlan(-1, 0, pats, idxs, init, store)
	}
	hs := &homSearch{store: store, neg: bp.neg, fn: fn, pats: pats}
	return hs.extend(0, h)
}

// FindHomsFrom is FindHomsFrom over this body with one cached plan per
// delta seed (see the package-level FindHomsFrom for the exactly-once
// delta semantics). The seed atom anchors every plan: it stays first,
// so the delta window is always the most selective constraint applied.
func (bp *BodyPlans) FindHomsFrom(store *FactStore, from int, init Subst, fn HomVisitor) bool {
	if from <= 0 {
		return bp.FindHoms(store, init, fn)
	}
	n := store.Len()
	if from >= n || len(bp.pos) == 0 {
		return true
	}
	planning := !joinPlanningOff.Load()
	for j := range bp.pos {
		pats := make([]pat, 0, len(bp.pos))
		idxs := make([]int, 0, len(bp.pos))
		pats = append(pats, pat{atom: bp.pos[j], lo: from, hi: n})
		idxs = append(idxs, j)
		for k := range bp.pos {
			switch {
			case k < j:
				pats = append(pats, pat{atom: bp.pos[k], lo: 0, hi: n})
				idxs = append(idxs, k)
			case k > j:
				pats = append(pats, pat{atom: bp.pos[k], lo: 0, hi: from})
				idxs = append(idxs, k)
			}
		}
		if planning && len(pats) > 2 {
			bp.applyPlan(j, 1, pats, idxs, init, store)
		}
		h := init.Clone()
		hs := &homSearch{store: store, neg: bp.neg, fn: fn, pats: pats}
		if !hs.extend(0, h) {
			return false
		}
	}
	return true
}

// CacheStats reports (hits, misses, replans) of the plan cache; used
// by tests and debug tooling.
func (bp *BodyPlans) CacheStats() (hits, misses, replans int64) {
	return bp.hits.Load(), bp.misses.Load(), bp.replans.Load()
}

// planOrder reorders pats[pinned:] (and idxs alongside, when non-nil)
// in place into the greedy selectivity order described at the top of
// this file. Patterns before pinned are fixed — the delta seed of
// FindHomsFrom — but still contribute their variables to the bound
// set.
func planOrder(pats []pat, idxs []int, pinned int, init Subst, store *FactStore) {
	if len(pats)-pinned <= 1 {
		return
	}
	bound := make(map[string]bool, len(init)+4)
	for v, t := range init {
		if t.IsGround() {
			bound[v] = true
		}
	}
	var buf []string
	markBound := func(a Atom) {
		buf = a.Vars(buf[:0])
		for _, v := range buf {
			bound[v] = true
		}
	}
	for i := 0; i < pinned; i++ {
		markBound(pats[i].atom)
	}
	for at := pinned; at < len(pats); at++ {
		best, bestClass, bestEst, bestBound := at, 1<<30, 1<<62, -1
		for i := at; i < len(pats); i++ {
			class, nb := patClass(pats[i].atom, bound, init)
			var est int
			if class > 0 {
				est = candidateEstimate(pats[i], init, store)
			}
			if class < bestClass ||
				(class == bestClass && est < bestEst) ||
				(class == bestClass && est == bestEst && nb > bestBound) {
				best, bestClass, bestEst, bestBound = i, class, est, nb
			}
		}
		pats[at], pats[best] = pats[best], pats[at]
		if idxs != nil {
			idxs[at], idxs[best] = idxs[best], idxs[at]
		}
		markBound(pats[at].atom)
	}
}

// patClass classifies an atom against the current bound variable set:
//
//	0 — fully ground (every variable bound): one hash probe;
//	1 — at least one bound variable: a posting-list join;
//	2 — no bound variable but a ground argument term: an indexed scan;
//	3 — unconstrained: a per-predicate scan.
//
// nb is the number of distinct bound variables, the tie-breaker after
// the candidate estimate.
func patClass(a Atom, bound map[string]bool, init Subst) (class, nb int) {
	vars := a.Vars(nil)
	distinct := vars[:0]
	for _, v := range vars {
		dup := false
		for _, u := range distinct {
			if u == v {
				dup = true
				break
			}
		}
		if !dup {
			distinct = append(distinct, v)
		}
	}
	for _, v := range distinct {
		if bound[v] {
			nb++
		}
	}
	if nb == len(distinct) {
		return 0, nb
	}
	if nb > 0 {
		return 1, nb
	}
	for _, t := range a.Args {
		if t.IsGround() || init.ApplyTerm(t).IsGround() {
			return 2, 0
		}
	}
	return 3, 0
}
