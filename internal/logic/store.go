package logic

import (
	"math"
	"sort"
	"strings"

	"ntgd/internal/failpoint"
)

// FactStore is a set of ground atoms with a per-predicate index and a
// (predicate, argument-position, ground-term) index, the basic
// container for databases, chase results, and (the positive part of)
// interpretations. Insertion order is preserved for deterministic
// iteration, and every atom has a stable store index (its insertion
// rank), which the semi-naive evaluation layers use to address deltas
// as index windows. The zero value is not ready to use; call
// NewFactStore.
//
// Ground terms and predicates are interned into a Symbols table shared
// by the whole snapshot chain, facts are addressed by packed FactKey
// tuples, and the posting lists are []uint32 of store indices. The root
// of every chain is a Storage implementation (see storage.go) — the
// default in-memory one, or whatever the caller plugged in — while
// snapshot layers keep their own additions in layer-local id-based
// maps.
//
// A store may be a copy-on-write snapshot layer (see Snapshot): it then
// holds a pointer to its parent chain plus only its own additions, and
// every read merges the layers transparently. Store indices are global
// across a chain — a layer's first own atom has index base — so delta
// windows taken against a parent remain valid against its snapshots.
//
// Concurrency. A FactStore is not synchronized; what makes concurrent
// use of snapshot chains safe is a freeze discipline, not locks. Every
// read path (Has/HasFactKey, the posting lists behind FindHoms, Domain,
// Atoms, Len, Snapshot, Clone, CanonicalString, ...) is mutation-free
// (the shared Symbols table has its own lock), so any number of
// goroutines may read through a chain concurrently provided no layer of
// that chain is being written. Add may only be called by the single
// goroutine owning the topmost layer, and only while no other goroutine
// is reading through that layer. The parallel stable-model search
// satisfies this structurally: a search node's layer stops growing
// before its branch children are snapshotted, each child layer has
// exactly one owning worker, and handing a child to a worker (a
// goroutine spawn or channel send) establishes the happens-before edge
// covering the parent chain's earlier writes.
// TestSnapshotConcurrentBranchReaders pins the discipline under -race.
type FactStore struct {
	syms *Symbols
	// storage backs a root store (parent == nil); nil on snapshot
	// layers, whose additions live in the layer-local fields below.
	storage Storage

	// parent is the layer below in a copy-on-write snapshot chain; nil
	// for a root store. This layer sees exactly the first base atoms of
	// the parent chain (the parent's length when Snapshot was taken),
	// so the parent may keep growing without affecting snapshots taken
	// earlier: ancestor entries with index >= base are simply invisible
	// here.
	parent *FactStore
	base   int // number of ancestor atoms visible to this layer
	depth  int // number of ancestors, bounded by maxSnapshotDepth

	byKey  map[FactKey]int     // packed key -> store index (this layer's atoms only)
	byPred map[uint32][]uint32 // this layer's indices per predicate id, ascending
	byArg  map[argID][]uint32  // posting lists, ascending store indices
	dom    map[uint32]int      // domain term id -> index of introducing atom
	atoms  []Atom              // this layer's atoms; local offset i has store index base+i
	tb     int64               // packed bytes of this layer's atoms

	domBuf []uint32 // Add scratch; safe under the one-writer rule
}

// maxSnapshotDepth bounds the length of a snapshot chain: Snapshot
// flattens into a fresh root once the chain would exceed it, so chain
// walks stay O(1) amortized while branch-heavy users (the stable model
// search) still share almost all layers.
const maxSnapshotDepth = 32

// NewFactStore returns an empty root store backed by the default
// in-memory Storage with a fresh Symbols table.
func NewFactStore() *FactStore {
	ms := newMemStorage(NewSymbols())
	return &FactStore{syms: ms.syms, storage: ms}
}

// NewFactStoreOn returns a root store backed by the given Storage,
// which may already contain facts. The store shares the storage's
// Symbols table.
func NewFactStoreOn(st Storage) *FactStore {
	return &FactStore{syms: st.Symbols(), storage: st}
}

// StoreOf returns a store containing the given atoms.
func StoreOf(atoms ...Atom) *FactStore {
	s := NewFactStore()
	s.AddAll(atoms)
	return s
}

// Symbols returns the interner shared by this store's snapshot chain.
func (s *FactStore) Symbols() *Symbols { return s.syms }

// Storage returns the Storage backing the chain's root.
func (s *FactStore) Storage() Storage {
	st := s
	for st.parent != nil {
		st = st.parent
	}
	return st.storage
}

// Snapshot returns a copy-on-write child of s: the child sees every
// atom s contains right now plus its own later additions, and writes to
// the child never affect s. Both stores remain fully usable afterwards
// — s may keep growing independently; the child's view of s stays
// frozen at the snapshot length. Taking a snapshot is O(1) (layers that
// never grew are collapsed away; a chain deeper than maxSnapshotDepth
// is flattened into a fresh root, costing one deep copy).
//
// Sibling snapshots may be used from different goroutines once their
// shared ancestors stop growing; see the concurrency notes on
// FactStore.
func (s *FactStore) Snapshot() *FactStore {
	failpoint.Inject(failpoint.StoreSnapshot)
	base := s.Len()
	parent := s
	// A layer that never grew contributes nothing: snapshot its parent
	// instead, keeping chains short across write-free generations.
	for parent.parent != nil && len(parent.atoms) == 0 {
		parent = parent.parent
	}
	if parent.depth+1 > maxSnapshotDepth {
		return s.flatten(base)
	}
	// Index maps are materialized lazily on the first Add, so snapshots
	// that never write (e.g. deferral branches) cost one struct.
	return &FactStore{syms: s.syms, parent: parent, base: base, depth: parent.depth + 1}
}

// flatten deep-copies the first bound atoms of the chain into a fresh
// root store (sharing the chain's Symbols table) by merging the layers'
// already-materialized indices — global indices and packed keys carry
// over unchanged, so no atom or term is ever re-interned.
func (s *FactStore) flatten(bound int) *FactStore {
	failpoint.Inject(failpoint.StoreFlatten)
	ms := newMemStorage(s.syms)
	ms.atoms = s.appendAtomsBelow(bound, make([]Atom, 0, bound))
	for _, a := range ms.atoms {
		ms.tb += factKeyBytes(len(a.Args))
	}
	var layers []*FactStore
	var bounds []int
	s.forEachLayer(bound, func(st *FactStore, b int) bool {
		layers = append(layers, st)
		bounds = append(bounds, b)
		return true
	})
	// Bottom-up (root first) so merged posting lists stay ascending.
	for i := len(layers) - 1; i >= 0; i-- {
		st, b := layers[i], bounds[i]
		if st.parent == nil {
			st.storage.EachFact(func(k FactKey, idx int) bool {
				if idx < b {
					ms.keys.setAt(k, idx)
				}
				return true
			})
			st.storage.EachPred(func(p uint32, idxs []uint32) bool {
				if w := clipWindowU32(idxs, 0, b); len(w) > 0 {
					ms.byPred[p] = append(ms.byPred[p], w...)
				}
				return true
			})
			st.storage.EachPosting(func(id argID, idxs []uint32) bool {
				if w := clipWindowU32(idxs, 0, b); len(w) > 0 {
					ms.byArg.appendTo(id, w...)
				}
				return true
			})
			st.storage.EachDomain(func(t uint32, idx int) bool {
				if idx < b {
					ms.dom.setIfAbsent(t, idx)
				}
				return true
			})
			continue
		}
		for k, idx := range st.byKey {
			if idx < b {
				ms.keys.setAt(k, idx)
			}
		}
		for p, idxs := range st.byPred {
			if w := clipWindowU32(idxs, 0, b); len(w) > 0 {
				ms.byPred[p] = append(ms.byPred[p], w...)
			}
		}
		for k, idxs := range st.byArg {
			if w := clipWindowU32(idxs, 0, b); len(w) > 0 {
				ms.byArg.appendTo(k, w...)
			}
		}
		for t, idx := range st.dom {
			if idx < b {
				ms.dom.setIfAbsent(t, idx)
			}
		}
	}
	ms.keys.rebuild()
	return &FactStore{syms: s.syms, storage: ms}
}

// forEachLayer walks the snapshot chain from this layer toward the
// root, invoking fn with each layer and the bound on the store indices
// visible there: a layer's own entries count only when their index is
// below the bound, and descending past a layer shrinks the bound to its
// base. Every chain-merging read goes through this iterator so the
// check-before-shrink invariant lives in one place. fn returning false
// stops the walk.
func (s *FactStore) forEachLayer(bound int, fn func(st *FactStore, bound int) bool) {
	for st := s; st != nil; st = st.parent {
		if !fn(st, bound) {
			return
		}
		if st.base < bound {
			bound = st.base
		}
	}
}

// Add inserts the atom, reporting whether it was new.
func (s *FactStore) Add(a Atom) bool {
	if s.parent == nil {
		_, added := s.storage.Add(a)
		return added
	}
	var kb [64]byte
	key, _ := s.syms.appendAtomKey(a, kb[:0], true)
	if _, ok := s.lookupPacked(key); ok {
		return false
	}
	if s.byKey == nil {
		s.byKey = make(map[FactKey]int)
		s.byPred = make(map[uint32][]uint32)
		s.byArg = make(map[argID][]uint32)
		s.dom = make(map[uint32]int)
	}
	idx := s.Len()
	k := FactKey(key) // retained: one allocation
	s.atoms = append(s.atoms, a)
	s.byKey[k] = idx
	pid := k.Pred()
	s.byPred[pid] = append(s.byPred[pid], uint32(idx))
	for i, t := range a.Args {
		ak := argID{pred: pid, pos: int32(i), term: k.Arg(i)}
		s.byArg[ak] = append(s.byArg[ak], uint32(idx))
		s.addDomainTerms(t, idx)
	}
	s.tb += factKeyBytes(len(a.Args))
	return true
}

// addDomainTerms records the constants and nulls of t (recursing into
// function terms) that are not yet visible in the store's domain,
// keeping Domain incremental instead of re-walking all atoms per call.
func (s *FactStore) addDomainTerms(t Term, idx int) {
	s.domBuf = s.syms.appendDomainIDs(t, s.domBuf[:0])
	for _, d := range s.domBuf {
		if !s.hasDomainID(d) {
			s.dom[d] = idx
		}
	}
}

func (s *FactStore) hasDomainID(id uint32) bool {
	found := false
	s.forEachLayer(math.MaxInt, func(st *FactStore, bound int) bool {
		var idx int
		var ok bool
		if st.parent == nil {
			idx, ok = st.storage.DomainIndex(id)
		} else {
			idx, ok = st.dom[id]
		}
		if ok && idx < bound {
			found = true
			return false
		}
		return true
	})
	return found
}

// HasDomainTerm reports whether the ground term occurs in the store's
// domain (see Domain), in O(chain) map probes.
func (s *FactStore) HasDomainTerm(t Term) bool {
	id, ok := s.syms.Lookup(t)
	if !ok {
		return false
	}
	return s.hasDomainID(id)
}

// AddAll inserts every atom, returning the number that were new. On a
// root store with no prior additions this is the bulk-load path: the
// backing Storage builds its indexes in one pass.
func (s *FactStore) AddAll(atoms []Atom) int {
	if s.parent == nil {
		return s.storage.AddAll(atoms)
	}
	n := 0
	for _, a := range atoms {
		if s.Add(a) {
			n++
		}
	}
	return n
}

// lookupPacked resolves a packed fact key (in a scratch buffer) through
// the snapshot chain: each layer's own entries are consulted under the
// visibility bound imposed by the layers above it.
func (s *FactStore) lookupPacked(key []byte) (int, bool) {
	bound := math.MaxInt
	for st := s; st != nil; st = st.parent {
		var idx int
		var ok bool
		if st.parent == nil {
			idx, ok = st.storage.IndexOf(key)
		} else {
			idx, ok = st.byKey[FactKey(key)]
		}
		if ok && idx < bound {
			return idx, true
		}
		if st.base < bound {
			bound = st.base
		}
	}
	return 0, false
}

// lookupFactKey is lookupPacked for a stored FactKey.
func (s *FactStore) lookupFactKey(key FactKey) (int, bool) {
	bound := math.MaxInt
	for st := s; st != nil; st = st.parent {
		var idx int
		var ok bool
		if st.parent == nil {
			idx, ok = st.storage.IndexOfKey(key)
		} else {
			idx, ok = st.byKey[key]
		}
		if ok && idx < bound {
			return idx, true
		}
		if st.base < bound {
			bound = st.base
		}
	}
	return 0, false
}

// lookupAtom resolves the atom's packed key (without interning) and
// looks it up through the chain; a symbol miss means the atom cannot be
// present.
func (s *FactStore) lookupAtom(a Atom) (int, bool) {
	var kb [64]byte
	key, ok := s.syms.appendAtomKey(a, kb[:0], false)
	if !ok {
		return 0, false
	}
	return s.lookupPacked(key)
}

// Has reports whether the atom is in the store.
func (s *FactStore) Has(a Atom) bool {
	_, ok := s.lookupAtom(a)
	return ok
}

// InternKey interns the ground atom's symbols and returns its packed
// key — the retained-key companion of LookupKey for callers that store
// keys in long-lived maps (the search's must-in/must-out ledgers, the
// stability sessions' negative-literal keys).
func (s *FactStore) InternKey(a Atom) FactKey {
	var kb [64]byte
	key, _ := s.syms.appendAtomKey(a, kb[:0], true)
	return FactKey(key)
}

// LookupKey returns the atom's packed key if every symbol of the atom
// is already interned; ok == false means the atom is in no store
// sharing this chain's Symbols table.
func (s *FactStore) LookupKey(a Atom) (FactKey, bool) {
	var kb [64]byte
	key, ok := s.syms.appendAtomKey(a, kb[:0], false)
	if !ok {
		return "", false
	}
	return FactKey(key), true
}

// HasFactKey reports whether an atom with the given packed key is in
// the store — the allocation-free probe for callers that hold an
// interned key.
func (s *FactStore) HasFactKey(key FactKey) bool {
	_, ok := s.lookupFactKey(key)
	return ok
}

// IndexOfFactKey returns the global store index of the atom with the
// given packed key, if present.
func (s *FactStore) IndexOfFactKey(key FactKey) (int, bool) {
	return s.lookupFactKey(key)
}

// IndexOfAtom returns the global store index of the atom, if present.
func (s *FactStore) IndexOfAtom(a Atom) (int, bool) {
	return s.lookupAtom(a)
}

// Len returns the number of atoms.
func (s *FactStore) Len() int {
	if s.parent == nil {
		return s.storage.Len()
	}
	return s.base + len(s.atoms)
}

// TupleBytes returns the total packed size (4 bytes per predicate or
// argument id) of the tuples retained by this chain — the unit the
// engine's MaxMemory watermark charges against. Layers frozen below a
// snapshot are included in full, so deltas taken on a growing top layer
// are exact.
func (s *FactStore) TupleBytes() int64 {
	var n int64
	for st := s; st != nil; st = st.parent {
		if st.parent == nil {
			n += st.storage.TupleBytes()
		} else {
			n += st.tb
		}
	}
	return n
}

// Atoms returns the atoms in insertion order. For a root store the
// returned slice is shared with the store and must not be modified; a
// snapshot layer materializes a fresh slice.
func (s *FactStore) Atoms() []Atom {
	if s.parent == nil {
		return s.storage.Atoms()
	}
	return s.appendAtomsBelow(s.Len(), make([]Atom, 0, s.Len()))
}

// appendAtomsBelow appends the atoms with store index < bound onto buf,
// in index order.
func (s *FactStore) appendAtomsBelow(bound int, buf []Atom) []Atom {
	if s.parent == nil {
		all := s.storage.Atoms()
		if bound > len(all) {
			bound = len(all)
		}
		return append(buf, all[:bound]...)
	}
	pb := bound
	if s.base < pb {
		pb = s.base
	}
	buf = s.parent.appendAtomsBelow(pb, buf)
	if n := bound - s.base; n > 0 {
		if n > len(s.atoms) {
			n = len(s.atoms)
		}
		buf = append(buf, s.atoms[:n]...)
	}
	return buf
}

// EachAtomIn invokes fn for every atom whose store index lies in
// [lo, hi), in ascending index order; fn returning false stops the walk
// (and makes EachAtomIn return false). It is the index-window iteration
// delta-driven encoders use to inspect the new atoms of a growing store
// (or snapshot chain) without materializing a slice.
func (s *FactStore) EachAtomIn(lo, hi int, fn func(idx int, a Atom) bool) bool {
	if n := s.Len(); hi > n {
		hi = n
	}
	if lo < 0 {
		lo = 0
	}
	if lo >= hi {
		return true
	}
	if s.parent == nil {
		atoms := s.storage.Atoms()
		for i := lo; i < hi; i++ {
			if !fn(i, atoms[i]) {
				return false
			}
		}
		return true
	}
	ph := hi
	if s.base < ph {
		ph = s.base
	}
	if !s.parent.EachAtomIn(lo, ph, fn) {
		return false
	}
	start := lo - s.base
	if start < 0 {
		start = 0
	}
	for i := start; i < len(s.atoms) && s.base+i < hi; i++ {
		if !fn(s.base+i, s.atoms[i]) {
			return false
		}
	}
	return true
}

// ByPred returns the atoms with the given predicate, in insertion
// order.
func (s *FactStore) ByPred(pred string) []Atom {
	pid, ok := s.syms.LookupPred(pred)
	if !ok {
		return nil
	}
	if s.parent == nil {
		idxs := s.storage.PredIndices(pid)
		atoms := s.storage.Atoms()
		out := make([]Atom, len(idxs))
		for i, idx := range idxs {
			out[i] = atoms[idx]
		}
		return out
	}
	idxs := s.appendPredIndices(pid, 0, s.Len(), nil)
	out := make([]Atom, len(idxs))
	for i, idx := range idxs {
		out[i] = s.atomAt(int(idx))
	}
	return out
}

// CountPred returns the number of atoms with the given predicate.
func (s *FactStore) CountPred(pred string) int {
	pid, ok := s.syms.LookupPred(pred)
	if !ok {
		return 0
	}
	if s.parent == nil {
		return len(s.storage.PredIndices(pid))
	}
	return s.countPredWindow(pid, 0, s.Len())
}

// countPredWindow returns the number of atoms with the given predicate
// id whose store index lies in [lo, hi).
func (s *FactStore) countPredWindow(pid uint32, lo, hi int) int {
	n := 0
	s.forEachLayer(hi, func(st *FactStore, bound int) bool {
		if bound <= lo {
			return false
		}
		var idxs []uint32
		if st.parent == nil {
			idxs = st.storage.PredIndices(pid)
		} else {
			idxs = st.byPred[pid]
		}
		n += len(clipWindowU32(idxs, lo, bound))
		return true
	})
	return n
}

// AtomAt returns the atom with the given store index (insertion rank).
func (s *FactStore) AtomAt(i int) Atom { return s.atomAt(i) }

func (s *FactStore) atomAt(i int) Atom {
	st := s
	for i < st.base {
		st = st.parent
	}
	if st.parent == nil {
		return st.storage.AtomAt(i)
	}
	return st.atoms[i-st.base]
}

// predIndices returns the store indices of atoms with the given
// predicate id, ascending. Shared with the store: callers must not
// modify. Valid only for root stores; snapshot layers use
// appendPredIndices.
func (s *FactStore) predIndices(pid uint32) []uint32 { return s.storage.PredIndices(pid) }

// appendPredIndices appends the store indices of atoms with the given
// predicate id in [lo, hi) onto buf, ascending.
func (s *FactStore) appendPredIndices(pid uint32, lo, hi int, buf []uint32) []uint32 {
	if s.parent == nil {
		return append(buf, clipWindowU32(s.storage.PredIndices(pid), lo, hi)...)
	}
	ph := hi
	if s.base < ph {
		ph = s.base
	}
	buf = s.parent.appendPredIndices(pid, lo, ph, buf)
	return append(buf, clipWindowU32(s.byPred[pid], lo, hi)...)
}

// postings returns the store indices of atoms with predicate id pid
// whose argument at 0-based position pos is the interned term tid,
// ascending. For a root store the result is shared with the store and
// must not be modified (a nil result means no atom matches); a snapshot
// layer materializes the merged list.
func (s *FactStore) postings(pid uint32, pos int, tid uint32) []uint32 {
	if s.parent == nil {
		return s.storage.Postings(pid, pos, tid)
	}
	return s.appendPostings(pid, pos, tid, 0, s.Len(), nil)
}

// appendPostings appends the posting-list entries in [lo, hi) onto buf,
// ascending across the snapshot chain (ancestor indices always precede
// this layer's own).
func (s *FactStore) appendPostings(pid uint32, pos int, tid uint32, lo, hi int, buf []uint32) []uint32 {
	if s.parent == nil {
		return append(buf, clipWindowU32(s.storage.Postings(pid, pos, tid), lo, hi)...)
	}
	ph := hi
	if s.base < ph {
		ph = s.base
	}
	buf = s.parent.appendPostings(pid, pos, tid, lo, ph, buf)
	return append(buf, clipWindowU32(s.byArg[argID{pred: pid, pos: int32(pos), term: tid}], lo, hi)...)
}

// postingsCount returns the number of posting-list entries for
// (pid, pos, tid) with store index in [lo, hi).
func (s *FactStore) postingsCount(pid uint32, pos int, tid uint32, lo, hi int) int {
	n := 0
	s.forEachLayer(hi, func(st *FactStore, bound int) bool {
		if bound <= lo {
			return false
		}
		var idxs []uint32
		if st.parent == nil {
			idxs = st.storage.Postings(pid, pos, tid)
		} else {
			idxs = st.byArg[argID{pred: pid, pos: int32(pos), term: tid}]
		}
		n += len(clipWindowU32(idxs, lo, bound))
		return true
	})
	return n
}

// Preds returns the sorted list of predicates occurring in the store.
func (s *FactStore) Preds() []string {
	set := make(map[uint32]bool)
	s.forEachLayer(s.Len(), func(st *FactStore, bound int) bool {
		mark := func(p uint32, idxs []uint32) bool {
			if !set[p] && len(clipWindowU32(idxs, 0, bound)) > 0 {
				set[p] = true
			}
			return true
		}
		if st.parent == nil {
			st.storage.EachPred(mark)
		} else {
			for p, idxs := range st.byPred {
				mark(p, idxs)
			}
		}
		return true
	})
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, s.syms.PredName(p))
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep, independent copy (atoms are immutable and
// shared, as is the chain's append-only Symbols table). The copy is
// always a root store backed by a fresh in-memory Storage, even when s
// is a snapshot layer; use Snapshot for an O(1) copy-on-write child
// instead.
func (s *FactStore) Clone() *FactStore {
	return s.flatten(s.Len())
}

// Domain returns the set of constants and nulls occurring in the store
// (recursing into function terms), sorted by canonical key. The set is
// maintained incrementally by Add, so a call costs O(domain), not
// O(atoms).
func (s *FactStore) Domain() []Term {
	type entry struct {
		key  string
		term Term
	}
	seen := make(map[uint32]bool)
	var entries []entry
	s.forEachLayer(s.Len(), func(st *FactStore, bound int) bool {
		collect := func(id uint32, idx int) bool {
			if idx < bound && !seen[id] {
				seen[id] = true
				entries = append(entries, entry{key: s.syms.TermKey(id), term: s.syms.TermOf(id)})
			}
			return true
		}
		if st.parent == nil {
			st.storage.EachDomain(collect)
		} else {
			for id, idx := range st.dom {
				collect(id, idx)
			}
		}
		return true
	})
	// The interner caches each term's canonical key: sorting by the
	// cached keys avoids re-rendering every term per comparison.
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	out := make([]Term, len(entries))
	for i, e := range entries {
		out[i] = e.term
	}
	return out
}

// CanonicalString renders the store as a sorted comma-separated list of
// atoms; equal sets of atoms produce equal strings.
func (s *FactStore) CanonicalString() string {
	atoms := s.Atoms()
	keys := make([]string, 0, len(atoms))
	for _, a := range atoms {
		keys = append(keys, a.String())
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

// Equal reports whether two stores contain exactly the same atoms. The
// stores need not share a Symbols table: atoms are compared
// structurally via key lookups in o's own table.
func (s *FactStore) Equal(o *FactStore) bool {
	if s.Len() != o.Len() {
		return false
	}
	return s.EachAtomIn(0, s.Len(), func(_ int, a Atom) bool { return o.Has(a) })
}

// SubsetOf reports whether every atom of s is in o.
func (s *FactStore) SubsetOf(o *FactStore) bool {
	if s.Len() > o.Len() {
		return false
	}
	return s.EachAtomIn(0, s.Len(), func(_ int, a Atom) bool { return o.Has(a) })
}

// Sorted returns the atoms sorted by canonical key (a fresh slice).
func (s *FactStore) Sorted() []Atom {
	out := append([]Atom(nil), s.Atoms()...)
	return SortAtoms(out)
}
