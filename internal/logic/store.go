package logic

import (
	"sort"
	"strings"
)

// FactStore is a set of ground atoms with a per-predicate index and a
// (predicate, argument-position, ground-term) index, the basic
// container for databases, chase results, and (the positive part of)
// interpretations. Insertion order is preserved for deterministic
// iteration, and every atom has a stable store index (its insertion
// rank), which the semi-naive evaluation layers use to address deltas
// as index windows. The zero value is not ready to use; call
// NewFactStore.
type FactStore struct {
	byKey  map[string]int // atom key -> index into atoms
	byPred map[string][]int
	byArg  map[argKey][]int // posting lists, ascending store indices
	atoms  []Atom
}

// argKey addresses one posting list: all atoms with predicate pred
// whose argument at 0-based position pos has canonical term key term.
type argKey struct {
	pred string
	pos  int
	term string
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{
		byKey:  make(map[string]int),
		byPred: make(map[string][]int),
		byArg:  make(map[argKey][]int),
	}
}

// StoreOf returns a store containing the given atoms.
func StoreOf(atoms ...Atom) *FactStore {
	s := NewFactStore()
	for _, a := range atoms {
		s.Add(a)
	}
	return s
}

// Add inserts the atom, reporting whether it was new.
func (s *FactStore) Add(a Atom) bool {
	k := a.Key()
	if _, ok := s.byKey[k]; ok {
		return false
	}
	idx := len(s.atoms)
	s.atoms = append(s.atoms, a)
	s.byKey[k] = idx
	s.byPred[a.Pred] = append(s.byPred[a.Pred], idx)
	for i, t := range a.Args {
		ak := argKey{pred: a.Pred, pos: i, term: t.Key()}
		s.byArg[ak] = append(s.byArg[ak], idx)
	}
	return true
}

// AddAll inserts every atom, returning the number that were new.
func (s *FactStore) AddAll(atoms []Atom) int {
	n := 0
	for _, a := range atoms {
		if s.Add(a) {
			n++
		}
	}
	return n
}

// Has reports whether the atom is in the store.
func (s *FactStore) Has(a Atom) bool {
	_, ok := s.byKey[a.Key()]
	return ok
}

// HasKey reports whether an atom with the given canonical key is in the
// store.
func (s *FactStore) HasKey(key string) bool {
	_, ok := s.byKey[key]
	return ok
}

// indexOfKey returns the store index of the atom with the given
// canonical key, if present.
func (s *FactStore) indexOfKey(key string) (int, bool) {
	idx, ok := s.byKey[key]
	return idx, ok
}

// Len returns the number of atoms.
func (s *FactStore) Len() int { return len(s.atoms) }

// Atoms returns the atoms in insertion order. The returned slice is
// shared with the store and must not be modified.
func (s *FactStore) Atoms() []Atom { return s.atoms }

// ByPred returns the atoms with the given predicate, in insertion
// order.
func (s *FactStore) ByPred(pred string) []Atom {
	idxs := s.byPred[pred]
	out := make([]Atom, len(idxs))
	for i, idx := range idxs {
		out[i] = s.atoms[idx]
	}
	return out
}

// CountPred returns the number of atoms with the given predicate.
func (s *FactStore) CountPred(pred string) int { return len(s.byPred[pred]) }

// AtomAt returns the atom with the given store index (insertion rank).
func (s *FactStore) AtomAt(i int) Atom { return s.atoms[i] }

// predIndices returns the store indices of atoms with the given
// predicate, ascending. Shared with the store: callers must not modify.
func (s *FactStore) predIndices(pred string) []int { return s.byPred[pred] }

// postings returns the store indices of atoms with predicate pred whose
// argument at 0-based position pos equals the term with the given
// canonical key, ascending. Shared with the store: callers must not
// modify. A nil result means no atom matches.
func (s *FactStore) postings(pred string, pos int, termKey string) []int {
	return s.byArg[argKey{pred: pred, pos: pos, term: termKey}]
}

// Preds returns the sorted list of predicates occurring in the store.
func (s *FactStore) Preds() []string {
	out := make([]string, 0, len(s.byPred))
	for p := range s.byPred {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep-enough copy (atoms are immutable and shared).
func (s *FactStore) Clone() *FactStore {
	c := &FactStore{
		byKey:  make(map[string]int, len(s.byKey)),
		byPred: make(map[string][]int, len(s.byPred)),
		byArg:  make(map[argKey][]int, len(s.byArg)),
		atoms:  make([]Atom, len(s.atoms)),
	}
	copy(c.atoms, s.atoms)
	for k, v := range s.byKey {
		c.byKey[k] = v
	}
	for p, idxs := range s.byPred {
		c.byPred[p] = append([]int(nil), idxs...)
	}
	for k, idxs := range s.byArg {
		c.byArg[k] = append([]int(nil), idxs...)
	}
	return c
}

// Domain returns the set of constants and nulls occurring in the store
// (recursing into function terms), sorted by canonical key.
func (s *FactStore) Domain() []Term {
	seen := make(map[string]Term)
	var walk func(t Term)
	walk = func(t Term) {
		switch t.Kind {
		case Const, Null:
			seen[t.Key()] = t
		case Func:
			for _, a := range t.Args {
				walk(a)
			}
		}
	}
	for _, a := range s.atoms {
		for _, t := range a.Args {
			walk(t)
		}
	}
	out := make([]Term, 0, len(seen))
	for _, t := range seen {
		out = append(out, t)
	}
	SortTerms(out)
	return out
}

// CanonicalString renders the store as a sorted comma-separated list of
// atoms; equal sets of atoms produce equal strings.
func (s *FactStore) CanonicalString() string {
	keys := make([]string, 0, len(s.atoms))
	for _, a := range s.atoms {
		keys = append(keys, a.String())
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

// Equal reports whether two stores contain exactly the same atoms.
func (s *FactStore) Equal(o *FactStore) bool {
	if s.Len() != o.Len() {
		return false
	}
	for k := range s.byKey {
		if !o.HasKey(k) {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every atom of s is in o.
func (s *FactStore) SubsetOf(o *FactStore) bool {
	if s.Len() > o.Len() {
		return false
	}
	for k := range s.byKey {
		if !o.HasKey(k) {
			return false
		}
	}
	return true
}

// Sorted returns the atoms sorted by canonical key (a fresh slice).
func (s *FactStore) Sorted() []Atom {
	out := append([]Atom(nil), s.atoms...)
	return SortAtoms(out)
}
