package logic

import (
	"math"
	"sort"
	"strings"

	"ntgd/internal/failpoint"
)

// FactStore is a set of ground atoms with a per-predicate index and a
// (predicate, argument-position, ground-term) index, the basic
// container for databases, chase results, and (the positive part of)
// interpretations. Insertion order is preserved for deterministic
// iteration, and every atom has a stable store index (its insertion
// rank), which the semi-naive evaluation layers use to address deltas
// as index windows. The zero value is not ready to use; call
// NewFactStore.
//
// A store may be a copy-on-write snapshot layer (see Snapshot): it then
// holds a pointer to its parent chain plus only its own additions, and
// every read merges the layers transparently. Store indices are global
// across a chain — a layer's first own atom has index base — so delta
// windows taken against a parent remain valid against its snapshots.
//
// Concurrency. A FactStore is not synchronized; what makes concurrent
// use of snapshot chains safe is a freeze discipline, not locks. Every
// read path (Has/HasKey, the posting lists behind FindHoms, Domain,
// Atoms, Len, Snapshot, Clone, CanonicalString, ...) is mutation-free,
// so any number of goroutines may read through a chain concurrently
// provided no layer of that chain is being written. Add may only be
// called by the single goroutine owning the topmost layer, and only
// while no other goroutine is reading through that layer. The parallel
// stable-model search satisfies this structurally: a search node's
// layer stops growing before its branch children are snapshotted, each
// child layer has exactly one owning worker, and handing a child to a
// worker (a goroutine spawn or channel send) establishes the
// happens-before edge covering the parent chain's earlier writes.
// TestSnapshotConcurrentBranchReaders pins the discipline under -race.
type FactStore struct {
	// parent is the layer below in a copy-on-write snapshot chain; nil
	// for a root store. This layer sees exactly the first base atoms of
	// the parent chain (the parent's length when Snapshot was taken),
	// so the parent may keep growing without affecting snapshots taken
	// earlier: ancestor entries with index >= base are simply invisible
	// here.
	parent *FactStore
	base   int // number of ancestor atoms visible to this layer
	depth  int // number of ancestors, bounded by maxSnapshotDepth

	byKey  map[string]int   // atom key -> store index (this layer's atoms only)
	byPred map[string][]int // this layer's indices per predicate, ascending
	byArg  map[argKey][]int // posting lists, ascending store indices
	dom    map[string]domEntry
	atoms  []Atom // this layer's atoms; local offset i has store index base+i
}

// argKey addresses one posting list: all atoms with predicate pred
// whose argument at 0-based position pos has canonical term key term.
type argKey struct {
	pred string
	pos  int
	term string
}

// domEntry records one constant or null of the store's domain together
// with the store index of the atom that introduced it, so a snapshot
// layer can decide whether an ancestor's entry falls inside its view.
type domEntry struct {
	term Term
	idx  int
}

// maxSnapshotDepth bounds the length of a snapshot chain: Snapshot
// flattens into a fresh root once the chain would exceed it, so chain
// walks stay O(1) amortized while branch-heavy users (the stable model
// search) still share almost all layers.
const maxSnapshotDepth = 32

// NewFactStore returns an empty root store.
func NewFactStore() *FactStore {
	return &FactStore{
		byKey:  make(map[string]int),
		byPred: make(map[string][]int),
		byArg:  make(map[argKey][]int),
		dom:    make(map[string]domEntry),
	}
}

// StoreOf returns a store containing the given atoms.
func StoreOf(atoms ...Atom) *FactStore {
	s := NewFactStore()
	for _, a := range atoms {
		s.Add(a)
	}
	return s
}

// Snapshot returns a copy-on-write child of s: the child sees every
// atom s contains right now plus its own later additions, and writes to
// the child never affect s. Both stores remain fully usable afterwards
// — s may keep growing independently; the child's view of s stays
// frozen at the snapshot length. Taking a snapshot is O(1) (layers that
// never grew are collapsed away; a chain deeper than maxSnapshotDepth
// is flattened into a fresh root, costing one deep copy).
//
// Sibling snapshots may be used from different goroutines once their
// shared ancestors stop growing; see the concurrency notes on
// FactStore.
func (s *FactStore) Snapshot() *FactStore {
	failpoint.Inject(failpoint.StoreSnapshot)
	base := s.Len()
	parent := s
	// A layer that never grew contributes nothing: snapshot its parent
	// instead, keeping chains short across write-free generations.
	for parent.parent != nil && len(parent.atoms) == 0 {
		parent = parent.parent
	}
	if parent.depth+1 > maxSnapshotDepth {
		return s.flatten(base)
	}
	// Index maps are materialized lazily on the first Add, so snapshots
	// that never write (e.g. deferral branches) cost one struct.
	return &FactStore{parent: parent, base: base, depth: parent.depth + 1}
}

// flatten deep-copies the first bound atoms of the chain into a fresh
// root store by merging the layers' already-materialized indices —
// global indices carry over unchanged, so no atom or term key is ever
// re-rendered.
func (s *FactStore) flatten(bound int) *FactStore {
	failpoint.Inject(failpoint.StoreFlatten)
	c := NewFactStore()
	c.atoms = s.appendAtomsBelow(bound, make([]Atom, 0, bound))
	var layers []*FactStore
	var bounds []int
	s.forEachLayer(bound, func(st *FactStore, b int) bool {
		layers = append(layers, st)
		bounds = append(bounds, b)
		return true
	})
	// Bottom-up (root first) so merged posting lists stay ascending.
	for i := len(layers) - 1; i >= 0; i-- {
		st, b := layers[i], bounds[i]
		for k, idx := range st.byKey {
			if idx < b {
				c.byKey[k] = idx
			}
		}
		for p, idxs := range st.byPred {
			if w := clipWindow(idxs, 0, b); len(w) > 0 {
				c.byPred[p] = append(c.byPred[p], w...)
			}
		}
		for k, idxs := range st.byArg {
			if w := clipWindow(idxs, 0, b); len(w) > 0 {
				c.byArg[k] = append(c.byArg[k], w...)
			}
		}
		for k, e := range st.dom {
			if e.idx < b {
				if _, ok := c.dom[k]; !ok {
					c.dom[k] = e
				}
			}
		}
	}
	return c
}

// forEachLayer walks the snapshot chain from this layer toward the
// root, invoking fn with each layer and the bound on the store indices
// visible there: a layer's own entries count only when their index is
// below the bound, and descending past a layer shrinks the bound to its
// base. Every chain-merging read goes through this iterator so the
// check-before-shrink invariant lives in one place. fn returning false
// stops the walk.
func (s *FactStore) forEachLayer(bound int, fn func(st *FactStore, bound int) bool) {
	for st := s; st != nil; st = st.parent {
		if !fn(st, bound) {
			return
		}
		if st.base < bound {
			bound = st.base
		}
	}
}

// Add inserts the atom, reporting whether it was new.
func (s *FactStore) Add(a Atom) bool {
	k := a.Key()
	if _, ok := s.lookupKey(k); ok {
		return false
	}
	if s.byKey == nil {
		s.byKey = make(map[string]int)
		s.byPred = make(map[string][]int)
		s.byArg = make(map[argKey][]int)
		s.dom = make(map[string]domEntry)
	}
	idx := s.Len()
	s.atoms = append(s.atoms, a)
	s.byKey[k] = idx
	s.byPred[a.Pred] = append(s.byPred[a.Pred], idx)
	for i, t := range a.Args {
		ak := argKey{pred: a.Pred, pos: i, term: t.Key()}
		s.byArg[ak] = append(s.byArg[ak], idx)
		s.addDomainTerms(t, idx)
	}
	return true
}

// addDomainTerms records the constants and nulls of t (recursing into
// function terms) that are not yet visible in the store's domain,
// keeping Domain incremental instead of re-walking all atoms per call.
func (s *FactStore) addDomainTerms(t Term, idx int) {
	switch t.Kind {
	case Const, Null:
		k := t.Key()
		if !s.hasDomainKey(k) {
			s.dom[k] = domEntry{term: t, idx: idx}
		}
	case Func:
		for _, a := range t.Args {
			s.addDomainTerms(a, idx)
		}
	}
}

func (s *FactStore) hasDomainKey(key string) bool {
	found := false
	s.forEachLayer(math.MaxInt, func(st *FactStore, bound int) bool {
		if e, ok := st.dom[key]; ok && e.idx < bound {
			found = true
			return false
		}
		return true
	})
	return found
}

// HasDomainTerm reports whether the ground term occurs in the store's
// domain (see Domain), in O(chain) map probes.
func (s *FactStore) HasDomainTerm(t Term) bool { return s.hasDomainKey(t.Key()) }

// AddAll inserts every atom, returning the number that were new.
func (s *FactStore) AddAll(atoms []Atom) int {
	n := 0
	for _, a := range atoms {
		if s.Add(a) {
			n++
		}
	}
	return n
}

// lookupKey resolves an atom key through the snapshot chain: each
// layer's own entries are consulted under the visibility bound imposed
// by the layers above it.
func (s *FactStore) lookupKey(key string) (int, bool) {
	found, foundIdx := false, 0
	s.forEachLayer(math.MaxInt, func(st *FactStore, bound int) bool {
		if idx, ok := st.byKey[key]; ok && idx < bound {
			found, foundIdx = true, idx
			return false
		}
		return true
	})
	return foundIdx, found
}

// Has reports whether the atom is in the store.
func (s *FactStore) Has(a Atom) bool {
	_, ok := s.lookupKey(a.Key())
	return ok
}

// HasKey reports whether an atom with the given canonical key is in the
// store.
func (s *FactStore) HasKey(key string) bool {
	_, ok := s.lookupKey(key)
	return ok
}

// indexOfKey returns the store index of the atom with the given
// canonical key, if present.
func (s *FactStore) indexOfKey(key string) (int, bool) {
	return s.lookupKey(key)
}

// IndexOfKey returns the global store index of the atom with the given
// canonical key, if present — the allocation-free probe for callers
// that hold a pre-rendered key.
func (s *FactStore) IndexOfKey(key string) (int, bool) {
	return s.lookupKey(key)
}

// Len returns the number of atoms.
func (s *FactStore) Len() int { return s.base + len(s.atoms) }

// Atoms returns the atoms in insertion order. For a root store the
// returned slice is shared with the store and must not be modified; a
// snapshot layer materializes a fresh slice.
func (s *FactStore) Atoms() []Atom {
	if s.parent == nil {
		return s.atoms
	}
	return s.appendAtomsBelow(s.Len(), make([]Atom, 0, s.Len()))
}

// appendAtomsBelow appends the atoms with store index < bound onto buf,
// in index order.
func (s *FactStore) appendAtomsBelow(bound int, buf []Atom) []Atom {
	if s.parent != nil {
		pb := bound
		if s.base < pb {
			pb = s.base
		}
		buf = s.parent.appendAtomsBelow(pb, buf)
	}
	if n := bound - s.base; n > 0 {
		if n > len(s.atoms) {
			n = len(s.atoms)
		}
		buf = append(buf, s.atoms[:n]...)
	}
	return buf
}

// EachAtomIn invokes fn for every atom whose store index lies in
// [lo, hi), in ascending index order; fn returning false stops the walk
// (and makes EachAtomIn return false). It is the index-window iteration
// delta-driven encoders use to inspect the new atoms of a growing store
// (or snapshot chain) without materializing a slice.
func (s *FactStore) EachAtomIn(lo, hi int, fn func(idx int, a Atom) bool) bool {
	if n := s.Len(); hi > n {
		hi = n
	}
	if lo < 0 {
		lo = 0
	}
	if lo >= hi {
		return true
	}
	if s.parent != nil {
		ph := hi
		if s.base < ph {
			ph = s.base
		}
		if !s.parent.EachAtomIn(lo, ph, fn) {
			return false
		}
	}
	start := lo - s.base
	if start < 0 {
		start = 0
	}
	for i := start; i < len(s.atoms) && s.base+i < hi; i++ {
		if !fn(s.base+i, s.atoms[i]) {
			return false
		}
	}
	return true
}

// ByPred returns the atoms with the given predicate, in insertion
// order.
func (s *FactStore) ByPred(pred string) []Atom {
	if s.parent == nil {
		idxs := s.byPred[pred]
		out := make([]Atom, len(idxs))
		for i, idx := range idxs {
			out[i] = s.atoms[idx]
		}
		return out
	}
	idxs := s.appendPredIndices(pred, 0, s.Len(), nil)
	out := make([]Atom, len(idxs))
	for i, idx := range idxs {
		out[i] = s.atomAt(idx)
	}
	return out
}

// CountPred returns the number of atoms with the given predicate.
func (s *FactStore) CountPred(pred string) int {
	if s.parent == nil {
		return len(s.byPred[pred])
	}
	return s.countPredWindow(pred, 0, s.Len())
}

// countPredWindow returns the number of atoms with the given predicate
// whose store index lies in [lo, hi).
func (s *FactStore) countPredWindow(pred string, lo, hi int) int {
	n := 0
	s.forEachLayer(hi, func(st *FactStore, bound int) bool {
		if bound <= lo {
			return false
		}
		n += len(clipWindow(st.byPred[pred], lo, bound))
		return true
	})
	return n
}

// AtomAt returns the atom with the given store index (insertion rank).
func (s *FactStore) AtomAt(i int) Atom { return s.atomAt(i) }

func (s *FactStore) atomAt(i int) Atom {
	st := s
	for i < st.base {
		st = st.parent
	}
	return st.atoms[i-st.base]
}

// predIndices returns the store indices of atoms with the given
// predicate, ascending. Shared with the store: callers must not modify.
// Valid only for root stores; snapshot layers use appendPredIndices.
func (s *FactStore) predIndices(pred string) []int { return s.byPred[pred] }

// appendPredIndices appends the store indices of atoms with the given
// predicate in [lo, hi) onto buf, ascending.
func (s *FactStore) appendPredIndices(pred string, lo, hi int, buf []int) []int {
	if s.parent != nil {
		ph := hi
		if s.base < ph {
			ph = s.base
		}
		buf = s.parent.appendPredIndices(pred, lo, ph, buf)
	}
	return append(buf, clipWindow(s.byPred[pred], lo, hi)...)
}

// postings returns the store indices of atoms with predicate pred whose
// argument at 0-based position pos equals the term with the given
// canonical key, ascending. For a root store the result is shared with
// the store and must not be modified (a nil result means no atom
// matches); a snapshot layer materializes the merged list.
func (s *FactStore) postings(pred string, pos int, termKey string) []int {
	if s.parent == nil {
		return s.byArg[argKey{pred: pred, pos: pos, term: termKey}]
	}
	return s.appendPostings(pred, pos, termKey, 0, s.Len(), nil)
}

// appendPostings appends the posting-list entries in [lo, hi) onto buf,
// ascending across the snapshot chain (ancestor indices always precede
// this layer's own).
func (s *FactStore) appendPostings(pred string, pos int, termKey string, lo, hi int, buf []int) []int {
	if s.parent != nil {
		ph := hi
		if s.base < ph {
			ph = s.base
		}
		buf = s.parent.appendPostings(pred, pos, termKey, lo, ph, buf)
	}
	return append(buf, clipWindow(s.byArg[argKey{pred: pred, pos: pos, term: termKey}], lo, hi)...)
}

// postingsCount returns the number of posting-list entries for
// (pred, pos, termKey) with store index in [lo, hi).
func (s *FactStore) postingsCount(pred string, pos int, termKey string, lo, hi int) int {
	n := 0
	s.forEachLayer(hi, func(st *FactStore, bound int) bool {
		if bound <= lo {
			return false
		}
		n += len(clipWindow(st.byArg[argKey{pred: pred, pos: pos, term: termKey}], lo, bound))
		return true
	})
	return n
}

// Preds returns the sorted list of predicates occurring in the store.
func (s *FactStore) Preds() []string {
	if s.parent == nil {
		out := make([]string, 0, len(s.byPred))
		for p := range s.byPred {
			out = append(out, p)
		}
		sort.Strings(out)
		return out
	}
	set := make(map[string]bool)
	s.forEachLayer(s.Len(), func(st *FactStore, bound int) bool {
		for p, idxs := range st.byPred {
			if !set[p] && len(clipWindow(idxs, 0, bound)) > 0 {
				set[p] = true
			}
		}
		return true
	})
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep, independent copy (atoms are immutable and
// shared). The copy is always a root store, even when s is a snapshot
// layer; use Snapshot for an O(1) copy-on-write child instead.
func (s *FactStore) Clone() *FactStore {
	if s.parent != nil {
		return s.flatten(s.Len())
	}
	c := &FactStore{
		byKey:  make(map[string]int, len(s.byKey)),
		byPred: make(map[string][]int, len(s.byPred)),
		byArg:  make(map[argKey][]int, len(s.byArg)),
		dom:    make(map[string]domEntry, len(s.dom)),
		atoms:  make([]Atom, len(s.atoms)),
	}
	copy(c.atoms, s.atoms)
	for k, v := range s.byKey {
		c.byKey[k] = v
	}
	for p, idxs := range s.byPred {
		c.byPred[p] = append([]int(nil), idxs...)
	}
	for k, idxs := range s.byArg {
		c.byArg[k] = append([]int(nil), idxs...)
	}
	for k, e := range s.dom {
		c.dom[k] = e
	}
	return c
}

// Domain returns the set of constants and nulls occurring in the store
// (recursing into function terms), sorted by canonical key. The set is
// maintained incrementally by Add, so a call costs O(domain), not
// O(atoms).
func (s *FactStore) Domain() []Term {
	type entry struct {
		key  string
		term Term
	}
	seen := make(map[string]bool)
	var entries []entry
	s.forEachLayer(s.Len(), func(st *FactStore, bound int) bool {
		for k, e := range st.dom {
			if e.idx < bound && !seen[k] {
				seen[k] = true
				entries = append(entries, entry{key: k, term: e.term})
			}
		}
		return true
	})
	// The map keys are already the canonical term keys: sorting by them
	// avoids re-rendering every term per comparison.
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	out := make([]Term, len(entries))
	for i, e := range entries {
		out[i] = e.term
	}
	return out
}

// CanonicalString renders the store as a sorted comma-separated list of
// atoms; equal sets of atoms produce equal strings.
func (s *FactStore) CanonicalString() string {
	atoms := s.Atoms()
	keys := make([]string, 0, len(atoms))
	for _, a := range atoms {
		keys = append(keys, a.String())
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

// eachKey invokes fn for every visible atom key; fn returning false
// stops the walk (and makes eachKey return false).
func (s *FactStore) eachKey(fn func(key string) bool) bool {
	ok := true
	s.forEachLayer(s.Len(), func(st *FactStore, bound int) bool {
		for k, idx := range st.byKey {
			if idx < bound && !fn(k) {
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}

// Equal reports whether two stores contain exactly the same atoms.
func (s *FactStore) Equal(o *FactStore) bool {
	if s.Len() != o.Len() {
		return false
	}
	return s.eachKey(o.HasKey)
}

// SubsetOf reports whether every atom of s is in o.
func (s *FactStore) SubsetOf(o *FactStore) bool {
	if s.Len() > o.Len() {
		return false
	}
	return s.eachKey(o.HasKey)
}

// Sorted returns the atoms sorted by canonical key (a fresh slice).
func (s *FactStore) Sorted() []Atom {
	out := append([]Atom(nil), s.Atoms()...)
	return SortAtoms(out)
}
