package logic

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTermConstructorsAndKinds(t *testing.T) {
	cases := []struct {
		term Term
		kind TermKind
		str  string
	}{
		{C("alice"), Const, "alice"},
		{N("n1"), Null, "_:n1"},
		{V("X"), Var, "X"},
		{F("f", C("a"), V("X")), Func, "f(a,X)"},
		{F("g"), Func, "g()"},
		{F("f", F("g", N("n"))), Func, "f(g(_:n))"},
	}
	for _, tc := range cases {
		if tc.term.Kind != tc.kind {
			t.Errorf("%v: kind = %v, want %v", tc.term, tc.term.Kind, tc.kind)
		}
		if got := tc.term.String(); got != tc.str {
			t.Errorf("String() = %q, want %q", got, tc.str)
		}
	}
}

func TestTermGroundAndNulls(t *testing.T) {
	if !C("a").IsGround() || !N("n").IsGround() {
		t.Errorf("constants and nulls are ground")
	}
	if V("X").IsGround() {
		t.Errorf("variables are not ground")
	}
	if F("f", V("X")).IsGround() {
		t.Errorf("f(X) is not ground")
	}
	if !F("f", C("a")).IsGround() {
		t.Errorf("f(a) is ground")
	}
	if !F("f", N("n")).HasNull() || C("a").HasNull() {
		t.Errorf("HasNull misbehaves")
	}
}

func TestTermEqualityAndKeys(t *testing.T) {
	pairs := []struct {
		a, b  Term
		equal bool
	}{
		{C("a"), C("a"), true},
		{C("a"), C("b"), false},
		{C("a"), V("a"), false}, // same name, different kind
		{C("a"), N("a"), false},
		{F("f", C("a")), F("f", C("a")), true},
		{F("f", C("a")), F("f", C("b")), false},
		{F("f", C("a")), F("g", C("a")), false},
		{F("f", C("a")), F("f", C("a"), C("a")), false},
	}
	for _, p := range pairs {
		if got := p.a.Equal(p.b); got != p.equal {
			t.Errorf("%v.Equal(%v) = %v, want %v", p.a, p.b, got, p.equal)
		}
		if (p.a.Key() == p.b.Key()) != p.equal {
			t.Errorf("Key collision mismatch for %v vs %v", p.a, p.b)
		}
	}
}

func TestTermDepth(t *testing.T) {
	if d := C("a").Depth(); d != 0 {
		t.Errorf("const depth = %d", d)
	}
	if d := F("f", C("a")).Depth(); d != 1 {
		t.Errorf("f(a) depth = %d", d)
	}
	if d := F("f", F("g", F("h", V("X")))).Depth(); d != 3 {
		t.Errorf("f(g(h(X))) depth = %d", d)
	}
}

func TestTermVars(t *testing.T) {
	vs := F("f", V("X"), C("a"), F("g", V("Y"), V("X"))).Vars(nil)
	want := []string{"X", "Y", "X"}
	if !reflect.DeepEqual(vs, want) {
		t.Errorf("Vars = %v, want %v", vs, want)
	}
}

// genTerm builds a random term of bounded depth for property tests.
func genTerm(rng *rand.Rand, depth int) Term {
	switch k := rng.Intn(4); {
	case k == 0:
		return C(string(rune('a' + rng.Intn(4))))
	case k == 1:
		return N(string(rune('m' + rng.Intn(3))))
	case k == 2:
		return V(string(rune('X' + rng.Intn(3))))
	default:
		if depth <= 0 {
			return C("leaf")
		}
		n := rng.Intn(3)
		args := make([]Term, n)
		for i := range args {
			args[i] = genTerm(rng, depth-1)
		}
		return F(string(rune('f'+rng.Intn(2))), args...)
	}
}

// TestTermKeyInjective (property): equal keys iff equal terms.
func TestTermKeyInjective(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		a := genTerm(rng, 3)
		b := genTerm(rng, 3)
		return (a.Key() == b.Key()) == a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestSubstIdentityOnGround (property): applying a substitution to a
// ground term is the identity.
func TestSubstIdentityOnGround(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := Subst{"X": C("q"), "Y": N("n9"), "Z": F("f", C("r"))}
	f := func() bool {
		tm := genTerm(rng, 3)
		if !tm.IsGround() {
			return true
		}
		return s.ApplyTerm(tm).Equal(tm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestMatchThenApply (property): if s.MatchTerm(p, g) succeeds on a
// fresh substitution then s(p) = g.
func TestMatchThenApply(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		p := genTerm(rng, 3)
		g := genTerm(rng, 3)
		if !g.IsGround() {
			return true
		}
		s := Subst{}
		if !s.MatchTerm(p, g) {
			return true
		}
		return s.ApplyTerm(p).Equal(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestSortTermsDeterminism(t *testing.T) {
	ts := []Term{V("X"), C("b"), N("n"), C("a")}
	SortTerms(ts)
	ts2 := []Term{C("a"), N("n"), C("b"), V("X")}
	SortTerms(ts2)
	for i := range ts {
		if !ts[i].Equal(ts2[i]) {
			t.Fatalf("sorting is not canonical: %v vs %v", ts, ts2)
		}
	}
}

// TestAppendKeyMatchesKey pins the two canonical-key serializers to
// each other: AppendKey (buffer-appending, used for compound keys like
// the search's trigger identities) must render exactly what Key does,
// for every term kind including nesting.
func TestAppendKeyMatchesKey(t *testing.T) {
	terms := []Term{
		C("a"), C(""), N("n1"), V("X"),
		F("f"), F("f", C("a")), F("f", C("a"), N("n2"), V("Y")),
		F("f", F("g", F("h", C("x"), V("Z")), N("n3"))),
	}
	for _, tm := range terms {
		if got, want := string(tm.AppendKey(nil)), tm.Key(); got != want {
			t.Errorf("AppendKey(%s) = %q, Key = %q", tm, got, want)
		}
	}
	// Appending must extend, not overwrite.
	buf := []byte("prefix|")
	if got := string(C("a").AppendKey(buf)); got != "prefix|ca" {
		t.Errorf("AppendKey onto prefix = %q", got)
	}
}
