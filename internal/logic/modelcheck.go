package logic

// Model checking for (normal, possibly disjunctive) TGDs under the
// paper's closed-world reading of interpretations: an interpretation I
// is identified with its positive part I⁺ (a FactStore); a negative
// literal ¬p(t̄) holds iff p(t̄) ∉ I⁺.

// Violation describes one unsatisfied trigger: a homomorphism h with
// h(B⁺(σ)) ⊆ I and h(B⁻(σ)) ∩ I = ∅ such that no head disjunct can be
// extended into I.
type Violation struct {
	Rule *Rule
	Hom  Subst
}

// SatisfiesRule reports whether store is a model of r: whenever a
// homomorphism h maps the positive body into the store and no negative
// body instance is present, some head disjunct admits an extension of h
// into the store (Section 2's I |= σ lifted to disjunctive heads as in
// Section 6). Constraints (empty heads) are satisfied iff the body has
// no homomorphism.
func SatisfiesRule(r *Rule, store *FactStore) bool {
	return FirstViolation(r, store) == nil
}

// FirstViolation returns a violation witness for r over store, or nil
// if store satisfies r. The returned homomorphism is cloned and safe to
// keep.
func FirstViolation(r *Rule, store *FactStore) *Violation {
	pos, neg := SplitLiterals(r.Body)
	var found *Violation
	FindHoms(pos, neg, store, Subst{}, func(h Subst) bool {
		if headSatisfied(r, h, store) {
			return true
		}
		found = &Violation{Rule: r, Hom: h.Clone()}
		return false
	})
	return found
}

// headSatisfied reports whether some disjunct of r admits an extension
// of h into store. Constraints have no disjuncts and are never
// satisfied once the body holds.
func headSatisfied(r *Rule, h Subst, store *FactStore) bool {
	for i := range r.Heads {
		if ExistsHom(r.Heads[i], nil, store, h) {
			return true
		}
	}
	return false
}

// IsModel reports whether store is a model of every rule.
func IsModel(rules []*Rule, store *FactStore) bool {
	for _, r := range rules {
		if !SatisfiesRule(r, store) {
			return false
		}
	}
	return true
}

// FindViolations returns up to max violations across all rules (all of
// them if max <= 0).
func FindViolations(rules []*Rule, store *FactStore, max int) []Violation {
	var out []Violation
	for _, r := range rules {
		pos, neg := SplitLiterals(r.Body)
		FindHoms(pos, neg, store, Subst{}, func(h Subst) bool {
			if headSatisfied(r, h, store) {
				return true
			}
			out = append(out, Violation{Rule: r, Hom: h.Clone()})
			return max <= 0 || len(out) < max
		})
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

// Witness is the paper's Definition 4: for an NTGD σ and interpretation
// I, the witness W^σ_I collects every homomorphism h with h(B(σ)) ⊆ I
// together with the set E of extensions µ ⊇ h with µ(H(σ)) ⊆ I. The
// witness is negative if some entry has no extensions. For disjunctive
// rules the extensions record the disjunct index.
type Witness struct {
	Rule    *Rule
	Entries []WitnessEntry
}

// WitnessEntry pairs one body homomorphism with its head extensions.
type WitnessEntry struct {
	Hom        Subst
	Extensions []WitnessExtension
}

// WitnessExtension is one way of satisfying the head: an extension of
// the body homomorphism into a particular disjunct.
type WitnessExtension struct {
	Disjunct int
	Hom      Subst
}

// IsPositive reports whether every entry has at least one extension
// (Definition 4: the witness is positive).
func (w *Witness) IsPositive() bool {
	for _, e := range w.Entries {
		if len(e.Extensions) == 0 {
			return false
		}
	}
	return true
}

// ComputeWitness materializes W^σ_I for rule r over store. By Lemma 10,
// store |= Σ iff ComputeWitness(σ, store).IsPositive() for every σ ∈ Σ.
func ComputeWitness(r *Rule, store *FactStore) *Witness {
	w := &Witness{Rule: r}
	pos, neg := SplitLiterals(r.Body)
	FindHoms(pos, neg, store, Subst{}, func(h Subst) bool {
		entry := WitnessEntry{Hom: h.Clone()}
		for i := range r.Heads {
			disj := i
			FindHoms(r.Heads[i], nil, store, h, func(mu Subst) bool {
				entry.Extensions = append(entry.Extensions, WitnessExtension{Disjunct: disj, Hom: mu.Clone()})
				return true
			})
		}
		w.Entries = append(w.Entries, entry)
		return true
	})
	return w
}
