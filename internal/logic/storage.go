package logic

import (
	"encoding/binary"
)

// FactKey is the packed identity of a ground atom: the interned
// predicate id followed by one interned term id per argument, each as 4
// little-endian bytes. Keys are only comparable between stores sharing
// one Symbols table (a snapshot chain and everything compiled against
// the same database); they replace the canonical-string atom keys of
// earlier revisions, so equality and hashing are fixed-width integer
// work instead of term rendering.
//
// FactKey is a string type so it can key ordinary Go maps; probing a
// map[FactKey]int with FactKey(buf) for a scratch []byte compiles to an
// allocation-free map lookup, which the hot paths rely on.
type FactKey string

// Pred returns the interned predicate id of the packed key.
func (k FactKey) Pred() uint32 { return binary.LittleEndian.Uint32([]byte(k[:4])) }

// Arity returns the number of argument ids in the packed key.
func (k FactKey) Arity() int { return len(k)/4 - 1 }

// Arg returns the interned term id of the argument at 0-based position
// i.
func (k FactKey) Arg(i int) uint32 {
	return binary.LittleEndian.Uint32([]byte(k[4+4*i : 8+4*i]))
}

// factKeyBytes returns the number of bytes a fact with the given arity
// occupies as a packed tuple; it is the unit of the MaxMemory
// watermark.
func factKeyBytes(arity int) int64 { return int64(4 * (1 + arity)) }

// argID addresses one posting list: all atoms with predicate pred whose
// argument at 0-based position pos is the interned term term.
type argID struct {
	pred uint32
	pos  int32
	term uint32
}

// Storage is the root layer of a FactStore: an append-only, indexed
// tuple set addressed by global store index (insertion rank). The
// copy-on-write snapshot machinery, homomorphism search, chase, and
// stability sessions all run against this interface, so alternative
// roots (mmap-backed, columnar, remote) can be swapped in via
// ntgd.CompileOptions without touching the engine.
//
// Contract:
//   - Indices are dense and stable: the i-th accepted Add (or AddAll
//     element) has index i forever; Len only grows.
//   - Atoms must be ground; every symbol of an accepted atom is
//     interned into Symbols(), and IndexOf/IndexOfKey resolve exactly
//     the packed keys built from that table.
//   - Postings and PredIndices return ascending index lists; the slices
//     are shared with the storage and must not be modified. Callers clip
//     them to index windows for snapshot visibility, so entries beyond a
//     reader's bound are harmless.
//   - Reads must be safe concurrently with each other. Add/AddAll are
//     called only under the FactStore freeze discipline: one writer, no
//     concurrent readers on the same chain layer.
//   - TupleBytes is the retained packed-tuple volume (factKeyBytes per
//     fact); the engine's MaxMemory watermark charges against it.
type Storage interface {
	// Symbols returns the interner all keys and ids refer to.
	Symbols() *Symbols
	// Len returns the number of facts.
	Len() int
	// TupleBytes returns the total packed size of the stored tuples.
	TupleBytes() int64
	// Atoms returns all facts in index order, shared with the storage.
	Atoms() []Atom
	// AtomAt returns the fact with the given index.
	AtomAt(i int) Atom
	// IndexOf resolves a packed key held in a scratch buffer.
	IndexOf(key []byte) (int, bool)
	// IndexOfKey resolves a stored FactKey.
	IndexOfKey(key FactKey) (int, bool)
	// Postings returns the ascending indices of facts with predicate
	// pred whose argument at position pos is the term with id term.
	Postings(pred uint32, pos int, term uint32) []uint32
	// PredIndices returns the ascending indices of facts with the given
	// predicate.
	PredIndices(pred uint32) []uint32
	// DomainIndex returns the index of the fact that introduced the
	// constant or null with id term into the domain, if any.
	DomainIndex(term uint32) (int, bool)
	// Add inserts one fact, returning its index and whether it was new.
	Add(a Atom) (int, bool)
	// AddAll bulk-inserts facts, building indexes in one pass, and
	// returns how many were new. Equivalent to Add in a loop.
	AddAll(atoms []Atom) int
	// EachFact, EachPred, EachPosting, and EachDomain iterate the
	// key, per-predicate, posting-list, and domain indexes (in
	// unspecified order); fn returning false stops the walk and makes
	// the iterator return false. They exist so snapshot flattening can
	// merge a root without knowing its concrete type.
	EachFact(fn func(key FactKey, idx int) bool) bool
	EachPred(fn func(pred uint32, idxs []uint32) bool) bool
	EachPosting(fn func(id argID, idxs []uint32) bool) bool
	EachDomain(fn func(term uint32, idx int) bool) bool
}

// NewStorage returns an empty in-memory Storage with a fresh Symbols
// table — the default root used by NewFactStore, exported so callers of
// ntgd.CompileOptions.Store can pre-load one.
func NewStorage() Storage { return newMemStorage(NewSymbols()) }

// factIndex is the fact-key index of memStorage: an append-only
// open-addressed table from packed keys to dense store indices (linear
// probing, power-of-two slots, no deletions — stores only grow). Three
// properties beat the general-purpose map for this workload: the hash
// is integer mixing over the key's id words rather than byte-string
// hashing; a miss hands back the slot the probe ended on, so
// dedup-then-insert — the per-fact hot path and the bulk loader's
// inner loop — costs one traversal instead of two; and the key bytes
// live in one pointer-free blob (blob + ends), so the index holds no
// per-key allocation and the garbage collector never scans it.
type factIndex struct {
	slots []uint32  // store index + 1; 0 = empty
	blob  []byte    // all key bytes, concatenated in index order
	ends  []uint32  // ends[i] = end offset of key i (start = ends[i-1])
	stage []FactKey // flatten staging; nil outside setAt/rebuild
}

const factIndexMinSlots = 16

// hashWord folds one 4-byte id word into h (FNV-1a step).
func hashWord(h, w uint64) uint64 { return (h ^ w) * 1099511628211 }

func hashMix(h uint64) uint32 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return uint32(h)
}

func hashFactKey(k FactKey) uint32 {
	h := uint64(14695981039346656037)
	for ; len(k) >= 4; k = k[4:] {
		h = hashWord(h, uint64(binary.LittleEndian.Uint32([]byte(k[:4]))))
	}
	return hashMix(h)
}

func hashFactKeyBytes(k []byte) uint32 {
	h := uint64(14695981039346656037)
	for ; len(k) >= 4; k = k[4:] {
		h = hashWord(h, uint64(binary.LittleEndian.Uint32(k)))
	}
	return hashMix(h)
}

// keyBytes returns the packed key of store index i, aliasing the blob.
func (fi *factIndex) keyBytes(i int) []byte {
	lo := uint32(0)
	if i > 0 {
		lo = fi.ends[i-1]
	}
	return fi.blob[lo:fi.ends[i]]
}

func (fi *factIndex) lookup(k FactKey) (int, bool) {
	_, idx, ok := fi.findSlot(k)
	return idx, ok
}

// lookupBytes resolves a packed key held in a scratch buffer without
// copying it (the conversions below compile to allocation-free
// comparisons).
func (fi *factIndex) lookupBytes(key []byte) (int, bool) {
	_, idx, ok := fi.findSlotBytes(key)
	return idx, ok
}

// findSlotBytes is findSlot for a packed key held in a scratch buffer.
func (fi *factIndex) findSlotBytes(key []byte) (slot uint32, idx int, ok bool) {
	mask := uint32(len(fi.slots) - 1)
	s := hashFactKeyBytes(key) & mask
	for {
		v := fi.slots[s]
		if v == 0 {
			return s, 0, false
		}
		if string(fi.keyBytes(int(v-1))) == string(key) {
			return s, int(v - 1), true
		}
		s = (s + 1) & mask
	}
}

// findSlot returns the store index of k if present, or else the empty
// slot where it belongs. The one-writer rule guarantees nothing is
// inserted between findSlot and the paired insert.
func (fi *factIndex) findSlot(k FactKey) (slot uint32, idx int, ok bool) {
	mask := uint32(len(fi.slots) - 1)
	s := hashFactKey(k) & mask
	for {
		v := fi.slots[s]
		if v == 0 {
			return s, 0, false
		}
		if string(fi.keyBytes(int(v-1))) == string(k) {
			return s, int(v - 1), true
		}
		s = (s + 1) & mask
	}
}

// insertKey records k as the key of the next store index, filling the
// slot findSlot returned and growing past 3/4 load (growth invalidates
// outstanding slot positions).
func (fi *factIndex) insertKey(slot uint32, k FactKey) int {
	fi.blob = append(fi.blob, k...)
	return fi.finishInsert(slot)
}

// insertBytes is insertKey for a key held in a scratch buffer.
func (fi *factIndex) insertBytes(slot uint32, key []byte) int {
	fi.blob = append(fi.blob, key...)
	return fi.finishInsert(slot)
}

func (fi *factIndex) finishInsert(slot uint32) int {
	idx := len(fi.ends)
	fi.ends = append(fi.ends, uint32(len(fi.blob)))
	fi.slots[slot] = uint32(idx + 1)
	if 4*len(fi.ends) >= 3*len(fi.slots) {
		fi.grow(2 * len(fi.slots))
	}
	return idx
}

func (fi *factIndex) grow(size int) {
	slots := make([]uint32, size)
	mask := uint32(size - 1)
	for i := range fi.ends {
		s := hashFactKeyBytes(fi.keyBytes(i)) & mask
		for slots[s] != 0 {
			s = (s + 1) & mask
		}
		slots[s] = uint32(i + 1)
	}
	fi.slots = slots
}

// reserve sizes the table and blob so n further inserts totalling
// bytes key bytes never rehash or reallocate.
func (fi *factIndex) reserve(n, bytes int) {
	size := len(fi.slots)
	for 4*(len(fi.ends)+n) >= 3*size {
		size *= 2
	}
	if size != len(fi.slots) {
		fi.grow(size)
	}
	if cap(fi.blob)-len(fi.blob) < bytes {
		newCap := len(fi.blob) + bytes
		if c := 2 * cap(fi.blob); c > newCap {
			newCap = c
		}
		grown := make([]byte, len(fi.blob), newCap)
		copy(grown, fi.blob)
		fi.blob = grown
	}
	if cap(fi.ends)-len(fi.ends) < n {
		newCap := len(fi.ends) + n
		if c := 2 * cap(fi.ends); c > newCap {
			newCap = c
		}
		grown := make([]uint32, len(fi.ends), newCap)
		copy(grown, fi.ends)
		fi.ends = grown
	}
}

// nameMemo is the batch-local constant-name → term-id memo of AddAll:
// an open-addressed table whose entries keep the name header and id on
// one cache line, probed with the same miss-returns-the-slot protocol
// as factIndex. Bulk inputs resolve every argument through it, so the
// probe is on AddAll's critical path; a general-purpose map costs
// roughly twice as much per probe here.
type nameMemo struct {
	slots   []uint32 // entry index + 1; 0 = empty
	entries []nameEntry
}

type nameEntry struct {
	name string
	id   uint32
}

// newNameMemo sizes the initial table for a batch of n atoms: tiny
// batches get a tiny table (Add routes through here per call), bulk
// loads start at 1024 slots and grow with their vocabulary.
func newNameMemo(n int) *nameMemo {
	size := 16
	for size < 4*n && size < 1024 {
		size *= 2
	}
	return &nameMemo{slots: make([]uint32, size)}
}

func hashName(s string) uint32 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return hashMix(h)
}

// find returns the memoized id of name, or else the empty slot where
// its entry belongs (fill it with insert before the next find).
func (m *nameMemo) find(name string) (slot uint32, id uint32, ok bool) {
	mask := uint32(len(m.slots) - 1)
	s := hashName(name) & mask
	for {
		v := m.slots[s]
		if v == 0 {
			return s, 0, false
		}
		if e := &m.entries[v-1]; e.name == name {
			return s, e.id, true
		}
		s = (s + 1) & mask
	}
}

func (m *nameMemo) insert(slot uint32, name string, id uint32) {
	m.entries = append(m.entries, nameEntry{name: name, id: id})
	m.slots[slot] = uint32(len(m.entries))
	if 4*len(m.entries) >= 3*len(m.slots) {
		size := 2 * len(m.slots)
		slots := make([]uint32, size)
		mask := uint32(size - 1)
		for i := range m.entries {
			s := hashName(m.entries[i].name) & mask
			for slots[s] != 0 {
				s = (s + 1) & mask
			}
			slots[s] = uint32(i + 1)
		}
		m.slots = slots
	}
}

// setAt records k as the key of store index idx during a bulk rebuild
// (snapshot flattening): the caller covers every dense index exactly
// once, in any order, then calls rebuild to construct the table.
func (fi *factIndex) setAt(k FactKey, idx int) {
	for len(fi.stage) <= idx {
		fi.stage = append(fi.stage, "")
	}
	fi.stage[idx] = k
}

// rebuild packs the staged keys and reconstructs the slot table.
func (fi *factIndex) rebuild() {
	total := 0
	for _, k := range fi.stage {
		total += len(k)
	}
	fi.blob = make([]byte, 0, total)
	fi.ends = make([]uint32, 0, len(fi.stage))
	for _, k := range fi.stage {
		fi.blob = append(fi.blob, k...)
		fi.ends = append(fi.ends, uint32(len(fi.blob)))
	}
	fi.stage = nil
	size := factIndexMinSlots
	for 4*len(fi.ends) >= 3*size {
		size *= 2
	}
	fi.grow(size)
}

// argTable is the posting-list index of memStorage: argID → ascending
// store indices, open-addressed like factIndex. The three-word key
// hashes with plain integer mixing, and bulk construction probes each
// distinct list exactly once — both several times cheaper than a
// general-purpose map keyed by a struct.
type argTable struct {
	slots []uint32 // entry index + 1; 0 = empty
	ids   []argID
	lists [][]uint32
}

func hashArgID(id argID) uint32 {
	h := hashWord(14695981039346656037, uint64(id.pred))
	h = hashWord(h, uint64(uint32(id.pos)))
	return hashMix(hashWord(h, uint64(id.term)))
}

func (at *argTable) get(id argID) []uint32 {
	if at.slots == nil {
		return nil
	}
	_, i, ok := at.findSlot(id)
	if !ok {
		return nil
	}
	return at.lists[i]
}

// findSlot returns the entry index of id if present, or else the empty
// slot where it belongs (fill it with setList before the next call).
func (at *argTable) findSlot(id argID) (slot uint32, idx int, ok bool) {
	mask := uint32(len(at.slots) - 1)
	s := hashArgID(id) & mask
	for {
		v := at.slots[s]
		if v == 0 {
			return s, 0, false
		}
		if at.ids[v-1] == id {
			return s, int(v - 1), true
		}
		s = (s + 1) & mask
	}
}

// setList records list as the postings of a new id, filling the slot
// findSlot returned (growth invalidates outstanding slots).
func (at *argTable) setList(slot uint32, id argID, list []uint32) {
	at.ids = append(at.ids, id)
	at.lists = append(at.lists, list)
	at.slots[slot] = uint32(len(at.ids))
	if 4*len(at.ids) >= 3*len(at.slots) {
		at.grow(2 * len(at.slots))
	}
}

func (at *argTable) grow(size int) {
	slots := make([]uint32, size)
	mask := uint32(size - 1)
	for i := range at.ids {
		s := hashArgID(at.ids[i]) & mask
		for slots[s] != 0 {
			s = (s + 1) & mask
		}
		slots[s] = uint32(i + 1)
	}
	at.slots = slots
}

// reserve sizes the table so n further inserts never rehash.
func (at *argTable) reserve(n int) {
	size := len(at.slots)
	for 4*(len(at.ids)+n) >= 3*size {
		size *= 2
	}
	if size != len(at.slots) {
		at.grow(size)
	}
}

// appendTo appends w to the postings of id, creating the entry if
// needed (the created list copies w).
func (at *argTable) appendTo(id argID, w ...uint32) {
	slot, i, ok := at.findSlot(id)
	if ok {
		at.lists[i] = append(at.lists[i], w...)
		return
	}
	at.setList(slot, id, append([]uint32(nil), w...))
}

// domTable maps a constant/null term id to the store index that
// introduced it (first-wins), open-addressed like factIndex.
type domTable struct {
	slots []uint32 // entry index + 1; 0 = empty
	terms []uint32
	idxs  []int32
}

func (dt *domTable) find(term uint32) (int, bool) {
	_, i, ok := dt.findSlot(term)
	if !ok {
		return 0, false
	}
	return int(dt.idxs[i]), true
}

func (dt *domTable) findSlot(term uint32) (slot uint32, idx int, ok bool) {
	mask := uint32(len(dt.slots) - 1)
	s := hashMix(hashWord(14695981039346656037, uint64(term))) & mask
	for {
		v := dt.slots[s]
		if v == 0 {
			return s, 0, false
		}
		if dt.terms[v-1] == term {
			return s, int(v - 1), true
		}
		s = (s + 1) & mask
	}
}

// setIfAbsent records idx as the introducing index of term unless one
// is already recorded.
func (dt *domTable) setIfAbsent(term uint32, idx int) {
	slot, _, ok := dt.findSlot(term)
	if ok {
		return
	}
	dt.terms = append(dt.terms, term)
	dt.idxs = append(dt.idxs, int32(idx))
	dt.slots[slot] = uint32(len(dt.terms))
	if 4*len(dt.terms) >= 3*len(dt.slots) {
		dt.grow(2 * len(dt.slots))
	}
}

func (dt *domTable) grow(size int) {
	slots := make([]uint32, size)
	mask := uint32(size - 1)
	for i, t := range dt.terms {
		s := hashMix(hashWord(14695981039346656037, uint64(t))) & mask
		for slots[s] != 0 {
			s = (s + 1) & mask
		}
		slots[s] = uint32(i + 1)
	}
	dt.slots = slots
}

// memStorage is the default in-memory Storage.
type memStorage struct {
	syms   *Symbols
	atoms  []Atom
	keys   factIndex
	byPred map[uint32][]uint32
	byArg  argTable
	dom    domTable
	tb     int64
}

func newMemStorage(syms *Symbols) *memStorage {
	return &memStorage{
		syms:   syms,
		keys:   factIndex{slots: make([]uint32, factIndexMinSlots)},
		byPred: make(map[uint32][]uint32),
		byArg:  argTable{slots: make([]uint32, 64)},
		dom:    domTable{slots: make([]uint32, 64)},
	}
}

func (ms *memStorage) Symbols() *Symbols { return ms.syms }
func (ms *memStorage) Len() int          { return len(ms.atoms) }
func (ms *memStorage) TupleBytes() int64 { return ms.tb }
func (ms *memStorage) Atoms() []Atom     { return ms.atoms }
func (ms *memStorage) AtomAt(i int) Atom { return ms.atoms[i] }

func (ms *memStorage) IndexOf(key []byte) (int, bool) {
	return ms.keys.lookupBytes(key)
}

func (ms *memStorage) IndexOfKey(key FactKey) (int, bool) {
	return ms.keys.lookup(key)
}

func (ms *memStorage) Postings(pred uint32, pos int, term uint32) []uint32 {
	return ms.byArg.get(argID{pred: pred, pos: int32(pos), term: term})
}

func (ms *memStorage) PredIndices(pred uint32) []uint32 { return ms.byPred[pred] }

func (ms *memStorage) DomainIndex(term uint32) (int, bool) {
	return ms.dom.find(term)
}

// Add inserts one atom as a degenerate one-atom batch. The packed
// store has exactly one write path — AddAll — so the index invariants
// live in one place; a per-fact caller pays the batch setup (scratch
// buffers, a memo, per-call map grouping) that bulk loads amortize
// over the whole input. That overhead lands only on root stores built
// fact by fact; the engines' per-fact writes (chase heads, search
// branches) go to snapshot layers, which have their own incremental
// path.
func (ms *memStorage) Add(a Atom) (int, bool) {
	pre := len(ms.atoms)
	one := [1]Atom{a}
	if ms.AddAll(one[:]) == 1 {
		return pre, true
	}
	var kb [64]byte
	key, _ := ms.syms.appendAtomKey(a, kb[:0], true)
	_, idx, _ := ms.keys.findSlotBytes(key)
	return idx, false
}

// AddAll interns and renders every packed key under a single interner
// lock, deduplicates the batch against the pre-reserved key index, and
// then constructs the posting lists by counting sort over the dense
// term and predicate ids: grouping touches no maps at all, and each
// distinct posting list costs exactly one (pre-sized) table insert.
// These are the levers behind the bulk-load speedup over per-fact Add,
// whose cost is per-call locking, batch setup, and incremental index
// growth.
func (ms *memStorage) AddAll(atoms []Atom) int {
	if len(atoms) == 0 {
		return 0
	}
	total := 0
	for _, a := range atoms {
		total += int(factKeyBytes(len(a.Args)))
	}
	// Reserve everything up front: no insert below ever rehashes the
	// key index or regrows the atom slice or key blob.
	base := len(ms.atoms)
	ms.keys.reserve(len(atoms), total)
	if cap(ms.atoms)-len(ms.atoms) < len(atoms) {
		// Doubling keeps repeated small batches amortized O(1) per
		// atom; a bulk load into a fresh store sizes exactly once.
		newCap := len(ms.atoms) + len(atoms)
		if c := 2 * cap(ms.atoms); c > newCap {
			newCap = c
		}
		grown := make([]Atom, len(ms.atoms), newCap)
		copy(grown, ms.atoms)
		ms.atoms = grown
	}
	// Phase 1: intern everything and render every packed key into one
	// shared buffer, holding the exclusive interner lock once for the
	// batch. Batch-local memos resolve repeated constant/null names
	// with one cheap probe instead of a walk of the shared interner
	// tables — bulk inputs reuse their vocabulary heavily, so most
	// arguments hit. Rendering and dedup stay separate loops on
	// purpose: each is a tight pass whose cache misses the CPU can
	// overlap across iterations, where a fused loop would serialize
	// them.
	keys := make([]byte, 0, total)
	offs := make([]int32, len(atoms)+1)
	domFlat := make([]uint32, 0, len(atoms))
	domOffs := make([]int32, len(atoms)+1)
	constMemo := newNameMemo(len(atoms))
	predMemo := newNameMemo(1)
	var nullMemo map[string]uint32
	// Last-value caches: bulk inputs often arrive sorted (database
	// dumps) or run-structured, so the constant at a given argument
	// position frequently repeats the previous row's. One string
	// comparison then replaces even the memo probe. Empty names never
	// hit (the zero value would alias them to id 0).
	type lastID struct {
		name string
		id   uint32
	}
	var lastArg [8]lastID
	var lastPred lastID
	ms.syms.mu.Lock()
	for i, a := range atoms {
		var pid uint32
		if a.Pred != "" && a.Pred == lastPred.name {
			pid = lastPred.id
		} else {
			slot, hit, ok := predMemo.find(a.Pred)
			if ok {
				pid = hit
			} else {
				pid = ms.syms.internPredLocked(a.Pred)
				predMemo.insert(slot, a.Pred, pid)
			}
			lastPred = lastID{name: a.Pred, id: pid}
		}
		keys = binary.LittleEndian.AppendUint32(keys, pid)
		for p, t := range a.Args {
			// For a constant or null the domain id is the term id
			// itself; only function terms need the recursive walk.
			switch t.Kind {
			case Const:
				var id uint32
				if p < len(lastArg) && t.Name != "" && t.Name == lastArg[p].name {
					id = lastArg[p].id
				} else {
					slot, hit, ok := constMemo.find(t.Name)
					if ok {
						id = hit
					} else {
						id = ms.syms.internLocked(t)
						constMemo.insert(slot, t.Name, id)
					}
					if p < len(lastArg) {
						lastArg[p] = lastID{name: t.Name, id: id}
					}
				}
				keys = binary.LittleEndian.AppendUint32(keys, id)
				domFlat = append(domFlat, id)
			case Null:
				id, ok := nullMemo[t.Name]
				if !ok {
					id = ms.syms.internLocked(t)
					if nullMemo == nil {
						nullMemo = make(map[string]uint32, 16)
					}
					nullMemo[t.Name] = id
				}
				keys = binary.LittleEndian.AppendUint32(keys, id)
				domFlat = append(domFlat, id)
			default:
				id := ms.syms.internLocked(t)
				keys = binary.LittleEndian.AppendUint32(keys, id)
				domFlat = ms.syms.appendDomainIDsRLocked(t, domFlat)
			}
		}
		offs[i+1] = int32(len(keys))
		domOffs[i+1] = int32(len(domFlat))
	}
	numTerms := len(ms.syms.terms)
	numPreds := len(ms.syms.predNames)
	ms.syms.mu.Unlock()

	// Phase 2: dedup against the key index, assigning dense indices.
	// Every new fact costs exactly one hash-and-probe traversal: the
	// miss hands back the slot the insert fills, and no insert ever
	// rehashes. srcOf maps the j-th accepted atom (store index base+j)
	// back to its batch position, for the domain pass below.
	srcOf := make([]int32, 0, len(atoms))
	nPairs := 0
	for i := range atoms {
		k := keys[offs[i]:offs[i+1]]
		slot, _, dup := ms.keys.findSlotBytes(k)
		if dup {
			continue
		}
		ms.keys.insertBytes(slot, k)
		ms.atoms = append(ms.atoms, atoms[i])
		srcOf = append(srcOf, int32(i))
		ms.tb += factKeyBytes(len(atoms[i].Args))
		nPairs += len(atoms[i].Args)
	}

	// The accepted atoms are exactly store indices base..base+added;
	// their packed keys are read back, zero-copy, from the index blob.
	added := len(ms.atoms) - base
	key := func(j int) []byte { return ms.keys.keyBytes(base + j) }

	// Phase 3: index construction. The counting arrays are O(symbol
	// table); for a batch much smaller than the table they would dwarf
	// the real work, so small batches take the map-grouped path
	// instead.
	useCounting := numTerms <= 4*nPairs+1024
	if !useCounting {
		ms.addAllMapIndexes(added, nPairs,
			func(i int) int { return base + i },
			key)
	} else {
		// byPred: counting sort over dense predicate ids. One backing
		// array holds every new entry; iterating in index order keeps
		// each list ascending.
		predOff := make([]int32, numPreds+1)
		for j := 0; j < added; j++ {
			predOff[binary.LittleEndian.Uint32(key(j))+1]++
		}
		for p := 0; p < numPreds; p++ {
			predOff[p+1] += predOff[p]
		}
		predBack := make([]uint32, added)
		predCur := make([]int32, numPreds)
		copy(predCur, predOff)
		for j := 0; j < added; j++ {
			pid := binary.LittleEndian.Uint32(key(j))
			predBack[predCur[pid]] = uint32(base + j)
			predCur[pid]++
		}
		for p := 0; p < numPreds; p++ {
			lo, hi := predOff[p], predOff[p+1]
			if lo == hi {
				continue
			}
			pid := uint32(p)
			ms.byPred[pid] = append(ms.byPred[pid], predBack[lo:hi]...)
		}

		// byArg: counting sort over dense term ids buckets every
		// (pred, pos, term, idx) pair; within a bucket, stable sweeps
		// split the few (pred, pos) groups, each becoming one ascending
		// run of the shared output array and one map insert.
		type pairEntry struct {
			pred uint32
			idx  uint32
			pos  int32
		}
		bkt := make([]int32, numTerms+1)
		for j := 0; j < added; j++ {
			k := key(j)
			for o := 4; o < len(k); o += 4 {
				bkt[binary.LittleEndian.Uint32(k[o:])+1]++
			}
		}
		for t := 0; t < numTerms; t++ {
			bkt[t+1] += bkt[t]
		}
		entries := make([]pairEntry, nPairs)
		cur := make([]int32, numTerms)
		copy(cur, bkt)
		for j := 0; j < added; j++ {
			k := key(j)
			pid := binary.LittleEndian.Uint32(k)
			for p := 0; 4+4*p < len(k); p++ {
				tid := binary.LittleEndian.Uint32(k[4+4*p:])
				entries[cur[tid]] = pairEntry{pred: pid, idx: uint32(base + j), pos: int32(p)}
				cur[tid]++
			}
		}
		type run struct {
			id     argID
			lo, hi int32
		}
		idxOut := make([]uint32, nPairs)
		out := int32(0)
		runs := make([]run, 0, nPairs/4+16)
		const consumed = ^uint32(0)
		for t := 0; t < numTerms; t++ {
			b := entries[bkt[t]:bkt[t+1]]
			for i := range b {
				if b[i].pred == consumed {
					continue
				}
				pid, pos := b[i].pred, b[i].pos
				lo := out
				for j := i; j < len(b); j++ {
					if b[j].pred == pid && b[j].pos == pos {
						idxOut[out] = b[j].idx
						out++
						b[j].pred = consumed
					}
				}
				runs = append(runs, run{id: argID{pred: pid, pos: pos, term: uint32(t)}, lo: lo, hi: out})
			}
		}
		ms.byArg.reserve(len(runs))
		for _, r := range runs {
			seg := idxOut[r.lo:r.hi:r.hi]
			slot, i, ok := ms.byArg.findSlot(r.id)
			if ok {
				old := ms.byArg.lists[i]
				ms.byArg.lists[i] = append(append(make([]uint32, 0, len(old)+len(seg)), old...), seg...)
				continue
			}
			ms.byArg.setList(slot, r.id, seg)
		}
	}

	// Domain: first-wins inserts, iterating accepted atoms in index
	// order. On the counting path a dense seen array short-circuits the
	// repeats, so the map is probed once per distinct term.
	if useCounting {
		seen := make([]bool, numTerms)
		for j := 0; j < added; j++ {
			src := srcOf[j]
			for _, d := range domFlat[domOffs[src]:domOffs[src+1]] {
				if !seen[d] {
					seen[d] = true
					ms.dom.setIfAbsent(d, base+j)
				}
			}
		}
	} else {
		for j := 0; j < added; j++ {
			src := srcOf[j]
			for _, d := range domFlat[domOffs[src]:domOffs[src+1]] {
				ms.dom.setIfAbsent(d, base+j)
			}
		}
	}
	return added
}

// addAllMapIndexes is the index-construction fallback for batches much
// smaller than the symbol table, where the counting arrays would cost
// more than the batch: count posting-list growth per key in small maps,
// carve each list from a shared backing array, and fill in index order.
// idxOf and key report the assigned store index and packed key of the
// i-th accepted atom, 0 <= i < n.
func (ms *memStorage) addAllMapIndexes(n, nPairs int, idxOf func(i int) int, key func(i int) []byte) {
	predCount := make(map[uint32]int)
	argCount := make(map[argID]int, nPairs)
	for i := 0; i < n; i++ {
		k := key(i)
		pid := binary.LittleEndian.Uint32(k)
		predCount[pid]++
		for p := 0; 4+4*p < len(k); p++ {
			argCount[argID{pred: pid, pos: int32(p), term: binary.LittleEndian.Uint32(k[4+4*p:])}]++
		}
	}
	carve(ms.byPred, predCount)
	// Extend or create each touched posting list once, with exact
	// capacity, so the fill loop's appends never reallocate.
	ms.byArg.reserve(len(argCount))
	for ak, c := range argCount {
		slot, i, ok := ms.byArg.findSlot(ak)
		if ok {
			old := ms.byArg.lists[i]
			if cap(old)-len(old) >= c {
				continue
			}
			newCap := len(old) + c
			if d := 2 * cap(old); d > newCap {
				newCap = d
			}
			grown := make([]uint32, len(old), newCap)
			copy(grown, old)
			ms.byArg.lists[i] = grown
		} else {
			ms.byArg.setList(slot, ak, make([]uint32, 0, c))
		}
	}
	for i := 0; i < n; i++ {
		k := key(i)
		pid := binary.LittleEndian.Uint32(k)
		ms.byPred[pid] = append(ms.byPred[pid], uint32(idxOf(i)))
		for p := 0; 4+4*p < len(k); p++ {
			ak := argID{pred: pid, pos: int32(p), term: binary.LittleEndian.Uint32(k[4+4*p:])}
			_, li, _ := ms.byArg.findSlot(ak)
			ms.byArg.lists[li] = append(ms.byArg.lists[li], uint32(idxOf(i)))
		}
	}
}

// carve re-slices every list that grow will touch onto one shared
// backing array with exactly the needed capacity, so the fill loop's
// appends never reallocate and small lists don't each hold a
// power-of-two spare.
func carve[K comparable](m map[K][]uint32, grow map[K]int) {
	total := 0
	for k, c := range grow {
		if cur := m[k]; cap(cur)-len(cur) < c {
			// Regrown lists at least double, so repeated small batches
			// extending the same list stay amortized O(1) per entry.
			need := len(cur) + c
			if d := 2 * cap(cur); d > need {
				need = d
			}
			total += need
		}
	}
	back := make([]uint32, 0, total)
	for k, c := range grow {
		cur := m[k]
		if cap(cur)-len(cur) >= c {
			continue
		}
		need := len(cur) + c
		if d := 2 * cap(cur); d > need {
			need = d
		}
		off := len(back)
		back = append(back, cur...)
		m[k] = back[off : off+len(cur) : off+need]
		back = back[:off+need]
	}
}

func (ms *memStorage) EachFact(fn func(key FactKey, idx int) bool) bool {
	for idx := range ms.keys.ends {
		if !fn(FactKey(ms.keys.keyBytes(idx)), idx) {
			return false
		}
	}
	return true
}

func (ms *memStorage) EachPred(fn func(pred uint32, idxs []uint32) bool) bool {
	for p, idxs := range ms.byPred {
		if !fn(p, idxs) {
			return false
		}
	}
	return true
}

func (ms *memStorage) EachPosting(fn func(id argID, idxs []uint32) bool) bool {
	for i := range ms.byArg.ids {
		if !fn(ms.byArg.ids[i], ms.byArg.lists[i]) {
			return false
		}
	}
	return true
}

func (ms *memStorage) EachDomain(fn func(term uint32, idx int) bool) bool {
	for i := range ms.dom.terms {
		if !fn(ms.dom.terms[i], int(ms.dom.idxs[i])) {
			return false
		}
	}
	return true
}
