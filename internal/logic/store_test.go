package logic

import (
	"testing"
)

func TestFactStoreAddHasLen(t *testing.T) {
	s := NewFactStore()
	if !s.Add(A("p", C("a"))) {
		t.Fatalf("first Add should be new")
	}
	if s.Add(A("p", C("a"))) {
		t.Fatalf("duplicate Add should report false")
	}
	if s.Len() != 1 || !s.Has(A("p", C("a"))) || s.Has(A("p", C("b"))) {
		t.Fatalf("store state wrong")
	}
	if n := s.AddAll([]Atom{A("p", C("a")), A("q"), A("r", N("n1"))}); n != 2 {
		t.Fatalf("AddAll new count = %d", n)
	}
}

func TestFactStoreByPredAndPreds(t *testing.T) {
	s := StoreOf(A("p", C("a")), A("p", C("b")), A("q", C("c")))
	if len(s.ByPred("p")) != 2 || s.CountPred("p") != 2 || s.CountPred("zzz") != 0 {
		t.Fatalf("ByPred wrong")
	}
	preds := s.Preds()
	if len(preds) != 2 || preds[0] != "p" || preds[1] != "q" {
		t.Fatalf("Preds = %v", preds)
	}
}

func TestFactStoreCloneIsolation(t *testing.T) {
	s := StoreOf(A("p", C("a")))
	c := s.Clone()
	c.Add(A("p", C("b")))
	if s.Len() != 1 || c.Len() != 2 {
		t.Fatalf("clone not isolated: %d vs %d", s.Len(), c.Len())
	}
	if !s.SubsetOf(c) || c.SubsetOf(s) {
		t.Fatalf("SubsetOf wrong")
	}
}

func TestFactStoreDomain(t *testing.T) {
	s := StoreOf(A("p", C("a"), N("n1")), A("q", F("f", C("b"))))
	dom := s.Domain()
	// a, b (inside the function term), n1.
	if len(dom) != 3 {
		t.Fatalf("Domain = %v", dom)
	}
}

func TestFactStoreEqualAndCanonicalString(t *testing.T) {
	a := StoreOf(A("p", C("a")), A("q"))
	b := StoreOf(A("q"), A("p", C("a")))
	if !a.Equal(b) {
		t.Fatalf("order must not matter for Equal")
	}
	if a.CanonicalString() != b.CanonicalString() {
		t.Fatalf("canonical strings differ: %q vs %q", a.CanonicalString(), b.CanonicalString())
	}
	b.Add(A("r"))
	if a.Equal(b) {
		t.Fatalf("different stores equal")
	}
}
