package logic

import (
	"testing"
)

func TestFindHomsSimpleJoin(t *testing.T) {
	store := StoreOf(
		A("edge", C("a"), C("b")),
		A("edge", C("b"), C("c")),
		A("edge", C("a"), C("c")),
	)
	// Paths of length 2.
	var got []string
	FindHoms(
		[]Atom{A("edge", V("X"), V("Y")), A("edge", V("Y"), V("Z"))},
		nil, store, Subst{},
		func(h Subst) bool {
			got = append(got, h["X"].Name+h["Y"].Name+h["Z"].Name)
			return true
		})
	if len(got) != 1 || got[0] != "abc" {
		t.Fatalf("paths = %v, want [abc]", got)
	}
}

func TestFindHomsNegativeFilter(t *testing.T) {
	store := StoreOf(
		A("p", C("a")), A("p", C("b")), A("q", C("b")),
	)
	var got []string
	FindHoms([]Atom{A("p", V("X"))}, []Atom{A("q", V("X"))}, store, Subst{}, func(h Subst) bool {
		got = append(got, h["X"].Name)
		return true
	})
	if len(got) != 1 || got[0] != "a" {
		t.Fatalf("negation filter failed: %v", got)
	}
}

func TestFindHomsInitialBinding(t *testing.T) {
	store := StoreOf(A("p", C("a"), C("b")), A("p", C("a"), C("c")))
	n := 0
	FindHoms([]Atom{A("p", V("X"), V("Y"))}, nil, store, Subst{"Y": C("c")}, func(h Subst) bool {
		n++
		if h["X"].Name != "a" || h["Y"].Name != "c" {
			t.Fatalf("wrong hom: %v", h)
		}
		return true
	})
	if n != 1 {
		t.Fatalf("expected 1 hom, got %d", n)
	}
}

func TestFindHomsEmptyBody(t *testing.T) {
	store := NewFactStore()
	n := 0
	FindHoms(nil, nil, store, Subst{}, func(Subst) bool { n++; return true })
	if n != 1 {
		t.Fatalf("the empty body has exactly one homomorphism, got %d", n)
	}
}

func TestFindHomsEarlyStop(t *testing.T) {
	store := StoreOf(A("p", C("a")), A("p", C("b")), A("p", C("c")))
	n := 0
	completed := FindHoms([]Atom{A("p", V("X"))}, nil, store, Subst{}, func(Subst) bool {
		n++
		return n < 2
	})
	if completed || n != 2 {
		t.Fatalf("early stop failed: completed=%v n=%d", completed, n)
	}
}

func TestFindHomsRepeatedVariable(t *testing.T) {
	store := StoreOf(A("e", C("a"), C("a")), A("e", C("a"), C("b")))
	n := 0
	FindHoms([]Atom{A("e", V("X"), V("X"))}, nil, store, Subst{}, func(h Subst) bool {
		if h["X"].Name != "a" {
			t.Fatalf("wrong diagonal match: %v", h)
		}
		n++
		return true
	})
	if n != 1 {
		t.Fatalf("diagonal matches = %d", n)
	}
}

func TestFindHomsFunctionTerms(t *testing.T) {
	store := StoreOf(A("p", F("f", C("a"))), A("p", C("a")))
	n := 0
	FindHoms([]Atom{A("p", F("f", V("X")))}, nil, store, Subst{}, func(h Subst) bool {
		if h["X"].Name != "a" {
			t.Fatalf("wrong function match")
		}
		n++
		return true
	})
	if n != 1 {
		t.Fatalf("function matches = %d", n)
	}
}

func TestMapsToTreatsNullsAsVariables(t *testing.T) {
	src := []Atom{A("p", N("x")), A("q", N("x"), C("a"))}
	dst := StoreOf(A("p", C("c")), A("q", C("c"), C("a")))
	if !MapsTo(src, dst) {
		t.Fatalf("nulls should map onto constants")
	}
	dst2 := StoreOf(A("p", C("c")), A("q", C("d"), C("a")))
	if MapsTo(src, dst2) {
		t.Fatalf("shared null must map consistently")
	}
}

func TestExistsHom(t *testing.T) {
	store := StoreOf(A("p", C("a")))
	if !ExistsHom([]Atom{A("p", V("X"))}, nil, store, Subst{}) {
		t.Fatalf("hom should exist")
	}
	if ExistsHom([]Atom{A("q", V("X"))}, nil, store, Subst{}) {
		t.Fatalf("hom should not exist")
	}
}
