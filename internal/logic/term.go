// Package logic provides the first-order machinery underlying the whole
// library: terms (constants, labeled nulls, variables, function terms),
// atoms, literals, substitutions, homomorphisms, indexed fact stores,
// rules (normal, possibly disjunctive, tuple-generating dependencies) and
// queries. All higher-level packages (chase, grounding, the stable model
// engines) are built on top of it.
//
// Following the paper (Section 2), we work with three pairwise disjoint
// countably infinite sets of symbols: constants C (unique name
// assumption), labeled nulls N (placeholders for unknown values), and
// variables V. Function terms are additionally supported because the LP
// approach to stable model semantics (Section 3.1) introduces Skolem
// terms f(t1,...,tn).
package logic

import (
	"fmt"
	"sort"
	"strings"
)

// TermKind discriminates the four kinds of terms.
type TermKind uint8

const (
	// Const is a constant from C. Different constants denote different
	// values (unique name assumption).
	Const TermKind = iota
	// Null is a labeled null from N, used as a placeholder for an
	// unknown value (invented by the chase and by the stable model
	// search to witness existential quantifiers).
	Null
	// Var is a variable from V, used in rules and queries.
	Var
	// Func is a function term f(t1,...,tn), produced by Skolemization.
	Func
)

func (k TermKind) String() string {
	switch k {
	case Const:
		return "const"
	case Null:
		return "null"
	case Var:
		return "var"
	case Func:
		return "func"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is a constant, labeled null, variable, or function term. The zero
// value is the constant with the empty name and should not be used.
// Terms are immutable by convention: never mutate Args after creating a
// term.
type Term struct {
	Kind TermKind
	// Name is the constant symbol, null label, variable name, or
	// function symbol depending on Kind.
	Name string
	// Args holds the arguments of a function term; nil for the other
	// kinds.
	Args []Term
}

// C returns the constant with the given name.
func C(name string) Term { return Term{Kind: Const, Name: name} }

// N returns the labeled null with the given label.
func N(label string) Term { return Term{Kind: Null, Name: label} }

// V returns the variable with the given name.
func V(name string) Term { return Term{Kind: Var, Name: name} }

// F returns the function term fn(args...).
func F(fn string, args ...Term) Term { return Term{Kind: Func, Name: fn, Args: args} }

// IsGround reports whether the term contains no variables.
func (t Term) IsGround() bool {
	switch t.Kind {
	case Var:
		return false
	case Func:
		for _, a := range t.Args {
			if !a.IsGround() {
				return false
			}
		}
	}
	return true
}

// HasNull reports whether the term is a null or contains one.
func (t Term) HasNull() bool {
	switch t.Kind {
	case Null:
		return true
	case Func:
		for _, a := range t.Args {
			if a.HasNull() {
				return true
			}
		}
	}
	return false
}

// Equal reports whether two terms are syntactically identical.
func (t Term) Equal(u Term) bool {
	if t.Kind != u.Kind || t.Name != u.Name || len(t.Args) != len(u.Args) {
		return false
	}
	for i := range t.Args {
		if !t.Args[i].Equal(u.Args[i]) {
			return false
		}
	}
	return true
}

// String renders the term: constants and variables by name, nulls as
// _:label, function terms as f(args).
func (t Term) String() string {
	var b strings.Builder
	t.write(&b)
	return b.String()
}

func (t Term) write(b *strings.Builder) {
	switch t.Kind {
	case Null:
		b.WriteString("_:")
		b.WriteString(t.Name)
	case Func:
		b.WriteString(t.Name)
		b.WriteByte('(')
		for i, a := range t.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			a.write(b)
		}
		b.WriteByte(')')
	default:
		b.WriteString(t.Name)
	}
}

// Key returns a canonical string usable as a map key. Distinct terms
// have distinct keys (kind is encoded, so constant "x" and variable "x"
// differ).
func (t Term) Key() string {
	var b strings.Builder
	t.writeKey(&b)
	return b.String()
}

func (t Term) writeKey(b *strings.Builder) {
	switch t.Kind {
	case Const:
		b.WriteByte('c')
	case Null:
		b.WriteByte('n')
	case Var:
		b.WriteByte('v')
	case Func:
		b.WriteByte('f')
	}
	b.WriteString(t.Name)
	if t.Kind == Func {
		b.WriteByte('(')
		for i, a := range t.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			a.writeKey(b)
		}
		b.WriteByte(')')
	}
}

// AppendKey appends the term's canonical key (see Key) to dst and
// returns the extended slice, for callers that assemble compound keys
// into a reused buffer without intermediate strings.
func (t Term) AppendKey(dst []byte) []byte {
	switch t.Kind {
	case Const:
		dst = append(dst, 'c')
	case Null:
		dst = append(dst, 'n')
	case Var:
		dst = append(dst, 'v')
	case Func:
		dst = append(dst, 'f')
	}
	dst = append(dst, t.Name...)
	if t.Kind == Func {
		dst = append(dst, '(')
		for i, a := range t.Args {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = a.AppendKey(dst)
		}
		dst = append(dst, ')')
	}
	return dst
}

// Depth returns the nesting depth of the term: 0 for constants, nulls
// and variables; 1 + max depth of arguments for function terms.
func (t Term) Depth() int {
	if t.Kind != Func {
		return 0
	}
	d := 0
	for _, a := range t.Args {
		if ad := a.Depth(); ad > d {
			d = ad
		}
	}
	return 1 + d
}

// Vars appends the names of all variables occurring in t to dst and
// returns the extended slice. Duplicates are preserved; use VarSet for a
// set.
func (t Term) Vars(dst []string) []string {
	switch t.Kind {
	case Var:
		dst = append(dst, t.Name)
	case Func:
		for _, a := range t.Args {
			dst = a.Vars(dst)
		}
	}
	return dst
}

// SortTerms sorts a slice of terms by their canonical keys, in place.
func SortTerms(ts []Term) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Key() < ts[j].Key() })
}
