package logic

import (
	"strings"
	"testing"
)

func ruleFixture() *Rule {
	// p(X,Y), not q(Y) -> r(X,Z) | s(Y)
	return &Rule{
		Label: "rx",
		Body: []Literal{
			Pos(A("p", V("X"), V("Y"))),
			Neg(A("q", V("Y"))),
		},
		Heads: [][]Atom{
			{A("r", V("X"), V("Z"))},
			{A("s", V("Y"))},
		},
	}
}

func TestRuleAccessors(t *testing.T) {
	r := ruleFixture()
	if len(r.PosBody()) != 1 || len(r.NegBody()) != 1 {
		t.Fatalf("body split wrong")
	}
	if r.IsTGD() || r.IsConstraint() || !r.IsDisjunctive() || !r.HasNegation() {
		t.Fatalf("classification flags wrong")
	}
	if !r.HasExistentials() {
		t.Fatalf("Z is existential")
	}
	if got := r.ExistVars(0); len(got) != 1 || got[0] != "Z" {
		t.Fatalf("ExistVars(0) = %v", got)
	}
	if got := r.ExistVars(1); len(got) != 0 {
		t.Fatalf("ExistVars(1) = %v", got)
	}
	if got := r.Frontier(0); len(got) != 1 || got[0] != "X" {
		t.Fatalf("Frontier(0) = %v", got)
	}
	if got := r.Frontier(1); len(got) != 1 || got[0] != "Y" {
		t.Fatalf("Frontier(1) = %v", got)
	}
}

func TestRuleValidateSafety(t *testing.T) {
	ok := ruleFixture()
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid rule rejected: %v", err)
	}
	unsafe := &Rule{
		Label: "bad",
		Body:  []Literal{Pos(A("p", V("X"))), Neg(A("q", V("Y")))},
		Heads: [][]Atom{{A("r", V("X"))}},
	}
	if err := unsafe.Validate(); err == nil {
		t.Fatalf("unsafe negative variable accepted")
	}
}

func TestRuleString(t *testing.T) {
	s := ruleFixture().String()
	for _, want := range []string{"p(X,Y)", "not q(Y)", "->", "r(X,Z)", "|", "s(Y)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	c := &Rule{Body: []Literal{Pos(A("p", V("X")))}}
	if !strings.Contains(c.String(), "#false") {
		t.Fatalf("constraint renders %q", c.String())
	}
}

func TestRuleRenameDisjointness(t *testing.T) {
	r := ruleFixture()
	rn := r.Rename("v_")
	set := rn.BodyVars()
	for v := range set {
		if !strings.HasPrefix(v, "v_") {
			t.Fatalf("rename missed %s", v)
		}
	}
	// Original untouched.
	if _, ok := r.BodyVars()["v_X"]; ok {
		t.Fatalf("rename mutated the receiver")
	}
}

func TestRulePreds(t *testing.T) {
	preds := ruleFixture().Preds()
	if preds["p"] != 2 || preds["q"] != 1 || preds["r"] != 2 || preds["s"] != 1 {
		t.Fatalf("Preds = %v", preds)
	}
}

func TestSatisfiesRuleAndWitness(t *testing.T) {
	// p(X) -> q(X)
	r := NewRule("r1", []Literal{Pos(A("p", V("X")))}, []Atom{A("q", V("X"))})
	sat := StoreOf(A("p", C("a")), A("q", C("a")))
	if !SatisfiesRule(r, sat) {
		t.Fatalf("satisfied rule reported violated")
	}
	unsat := StoreOf(A("p", C("a")))
	if SatisfiesRule(r, unsat) {
		t.Fatalf("violated rule reported satisfied")
	}
	v := FirstViolation(r, unsat)
	if v == nil || v.Hom["X"].Name != "a" {
		t.Fatalf("violation witness wrong: %+v", v)
	}
	w := ComputeWitness(r, sat)
	if !w.IsPositive() || len(w.Entries) != 1 || len(w.Entries[0].Extensions) != 1 {
		t.Fatalf("witness structure wrong: %+v", w)
	}
	wNeg := ComputeWitness(r, unsat)
	if wNeg.IsPositive() {
		t.Fatalf("witness should be negative (Lemma 10)")
	}
}

// TestLemma10 checks the equivalence of Lemma 10: I |= Σ iff every
// witness is positive.
func TestLemma10(t *testing.T) {
	rules := []*Rule{
		NewRule("r1", []Literal{Pos(A("p", V("X")))}, []Atom{A("q", V("X"))}),
		NewRule("r2", []Literal{Pos(A("q", V("X"))), Neg(A("s", V("X")))}, []Atom{A("t", V("X"))}),
	}
	stores := []*FactStore{
		StoreOf(A("p", C("a"))),
		StoreOf(A("p", C("a")), A("q", C("a"))),
		StoreOf(A("p", C("a")), A("q", C("a")), A("t", C("a"))),
		StoreOf(A("p", C("a")), A("q", C("a")), A("s", C("a"))),
	}
	for _, st := range stores {
		allPositive := true
		for _, r := range rules {
			if !ComputeWitness(r, st).IsPositive() {
				allPositive = false
			}
		}
		if allPositive != IsModel(rules, st) {
			t.Fatalf("Lemma 10 violated on %s", st.CanonicalString())
		}
	}
}

func TestEmptyBodyRule(t *testing.T) {
	// -> ∃X zero(X): satisfied iff some zero atom exists.
	r := &Rule{Label: "g", Heads: [][]Atom{{A("zero", V("X"))}}}
	if SatisfiesRule(r, NewFactStore()) {
		t.Fatalf("empty store cannot satisfy the guess rule")
	}
	if !SatisfiesRule(r, StoreOf(A("zero", C("v")))) {
		t.Fatalf("zero(v) satisfies the guess rule")
	}
}

func TestQueryValidateAndEval(t *testing.T) {
	q := Query{
		AnswerVars: []string{"X"},
		Pos:        []Atom{A("p", V("X"))},
		Neg:        []Atom{A("q", V("X"))},
	}
	if err := q.Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	bad := Query{Pos: []Atom{A("p", V("X"))}, Neg: []Atom{A("q", V("Y"))}}
	if err := bad.Validate(); err == nil {
		t.Fatalf("unsafe query accepted")
	}
	store := StoreOf(A("p", C("a")), A("p", C("b")), A("q", C("b")), A("p", N("n1")))
	ans := q.Answers(store)
	if len(ans) != 1 || ans[0].String() != "(a)" {
		t.Fatalf("Answers = %v (nulls must be excluded, q filters b)", ans)
	}
	if !q.Holds(store) {
		t.Fatalf("Boolean reading should hold")
	}
}
