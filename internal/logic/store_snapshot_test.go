package logic

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestSnapshotChildWritesInvisibleToParent(t *testing.T) {
	parent := StoreOf(A("p", C("a")), A("q", C("a"), C("b")))
	child := parent.Snapshot()
	if !child.Add(A("p", C("b"))) {
		t.Fatalf("new atom must be added to the child")
	}
	if child.Add(A("p", C("a"))) {
		t.Fatalf("parent atoms must deduplicate through the child")
	}
	if parent.Len() != 2 {
		t.Fatalf("parent.Len() = %d after child write, want 2", parent.Len())
	}
	if parent.Has(A("p", C("b"))) {
		t.Fatalf("child write leaked into the parent")
	}
	if child.Len() != 3 || !child.Has(A("p", C("b"))) || !child.Has(A("p", C("a"))) {
		t.Fatalf("child view wrong: len=%d", child.Len())
	}
	if idx, ok := child.IndexOfAtom(A("p", C("b"))); !ok || idx != 2 {
		t.Fatalf("child atom index = %d, %v; want global index 2", idx, ok)
	}
	if got := child.AtomAt(2); !got.Equal(A("p", C("b"))) {
		t.Fatalf("AtomAt(2) = %s", got)
	}
	if got := child.AtomAt(0); !got.Equal(A("p", C("a"))) {
		t.Fatalf("AtomAt(0) = %s", got)
	}
}

func TestSnapshotParentGrowsAfterSnapshot(t *testing.T) {
	parent := StoreOf(A("p", C("a")))
	child := parent.Snapshot()
	parent.Add(A("p", C("z")))
	if child.Has(A("p", C("z"))) {
		t.Fatalf("parent growth after the snapshot must be invisible to the child")
	}
	if child.Len() != 1 {
		t.Fatalf("child.Len() = %d, want 1", child.Len())
	}
	// The child may even re-add the atom independently.
	if !child.Add(A("p", C("z"))) {
		t.Fatalf("child must be able to add the invisible atom itself")
	}
	if got := child.CountPred("p"); got != 2 {
		t.Fatalf("child CountPred(p) = %d, want 2", got)
	}
	if got := parent.CountPred("p"); got != 2 {
		t.Fatalf("parent CountPred(p) = %d, want 2", got)
	}
	for _, d := range child.Domain() {
		_ = d
	}
	if !child.HasDomainTerm(C("z")) || !parent.HasDomainTerm(C("z")) {
		t.Fatalf("domain bookkeeping wrong after independent re-add")
	}
}

// TestSnapshotThreeLayerViews pins the merged views — postings,
// per-predicate lists, Domain, Preds, canonical rendering, Equal — on a
// chain of three snapshot layers against a flat reference store built
// from the same atoms.
func TestSnapshotThreeLayerViews(t *testing.T) {
	l0 := StoreOf(A("e", C("a"), C("b")), A("e", C("b"), C("c")), A("u", C("a")))
	l1 := l0.Snapshot()
	l1.Add(A("e", C("a"), C("c")))
	l1.Add(A("u", C("b")))
	l2 := l1.Snapshot()
	l2.Add(A("e", C("d"), C("b")))
	l3 := l2.Snapshot()
	l3.Add(A("e", C("a"), N("n1")))
	l3.Add(A("v", C("d")))

	flat := NewFactStore()
	for _, a := range l3.Atoms() {
		flat.Add(a)
	}
	if l3.Len() != 8 || flat.Len() != 8 {
		t.Fatalf("layered len=%d flat len=%d, want 8", l3.Len(), flat.Len())
	}
	if !l3.Equal(flat) || !flat.Equal(l3) {
		t.Fatalf("layered store must equal its flat reconstruction")
	}
	if l3.CanonicalString() != flat.CanonicalString() {
		t.Fatalf("canonical strings differ:\n%s\n%s", l3.CanonicalString(), flat.CanonicalString())
	}
	if got, want := fmt.Sprint(l3.Preds()), fmt.Sprint(flat.Preds()); got != want {
		t.Fatalf("Preds: %s vs %s", got, want)
	}
	if got, want := fmt.Sprint(l3.Domain()), fmt.Sprint(flat.Domain()); got != want {
		t.Fatalf("Domain: %s vs %s", got, want)
	}
	// Posting lists must merge across layers in ascending index order.
	if got := postingsOf(l3, "e", 0, C("a")); fmt.Sprint(got) != fmt.Sprint([]int{0, 3, 6}) {
		t.Fatalf("postings(e,0,a) = %v, want [0 3 6]", got)
	}
	if got := postingsOf(l3, "e", 1, C("b")); fmt.Sprint(got) != fmt.Sprint([]int{0, 5}) {
		t.Fatalf("postings(e,1,b) = %v, want [0 5]", got)
	}
	if got := postingsCountOf(l3, "e", 0, C("a"), 1, 7); got != 2 {
		t.Fatalf("postingsCount(e,0,a,[1,7)) = %d, want 2", got)
	}
	if got := predIndicesOf(l3, "e", 0, l3.Len()); fmt.Sprint(got) != fmt.Sprint([]int{0, 1, 3, 5, 6}) {
		t.Fatalf("pred indices for e = %v", got)
	}
	if got := countPredWindowOf(l3, "e", 2, 6); got != 2 {
		t.Fatalf("countPredWindow(e,[2,6)) = %d, want 2", got)
	}
	// ByPred materializes in insertion order.
	bp := l3.ByPred("u")
	if len(bp) != 2 || !bp[0].Equal(A("u", C("a"))) || !bp[1].Equal(A("u", C("b"))) {
		t.Fatalf("ByPred(u) = %v", bp)
	}
	// Intermediate layers still see only their own prefix.
	if l1.Len() != 5 || l1.Has(A("v", C("d"))) {
		t.Fatalf("middle layer contaminated: len=%d", l1.Len())
	}
	if got := postingsOf(l1, "e", 0, C("a")); fmt.Sprint(got) != fmt.Sprint([]int{0, 3}) {
		t.Fatalf("l1 postings(e,0,a) = %v, want [0 3]", got)
	}
	// Clone flattens into an independent root.
	c := l3.Clone()
	if c.parent != nil || !c.Equal(l3) {
		t.Fatalf("Clone of a layer must be an equal root store")
	}
	c.Add(A("w", C("x")))
	if l3.Has(A("w", C("x"))) {
		t.Fatalf("clone write leaked into the layer")
	}
}

// TestSnapshotEmptyLayerCollapse: snapshotting a layer that never grew
// links to its parent instead, keeping chains short across write-free
// generations (deferral branches in the stable-model search).
func TestSnapshotEmptyLayerCollapse(t *testing.T) {
	root := StoreOf(A("p", C("a")))
	s1 := root.Snapshot()
	s2 := s1.Snapshot()
	s3 := s2.Snapshot()
	if s3.parent != root {
		t.Fatalf("empty layers must collapse onto the root")
	}
	if s3.depth != 1 {
		t.Fatalf("depth = %d, want 1", s3.depth)
	}
	s3.Add(A("p", C("b")))
	if s2.Len() != 1 || s3.Len() != 2 {
		t.Fatalf("collapse broke visibility: %d %d", s2.Len(), s3.Len())
	}
}

// TestSnapshotDeepChainFlattens: chains deeper than maxSnapshotDepth
// flatten into a fresh root, and the view stays correct throughout.
func TestSnapshotDeepChainFlattens(t *testing.T) {
	s := StoreOf(A("p", C("c0")))
	for i := 1; i <= 2*maxSnapshotDepth; i++ {
		s = s.Snapshot()
		s.Add(A("p", C(fmt.Sprintf("c%d", i))))
		if s.depth > maxSnapshotDepth {
			t.Fatalf("depth %d exceeds the cap", s.depth)
		}
	}
	if s.Len() != 2*maxSnapshotDepth+1 {
		t.Fatalf("Len = %d", s.Len())
	}
	for i := 0; i <= 2*maxSnapshotDepth; i++ {
		if !s.Has(A("p", C(fmt.Sprintf("c%d", i)))) {
			t.Fatalf("atom %d lost across flattening", i)
		}
	}
}

// TestSnapshotHomSearchDifferential: FindHoms and FindHomsFrom over a
// randomly grown snapshot chain must enumerate exactly the
// homomorphisms found over a flat copy of the same atoms.
func TestSnapshotHomSearchDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	consts := []string{"a", "b", "c", "d"}
	randAtom := func() Atom {
		if rng.Intn(2) == 0 {
			return A("e", C(consts[rng.Intn(len(consts))]), C(consts[rng.Intn(len(consts))]))
		}
		return A("u", C(consts[rng.Intn(len(consts))]))
	}
	pats := [][]Atom{
		{A("e", V("X"), V("Y"))},
		{A("e", V("X"), V("Y")), A("e", V("Y"), V("Z"))},
		{A("u", V("X")), A("e", V("X"), V("Y"))},
		{A("e", V("X"), V("X"))},
		{A("e", C("a"), V("Y")), A("u", V("Y"))},
	}
	collect := func(st *FactStore, pos []Atom, from int) map[string]bool {
		out := map[string]bool{}
		FindHomsFrom(pos, nil, st, from, Subst{}, func(h Subst) bool {
			out[h.String()] = true
			return true
		})
		return out
	}
	for iter := 0; iter < 50; iter++ {
		layered := NewFactStore()
		for i := 0; i < 3; i++ {
			layered.Add(randAtom())
		}
		var marks []int
		for layer := 0; layer < 4; layer++ {
			marks = append(marks, layered.Len())
			layered = layered.Snapshot()
			for i := 0; i < 1+rng.Intn(3); i++ {
				layered.Add(randAtom())
			}
		}
		flat := NewFactStore()
		for _, a := range layered.Atoms() {
			flat.Add(a)
		}
		for pi, pos := range pats {
			if got, want := collect(layered, pos, 0), collect(flat, pos, 0); fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("iter %d pat %d: layered %v vs flat %v", iter, pi, got, want)
			}
			for _, from := range marks {
				if got, want := collect(layered, pos, from), collect(flat, pos, from); fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("iter %d pat %d from %d: layered %v vs flat %v", iter, pi, from, got, want)
				}
			}
		}
	}
}

func TestHasUnder(t *testing.T) {
	s := StoreOf(A("p", C("a"), C("b")))
	h := Subst{"X": C("a"), "Y": C("b"), "Z": C("z")}
	if !s.HasUnder(h, A("p", V("X"), V("Y"))) {
		t.Fatalf("bound instance present must report true")
	}
	if s.HasUnder(h, A("p", V("X"), V("Z"))) {
		t.Fatalf("bound instance absent must report false")
	}
	if s.HasUnder(h, A("p", V("X"), V("W"))) {
		t.Fatalf("unbound variable must report false (bound-instances-only)")
	}
}
