package logic

import (
	"sort"
	"strings"
)

// Subst is a substitution: a finite mapping from variable names to
// terms. Following the paper, homomorphisms are mappings
// h : C ∪ N ∪ V → C ∪ N ∪ V that are the identity on constants; our
// substitutions additionally fix nulls (a null is only remapped by the
// dedicated null-renaming helpers), so a Subst is a homomorphism
// determined by its action on variables.
type Subst map[string]Term

// Clone returns a copy of the substitution.
func (s Subst) Clone() Subst {
	c := make(Subst, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// ApplyTerm applies the substitution to a term. Variables not in the
// domain of s are left unchanged.
func (s Subst) ApplyTerm(t Term) Term {
	switch t.Kind {
	case Var:
		if u, ok := s[t.Name]; ok {
			return u
		}
		return t
	case Func:
		args := make([]Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = s.ApplyTerm(a)
		}
		return Term{Kind: Func, Name: t.Name, Args: args}
	default:
		return t
	}
}

// ApplyAtom applies the substitution to every argument of the atom.
func (s Subst) ApplyAtom(a Atom) Atom {
	if len(a.Args) == 0 {
		return a
	}
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		args[i] = s.ApplyTerm(t)
	}
	return Atom{Pred: a.Pred, Args: args}
}

// ApplyAtoms applies the substitution to a list of atoms.
func (s Subst) ApplyAtoms(atoms []Atom) []Atom {
	out := make([]Atom, len(atoms))
	for i, a := range atoms {
		out[i] = s.ApplyAtom(a)
	}
	return out
}

// ApplyLiteral applies the substitution to a literal.
func (s Subst) ApplyLiteral(l Literal) Literal {
	return Literal{Neg: l.Neg, Atom: s.ApplyAtom(l.Atom)}
}

// String renders the substitution deterministically as {X->t, ...}.
func (s Subst) String() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(k)
		b.WriteString("->")
		b.WriteString(s[k].String())
	}
	b.WriteByte('}')
	return b.String()
}

// MatchTerm extends the substitution so that s(pattern) = ground. The
// pattern may contain variables; ground must not (nulls and function
// terms are allowed on both sides and match syntactically). It reports
// whether matching succeeded; on failure s may have been partially
// extended and must be discarded by the caller (use Clone beforehand or
// the trail mechanism in the homomorphism searcher).
func (s Subst) MatchTerm(pattern, ground Term) bool {
	switch pattern.Kind {
	case Var:
		if bound, ok := s[pattern.Name]; ok {
			return bound.Equal(ground)
		}
		s[pattern.Name] = ground
		return true
	case Func:
		if ground.Kind != Func || ground.Name != pattern.Name || len(ground.Args) != len(pattern.Args) {
			return false
		}
		for i := range pattern.Args {
			if !s.MatchTerm(pattern.Args[i], ground.Args[i]) {
				return false
			}
		}
		return true
	default:
		return pattern.Equal(ground)
	}
}

// MatchAtom extends the substitution so that s(pattern) = ground,
// reporting success. On failure the substitution may be partially
// extended.
func (s Subst) MatchAtom(pattern, ground Atom) bool {
	if pattern.Pred != ground.Pred || len(pattern.Args) != len(ground.Args) {
		return false
	}
	for i := range pattern.Args {
		if !s.MatchTerm(pattern.Args[i], ground.Args[i]) {
			return false
		}
	}
	return true
}

// RenameNulls returns a copy of the atom in which every null label is
// replaced according to ren; labels missing from ren are kept.
func RenameNulls(a Atom, ren map[string]string) Atom {
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		args[i] = renameNullsTerm(t, ren)
	}
	return Atom{Pred: a.Pred, Args: args}
}

func renameNullsTerm(t Term, ren map[string]string) Term {
	switch t.Kind {
	case Null:
		if n, ok := ren[t.Name]; ok {
			return Term{Kind: Null, Name: n}
		}
		return t
	case Func:
		args := make([]Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = renameNullsTerm(a, ren)
		}
		return Term{Kind: Func, Name: t.Name, Args: args}
	default:
		return t
	}
}
