package logic

import (
	"fmt"
	"sync"
	"testing"
)

// TestSnapshotConcurrentBranchReaders pins the freeze discipline the
// parallel stable-model search relies on (see the concurrency notes on
// FactStore): after a branch point's layer stops growing, its sibling
// snapshots may be grown and read from different goroutines
// concurrently. Each worker appends to its own layer, deepens its own
// chain, and reads through the shared frozen ancestors the whole time;
// run under -race this proves the read paths are mutation-free and the
// goroutine-spawn edge is the only synchronization required.
func TestSnapshotConcurrentBranchReaders(t *testing.T) {
	root := NewFactStore()
	for i := 0; i < 256; i++ {
		root.Add(A("e", C(fmt.Sprintf("a%d", i%16)), C(fmt.Sprintf("b%d", i/16))))
	}
	// branchNode plays the search node that froze after its last
	// deterministic trigger fired: it grew its own layer on top of the
	// root, then branched.
	branchNode := root.Snapshot()
	for i := 0; i < 64; i++ {
		branchNode.Add(A("d", C(fmt.Sprintf("n%d", i))))
	}
	frozenLen := branchNode.Len()
	baseDomain := len(branchNode.Domain())

	const workers = 8
	const ownAtoms = 120
	// One shared plan cache, as the parallel search shares one BodyPlans
	// per rule across all workers: every worker's hom probes below go
	// through it, racing lock-free plan lookups against publishes from
	// siblings whose layers have grown past the re-plan threshold.
	sharedPlans := NewBodyPlans([]Atom{A("own", V("Z"), V("Y")), A("e", V("Y"), V("W"))}, nil)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		child := branchNode.Snapshot() // snapshotted before the spawn, as in branch()
		wg.Add(1)
		go func(g int, st *FactStore) {
			defer wg.Done()
			fail := func(format string, args ...any) {
				select {
				case errs <- fmt.Errorf("worker %d: "+format, append([]any{g}, args...)...):
				default:
				}
			}
			for i := 0; i < ownAtoms; i++ {
				st.Add(A("own", C(fmt.Sprintf("g%d_%d", g, i)), C(fmt.Sprintf("a%d", i%16))))
				// Interleave every kind of chain-merging read with the
				// writes to the owned tail.
				if !st.Has(A("e", C("a3"), C("b2"))) {
					fail("lost ancestor atom at step %d", i)
					return
				}
				if st.Has(A("own", C(fmt.Sprintf("g%d_%d", (g+1)%workers, i)), C("a0"))) {
					fail("sees a sibling's atom")
					return
				}
				if i%16 == 0 {
					if n := len(st.Snapshot().Domain()); n < baseDomain {
						fail("domain shrank to %d", n)
						return
					}
					if got := st.CountPred("own"); got != i+1 {
						fail("CountPred(own) = %d at step %d", got, i)
						return
					}
					// Deepen the owned chain mid-run: chains flatten
					// past maxSnapshotDepth, exercising flatten()
					// against the frozen ancestors.
					st = st.Snapshot()
				}
				if !ExistsHom([]Atom{A("e", V("X"), V("Y"))}, nil, st, Subst{"X": C("a1")}) {
					fail("hom probe through the chain failed")
					return
				}
				if i%8 == 0 {
					// Joined probe through the shared plan cache: the own
					// atom just added must be reachable regardless of
					// which sibling's plan the lookup hits.
					found := false
					sharedPlans.FindHoms(st, Subst{"Z": C(fmt.Sprintf("g%d_%d", g, i))}, func(h Subst) bool {
						found = true
						return false
					})
					if !found {
						fail("planned join probe missed own atom at step %d", i)
						return
					}
				}
			}
			if got := st.Len(); got != frozenLen+ownAtoms {
				fail("Len = %d, want %d", got, frozenLen+ownAtoms)
			}
		}(g, child)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if branchNode.Len() != frozenLen {
		t.Fatalf("frozen branch node grew: %d -> %d", frozenLen, branchNode.Len())
	}
}
