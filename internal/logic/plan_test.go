package logic

import (
	"fmt"
	"sync"
	"testing"
)

func wantCacheStats(t *testing.T, bp *BodyPlans, hits, misses, replans int64) {
	t.Helper()
	h, m, r := bp.CacheStats()
	if h != hits || m != misses || r != replans {
		t.Fatalf("cache stats (hits,misses,replans) = (%d,%d,%d), want (%d,%d,%d)",
			h, m, r, hits, misses, replans)
	}
}

// TestPlanCacheHitMissPerBindingPattern pins the cache key: one plan
// slot per binding pattern (which variables init grounds), shared by
// every init with that pattern, and one slot per delta seed.
func TestPlanCacheHitMissPerBindingPattern(t *testing.T) {
	store := StoreOf(
		A("q", C("a"), C("b")), A("q", C("b"), C("c")),
		A("r", C("b"), C("c")), A("r", C("c"), C("d")),
	)
	bp := NewBodyPlans([]Atom{A("q", V("X"), V("Y")), A("r", V("Y"), V("Z"))}, nil)
	run := func(init Subst) {
		bp.FindHoms(store, init, func(Subst) bool { return true })
	}
	run(Subst{}) // first empty-pattern call plans
	wantCacheStats(t, bp, 0, 1, 0)
	run(Subst{}) // second reuses it
	wantCacheStats(t, bp, 1, 1, 0)
	run(Subst{"X": C("a")}) // new binding pattern: new slot
	wantCacheStats(t, bp, 1, 2, 0)
	run(Subst{"X": C("b")}) // same pattern, different constant: hit
	wantCacheStats(t, bp, 2, 2, 0)
	run(Subst{"Y": C("b")}) // yet another pattern
	wantCacheStats(t, bp, 2, 3, 0)

	// Delta searches key plans by seed position: one miss per seed on
	// the first sweep, all hits on the second. (A 3-atom body, since
	// two-atom delta searches skip planning — the seed pins atom 0 and
	// one movable atom has nothing to reorder against.)
	bp3 := NewBodyPlans([]Atom{
		A("q", V("X"), V("Y")), A("q", V("Y"), V("Z")), A("r", V("Z"), V("W")),
	}, nil)
	bp3.FindHomsFrom(store, 1, Subst{}, func(Subst) bool { return true })
	wantCacheStats(t, bp3, 0, 3, 0)
	bp3.FindHomsFrom(store, 1, Subst{}, func(Subst) bool { return true })
	wantCacheStats(t, bp3, 3, 3, 0)
}

// TestPlanCacheReplanThreshold pins the growth-only invalidation: a
// cached plan survives until some body predicate grows past
// replanGrowth*planTimeCount+replanSlack, and stays valid on smaller
// stores (sibling snapshots) indefinitely.
func TestPlanCacheReplanThreshold(t *testing.T) {
	store := NewFactStore()
	store.Add(A("p", C("a")))
	store.Add(A("q", C("a"), C("b")))
	bp := NewBodyPlans([]Atom{A("p", V("X")), A("q", V("X"), V("Y"))}, nil)
	run := func(s *FactStore) {
		bp.FindHoms(s, Subst{}, func(Subst) bool { return true })
	}
	run(store) // plan with q count 1: threshold 2*1+8 = 10
	wantCacheStats(t, bp, 0, 1, 0)
	for i := 0; store.CountPred("q") < replanGrowth*1+replanSlack; i++ {
		store.Add(A("q", C("c"), C(fmt.Sprintf("g%d", i))))
	}
	run(store) // exactly at the threshold: still valid
	wantCacheStats(t, bp, 1, 1, 0)
	store.Add(A("q", C("c"), C("z"))) // one past: invalidated
	run(store)
	wantCacheStats(t, bp, 1, 1, 1)
	run(store) // the re-plan is cached in turn
	wantCacheStats(t, bp, 2, 1, 1)
	// Growth-only: the plan cached against the big store remains valid
	// on a small sibling — shrinkage never thrashes a shared cache.
	small := StoreOf(A("p", C("a")), A("q", C("a"), C("b")))
	run(small)
	wantCacheStats(t, bp, 3, 1, 1)
}

// TestPlanCacheConcurrentSnapshotReaders hammers one shared BodyPlans
// from workers running against diverged sibling snapshots — the
// parallel-search usage — while each worker's growing layer forces
// replans at different store sizes. Results must always equal the
// naive oracle; run under -race this checks the lock-free lookup
// against the copy-on-write publish.
func TestPlanCacheConcurrentSnapshotReaders(t *testing.T) {
	base := NewFactStore()
	consts := []string{"a", "b", "c", "d"}
	for i, c := range consts {
		base.Add(A("p", C(c)))
		base.Add(A("q", C(c), C(consts[(i+1)%len(consts)])))
	}
	pos := []Atom{A("p", V("X")), A("q", V("X"), V("Y")), A("q", V("Y"), V("Z"))}
	bp := NewBodyPlans(pos, nil)
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			snap := base.Snapshot()
			for round := 0; round < 12; round++ {
				// Diverge the sibling: grow q past the re-plan threshold
				// at a per-worker rate.
				for i := 0; i <= w; i++ {
					snap.Add(A("q", C(fmt.Sprintf("w%d", w)), C(fmt.Sprintf("r%dx%d", round, i))))
				}
				var got, want []string
				bp.FindHoms(snap, Subst{}, func(h Subst) bool {
					got = append(got, h.String())
					return true
				})
				naiveFindHoms(pos, nil, snap, Subst{}, func(h Subst) bool {
					want = append(want, h.String())
					return true
				})
				sortStringsInPlace(got)
				sortStringsInPlace(want)
				if fmt.Sprint(got) != fmt.Sprint(want) {
					select {
					case errs <- fmt.Sprintf("worker %d round %d: planned %d homs, naive %d", w, round, len(got), len(want)):
					default:
					}
					return
				}
				from := snap.Len() - 1 - round%3
				var nDelta int
				bp.FindHomsFrom(snap, from, Subst{}, func(h Subst) bool {
					nDelta++
					return true
				})
				want = deltaOracle(pos, nil, snap, from, Subst{})
				if nDelta != len(want) {
					select {
					case errs <- fmt.Sprintf("worker %d round %d: delta %d homs, oracle %d", w, round, nDelta, len(want)):
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if hits, misses, _ := bp.CacheStats(); hits == 0 || misses == 0 {
		t.Fatalf("expected both cache hits and misses under concurrency, got hits=%d misses=%d", hits, misses)
	}
}
