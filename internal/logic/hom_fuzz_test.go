package logic

// Native fuzz targets pinning the join planner (PR 6) to the naive
// oracle. The fuzzer decodes an arbitrary byte string into a small
// store plus a body with negation, repeated variables, and constants,
// then checks three implementations against naiveFindHoms:
//
//   - FindHoms with planning on (the default),
//   - FindHoms with planning off (written-order baseline),
//   - BodyPlans.FindHoms (the cached per-rule planner),
//
// all of which must produce exactly the same homomorphism set.
// FuzzFindHomsFrom additionally checks the delta-window contract: for
// any split point `from`, the emitted homs are exactly those whose
// positive image touches at least one atom with index >= from, each
// emitted exactly once.
//
// The checked-in seed corpus lives under testdata/fuzz/ and is
// replayed by a plain `go test`; CI also runs a short -fuzz smoke.

import (
	"sort"
	"testing"
)

// fuzzReader consumes the fuzz input byte-by-byte, yielding 0 once
// exhausted so every input decodes deterministically.
type fuzzReader struct {
	data []byte
	i    int
}

func (r *fuzzReader) next() byte {
	if r.i >= len(r.data) {
		return 0
	}
	b := r.data[r.i]
	r.i++
	return b
}

// The decode vocabulary: four predicates of mixed arity, four
// constants, four variables. Small on purpose — collisions (repeated
// variables, shared constants, bodies re-matching the same fact) are
// where join-order bugs live.
var fuzzPreds = []struct {
	name  string
	arity int
}{
	{"p", 1}, {"q", 2}, {"r", 2}, {"s", 3},
}

var fuzzConsts = []string{"a", "b", "c", "d"}
var fuzzVars = []string{"X", "Y", "Z", "W"}

func fuzzBodyAtoms(r *fuzzReader, n int) []Atom {
	atoms := make([]Atom, 0, n)
	for i := 0; i < n; i++ {
		p := fuzzPreds[int(r.next())%len(fuzzPreds)]
		args := make([]Term, p.arity)
		for j := range args {
			b := r.next()
			if b%2 == 0 {
				args[j] = V(fuzzVars[int(b/2)%len(fuzzVars)])
			} else {
				args[j] = C(fuzzConsts[int(b/2)%len(fuzzConsts)])
			}
		}
		atoms = append(atoms, A(p.name, args...))
	}
	return atoms
}

// decodeHomFuzz turns the byte stream into (store, pos, neg, init).
// The body always has at least one positive atom; the store holds up
// to 24 ground facts over the vocabulary.
func decodeHomFuzz(r *fuzzReader) (store *FactStore, pos, neg []Atom, init Subst) {
	store = NewFactStore()
	nFacts := int(r.next()) % 25
	for i := 0; i < nFacts; i++ {
		p := fuzzPreds[int(r.next())%len(fuzzPreds)]
		args := make([]Term, p.arity)
		for j := range args {
			args[j] = C(fuzzConsts[int(r.next())%len(fuzzConsts)])
		}
		store.Add(A(p.name, args...))
	}
	pos = fuzzBodyAtoms(r, 1+int(r.next())%4)
	neg = fuzzBodyAtoms(r, int(r.next())%3)
	init = Subst{}
	for i, n := 0, int(r.next())%3; i < n; i++ {
		v := fuzzVars[int(r.next())%len(fuzzVars)]
		init[v] = C(fuzzConsts[int(r.next())%len(fuzzConsts)])
	}
	return store, pos, neg, init
}

// fuzzCollectHoms renders every visited hom with the deterministic
// Subst.String and returns the sorted multiset.
func fuzzCollectHoms(find func(fn HomVisitor) bool) []string {
	var out []string
	find(func(h Subst) bool {
		out = append(out, h.String())
		return true
	})
	sort.Strings(out)
	return out
}

func sameHoms(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d homs, oracle has %d\ngot:  %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: hom sets differ at %d: got %s, want %s", label, i, got[i], want[i])
		}
	}
}

func FuzzFindHoms(f *testing.F) {
	// Chain join with negation: q(a,b) q(b,c) q(c,d) p(a) r(a,c);
	// body q(X,Y), q(Y,Z), not p(X).
	f.Add([]byte("\x05\x01\x00\x01\x01\x01\x02\x01\x02\x03\x00\x00\x02\x00\x02\x01\x01\x00\x02\x01\x02\x04\x01\x00\x00\x00"))
	// Repeated variables: s(X,X,Y), q(X,X) with init X->a.
	f.Add([]byte("\x04\x03\x00\x00\x01\x03\x00\x01\x01\x03\x01\x01\x01\x01\x00\x00\x01\x03\x00\x00\x02\x01\x00\x00\x00\x01\x00\x00"))
	// Empty store, fully-ground body atom q(a,b).
	f.Add([]byte("\x00\x00\x01\x01\x03\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		store, pos, neg, init := decodeHomFuzz(&fuzzReader{data: data})
		want := fuzzCollectHoms(func(fn HomVisitor) bool {
			return naiveFindHoms(pos, neg, store, init, fn)
		})
		restore := SetJoinPlanning(true)
		defer restore()
		sameHoms(t, "FindHoms planner-on", fuzzCollectHoms(func(fn HomVisitor) bool {
			return FindHoms(pos, neg, store, init, fn)
		}), want)
		bp := NewBodyPlans(pos, neg)
		// Twice through the same BodyPlans: the second run exercises the
		// plan-cache hit path.
		for pass := 0; pass < 2; pass++ {
			sameHoms(t, "BodyPlans.FindHoms", fuzzCollectHoms(func(fn HomVisitor) bool {
				return bp.FindHoms(store, init, fn)
			}), want)
		}
		SetJoinPlanning(false)
		sameHoms(t, "FindHoms planner-off", fuzzCollectHoms(func(fn HomVisitor) bool {
			return FindHoms(pos, neg, store, init, fn)
		}), want)
	})
}

// deltaOracle enumerates, via the naive oracle over the full store,
// exactly the homs whose positive image touches an atom with index >=
// from — the delta-window contract of FindHomsFrom.
func deltaOracle(pos, neg []Atom, store *FactStore, from int, init Subst) []string {
	var want []string
	naiveFindHoms(pos, neg, store, init, func(h Subst) bool {
		for _, a := range pos {
			if idx, ok := store.IndexOfAtom(h.ApplyAtom(a)); ok && idx >= from {
				want = append(want, h.String())
				break
			}
		}
		return true
	})
	sort.Strings(want)
	return want
}

func FuzzFindHomsFrom(f *testing.F) {
	// Same bodies as FuzzFindHoms with a trailing split-point byte.
	f.Add([]byte("\x05\x01\x00\x01\x01\x01\x02\x01\x02\x03\x00\x00\x02\x00\x02\x01\x01\x00\x02\x01\x02\x04\x01\x00\x00\x00\x02"))
	f.Add([]byte("\x04\x03\x00\x00\x01\x03\x00\x01\x01\x03\x01\x01\x01\x01\x00\x00\x01\x03\x00\x00\x02\x01\x00\x00\x00\x01\x00\x00\x03"))
	f.Add([]byte("\x00\x00\x01\x01\x03\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &fuzzReader{data: data}
		store, pos, neg, init := decodeHomFuzz(r)
		from := 0
		if n := store.Len(); n > 0 {
			from = int(r.next()) % (n + 1)
		}
		want := deltaOracle(pos, neg, store, from, init)
		check := func(label string) {
			var got []string
			FindHomsFrom(pos, neg, store, from, init, func(h Subst) bool {
				got = append(got, h.String())
				return true
			})
			sort.Strings(got)
			for i := 1; i < len(got); i++ {
				if got[i] == got[i-1] {
					t.Fatalf("%s: delta hom emitted twice: %s (from=%d)", label, got[i], from)
				}
			}
			sameHoms(t, label, got, want)
		}
		restore := SetJoinPlanning(true)
		defer restore()
		check("FindHomsFrom planner-on")
		SetJoinPlanning(false)
		check("FindHomsFrom planner-off")
		SetJoinPlanning(true)
		bp := NewBodyPlans(pos, neg)
		for pass := 0; pass < 2; pass++ {
			var got []string
			bp.FindHomsFrom(store, from, init, func(h Subst) bool {
				got = append(got, h.String())
				return true
			})
			sort.Strings(got)
			sameHoms(t, "BodyPlans.FindHomsFrom", got, want)
		}
	})
}
