package logic

import (
	"fmt"
	"testing"
)

// benchStore builds a chain graph with n edges.
func benchStore(n int) *FactStore {
	s := NewFactStore()
	for i := 0; i < n; i++ {
		s.Add(A("edge", C(fmt.Sprintf("v%d", i)), C(fmt.Sprintf("v%d", i+1))))
	}
	return s
}

func BenchmarkHomSearchPath2(b *testing.B) {
	for _, n := range []int{16, 128, 1024} {
		s := benchStore(n)
		pat := []Atom{A("edge", V("X"), V("Y")), A("edge", V("Y"), V("Z"))}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				count := 0
				FindHoms(pat, nil, s, Subst{}, func(Subst) bool { count++; return true })
				if count != n-1 {
					b.Fatalf("count=%d", count)
				}
			}
		})
	}
}

func BenchmarkStoreAddHas(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewFactStore()
		for j := 0; j < 256; j++ {
			s.Add(A("p", C(fmt.Sprintf("c%d", j%64)), C(fmt.Sprintf("d%d", j))))
		}
		if s.Len() != 256 {
			b.Fatal("bad store")
		}
	}
}

func BenchmarkAtomKey(b *testing.B) {
	a := A("predicate", C("constant"), N("null1"), F("f", C("x"), V("Y")))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.Key()
	}
}

func BenchmarkModelCheck(b *testing.B) {
	s := benchStore(128)
	// Closure rule unsatisfied: every trigger is a violation candidate.
	r := NewRule("tc",
		[]Literal{Pos(A("edge", V("X"), V("Y"))), Pos(A("edge", V("Y"), V("Z")))},
		[]Atom{A("edge", V("X"), V("Z"))})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if SatisfiesRule(r, s) {
			b.Fatal("chain is not transitively closed")
		}
	}
}
