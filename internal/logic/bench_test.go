package logic

import (
	"fmt"
	"testing"
)

// benchStore builds a chain graph with n edges.
func benchStore(n int) *FactStore {
	s := NewFactStore()
	for i := 0; i < n; i++ {
		s.Add(A("edge", C(fmt.Sprintf("v%d", i)), C(fmt.Sprintf("v%d", i+1))))
	}
	return s
}

func BenchmarkHomSearchPath2(b *testing.B) {
	for _, n := range []int{16, 128, 1024} {
		s := benchStore(n)
		pat := []Atom{A("edge", V("X"), V("Y")), A("edge", V("Y"), V("Z"))}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				count := 0
				FindHoms(pat, nil, s, Subst{}, func(Subst) bool { count++; return true })
				if count != n-1 {
					b.Fatalf("count=%d", count)
				}
			}
		})
	}
}

// BenchmarkHomBoundProbe measures a high-selectivity probe on large
// stores: one body atom with a bound first position over up to 10⁵
// facts. The indexed search answers from a posting list of size ~1;
// the naive oracle scans the whole predicate.
func BenchmarkHomBoundProbe(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		s := benchStore(n)
		pat := []Atom{A("edge", C(fmt.Sprintf("v%d", n/2)), V("Y"))}
		run := func(name string, search func([]Atom, []Atom, *FactStore, Subst, HomVisitor) bool) {
			b.Run(fmt.Sprintf("%s/n=%d", name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					count := 0
					search(pat, nil, s, Subst{}, func(Subst) bool { count++; return true })
					if count != 1 {
						b.Fatalf("count=%d", count)
					}
				}
			})
		}
		run("indexed", FindHoms)
		run("naive", naiveFindHoms)
	}
}

// BenchmarkHomJoinLarge measures the 2-atom path join at store sizes
// where the naive quadratic scan is prohibitive; only the indexed
// search runs at the top size.
func BenchmarkHomJoinLarge(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		s := benchStore(n)
		pat := []Atom{A("edge", V("X"), V("Y")), A("edge", V("Y"), V("Z"))}
		b.Run(fmt.Sprintf("indexed/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				count := 0
				FindHoms(pat, nil, s, Subst{}, func(Subst) bool { count++; return true })
				if count != n-1 {
					b.Fatalf("count=%d", count)
				}
			}
		})
	}
}

// BenchmarkFindHomsFromDelta measures semi-naive seeding: 10⁵ old
// facts plus a small delta; the seeded search touches only
// delta-joined candidates, the naive equivalent re-enumerates every
// hom and filters.
func BenchmarkFindHomsFromDelta(b *testing.B) {
	n, delta := 100000, 64
	s := benchStore(n)
	from := s.Len()
	for i := n; i < n+delta; i++ {
		s.Add(A("edge", C(fmt.Sprintf("v%d", i)), C(fmt.Sprintf("v%d", i+1))))
	}
	pat := []Atom{A("edge", V("X"), V("Y")), A("edge", V("Y"), V("Z"))}
	b.Run("seeded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			count := 0
			FindHomsFrom(pat, nil, s, from, Subst{}, func(Subst) bool { count++; return true })
			if count != delta {
				b.Fatalf("count=%d", count)
			}
		}
	})
}

// BenchmarkJoinOrderAdversarial pins the join planner's win on a
// worst-selectivity-first body over 10⁵ facts: in written order the
// enumeration scans the big relation and drags ~10⁵ partial joins to
// the selective last atom; the planner starts from the single sel
// fact and touches a few hundred candidates. The CI gate tracks all
// three arms; planned must stay ≥ 2x faster than written (PR 6
// acceptance), and cached shows the per-rule BodyPlans reuse on top.
func BenchmarkJoinOrderAdversarial(b *testing.B) {
	const nBig, nMid = 100000, 512
	s := NewFactStore()
	for i := 0; i < nBig; i++ {
		s.Add(A("big", C(fmt.Sprintf("c%d", i)), C(fmt.Sprintf("d%d", i%nMid))))
	}
	for j := 0; j < nMid; j++ {
		s.Add(A("mid", C(fmt.Sprintf("d%d", j)), C(fmt.Sprintf("e%d", j))))
	}
	s.Add(A("sel", C("e7")))
	body := []Atom{
		A("big", V("X"), V("Y")),
		A("mid", V("Y"), V("Z")),
		A("sel", V("Z")),
	}
	want := 0
	restoreW := SetJoinPlanning(false)
	FindHoms(body, nil, s, Subst{}, func(Subst) bool { want++; return true })
	restoreW()
	if want == 0 {
		b.Fatal("adversarial body has no homs")
	}
	run := func(name string, planning bool, search func([]Atom, []Atom, *FactStore, Subst, HomVisitor) bool) {
		b.Run(name, func(b *testing.B) {
			restore := SetJoinPlanning(planning)
			defer restore()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				count := 0
				search(body, nil, s, Subst{}, func(Subst) bool { count++; return true })
				if count != want {
					b.Fatalf("count=%d, want %d", count, want)
				}
			}
		})
	}
	run("planned", true, FindHoms)
	run("written", false, FindHoms)
	bp := NewBodyPlans(body, nil)
	run("cached", true, func(_, _ []Atom, st *FactStore, init Subst, fn HomVisitor) bool {
		return bp.FindHoms(st, init, fn)
	})
}

func BenchmarkStoreAddHas(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewFactStore()
		for j := 0; j < 256; j++ {
			s.Add(A("p", C(fmt.Sprintf("c%d", j%64)), C(fmt.Sprintf("d%d", j))))
		}
		if s.Len() != 256 {
			b.Fatal("bad store")
		}
	}
}

func BenchmarkAtomKey(b *testing.B) {
	a := A("predicate", C("constant"), N("null1"), F("f", C("x"), V("Y")))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.Key()
	}
}

func BenchmarkModelCheck(b *testing.B) {
	s := benchStore(128)
	// Closure rule unsatisfied: every trigger is a violation candidate.
	r := NewRule("tc",
		[]Literal{Pos(A("edge", V("X"), V("Y"))), Pos(A("edge", V("Y"), V("Z")))},
		[]Atom{A("edge", V("X"), V("Z"))})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if SatisfiesRule(r, s) {
			b.Fatal("chain is not transitively closed")
		}
	}
}

// BenchmarkDomain pins the incrementally maintained domain: the store
// has 128x more atoms than domain terms, so a regression to walking
// every atom per call shows up immediately.
func BenchmarkDomain(b *testing.B) {
	s := NewFactStore()
	for i := 0; i < 8192; i++ {
		s.Add(A("e", C(fmt.Sprintf("c%d", i%64)), C(fmt.Sprintf("c%d", (i/64)%64))))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if d := s.Domain(); len(d) != 64 {
			b.Fatalf("domain = %d, want 64", len(d))
		}
	}
}

// BenchmarkStoreBranch compares the two ways to branch a store: a
// copy-on-write snapshot plus one write versus a deep clone plus one
// write — the operation the stable-model search performs at every
// branch child.
func BenchmarkStoreBranch(b *testing.B) {
	s := benchStore(4096)
	extra := A("edge", C("x"), C("y"))
	b.Run("snapshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := s.Snapshot()
			c.Add(extra)
			if c.Len() != 4097 {
				b.Fatal("bad branch")
			}
		}
	})
	b.Run("clone", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := s.Clone()
			c.Add(extra)
			if c.Len() != 4097 {
				b.Fatal("bad branch")
			}
		}
	})
}
