package logic

// The PR 9 differential suite: the interned, packed store — per-fact
// Add, bulk AddAll, and arbitrary snapshot chains over it — must be
// observationally identical to a reference built fact by fact, across
// every read surface the engines use (Len, Equal, CanonicalString,
// Domain, Preds, IndexOfAtom/AtomAt, FindHoms/FindHomsFrom with
// negation and repeated variables). FuzzStorage extends the same pin
// to arbitrary byte-derived inputs using the PR 6 fuzz vocabulary.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// randPackedAtom draws a ground atom over a vocabulary that exercises
// every term shape the interner handles: constants, labeled nulls, and
// nested function terms.
func randPackedAtom(rng *rand.Rand) Atom {
	consts := []string{"a", "b", "c", "d"}
	var term func(depth int) Term
	term = func(depth int) Term {
		switch k := rng.Intn(6); {
		case k == 0 && depth < 2:
			return F("f", term(depth+1))
		case k == 1:
			return N(fmt.Sprintf("n%d", rng.Intn(3)))
		default:
			return C(consts[rng.Intn(len(consts))])
		}
	}
	switch rng.Intn(3) {
	case 0:
		return A("p", term(0))
	case 1:
		return A("q", term(0), term(0))
	default:
		return A("s", term(0), term(0), term(0))
	}
}

// buildThreeWays materializes one atom sequence as (1) a root grown by
// per-fact Add, (2) a root bulk-loaded by AddAll, and (3) a snapshot
// chain with random layer splits — deep enough, some iterations, to
// cross maxSnapshotDepth and force flattening.
func buildThreeWays(rng *rand.Rand, atoms []Atom) (perFact, bulk, chain *FactStore) {
	perFact = NewFactStore()
	for _, a := range atoms {
		perFact.Add(a)
	}
	bulk = NewFactStore()
	bulk.AddAll(atoms)
	chain = NewFactStore()
	layers := 1 + rng.Intn(2*maxSnapshotDepth)
	for i, a := range atoms {
		if rng.Intn(len(atoms)/layers+1) == 0 {
			chain = chain.Snapshot()
		}
		if i%2 == 0 {
			chain.Add(a)
		} else {
			chain.AddAll(atoms[i : i+1])
		}
	}
	return perFact, bulk, chain
}

// checkStoresAgree pins every read surface across the three builds.
func checkStoresAgree(t *testing.T, iter int, atoms []Atom, perFact, bulk, chain *FactStore) {
	t.Helper()
	stores := map[string]*FactStore{"bulk": bulk, "chain": chain}
	for name, s := range stores {
		if s.Len() != perFact.Len() {
			t.Fatalf("iter %d: %s Len = %d, per-fact = %d", iter, name, s.Len(), perFact.Len())
		}
		if !s.Equal(perFact) || !perFact.Equal(s) {
			t.Fatalf("iter %d: %s differs from per-fact build", iter, name)
		}
		if got, want := s.CanonicalString(), perFact.CanonicalString(); got != want {
			t.Fatalf("iter %d: %s canonical form differs:\n%s\n%s", iter, name, got, want)
		}
		if got, want := fmt.Sprint(s.Domain()), fmt.Sprint(perFact.Domain()); got != want {
			t.Fatalf("iter %d: %s Domain differs:\n%s\n%s", iter, name, got, want)
		}
		if got, want := fmt.Sprint(s.Preds()), fmt.Sprint(perFact.Preds()); got != want {
			t.Fatalf("iter %d: %s Preds differs: %s vs %s", iter, name, got, want)
		}
		for _, a := range atoms {
			idx, ok := s.IndexOfAtom(a)
			if !ok {
				t.Fatalf("iter %d: %s lost atom %s", iter, name, a)
			}
			if got := s.AtomAt(idx); !got.Equal(a) {
				t.Fatalf("iter %d: %s AtomAt(%d) = %s, want %s", iter, name, idx, got, a)
			}
			if !s.Has(a) {
				t.Fatalf("iter %d: %s Has(%s) = false", iter, name, a)
			}
		}
		// Dense stable indices: AtomAt enumerates without gaps and in
		// the same global order as Atoms.
		all := s.Atoms()
		for i, a := range all {
			if got := s.AtomAt(i); !got.Equal(a) {
				t.Fatalf("iter %d: %s AtomAt(%d) = %s, Atoms[%d] = %s", iter, name, i, got, i, a)
			}
		}
	}
}

// randBody draws a hom-search body over the vocabulary: positive atoms
// with shared and repeated variables, plus negative literals whose
// variables all occur positively (the safety condition).
func randBody(rng *rand.Rand) (pos, neg []Atom, init Subst) {
	vars := []string{"X", "Y", "Z"}
	consts := []string{"a", "b", "c", "d"}
	arg := func() Term {
		if rng.Intn(2) == 0 {
			return V(vars[rng.Intn(len(vars))])
		}
		return C(consts[rng.Intn(len(consts))])
	}
	atom := func() Atom {
		switch rng.Intn(3) {
		case 0:
			return A("p", arg())
		case 1:
			return A("q", arg(), arg())
		default:
			return A("s", arg(), arg(), arg())
		}
	}
	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		pos = append(pos, atom())
	}
	pv := VarSet(pos...)
	for i, n := 0, rng.Intn(2); i < n; i++ {
		a := atom()
		safe := true
		var buf []string
		for _, v := range a.Vars(buf[:0]) {
			if !pv[v] {
				safe = false
			}
		}
		if safe {
			neg = append(neg, a)
		}
	}
	init = Subst{}
	if rng.Intn(3) == 0 {
		init[vars[rng.Intn(len(vars))]] = C(consts[rng.Intn(len(consts))])
	}
	return pos, neg, init
}

func collectHomSet(pos, neg []Atom, s *FactStore, from int, init Subst) []string {
	var out []string
	FindHomsFrom(pos, neg, s, from, init, func(h Subst) bool {
		out = append(out, h.String())
		return true
	})
	sort.Strings(out)
	return out
}

// TestStorageDifferential is the randomized pin: N random fact sets,
// each built three ways and probed across every read surface plus the
// hom search (full and delta windows) against the naive oracle.
func TestStorageDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 60; iter++ {
		n := 1 + rng.Intn(40)
		atoms := make([]Atom, 0, n)
		for i := 0; i < n; i++ {
			atoms = append(atoms, randPackedAtom(rng))
		}
		perFact, bulk, chain := buildThreeWays(rng, atoms)
		checkStoresAgree(t, iter, atoms, perFact, bulk, chain)

		for bi := 0; bi < 3; bi++ {
			pos, neg, init := randBody(rng)
			var want []string
			naiveFindHoms(pos, neg, perFact, init, func(h Subst) bool {
				want = append(want, h.String())
				return true
			})
			sort.Strings(want)
			for name, s := range map[string]*FactStore{"per-fact": perFact, "bulk": bulk, "chain": chain} {
				if got := collectHomSet(pos, neg, s, 0, init); fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("iter %d: %s FindHoms differs for %v not %v init %v:\ngot  %v\nwant %v",
						iter, name, pos, neg, init, got, want)
				}
			}
			// Delta windows against the per-index oracle, on the chain
			// (the layered path) and the bulk root (the packed path).
			from := rng.Intn(perFact.Len() + 1)
			var dwant []string
			naiveFindHoms(pos, neg, perFact, init, func(h Subst) bool {
				for _, a := range pos {
					if idx, ok := perFact.IndexOfAtom(h.ApplyAtom(a)); ok && idx >= from {
						dwant = append(dwant, h.String())
						break
					}
				}
				return true
			})
			sort.Strings(dwant)
			for name, s := range map[string]*FactStore{"bulk": bulk, "chain": chain} {
				if got := collectHomSet(pos, neg, s, from, init); fmt.Sprint(got) != fmt.Sprint(dwant) {
					t.Fatalf("iter %d: %s FindHomsFrom(%d) differs:\ngot  %v\nwant %v", iter, name, from, got, dwant)
				}
			}
		}
	}
}

// FuzzStorage replays the PR 6 fuzz vocabulary against the storage
// layer: an arbitrary byte string decodes into a fact sequence and a
// body; the per-fact, bulk, and snapshot-chain builds must agree with
// each other and with the naive hom oracle.
func FuzzStorage(f *testing.F) {
	f.Add([]byte("\x05\x01\x00\x01\x01\x01\x02\x01\x02\x03\x00\x00\x02\x00\x02\x01\x01\x00\x02\x01\x02\x04\x01\x00\x00\x00"))
	f.Add([]byte("\x18\x03\x00\x00\x01\x03\x00\x01\x01\x03\x01\x01\x01\x01\x00\x00\x01\x03"))
	f.Add([]byte("\x00\x00\x01\x01\x03\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &fuzzReader{data: data}
		nFacts := int(r.next()) % 25
		atoms := make([]Atom, 0, nFacts)
		for i := 0; i < nFacts; i++ {
			p := fuzzPreds[int(r.next())%len(fuzzPreds)]
			args := make([]Term, p.arity)
			for j := range args {
				args[j] = C(fuzzConsts[int(r.next())%len(fuzzConsts)])
			}
			atoms = append(atoms, A(p.name, args...))
		}
		pos := fuzzBodyAtoms(r, 1+int(r.next())%3)

		perFact := NewFactStore()
		for _, a := range atoms {
			perFact.Add(a)
		}
		bulk := NewFactStore()
		bulk.AddAll(atoms)
		// Chain layered at byte-chosen split points.
		chain := NewFactStore()
		for _, a := range atoms {
			if r.next()%3 == 0 {
				chain = chain.Snapshot()
			}
			chain.Add(a)
		}

		for name, s := range map[string]*FactStore{"bulk": bulk, "chain": chain} {
			if s.Len() != perFact.Len() || !s.Equal(perFact) {
				t.Fatalf("%s build differs: len %d vs %d", name, s.Len(), perFact.Len())
			}
			if s.CanonicalString() != perFact.CanonicalString() {
				t.Fatalf("%s canonical form differs", name)
			}
		}
		want := fuzzCollectHoms(func(fn HomVisitor) bool {
			return naiveFindHoms(pos, nil, perFact, Subst{}, fn)
		})
		for name, s := range map[string]*FactStore{"per-fact": perFact, "bulk": bulk, "chain": chain} {
			sameHoms(t, "FuzzStorage "+name, fuzzCollectHoms(func(fn HomVisitor) bool {
				return FindHoms(pos, nil, s, Subst{}, fn)
			}), want)
		}
	})
}
