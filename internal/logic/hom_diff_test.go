package logic

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// This file pins the indexed homomorphism search (FindHoms, probing
// the (predicate, position, term) posting lists) and the semi-naive
// seeded search (FindHomsFrom) to the naive full-scan oracle
// (naiveFindHoms) on randomized stores and patterns. Patterns cover
// negation, repeated variables, and constants in bodies.

// collectHoms runs the given search and returns the sorted set of
// solution substitutions rendered canonically.
func collectHoms(t *testing.T, search func(HomVisitor) bool) []string {
	t.Helper()
	var out []string
	completed := search(func(h Subst) bool {
		out = append(out, h.String())
		return true
	})
	if !completed {
		t.Fatalf("search stopped although the visitor never returned false")
	}
	sort.Strings(out)
	// The enumeration visits each solution substitution exactly once.
	for i := 1; i < len(out); i++ {
		if out[i] == out[i-1] {
			t.Fatalf("duplicate solution %s", out[i])
		}
	}
	return out
}

func stringsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// randGroundAtom draws a ground atom over a small vocabulary: three
// predicates of arities 1..3, constants c0..c5, and occasionally a
// function term or labeled null.
func randGroundAtom(rng *rand.Rand) Atom {
	preds := []struct {
		name  string
		arity int
	}{{"p", 1}, {"q", 2}, {"r", 3}}
	pr := preds[rng.Intn(len(preds))]
	args := make([]Term, pr.arity)
	for i := range args {
		switch rng.Intn(10) {
		case 0:
			args[i] = N(fmt.Sprintf("n%d", rng.Intn(3)))
		case 1:
			args[i] = F("f", C(fmt.Sprintf("c%d", rng.Intn(3))))
		default:
			args[i] = C(fmt.Sprintf("c%d", rng.Intn(6)))
		}
	}
	return Atom{Pred: pr.name, Args: args}
}

// randPattern draws a body atom mixing variables (with repetition),
// constants, and the occasional function term over a variable.
func randPattern(rng *rand.Rand) Atom {
	preds := []struct {
		name  string
		arity int
	}{{"p", 1}, {"q", 2}, {"r", 3}}
	pr := preds[rng.Intn(len(preds))]
	vars := []string{"X", "Y", "Z", "W"}
	args := make([]Term, pr.arity)
	for i := range args {
		switch rng.Intn(6) {
		case 0:
			args[i] = C(fmt.Sprintf("c%d", rng.Intn(6)))
		case 1:
			args[i] = F("f", V(vars[rng.Intn(len(vars))]))
		default:
			args[i] = V(vars[rng.Intn(len(vars))])
		}
	}
	return Atom{Pred: pr.name, Args: args}
}

// safeNeg draws negative atoms whose variables all occur in pos
// (safety), mixing in constants.
func safeNeg(rng *rand.Rand, pos []Atom) []Atom {
	bound := VarSet(pos...)
	var vars []string
	for v := range bound {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	if len(vars) == 0 {
		return nil
	}
	n := rng.Intn(3)
	out := make([]Atom, 0, n)
	for k := 0; k < n; k++ {
		preds := []struct {
			name  string
			arity int
		}{{"p", 1}, {"q", 2}}
		pr := preds[rng.Intn(len(preds))]
		args := make([]Term, pr.arity)
		for i := range args {
			if rng.Intn(3) == 0 {
				args[i] = C(fmt.Sprintf("c%d", rng.Intn(6)))
			} else {
				args[i] = V(vars[rng.Intn(len(vars))])
			}
		}
		out = append(out, Atom{Pred: pr.name, Args: args})
	}
	return out
}

func TestFindHomsMatchesNaiveRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		store := NewFactStore()
		for i, n := 0, rng.Intn(40); i < n; i++ {
			store.Add(randGroundAtom(rng))
		}
		npos := 1 + rng.Intn(3)
		pos := make([]Atom, npos)
		for i := range pos {
			pos[i] = randPattern(rng)
		}
		neg := safeNeg(rng, pos)
		init := Subst{}
		if rng.Intn(3) == 0 {
			init["X"] = C(fmt.Sprintf("c%d", rng.Intn(6)))
		}

		want := collectHoms(t, func(fn HomVisitor) bool {
			return naiveFindHoms(pos, neg, store, init, fn)
		})
		got := collectHoms(t, func(fn HomVisitor) bool {
			return FindHoms(pos, neg, store, init, fn)
		})
		if !stringsEqual(got, want) {
			t.Fatalf("trial %d: indexed FindHoms diverges from naive oracle\nstore: %s\npos: %v neg: %v init: %v\nindexed: %v\nnaive:   %v",
				trial, store.CanonicalString(), pos, neg, init, got, want)
		}
	}
}

func TestFindHomsFromMatchesFullMinusOld(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		old := NewFactStore()
		for i, n := 0, rng.Intn(25); i < n; i++ {
			old.Add(randGroundAtom(rng))
		}
		from := old.Len()
		full := old.Clone()
		for i, n := 0, 1+rng.Intn(15); i < n; i++ {
			full.Add(randGroundAtom(rng))
		}
		npos := 1 + rng.Intn(3)
		pos := make([]Atom, npos)
		for i := range pos {
			pos[i] = randPattern(rng)
		}
		neg := safeNeg(rng, pos)

		// Semi-naive contract: homs over the full store that use at
		// least one delta atom = all homs over full minus all homs
		// over old. (Negative literals are evaluated over the full
		// store in both runs.)
		inFull := collectHoms(t, func(fn HomVisitor) bool {
			return naiveFindHoms(pos, neg, full, Subst{}, fn)
		})
		inOldBody := collectHoms(t, func(fn HomVisitor) bool {
			return naiveFindHoms(pos, nil, old, Subst{}, func(h Subst) bool {
				for _, n := range neg {
					if full.Has(h.ApplyAtom(n)) {
						return true
					}
				}
				return fn(h)
			})
		})
		oldSet := make(map[string]bool, len(inOldBody))
		for _, s := range inOldBody {
			oldSet[s] = true
		}
		var want []string
		for _, s := range inFull {
			if !oldSet[s] {
				want = append(want, s)
			}
		}

		got := collectHoms(t, func(fn HomVisitor) bool {
			return FindHomsFrom(pos, neg, full, from, Subst{}, fn)
		})
		if !stringsEqual(got, want) {
			t.Fatalf("trial %d: FindHomsFrom diverges (from=%d)\nfull: %s\npos: %v neg: %v\nseeded: %v\nwant:   %v",
				trial, from, full.CanonicalString(), pos, neg, got, want)
		}
	}
}

func TestFindHomsFromDegenerateCases(t *testing.T) {
	store := StoreOf(A("p", C("a")), A("p", C("b")))
	pat := []Atom{A("p", V("X"))}
	// from == Len: empty delta, nothing to report.
	if got := collectHoms(t, func(fn HomVisitor) bool {
		return FindHomsFrom(pat, nil, store, store.Len(), Subst{}, fn)
	}); len(got) != 0 {
		t.Fatalf("empty delta should yield no homs, got %v", got)
	}
	// from <= 0 degenerates to the full search.
	if got := collectHoms(t, func(fn HomVisitor) bool {
		return FindHomsFrom(pat, nil, store, 0, Subst{}, fn)
	}); len(got) != 2 {
		t.Fatalf("from=0 should yield all homs, got %v", got)
	}
	// Empty positive body: no atom can cover the delta.
	if got := collectHoms(t, func(fn HomVisitor) bool {
		return FindHomsFrom(nil, nil, store, 1, Subst{}, fn)
	}); len(got) != 0 {
		t.Fatalf("empty body with nonzero from should yield nothing, got %v", got)
	}
}

func TestFindHomsEarlyStopIndexed(t *testing.T) {
	store := StoreOf(A("p", C("a")), A("p", C("b")), A("p", C("c")))
	count := 0
	completed := FindHoms([]Atom{A("p", V("X"))}, nil, store, Subst{}, func(Subst) bool {
		count++
		return false
	})
	if completed || count != 1 {
		t.Fatalf("early stop broken: completed=%v count=%d", completed, count)
	}
	completed = FindHomsFrom([]Atom{A("p", V("X"))}, nil, store, 1, Subst{}, func(Subst) bool {
		count++
		return false
	})
	if completed || count != 2 {
		t.Fatalf("seeded early stop broken: completed=%v count=%d", completed, count)
	}
}
