package logic

import (
	"encoding/binary"
	"sync"
)

// Symbols is a hash-consing interner mapping ground terms and predicate
// names to dense uint32 ids. One table is shared by a whole snapshot
// chain (every layer of a FactStore family points at the root's table),
// so a term id — and therefore a packed FactKey — means the same thing
// in every store of the chain: atom identity checks become integer
// comparisons on packed tuples instead of canonical-string rendering.
//
// Alongside the id maps the table retains, per id, the interned Term
// (with its arguments canonicalized to interned terms, so structurally
// equal subtrees share memory) and the term's canonical key string
// (rendered exactly once). The cached keys preserve the pre-interning
// sort orders — Domain() and trigger selection sort by canonical key —
// without ever re-rendering a term.
//
// Concurrency: all methods are safe for concurrent use. Reads take a
// shared lock; interning escalates to the exclusive lock only when a
// symbol is genuinely new. Ids are assigned in first-intern order and
// never reused, so they are deterministic for a sequential load but not
// across runs of a parallel search — nothing order-sensitive may be
// keyed on raw id order (the cached canonical keys exist for exactly
// that reason).
type Symbols struct {
	mu    sync.RWMutex
	terms []Term   // id -> interned term (arguments interned too)
	keys  []string // id -> canonical key (Term.Key()), rendered once
	// simple maps constants and nulls; funcs maps function terms by
	// name plus packed argument ids (see appendFuncKey).
	simple map[simpleKey]uint32
	funcs  map[string]uint32

	predNames []string
	preds     map[string]uint32
}

type simpleKey struct {
	kind TermKind
	name string
}

// NewSymbols returns an empty interner.
func NewSymbols() *Symbols {
	return &Symbols{
		simple: make(map[simpleKey]uint32),
		funcs:  make(map[string]uint32),
		preds:  make(map[string]uint32),
	}
}

// appendFuncKey packs the identity of a function term — the symbol name
// (length-prefixed, names may contain any byte) followed by the
// argument term ids — onto dst.
func appendFuncKey(dst []byte, name string, args []uint32) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(name)))
	dst = append(dst, name...)
	for _, a := range args {
		dst = binary.LittleEndian.AppendUint32(dst, a)
	}
	return dst
}

// NumTerms returns the number of interned terms.
func (s *Symbols) NumTerms() int {
	s.mu.RLock()
	n := len(s.terms)
	s.mu.RUnlock()
	return n
}

// NumPreds returns the number of interned predicate names.
func (s *Symbols) NumPreds() int {
	s.mu.RLock()
	n := len(s.predNames)
	s.mu.RUnlock()
	return n
}

// TermOf returns the interned term with the given id.
func (s *Symbols) TermOf(id uint32) Term {
	s.mu.RLock()
	t := s.terms[id]
	s.mu.RUnlock()
	return t
}

// TermKey returns the canonical key (Term.Key()) of the interned term
// with the given id, without re-rendering it.
func (s *Symbols) TermKey(id uint32) string {
	s.mu.RLock()
	k := s.keys[id]
	s.mu.RUnlock()
	return k
}

// PredName returns the predicate name with the given id.
func (s *Symbols) PredName(id uint32) string {
	s.mu.RLock()
	n := s.predNames[id]
	s.mu.RUnlock()
	return n
}

// Intern returns the id of the ground term, interning it (and all of
// its subterms) if new. t must not contain variables.
func (s *Symbols) Intern(t Term) uint32 {
	s.mu.RLock()
	id, ok := s.lookupRLocked(t)
	s.mu.RUnlock()
	if ok {
		return id
	}
	s.mu.Lock()
	id = s.internLocked(t)
	s.mu.Unlock()
	return id
}

// Lookup returns the id of the ground term if it has been interned.
// A miss means no store sharing this table contains the term.
func (s *Symbols) Lookup(t Term) (uint32, bool) {
	s.mu.RLock()
	id, ok := s.lookupRLocked(t)
	s.mu.RUnlock()
	return id, ok
}

// InternPred returns the id of the predicate name, interning it if new.
func (s *Symbols) InternPred(name string) uint32 {
	s.mu.RLock()
	id, ok := s.preds[name]
	s.mu.RUnlock()
	if ok {
		return id
	}
	s.mu.Lock()
	id = s.internPredLocked(name)
	s.mu.Unlock()
	return id
}

// LookupPred returns the id of the predicate name if interned.
func (s *Symbols) LookupPred(name string) (uint32, bool) {
	s.mu.RLock()
	id, ok := s.preds[name]
	s.mu.RUnlock()
	return id, ok
}

func (s *Symbols) internPredLocked(name string) uint32 {
	if id, ok := s.preds[name]; ok {
		return id
	}
	id := uint32(len(s.predNames))
	s.predNames = append(s.predNames, name)
	s.preds[name] = id
	return id
}

func (s *Symbols) lookupRLocked(t Term) (uint32, bool) {
	if t.Kind == Func {
		var buf [64]byte
		ids := make([]uint32, 0, 8)
		for _, a := range t.Args {
			id, ok := s.lookupRLocked(a)
			if !ok {
				return 0, false
			}
			ids = append(ids, id)
		}
		id, ok := s.funcs[string(appendFuncKey(buf[:0], t.Name, ids))]
		return id, ok
	}
	id, ok := s.simple[simpleKey{kind: t.Kind, name: t.Name}]
	return id, ok
}

func (s *Symbols) internLocked(t Term) uint32 {
	switch t.Kind {
	case Var:
		panic("logic: interning a non-ground term")
	case Func:
		ids := make([]uint32, len(t.Args))
		for i, a := range t.Args {
			ids[i] = s.internLocked(a)
		}
		k := string(appendFuncKey(nil, t.Name, ids))
		if id, ok := s.funcs[k]; ok {
			return id
		}
		// Canonicalize the arguments to their interned terms so equal
		// subtrees share one allocation across the whole table.
		args := make([]Term, len(ids))
		for i, aid := range ids {
			args[i] = s.terms[aid]
		}
		id := s.pushLocked(Term{Kind: Func, Name: t.Name, Args: args})
		s.funcs[k] = id
		return id
	default:
		k := simpleKey{kind: t.Kind, name: t.Name}
		if id, ok := s.simple[k]; ok {
			return id
		}
		id := s.pushLocked(Term{Kind: t.Kind, Name: t.Name})
		s.simple[k] = id
		return id
	}
}

func (s *Symbols) pushLocked(t Term) uint32 {
	id := uint32(len(s.terms))
	s.terms = append(s.terms, t)
	s.keys = append(s.keys, t.Key())
	return id
}

// appendAtomKey appends the packed fact key of the ground atom — the
// predicate id followed by one term id per argument, little-endian —
// onto kbuf. With intern set, unknown symbols are interned; otherwise a
// missing symbol reports ok == false (the atom cannot be in any store
// sharing this table).
func (s *Symbols) appendAtomKey(a Atom, kbuf []byte, intern bool) ([]byte, bool) {
	s.mu.RLock()
	out, ok := s.appendAtomKeyRLocked(a, kbuf)
	s.mu.RUnlock()
	if ok || !intern {
		return out, ok
	}
	s.mu.Lock()
	kbuf = binary.LittleEndian.AppendUint32(kbuf, s.internPredLocked(a.Pred))
	for _, t := range a.Args {
		kbuf = binary.LittleEndian.AppendUint32(kbuf, s.internLocked(t))
	}
	s.mu.Unlock()
	return kbuf, true
}

func (s *Symbols) appendAtomKeyRLocked(a Atom, kbuf []byte) ([]byte, bool) {
	pid, ok := s.preds[a.Pred]
	if !ok {
		return kbuf, false
	}
	kbuf = binary.LittleEndian.AppendUint32(kbuf, pid)
	for _, t := range a.Args {
		id, ok := s.lookupRLocked(t)
		if !ok {
			return kbuf, false
		}
		kbuf = binary.LittleEndian.AppendUint32(kbuf, id)
	}
	return kbuf, true
}

// appendBoundAtomKey appends the packed fact key of h(a) onto kbuf
// without materializing the atom; the caller must have established
// atomBoundUnder(h, a). ok is false when some symbol of h(a) was never
// interned — h(a) then cannot be in any store sharing this table.
func (s *Symbols) appendBoundAtomKey(h Subst, a Atom, kbuf []byte) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pid, ok := s.preds[a.Pred]
	if !ok {
		return kbuf, false
	}
	kbuf = binary.LittleEndian.AppendUint32(kbuf, pid)
	for _, t := range a.Args {
		id, ok := s.lookupBoundRLocked(h, t)
		if !ok {
			return kbuf, false
		}
		kbuf = binary.LittleEndian.AppendUint32(kbuf, id)
	}
	return kbuf, true
}

// lookupBound resolves the id of h(t) (t ground under h) without
// materializing the substituted term.
func (s *Symbols) lookupBound(h Subst, t Term) (uint32, bool) {
	s.mu.RLock()
	id, ok := s.lookupBoundRLocked(h, t)
	s.mu.RUnlock()
	return id, ok
}

func (s *Symbols) lookupBoundRLocked(h Subst, t Term) (uint32, bool) {
	switch t.Kind {
	case Var:
		u, ok := h[t.Name]
		if !ok || !u.IsGround() {
			return 0, false
		}
		return s.lookupRLocked(u)
	case Func:
		var buf [64]byte
		ids := make([]uint32, 0, 8)
		for _, a := range t.Args {
			id, ok := s.lookupBoundRLocked(h, a)
			if !ok {
				return 0, false
			}
			ids = append(ids, id)
		}
		id, ok := s.funcs[string(appendFuncKey(buf[:0], t.Name, ids))]
		return id, ok
	default:
		return s.lookupRLocked(t)
	}
}

// appendDomainIDs appends the ids of the constants and nulls occurring
// in t (recursing into function terms) onto dst. Every symbol of t must
// already be interned.
func (s *Symbols) appendDomainIDs(t Term, dst []uint32) []uint32 {
	s.mu.RLock()
	dst = s.appendDomainIDsRLocked(t, dst)
	s.mu.RUnlock()
	return dst
}

func (s *Symbols) appendDomainIDsRLocked(t Term, dst []uint32) []uint32 {
	switch t.Kind {
	case Const, Null:
		if id, ok := s.simple[simpleKey{kind: t.Kind, name: t.Name}]; ok {
			dst = append(dst, id)
		}
	case Func:
		for _, a := range t.Args {
			dst = s.appendDomainIDsRLocked(a, dst)
		}
	}
	return dst
}
