package logic

import (
	"fmt"
	"testing"
)

// bulkAtoms builds n distinct binary facts over a universe of k
// constants, each occurring in ~n/k tuples, in arbitrary (unsorted)
// arrival order — the shape of a real extensional database, where
// terms recur across tuples and loading is index-bound rather than
// interner-bound. Distinctness: the pair (a, b) determines
// i = a + k*((b-a) mod k) uniquely for n <= k².
func bulkAtoms(n, k int) []Atom {
	names := make([]Term, k)
	for i := range names {
		names[i] = C(fmt.Sprintf("c%d", i))
	}
	atoms := make([]Atom, n)
	for i := 0; i < n; i++ {
		a := i % k
		atoms[i] = A("e", names[a], names[(a+i/k)%k])
	}
	return atoms
}

// BenchmarkBulkLoad pins the PR 9 bulk-load lever: AddAll batches the
// interner lock, renders every packed key into one shared buffer, and
// builds all posting lists by counting sort over the dense ids, so
// loading 10⁶ facts must run ≥ 5x faster than the same facts through
// per-fact Add — the degenerate one-atom batch, whose cost is per-call
// locking, batch setup, and incremental index growth.
func BenchmarkBulkLoad(b *testing.B) {
	atoms := bulkAtoms(1_000_000, 100_000)
	b.Run("perfact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := NewFactStore()
			for _, a := range atoms {
				s.Add(a)
			}
			if s.Len() != len(atoms) {
				b.Fatalf("loaded %d of %d", s.Len(), len(atoms))
			}
		}
	})
	b.Run("addall", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := NewFactStore()
			if got := s.AddAll(atoms); got != len(atoms) {
				b.Fatalf("loaded %d of %d", got, len(atoms))
			}
		}
	})
}

// BenchmarkStoreProbe measures point reads against a 10⁶-fact root:
// the packed-key membership probe (Has) and the posting-list-driven
// bound hom search, both of which must stay flat in store size.
func BenchmarkStoreProbe(b *testing.B) {
	atoms := bulkAtoms(1_000_000, 100_000)
	s := NewFactStore()
	s.AddAll(atoms)
	b.Run("has", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !s.Has(atoms[i%len(atoms)]) {
				b.Fatal("probe missed a loaded fact")
			}
		}
	})
	b.Run("find-bound", func(b *testing.B) {
		b.ReportAllocs()
		pat := []Atom{A("e", C("c500"), V("Y"))}
		for i := 0; i < b.N; i++ {
			count := 0
			FindHoms(pat, nil, s, Subst{}, func(Subst) bool { count++; return true })
			if count != 10 {
				b.Fatalf("count=%d", count)
			}
		}
	})
}
