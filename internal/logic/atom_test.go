package logic

import (
	"testing"
)

func TestAtomBasics(t *testing.T) {
	a := A("p", C("a"), V("X"))
	if a.Arity() != 2 {
		t.Errorf("arity = %d", a.Arity())
	}
	if a.IsGround() {
		t.Errorf("p(a,X) is not ground")
	}
	if got := a.String(); got != "p(a,X)" {
		t.Errorf("String = %q", got)
	}
	zero := A("q")
	if zero.String() != "q" || zero.Arity() != 0 || !zero.IsGround() {
		t.Errorf("0-ary atom misbehaves: %v", zero)
	}
}

func TestAtomEqualKey(t *testing.T) {
	if !A("p", C("a")).Equal(A("p", C("a"))) {
		t.Errorf("equal atoms not equal")
	}
	if A("p", C("a")).Equal(A("p", C("b"))) || A("p", C("a")).Equal(A("q", C("a"))) {
		t.Errorf("unequal atoms equal")
	}
	// Keys must separate predicate/arity/arguments unambiguously.
	distinct := []Atom{
		A("p"), A("p", C("a")), A("p", C("a"), C("b")),
		A("p", C("ab")), A("pa", C("b")), A("p", V("a")), A("p", N("a")),
	}
	seen := map[string]Atom{}
	for _, a := range distinct {
		if prev, dup := seen[a.Key()]; dup {
			t.Errorf("key collision: %v vs %v", prev, a)
		}
		seen[a.Key()] = a
	}
}

func TestLiteralStringAndSplit(t *testing.T) {
	lits := []Literal{Pos(A("p", C("a"))), Neg(A("q")), Pos(A("r"))}
	if lits[1].String() != "not q" {
		t.Errorf("negative literal renders %q", lits[1].String())
	}
	pos, neg := SplitLiterals(lits)
	if len(pos) != 2 || len(neg) != 1 || neg[0].Pred != "q" {
		t.Errorf("SplitLiterals wrong: pos=%v neg=%v", pos, neg)
	}
}

func TestVarSet(t *testing.T) {
	set := VarSet(A("p", V("X"), C("a")), A("q", F("f", V("Y"))))
	if !set["X"] || !set["Y"] || len(set) != 2 {
		t.Errorf("VarSet = %v", set)
	}
}

func TestSortAtomsCanonical(t *testing.T) {
	a := []Atom{A("q"), A("p", C("b")), A("p", C("a"))}
	SortAtoms(a)
	if a[0].Pred != "p" || a[0].Args[0].Name != "a" || a[2].Pred != "q" {
		t.Errorf("sorted order wrong: %v", a)
	}
}
