package logic

import (
	"math/rand"
	"sort"
	"testing"
)

// Unit tests for the (predicate, position, term) posting lists
// maintained incrementally by Add/AddAll.

// The helpers below resolve predicate names and terms through the
// store's interner, mirroring the pre-interning string-addressed API so
// the tests read in terms of predicates and terms rather than raw ids.

func postingsOf(s *FactStore, pred string, pos int, term Term) []uint32 {
	pid, ok := s.syms.LookupPred(pred)
	if !ok {
		return nil
	}
	tid, ok := s.syms.Lookup(term)
	if !ok {
		return nil
	}
	return s.postings(pid, pos, tid)
}

func postingsCountOf(s *FactStore, pred string, pos int, term Term, lo, hi int) int {
	pid, ok := s.syms.LookupPred(pred)
	if !ok {
		return 0
	}
	tid, ok := s.syms.Lookup(term)
	if !ok {
		return 0
	}
	return s.postingsCount(pid, pos, tid, lo, hi)
}

func predIndicesOf(s *FactStore, pred string, lo, hi int) []uint32 {
	pid, ok := s.syms.LookupPred(pred)
	if !ok {
		return nil
	}
	return s.appendPredIndices(pid, lo, hi, nil)
}

func countPredWindowOf(s *FactStore, pred string, lo, hi int) int {
	pid, ok := s.syms.LookupPred(pred)
	if !ok {
		return 0
	}
	return s.countPredWindow(pid, lo, hi)
}

func TestPostingsMaintainedByAdd(t *testing.T) {
	s := NewFactStore()
	s.Add(A("q", C("a"), C("b"))) // idx 0
	s.Add(A("q", C("a"), C("c"))) // idx 1
	s.Add(A("q", C("b"), C("a"))) // idx 2
	s.Add(A("q", C("a"), C("b"))) // duplicate: no index growth

	if got := postingsOf(s, "q", 0, C("a")); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("postings(q,0,a) = %v, want [0 1]", got)
	}
	if got := postingsOf(s, "q", 1, C("b")); len(got) != 1 || got[0] != 0 {
		t.Fatalf("postings(q,1,b) = %v, want [0]", got)
	}
	if got := postingsOf(s, "q", 0, C("z")); got != nil {
		t.Fatalf("postings for absent term = %v, want nil", got)
	}
	if got := postingsOf(s, "zzz", 0, C("a")); got != nil {
		t.Fatalf("postings for absent pred = %v, want nil", got)
	}
}

func TestPostingsCoverNullsAndFunctionTerms(t *testing.T) {
	s := NewFactStore()
	s.Add(A("p", N("n1")))        // idx 0
	s.Add(A("p", F("f", C("a")))) // idx 1
	if got := postingsOf(s, "p", 0, N("n1")); len(got) != 1 || got[0] != 0 {
		t.Fatalf("null posting = %v", got)
	}
	if got := postingsOf(s, "p", 0, F("f", C("a"))); len(got) != 1 || got[0] != 1 {
		t.Fatalf("func-term posting = %v", got)
	}
	// Term ids are kind-discriminated: the constant "n1" is distinct
	// from the null n1.
	if got := postingsOf(s, "p", 0, C("n1")); got != nil {
		t.Fatalf("constant n1 should have no posting, got %v", got)
	}
}

func TestPostingsAddAllAndCloneIndependence(t *testing.T) {
	s := NewFactStore()
	s.AddAll([]Atom{
		A("q", C("a"), C("b")),
		A("q", C("a"), C("b")), // dup
		A("q", C("c"), C("b")),
	})
	if got := postingsOf(s, "q", 1, C("b")); len(got) != 2 {
		t.Fatalf("AddAll postings = %v, want 2 entries", got)
	}
	c := s.Clone()
	c.Add(A("q", C("d"), C("b")))
	if got := postingsOf(s, "q", 1, C("b")); len(got) != 2 {
		t.Fatalf("clone mutation leaked into original: %v", got)
	}
	if got := postingsOf(c, "q", 1, C("b")); len(got) != 3 {
		t.Fatalf("clone postings = %v, want 3 entries", got)
	}
}

// TestPostingsInvariantRandomized checks, on a random store, that the
// posting-list index is exactly the ascending list of store indices
// whose atom carries each term at each position — no more, no less.
func TestPostingsInvariantRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewFactStore()
	for i := 0; i < 300; i++ {
		s.Add(randGroundAtom(rng))
	}
	// Reconstruct the expected index from the atom list.
	type postKey struct {
		pred string
		pos  int
		term string
	}
	want := map[postKey][]int{}
	terms := map[postKey]Term{}
	for i, a := range s.Atoms() {
		for pos, term := range a.Args {
			k := postKey{pred: a.Pred, pos: pos, term: term.Key()}
			want[k] = append(want[k], i)
			terms[k] = term
		}
	}
	if n := len(s.Storage().(*memStorage).byArg.ids); len(want) != n {
		t.Fatalf("index has %d posting lists, want %d", n, len(want))
	}
	for k, idxs := range want {
		got := postingsOf(s, k.pred, k.pos, terms[k])
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			t.Fatalf("posting list %v not ascending: %v", k, got)
		}
		if len(got) != len(idxs) {
			t.Fatalf("posting %v: got %v want %v", k, got, idxs)
		}
		for i := range got {
			if int(got[i]) != idxs[i] {
				t.Fatalf("posting %v: got %v want %v", k, got, idxs)
			}
		}
	}
}

// TestEachAtomIn pins the index-window iteration across a snapshot
// chain: ascending global order, visibility clipping (a parent growing
// past a child's base stays invisible to the child), and early stop.
func TestEachAtomIn(t *testing.T) {
	root := NewFactStore()
	root.Add(A("p", C("a"))) // 0
	root.Add(A("p", C("b"))) // 1
	child := root.Snapshot()
	child.Add(A("q", C("c"))) // 2
	child.Add(A("q", C("d"))) // 3
	root.Add(A("p", C("x")))  // parent growth, invisible to child
	grand := child.Snapshot()
	grand.Add(A("r", C("e"))) // 4

	collect := func(s *FactStore, lo, hi int) []int {
		var idxs []int
		s.EachAtomIn(lo, hi, func(i int, a Atom) bool {
			idxs = append(idxs, i)
			if got := s.AtomAt(i); !got.Equal(a) {
				t.Fatalf("EachAtomIn index %d yields %v, AtomAt yields %v", i, a, got)
			}
			return true
		})
		return idxs
	}
	wantSeq := func(got []int, want ...int) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("window = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("window = %v, want %v", got, want)
			}
		}
	}
	wantSeq(collect(grand, 0, grand.Len()), 0, 1, 2, 3, 4)
	wantSeq(collect(grand, 2, grand.Len()), 2, 3, 4)
	wantSeq(collect(grand, 1, 4), 1, 2, 3)
	wantSeq(collect(child, 0, child.Len()), 0, 1, 2, 3)
	wantSeq(collect(grand, 3, 3)) // empty window
	wantSeq(collect(grand, -5, 100), 0, 1, 2, 3, 4)

	// Early stop propagates.
	n := 0
	if grand.EachAtomIn(0, grand.Len(), func(int, Atom) bool {
		n++
		return n < 2
	}) {
		t.Fatalf("stopped walk must report false")
	}
	if n != 2 {
		t.Fatalf("early stop visited %d atoms, want 2", n)
	}
}

// TestIndexUnder pins the index-based bound-instance lookup against
// lookups through rendered keys, including snapshot-chain resolution
// and the non-ground/absent cases.
func TestIndexUnder(t *testing.T) {
	root := NewFactStore()
	root.Add(A("e", C("a"), C("b"))) // 0
	child := root.Snapshot()
	child.Add(A("e", C("b"), C("c"))) // 1

	h := Subst{"X": C("b"), "Y": C("c")}
	if idx, ok := child.IndexUnder(h, A("e", V("X"), V("Y"))); !ok || idx != 1 {
		t.Fatalf("IndexUnder(e(b,c)) = %d,%v want 1,true", idx, ok)
	}
	if idx, ok := child.IndexUnder(Subst{"X": C("a")}, A("e", V("X"), C("b"))); !ok || idx != 0 {
		t.Fatalf("IndexUnder(e(a,b)) = %d,%v want 0,true (ancestor layer)", idx, ok)
	}
	if _, ok := root.IndexUnder(h, A("e", V("X"), V("Y"))); ok {
		t.Fatalf("e(b,c) must be invisible to the root store")
	}
	if _, ok := child.IndexUnder(Subst{}, A("e", V("Z"), C("b"))); ok {
		t.Fatalf("non-ground instance must report ok=false")
	}
	if _, ok := child.IndexUnder(h, A("e", V("Y"), V("X"))); ok {
		t.Fatalf("absent instance must report ok=false")
	}
}
