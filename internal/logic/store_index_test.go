package logic

import (
	"math/rand"
	"sort"
	"testing"
)

// Unit tests for the (predicate, position, term) posting lists
// maintained incrementally by Add/AddAll.

func TestPostingsMaintainedByAdd(t *testing.T) {
	s := NewFactStore()
	s.Add(A("q", C("a"), C("b"))) // idx 0
	s.Add(A("q", C("a"), C("c"))) // idx 1
	s.Add(A("q", C("b"), C("a"))) // idx 2
	s.Add(A("q", C("a"), C("b"))) // duplicate: no index growth

	if got := s.postings("q", 0, C("a").Key()); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("postings(q,0,a) = %v, want [0 1]", got)
	}
	if got := s.postings("q", 1, C("b").Key()); len(got) != 1 || got[0] != 0 {
		t.Fatalf("postings(q,1,b) = %v, want [0]", got)
	}
	if got := s.postings("q", 0, C("z").Key()); got != nil {
		t.Fatalf("postings for absent term = %v, want nil", got)
	}
	if got := s.postings("zzz", 0, C("a").Key()); got != nil {
		t.Fatalf("postings for absent pred = %v, want nil", got)
	}
}

func TestPostingsCoverNullsAndFunctionTerms(t *testing.T) {
	s := NewFactStore()
	s.Add(A("p", N("n1")))        // idx 0
	s.Add(A("p", F("f", C("a")))) // idx 1
	if got := s.postings("p", 0, N("n1").Key()); len(got) != 1 || got[0] != 0 {
		t.Fatalf("null posting = %v", got)
	}
	if got := s.postings("p", 0, F("f", C("a")).Key()); len(got) != 1 || got[0] != 1 {
		t.Fatalf("func-term posting = %v", got)
	}
	// Term keys are kind-discriminated: the constant "n1" is distinct
	// from the null n1.
	if got := s.postings("p", 0, C("n1").Key()); got != nil {
		t.Fatalf("constant n1 should have no posting, got %v", got)
	}
}

func TestPostingsAddAllAndCloneIndependence(t *testing.T) {
	s := NewFactStore()
	s.AddAll([]Atom{
		A("q", C("a"), C("b")),
		A("q", C("a"), C("b")), // dup
		A("q", C("c"), C("b")),
	})
	if got := s.postings("q", 1, C("b").Key()); len(got) != 2 {
		t.Fatalf("AddAll postings = %v, want 2 entries", got)
	}
	c := s.Clone()
	c.Add(A("q", C("d"), C("b")))
	if got := s.postings("q", 1, C("b").Key()); len(got) != 2 {
		t.Fatalf("clone mutation leaked into original: %v", got)
	}
	if got := c.postings("q", 1, C("b").Key()); len(got) != 3 {
		t.Fatalf("clone postings = %v, want 3 entries", got)
	}
}

// TestPostingsInvariantRandomized checks, on a random store, that the
// posting-list index is exactly the ascending list of store indices
// whose atom carries each term at each position — no more, no less.
func TestPostingsInvariantRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewFactStore()
	for i := 0; i < 300; i++ {
		s.Add(randGroundAtom(rng))
	}
	// Reconstruct the expected index from the atom list.
	want := map[argKey][]int{}
	for i, a := range s.Atoms() {
		for pos, term := range a.Args {
			k := argKey{pred: a.Pred, pos: pos, term: term.Key()}
			want[k] = append(want[k], i)
		}
	}
	if len(want) != len(s.byArg) {
		t.Fatalf("index has %d posting lists, want %d", len(s.byArg), len(want))
	}
	for k, idxs := range want {
		got := s.postings(k.pred, k.pos, k.term)
		if !sort.IntsAreSorted(got) {
			t.Fatalf("posting list %v not ascending: %v", k, got)
		}
		if len(got) != len(idxs) {
			t.Fatalf("posting %v: got %v want %v", k, got, idxs)
		}
		for i := range got {
			if got[i] != idxs[i] {
				t.Fatalf("posting %v: got %v want %v", k, got, idxs)
			}
		}
	}
}
