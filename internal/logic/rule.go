package logic

import (
	"fmt"
	"strings"
)

// Rule is a normal disjunctive tuple-generating dependency (NDTGD,
// Section 6 of the paper):
//
//	∀X∀Y( ϕ(X,Y) → ∨ᵢ ∃Zᵢ ψᵢ(X,Zᵢ) )
//
// where ϕ (the Body) is a conjunction of literals and each ψᵢ (a head
// disjunct) is a conjunction of atoms. Quantifiers are implicit: a head
// variable not occurring in the positive body is existentially
// quantified in its disjunct. Special cases:
//
//   - len(Heads) == 1 and no negative body literal: a plain TGD;
//   - len(Heads) == 1: a normal TGD (NTGD);
//   - len(Heads) == 0: an integrity constraint ϕ → ⊥ (not used by the
//     paper's formalism, which encodes falsity with the false/aux trick,
//     but convenient for workloads; the engines support both).
type Rule struct {
	// Label is an optional identifier used in diagnostics and in Skolem
	// function names.
	Label string
	// Body is the conjunction ϕ of positive and negative literals.
	Body []Literal
	// Heads holds one conjunction of atoms per disjunct.
	Heads [][]Atom
}

// NewRule builds a single-disjunct rule.
func NewRule(label string, body []Literal, head []Atom) *Rule {
	return &Rule{Label: label, Body: body, Heads: [][]Atom{head}}
}

// PosBody returns the atoms of the positive body literals.
func (r *Rule) PosBody() []Atom {
	pos, _ := SplitLiterals(r.Body)
	return pos
}

// NegBody returns the atoms of the negative body literals.
func (r *Rule) NegBody() []Atom {
	_, neg := SplitLiterals(r.Body)
	return neg
}

// IsTGD reports whether the rule is a plain (negation-free,
// disjunction-free) TGD.
func (r *Rule) IsTGD() bool {
	if len(r.Heads) != 1 {
		return false
	}
	for _, l := range r.Body {
		if l.Neg {
			return false
		}
	}
	return true
}

// IsConstraint reports whether the rule is an integrity constraint
// (empty head).
func (r *Rule) IsConstraint() bool { return len(r.Heads) == 0 }

// IsDisjunctive reports whether the rule has two or more head
// disjuncts.
func (r *Rule) IsDisjunctive() bool { return len(r.Heads) > 1 }

// HasNegation reports whether the body contains a negative literal.
func (r *Rule) HasNegation() bool {
	for _, l := range r.Body {
		if l.Neg {
			return true
		}
	}
	return false
}

// BodyVars returns the set of variables occurring in the body.
func (r *Rule) BodyVars() map[string]bool {
	set := make(map[string]bool)
	var buf []string
	for _, l := range r.Body {
		buf = l.Atom.Vars(buf[:0])
		for _, v := range buf {
			set[v] = true
		}
	}
	return set
}

// PosBodyVars returns the set of variables occurring in positive body
// literals.
func (r *Rule) PosBodyVars() map[string]bool {
	set := make(map[string]bool)
	var buf []string
	for _, l := range r.Body {
		if l.Neg {
			continue
		}
		buf = l.Atom.Vars(buf[:0])
		for _, v := range buf {
			set[v] = true
		}
	}
	return set
}

// Frontier returns the variables shared between the positive body and
// disjunct i, in first-occurrence order.
func (r *Rule) Frontier(i int) []string {
	pb := r.PosBodyVars()
	var out []string
	seen := make(map[string]bool)
	var buf []string
	for _, a := range r.Heads[i] {
		buf = a.Vars(buf[:0])
		for _, v := range buf {
			if pb[v] && !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// ExistVars returns the existentially quantified variables of disjunct
// i (head variables not occurring in the positive body), in
// first-occurrence order.
func (r *Rule) ExistVars(i int) []string {
	pb := r.PosBodyVars()
	var out []string
	seen := make(map[string]bool)
	var buf []string
	for _, a := range r.Heads[i] {
		buf = a.Vars(buf[:0])
		for _, v := range buf {
			if !pb[v] && !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// HasExistentials reports whether any disjunct has an existentially
// quantified variable.
func (r *Rule) HasExistentials() bool {
	for i := range r.Heads {
		if len(r.ExistVars(i)) > 0 {
			return true
		}
	}
	return false
}

// Validate checks safety: every variable occurring in a negative body
// literal must occur in a positive body literal (safe NTGDs, Section 2),
// and every head variable must either occur in the positive body or be
// existential (trivially true) — but a variable occurring only in a
// negative literal and in the head is rejected.
func (r *Rule) Validate() error {
	pb := r.PosBodyVars()
	var buf []string
	for _, l := range r.Body {
		if !l.Neg {
			continue
		}
		buf = l.Atom.Vars(buf[:0])
		for _, v := range buf {
			if !pb[v] {
				return fmt.Errorf("rule %s: unsafe variable %s occurs in a negative literal but in no positive body literal", r.name(), v)
			}
		}
	}
	nb := make(map[string]bool)
	for _, a := range r.NegBody() {
		buf = a.Vars(buf[:0])
		for _, v := range buf {
			nb[v] = true
		}
	}
	for i := range r.Heads {
		for _, a := range r.Heads[i] {
			buf = a.Vars(buf[:0])
			for _, v := range buf {
				if nb[v] && !pb[v] {
					return fmt.Errorf("rule %s: head variable %s occurs only in a negative body literal", r.name(), v)
				}
			}
		}
	}
	return nil
}

func (r *Rule) name() string {
	if r.Label != "" {
		return r.Label
	}
	return "<unnamed>"
}

// String renders the rule in the surface syntax, e.g.
// "p(X), not q(X) -> r(X,Y) | s(X)".
func (r *Rule) String() string {
	var b strings.Builder
	for i, l := range r.Body {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(l.String())
	}
	b.WriteString(" -> ")
	if len(r.Heads) == 0 {
		b.WriteString("#false")
		return b.String()
	}
	for i, disj := range r.Heads {
		if i > 0 {
			b.WriteString(" | ")
		}
		b.WriteString(AtomsString(disj))
	}
	return b.String()
}

// Preds returns the set of predicate names occurring in the rule.
func (r *Rule) Preds() map[string]int {
	out := make(map[string]int)
	for _, l := range r.Body {
		out[l.Atom.Pred] = l.Atom.Arity()
	}
	for _, disj := range r.Heads {
		for _, a := range disj {
			out[a.Pred] = a.Arity()
		}
	}
	return out
}

// Rename returns a copy of the rule with every variable prefixed, used
// to keep rule variables disjoint across instantiation contexts.
func (r *Rule) Rename(prefix string) *Rule {
	s := make(Subst)
	var collect func(a Atom)
	var buf []string
	collect = func(a Atom) {
		buf = a.Vars(buf[:0])
		for _, v := range buf {
			if _, ok := s[v]; !ok {
				s[v] = V(prefix + v)
			}
		}
	}
	for _, l := range r.Body {
		collect(l.Atom)
	}
	for _, d := range r.Heads {
		for _, a := range d {
			collect(a)
		}
	}
	out := &Rule{Label: r.Label}
	for _, l := range r.Body {
		out.Body = append(out.Body, s.ApplyLiteral(l))
	}
	for _, d := range r.Heads {
		out.Heads = append(out.Heads, s.ApplyAtoms(d))
	}
	return out
}
