package logic

import (
	"sort"
	"strings"
)

// Atom is an atomic formula p(t1,...,tn). A 0-ary atom has empty Args.
type Atom struct {
	Pred string
	Args []Term
}

// A is a convenience constructor for atoms.
func A(pred string, args ...Term) Atom { return Atom{Pred: pred, Args: args} }

// Arity returns the number of arguments.
func (a Atom) Arity() int { return len(a.Args) }

// IsGround reports whether the atom contains no variables.
func (a Atom) IsGround() bool {
	for _, t := range a.Args {
		if !t.IsGround() {
			return false
		}
	}
	return true
}

// HasNull reports whether any argument is or contains a labeled null.
func (a Atom) HasNull() bool {
	for _, t := range a.Args {
		if t.HasNull() {
			return true
		}
	}
	return false
}

// Equal reports syntactic identity of two atoms.
func (a Atom) Equal(b Atom) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if !a.Args[i].Equal(b.Args[i]) {
			return false
		}
	}
	return true
}

// Key returns a canonical string usable as a map key; distinct atoms
// have distinct keys.
func (a Atom) Key() string {
	var b strings.Builder
	b.WriteString(a.Pred)
	b.WriteByte('/')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		t.writeKey(&b)
	}
	return b.String()
}

// String renders the atom as p(t1,...,tn), or just p for 0-ary atoms.
func (a Atom) String() string {
	if len(a.Args) == 0 {
		return a.Pred
	}
	var b strings.Builder
	b.WriteString(a.Pred)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		t.write(&b)
	}
	b.WriteByte(')')
	return b.String()
}

// Vars appends the names of all variables occurring in the atom to dst.
func (a Atom) Vars(dst []string) []string {
	for _, t := range a.Args {
		dst = t.Vars(dst)
	}
	return dst
}

// VarSet returns the set of variable names occurring in the given atoms.
func VarSet(atoms ...Atom) map[string]bool {
	set := make(map[string]bool)
	var buf []string
	for _, a := range atoms {
		buf = a.Vars(buf[:0])
		for _, v := range buf {
			set[v] = true
		}
	}
	return set
}

// Literal is an atom or a negated atom. Negation is default negation
// ("negation as failure"), written "not p(t)" in the surface syntax and
// ¬p(t) in the paper.
type Literal struct {
	Neg  bool
	Atom Atom
}

// Pos returns the positive literal for a.
func Pos(a Atom) Literal { return Literal{Atom: a} }

// Neg returns the negative literal for a.
func Neg(a Atom) Literal { return Literal{Neg: true, Atom: a} }

// String renders the literal, prefixing negative literals with "not ".
func (l Literal) String() string {
	if l.Neg {
		return "not " + l.Atom.String()
	}
	return l.Atom.String()
}

// SplitLiterals partitions a literal list into positive and negative
// atoms, preserving order.
func SplitLiterals(lits []Literal) (pos, neg []Atom) {
	for _, l := range lits {
		if l.Neg {
			neg = append(neg, l.Atom)
		} else {
			pos = append(pos, l.Atom)
		}
	}
	return pos, neg
}

// AtomsString renders a list of atoms as a comma-separated conjunction.
func AtomsString(atoms []Atom) string {
	parts := make([]string, len(atoms))
	for i, a := range atoms {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}

// SortAtoms sorts atoms by canonical key, in place, and returns the
// slice for convenience.
func SortAtoms(atoms []Atom) []Atom {
	sort.Slice(atoms, func(i, j int) bool { return atoms[i].Key() < atoms[j].Key() })
	return atoms
}
