package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ntgd"
)

// postFull is post returning the whole *http.Response (closed) plus the
// decoded error body, for tests that assert on headers.
func postFull(t *testing.T, base, path string, req Request) (*http.Response, ErrorResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var errRes ErrorResponse
	_ = json.NewDecoder(resp.Body).Decode(&errRes)
	return resp, errRes
}

// requireRetryGuidance asserts the refusal contract every 429/503 must
// honor: a positive integer Retry-After header and a positive
// retry_after_ms in the body, consistent with each other (the header is
// the body rounded up to whole seconds).
func requireRetryGuidance(t *testing.T, resp *http.Response, errRes ErrorResponse) {
	t.Helper()
	h := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After header = %q, want an integer >= 1", h)
	}
	if errRes.RetryAfterMS <= 0 {
		t.Fatalf("retry_after_ms = %d, want > 0", errRes.RetryAfterMS)
	}
	if want := (errRes.RetryAfterMS + 999) / 1000; int64(secs) != want {
		t.Fatalf("Retry-After %ds does not round up retry_after_ms %dms", secs, errRes.RetryAfterMS)
	}
}

func getStatz(t *testing.T, base string) Statz {
	t.Helper()
	resp, err := http.Get(base + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stz Statz
	if err := json.NewDecoder(resp.Body).Decode(&stz); err != nil {
		t.Fatal(err)
	}
	return stz
}

// settleGoroutines waits for the goroutine count to return to baseline
// (httptest keeps connection goroutines alive briefly).
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d > baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerQueueFullShed pins immediate shedding: with the queue
// disabled and the only slot held, a request with a generous deadline
// is refused at once — not parked until the deadline — with full retry
// guidance, and the refusal shows up in /statz by reason.
func TestServerQueueFullShed(t *testing.T) {
	srv, hs := newTestServer(t, Config{MaxConcurrentRuns: 1, MaxQueuedRuns: -1})
	if err := srv.gate.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, errRes := postFull(t, hs.URL, "/v1/entails", Request{
		Program: subsetSrc, Query: "?- in(i0).", Mode: "brave", TimeoutMS: 10_000,
	})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("refusal took %v; a full queue must shed immediately, not park", elapsed)
	}
	if resp.StatusCode != http.StatusTooManyRequests || errRes.Class != ClassAdmission {
		t.Fatalf("got %d/%q, want 429/admission", resp.StatusCode, errRes.Class)
	}
	requireRetryGuidance(t, resp, errRes)
	stz := getStatz(t, hs.URL)
	if stz.Gate.ShedQueueFull != 1 {
		t.Fatalf("gate.shed_queue_full = %d, want 1", stz.Gate.ShedQueueFull)
	}
	if stz.Gate.QueueBound != 0 {
		t.Fatalf("gate.queue_bound = %d, want 0 (no queue)", stz.Gate.QueueBound)
	}

	srv.gate.Release()
	var ok EntailsResponse
	if code := post(t, hs.URL, "/v1/entails", Request{
		Program: subsetSrc, Query: "?- in(i0).", Mode: "brave",
	}, &ok); code != http.StatusOK || !ok.Entailed {
		t.Fatalf("post-release entails = (%d, %v), want (200, true)", code, ok.Entailed)
	}
}

// TestServerDeadlineHopelessShed seeds the gate's EWMA so the estimated
// wait provably exceeds a short request deadline: the request must be
// refused immediately with the estimate as its retry hint, counted
// under the deadline-hopeless reason.
func TestServerDeadlineHopelessShed(t *testing.T) {
	srv, hs := newTestServer(t, Config{MaxConcurrentRuns: 1, MaxQueuedRuns: 8})
	// One synthetic 30s run seeds the EWMA, then the slot is held so
	// the next request would have to queue behind it.
	if err := srv.gate.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv.gate.ReleaseTimed(30 * time.Second)
	if err := srv.gate.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer srv.gate.Release()

	resp, errRes := postFull(t, hs.URL, "/v1/entails", Request{
		Program: subsetSrc, Query: "?- in(i0).", Mode: "brave", TimeoutMS: 200,
	})
	if resp.StatusCode != http.StatusTooManyRequests || errRes.Class != ClassAdmission {
		t.Fatalf("got %d/%q, want 429/admission", resp.StatusCode, errRes.Class)
	}
	requireRetryGuidance(t, resp, errRes)
	if errRes.RetryAfterMS < 10_000 {
		t.Fatalf("retry_after_ms = %d, want the ~30s EWMA-based estimate", errRes.RetryAfterMS)
	}
	stz := getStatz(t, hs.URL)
	if stz.Gate.ShedDeadline != 1 {
		t.Fatalf("gate.shed_deadline_hopeless = %d, want 1", stz.Gate.ShedDeadline)
	}
	if stz.Gate.EWMARunTimeMS < 1000 {
		t.Fatalf("gate.ewma_run_time_ms = %v, want the seeded estimate surfaced", stz.Gate.EWMARunTimeMS)
	}
}

// TestServerRequestTooLarge pins satellite #2: a body past MaxBodyBytes
// answers 413 with its own class (not a generic 400), no retry
// guidance, and the class is counted in /statz.
func TestServerRequestTooLarge(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxBodyBytes: 256})
	resp, errRes := postFull(t, hs.URL, "/v1/solve", Request{
		Program: "p(" + strings.Repeat("a", 4096) + ").",
	})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	if errRes.Class != ClassRequestTooLarge {
		t.Fatalf("class = %q, want %q", errRes.Class, ClassRequestTooLarge)
	}
	if h := resp.Header.Get("Retry-After"); h != "" {
		t.Fatalf("413 carries Retry-After %q; a too-large body is deterministic and must not invite retries", h)
	}
	if !strings.Contains(errRes.Error, "256") {
		t.Fatalf("error %q does not name the limit", errRes.Error)
	}
	if stz := getStatz(t, hs.URL); stz.Errors[ClassRequestTooLarge] != 1 {
		t.Fatalf("errors[request_too_large] = %d, want 1", stz.Errors[ClassRequestTooLarge])
	}
}

// TestServerDrainRetryGuidance extends the drain contract: the
// 503/draining refusal now carries retry guidance too.
func TestServerDrainRetryGuidance(t *testing.T) {
	srv, hs := newTestServer(t, Config{})
	srv.StartDrain()
	resp, errRes := postFull(t, hs.URL, "/v1/solve", Request{Program: subsetSrc})
	if resp.StatusCode != http.StatusServiceUnavailable || errRes.Class != ClassDraining {
		t.Fatalf("got %d/%q, want 503/draining", resp.StatusCode, errRes.Class)
	}
	requireRetryGuidance(t, resp, errRes)
}

// TestServerOverloadSoak is the PR 10 acceptance soak: a 64-request
// burst against one slot and a 4-deep queue with short deadlines. The
// daemon must stay bounded (the sampled waiter count never exceeds the
// queue bound), refuse with full retry guidance, keep its shed counters
// consistent with the refusals clients saw, leak nothing, and be
// healthy afterward. Run it under -race to make the claim mean
// something.
func TestServerOverloadSoak(t *testing.T) {
	cfg := Config{
		MaxConcurrentRuns: 1,
		MaxQueuedRuns:     4,
		Options:           ntgd.Options{Workers: 1},
	}
	srv, hs := newTestServer(t, cfg)
	// Warm the compile so the burst measures admission, not compilation.
	var warm ConsistentResponse
	if code := post(t, hs.URL, "/v1/consistent", Request{Program: bigSubsetSrc(), TimeoutMS: 30_000}, &warm); code != http.StatusOK {
		t.Fatalf("warmup: %d", code)
	}
	baseline := runtime.NumGoroutine()

	// Sample the gate during the burst: waiters must never exceed the
	// bound.
	stopSampling := make(chan struct{})
	var sampleViolations atomic.Int64
	var samplerDone sync.WaitGroup
	samplerDone.Add(1)
	go func() {
		defer samplerDone.Done()
		for {
			select {
			case <-stopSampling:
				return
			default:
			}
			st := srv.gate.Snapshot()
			if st.QueueBound >= 0 && st.Waiters > st.QueueBound {
				sampleViolations.Add(1)
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	const burst = 64
	var (
		mu       sync.Mutex
		byStatus = map[int]int64{}
	)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, errRes := postFull(t, hs.URL, "/v1/entails", Request{
				Program: bigSubsetSrc(), Query: "?- item(i0).", Mode: "cautious", TimeoutMS: 250,
			})
			switch resp.StatusCode {
			case http.StatusTooManyRequests:
				if errRes.Class != ClassAdmission {
					t.Errorf("429 class = %q, want admission", errRes.Class)
				}
				requireRetryGuidance(t, resp, errRes)
			case http.StatusGatewayTimeout:
				// Admitted but the deadline expired mid-run: legal.
			default:
				t.Errorf("unexpected status %d (class %q)", resp.StatusCode, errRes.Class)
			}
			mu.Lock()
			byStatus[resp.StatusCode]++
			mu.Unlock()
		}()
	}
	wg.Wait()
	close(stopSampling)
	samplerDone.Wait()

	if sampleViolations.Load() > 0 {
		t.Fatalf("sampled waiters above the queue bound %d times", sampleViolations.Load())
	}
	refused := byStatus[http.StatusTooManyRequests]
	if refused == 0 {
		t.Fatal("a 64-burst against 1 slot and a 4-deep queue shed nothing")
	}
	st := srv.gate.Snapshot()
	if got := st.ShedQueueFull + st.ShedDeadline + st.ShedExpired; got != refused {
		t.Fatalf("gate shed counters sum to %d, but clients saw %d refusals", got, refused)
	}
	stz := getStatz(t, hs.URL)
	if stz.Errors[ClassAdmission] != refused {
		t.Fatalf("errors[admission] = %d, want %d", stz.Errors[ClassAdmission], refused)
	}
	if stz.InFlight != 0 {
		t.Fatalf("in_flight = %d after the burst, want 0", stz.InFlight)
	}

	// Healthy afterward: liveness and a real answer.
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after the burst: %d, want 200", resp.StatusCode)
	}
	var ok EntailsResponse
	if code := post(t, hs.URL, "/v1/entails", Request{
		Program: subsetSrc, Query: "?- in(i0).", Mode: "brave", TimeoutMS: 30_000,
	}, &ok); code != http.StatusOK || !ok.Entailed {
		t.Fatalf("post-burst entails = (%d, %v), want (200, true)", code, ok.Entailed)
	}
	settleGoroutines(t, baseline)
}

// TestServerBrownout drives the memory-pressure state machine through
// every transition with injected samples: soft evicts both caches and
// halves the queue bound, hard refuses new work with 503/overloaded
// plus retry guidance while /healthz stays alive, and recovery restores
// the configured bound and full service.
func TestServerBrownout(t *testing.T) {
	const soft, hard = 1 << 20, 4 << 20
	srv, hs := newTestServer(t, Config{
		MaxConcurrentRuns: 2,
		MaxQueuedRuns:     8,
		MemSoftBytes:      soft,
		MemHardBytes:      hard,
	})

	// Fill both caches.
	var db DBResponse
	if code := post(t, hs.URL, "/v1/db", Request{Facts: "p(a). p(b)."}, &db); code != http.StatusOK {
		t.Fatalf("db upload: %d", code)
	}
	var solve SolveResponse
	if code := post(t, hs.URL, "/v1/solve", Request{Program: subsetSrc}, &solve); code != http.StatusOK {
		t.Fatalf("solve: %d", code)
	}

	if lvl := srv.ObserveMemory(soft / 2); lvl != PressureNormal {
		t.Fatalf("below-watermark sample → %v, want normal", lvl)
	}
	if b := srv.gate.QueueBound(); b != 8 {
		t.Fatalf("queue bound = %d before pressure, want 8", b)
	}

	// Soft: caches purged, bound halved, service continues.
	if lvl := srv.ObserveMemory(soft + 1); lvl != PressureSoft {
		t.Fatalf("soft sample → %v, want soft", lvl)
	}
	stz := getStatz(t, hs.URL)
	if stz.Pressure != "soft" {
		t.Fatalf("statz pressure = %q, want soft", stz.Pressure)
	}
	if stz.Cache.Entries != 0 || stz.DBCache.Entries != 0 {
		t.Fatalf("caches hold %d/%d entries under soft pressure, want 0/0",
			stz.Cache.Entries, stz.DBCache.Entries)
	}
	if b := srv.gate.QueueBound(); b != 4 {
		t.Fatalf("queue bound = %d under soft pressure, want 4 (halved)", b)
	}
	if stz.Engine.Nodes == 0 {
		t.Fatal("purge lost the retired engine stats")
	}
	var ok SolveResponse
	if code := post(t, hs.URL, "/v1/solve", Request{Program: subsetSrc}, &ok); code != http.StatusOK {
		t.Fatalf("solve under soft pressure: %d, want 200 (brownout, not blackout)", code)
	}
	// The evicted db handle is gone — the documented re-upload contract.
	var errRes ErrorResponse
	if code := post(t, hs.URL, "/v1/solve", Request{Program: subsetSrc, DB: db.Handle}, &errRes); code != http.StatusNotFound {
		t.Fatalf("evicted handle: %d, want 404", code)
	}

	// Hard: new API work refused, liveness stays.
	if lvl := srv.ObserveMemory(hard + 1); lvl != PressureHard {
		t.Fatalf("hard sample → %v, want hard", lvl)
	}
	resp, errRes2 := postFull(t, hs.URL, "/v1/solve", Request{Program: subsetSrc})
	if resp.StatusCode != http.StatusServiceUnavailable || errRes2.Class != ClassOverloaded {
		t.Fatalf("got %d/%q under hard pressure, want 503/overloaded", resp.StatusCode, errRes2.Class)
	}
	requireRetryGuidance(t, resp, errRes2)
	hresp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz under hard pressure: %d, want 200 (alive, shedding)", hresp.StatusCode)
	}

	// Recovery: configured bound and full service restored.
	if lvl := srv.ObserveMemory(soft / 2); lvl != PressureNormal {
		t.Fatalf("recovery sample → %v, want normal", lvl)
	}
	if b := srv.gate.QueueBound(); b != 8 {
		t.Fatalf("queue bound = %d after recovery, want 8", b)
	}
	if code := post(t, hs.URL, "/v1/solve", Request{Program: subsetSrc}, &ok); code != http.StatusOK {
		t.Fatalf("solve after recovery: %d, want 200", code)
	}
	if stz := getStatz(t, hs.URL); stz.Pressure != "normal" {
		t.Fatalf("statz pressure = %q after recovery, want normal", stz.Pressure)
	}
}

// TestServerMemoryWatchdog drives the production sampling loop with an
// injected sampler: flipping the sampled value must move the daemon
// through soft pressure and back without any real heap growth.
func TestServerMemoryWatchdog(t *testing.T) {
	srv, _ := newTestServer(t, Config{
		MaxConcurrentRuns: 1,
		MaxQueuedRuns:     4,
		MemSoftBytes:      1000,
		MemHardBytes:      2000,
	})
	var live atomic.Uint64
	live.Store(100)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.MemoryWatchdog(ctx, time.Millisecond, live.Load)
	}()

	awaitPressure := func(want PressureLevel) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for srv.Pressure() != want {
			if time.Now().After(deadline) {
				t.Fatalf("pressure stuck at %v, want %v", srv.Pressure(), want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	live.Store(1500)
	awaitPressure(PressureSoft)
	live.Store(2500)
	awaitPressure(PressureHard)
	live.Store(100)
	awaitPressure(PressureNormal)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog did not stop with its context")
	}

	// No watermarks → the watchdog is a no-op that returns immediately.
	srv2 := New(Config{})
	nctx, ncancel := context.WithCancel(context.Background())
	ncancel()
	fin := make(chan struct{})
	go func() {
		srv2.MemoryWatchdog(nctx, time.Millisecond, func() uint64 { return 1 << 40 })
		close(fin)
	}()
	select {
	case <-fin:
	case <-time.After(time.Second):
		t.Fatal("watermark-free watchdog did not return")
	}
	if srv2.Pressure() != PressureNormal {
		t.Fatal("watermark-free server left normal pressure")
	}
}
