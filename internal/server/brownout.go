// Memory-pressure brownout: a small state machine that degrades the
// daemon gracefully instead of letting the Go heap grow until the
// kernel kills the process. A watchdog (MemoryWatchdog, or any caller
// of ObserveMemory — tests inject samples directly) feeds it live-heap
// samples; the machine compares them against the configured soft and
// hard watermarks and transitions between three levels:
//
//	normal  full service
//	soft    live >= MemSoftBytes: evict the compiled-program and
//	        fact-base caches (the daemon's two unbounded-size heap
//	        consumers — entry counts are capped but entry sizes are
//	        not) and halve the admission queue bound, so fewer parked
//	        requests hold request state while memory is tight; service
//	        continues
//	hard    live >= MemHardBytes: additionally refuse all new API work
//	        with 503/"overloaded" + Retry-After, letting in-flight runs
//	        finish and the next GC cycle reclaim
//
// Transitions are edge-triggered for the queue bound (recovery restores
// the configured bound) but the cache purge re-runs on every sample
// while at or above soft, since caches refill between samples.
package server

import (
	"context"
	"time"
)

// PressureLevel is the daemon's memory-pressure brownout level.
type PressureLevel int32

const (
	PressureNormal PressureLevel = iota
	PressureSoft
	PressureHard
)

func (p PressureLevel) String() string {
	switch p {
	case PressureSoft:
		return "soft"
	case PressureHard:
		return "hard"
	default:
		return "normal"
	}
}

// Pressure reports the current brownout level.
func (s *Server) Pressure() PressureLevel {
	return PressureLevel(s.pressure.Load())
}

// ObserveMemory feeds one live-heap sample (bytes) to the brownout
// state machine and returns the resulting level. It is the seam tests
// drive directly; production daemons run MemoryWatchdog instead. With
// both watermarks unset it is a no-op at PressureNormal.
func (s *Server) ObserveMemory(live uint64) PressureLevel {
	soft, hard := s.cfg.MemSoftBytes, s.cfg.MemHardBytes
	if soft == 0 && hard == 0 {
		return PressureNormal
	}
	level := PressureNormal
	switch {
	case hard > 0 && live >= hard:
		level = PressureHard
	case soft > 0 && live >= soft:
		level = PressureSoft
	}

	s.pressureMu.Lock()
	defer s.pressureMu.Unlock()
	prev := PressureLevel(s.pressure.Load())
	if level >= PressureSoft {
		// Re-purge on every pressured sample: the caches refill as
		// traffic keeps arriving between watchdog ticks.
		s.cache.purge()
		s.dbs.purge()
	}
	if level == prev {
		return level
	}
	s.pressure.Store(int32(level))
	if level == PressureNormal {
		// Recovery: restore the configured admission queue bound.
		s.gate.SetQueueBound(queueBound(s.cfg.MaxQueuedRuns))
		return level
	}
	if prev == PressureNormal {
		// Entering pressure: halve the queue bound so fewer parked
		// requests hold buffers while memory is tight. An unbounded
		// configured queue stays unbounded — shrinking it would invent
		// a shed policy the operator never asked for; the purge and
		// (at hard) the refusal still apply.
		if b := queueBound(s.cfg.MaxQueuedRuns); b > 0 {
			s.gate.SetQueueBound(b / 2)
		}
	}
	return level
}

// MemoryWatchdog samples live-heap bytes via sample every interval and
// drives the brownout state machine until ctx is done. It returns
// immediately when no watermark is configured. cmd/ntgdd runs it with a
// runtime/metrics-backed sampler; tests substitute their own.
func (s *Server) MemoryWatchdog(ctx context.Context, interval time.Duration, sample func() uint64) {
	if s.cfg.MemSoftBytes == 0 && s.cfg.MemHardBytes == 0 {
		return
	}
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.ObserveMemory(sample())
		}
	}
}
