// Wire types and the error-taxonomy → HTTP status mapping of the ntgdd
// daemon. The mapping mirrors the ntgdctl exit-code contract (see
// cmd/ntgdctl) so scripts and services dispatch the same classes over
// both transports:
//
//	200 OK                    success (entire request completed)
//	400 Bad Request           parse/validation/usage errors
//	404 Not Found             unknown db handle: the referenced fact
//	                          base was never uploaded to /v1/db or has
//	                          been evicted from the LRU-bounded db
//	                          cache — re-upload and retry
//	413 Content Too Large     the request body exceeded the server's
//	                          MaxBodyBytes cap (class
//	                          "request_too_large"); unlike 400 this is
//	                          a distinct class so clients can split or
//	                          shrink the payload instead of treating it
//	                          as a syntax error — it is never retried
//	                          as-is
//	422 Unprocessable Entity  search budget exhausted (nodes, atoms,
//	                          or the wall-clock budget — ntgdctl 3)
//	429 Too Many Requests     admission refused: the queue was at its
//	                          bound (shed immediately), the deadline
//	                          was provably hopeless (shed immediately),
//	                          or the run stayed queued until its
//	                          context ended (ErrAdmission)
//	500 Internal Server Error recovered engine panic or handler fault
//	                          (ErrInternal — ntgdctl 6)
//	503 Service Unavailable   the daemon is draining (SIGTERM received,
//	                          class "draining") or refusing new work
//	                          under hard memory pressure (class
//	                          "overloaded")
//	504 Gateway Timeout       the per-request deadline expired or the
//	                          client disconnected (ntgdctl 4)
//	507 Insufficient Storage  memory watermark exceeded (ErrMemory —
//	                          ntgdctl 5)
//
// Every taxonomy-mapped error body still carries the partial Stats the
// run accumulated before it stopped.
//
// Retry guidance: every 429 and 503 carries a Retry-After header
// (integer seconds, rounded up, at least 1) and a retry_after_ms field
// in the error body — the machine-readable backoff hint clients (the
// ntgdclient package) honor before retrying. 429, 503, and 504 are the
// retryable statuses; 400, 404, 413, 422, 500, and 507 are
// deterministic for a given request (responses are a pure function of
// the canonical program) and must not be retried unchanged.
package server

import (
	"context"
	"errors"
	"net/http"

	"ntgd"
)

// Request is the JSON body shared by the POST endpoints. Endpoints
// ignore the fields they do not use; see each handler for the subset it
// reads.
type Request struct {
	// Program is the program source in the surface syntax. Required by
	// every POST endpoint. Programs are cached by canonical form: two
	// submissions that differ only in whitespace, comments, fact order,
	// rule order, or duplicated facts/rules share one compiled entry
	// (and therefore return identical answers — the daemon always
	// evaluates the canonical form).
	Program string `json:"program"`
	// Semantics selects the semantics: "so" (default), "lp", or "op".
	Semantics string `json:"semantics,omitempty"`
	// DB references a fact base previously uploaded via POST /v1/db by
	// its content-addressed handle. The uploaded facts become the
	// compiled program's root database (with Program's own facts, if
	// any, layered on top), so a large extensional database crosses the
	// wire and is loaded once, however many requests query it. An
	// unknown or evicted handle answers 404/not_found.
	DB string `json:"db,omitempty"`
	// Facts is the fact source for POST /v1/db: facts only, no rules
	// or queries. Other endpoints ignore it.
	Facts string `json:"facts,omitempty"`
	// Query is the query in surface syntax ("?- p(X), not q(X)."),
	// required by /v1/entails and /v1/answers.
	Query string `json:"query,omitempty"`
	// Mode is "cautious" (default) or "brave".
	Mode string `json:"mode,omitempty"`
	// MaxModels bounds the models returned by /v1/solve (0 = all,
	// subject to the server's cap).
	MaxModels int `json:"max_models,omitempty"`
	// TimeoutMS is the per-request deadline in milliseconds. 0 uses the
	// server default; values above the server maximum are clamped.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Queries is the batch payload of /v1/batch: each item runs against
	// the same compiled program, amortizing the compile and the
	// per-extras budget cache across the whole batch.
	Queries []BatchItem `json:"queries,omitempty"`
}

// BatchItem is one query of a /v1/batch request.
type BatchItem struct {
	// Query is the query in surface syntax.
	Query string `json:"query"`
	// Mode is "cautious" (default) or "brave".
	Mode string `json:"mode,omitempty"`
}

// Stats is the wire form of ntgd.Stats.
type Stats struct {
	Nodes           int64 `json:"nodes"`
	Branches        int64 `json:"branches"`
	Deterministic   int64 `json:"deterministic"`
	Completed       int64 `json:"completed"`
	StabilityChecks int64 `json:"stability_checks"`
	StabilityFailed int64 `json:"stability_failed"`
	ModelsEmitted   int64 `json:"models_emitted"`
	Conflicts       int64 `json:"conflicts"`
}

func statsJSON(st ntgd.Stats) Stats {
	return Stats{
		Nodes:           st.Nodes,
		Branches:        st.Branches,
		Deterministic:   st.Deterministic,
		Completed:       st.Completed,
		StabilityChecks: st.StabilityChecks,
		StabilityFailed: st.StabilityFailed,
		ModelsEmitted:   st.ModelsEmitted,
		Conflicts:       st.Conflicts,
	}
}

// SolveResponse is the /v1/solve success body.
type SolveResponse struct {
	// Models are the stable models, each rendered canonically.
	Models []string `json:"models"`
	Count  int      `json:"count"`
	// Exhausted reports a possibly incomplete enumeration (the
	// MaxModels cap stopped it early).
	Exhausted bool  `json:"exhausted"`
	Stats     Stats `json:"stats"`
}

// EntailsResponse is the /v1/entails success body.
type EntailsResponse struct {
	Entailed bool `json:"entailed"`
	// Witness is a witnessing model (brave, entailed) or counter-model
	// (cautious, not entailed), canonically rendered; empty otherwise.
	Witness string `json:"witness,omitempty"`
	// NoModels reports an empty stable model set (cautious entailment
	// is then vacuous, brave entailment false).
	NoModels  bool  `json:"no_models"`
	Exhausted bool  `json:"exhausted"`
	Stats     Stats `json:"stats"`
}

// AnswersResponse is the /v1/answers success body.
type AnswersResponse struct {
	// Tuples are the answer tuples, each a list of constant renderings.
	Tuples [][]string `json:"tuples"`
	// Complete is false when the answer set is ill-defined or the
	// enumeration was incomplete.
	Complete bool  `json:"complete"`
	Stats    Stats `json:"stats"`
}

// ConsistentResponse is the /v1/consistent success body.
type ConsistentResponse struct {
	Consistent bool `json:"consistent"`
}

// DBResponse is the /v1/db success body. Handle is the
// content-addressed name of the canonicalized fact set (sorted,
// deduplicated): uploading the same facts again — in any order, with
// any formatting — yields the same handle.
type DBResponse struct {
	Handle string `json:"handle"`
	// Facts is the number of distinct facts loaded.
	Facts int `json:"facts"`
}

// BatchResponse is the /v1/batch success body. The batch succeeds as a
// whole (200) even when individual items hit taxonomy errors; each
// item records its own outcome.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
	// Stats aggregates the engine effort of every item.
	Stats Stats `json:"stats"`
}

// BatchResult is the outcome of one batch item: exactly one of the
// Error or the payload fields is meaningful, discriminated by Error
// being empty.
type BatchResult struct {
	// Error is empty on success; otherwise the error message.
	Error string `json:"error,omitempty"`
	// Class names the taxonomy class of Error ("budget", "timeout",
	// "memory", "admission", "internal", "bad_request", "error").
	Class string `json:"class,omitempty"`
	// Entailed/Witness/NoModels answer a Boolean query.
	Entailed bool   `json:"entailed,omitempty"`
	Witness  string `json:"witness,omitempty"`
	NoModels bool   `json:"no_models,omitempty"`
	// Tuples/Complete answer an n-ary query.
	Tuples   [][]string `json:"tuples,omitempty"`
	Complete bool       `json:"complete,omitempty"`
	Stats    Stats      `json:"stats"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	// Class is the taxonomy class: "bad_request", "not_found",
	// "request_too_large", "budget", "timeout", "memory", "admission",
	// "internal", "draining", "overloaded", or "error".
	Class string `json:"class"`
	// Stats is the partial effort the run accumulated before stopping
	// (zero for errors raised before the engine ran).
	Stats Stats `json:"stats"`
	// Exhausted mirrors the Solver's flag: the run stopped before the
	// enumeration was provably complete.
	Exhausted bool `json:"exhausted"`
	// RetryAfterMS is the server's backoff hint in milliseconds,
	// present exactly on the retryable refusals (429 and 503) and
	// mirrored — rounded up to whole seconds — by the Retry-After
	// header. Zero on every other error.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// Taxonomy class names used in Class fields.
const (
	ClassBadRequest      = "bad_request"
	ClassNotFound        = "not_found"
	ClassRequestTooLarge = "request_too_large"
	ClassBudget          = "budget"
	ClassTimeout         = "timeout"
	ClassMemory          = "memory"
	ClassAdmission       = "admission"
	ClassInternal        = "internal"
	ClassDraining        = "draining"
	ClassOverloaded      = "overloaded"
	ClassError           = "error"
)

// GateStatz is the /statz view of the daemon-wide admission gate: the
// live queue (in-flight runs, parked waiters, the effective queue
// bound — which the memory-pressure brownout halves under load), the
// EWMA of recent run times feeding the deadline-hopeless estimate, and
// the monotonic admission/shed counters split by reason.
type GateStatz struct {
	Slots         int     `json:"slots"`
	InFlight      int     `json:"in_flight"`
	Waiters       int     `json:"waiters"`
	QueueBound    int     `json:"queue_bound"`
	EWMARunTimeMS float64 `json:"ewma_run_time_ms"`
	Admitted      int64   `json:"admitted"`
	ShedQueueFull int64   `json:"shed_queue_full"`
	ShedDeadline  int64   `json:"shed_deadline_hopeless"`
	ShedExpired   int64   `json:"shed_queued_expired"`
}

func gateStatsJSON(st ntgd.GateStats) GateStatz {
	return GateStatz{
		Slots:         st.Slots,
		InFlight:      st.InFlight,
		Waiters:       st.Waiters,
		QueueBound:    st.QueueBound,
		EWMARunTimeMS: float64(st.EWMARunTime) / 1e6,
		Admitted:      st.Admitted,
		ShedQueueFull: st.ShedQueueFull,
		ShedDeadline:  st.ShedDeadline,
		ShedExpired:   st.ShedExpired,
	}
}

// statusFor maps a terminal run error onto its HTTP status and taxonomy
// class. The order is load-bearing: ErrInternal wins over everything
// (error priority internal > context > memory > budget, PR 7), and
// ErrAdmission precedes the context classes because an admission
// refusal wraps the context cause that ended the wait.
func statusFor(err error) (int, string) {
	switch {
	case errors.Is(err, ntgd.ErrInternal):
		return http.StatusInternalServerError, ClassInternal
	case errors.Is(err, ntgd.ErrAdmission):
		return http.StatusTooManyRequests, ClassAdmission
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout, ClassTimeout
	case errors.Is(err, ntgd.ErrMemory):
		return http.StatusInsufficientStorage, ClassMemory
	case errors.Is(err, ntgd.ErrBudget):
		// ErrWallClock matches here too: it is a budget in the
		// taxonomy, exactly as in ntgdctl's exit-code dispatch.
		return http.StatusUnprocessableEntity, ClassBudget
	default:
		return http.StatusInternalServerError, ClassError
	}
}
