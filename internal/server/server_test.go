package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"ntgd"
)

const subsetSrc = `item(i0). item(i1). item(i2). item(i3).
item(X), not out(X) -> in(X).
item(X), not in(X) -> out(X).
`

// bigSubsetSrc spans 2^24 models: no request-scale deadline can see the
// end of a cautious enumeration over it, making timeout behaviour
// deterministic to test.
func bigSubsetSrc() string {
	var b bytes.Buffer
	for i := 0; i < 24; i++ {
		fmt.Fprintf(&b, "item(i%d).\n", i)
	}
	b.WriteString("item(X), not out(X) -> in(X).\nitem(X), not in(X) -> out(X).\n")
	return b.String()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

// post sends one request and decodes the response body into out.
func post(t *testing.T, base, path string, req Request, out any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("POST %s: decoding body: %v", path, err)
	}
	return resp.StatusCode
}

// directModels enumerates the canonical program's models outside the
// daemon, as the ground truth the HTTP responses must match.
func directModels(t *testing.T, src string) []string {
	t.Helper()
	prog, _, err := Canonicalize(src)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ntgd.Compile(prog, ntgd.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for m, err := range s.Models(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, m.CanonicalString())
	}
	sort.Strings(out)
	return out
}

// TestServerEndToEnd pins the core acceptance: concurrent clients
// running a mix of solve, entails, answers, consistent, and batch
// against one cached program all get exactly the answers a direct
// Solver gives.
func TestServerEndToEnd(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxConcurrentRuns: 8})
	want := directModels(t, subsetSrc)

	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				switch (c + i) % 5 {
				case 0:
					var res SolveResponse
					if code := post(t, hs.URL, "/v1/solve", Request{Program: subsetSrc}, &res); code != http.StatusOK {
						t.Errorf("solve: status %d", code)
						return
					}
					got := append([]string(nil), res.Models...)
					sort.Strings(got)
					if len(got) != len(want) {
						t.Errorf("solve: %d models, want %d", len(got), len(want))
						return
					}
					for j := range got {
						if got[j] != want[j] {
							t.Errorf("solve: model %d = %q, want %q", j, got[j], want[j])
							return
						}
					}
				case 1:
					var res EntailsResponse
					if code := post(t, hs.URL, "/v1/entails", Request{
						Program: subsetSrc, Query: "?- in(i0).", Mode: "brave",
					}, &res); code != http.StatusOK || !res.Entailed {
						t.Errorf("brave entails = (%d, %v), want (200, true)", code, res.Entailed)
					}
				case 2:
					var res EntailsResponse
					if code := post(t, hs.URL, "/v1/entails", Request{
						Program: subsetSrc, Query: "?- in(i0).", Mode: "cautious",
					}, &res); code != http.StatusOK || res.Entailed {
						t.Errorf("cautious entails = (%d, %v), want (200, false)", code, res.Entailed)
					}
				case 3:
					var res AnswersResponse
					if code := post(t, hs.URL, "/v1/answers", Request{
						Program: subsetSrc, Query: "?-[X] in(X).", Mode: "brave",
					}, &res); code != http.StatusOK || !res.Complete || len(res.Tuples) != 4 {
						t.Errorf("answers = (%d, complete=%v, %d tuples), want (200, true, 4)",
							code, res.Complete, len(res.Tuples))
					}
				case 4:
					var res BatchResponse
					code := post(t, hs.URL, "/v1/batch", Request{
						Program: subsetSrc,
						Queries: []BatchItem{
							{Query: "?- in(i0).", Mode: "brave"},
							{Query: "?- in(i0), out(i0).", Mode: "brave"},
							{Query: "?-[X] item(X).", Mode: "cautious"},
						},
					}, &res)
					if code != http.StatusOK || len(res.Results) != 3 {
						t.Errorf("batch: status %d, %d results", code, len(res.Results))
						return
					}
					if !res.Results[0].Entailed || res.Results[0].Error != "" {
						t.Errorf("batch[0] = %+v, want entailed", res.Results[0])
					}
					if res.Results[1].Entailed {
						t.Errorf("batch[1]: in&out of one item cannot be bravely entailed")
					}
					if len(res.Results[2].Tuples) != 4 || !res.Results[2].Complete {
						t.Errorf("batch[2] = %+v, want 4 complete tuples", res.Results[2])
					}
				}
			}
		}(c)
	}
	wg.Wait()

	// All that traffic shared one compiled entry.
	var stz Statz
	resp, err := http.Get(hs.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&stz); err != nil {
		t.Fatal(err)
	}
	if stz.Cache.Compiles != 1 {
		t.Errorf("compiles = %d, want 1 (all clients share one canonical program)", stz.Cache.Compiles)
	}
	if stz.Cache.Hits == 0 {
		t.Error("cache hits = 0, want many")
	}
}

// TestServerConsistent covers /v1/consistent for both verdicts.
func TestServerConsistent(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	var res ConsistentResponse
	if code := post(t, hs.URL, "/v1/consistent", Request{Program: subsetSrc}, &res); code != http.StatusOK || !res.Consistent {
		t.Fatalf("consistent = (%d, %v), want (200, true)", code, res.Consistent)
	}
	if code := post(t, hs.URL, "/v1/consistent", Request{
		Program: "p(a).\np(X) -> q(X).\n:- q(a).\n",
	}, &res); code != http.StatusOK || res.Consistent {
		t.Fatalf("inconsistent program = (%d, %v), want (200, false)", code, res.Consistent)
	}
}

// TestServerDeadline pins the timeout contract: a request whose
// deadline expires mid-search answers 504 with class "timeout" and the
// partial stats the run accumulated.
func TestServerDeadline(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	var res ErrorResponse
	code := post(t, hs.URL, "/v1/entails", Request{
		Program:   bigSubsetSrc(),
		Query:     "?- item(i0).",
		Mode:      "cautious",
		TimeoutMS: 150,
	}, &res)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", code)
	}
	if res.Class != ClassTimeout {
		t.Fatalf("class = %q, want %q", res.Class, ClassTimeout)
	}
	if res.Stats.Nodes == 0 {
		t.Error("timeout response carries no partial stats")
	}
	if !res.Exhausted {
		t.Error("timed-out run must report exhausted")
	}
}

// TestServerTimeoutClamp pins MaxTimeout: a request asking for a huge
// (or absent) deadline is clamped to the server maximum.
func TestServerTimeoutClamp(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxTimeout: 150 * time.Millisecond})
	var res ErrorResponse
	start := time.Now()
	code := post(t, hs.URL, "/v1/entails", Request{
		Program: bigSubsetSrc(),
		Query:   "?- item(i0).",
		Mode:    "cautious",
		// No timeout_ms: the clamp must still apply.
	}, &res)
	if code != http.StatusGatewayTimeout || res.Class != ClassTimeout {
		t.Fatalf("status/class = %d/%q, want 504/timeout", code, res.Class)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("request ran %v; the 150ms clamp did not apply", elapsed)
	}
}

// TestServerAdmission holds the daemon's only admission slot directly
// and asserts a queued request whose deadline expires first is refused
// with 429/admission — and that the identical request succeeds once the
// slot frees.
func TestServerAdmission(t *testing.T) {
	srv, hs := newTestServer(t, Config{MaxConcurrentRuns: 1})
	if err := srv.gate.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	req := Request{Program: subsetSrc, Query: "?- in(i0).", Mode: "brave", TimeoutMS: 100}
	var errRes ErrorResponse
	if code := post(t, hs.URL, "/v1/entails", req, &errRes); code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", code)
	}
	if errRes.Class != ClassAdmission {
		t.Fatalf("class = %q, want %q", errRes.Class, ClassAdmission)
	}
	srv.gate.Release()
	var ok EntailsResponse
	if code := post(t, hs.URL, "/v1/entails", req, &ok); code != http.StatusOK || !ok.Entailed {
		t.Fatalf("post-release entails = (%d, %v), want (200, true)", code, ok.Entailed)
	}
}

// TestServerBatchDeadline pins the batch tail contract: once the batch
// deadline expires, remaining items are marked timed out rather than
// silently dropped, and the batch itself still answers 200.
func TestServerBatchDeadline(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	items := []BatchItem{
		{Query: "?- item(i0).", Mode: "cautious"}, // will hit the deadline
		{Query: "?- item(i0).", Mode: "brave"},    // never runs
		{Query: "?- item(i1).", Mode: "brave"},    // never runs
	}
	var res BatchResponse
	code := post(t, hs.URL, "/v1/batch", Request{
		Program: bigSubsetSrc(), Queries: items, TimeoutMS: 150,
	}, &res)
	if code != http.StatusOK {
		t.Fatalf("status = %d, want 200 (item errors do not fail the batch)", code)
	}
	if len(res.Results) != 3 {
		t.Fatalf("%d results, want 3", len(res.Results))
	}
	if res.Results[0].Class != ClassTimeout {
		t.Errorf("results[0].class = %q, want timeout", res.Results[0].Class)
	}
	for i := 1; i < 3; i++ {
		if res.Results[i].Class != ClassTimeout || res.Results[i].Error == "" {
			t.Errorf("results[%d] = %+v, want marked timed out", i, res.Results[i])
		}
	}
}

// TestServerBadRequests pins the 400 surface: malformed bodies, missing
// programs, parse failures, unknown semantics/modes, n-ary queries on
// /v1/entails-style endpoints.
func TestServerBadRequests(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	cases := []struct {
		name string
		path string
		req  Request
	}{
		{"missing program", "/v1/solve", Request{}},
		{"program parse error", "/v1/solve", Request{Program: "p(."}},
		{"unknown semantics", "/v1/solve", Request{Program: subsetSrc, Semantics: "zf"}},
		{"missing query", "/v1/entails", Request{Program: subsetSrc}},
		{"query parse error", "/v1/entails", Request{Program: subsetSrc, Query: "?- in("}},
		{"unknown mode", "/v1/entails", Request{Program: subsetSrc, Query: "?- in(i0).", Mode: "bold"}},
		{"boolean query on answers", "/v1/answers", Request{Program: subsetSrc, Query: "?- in(i0)."}},
		{"empty batch", "/v1/batch", Request{Program: subsetSrc}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var res ErrorResponse
			if code := post(t, hs.URL, tc.path, tc.req, &res); code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", code)
			}
			if res.Class != ClassBadRequest {
				t.Fatalf("class = %q, want bad_request", res.Class)
			}
		})
	}

	// Non-POST and malformed JSON travel the same surface.
	resp, err := http.Get(hs.URL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/solve: status %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(hs.URL+"/v1/solve", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
}

// TestStatusFor is the table pinning every errors.Is class of the
// taxonomy onto its documented HTTP status — satellite #3. The
// composite cases mirror how the engine actually wraps causes
// (admission carries the context cause; wall-clock is a budget).
func TestStatusFor(t *testing.T) {
	cases := []struct {
		name   string
		err    error
		status int
		class  string
	}{
		{"budget", ntgd.ErrBudget, http.StatusUnprocessableEntity, ClassBudget},
		{"wall-clock is a budget", ntgd.ErrWallClock, http.StatusUnprocessableEntity, ClassBudget},
		{"wrapped budget", fmt.Errorf("run: %w", ntgd.ErrBudget), http.StatusUnprocessableEntity, ClassBudget},
		{"memory", ntgd.ErrMemory, http.StatusInsufficientStorage, ClassMemory},
		{"deadline", context.DeadlineExceeded, http.StatusGatewayTimeout, ClassTimeout},
		{"cancel", context.Canceled, http.StatusGatewayTimeout, ClassTimeout},
		{"admission", ntgd.ErrAdmission, http.StatusTooManyRequests, ClassAdmission},
		{
			// The real shape: the gate refusal wraps the context cause,
			// and admission must win over the timeout class.
			"admission carrying context cause",
			fmt.Errorf("%w: %w", ntgd.ErrAdmission, context.DeadlineExceeded),
			http.StatusTooManyRequests, ClassAdmission,
		},
		{"internal", ntgd.ErrInternal, http.StatusInternalServerError, ClassInternal},
		{
			// Error priority internal > context (PR 7).
			"internal wins over cancel",
			fmt.Errorf("%w after %w", ntgd.ErrInternal, context.Canceled),
			http.StatusInternalServerError, ClassInternal,
		},
		{"unclassified", errors.New("boom"), http.StatusInternalServerError, ClassError},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, class := statusFor(tc.err)
			if status != tc.status || class != tc.class {
				t.Fatalf("statusFor(%v) = (%d, %q), want (%d, %q)",
					tc.err, status, class, tc.status, tc.class)
			}
		})
	}
}

// TestServerDrain pins the drain contract: after StartDrain, /healthz
// flips to 503, new API requests are refused with 503/draining, and
// the state is visible in /statz.
func TestServerDrain(t *testing.T) {
	srv, hs := newTestServer(t, Config{})
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %d, want 200", resp.StatusCode)
	}

	srv.StartDrain()
	if !srv.Draining() {
		t.Fatal("Draining() = false after StartDrain")
	}
	resp, err = http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %d, want 503", resp.StatusCode)
	}
	var errRes ErrorResponse
	if code := post(t, hs.URL, "/v1/solve", Request{Program: subsetSrc}, &errRes); code != http.StatusServiceUnavailable {
		t.Fatalf("solve during drain: %d, want 503", code)
	}
	if errRes.Class != ClassDraining {
		t.Fatalf("class = %q, want draining", errRes.Class)
	}
}

// TestServerStatz sanity-checks the counters a fresh server reports
// after a little traffic.
func TestServerStatz(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	var solve SolveResponse
	if code := post(t, hs.URL, "/v1/solve", Request{Program: subsetSrc}, &solve); code != http.StatusOK {
		t.Fatalf("solve: %d", code)
	}
	var errRes ErrorResponse
	if code := post(t, hs.URL, "/v1/solve", Request{}, &errRes); code != http.StatusBadRequest {
		t.Fatalf("bad solve: %d", code)
	}

	resp, err := http.Get(hs.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stz Statz
	if err := json.NewDecoder(resp.Body).Decode(&stz); err != nil {
		t.Fatal(err)
	}
	if stz.Requests["solve"] != 2 {
		t.Errorf("requests[solve] = %d, want 2", stz.Requests["solve"])
	}
	if stz.Errors[ClassBadRequest] != 1 {
		t.Errorf("errors[bad_request] = %d, want 1", stz.Errors[ClassBadRequest])
	}
	if stz.Engine.Nodes == 0 {
		t.Error("engine.nodes = 0 after a full solve")
	}
	if stz.Cache.Entries != 1 {
		t.Errorf("cache.entries = %d, want 1", stz.Cache.Entries)
	}
}
