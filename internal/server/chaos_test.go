//go:build failpoint

package server

import (
	"context"
	"net/http"
	"runtime"
	"testing"
	"time"

	"ntgd/internal/failpoint"
)

// awaitGoroutines waits for the goroutine count to settle back to the
// baseline (httptest keeps a few connection goroutines alive briefly,
// so a small slack and a deadline are both needed).
func awaitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d > baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosServerHandler pins satellite #2: a request that panics in
// the handler layer (the server/handler failpoint) answers
// 500/internal, leaks no goroutines, and the daemon keeps serving —
// the next identical request succeeds.
func TestChaosServerHandler(t *testing.T) {
	defer failpoint.Reset()
	_, hs := newTestServer(t, Config{})
	req := Request{Program: subsetSrc}

	// Warm the path (and the program cache) before measuring.
	var warm SolveResponse
	if code := post(t, hs.URL, "/v1/solve", req, &warm); code != http.StatusOK {
		t.Fatalf("warmup solve: %d", code)
	}
	baseline := runtime.NumGoroutine()

	failpoint.Arm(failpoint.ServerHandler, 1)
	var errRes ErrorResponse
	if code := post(t, hs.URL, "/v1/solve", req, &errRes); code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", code)
	}
	if errRes.Class != ClassInternal {
		t.Fatalf("class = %q, want internal", errRes.Class)
	}
	if failpoint.Fired(failpoint.ServerHandler) != 1 {
		t.Fatal("server/handler failpoint did not fire")
	}
	failpoint.Disarm(failpoint.ServerHandler)

	// The daemon survived: same request, full answer.
	var ok SolveResponse
	if code := post(t, hs.URL, "/v1/solve", req, &ok); code != http.StatusOK || ok.Count != warm.Count {
		t.Fatalf("post-fault solve = (%d, %d models), want (200, %d)", code, ok.Count, warm.Count)
	}
	awaitGoroutines(t, baseline)
}

// TestChaosServerShed pins the PR 10 shed-path boundary: a fault while
// writing a refusal — the moment the daemon is already overloaded —
// still answers a typed 500/internal, leaks nothing, and the daemon
// recovers to shedding correctly (with retry guidance) and then to
// full service.
func TestChaosServerShed(t *testing.T) {
	defer failpoint.Reset()
	srv, hs := newTestServer(t, Config{MaxConcurrentRuns: 1, MaxQueuedRuns: -1})
	req := Request{Program: subsetSrc, Query: "?- in(i0).", Mode: "brave", TimeoutMS: 10_000}

	var warm EntailsResponse
	if code := post(t, hs.URL, "/v1/entails", req, &warm); code != http.StatusOK {
		t.Fatalf("warmup entails: %d", code)
	}
	baseline := runtime.NumGoroutine()

	// Hold the only slot so every request takes the shed path.
	if err := srv.gate.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	failpoint.Arm(failpoint.ServerShed, 1)
	resp, errRes := postFull(t, hs.URL, "/v1/entails", req)
	if resp.StatusCode != http.StatusInternalServerError || errRes.Class != ClassInternal {
		t.Fatalf("faulted shed = %d/%q, want 500/internal", resp.StatusCode, errRes.Class)
	}
	if failpoint.Fired(failpoint.ServerShed) != 1 {
		t.Fatal("server/shed failpoint did not fire")
	}
	failpoint.Disarm(failpoint.ServerShed)

	// Disarmed but still overloaded: the shed path works again, with
	// the full retry-guidance contract.
	resp, errRes = postFull(t, hs.URL, "/v1/entails", req)
	if resp.StatusCode != http.StatusTooManyRequests || errRes.Class != ClassAdmission {
		t.Fatalf("post-fault shed = %d/%q, want 429/admission", resp.StatusCode, errRes.Class)
	}
	requireRetryGuidance(t, resp, errRes)

	srv.gate.Release()
	var ok EntailsResponse
	if code := post(t, hs.URL, "/v1/entails", req, &ok); code != http.StatusOK || !ok.Entailed {
		t.Fatalf("post-release entails = (%d, %v), want (200, true)", code, ok.Entailed)
	}
	awaitGoroutines(t, baseline)
}

// TestChaosEngineFaultOverHTTP drives an engine-level failpoint
// (core/sink, firing inside the model sink) through the HTTP surface:
// the Solver's own guard types the panic, the handler maps it to
// 500/internal with the partial stats, and the daemon keeps serving.
func TestChaosEngineFaultOverHTTP(t *testing.T) {
	defer failpoint.Reset()
	_, hs := newTestServer(t, Config{})
	req := Request{Program: subsetSrc}
	var warm SolveResponse
	if code := post(t, hs.URL, "/v1/solve", req, &warm); code != http.StatusOK {
		t.Fatalf("warmup solve: %d", code)
	}
	baseline := runtime.NumGoroutine()

	failpoint.Arm(failpoint.CoreSink, 1)
	var errRes ErrorResponse
	if code := post(t, hs.URL, "/v1/solve", req, &errRes); code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", code)
	}
	if errRes.Class != ClassInternal {
		t.Fatalf("class = %q, want internal", errRes.Class)
	}
	failpoint.Disarm(failpoint.CoreSink)

	var ok SolveResponse
	if code := post(t, hs.URL, "/v1/solve", req, &ok); code != http.StatusOK || ok.Count != warm.Count {
		t.Fatalf("post-fault solve = (%d, %d models), want (200, %d)", code, ok.Count, warm.Count)
	}
	awaitGoroutines(t, baseline)
}
