package server

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strings"
	"sync"

	"ntgd"
)

// The fact-base store behind POST /v1/db: clients upload a (possibly
// large) set of facts once, get back a content-addressed handle, and
// reference that handle from any number of solve/entails/answers/
// consistent/batch requests instead of re-sending the facts inline.
// Uploads are canonicalized (facts sorted and deduplicated) and hashed,
// so the handle is a pure function of the fact set: re-uploading the
// same facts — in any order, with any formatting — returns the same
// handle and reuses the already-loaded ntgd.Database. The Database is
// bulk-loaded and frozen at upload time; every program compiled against
// it layers a copy-on-write snapshot over the one shared, interned,
// indexed root (the PR 9 storage seam).

// canonicalFacts parses a facts-only source and returns the sorted,
// deduplicated fact set plus the canonical source it is hashed by.
func canonicalFacts(src string) ([]ntgd.Atom, string, error) {
	p, err := ntgd.Parse(src)
	if err != nil {
		return nil, "", badReqf("parsing facts: %v", err)
	}
	if len(p.Rules) > 0 || len(p.Queries) > 0 {
		return nil, "", badReqf("db upload must contain facts only (no rules or queries)")
	}
	facts := make([]ntgd.Atom, len(p.Facts))
	copy(facts, p.Facts)
	sort.Slice(facts, func(i, j int) bool { return facts[i].String() < facts[j].String() })
	facts = dedupBy(facts, func(a ntgd.Atom) string { return a.String() })
	var b strings.Builder
	for _, f := range facts {
		b.WriteString(f.String())
		b.WriteString(".\n")
	}
	return facts, b.String(), nil
}

// dbHandle is the content address of a canonical fact source.
func dbHandle(canonical string) string {
	h := sha256.Sum256([]byte(canonical))
	return hex.EncodeToString(h[:])
}

// dbCache holds uploaded fact bases, handle-keyed and LRU-bounded.
// Unlike the program cache there is no single-flight: racing uploads of
// the same fact set each build a Database and the first insert wins —
// uploads are idempotent, so the losers' work is merely discarded.
type dbCache struct {
	cap int

	mu      sync.Mutex
	entries map[string]*dbEntry
	lru     *list.List // front = most recently used; values *dbEntry

	hits, misses, evictions, uploads int64
}

type dbEntry struct {
	handle string
	elem   *list.Element
	db     *ntgd.Database
	facts  int
}

func newDBCache(capacity int) *dbCache {
	if capacity <= 0 {
		capacity = 64
	}
	return &dbCache{
		cap:     capacity,
		entries: make(map[string]*dbEntry),
		lru:     list.New(),
	}
}

// put canonicalizes, loads, and caches a fact base, returning its
// handle and distinct-fact count. Re-uploading an already-cached fact
// set refreshes its LRU position without rebuilding anything.
func (c *dbCache) put(src string) (string, int, error) {
	facts, canonical, err := canonicalFacts(src)
	if err != nil {
		return "", 0, err
	}
	handle := dbHandle(canonical)

	c.mu.Lock()
	if e, ok := c.entries[handle]; ok {
		c.lru.MoveToFront(e.elem)
		c.uploads++
		c.mu.Unlock()
		return handle, e.facts, nil
	}
	c.mu.Unlock()

	// Build outside the lock: bulk-loading a large base must not stall
	// readers resolving other handles.
	db := ntgd.NewDatabase()
	if err := db.AddFacts(facts...); err != nil {
		return "", 0, badReqf("%v", err)
	}
	n := db.Freeze()

	c.mu.Lock()
	defer c.mu.Unlock()
	c.uploads++
	if e, ok := c.entries[handle]; ok {
		// Lost the race to an identical upload; theirs is as good.
		c.lru.MoveToFront(e.elem)
		return handle, e.facts, nil
	}
	e := &dbEntry{handle: handle, db: db, facts: n}
	e.elem = c.lru.PushFront(e)
	c.entries[handle] = e
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		ev := back.Value.(*dbEntry)
		c.lru.Remove(back)
		delete(c.entries, ev.handle)
		c.evictions++
	}
	return handle, n, nil
}

// get resolves a handle to its Database, or nil when unknown (never
// uploaded, or evicted — the client must re-upload).
func (c *dbCache) get(handle string) *ntgd.Database {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[handle]
	if !ok {
		c.misses++
		return nil
	}
	c.lru.MoveToFront(e.elem)
	c.hits++
	return e.db
}

// purge evicts every cached fact base (the memory-pressure brownout's
// soft response). Clients holding evicted handles see 404 and
// re-upload once pressure subsides. Returns the number evicted.
func (c *dbCache) purge() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.entries)
	c.evictions += int64(n)
	c.entries = make(map[string]*dbEntry)
	c.lru.Init()
	return n
}

// stats snapshots the fact-base cache counters (Compiles counts
// uploads, including idempotent re-uploads).
func (c *dbCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   len(c.entries),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Compiles:  c.uploads,
	}
}

// doDB implements POST /v1/db.
func (s *Server) doDB(ctx context.Context, req *Request) (runResult, error) {
	if strings.TrimSpace(req.Facts) == "" {
		return runResult{}, badReqf("missing facts")
	}
	handle, n, err := s.dbs.put(req.Facts)
	if err != nil {
		return runResult{}, err
	}
	return runResult{payload: DBResponse{Handle: handle, Facts: n}}, nil
}
