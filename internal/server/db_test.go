package server

import (
	"net/http"
	"sort"
	"strings"
	"testing"
)

// TestDBUploadAndSolve pins the /v1/db round trip: upload a fact base,
// solve a rules-only program against its handle, and get exactly the
// models of the equivalent inline program.
func TestDBUploadAndSolve(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	facts := "item(i0). item(i1). item(i2). item(i3).\n"
	rules := "item(X), not out(X) -> in(X).\nitem(X), not in(X) -> out(X).\n"

	var up DBResponse
	if code := post(t, hs.URL, "/v1/db", Request{Facts: facts}, &up); code != http.StatusOK {
		t.Fatalf("upload status = %d", code)
	}
	if up.Handle == "" || up.Facts != 4 {
		t.Fatalf("upload response = %+v", up)
	}

	var solve SolveResponse
	if code := post(t, hs.URL, "/v1/solve", Request{Program: rules, DB: up.Handle}, &solve); code != http.StatusOK {
		t.Fatalf("solve status = %d", code)
	}
	want := directModels(t, facts+rules)
	if len(solve.Models) != len(want) {
		t.Fatalf("models over handle = %d, inline = %d", len(solve.Models), len(want))
	}
	got := append([]string(nil), solve.Models...)
	sort.Strings(got)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("model %d differs:\n%s\n%s", i, got[i], want[i])
		}
	}

	// The handle is content-addressed: re-uploading the same facts in a
	// different order and format returns the same handle.
	var up2 DBResponse
	if code := post(t, hs.URL, "/v1/db", Request{Facts: "item(i3).item(i1).\n\nitem(i0). item(i2). item(i1)."}, &up2); code != http.StatusOK {
		t.Fatalf("re-upload status = %d", code)
	}
	if up2.Handle != up.Handle || up2.Facts != 4 {
		t.Fatalf("re-upload got handle %s (%d facts), want %s (4)", up2.Handle, up2.Facts, up.Handle)
	}

	// Batch requests resolve the handle too.
	var batch BatchResponse
	code := post(t, hs.URL, "/v1/batch", Request{Program: rules, DB: up.Handle, Queries: []BatchItem{
		{Query: "?- in(i0).", Mode: "brave"},
		{Query: "?- in(i0).", Mode: "cautious"},
	}}, &batch)
	if code != http.StatusOK || len(batch.Results) != 2 {
		t.Fatalf("batch status = %d, results = %d", code, len(batch.Results))
	}
	if !batch.Results[0].Entailed || batch.Results[1].Entailed {
		t.Fatalf("batch verdicts = %v, %v; want brave yes, cautious no",
			batch.Results[0].Entailed, batch.Results[1].Entailed)
	}
}

// TestDBUnknownHandle pins the 404/not_found contract for handles never
// uploaded (or evicted).
func TestDBUnknownHandle(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	var er ErrorResponse
	code := post(t, hs.URL, "/v1/solve", Request{Program: "p(X) -> q(X).", DB: "deadbeef"}, &er)
	if code != http.StatusNotFound || er.Class != ClassNotFound {
		t.Fatalf("unknown handle: status = %d class = %q, want 404 %q", code, er.Class, ClassNotFound)
	}
}

// TestDBUploadValidation: the upload must be facts-only and parseable.
func TestDBUploadValidation(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	cases := []struct {
		name  string
		facts string
	}{
		{"empty", "   "},
		{"rules", "p(a). p(X) -> q(X)."},
		{"query", "p(a). ?- p(a)."},
		{"unparseable", "p(."},
	}
	for _, tc := range cases {
		var er ErrorResponse
		if code := post(t, hs.URL, "/v1/db", Request{Facts: tc.facts}, &er); code != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, want 400 (%+v)", tc.name, code, er)
		}
	}
}

// TestDBCacheKeySeparation: the same program with and without an
// attached fact base must not share a compiled-solver cache entry.
func TestDBCacheKeySeparation(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	rules := "item(X), not out(X) -> in(X).\nitem(X), not in(X) -> out(X).\n"

	var up DBResponse
	if code := post(t, hs.URL, "/v1/db", Request{Facts: "item(a)."}, &up); code != http.StatusOK {
		t.Fatalf("upload failed")
	}
	var withDB, without SolveResponse
	if code := post(t, hs.URL, "/v1/solve", Request{Program: rules, DB: up.Handle}, &withDB); code != http.StatusOK {
		t.Fatalf("solve with db failed: %d", code)
	}
	if code := post(t, hs.URL, "/v1/solve", Request{Program: rules}, &without); code != http.StatusOK {
		t.Fatalf("solve without db failed: %d", code)
	}
	// One item toggling in/out → 2 models over the db; the bare rules
	// have a single (empty-domain) model. A shared cache entry would
	// answer both identically.
	if withDB.Count != 2 {
		t.Fatalf("with db: %d models, want 2", withDB.Count)
	}
	if without.Count != 1 {
		t.Fatalf("without db: %d models, want 1", without.Count)
	}
	for _, m := range withDB.Models {
		if !strings.Contains(m, "item(a)") {
			t.Fatalf("db facts missing from model %q", m)
		}
	}
}

// TestDBCacheEviction: past DBCacheSize the least-recently-used base is
// evicted and its handle answers 404 until re-uploaded.
func TestDBCacheEviction(t *testing.T) {
	_, hs := newTestServer(t, Config{DBCacheSize: 2})
	handles := make([]string, 3)
	for i, facts := range []string{"p(a).", "p(b).", "p(c)."} {
		var up DBResponse
		if code := post(t, hs.URL, "/v1/db", Request{Facts: facts}, &up); code != http.StatusOK {
			t.Fatalf("upload %d failed", i)
		}
		handles[i] = up.Handle
	}
	var er ErrorResponse
	if code := post(t, hs.URL, "/v1/solve", Request{Program: "p(X) -> q(X).", DB: handles[0]}, &er); code != http.StatusNotFound {
		t.Fatalf("evicted handle: status = %d, want 404", code)
	}
	var solve SolveResponse
	if code := post(t, hs.URL, "/v1/solve", Request{Program: "p(X) -> q(X).", DB: handles[2]}, &solve); code != http.StatusOK {
		t.Fatalf("live handle: status = %d, want 200", code)
	}
}
