package server

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strings"
	"sync"

	"ntgd"
)

// Canonicalize parses a submitted program and returns its canonical
// form plus the canonical source it is keyed by. The canonicalization
// policy of the daemon:
//
//   - whitespace and comments vanish (the parser discards them);
//   - facts are sorted and deduplicated (a database is a set);
//   - rules are sorted by their canonical rendering and deduplicated.
//
// Rule order is normalized on purpose: branch-trigger selection is by
// rule index (PR 2/6), so two clients submitting the same rules in
// different orders would otherwise be served from one cache entry yet
// expect potentially different (equally sound) model subsets. The
// daemon always evaluates the canonical form, making responses a pure
// function of the rule/fact sets.
//
// Queries embedded in the source ("?- ...") are validated by the parse
// but dropped from the canonical program: the HTTP API carries queries
// in their own request fields, and they do not affect compilation.
func Canonicalize(src string) (*ntgd.Program, string, error) {
	p, err := ntgd.Parse(src)
	if err != nil {
		return nil, "", err
	}
	facts := make([]ntgd.Atom, len(p.Facts))
	copy(facts, p.Facts)
	sort.Slice(facts, func(i, j int) bool { return facts[i].String() < facts[j].String() })
	facts = dedupBy(facts, func(a ntgd.Atom) string { return a.String() })
	rules := make([]*ntgd.Rule, len(p.Rules))
	copy(rules, p.Rules)
	sort.Slice(rules, func(i, j int) bool { return rules[i].String() < rules[j].String() })
	rules = dedupBy(rules, func(r *ntgd.Rule) string { return r.String() })

	var b strings.Builder
	for _, f := range facts {
		b.WriteString(f.String())
		b.WriteString(".\n")
	}
	for _, r := range rules {
		b.WriteString(r.String())
		b.WriteString(".\n")
	}
	return &ntgd.Program{Facts: facts, Rules: rules}, b.String(), nil
}

func dedupBy[T any](in []T, key func(T) string) []T {
	out := in[:0]
	prev := ""
	for i, v := range in {
		if k := key(v); i == 0 || k != prev {
			out = append(out, v)
			prev = k
		}
	}
	return out
}

// cacheKey hashes the canonical source under one semantics and one
// fact-base handle ("" = no attached fact base). The handle is part of
// the key because the same rules over different uploaded databases
// compile to different solvers.
func cacheKey(sem ntgd.Semantics, canonical, db string) string {
	h := sha256.New()
	h.Write([]byte(sem.String()))
	h.Write([]byte{0})
	h.Write([]byte(db))
	h.Write([]byte{0})
	h.Write([]byte(canonical))
	return hex.EncodeToString(h.Sum(nil))
}

// CacheStats is a point-in-time snapshot of the compiled-program
// cache's counters, surfaced by /statz.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Compiles  int64 `json:"compiles"`
}

// progCache is the compiled-program cache: canonical-hash keyed, LRU
// bounded, with single-flight compilation — concurrent submissions of
// one canonical program trigger exactly one Compile; the rest wait on
// the winner's entry. Failed compiles are reported to every waiter but
// never cached, so a transient condition cannot poison the key.
type progCache struct {
	cap     int
	compile func(*ntgd.Program, ntgd.Semantics, *ntgd.Database) (*ntgd.Solver, error)

	mu      sync.Mutex
	entries map[string]*cacheEntry
	lru     *list.List // front = most recently used; values *cacheEntry

	hits, misses, evictions, compiles int64
	// retired accumulates the final cumulative Stats of evicted
	// solvers so /statz keeps counting effort the cache no longer
	// holds. (A solver evicted while a run is in flight contributes
	// its stats as of eviction time.)
	retired ntgd.Stats
}

type cacheEntry struct {
	key   string
	elem  *list.Element
	ready chan struct{} // closed when solver/err is set
	prog  *ntgd.Program
	sem   ntgd.Semantics
	// exactly one of solver/err is set once ready is closed
	solver *ntgd.Solver
	err    error
}

func newProgCache(capacity int, compile func(*ntgd.Program, ntgd.Semantics, *ntgd.Database) (*ntgd.Solver, error)) *progCache {
	if capacity <= 0 {
		capacity = 128
	}
	return &progCache{
		cap:     capacity,
		compile: compile,
		entries: make(map[string]*cacheEntry),
		lru:     list.New(),
	}
}

// get returns the compiled solver for the canonical program, compiling
// it at most once however many requests race on the same key. The
// returned program is the canonical form the solver was compiled from.
func (c *progCache) get(ctx context.Context, src string, sem ntgd.Semantics) (*ntgd.Solver, *ntgd.Program, error) {
	return c.getDB(ctx, src, sem, "", nil)
}

// getDB is get with an attached uploaded fact base: the handle extends
// the cache key and the Database reaches Compile, whose snapshot-based
// root sharing makes the per-compile cost independent of the base's
// size.
func (c *progCache) getDB(ctx context.Context, src string, sem ntgd.Semantics, dbHandle string, db *ntgd.Database) (*ntgd.Solver, *ntgd.Program, error) {
	prog, canonical, err := Canonicalize(src)
	if err != nil {
		return nil, nil, err
	}
	key := cacheKey(sem, canonical, dbHandle)

	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e.elem)
		c.hits++
		c.mu.Unlock()
		select {
		case <-e.ready:
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
		if e.err != nil {
			return nil, nil, e.err
		}
		return e.solver, e.prog, nil
	}
	e := &cacheEntry{key: key, ready: make(chan struct{}), prog: prog, sem: sem}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.misses++
	c.compiles++
	c.mu.Unlock()

	solver, cerr := c.compile(prog, sem, db)

	c.mu.Lock()
	if cerr != nil {
		e.err = cerr
		c.lru.Remove(e.elem)
		delete(c.entries, key)
	} else {
		e.solver = solver
		c.evictLocked()
	}
	c.mu.Unlock()
	close(e.ready)
	if cerr != nil {
		return nil, nil, cerr
	}
	return solver, prog, nil
}

// evictLocked trims the LRU past capacity, skipping entries still
// compiling (their waiters hold the entry; the winner will close ready
// regardless, and the key simply has to be recompiled next time).
func (c *progCache) evictLocked() {
	for elem := c.lru.Back(); elem != nil && c.lru.Len() > c.cap; {
		prev := elem.Prev()
		e := elem.Value.(*cacheEntry)
		if e.solver != nil {
			c.retired.Add(e.solver.Stats())
			c.lru.Remove(elem)
			delete(c.entries, e.key)
			c.evictions++
		}
		elem = prev
	}
}

// purge evicts every completed entry — the memory-pressure brownout's
// soft response — folding final stats into the retired accumulator.
// Entries still compiling are skipped (their waiters hold them; the
// winner closes ready regardless) and fall to a later purge or the LRU.
// Returns the number of entries evicted.
func (c *progCache) purge() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for elem := c.lru.Back(); elem != nil; {
		prev := elem.Prev()
		e := elem.Value.(*cacheEntry)
		if e.solver != nil {
			c.retired.Add(e.solver.Stats())
			c.lru.Remove(elem)
			delete(c.entries, e.key)
			c.evictions++
			n++
		}
		elem = prev
	}
	return n
}

// stats snapshots the cache counters.
func (c *progCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   len(c.entries),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Compiles:  c.compiles,
	}
}

// engineStats sums the cumulative solver Stats across live entries plus
// the retired accumulator of evicted ones.
func (c *progCache) engineStats() ntgd.Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.retired
	for _, e := range c.entries {
		if e.solver != nil {
			st.Add(e.solver.Stats())
		}
	}
	return st
}
