// Package server implements ntgdd, the long-lived solver daemon: an
// HTTP/JSON front end over the compile-once ntgd.Solver stack.
//
// The daemon holds a compiled-program cache keyed by canonical program
// hash (LRU-bounded, single-flight compilation), so concurrent query
// traffic against the same program compiles once and then shares one
// concurrency-safe Solver (PR 7). Every request runs under a
// per-request deadline threaded through the engines' context
// cancellation, client disconnects abort the run the same way, and one
// shared admission gate (ntgd.Gate, the PR 7 MaxConcurrentRuns
// mechanism) bounds the daemon's total concurrent engine runs across
// all cached programs. Terminal errors map onto distinct HTTP status
// codes mirroring the ntgdctl exit-code contract (see api.go), always
// carrying the partial Stats of the interrupted run.
//
// Under overload the daemon sheds rather than parks (PR 10): the gate's
// waiter queue is bounded (MaxQueuedRuns), requests whose deadline is
// provably hopeless given the queue and the EWMA of recent run times
// are refused immediately, and every 429/503 refusal carries machine-
// readable retry guidance (Retry-After header, retry_after_ms body
// field). A memory-pressure brownout (see brownout.go) additionally
// evicts caches and halves the queue bound at the soft watermark and
// refuses new API work at the hard one.
//
// Endpoints:
//
//	POST /v1/solve       enumerate stable models
//	POST /v1/entails     answer one Boolean query
//	POST /v1/answers     answer one n-ary query
//	POST /v1/consistent  consistency check
//	POST /v1/batch       many queries against one compiled program
//	POST /v1/db          upload a fact base once; solve/batch requests
//	                     reference it by content-addressed handle
//	GET  /healthz        liveness (503 while draining)
//	GET  /statz          cumulative solver/cache/request statistics
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ntgd"
	"ntgd/internal/failpoint"
)

// Config configures a Server. The zero value serves with the defaults
// documented per field.
type Config struct {
	// CacheSize bounds the compiled-program cache (entries; default
	// 128). Least-recently-used programs are evicted past the cap.
	CacheSize int
	// DBCacheSize bounds the uploaded fact-base cache behind POST
	// /v1/db (entries; default 64). Least-recently-used bases are
	// evicted past the cap; referencing an evicted handle answers 404
	// and the client re-uploads.
	DBCacheSize int
	// MaxConcurrentRuns bounds engine runs across the whole daemon via
	// one shared admission gate (0 = unlimited). A request that cannot
	// be admitted before its deadline is refused with 429.
	MaxConcurrentRuns int
	// MaxQueuedRuns bounds the gate's waiter queue, only meaningful
	// with MaxConcurrentRuns > 0. 0 keeps the historical unbounded
	// parking queue; > 0 sheds immediately (429 + Retry-After) once
	// that many runs are already waiting; < 0 disables queuing
	// entirely — a run is admitted only if a slot is free right now.
	// Independent of the bound, a waiter whose deadline provably
	// expires before a slot can free (queue length × EWMA run time) is
	// shed immediately instead of parking to certain death.
	MaxQueuedRuns int
	// WriteTimeout bounds each response write (a per-request deadline
	// applied via http.ResponseController just before the body is
	// encoded; 0 = none). Unlike http.Server.WriteTimeout it does not
	// start ticking until the handler is done solving, so slow clients
	// cannot wedge response goroutines while long solves stay legal.
	WriteTimeout time.Duration
	// MemSoftBytes and MemHardBytes are the brownout watermarks over
	// live heap bytes (0 = disabled); see brownout.go for the state
	// machine they drive.
	MemSoftBytes uint64
	MemHardBytes uint64
	// DefaultTimeout applies when a request carries no timeout_ms
	// (0 = no default deadline).
	DefaultTimeout time.Duration
	// MaxTimeout clamps per-request deadlines (0 = no clamp). Requests
	// asking for more — or for none while a clamp is set — get exactly
	// MaxTimeout.
	MaxTimeout time.Duration
	// MaxModels caps the models any single solve request may return
	// (default 10000).
	MaxModels int
	// MaxBodyBytes caps request bodies (default 8 MiB).
	MaxBodyBytes int64
	// Options are the base search options every cached program is
	// compiled with (Workers, budgets, MaxMemory, MaxWallClock...).
	// MaxConcurrentRuns inside Options is ignored — the server-level
	// gate governs admission.
	Options ntgd.Options
}

// Server is the daemon state behind the HTTP handler. Create one with
// New; it is safe for concurrent use by any number of requests.
type Server struct {
	cfg   Config
	gate  *ntgd.Gate
	cache *progCache
	dbs   *dbCache
	start time.Time

	draining atomic.Bool
	inFlight atomic.Int64

	// pressure is the brownout level (see brownout.go); pressureMu
	// serializes level transitions so purge/bound side effects of one
	// transition complete before the next is observed.
	pressure   atomic.Int32
	pressureMu sync.Mutex

	mu       sync.Mutex
	requests map[string]int64
	errors   map[string]int64
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	s := &Server{
		cfg:      cfg,
		gate:     ntgd.NewGateQueue(cfg.MaxConcurrentRuns, queueBound(cfg.MaxQueuedRuns)),
		start:    time.Now(),
		requests: make(map[string]int64),
		errors:   make(map[string]int64),
	}
	s.cache = newProgCache(cfg.CacheSize, func(p *ntgd.Program, sem ntgd.Semantics, db *ntgd.Database) (*ntgd.Solver, error) {
		opt := cfg.Options
		opt.MaxConcurrentRuns = 0 // the shared gate governs admission
		return ntgd.Compile(p, ntgd.CompileOptions{Semantics: sem, Options: opt, Gate: s.gate, Database: db})
	})
	s.dbs = newDBCache(cfg.DBCacheSize)
	return s
}

// queueBound translates the Config.MaxQueuedRuns convention (0 =
// unbounded, < 0 = no queue) into the gate's (-1 = unbounded, 0 = no
// queue).
func queueBound(maxQueued int) int {
	switch {
	case maxQueued == 0:
		return -1
	case maxQueued < 0:
		return 0
	default:
		return maxQueued
	}
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/solve", s.handle("solve", s.doSolve))
	mux.HandleFunc("/v1/entails", s.handle("entails", s.doEntails))
	mux.HandleFunc("/v1/answers", s.handle("answers", s.doAnswers))
	mux.HandleFunc("/v1/consistent", s.handle("consistent", s.doConsistent))
	mux.HandleFunc("/v1/batch", s.handle("batch", s.doBatch))
	mux.HandleFunc("/v1/db", s.handle("db", s.doDB))
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statz", s.handleStatz)
	return mux
}

// StartDrain flips the daemon into draining mode: /healthz turns 503
// (load balancers stop routing) and new API requests are refused with
// 503/draining, while requests already in flight run to completion.
// Call it right before http.Server.Shutdown.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// InFlight reports the number of requests currently executing.
func (s *Server) InFlight() int64 { return s.inFlight.Load() }

// errBadRequest tags request-shape errors (missing fields, parse
// failures, unknown semantics/mode) so the handler maps them to 400
// instead of the run-error taxonomy.
var errBadRequest = errors.New("bad request")

func badReqf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errBadRequest, fmt.Sprintf(format, args...))
}

// errNotFound tags unknown-reference errors (a db handle that was never
// uploaded or has been evicted) so the handler answers 404/not_found.
var errNotFound = errors.New("not found")

func notFoundf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errNotFound, fmt.Sprintf(format, args...))
}

// runResult is what an endpoint implementation hands back to the shared
// handler plumbing: a success payload, or an error plus the partial
// effort to attach to the error body.
type runResult struct {
	payload   any
	stats     ntgd.Stats
	exhausted bool
}

func (s *Server) handle(name string, fn func(ctx context.Context, req *Request) (runResult, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.count(s.errors, ClassDraining)
			s.shed(w, http.StatusServiceUnavailable, ErrorResponse{
				Error: "ntgdd: draining", Class: ClassDraining,
			})
			return
		}
		if s.Pressure() >= PressureHard {
			s.count(s.errors, ClassOverloaded)
			s.shed(w, http.StatusServiceUnavailable, ErrorResponse{
				Error: "ntgdd: refusing new work under hard memory pressure",
				Class: ClassOverloaded,
			})
			return
		}
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			s.writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{
				Error: "use POST", Class: ClassBadRequest,
			})
			return
		}
		s.count(s.requests, name)
		var req Request
		body := http.MaxBytesReader(w, r.Body, s.maxBody())
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				s.count(s.errors, ClassRequestTooLarge)
				s.writeJSON(w, http.StatusRequestEntityTooLarge, ErrorResponse{
					Error: fmt.Sprintf("request body exceeds the %d-byte cap; split the program or raise the server's MaxBodyBytes", mbe.Limit),
					Class: ClassRequestTooLarge,
				})
				return
			}
			s.count(s.errors, ClassBadRequest)
			s.writeJSON(w, http.StatusBadRequest, ErrorResponse{
				Error: "decoding request body: " + err.Error(), Class: ClassBadRequest,
			})
			return
		}

		ctx, cancel := s.requestContext(r.Context(), &req)
		defer cancel()

		s.inFlight.Add(1)
		res, err := s.run(ctx, &req, fn)
		s.inFlight.Add(-1)

		if err != nil {
			status, class := http.StatusBadRequest, ClassBadRequest
			if errors.Is(err, errNotFound) {
				status, class = http.StatusNotFound, ClassNotFound
			} else if !errors.Is(err, errBadRequest) {
				status, class = statusFor(err)
			}
			s.count(s.errors, class)
			resp := ErrorResponse{
				Error:     err.Error(),
				Class:     class,
				Stats:     statsJSON(res.stats),
				Exhausted: res.exhausted,
			}
			if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
				var ae *ntgd.AdmissionError
				if errors.As(err, &ae) {
					resp.RetryAfterMS = ae.RetryAfter.Milliseconds()
				}
				s.shed(w, status, resp)
				return
			}
			s.writeJSON(w, status, resp)
			return
		}
		s.writeJSON(w, http.StatusOK, res.payload)
	}
}

// defaultRetryAfterMS is the retry hint a refusal carries when the gate
// has no better estimate (an idle EWMA, or a non-gate refusal such as
// draining or brownout).
const defaultRetryAfterMS = 1000

// shed writes a load-shedding refusal (429 or 503): it guarantees the
// response carries retry guidance — a positive retry_after_ms and the
// matching Retry-After header (whole seconds, rounded up, at least 1) —
// and runs under its own panic boundary. The shed path executes exactly
// when the daemon is already in trouble, so a fault here (the
// server/shed failpoint in the chaos suite) must still answer a typed
// error rather than an empty reply.
func (s *Server) shed(w http.ResponseWriter, status int, resp ErrorResponse) {
	defer func() {
		if r := recover(); r != nil {
			s.count(s.errors, ClassInternal)
			s.writeJSON(w, http.StatusInternalServerError, ErrorResponse{
				Error: fmt.Sprintf("ntgdd: shed-path fault: %v", r),
				Class: ClassInternal,
			})
		}
	}()
	failpoint.Inject(failpoint.ServerShed)
	if resp.RetryAfterMS <= 0 {
		resp.RetryAfterMS = defaultRetryAfterMS
	}
	w.Header().Set("Retry-After", strconv.FormatInt((resp.RetryAfterMS+999)/1000, 10))
	s.writeJSON(w, status, resp)
}

// run executes one endpoint body under the handler's panic boundary: a
// panicking request — the server/handler failpoint, or a genuine
// handler bug — is converted to a typed internal error so the daemon
// answers 500 and keeps serving. Engine panics never reach this
// boundary (the Solver's own Guard types them first); this recover
// protects the daemon from faults in the handler layer itself.
func (s *Server) run(ctx context.Context, req *Request, fn func(context.Context, *Request) (runResult, error)) (res runResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = runResult{}
			err = fmt.Errorf("%w: handler panic: %v", ntgd.ErrInternal, r)
		}
	}()
	failpoint.Inject(failpoint.ServerHandler)
	return fn(ctx, req)
}

// requestContext derives the run context: the client's connection
// context (disconnects cancel the run) plus the per-request deadline,
// clamped by the server maximum.
func (s *Server) requestContext(parent context.Context, req *Request) (context.Context, context.CancelFunc) {
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if s.cfg.MaxTimeout > 0 && (timeout <= 0 || timeout > s.cfg.MaxTimeout) {
		timeout = s.cfg.MaxTimeout
	}
	if timeout > 0 {
		return context.WithTimeout(parent, timeout)
	}
	return parent, func() {}
}

func (s *Server) maxBody() int64 {
	if s.cfg.MaxBodyBytes > 0 {
		return s.cfg.MaxBodyBytes
	}
	return 8 << 20
}

func (s *Server) maxModels(requested int) int {
	limit := s.cfg.MaxModels
	if limit <= 0 {
		limit = 10000
	}
	if requested <= 0 || requested > limit {
		return limit
	}
	return requested
}

func (s *Server) count(m map[string]int64, key string) {
	s.mu.Lock()
	m[key]++
	s.mu.Unlock()
}

// program resolves the request's program through the compiled-program
// cache, attaching the uploaded fact base when the request references
// one by handle. Context errors (a deadline expiring while waiting on
// a single-flight compile) pass through; an unknown db handle is 404;
// everything else — parse or validation failures — is a bad request.
func (s *Server) program(ctx context.Context, req *Request) (*ntgd.Solver, error) {
	if strings.TrimSpace(req.Program) == "" {
		return nil, badReqf("missing program")
	}
	sem, err := semFromString(req.Semantics)
	if err != nil {
		return nil, err
	}
	var db *ntgd.Database
	if req.DB != "" {
		if db = s.dbs.get(req.DB); db == nil {
			return nil, notFoundf("unknown db handle %q (never uploaded, or evicted — re-upload via POST /v1/db)", req.DB)
		}
	}
	solver, _, err := s.cache.getDB(ctx, req.Program, sem, req.DB, db)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return nil, err
		}
		return nil, badReqf("%v", err)
	}
	return solver, nil
}

func semFromString(s string) (ntgd.Semantics, error) {
	switch s {
	case "", "so":
		return ntgd.SO, nil
	case "lp":
		return ntgd.LP, nil
	case "op", "operational":
		return ntgd.Operational, nil
	default:
		return 0, badReqf("unknown semantics %q (want so, lp, or op)", s)
	}
}

func modeFromString(s string) (ntgd.Mode, error) {
	switch s {
	case "", "cautious":
		return ntgd.Cautious, nil
	case "brave":
		return ntgd.Brave, nil
	default:
		return 0, badReqf("unknown mode %q (want cautious or brave)", s)
	}
}

// parseQuery parses a single "?- ..." query carried in its own request
// field.
func parseQuery(src string) (ntgd.Query, error) {
	p, err := ntgd.Parse(src)
	if err != nil {
		return ntgd.Query{}, badReqf("parsing query: %v", err)
	}
	if len(p.Queries) != 1 || len(p.Facts) > 0 || len(p.Rules) > 0 {
		return ntgd.Query{}, badReqf("query field must contain exactly one \"?- ...\" query")
	}
	q := p.Queries[0]
	if err := q.Validate(); err != nil {
		return ntgd.Query{}, badReqf("%v", err)
	}
	return q, nil
}

func (s *Server) doSolve(ctx context.Context, req *Request) (runResult, error) {
	solver, err := s.program(ctx, req)
	if err != nil {
		return runResult{}, err
	}
	res, err := solver.Collect(ctx, s.maxModels(req.MaxModels))
	out := runResult{stats: res.Stats, exhausted: res.Exhausted}
	if err != nil {
		return out, err
	}
	models := make([]string, len(res.Models))
	for i, m := range res.Models {
		models[i] = m.CanonicalString()
	}
	out.payload = SolveResponse{
		Models:    models,
		Count:     len(models),
		Exhausted: res.Exhausted,
		Stats:     statsJSON(res.Stats),
	}
	return out, nil
}

func (s *Server) doEntails(ctx context.Context, req *Request) (runResult, error) {
	solver, err := s.program(ctx, req)
	if err != nil {
		return runResult{}, err
	}
	q, err := parseQuery(req.Query)
	if err != nil {
		return runResult{}, err
	}
	mode, err := modeFromString(req.Mode)
	if err != nil {
		return runResult{}, err
	}
	res, err := solver.Entails(ctx, q, mode)
	out := runResult{stats: res.Stats, exhausted: res.Exhausted}
	if err != nil {
		return out, err
	}
	payload := EntailsResponse{
		Entailed:  res.Entailed,
		NoModels:  res.NoModels,
		Exhausted: res.Exhausted,
		Stats:     statsJSON(res.Stats),
	}
	if res.Witness != nil {
		payload.Witness = res.Witness.CanonicalString()
	}
	out.payload = payload
	return out, nil
}

func (s *Server) doAnswers(ctx context.Context, req *Request) (runResult, error) {
	solver, err := s.program(ctx, req)
	if err != nil {
		return runResult{}, err
	}
	q, err := parseQuery(req.Query)
	if err != nil {
		return runResult{}, err
	}
	if len(q.AnswerVars) == 0 {
		return runResult{}, badReqf("query has no answer variables; use /v1/entails for Boolean queries")
	}
	mode, err := modeFromString(req.Mode)
	if err != nil {
		return runResult{}, err
	}
	res, err := solver.AnswerSet(ctx, q, mode)
	out := runResult{stats: res.Stats, exhausted: res.Exhausted}
	if err != nil {
		return out, err
	}
	out.payload = AnswersResponse{
		Tuples:   renderTuples(res.Tuples),
		Complete: res.Complete,
		Stats:    statsJSON(res.Stats),
	}
	return out, nil
}

func (s *Server) doConsistent(ctx context.Context, req *Request) (runResult, error) {
	solver, err := s.program(ctx, req)
	if err != nil {
		return runResult{}, err
	}
	ok, err := solver.Consistent(ctx)
	if err != nil {
		return runResult{}, err
	}
	return runResult{payload: ConsistentResponse{Consistent: ok}}, nil
}

// doBatch runs every item against one compiled program. Item-level
// taxonomy errors (a budget, one slow query timing out) are recorded
// per item and do not fail the batch; once the batch deadline has
// expired, remaining items are marked timed out without running.
func (s *Server) doBatch(ctx context.Context, req *Request) (runResult, error) {
	solver, err := s.program(ctx, req)
	if err != nil {
		return runResult{}, err
	}
	if len(req.Queries) == 0 {
		return runResult{}, badReqf("batch request carries no queries")
	}
	var agg ntgd.Stats
	results := make([]BatchResult, len(req.Queries))
	for i, item := range req.Queries {
		if ctx.Err() != nil {
			results[i] = BatchResult{
				Error: "deadline expired before this item ran",
				Class: ClassTimeout,
			}
			continue
		}
		results[i] = s.batchItem(ctx, solver, item)
		agg.Add(statsBack(results[i].Stats))
	}
	return runResult{stats: agg, payload: BatchResponse{
		Results: results,
		Stats:   statsJSON(agg),
	}}, nil
}

func (s *Server) batchItem(ctx context.Context, solver *ntgd.Solver, item BatchItem) BatchResult {
	q, err := parseQuery(item.Query)
	if err != nil {
		return BatchResult{Error: err.Error(), Class: ClassBadRequest}
	}
	mode, err := modeFromString(item.Mode)
	if err != nil {
		return BatchResult{Error: err.Error(), Class: ClassBadRequest}
	}
	if len(q.AnswerVars) > 0 {
		res, err := solver.AnswerSet(ctx, q, mode)
		out := BatchResult{
			Tuples:   renderTuples(res.Tuples),
			Complete: res.Complete,
			Stats:    statsJSON(res.Stats),
		}
		if err != nil {
			_, out.Class = statusFor(err)
			out.Error = err.Error()
		}
		return out
	}
	res, err := solver.Entails(ctx, q, mode)
	out := BatchResult{
		Entailed: res.Entailed,
		NoModels: res.NoModels,
		Stats:    statsJSON(res.Stats),
	}
	if res.Witness != nil {
		out.Witness = res.Witness.CanonicalString()
	}
	if err != nil {
		_, out.Class = statusFor(err)
		out.Error = err.Error()
	}
	return out
}

func renderTuples(tuples []ntgd.AnswerTuple) [][]string {
	out := make([][]string, len(tuples))
	for i, t := range tuples {
		row := make([]string, len(t))
		for j, c := range t {
			row[j] = c.String()
		}
		out[i] = row
	}
	return out
}

// statsBack converts the wire Stats back for aggregation.
func statsBack(w Stats) ntgd.Stats {
	return ntgd.Stats{
		Nodes:           w.Nodes,
		Branches:        w.Branches,
		Deterministic:   w.Deterministic,
		Completed:       w.Completed,
		StabilityChecks: w.StabilityChecks,
		StabilityFailed: w.StabilityFailed,
		ModelsEmitted:   w.ModelsEmitted,
		Conflicts:       w.Conflicts,
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// Statz is the /statz body: cumulative request counters, error counts
// by taxonomy class, compiled-program cache counters, and the engine
// effort aggregated across every solver the cache holds or has
// evicted.
type Statz struct {
	UptimeMS int64            `json:"uptime_ms"`
	InFlight int64            `json:"in_flight"`
	Draining bool             `json:"draining"`
	Pressure string           `json:"pressure"`
	Requests map[string]int64 `json:"requests"`
	Errors   map[string]int64 `json:"errors"`
	Gate     GateStatz        `json:"gate"`
	Cache    CacheStats       `json:"cache"`
	DBCache  CacheStats       `json:"db_cache"`
	Engine   Stats            `json:"engine"`
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	reqs := make(map[string]int64, len(s.requests))
	for k, v := range s.requests {
		reqs[k] = v
	}
	errs := make(map[string]int64, len(s.errors))
	for k, v := range s.errors {
		errs[k] = v
	}
	s.mu.Unlock()
	s.writeJSON(w, http.StatusOK, Statz{
		UptimeMS: time.Since(s.start).Milliseconds(),
		InFlight: s.inFlight.Load(),
		Draining: s.draining.Load(),
		Pressure: s.Pressure().String(),
		Requests: reqs,
		Errors:   errs,
		Gate:     gateStatsJSON(s.gate.Snapshot()),
		Cache:    s.cache.stats(),
		DBCache:  s.dbs.stats(),
		Engine:   statsJSON(s.cache.engineStats()),
	})
}

// writeJSON encodes one response body under the configured per-request
// write deadline: the clock starts here — after the solve — so a slow
// or stalled client cannot pin the response goroutine, while arbitrarily
// long solves stay unaffected (a fixed http.Server.WriteTimeout would
// start at the request header and kill them). SetWriteDeadline errors
// are ignored: httptest recorders and other non-Controller writers
// simply skip the deadline.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	if d := s.cfg.WriteTimeout; d > 0 {
		_ = http.NewResponseController(w).SetWriteDeadline(time.Now().Add(d))
	}
	writeJSON(w, status, v)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
