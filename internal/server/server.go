// Package server implements ntgdd, the long-lived solver daemon: an
// HTTP/JSON front end over the compile-once ntgd.Solver stack.
//
// The daemon holds a compiled-program cache keyed by canonical program
// hash (LRU-bounded, single-flight compilation), so concurrent query
// traffic against the same program compiles once and then shares one
// concurrency-safe Solver (PR 7). Every request runs under a
// per-request deadline threaded through the engines' context
// cancellation, client disconnects abort the run the same way, and one
// shared admission gate (ntgd.Gate, the PR 7 MaxConcurrentRuns
// mechanism) bounds the daemon's total concurrent engine runs across
// all cached programs. Terminal errors map onto distinct HTTP status
// codes mirroring the ntgdctl exit-code contract (see api.go), always
// carrying the partial Stats of the interrupted run.
//
// Endpoints:
//
//	POST /v1/solve       enumerate stable models
//	POST /v1/entails     answer one Boolean query
//	POST /v1/answers     answer one n-ary query
//	POST /v1/consistent  consistency check
//	POST /v1/batch       many queries against one compiled program
//	POST /v1/db          upload a fact base once; solve/batch requests
//	                     reference it by content-addressed handle
//	GET  /healthz        liveness (503 while draining)
//	GET  /statz          cumulative solver/cache/request statistics
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ntgd"
	"ntgd/internal/failpoint"
)

// Config configures a Server. The zero value serves with the defaults
// documented per field.
type Config struct {
	// CacheSize bounds the compiled-program cache (entries; default
	// 128). Least-recently-used programs are evicted past the cap.
	CacheSize int
	// DBCacheSize bounds the uploaded fact-base cache behind POST
	// /v1/db (entries; default 64). Least-recently-used bases are
	// evicted past the cap; referencing an evicted handle answers 404
	// and the client re-uploads.
	DBCacheSize int
	// MaxConcurrentRuns bounds engine runs across the whole daemon via
	// one shared admission gate (0 = unlimited). A request that cannot
	// be admitted before its deadline is refused with 429.
	MaxConcurrentRuns int
	// DefaultTimeout applies when a request carries no timeout_ms
	// (0 = no default deadline).
	DefaultTimeout time.Duration
	// MaxTimeout clamps per-request deadlines (0 = no clamp). Requests
	// asking for more — or for none while a clamp is set — get exactly
	// MaxTimeout.
	MaxTimeout time.Duration
	// MaxModels caps the models any single solve request may return
	// (default 10000).
	MaxModels int
	// MaxBodyBytes caps request bodies (default 8 MiB).
	MaxBodyBytes int64
	// Options are the base search options every cached program is
	// compiled with (Workers, budgets, MaxMemory, MaxWallClock...).
	// MaxConcurrentRuns inside Options is ignored — the server-level
	// gate governs admission.
	Options ntgd.Options
}

// Server is the daemon state behind the HTTP handler. Create one with
// New; it is safe for concurrent use by any number of requests.
type Server struct {
	cfg   Config
	gate  *ntgd.Gate
	cache *progCache
	dbs   *dbCache
	start time.Time

	draining atomic.Bool
	inFlight atomic.Int64

	mu       sync.Mutex
	requests map[string]int64
	errors   map[string]int64
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	s := &Server{
		cfg:      cfg,
		gate:     ntgd.NewGate(cfg.MaxConcurrentRuns),
		start:    time.Now(),
		requests: make(map[string]int64),
		errors:   make(map[string]int64),
	}
	s.cache = newProgCache(cfg.CacheSize, func(p *ntgd.Program, sem ntgd.Semantics, db *ntgd.Database) (*ntgd.Solver, error) {
		opt := cfg.Options
		opt.MaxConcurrentRuns = 0 // the shared gate governs admission
		return ntgd.Compile(p, ntgd.CompileOptions{Semantics: sem, Options: opt, Gate: s.gate, Database: db})
	})
	s.dbs = newDBCache(cfg.DBCacheSize)
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/solve", s.handle("solve", s.doSolve))
	mux.HandleFunc("/v1/entails", s.handle("entails", s.doEntails))
	mux.HandleFunc("/v1/answers", s.handle("answers", s.doAnswers))
	mux.HandleFunc("/v1/consistent", s.handle("consistent", s.doConsistent))
	mux.HandleFunc("/v1/batch", s.handle("batch", s.doBatch))
	mux.HandleFunc("/v1/db", s.handle("db", s.doDB))
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statz", s.handleStatz)
	return mux
}

// StartDrain flips the daemon into draining mode: /healthz turns 503
// (load balancers stop routing) and new API requests are refused with
// 503/draining, while requests already in flight run to completion.
// Call it right before http.Server.Shutdown.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// InFlight reports the number of requests currently executing.
func (s *Server) InFlight() int64 { return s.inFlight.Load() }

// errBadRequest tags request-shape errors (missing fields, parse
// failures, unknown semantics/mode) so the handler maps them to 400
// instead of the run-error taxonomy.
var errBadRequest = errors.New("bad request")

func badReqf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errBadRequest, fmt.Sprintf(format, args...))
}

// errNotFound tags unknown-reference errors (a db handle that was never
// uploaded or has been evicted) so the handler answers 404/not_found.
var errNotFound = errors.New("not found")

func notFoundf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errNotFound, fmt.Sprintf(format, args...))
}

// runResult is what an endpoint implementation hands back to the shared
// handler plumbing: a success payload, or an error plus the partial
// effort to attach to the error body.
type runResult struct {
	payload   any
	stats     ntgd.Stats
	exhausted bool
}

func (s *Server) handle(name string, fn func(ctx context.Context, req *Request) (runResult, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{
				Error: "ntgdd: draining", Class: ClassDraining,
			})
			return
		}
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{
				Error: "use POST", Class: ClassBadRequest,
			})
			return
		}
		s.count(s.requests, name)
		var req Request
		body := http.MaxBytesReader(w, r.Body, s.maxBody())
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			s.count(s.errors, ClassBadRequest)
			writeJSON(w, http.StatusBadRequest, ErrorResponse{
				Error: "decoding request body: " + err.Error(), Class: ClassBadRequest,
			})
			return
		}

		ctx, cancel := s.requestContext(r.Context(), &req)
		defer cancel()

		s.inFlight.Add(1)
		res, err := s.run(ctx, &req, fn)
		s.inFlight.Add(-1)

		if err != nil {
			status, class := http.StatusBadRequest, ClassBadRequest
			if errors.Is(err, errNotFound) {
				status, class = http.StatusNotFound, ClassNotFound
			} else if !errors.Is(err, errBadRequest) {
				status, class = statusFor(err)
			}
			s.count(s.errors, class)
			writeJSON(w, status, ErrorResponse{
				Error:     err.Error(),
				Class:     class,
				Stats:     statsJSON(res.stats),
				Exhausted: res.exhausted,
			})
			return
		}
		writeJSON(w, http.StatusOK, res.payload)
	}
}

// run executes one endpoint body under the handler's panic boundary: a
// panicking request — the server/handler failpoint, or a genuine
// handler bug — is converted to a typed internal error so the daemon
// answers 500 and keeps serving. Engine panics never reach this
// boundary (the Solver's own Guard types them first); this recover
// protects the daemon from faults in the handler layer itself.
func (s *Server) run(ctx context.Context, req *Request, fn func(context.Context, *Request) (runResult, error)) (res runResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = runResult{}
			err = fmt.Errorf("%w: handler panic: %v", ntgd.ErrInternal, r)
		}
	}()
	failpoint.Inject(failpoint.ServerHandler)
	return fn(ctx, req)
}

// requestContext derives the run context: the client's connection
// context (disconnects cancel the run) plus the per-request deadline,
// clamped by the server maximum.
func (s *Server) requestContext(parent context.Context, req *Request) (context.Context, context.CancelFunc) {
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if s.cfg.MaxTimeout > 0 && (timeout <= 0 || timeout > s.cfg.MaxTimeout) {
		timeout = s.cfg.MaxTimeout
	}
	if timeout > 0 {
		return context.WithTimeout(parent, timeout)
	}
	return parent, func() {}
}

func (s *Server) maxBody() int64 {
	if s.cfg.MaxBodyBytes > 0 {
		return s.cfg.MaxBodyBytes
	}
	return 8 << 20
}

func (s *Server) maxModels(requested int) int {
	limit := s.cfg.MaxModels
	if limit <= 0 {
		limit = 10000
	}
	if requested <= 0 || requested > limit {
		return limit
	}
	return requested
}

func (s *Server) count(m map[string]int64, key string) {
	s.mu.Lock()
	m[key]++
	s.mu.Unlock()
}

// program resolves the request's program through the compiled-program
// cache, attaching the uploaded fact base when the request references
// one by handle. Context errors (a deadline expiring while waiting on
// a single-flight compile) pass through; an unknown db handle is 404;
// everything else — parse or validation failures — is a bad request.
func (s *Server) program(ctx context.Context, req *Request) (*ntgd.Solver, error) {
	if strings.TrimSpace(req.Program) == "" {
		return nil, badReqf("missing program")
	}
	sem, err := semFromString(req.Semantics)
	if err != nil {
		return nil, err
	}
	var db *ntgd.Database
	if req.DB != "" {
		if db = s.dbs.get(req.DB); db == nil {
			return nil, notFoundf("unknown db handle %q (never uploaded, or evicted — re-upload via POST /v1/db)", req.DB)
		}
	}
	solver, _, err := s.cache.getDB(ctx, req.Program, sem, req.DB, db)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return nil, err
		}
		return nil, badReqf("%v", err)
	}
	return solver, nil
}

func semFromString(s string) (ntgd.Semantics, error) {
	switch s {
	case "", "so":
		return ntgd.SO, nil
	case "lp":
		return ntgd.LP, nil
	case "op", "operational":
		return ntgd.Operational, nil
	default:
		return 0, badReqf("unknown semantics %q (want so, lp, or op)", s)
	}
}

func modeFromString(s string) (ntgd.Mode, error) {
	switch s {
	case "", "cautious":
		return ntgd.Cautious, nil
	case "brave":
		return ntgd.Brave, nil
	default:
		return 0, badReqf("unknown mode %q (want cautious or brave)", s)
	}
}

// parseQuery parses a single "?- ..." query carried in its own request
// field.
func parseQuery(src string) (ntgd.Query, error) {
	p, err := ntgd.Parse(src)
	if err != nil {
		return ntgd.Query{}, badReqf("parsing query: %v", err)
	}
	if len(p.Queries) != 1 || len(p.Facts) > 0 || len(p.Rules) > 0 {
		return ntgd.Query{}, badReqf("query field must contain exactly one \"?- ...\" query")
	}
	q := p.Queries[0]
	if err := q.Validate(); err != nil {
		return ntgd.Query{}, badReqf("%v", err)
	}
	return q, nil
}

func (s *Server) doSolve(ctx context.Context, req *Request) (runResult, error) {
	solver, err := s.program(ctx, req)
	if err != nil {
		return runResult{}, err
	}
	res, err := solver.Collect(ctx, s.maxModels(req.MaxModels))
	out := runResult{stats: res.Stats, exhausted: res.Exhausted}
	if err != nil {
		return out, err
	}
	models := make([]string, len(res.Models))
	for i, m := range res.Models {
		models[i] = m.CanonicalString()
	}
	out.payload = SolveResponse{
		Models:    models,
		Count:     len(models),
		Exhausted: res.Exhausted,
		Stats:     statsJSON(res.Stats),
	}
	return out, nil
}

func (s *Server) doEntails(ctx context.Context, req *Request) (runResult, error) {
	solver, err := s.program(ctx, req)
	if err != nil {
		return runResult{}, err
	}
	q, err := parseQuery(req.Query)
	if err != nil {
		return runResult{}, err
	}
	mode, err := modeFromString(req.Mode)
	if err != nil {
		return runResult{}, err
	}
	res, err := solver.Entails(ctx, q, mode)
	out := runResult{stats: res.Stats, exhausted: res.Exhausted}
	if err != nil {
		return out, err
	}
	payload := EntailsResponse{
		Entailed:  res.Entailed,
		NoModels:  res.NoModels,
		Exhausted: res.Exhausted,
		Stats:     statsJSON(res.Stats),
	}
	if res.Witness != nil {
		payload.Witness = res.Witness.CanonicalString()
	}
	out.payload = payload
	return out, nil
}

func (s *Server) doAnswers(ctx context.Context, req *Request) (runResult, error) {
	solver, err := s.program(ctx, req)
	if err != nil {
		return runResult{}, err
	}
	q, err := parseQuery(req.Query)
	if err != nil {
		return runResult{}, err
	}
	if len(q.AnswerVars) == 0 {
		return runResult{}, badReqf("query has no answer variables; use /v1/entails for Boolean queries")
	}
	mode, err := modeFromString(req.Mode)
	if err != nil {
		return runResult{}, err
	}
	res, err := solver.AnswerSet(ctx, q, mode)
	out := runResult{stats: res.Stats, exhausted: res.Exhausted}
	if err != nil {
		return out, err
	}
	out.payload = AnswersResponse{
		Tuples:   renderTuples(res.Tuples),
		Complete: res.Complete,
		Stats:    statsJSON(res.Stats),
	}
	return out, nil
}

func (s *Server) doConsistent(ctx context.Context, req *Request) (runResult, error) {
	solver, err := s.program(ctx, req)
	if err != nil {
		return runResult{}, err
	}
	ok, err := solver.Consistent(ctx)
	if err != nil {
		return runResult{}, err
	}
	return runResult{payload: ConsistentResponse{Consistent: ok}}, nil
}

// doBatch runs every item against one compiled program. Item-level
// taxonomy errors (a budget, one slow query timing out) are recorded
// per item and do not fail the batch; once the batch deadline has
// expired, remaining items are marked timed out without running.
func (s *Server) doBatch(ctx context.Context, req *Request) (runResult, error) {
	solver, err := s.program(ctx, req)
	if err != nil {
		return runResult{}, err
	}
	if len(req.Queries) == 0 {
		return runResult{}, badReqf("batch request carries no queries")
	}
	var agg ntgd.Stats
	results := make([]BatchResult, len(req.Queries))
	for i, item := range req.Queries {
		if ctx.Err() != nil {
			results[i] = BatchResult{
				Error: "deadline expired before this item ran",
				Class: ClassTimeout,
			}
			continue
		}
		results[i] = s.batchItem(ctx, solver, item)
		agg.Add(statsBack(results[i].Stats))
	}
	return runResult{stats: agg, payload: BatchResponse{
		Results: results,
		Stats:   statsJSON(agg),
	}}, nil
}

func (s *Server) batchItem(ctx context.Context, solver *ntgd.Solver, item BatchItem) BatchResult {
	q, err := parseQuery(item.Query)
	if err != nil {
		return BatchResult{Error: err.Error(), Class: ClassBadRequest}
	}
	mode, err := modeFromString(item.Mode)
	if err != nil {
		return BatchResult{Error: err.Error(), Class: ClassBadRequest}
	}
	if len(q.AnswerVars) > 0 {
		res, err := solver.AnswerSet(ctx, q, mode)
		out := BatchResult{
			Tuples:   renderTuples(res.Tuples),
			Complete: res.Complete,
			Stats:    statsJSON(res.Stats),
		}
		if err != nil {
			_, out.Class = statusFor(err)
			out.Error = err.Error()
		}
		return out
	}
	res, err := solver.Entails(ctx, q, mode)
	out := BatchResult{
		Entailed: res.Entailed,
		NoModels: res.NoModels,
		Stats:    statsJSON(res.Stats),
	}
	if res.Witness != nil {
		out.Witness = res.Witness.CanonicalString()
	}
	if err != nil {
		_, out.Class = statusFor(err)
		out.Error = err.Error()
	}
	return out
}

func renderTuples(tuples []ntgd.AnswerTuple) [][]string {
	out := make([][]string, len(tuples))
	for i, t := range tuples {
		row := make([]string, len(t))
		for j, c := range t {
			row[j] = c.String()
		}
		out[i] = row
	}
	return out
}

// statsBack converts the wire Stats back for aggregation.
func statsBack(w Stats) ntgd.Stats {
	return ntgd.Stats{
		Nodes:           w.Nodes,
		Branches:        w.Branches,
		Deterministic:   w.Deterministic,
		Completed:       w.Completed,
		StabilityChecks: w.StabilityChecks,
		StabilityFailed: w.StabilityFailed,
		ModelsEmitted:   w.ModelsEmitted,
		Conflicts:       w.Conflicts,
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// Statz is the /statz body: cumulative request counters, error counts
// by taxonomy class, compiled-program cache counters, and the engine
// effort aggregated across every solver the cache holds or has
// evicted.
type Statz struct {
	UptimeMS int64            `json:"uptime_ms"`
	InFlight int64            `json:"in_flight"`
	Draining bool             `json:"draining"`
	Requests map[string]int64 `json:"requests"`
	Errors   map[string]int64 `json:"errors"`
	Cache    CacheStats       `json:"cache"`
	DBCache  CacheStats       `json:"db_cache"`
	Engine   Stats            `json:"engine"`
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	reqs := make(map[string]int64, len(s.requests))
	for k, v := range s.requests {
		reqs[k] = v
	}
	errs := make(map[string]int64, len(s.errors))
	for k, v := range s.errors {
		errs[k] = v
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, Statz{
		UptimeMS: time.Since(s.start).Milliseconds(),
		InFlight: s.inFlight.Load(),
		Draining: s.draining.Load(),
		Requests: reqs,
		Errors:   errs,
		Cache:    s.cache.stats(),
		DBCache:  s.dbs.stats(),
		Engine:   statsJSON(s.cache.engineStats()),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
