package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"ntgd"
)

// realCompile is the injectable compile function tests use when they
// need genuine solvers but want to count or gate the calls.
func realCompile(p *ntgd.Program, sem ntgd.Semantics, _ *ntgd.Database) (*ntgd.Solver, error) {
	return ntgd.Compile(p, ntgd.CompileOptions{Semantics: sem})
}

// TestCanonicalizeEquivalence pins satellite #4's hashing half: the
// same rule/fact sets under whitespace, comments, ordering, and
// duplication noise canonicalize to one source — different programs do
// not.
func TestCanonicalizeEquivalence(t *testing.T) {
	base := "p(a). p(b).\np(X), not q(X) -> r(X).\nr(X) -> s(X).\n"
	equivalent := []string{
		// Whitespace and comments.
		"p(a).   p(b).\n\n% a comment\np(X), not q(X) -> r(X).\nr(X) -> s(X).\n",
		// Fact order.
		"p(b). p(a).\np(X), not q(X) -> r(X).\nr(X) -> s(X).\n",
		// Rule order.
		"p(a). p(b).\nr(X) -> s(X).\np(X), not q(X) -> r(X).\n",
		// Duplicated facts and rules.
		"p(a). p(a). p(b).\np(X), not q(X) -> r(X).\np(X), not q(X) -> r(X).\nr(X) -> s(X).\n",
		// An embedded query is validated but dropped.
		"p(a). p(b).\np(X), not q(X) -> r(X).\nr(X) -> s(X).\n?- s(a).\n",
	}
	_, want, err := Canonicalize(base)
	if err != nil {
		t.Fatal(err)
	}
	for i, src := range equivalent {
		_, got, err := Canonicalize(src)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if got != want {
			t.Errorf("variant %d canonicalizes to\n%q\nwant\n%q", i, got, want)
		}
		if cacheKey(ntgd.SO, got, "") != cacheKey(ntgd.SO, want, "") {
			t.Errorf("variant %d: key differs", i)
		}
	}

	_, other, err := Canonicalize("p(a).\np(X), not q(X) -> r(X).\n")
	if err != nil {
		t.Fatal(err)
	}
	if other == want {
		t.Error("a different program canonicalized to the same source")
	}
	// Same program, different semantics: distinct keys.
	if cacheKey(ntgd.SO, want, "") == cacheKey(ntgd.LP, want, "") {
		t.Error("semantics does not separate cache keys")
	}
}

// TestCacheSingleFlight pins satellite #4's concurrency half: however
// many requests race on one canonical program, it compiles exactly
// once and everyone shares the one solver. The compile function blocks
// until every contender is in flight, so the race is real rather than
// sequenced by chance.
func TestCacheSingleFlight(t *testing.T) {
	const contenders = 16
	var compiles atomic.Int64
	arrived := make(chan struct{})
	c := newProgCache(8, func(p *ntgd.Program, sem ntgd.Semantics, _ *ntgd.Database) (*ntgd.Solver, error) {
		compiles.Add(1)
		<-arrived // hold the compile until every contender has queued
		return realCompile(p, sem, nil)
	})

	var wg sync.WaitGroup
	solvers := make([]*ntgd.Solver, contenders)
	errs := make([]error, contenders)
	var queued sync.WaitGroup
	queued.Add(contenders)
	for i := 0; i < contenders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			queued.Done()
			solvers[i], _, errs[i] = c.get(context.Background(), subsetSrc, ntgd.SO)
		}(i)
	}
	queued.Wait()
	close(arrived)
	wg.Wait()

	if n := compiles.Load(); n != 1 {
		t.Fatalf("%d compiles, want 1", n)
	}
	for i := range solvers {
		if errs[i] != nil {
			t.Fatalf("contender %d: %v", i, errs[i])
		}
		if solvers[i] != solvers[0] {
			t.Fatalf("contender %d got a different solver", i)
		}
	}
	st := c.stats()
	if st.Compiles != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 compile, 1 entry", st)
	}
	if st.Hits+st.Misses != contenders {
		t.Fatalf("hits %d + misses %d != %d contenders", st.Hits, st.Misses, contenders)
	}
}

// TestCacheLRUEviction pins the LRU bound: past capacity the
// least-recently-used program is evicted, a re-submission recompiles
// it, and the evicted solver's effort survives in engineStats.
func TestCacheLRUEviction(t *testing.T) {
	c := newProgCache(2, realCompile)
	src := func(i int) string { return fmt.Sprintf("p(c%d).\np(X) -> q(X).\n", i) }

	s0, _, err := c.get(context.Background(), src(0), ntgd.SO)
	if err != nil {
		t.Fatal(err)
	}
	// Give the soon-evicted solver some effort to retire.
	if _, err := s0.Collect(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if _, _, err := c.get(context.Background(), src(i), ntgd.SO); err != nil {
			t.Fatal(err)
		}
	}
	st := c.stats()
	if st.Entries != 2 || st.Evictions != 1 || st.Compiles != 3 {
		t.Fatalf("stats = %+v, want 2 entries, 1 eviction, 3 compiles", st)
	}
	if c.engineStats().Nodes == 0 {
		t.Error("evicted solver's effort vanished from engineStats")
	}

	// Program 0 was evicted: getting it again is a miss and recompile.
	if _, _, err := c.get(context.Background(), src(0), ntgd.SO); err != nil {
		t.Fatal(err)
	}
	if st := c.stats(); st.Compiles != 4 {
		t.Fatalf("compiles = %d after re-get of evicted entry, want 4", st.Compiles)
	}

	// Recency matters: touch program 1, insert program 3, and program 0
	// (now least recent) goes — program 1 stays.
	if _, _, err := c.get(context.Background(), src(1), ntgd.SO); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.get(context.Background(), src(3), ntgd.SO); err != nil {
		t.Fatal(err)
	}
	before := c.stats().Compiles
	if _, _, err := c.get(context.Background(), src(1), ntgd.SO); err != nil {
		t.Fatal(err)
	}
	if c.stats().Compiles != before {
		t.Error("recently-touched program 1 was evicted")
	}
}

// TestCacheHitFastPath pins the hot path under -race: once compiled, a
// flood of concurrent hits shares the entry without recompiling.
func TestCacheHitFastPath(t *testing.T) {
	var compiles atomic.Int64
	c := newProgCache(8, func(p *ntgd.Program, sem ntgd.Semantics, _ *ntgd.Database) (*ntgd.Solver, error) {
		compiles.Add(1)
		return realCompile(p, sem, nil)
	})
	if _, _, err := c.get(context.Background(), subsetSrc, ntgd.SO); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, _, err := c.get(context.Background(), subsetSrc, ntgd.SO)
			if err != nil || s == nil {
				t.Errorf("hit: (%v, %v)", s, err)
			}
		}()
	}
	wg.Wait()
	if n := compiles.Load(); n != 1 {
		t.Fatalf("%d compiles after hit flood, want 1", n)
	}
	if st := c.stats(); st.Hits != 32 {
		t.Fatalf("hits = %d, want 32", st.Hits)
	}
}

// TestCacheFailedCompileNotCached pins the poisoning guard: a failed
// compile is reported to its waiters but leaves no entry, so the next
// submission retries.
func TestCacheFailedCompileNotCached(t *testing.T) {
	fail := errors.New("transient")
	var calls atomic.Int64
	c := newProgCache(8, func(p *ntgd.Program, sem ntgd.Semantics, _ *ntgd.Database) (*ntgd.Solver, error) {
		if calls.Add(1) == 1 {
			return nil, fail
		}
		return realCompile(p, sem, nil)
	})
	if _, _, err := c.get(context.Background(), subsetSrc, ntgd.SO); !errors.Is(err, fail) {
		t.Fatalf("first get err = %v, want the compile failure", err)
	}
	if st := c.stats(); st.Entries != 0 {
		t.Fatalf("failed compile left %d entries", st.Entries)
	}
	if _, _, err := c.get(context.Background(), subsetSrc, ntgd.SO); err != nil {
		t.Fatalf("retry after failed compile: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("compile calls = %d, want 2", calls.Load())
	}
}

// TestCacheWaiterCancellation: a waiter whose context ends while the
// single-flight compile is still running gets its context error; the
// compile itself finishes and serves later requests.
func TestCacheWaiterCancellation(t *testing.T) {
	hold := make(chan struct{})
	compiling := make(chan struct{})
	c := newProgCache(8, func(p *ntgd.Program, sem ntgd.Semantics, _ *ntgd.Database) (*ntgd.Solver, error) {
		close(compiling)
		<-hold
		return realCompile(p, sem, nil)
	})
	winnerDone := make(chan error, 1)
	go func() {
		_, _, err := c.get(context.Background(), subsetSrc, ntgd.SO)
		winnerDone <- err
	}()
	<-compiling // the entry exists and its compile is in flight

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.get(ctx, subsetSrc, ntgd.SO); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter err = %v, want context.Canceled", err)
	}

	close(hold)
	if err := <-winnerDone; err != nil {
		t.Fatalf("winner: %v", err)
	}
	if _, _, err := c.get(context.Background(), subsetSrc, ntgd.SO); err != nil {
		t.Fatalf("after compile completes: %v", err)
	}
}
