// Package ground implements the front half of the paper's LP approach
// to stable model semantics (Section 3.1): Skolemization of NTGDs
// (existentially quantified head variables are replaced by Skolem
// function terms over the rule's universally quantified variables) and
// a bottom-up "relevant" grounder that instantiates the resulting
// normal program over its derivable Herbrand base, producing a ground
// program for internal/asp.
package ground

import (
	"fmt"

	"ntgd/internal/logic"
)

// Skolemize returns the Skolemization sk(Σ) of the rule set: every
// existentially quantified variable Z of (disjunct i of) rule σ is
// replaced by the function term f_σ[_i]_Z(X,Y) over all universally
// quantified variables of σ, following the paper's
// "ψ(X, f_σ(X,Y)) ← ϕ(X,Y)". Rules without existentials are returned
// unchanged (shared). The input is not modified.
func Skolemize(rules []*logic.Rule) []*logic.Rule {
	out := make([]*logic.Rule, len(rules))
	for ri, r := range rules {
		if !r.HasExistentials() {
			out[ri] = r
			continue
		}
		// Universal variables in first-occurrence order over the body.
		var univ []string
		seen := make(map[string]bool)
		var buf []string
		for _, l := range r.Body {
			buf = l.Atom.Vars(buf[:0])
			for _, v := range buf {
				if !seen[v] {
					seen[v] = true
					univ = append(univ, v)
				}
			}
		}
		args := make([]logic.Term, len(univ))
		for i, v := range univ {
			args[i] = logic.V(v)
		}
		sk := &logic.Rule{Label: r.Label, Body: r.Body}
		for i := range r.Heads {
			sub := make(logic.Subst)
			for _, z := range r.ExistVars(i) {
				name := skolemName(r.Label, len(r.Heads) > 1, i, z)
				sub[z] = logic.F(name, args...)
			}
			sk.Heads = append(sk.Heads, sub.ApplyAtoms(r.Heads[i]))
		}
		out[ri] = sk
	}
	return out
}

func skolemName(label string, disjunctive bool, disjunct int, z string) string {
	if disjunctive {
		return fmt.Sprintf("sk_%s_%d_%s", label, disjunct, z)
	}
	return fmt.Sprintf("sk_%s_%s", label, z)
}

// IsSkolemized reports whether no rule has existential head variables
// (i.e. the set is a normal — possibly disjunctive — logic program with
// function symbols).
func IsSkolemized(rules []*logic.Rule) bool {
	for _, r := range rules {
		if r.HasExistentials() {
			return false
		}
	}
	return true
}
