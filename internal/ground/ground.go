package ground

import (
	"errors"
	"fmt"

	"ntgd/internal/asp"
	"ntgd/internal/logic"
)

// ErrBudget is returned when grounding exceeds its budget, e.g. for a
// non-weakly-acyclic Skolemized program whose Herbrand expansion is
// infinite.
var ErrBudget = errors.New("ground: atom/instance budget exhausted")

// Options bounds the grounding.
type Options struct {
	// MaxAtoms bounds the derivable Herbrand base (0 = 1<<18).
	MaxAtoms int
	// MaxInstances bounds the number of ground rules (0 = 1<<20).
	MaxInstances int
}

// Grounding is a ground program together with its atom table.
type Grounding struct {
	// Atoms maps atom id -> ground atom.
	Atoms []logic.Atom
	// Prog is the propositional program (facts included as rules with
	// empty bodies).
	Prog *asp.Program

	ids map[string]int
}

// AtomID returns the id of a ground atom and whether it is part of the
// derivable base.
func (g *Grounding) AtomID(a logic.Atom) (int, bool) {
	id, ok := g.ids[a.Key()]
	return id, ok
}

// ModelStore converts a propositional model back to a fact store over
// the original vocabulary.
func (g *Grounding) ModelStore(m asp.Model) *logic.FactStore {
	atoms := make([]logic.Atom, len(m))
	for i, id := range m {
		atoms[i] = g.Atoms[id]
	}
	return logic.StoreOf(atoms...)
}

// Ground instantiates a Skolemized (existential-free) program over its
// derivable Herbrand base: the base is the least fixpoint obtained by
// treating every rule as positive (negative literals ignored, all head
// disjuncts derived), which over-approximates every stable model;
// ground rules are then emitted for every homomorphism of the positive
// body into the base. Negative literals whose instance is outside the
// base are vacuously true and dropped. This "relevant grounding" has
// the same stable models as the full Herbrand instantiation.
func Ground(db *logic.FactStore, rules []*logic.Rule, opt Options) (*Grounding, error) {
	if !IsSkolemized(rules) {
		return nil, fmt.Errorf("ground: rules must be Skolemized first (existential head variables present)")
	}
	if opt.MaxAtoms <= 0 {
		opt.MaxAtoms = 1 << 18
	}
	if opt.MaxInstances <= 0 {
		opt.MaxInstances = 1 << 20
	}

	// Phase 1: derivable base, computed semi-naively: after the first
	// round each rule's body homomorphisms are seeded from the atoms
	// added in the previous round (logic.FindHomsFrom), so a round
	// costs O(new facts) instead of re-scanning the whole base.
	base := db.Clone()
	for from := 0; ; {
		mark := base.Len()
		var additions []logic.Atom
		pending := make(map[string]bool)
		var overflow error
		for _, r := range rules {
			rule := r
			logic.FindHomsFrom(rule.PosBody(), nil, base, from, logic.Subst{}, func(h logic.Subst) bool {
				for _, d := range rule.Heads {
					for _, a := range d {
						g := h.ApplyAtom(a)
						if k := g.Key(); !base.Has(g) && !pending[k] {
							pending[k] = true
							additions = append(additions, g)
						}
					}
				}
				if base.Len()+len(additions) > opt.MaxAtoms {
					overflow = ErrBudget
					return false
				}
				return true
			})
			if overflow != nil {
				return nil, overflow
			}
		}
		from = mark
		if base.AddAll(additions) == 0 {
			break
		}
		if base.Len() > opt.MaxAtoms {
			return nil, ErrBudget
		}
	}

	g := &Grounding{ids: make(map[string]int, base.Len())}
	for _, a := range base.Atoms() {
		g.ids[a.Key()] = len(g.Atoms)
		g.Atoms = append(g.Atoms, a)
	}
	prog := &asp.Program{NAtoms: len(g.Atoms)}
	prog.Names = make([]string, len(g.Atoms))
	for i, a := range g.Atoms {
		prog.Names[i] = a.String()
	}

	// Facts.
	for _, a := range db.Atoms() {
		id := g.ids[a.Key()]
		prog.Rules = append(prog.Rules, asp.Rule{Disjuncts: [][]int{{id}}})
	}

	// Phase 2: rule instances.
	seen := make(map[string]bool)
	for _, r := range rules {
		rule := r
		var overflow error
		logic.FindHoms(rule.PosBody(), nil, base, logic.Subst{}, func(h logic.Subst) bool {
			gr := asp.Rule{}
			for _, b := range rule.PosBody() {
				gr.Pos = append(gr.Pos, g.ids[h.ApplyAtom(b).Key()])
			}
			for _, n := range rule.NegBody() {
				inst := h.ApplyAtom(n)
				if id, ok := g.ids[inst.Key()]; ok {
					gr.Neg = append(gr.Neg, id)
				}
				// else: the negative literal is vacuously true.
			}
			for _, d := range rule.Heads {
				var disj []int
				for _, a := range d {
					disj = append(disj, g.ids[h.ApplyAtom(a).Key()])
				}
				gr.Disjuncts = append(gr.Disjuncts, disj)
			}
			key := ruleKey(gr)
			if !seen[key] {
				seen[key] = true
				prog.Rules = append(prog.Rules, gr)
				if len(prog.Rules) > opt.MaxInstances {
					overflow = ErrBudget
					return false
				}
			}
			return true
		})
		if overflow != nil {
			return nil, overflow
		}
	}
	g.Prog = prog
	return g, nil
}

func ruleKey(r asp.Rule) string {
	var b []byte
	for _, d := range r.Disjuncts {
		b = append(b, 'd')
		for _, a := range d {
			b = appendInt(b, a)
		}
	}
	b = append(b, 'p')
	for _, a := range r.Pos {
		b = appendInt(b, a)
	}
	b = append(b, 'n')
	for _, a := range r.Neg {
		b = appendInt(b, a)
	}
	return string(b)
}

func appendInt(b []byte, v int) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), ',')
}
