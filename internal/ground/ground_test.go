package ground_test

import (
	"strings"
	"testing"

	"ntgd/internal/ground"
	"ntgd/internal/logic"
	"ntgd/internal/parser"
)

func TestSkolemizeShape(t *testing.T) {
	prog := parser.MustParse(`
person(X) -> hasFather(X,Y).
hasFather(X,Y) -> sameAs(Y,Y).
`)
	sk := ground.Skolemize(prog.Rules)
	if !ground.IsSkolemized(sk) {
		t.Fatalf("output still has existentials")
	}
	// Rule 1: head hasFather(X, sk_r1_Y(X)).
	head := sk[0].Heads[0][0]
	if head.Args[1].Kind != logic.Func {
		t.Fatalf("expected Skolem term, got %v", head.Args[1])
	}
	if !strings.Contains(head.Args[1].Name, "r1") || len(head.Args[1].Args) != 1 {
		t.Fatalf("Skolem term should be sk_r1_Y(X), got %v", head.Args[1])
	}
	// Rule 2 has no existentials and is shared unchanged.
	if sk[1] != prog.Rules[1] {
		t.Fatalf("existential-free rules should be passed through")
	}
}

func TestSkolemizeDisjunctivePerDisjunct(t *testing.T) {
	prog := parser.MustParse(`r(X) -> p(X,Y) | q(X,Z).`)
	sk := ground.Skolemize(prog.Rules)
	p := sk[0].Heads[0][0].Args[1]
	q := sk[0].Heads[1][0].Args[1]
	if p.Kind != logic.Func || q.Kind != logic.Func || p.Name == q.Name {
		t.Fatalf("disjuncts must get distinct Skolem functions: %v vs %v", p, q)
	}
}

func TestSkolemFunctionTakesAllUniversals(t *testing.T) {
	// The paper Skolemizes over X *and* Y (all universal variables).
	prog := parser.MustParse(`p(X), q(X,Y) -> r(X,Z).`)
	sk := ground.Skolemize(prog.Rules)
	z := sk[0].Heads[0][0].Args[1]
	if len(z.Args) != 2 {
		t.Fatalf("Skolem term should take both X and Y: %v", z)
	}
}

func TestGroundRelevantInstantiation(t *testing.T) {
	prog := parser.MustParse(`
p(a). p(b).
p(X) -> q(X).
q(X), not r(X) -> s(X).
`)
	g, err := ground.Ground(prog.Database(), ground.Skolemize(prog.Rules), ground.Options{})
	if err != nil {
		t.Fatalf("Ground: %v", err)
	}
	// Base: p(a), p(b), q(a), q(b), s(a), s(b) — r is never derivable.
	if len(g.Atoms) != 6 {
		t.Fatalf("derivable base = %d atoms, want 6", len(g.Atoms))
	}
	// r(X) never derivable → the negative literal is dropped.
	for _, r := range g.Prog.Rules {
		if len(r.Neg) != 0 {
			t.Fatalf("vacuously true negative literal should be dropped")
		}
	}
	if _, ok := g.AtomID(logic.A("q", logic.C("a"))); !ok {
		t.Fatalf("q(a) should be in the base")
	}
	if _, ok := g.AtomID(logic.A("r", logic.C("a"))); ok {
		t.Fatalf("r(a) must not be in the base")
	}
}

func TestGroundKeepsRelevantNegatives(t *testing.T) {
	prog := parser.MustParse(`
p(a).
p(X), not q(X) -> s(X).
p(X), not s(X) -> q(X).
`)
	g, err := ground.Ground(prog.Database(), prog.Rules, ground.Options{})
	if err != nil {
		t.Fatalf("Ground: %v", err)
	}
	negs := 0
	for _, r := range g.Prog.Rules {
		negs += len(r.Neg)
	}
	if negs != 2 {
		t.Fatalf("both negative literals are relevant, kept %d", negs)
	}
}

func TestGroundRejectsExistentials(t *testing.T) {
	prog := parser.MustParse(`p(a). p(X) -> q(X,Y).`)
	if _, err := ground.Ground(prog.Database(), prog.Rules, ground.Options{}); err == nil {
		t.Fatalf("grounding requires Skolemized input")
	}
}

func TestGroundBudget(t *testing.T) {
	// Skolemized non-WA program has an infinite Herbrand expansion.
	prog := parser.MustParse(`
node(a).
node(X) -> succ(X,Y).
succ(X,Y) -> node(Y).
`)
	sk := ground.Skolemize(prog.Rules)
	if _, err := ground.Ground(prog.Database(), sk, ground.Options{MaxAtoms: 64}); err == nil {
		t.Fatalf("expected budget error")
	}
}

func TestModelStoreRoundTrip(t *testing.T) {
	prog := parser.MustParse(`
p(a).
p(X) -> q(X).
`)
	g, err := ground.Ground(prog.Database(), prog.Rules, ground.Options{})
	if err != nil {
		t.Fatalf("Ground: %v", err)
	}
	idP, _ := g.AtomID(logic.A("p", logic.C("a")))
	idQ, _ := g.AtomID(logic.A("q", logic.C("a")))
	st := g.ModelStore([]int{idP, idQ})
	if !st.Has(logic.A("q", logic.C("a"))) || st.Len() != 2 {
		t.Fatalf("ModelStore wrong: %s", st.CanonicalString())
	}
}
