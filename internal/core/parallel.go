package core

// This file holds the run-scoped machinery of one enumeration: the
// state shared by every worker of the pool (cumulative counters, the
// global stop flag, the deduplicating model sink) and the fork-join
// worker pool that explores independent branch subtrees concurrently.
//
// Parallelism model. The search tree's branch children are mutually
// independent: PR 2 made every child an O(1) copy-on-write snapshot of
// its parent's fact store plus its own agenda, so sibling subtrees
// share nothing they write. The pool exploits exactly that: whenever a
// worker creates a branch child and a pool slot is free, the child
// subtree is handed to a fresh worker goroutine (idle capacity steals
// the work); otherwise the worker descends inline, preserving plain
// depth-first order. Per-node behavior is untouched — branch-trigger
// selection order, witness-pool construction, and the deterministic
// closure are identical to the sequential search, which is what makes
// the canonical model set invariant (see below).
//
// Safety rests on a freeze discipline, not on store locks: a state's
// layer stops growing before its children are snapshotted, and the
// goroutine spawn that hands a child to a worker establishes the
// happens-before edge covering every earlier write to the parent
// chain. See the concurrency notes on logic.FactStore. The only
// mutable state shared between workers is in this file (atomics and
// the mutex-guarded sink) plus the lazily cached trigger key, which is
// an atomic pointer (see triggerKey).
//
// Determinism. A complete run (no cancellation, no budget, no visitor
// stop) explores exactly the same set of search nodes for every worker
// count, so the canonical stable-model set is bit-identical to the
// sequential search. Only the delivery order — and, for models whose
// canonical keys collide across different subtrees, which concrete
// null labeling is delivered first — depends on scheduling; Workers ==
// 1 additionally guarantees the exact sequential order.

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"ntgd/internal/engine"
	"ntgd/internal/failpoint"
	"ntgd/internal/logic"
)

// run is the state of one enumeration shared by every worker: the
// compiled artifacts (read-only for the duration of the run), the
// pool, the deduplicating model sink, and the cumulative counters.
type run struct {
	rules        []*logic.Rule
	db           *logic.FactStore
	opt          Options
	ruleDet      []bool
	ruleVars     [][]string
	rulePosPreds [][]string
	// rulePos/ruleNeg cache each rule's split body literals for the
	// stability-session encoder (filled lazily by initRuleBodies);
	// rulePlans holds one join-plan cache per rule body, shared by the
	// agenda refreshes and the stability-session delta sweeps of every
	// worker (BodyPlans is safe for concurrent use).
	rulePos   [][]logic.Atom
	ruleNeg   [][]logic.Atom
	rulePlans []*logic.BodyPlans
	// dbAtomStr caches the rendered database atoms — the prefix of every
	// leaf store — and dbHasNulls records whether the database or the
	// witness-pool extras contain labeled nulls; together they feed the
	// null-free fast path of modelKey.
	dbAtomStr  []string
	dbHasNulls bool
	// naive switches trigger detection to the full-rescan oracle
	// (findTriggerNaive); used by the differential tests only, and
	// always sequential.
	naive bool
	// ctx cancels the search; it is checked at every node alongside
	// MaxNodes.
	ctx context.Context

	// nodes is the shared node counter: it is both the Nodes stat and
	// the MaxNodes budget, so the budget is global across workers.
	nodes atomic.Int64
	// stop asks every worker to unwind: set on visitor stop, node
	// budget exhaustion, and cancellation.
	stop atomic.Bool
	// exhausted records that a budget was hit (MaxNodes, or MaxAtoms on
	// some branch); unlike stop it does not end the search by itself —
	// a MaxAtoms hit only kills its branch.
	exhausted atomic.Bool
	// mem is the run's retained-allocation proxy — facts added on any
	// branch plus stability-clause literals — compared against the
	// MaxMemory watermark; memHit records that the watermark tripped,
	// which stops the whole run (see chargeMem).
	mem    atomic.Int64
	memHit atomic.Bool

	// tokens is the pool: capacity Workers-1 (the root worker holds an
	// implicit slot), nil for a sequential run. A worker forks a branch
	// child only when a token is free, bounding live goroutines.
	tokens chan struct{}
	wg     sync.WaitGroup
	// models carries stability-checked, deduplicated models from the
	// workers to the caller goroutine, which owns the visitor — user
	// code must never run on a pool goroutine. nil for a sequential
	// run, where the single worker calls the visitor in place.
	models chan *logic.FactStore
	// done is closed when the visitor stops the enumeration, releasing
	// workers blocked on a models send.
	done chan struct{}

	mu sync.Mutex
	// seen deduplicates models by canonical key across all workers.
	// Marking happens after the stability check, just before delivery,
	// exactly as in the sequential search.
	seen map[string]bool
	// visit is the sequential-mode visitor (parallel mode delivers via
	// the models channel instead).
	visit func(*logic.FactStore) bool
	// stats accumulates finished workers' local counters.
	stats Stats
	// ctxErr records the first cancellation cause.
	ctxErr error
	// intErr records the first worker panic, recovered at the worker
	// boundary and typed *engine.InternalError (see runWorker). It
	// outranks ctxErr in finalStats: an internal fault carries the
	// stack a host needs, while cancellation is ambient.
	intErr error
	// stopped records that the visitor ended the enumeration (which is
	// not an error, unlike ctxErr).
	stopped bool
	// emitted counts models delivered to the visitor. Sequential mode
	// writes it from the single worker; parallel mode only from the
	// caller goroutine draining the models channel.
	emitted int64
}

// initRuleBodies fills the run's per-rule split-body and join-plan
// caches.
func (r *run) initRuleBodies() {
	r.rulePos = make([][]logic.Atom, len(r.rules))
	r.ruleNeg = make([][]logic.Atom, len(r.rules))
	r.rulePlans = make([]*logic.BodyPlans, len(r.rules))
	for i, rule := range r.rules {
		r.rulePos[i], r.ruleNeg[i] = logic.SplitLiterals(rule.Body)
		r.rulePlans[i] = logic.NewBodyPlans(r.rulePos[i], r.ruleNeg[i])
	}
}

// resolveWorkers picks the pool size: an explicit per-run override
// wins over the compiled option, 0 defaults to GOMAXPROCS, and the
// naive differential oracle is always sequential.
func resolveWorkers(compiled, perRun int, naive bool) int {
	w := compiled
	if perRun != 0 {
		w = perRun
	}
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if naive || w < 1 {
		w = 1
	}
	return w
}

// cancelWith records the first cancellation cause and stops the pool.
func (r *run) cancelWith(err error) {
	r.mu.Lock()
	if r.ctxErr == nil {
		r.ctxErr = err
	}
	r.mu.Unlock()
	r.stop.Store(true)
}

// failWith records a recovered panic (first fault wins) as a typed
// internal error and stops the pool. The stack is captured here, at the
// recovery point, so it still shows the panic origin.
func (r *run) failWith(v any) {
	ie := engine.NewInternalError(v)
	r.mu.Lock()
	if r.intErr == nil {
		r.intErr = ie
	}
	r.mu.Unlock()
	r.stop.Store(true)
}

// chargeMem adds n bytes to the run's retained-allocation watermark
// (packed-tuple bytes for facts, litBytes per stability literal) and
// trips the memory watermark once the total passes MaxMemory. Tripping
// stops the whole run (not just a branch): the watermark measures
// retained growth across all branches, which killing one subtree
// cannot undo.
func (r *run) chargeMem(n int64) {
	if r.opt.MaxMemory <= 0 || n <= 0 {
		return
	}
	if r.mem.Add(n) > r.opt.MaxMemory {
		r.memHit.Store(true)
		r.stop.Store(true)
	}
}

// runWorker is the recovery boundary of every search worker — the
// sequential search, the parallel root, and each forked subtree alike:
// a panic anywhere under dfs (trigger machinery, stability sessions,
// the SAT solver, store snapshots) is recovered here, converted to a
// typed internal error, and turned into a pool-wide stop, so the
// remaining workers unwind cleanly, the pool joins, and the Compiled
// engine stays reusable. Partial worker stats survive the fault.
func (r *run) runWorker(st *state) {
	w := &searcher{run: r}
	defer func() {
		if v := recover(); v != nil {
			r.failWith(v)
		}
		r.mergeStats(w.stats)
	}()
	failpoint.Inject(failpoint.CoreFork)
	w.dfs(st)
}

// safeVisit shields the pool from a panicking visitor in parallel mode:
// the panic is recovered on the caller goroutine (where the visitor
// runs), recorded as an internal fault, and treated as a stop so the
// workers drain and join. (The public Solver layer re-raises visitor
// panics instead — engine.Guard intercepts them before they reach the
// engine — so this path serves direct core callers, whose plain
// callback contract allows a typed error.) Sequential mode needs no
// shield: the visitor runs under runWorker's recovery.
func (r *run) safeVisit(visit func(*logic.FactStore) bool, m *logic.FactStore) (ok bool) {
	defer func() {
		if v := recover(); v != nil {
			r.failWith(v)
			ok = false
		}
	}()
	return visit(m)
}

// mergeStats folds a finished worker's local counters into the run.
func (r *run) mergeStats(st Stats) {
	r.mu.Lock()
	r.stats.Add(st)
	r.mu.Unlock()
}

// seenKey reports whether a canonical model key was already emitted.
func (r *run) seenKey(key string) bool {
	r.mu.Lock()
	ok := r.seen[key]
	r.mu.Unlock()
	return ok
}

// emit delivers a stability-checked model. Two workers may reach the
// same canonical key concurrently (each paying its own stability
// check); the seen map is re-checked under the lock so exactly one
// wins — the same first-wins dedup the sequential search performs,
// which keeps the emitted canonical model set identical. Reports
// false when the enumeration should stop.
func (r *run) emit(key string, m *logic.FactStore) bool {
	// The failpoint sits before the critical section: a fault must
	// never unwind while holding run.mu.
	failpoint.Inject(failpoint.CoreSink)
	r.mu.Lock()
	if r.seen[key] || r.stopped {
		stopped := r.stopped
		r.mu.Unlock()
		return !stopped
	}
	r.seen[key] = true
	r.mu.Unlock()
	if r.models == nil {
		// Sequential: the single worker runs on the caller goroutine
		// and may call the visitor directly.
		r.emitted++
		if !r.visit(m) {
			r.stopped = true
			r.stop.Store(true)
			return false
		}
		return true
	}
	select {
	case r.models <- m:
		return !r.stop.Load()
	case <-r.done:
		return false
	}
}

// consume runs on the caller goroutine, feeding the visitor from the
// models channel until the pool drains. After the visitor stops, the
// loop keeps discarding queued models so blocked workers wind down;
// the channel is closed once every worker has exited.
func (r *run) consume(visit func(*logic.FactStore) bool) {
	for m := range r.models {
		r.mu.Lock()
		stopped := r.stopped
		r.mu.Unlock()
		if stopped {
			continue
		}
		r.emitted++
		if !r.safeVisit(visit, m) {
			r.mu.Lock()
			r.stopped = true
			r.mu.Unlock()
			r.stop.Store(true)
			close(r.done)
		}
	}
}

// explore runs a branch child subtree: inline (plain depth-first
// order) unless a pool slot is free, in which case the subtree is
// handed to a fresh worker goroutine and explored concurrently with
// its siblings. Forked subtrees report failure through the shared
// stop flag rather than the return value.
//
// A forked child takes a clone of the stability-session arena
// (copy-on-extend): the parent worker keeps extending and solving its
// own arena for the remaining siblings, so the two goroutines must not
// share the mutable solver. The frozen ancestor session layers are
// shared by both chains — their variable and homomorphism identities
// are valid in the clone, which copies the arena as a prefix. The
// clone happens before the goroutine spawn, on the parent's goroutine,
// so the spawn's happens-before edge covers it.
func (s *searcher) explore(child *state) bool {
	r := s.run
	if r.stop.Load() {
		return false
	}
	if r.tokens != nil {
		select {
		case r.tokens <- struct{}{}:
			if child.sess != nil {
				child.sess.arena = child.sess.arena.clone()
			}
			r.wg.Add(1)
			go func() {
				defer func() {
					<-r.tokens
					r.wg.Done()
				}()
				r.runWorker(child)
			}()
			return true
		default:
		}
	}
	return s.dfs(child)
}

// finalStats assembles the run's Stats after every worker has joined,
// along with the terminal fault: a recovered internal panic outranks a
// cancellation cause (nil when neither occurred).
func (r *run) finalStats() (Stats, error) {
	r.mu.Lock()
	st := r.stats
	err := r.intErr
	if err == nil {
		err = r.ctxErr
	}
	r.mu.Unlock()
	st.Nodes = r.nodes.Load()
	st.ModelsEmitted = r.emitted
	return st, err
}

// execute runs the search from the root state with the given pool
// size, delivering models to visit on the caller's goroutine, and
// returns the uniform (Stats, exhausted, error) triple of
// engine.Engine.Enumerate.
func (r *run) execute(root *state, workers int, visit func(*logic.FactStore) bool) (Stats, bool, error) {
	if workers <= 1 {
		r.visit = visit
		r.runWorker(root)
	} else {
		r.tokens = make(chan struct{}, workers-1)
		r.models = make(chan *logic.FactStore, workers)
		r.done = make(chan struct{})
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.runWorker(root)
		}()
		go func() {
			// Close the sink only after the root worker and every
			// forked subtree have exited; consume then terminates and
			// no goroutine outlives the enumeration.
			r.wg.Wait()
			close(r.models)
		}()
		r.consume(visit)
	}
	// Terminal-state resolution, in decreasing severity: a recovered
	// internal fault, then cancellation, then the memory watermark, then
	// a node/atom budget — each with the partial stats accumulated so
	// far and Exhausted set (the enumeration may be incomplete).
	stats, termErr := r.finalStats()
	if termErr != nil {
		return stats, true, termErr
	}
	if r.memHit.Load() {
		return stats, true, engine.ErrMemory
	}
	var err error
	exhausted := r.exhausted.Load()
	if exhausted {
		err = ErrBudget
	}
	return stats, exhausted, err
}
