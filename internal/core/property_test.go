package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"ntgd/internal/classify"
	"ntgd/internal/core"
	"ntgd/internal/logic"
	"ntgd/internal/parser"
)

// randomWAProgram generates a small random weakly-acyclic NTGD program
// (rejection sampling on the weak-acyclicity test) over unary and
// binary predicates.
func randomWAProgram(rng *rand.Rand) *logic.Program {
	for {
		var src string
		consts := []string{"c0", "c1"}
		unary := []string{"u0", "u1", "u2"}
		binary := []string{"b0", "b1"}
		for i := 0; i < 1+rng.Intn(2); i++ {
			src += fmt.Sprintf("%s(%s).\n", unary[rng.Intn(len(unary))], consts[rng.Intn(len(consts))])
		}
		for i := 0; i < 1+rng.Intn(3); i++ {
			switch rng.Intn(4) {
			case 0: // existential rule u(X) -> b(X,Y)
				src += fmt.Sprintf("%s(X) -> %s(X,Y).\n", unary[rng.Intn(len(unary))], binary[rng.Intn(len(binary))])
			case 1: // projection b(X,Y) -> u(Y)
				src += fmt.Sprintf("%s(X,Y) -> %s(Y).\n", binary[rng.Intn(len(binary))], unary[rng.Intn(len(unary))])
			case 2: // default rule u(X), not u'(X) -> u''(X)
				src += fmt.Sprintf("%s(X), not %s(X) -> %s(X).\n",
					unary[rng.Intn(len(unary))], unary[rng.Intn(len(unary))], unary[rng.Intn(len(unary))])
			default: // copy rule
				src += fmt.Sprintf("%s(X) -> %s(X).\n", unary[rng.Intn(len(unary))], unary[rng.Intn(len(unary))])
			}
		}
		prog, err := parser.Parse(src)
		if err != nil {
			continue
		}
		if classify.IsWeaklyAcyclic(prog.Rules) {
			return prog
		}
	}
}

// TestRandomWAProgramsCrossValidated is the engine's strongest
// property test: on random weakly-acyclic NTGD programs, every
// enumerated stable model must
//
//  1. pass the independent Definition 1 checker (model-hood + SAT
//     stability),
//  2. satisfy Lemma 7 (M⁺ = T∞_{Σ,M}(D)), and
//  3. be a minimal model (stable models are minimal, Section 3.2).
func TestRandomWAProgramsCrossValidated(t *testing.T) {
	if testing.Short() {
		t.Skip("random cross-validation is slow")
	}
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 40; iter++ {
		prog := randomWAProgram(rng)
		db := prog.Database()
		res, err := core.StableModels(db, prog.Rules, core.Options{MaxModels: 20, MaxNodes: 200000})
		if err != nil {
			continue // budget hit on an unlucky instance: skip
		}
		for _, m := range res.Models {
			if !core.IsStableModel(db, prog.Rules, m) {
				t.Fatalf("iter %d: emitted model fails Definition 1 on\n%s\nmodel: %s",
					iter, prog, m.CanonicalString())
			}
			tinf := core.TInfinity(db, prog.Rules, m)
			if !tinf.Equal(m) {
				t.Fatalf("iter %d: Lemma 7 violated on\n%s\nmodel: %s\nT∞:    %s",
					iter, prog, m.CanonicalString(), tinf.CanonicalString())
			}
			if m.Len()-db.Len() <= 12 && !core.IsMinimalModel(db, prog.Rules, m) {
				t.Fatalf("iter %d: stable model is not minimal on\n%s\nmodel: %s",
					iter, prog, m.CanonicalString())
			}
		}
	}
}

// TestRandomModelsRejectedCorrectly: mutating a stable model (adding a
// spurious atom over the existing domain) must break stability or
// model-hood — the checker cannot be fooled by supersets.
func TestRandomModelsRejectedCorrectly(t *testing.T) {
	if testing.Short() {
		t.Skip("random rejection testing is slow")
	}
	rng := rand.New(rand.NewSource(88))
	for iter := 0; iter < 30; iter++ {
		prog := randomWAProgram(rng)
		db := prog.Database()
		res, err := core.StableModels(db, prog.Rules, core.Options{MaxModels: 3, MaxNodes: 100000})
		if err != nil || len(res.Models) == 0 {
			continue
		}
		m := res.Models[0].Clone()
		dom := m.Domain()
		if len(dom) == 0 {
			continue
		}
		// Inject an atom not already present.
		injected := false
		for _, p := range []string{"u0", "u1", "u2"} {
			a := logic.A(p, dom[rng.Intn(len(dom))])
			if !m.Has(a) {
				m.Add(a)
				injected = true
				break
			}
		}
		if !injected {
			continue
		}
		if core.IsStableModel(db, prog.Rules, m) {
			// The injected atom could coincidentally be derivable and
			// the enlarged set genuinely stable only if it equals
			// another enumerated model; verify via Lemma 7.
			tinf := core.TInfinity(db, prog.Rules, m)
			if !tinf.Equal(m) {
				t.Fatalf("iter %d: superset accepted but violates Lemma 7 on\n%s", iter, prog)
			}
		}
	}
}

// TestStableImpliesModelAndContainsDB (quick sanity over the fixed
// examples): every stable model contains the database and satisfies
// the rules.
func TestStableImpliesModelAndContainsDB(t *testing.T) {
	prog := mustParse(t, fatherProgram)
	db := prog.Database()
	res, err := core.StableModels(db, prog.Rules, core.Options{})
	if err != nil {
		t.Fatalf("StableModels: %v", err)
	}
	for _, m := range res.Models {
		if !db.SubsetOf(m) {
			t.Fatalf("stable model must contain D")
		}
		if !logic.IsModel(prog.Rules, m) {
			t.Fatalf("stable model must satisfy Σ")
		}
	}
}
