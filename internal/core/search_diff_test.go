package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"ntgd/internal/logic"
	"ntgd/internal/parser"
)

// randomSearchProgram generates a small program exercising everything
// the stable-model search branches on: default negation, disjunction,
// and existential head variables — including programs with an empty
// database and rules with empty positive bodies (disjunctive facts,
// ground negation-only rules), which only the root agenda sweep can
// discover. Programs are kept small enough that the search terminates
// well inside the test budgets.
func randomSearchProgram(rng *rand.Rand) *logic.Program {
	consts := []string{"a", "b", "c"}
	unary := []string{"p", "q", "r", "s"}
	binary := []string{"e", "f"}
	var b strings.Builder
	for i := 0; i < rng.Intn(4); i++ {
		if rng.Intn(3) == 0 {
			fmt.Fprintf(&b, "%s(%s,%s).\n", binary[rng.Intn(len(binary))],
				consts[rng.Intn(len(consts))], consts[rng.Intn(len(consts))])
		} else {
			fmt.Fprintf(&b, "%s(%s).\n", unary[rng.Intn(len(unary))], consts[rng.Intn(len(consts))])
		}
	}
	for i := 0; i < 1+rng.Intn(3); i++ {
		switch rng.Intn(10) {
		case 0: // choice pair
			x, y, z := unary[rng.Intn(len(unary))], unary[rng.Intn(len(unary))], unary[rng.Intn(len(unary))]
			fmt.Fprintf(&b, "%s(X), not %s(X) -> %s(X).\n", x, y, z)
		case 1: // disjunction
			fmt.Fprintf(&b, "%s(X) -> %s(X) | %s(X).\n", unary[rng.Intn(len(unary))],
				unary[rng.Intn(len(unary))], unary[rng.Intn(len(unary))])
		case 2: // existential
			fmt.Fprintf(&b, "%s(X) -> %s(X,Y).\n", unary[rng.Intn(len(unary))], binary[rng.Intn(len(binary))])
		case 3: // projection
			fmt.Fprintf(&b, "%s(X,Y) -> %s(Y).\n", binary[rng.Intn(len(binary))], unary[rng.Intn(len(unary))])
		case 4: // join with negation
			fmt.Fprintf(&b, "%s(X,Y), not %s(Y) -> %s(X).\n", binary[rng.Intn(len(binary))],
				unary[rng.Intn(len(unary))], unary[rng.Intn(len(unary))])
		case 5: // disjunctive fact (empty positive body)
			fmt.Fprintf(&b, "-> %s(%s) | %s(%s).\n",
				unary[rng.Intn(len(unary))], consts[rng.Intn(len(consts))],
				unary[rng.Intn(len(unary))], consts[rng.Intn(len(consts))])
		case 6: // ground negation-only rule (empty positive body)
			fmt.Fprintf(&b, "not %s(%s) -> %s(%s).\n",
				unary[rng.Intn(len(unary))], consts[rng.Intn(len(consts))],
				unary[rng.Intn(len(unary))], consts[rng.Intn(len(consts))])
		case 7: // negation-free constraint (deterministic branch kill)
			fmt.Fprintf(&b, ":- %s(X), %s(X).\n",
				unary[rng.Intn(len(unary))], unary[rng.Intn(len(unary))])
		case 8: // constraint with negation (deferrable)
			fmt.Fprintf(&b, ":- %s(X), not %s(X).\n",
				unary[rng.Intn(len(unary))], unary[rng.Intn(len(unary))])
		default: // copy
			fmt.Fprintf(&b, "%s(X) -> %s(X).\n", unary[rng.Intn(len(unary))], unary[rng.Intn(len(unary))])
		}
	}
	prog, err := parser.Parse(b.String())
	if err != nil {
		return nil
	}
	for _, r := range prog.Rules {
		if r.Validate() != nil {
			return nil
		}
	}
	return prog
}

// canonicalModelSet enumerates all stable models under the given
// options and returns their canonical keys, sorted, plus the budget
// flag.
func canonicalModelSet(t *testing.T, db *logic.FactStore, rules []*logic.Rule, opt Options, naive bool) ([]string, bool) {
	t.Helper()
	var keys []string
	run := EnumStableModels
	if naive {
		run = enumStableModelsNaive
	}
	_, exhausted, err := run(db, rules, opt, func(m *logic.FactStore) bool {
		keys = append(keys, canonicalModelKey(m))
		return true
	})
	if err != nil && !exhausted {
		t.Fatalf("search error: %v", err)
	}
	sort.Strings(keys)
	return keys, exhausted
}

// TestAgendaMatchesNaiveRandomized pins the delta-driven agenda search
// to the findTriggerNaive full-rescan oracle on 220 random programs
// with negation, disjunction, and existentials: both must emit exactly
// the same canonical model set. Exploration order (and hence stats) may
// differ; budget-exhausted runs are order-dependent and skipped.
func TestAgendaMatchesNaiveRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(1712))
	opt := Options{MaxAtoms: 48, MaxNodes: 1 << 17}
	compared, generated := 0, 0
	for generated < 220 {
		prog := randomSearchProgram(rng)
		if prog == nil {
			continue
		}
		generated++
		db := prog.Database()
		agendaKeys, exA := canonicalModelSet(t, db, prog.Rules, opt, false)
		naiveKeys, exN := canonicalModelSet(t, db, prog.Rules, opt, true)
		if exA || exN {
			continue // incomplete enumerations are order-dependent
		}
		if fmt.Sprint(agendaKeys) != fmt.Sprint(naiveKeys) {
			t.Fatalf("model sets diverge on program #%d:\n%s\nagenda: %d models %v\nnaive:  %d models %v",
				generated, progString(prog), len(agendaKeys), agendaKeys, len(naiveKeys), naiveKeys)
		}
		// Parallel pinning: the worker pool must emit exactly the
		// sequential canonical model set at every pool size (delivery
		// order may differ; the set may not).
		for _, w := range []int{2, 8} {
			popt := opt
			popt.Workers = w
			parKeys, exP := canonicalModelSet(t, db, prog.Rules, popt, false)
			if exP {
				continue
			}
			if fmt.Sprint(parKeys) != fmt.Sprint(naiveKeys) {
				t.Fatalf("parallel model set diverges at workers=%d on program #%d:\n%s\nparallel: %d models %v\nnaive:    %d models %v",
					w, generated, progString(prog), len(parKeys), parKeys, len(naiveKeys), naiveKeys)
			}
		}
		// Planner differential (PR 6): branch-trigger selection is
		// plan-independent, so disabling the join planner must leave the
		// canonical model set untouched, sequentially and in parallel.
		restore := logic.SetJoinPlanning(false)
		offKeys, exO := canonicalModelSet(t, db, prog.Rules, opt, false)
		popt := opt
		popt.Workers = 8
		offPar, exOP := canonicalModelSet(t, db, prog.Rules, popt, false)
		restore()
		if !exO && fmt.Sprint(offKeys) != fmt.Sprint(naiveKeys) {
			t.Fatalf("planner-off model set diverges on program #%d:\n%s\noff: %d models %v\non:  %d models %v",
				generated, progString(prog), len(offKeys), offKeys, len(naiveKeys), naiveKeys)
		}
		if !exOP && fmt.Sprint(offPar) != fmt.Sprint(naiveKeys) {
			t.Fatalf("planner-off parallel model set diverges on program #%d:\n%s\noff: %d models %v\non:  %d models %v",
				generated, progString(prog), len(offPar), offPar, len(naiveKeys), naiveKeys)
		}
		compared++
	}
	if compared < 180 {
		t.Fatalf("only %d/220 programs completed within budget; grow the budgets", compared)
	}
	t.Logf("compared %d/%d random programs", compared, generated)
}

// TestAgendaMatchesNaiveOnWorkedExamples repeats the pinning on the
// paper's worked programs, including the query-constant-enlarged
// witness pool.
func TestAgendaMatchesNaiveOnWorkedExamples(t *testing.T) {
	const father = `
person(alice).
person(X) -> hasFather(X,Y).
hasFather(X,Y) -> sameAs(Y,Y).
hasFather(X,Y), hasFather(X,Z), not sameAs(Y,Z) -> abnormal(X).
`
	cases := []struct {
		name  string
		src   string
		extra []logic.Term
	}{
		{"father", father, nil},
		{"father+bob", father, []logic.Term{logic.C("bob")}},
		{"choice", "item(a). item(b). item(c).\nitem(X), not out(X) -> in(X).\nitem(X), not in(X) -> out(X).\n", nil},
		{"coloring", "node(a). node(b). edge(a,b).\nnode(X) -> red(X) | green(X).\nedge(X,Y), red(X), red(Y) -> clash.\nedge(X,Y), green(X), green(Y) -> clash.\n", nil},
		{"no-models", "p(0).\np(X), not t(X) -> r(X).\nr(X) -> t(X).\n", nil},
		{"shared-nulls", "seed(a).\nseed(X) -> pair(Y,Z).\n", nil},
		{"empty-db-disjunctive-fact", "-> p(a) | q(a).\n", nil},
		{"empty-db-negation-only", "not q(a) -> p(a).\nnot p(a) -> q(a).\n", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog := mustParseInternal(t, tc.src)
			db := prog.Database()
			opt := Options{ExtraConstants: tc.extra}
			agendaKeys, _ := canonicalModelSet(t, db, prog.Rules, opt, false)
			naiveKeys, _ := canonicalModelSet(t, db, prog.Rules, opt, true)
			if fmt.Sprint(agendaKeys) != fmt.Sprint(naiveKeys) {
				t.Fatalf("model sets diverge:\nagenda: %v\nnaive:  %v", agendaKeys, naiveKeys)
			}
			if len(agendaKeys) == 0 && tc.name != "no-models" {
				t.Fatalf("expected at least one model")
			}
			for _, w := range []int{2, 8} {
				popt := opt
				popt.Workers = w
				parKeys, _ := canonicalModelSet(t, db, prog.Rules, popt, false)
				if fmt.Sprint(parKeys) != fmt.Sprint(naiveKeys) {
					t.Fatalf("parallel model set diverges at workers=%d:\nparallel: %v\nnaive:    %v", w, parKeys, naiveKeys)
				}
			}
		})
	}
}

func progString(p *logic.Program) string {
	var b strings.Builder
	for _, a := range p.Facts {
		fmt.Fprintf(&b, "%s.\n", a)
	}
	for _, r := range p.Rules {
		fmt.Fprintf(&b, "%s.\n", r)
	}
	return b.String()
}

func mustParseInternal(t *testing.T, src string) *logic.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}
