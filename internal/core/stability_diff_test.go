package core

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"ntgd/internal/logic"
	"ntgd/internal/parser"
)

// sessionModelSet enumerates all stable models through the session
// path with the per-candidate oracle cross-check armed: every
// session verdict is compared against stableAgainstSubsetsNaive, and
// any disagreement counts as a mismatch.
func sessionModelSet(t *testing.T, db *logic.FactStore, rules []*logic.Rule, opt Options, workers int) ([]string, bool, int64) {
	t.Helper()
	var mismatches atomic.Int64
	opt.stabOracle = &mismatches
	opt.Workers = workers
	var keys []string
	_, exhausted, err := EnumStableModels(db, rules, opt, func(m *logic.FactStore) bool {
		keys = append(keys, canonicalModelKey(m))
		return true
	})
	if err != nil && !exhausted {
		t.Fatalf("search error: %v", err)
	}
	sortStrings(keys)
	return keys, exhausted, mismatches.Load()
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// TestStabilitySessionMatchesNaiveRandomized pins the incremental
// stability sessions to the full-rebuild oracle on 200 random programs
// with negation, disjunction, and existentials, at Workers 1 and 8:
// every per-candidate session verdict must equal the naive verdict
// (counted via the stabOracle hook), and the emitted canonical model
// set must equal the naive enumeration's. Run under -race it also
// exercises the copy-on-extend arena cloning at forks.
func TestStabilitySessionMatchesNaiveRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(5417))
	opt := Options{MaxAtoms: 48, MaxNodes: 1 << 17}
	compared, generated := 0, 0
	for generated < 200 {
		prog := randomSearchProgram(rng)
		if prog == nil {
			continue
		}
		generated++
		db := prog.Database()
		naiveKeys, exN := canonicalModelSet(t, db, prog.Rules, opt, true)
		for _, workers := range []int{1, 8} {
			sessKeys, exS, mismatches := sessionModelSet(t, db, prog.Rules, opt, workers)
			if mismatches != 0 {
				t.Fatalf("program %d (workers=%d): %d session/naive verdict mismatches\nprogram:\n%v",
					generated, workers, mismatches, prog)
			}
			if exS || exN {
				continue // incomplete enumerations are order-dependent
			}
			if len(sessKeys) != len(naiveKeys) {
				t.Fatalf("program %d (workers=%d): session %d models, naive %d\nprogram:\n%v",
					generated, workers, len(sessKeys), len(naiveKeys), prog)
			}
			for i := range sessKeys {
				if sessKeys[i] != naiveKeys[i] {
					t.Fatalf("program %d (workers=%d): model %d differs\nsession: %s\nnaive:   %s",
						generated, workers, i, sessKeys[i], naiveKeys[i])
				}
			}
			compared++
		}
		// Planner differential (PR 6): re-run the session path with the
		// join planner disabled — per-candidate verdicts (via the armed
		// oracle) and the canonical model set must be unchanged.
		restore := logic.SetJoinPlanning(false)
		for _, workers := range []int{1, 8} {
			offKeys, exO, mismatches := sessionModelSet(t, db, prog.Rules, opt, workers)
			if mismatches != 0 {
				restore()
				t.Fatalf("program %d (workers=%d, planner off): %d session/naive verdict mismatches\nprogram:\n%v",
					generated, workers, mismatches, prog)
			}
			if exO || exN {
				continue
			}
			if fmt.Sprint(offKeys) != fmt.Sprint(naiveKeys) {
				restore()
				t.Fatalf("program %d (workers=%d): planner-off model set diverges\noff: %v\non:  %v",
					generated, workers, offKeys, naiveKeys)
			}
		}
		restore()
	}
	if compared < 150 {
		t.Fatalf("only %d complete comparisons out of %d programs; budgets too tight", compared, generated)
	}
}

// saturationProgram builds the classic DATALOG∨ saturation encoding of
// certain-K-colorability for a labeled triangle: the saturated
// candidate (every color on every vertex plus w) is a model whose
// stability holds exactly when no proper coloring avoids w. It is the
// worked example that exposed two historical session bugs — a
// single-literal base clause stored as a global unit (poisoning the
// assumption ¬e₀), and an interior extension link superseded within
// its own window being pinned to true.
func saturationProgram(t *testing.T, colors int) *logic.Program {
	t.Helper()
	src := `
vtx(a). vtx(b). vtx(c).
bvar(p).
edgp(a,b,p). edgn(a,b,p).
edgp(b,c,p). edgn(b,c,p).
edgp(a,c,p). edgn(a,c,p).
bvar(V) -> tt(V) | ff(V).
w -> bad.
`
	guess := "vtx(X) -> "
	for c := 1; c <= colors; c++ {
		if c > 1 {
			guess += " | "
		}
		guess += fmt.Sprintf("col%d(X)", c)
	}
	src += guess + ".\n"
	for c := 1; c <= colors; c++ {
		src += fmt.Sprintf("edgp(X,Y,V), tt(V), col%d(X), col%d(Y) -> w.\n", c, c)
		src += fmt.Sprintf("edgn(X,Y,V), ff(V), col%d(X), col%d(Y) -> w.\n", c, c)
		src += fmt.Sprintf("w, vtx(X) -> col%d(X).\n", c)
	}
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestStabilitySessionSaturationWorkedExample pins the session against
// the naive enumeration on the saturation triangle: with 3 colors the
// saturated candidates are unstable (proper colorings exist below
// them) and must be rejected; with 2 colors they are stable. Both the
// canonical model sets and the per-candidate verdicts must agree at
// Workers 1 and 8.
func TestStabilitySessionSaturationWorkedExample(t *testing.T) {
	for _, colors := range []int{2, 3} {
		prog := saturationProgram(t, colors)
		db := prog.Database()
		opt := Options{MaxAtoms: 256, MaxNodes: 1 << 20}
		naiveKeys, exN := canonicalModelSet(t, db, prog.Rules, opt, true)
		if exN {
			t.Fatalf("colors=%d: naive enumeration exhausted", colors)
		}
		for _, workers := range []int{1, 8} {
			sessKeys, exS, mismatches := sessionModelSet(t, db, prog.Rules, opt, workers)
			if exS {
				t.Fatalf("colors=%d workers=%d: session enumeration exhausted", colors, workers)
			}
			if mismatches != 0 {
				t.Fatalf("colors=%d workers=%d: %d verdict mismatches", colors, workers, mismatches)
			}
			if len(sessKeys) != len(naiveKeys) {
				t.Fatalf("colors=%d workers=%d: session %d models, naive %d",
					colors, workers, len(sessKeys), len(naiveKeys))
			}
			for i := range sessKeys {
				if sessKeys[i] != naiveKeys[i] {
					t.Fatalf("colors=%d workers=%d: model %d differs", colors, workers, i)
				}
			}
		}
	}
}

// TestOneShotSessionMatchesNaive pins the standalone
// stableAgainstSubsets (the throwaway-session path behind
// IsStableModel) to the naive oracle, both on genuine stable models
// and on adversarial non-model supersets — the stability condition is
// defined for any candidate atom set, so the two encoders must agree
// everywhere.
func TestOneShotSessionMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(9291))
	opt := Options{MaxAtoms: 40, MaxNodes: 1 << 16}
	checked := 0
	for generated := 0; generated < 120; {
		prog := randomSearchProgram(rng)
		if prog == nil {
			continue
		}
		generated++
		db := prog.Database()
		var candidates []*logic.FactStore
		_, _, err := enumStableModelsNaive(db, prog.Rules, opt, func(m *logic.FactStore) bool {
			candidates = append(candidates, m)
			return len(candidates) < 4
		})
		if err != nil {
			continue
		}
		for _, m := range candidates {
			if got, want := stableAgainstSubsets(db, prog.Rules, m), stableAgainstSubsetsNaive(db, prog.Rules, m); got != want {
				t.Fatalf("verdicts differ on emitted model: session=%v naive=%v\nmodel: %s\nprogram:\n%v",
					got, want, m.CanonicalString(), prog)
			}
			checked++
			// Adversarial superset: add atoms over the model's domain.
			sup := m.Clone()
			dom := sup.Domain()
			if len(dom) == 0 {
				continue
			}
			for i := 0; i < 3; i++ {
				sup.Add(logic.A("p", dom[rng.Intn(len(dom))]))
			}
			if got, want := stableAgainstSubsets(db, prog.Rules, sup), stableAgainstSubsetsNaive(db, prog.Rules, sup); got != want {
				t.Fatalf("verdicts differ on superset: session=%v naive=%v\ncandidate: %s\nprogram:\n%v",
					got, want, sup.CanonicalString(), prog)
			}
			checked++
		}
	}
	if checked < 100 {
		t.Fatalf("only %d candidate comparisons; generator too weak", checked)
	}
}
