package core

// This file implements the stability condition of Proposition 11 — M is
// stable iff no J with D ⊆ J ⊊ M⁺ satisfies the τ_{p▷s}-translation,
// where positive literals are evaluated in J and negative literals are
// fixed to their value in M (Section 3.3) — twice over:
//
//   - stableAgainstSubsetsNaive re-encodes the condition from scratch
//     for one candidate model, exactly as the pre-session engine did. It
//     is kept verbatim as the differential-test oracle.
//   - The stability session (stabSession/stabArena) builds the same
//     encoding incrementally along the search tree, mirroring the
//     copy-on-write store snapshots of PR 2: a session layer owns the
//     clauses and variables derived from its state's store delta, and a
//     child layer extends the chain by encoding only the new index
//     window. One SAT solver instance per branch then serves every
//     model emitted beneath it; the per-model conditions (which body
//     homomorphisms are unblocked in M, the latest witness set of each
//     homomorphism, and the proper-subset requirement) are expressed as
//     assumptions and activation literals, never as rebuilt clauses.
//
// Encoding invariants of the session (see also the package docs):
//
//   - Database atoms are exactly the store indices < dbLen (the root
//     state snapshots the database store), so "fixed true in J" is an
//     index comparison, not a key-map lookup. Every non-database atom
//     of the prefix has one subset variable, registered in the layer
//     that encoded its window.
//   - Each body homomorphism h of a rule into the prefix (negative
//     instances absent at discovery time — permanent, since stores only
//     grow) becomes one clause ¬act ∨ ¬pos ∨ w₁ ∨ … ∨ wₖ ∨ e₀: act is
//     the activation literal assumed only while h's negative instances
//     are still absent from the candidate M (omitted when h has no
//     negative body), the wᵢ are the head-witness extensions found in
//     the prefix so far, and e₀ is the extension tail. When a deeper
//     layer's window completes h with new witnesses w', it adds
//     ¬e ∨ w' ∨ e' and records e' as the path-latest tail; assuming
//     ¬e_latest at solve time enforces the full accumulated clause,
//     while stale tails from sibling subtrees stay free and neutralize
//     their links. Constraints (no heads) carry no tail: their clauses
//     are valid for every candidate sharing the prefix.
//   - A solve asserts one fresh guarded proper-subset clause
//     (¬g ∨ ⋁ ¬xᵢ over the path's non-database atoms) and assumes g;
//     retired guards are never assumed again, so the clause database
//     only grows. UNSAT under the assumptions means M is stable.
//
// Sessions respect the search's freeze discipline: a state's layer is
// extended before its children snapshot it, and a subtree handed to
// another goroutine clones the arena first (copy-on-extend), so arenas
// are always single-goroutine.

import (
	"sort"

	"ntgd/internal/failpoint"
	"ntgd/internal/logic"
	"ntgd/internal/sat"
)

// maxStabSessionDepth bounds a session chain: extendStability rebuilds
// a fresh root layer (one full re-encode of the current prefix) once
// the chain would exceed it, so per-lookup chain walks stay O(1)
// amortized — the same discipline as logic.FactStore snapshots.
const maxStabSessionDepth = 32

// stabArena owns the mutable substrate of a session tree: the SAT
// solver holding every clause encoded so far and the homomorphism
// registry. An arena is single-goroutine by construction — a worker
// that forks a subtree hands the child a clone (see searcher.explore),
// so no lock guards it.
//
// The arena also registers every activation, extension-tail and
// subset-guard variable ever allocated: a solve pins all of them that
// are not live on the current path (activations false, tails true,
// retired guards false), so clauses encoded for sibling subtrees are
// satisfied outright and the DPLL search never branches — let alone
// conflicts — inside dead encoding. Without this, chronological
// backtracking interleaves irrelevant flips with the real conflict and
// goes exponential in the amount of dead encoding.
type stabArena struct {
	dbLen int
	sat   *sat.Solver
	homs  []stabHom
	// falseVar is a constant-false variable (pinned by a top-level unit
	// clause) used to pad single-literal session clauses: the solver
	// stores 1-literal clauses as global facts enqueued at every solve,
	// which would turn an assumption-switchable literal — an extension
	// tail meant to be assumed false — into a permanent truth and
	// poison every later query on the arena.
	falseVar int
	// actVars, extVars and guardVars list every allocated activation,
	// extension-tail and proper-subset-guard variable, for the
	// dead-encoding pinning described above.
	actVars   []int
	extVars   []int
	guardVars []int
	// lits counts the literals of every clause added to the arena — its
	// share of the run's memory watermark proxy. The encoders charge
	// deltas of this counter against run.chargeMem; clones inherit the
	// count so a fork measures only its own growth.
	lits int64
}

func newStabArena(dbLen int) *stabArena {
	a := &stabArena{dbLen: dbLen, sat: sat.New()}
	a.falseVar = a.sat.NewVar()
	a.sat.AddClause(-a.falseVar)
	return a
}

// addClause inserts a session clause, padding single-literal clauses
// with the constant-false variable so they stay ordinary watched
// clauses (see falseVar). Empty clauses pass through: they mark the
// instance genuinely unsatisfiable.
func (a *stabArena) addClause(lits ...int) {
	a.lits += int64(len(lits))
	if len(lits) == 1 {
		a.sat.AddClause(lits[0], a.falseVar)
		return
	}
	a.sat.AddClause(lits...)
}

// clone returns an independent copy for a subtree explored on another
// goroutine. Homomorphism entries are immutable after registration, so
// the registry is a shallow slice copy; variable and homomorphism
// identities carry over unchanged, which is what lets the frozen
// ancestor layers of the forked session chain serve both arenas.
func (a *stabArena) clone() *stabArena {
	return &stabArena{
		dbLen:     a.dbLen,
		falseVar:  a.falseVar,
		sat:       a.sat.Clone(),
		homs:      append([]stabHom(nil), a.homs...),
		actVars:   append([]int(nil), a.actVars...),
		extVars:   append([]int(nil), a.extVars...),
		guardVars: append([]int(nil), a.guardVars...),
		lits:      a.lits,
	}
}

// oversized reports whether the arena has accumulated so much dead
// sibling encoding relative to the live prefix that a rebuild is
// cheaper than dragging it along.
func (a *stabArena) oversized(storeLen int) bool {
	n := a.sat.NVars()
	return n > 4096 && n > 8*storeLen
}

// stabHom is one registered body homomorphism of a rule into the store
// prefix. Entries are immutable once registered (arenas clone the
// registry shallowly); all per-path mutable state lives in the session
// layers.
type stabHom struct {
	rule *logic.Rule
	hom  logic.Subst
	// negKeys are the ground negative-body instances' packed keys,
	// re-evaluated against the candidate M at every solve: the
	// homomorphism's clause is enforced only while none of them is in M.
	negKeys []logic.FactKey
	// act is the activation variable assumed while the homomorphism is
	// unblocked; 0 when negKeys is empty (the clause carries no guard).
	act int
	// ext is the initial extension tail e₀; 0 for constraints, whose
	// clauses never grow.
	ext int
}

// headOcc locates one head disjunct of a registered homomorphism for
// the completion joins: when a window introduces atoms of pred, every
// (hom, disjunct) occurrence under pred is re-joined against the delta.
type headOcc struct {
	hom      int
	disjunct int
	// groundKey, when non-empty, marks a single-atom disjunct fully
	// ground under the homomorphism: its only possible witness is the
	// concrete atom with this packed key, so the completion join is one
	// allocation-free index probe instead of a homomorphism search.
	groundKey logic.FactKey
}

// stabSession is one layer of a session chain, mirroring a search
// state's store layer: it records the subset variables, homomorphisms
// and head occurrences its window introduced, plus the path-latest
// extension tails it overrode. A layer is mutable only between its
// creation and its state's freeze (the first child snapshot); every
// read merges the chain.
type stabSession struct {
	parent *stabSession
	arena  *stabArena
	depth  int
	// hi is the store prefix [0, hi) encoded by the chain up to and
	// including this layer.
	hi int
	// vars maps global store index -> subset variable for the
	// non-database atoms of this layer's window.
	vars map[int]int
	// ext maps homomorphism id -> latest extension tail var for chains
	// this layer extended (0 marks a homomorphism permanently satisfied
	// along this path).
	ext map[int]int
	// links lists every extension tail this layer allocated — including
	// interior tails superseded within the same window when several
	// disjuncts of one homomorphism completed — so a solve can keep the
	// whole path chain free instead of pinning interior links.
	links []int
	// homs lists the homomorphism ids this layer registered.
	homs []int
	// occ indexes this layer's registered head occurrences by head
	// predicate, for the completion joins of deeper windows.
	occ map[string][]headOcc
}

// child returns a fresh empty layer extending ss, created when a search
// state is cloned; ss must be frozen (extended) first.
func (ss *stabSession) child() *stabSession {
	return &stabSession{parent: ss, arena: ss.arena, depth: ss.depth + 1, hi: ss.hi}
}

// varOf resolves a non-database store index to its subset variable
// through the chain.
func (ss *stabSession) varOf(idx int) int {
	for s := ss; s != nil; s = s.parent {
		if v, ok := s.vars[idx]; ok {
			return v
		}
	}
	return 0
}

// latestExt resolves a homomorphism's path-latest extension tail
// through the chain, defaulting to its registration tail.
func (ss *stabSession) latestExt(hid int) (int, bool) {
	for s := ss; s != nil; s = s.parent {
		if e, ok := s.ext[hid]; ok {
			return e, true
		}
	}
	return ss.arena.homs[hid].ext, false
}

// stabScratch holds the reusable buffers of session encoding and
// solving; each searcher owns one.
type stabScratch struct {
	assumps  []int
	clause   []int
	conj     []int
	extSeen  map[int]int
	liveVars map[int]bool
	predSeen map[string]bool
	preds    []string
	occSeen  map[headOcc]bool
}

// extendStability brings st's session chain up to the state's current
// store length, encoding only the new index window. It is called at a
// branch point — before the children snapshot st, per the freeze
// discipline — and at a fixpoint candidate before solving. Chains past
// maxStabSessionDepth and arenas dominated by dead sibling encodings
// are rebuilt into a fresh root layer covering the whole prefix.
func (s *searcher) extendStability(st *state) {
	sess := st.sess
	if sess == nil || sess.depth >= maxStabSessionDepth || sess.arena.oversized(st.A.Len()) {
		sess = &stabSession{arena: newStabArena(s.db.Len())}
		st.sess = sess
	}
	before := sess.arena.lits
	s.extendSession(sess, st.A)
	// Arena growth counts against the run's memory watermark alongside
	// the facts themselves (see run.chargeMem), at litBytes per literal.
	s.chargeMem((sess.arena.lits - before) * litBytes)
}

// litBytes is the watermark charge per stability-clause literal: the
// watermark is denominated in retained bytes (see Options.MaxMemory),
// and a literal occupies roughly an 8-byte arena slot plus its share of
// clause headers and watch lists.
const litBytes = 16

// extendSession encodes the window [ss.hi, store.Len()) into the
// session: new subset variables, completion joins of ancestor
// homomorphisms against the window, and the window's new body
// homomorphisms. A root layer (parent == nil, hi == 0) always runs its
// sweep even over an empty store, because rules with empty positive
// bodies have homomorphisms no delta would ever cover.
func (s *searcher) extendSession(ss *stabSession, store *logic.FactStore) {
	from, to := ss.hi, store.Len()
	if from >= to && !(ss.parent == nil && from == 0 && ss.vars == nil) {
		ss.hi = to
		return
	}
	ar := ss.arena
	if ss.vars == nil {
		ss.vars = make(map[int]int)
	}
	// New subset variables, and the window's predicate set for the
	// completion joins.
	sc := &s.stab
	sc.preds = sc.preds[:0]
	if sc.predSeen == nil {
		sc.predSeen = make(map[string]bool)
	}
	store.EachAtomIn(from, to, func(idx int, a logic.Atom) bool {
		if idx >= ar.dbLen {
			ss.vars[idx] = ar.sat.NewVar()
		}
		if !sc.predSeen[a.Pred] {
			sc.predSeen[a.Pred] = true
			sc.preds = append(sc.preds, a.Pred)
		}
		return true
	})
	for _, p := range sc.preds {
		delete(sc.predSeen, p)
	}
	sort.Strings(sc.preds)

	// Completion joins: ancestor homomorphisms whose head predicates
	// occur in the window may have gained witness extensions using at
	// least one window atom; chain them onto the path-latest tail.
	// (Homomorphisms registered in this very call search the full
	// prefix below and need no completion. A rebuilt or true root layer
	// has no ancestors; note the gate must be on ancestry, not on
	// from > 0 — an empty database leaves ancestor layers at hi == 0.)
	if ss.parent != nil {
		if sc.occSeen == nil {
			sc.occSeen = make(map[headOcc]bool)
		}
		for layer := ss.parent; layer != nil; layer = layer.parent {
			for _, p := range sc.preds {
				for _, oc := range layer.occ[p] {
					if sc.occSeen[oc] {
						continue
					}
					sc.occSeen[oc] = true
					s.completeHom(ss, store, from, oc)
				}
			}
		}
		for oc := range sc.occSeen {
			delete(sc.occSeen, oc)
		}
	}

	// New body homomorphisms: exactly those using at least one window
	// atom (all of them, for a root sweep). Negative instances present
	// in the store block a homomorphism permanently — the store only
	// grows — so FindHomsFrom's filter is final; instances derived
	// later are handled per solve through the activation literal.
	if s.rulePos == nil {
		s.initRuleBodies()
	}
	for i, r := range s.rules {
		rule := r
		if ss.parent != nil && !predsIntersect(s.rulePosPreds[i], sc.preds) {
			// No positive body predicate in the window: no homomorphism
			// can seed here. (Root and rebuilt layers sweep every rule —
			// only they may register empty-positive-body homomorphisms.)
			continue
		}
		pos, neg := s.rulePos[i], s.ruleNeg[i]
		s.rulePlans[i].FindHomsFrom(store, from, logic.Subst{}, func(h logic.Subst) bool {
			s.registerHom(ss, store, rule, pos, neg, h)
			return true
		})
	}
	ss.hi = to
}

// witLit compiles one witness extension mu of a head disjunct into a
// single literal: the subset variable for a single non-database atom, a
// fresh defined auxiliary variable for a conjunction, or 0 when the
// extension lands entirely in the database (the rule instance is then
// satisfied in every J ⊇ D).
func (s *searcher) witLit(ss *stabSession, store *logic.FactStore, head []logic.Atom, mu logic.Subst) int {
	ar := ss.arena
	conj := s.stab.conj[:0]
	for _, a := range head {
		idx, ok := store.IndexUnder(mu, a)
		if !ok || idx < ar.dbLen {
			continue // database atoms are in every candidate J
		}
		lit := ss.varOf(idx)
		dup := false
		for _, c := range conj {
			if c == lit {
				dup = true
				break
			}
		}
		if !dup {
			conj = append(conj, lit)
		}
	}
	s.stab.conj = conj
	switch len(conj) {
	case 0:
		return 0
	case 1:
		return conj[0]
	default:
		aux := ar.sat.NewVar()
		for _, lit := range conj {
			ar.addClause(-aux, lit)
		}
		return aux
	}
}

// registerHom encodes one new body homomorphism: clause construction,
// witness search over the full prefix, activation and extension
// variables, and the occurrence index entries for future completions.
func (s *searcher) registerHom(ss *stabSession, store *logic.FactStore, rule *logic.Rule, pos, neg []logic.Atom, h logic.Subst) {
	ar := ss.arena
	sc := &s.stab
	clause := sc.clause[:0]
	act := 0
	if len(neg) > 0 {
		act = ar.sat.NewVar()
		ar.actVars = append(ar.actVars, act)
		clause = append(clause, -act)
	}
	for _, b := range pos {
		if idx, ok := store.IndexUnder(h, b); ok && idx >= ar.dbLen {
			clause = append(clause, -ss.varOf(idx))
		}
	}
	trivial := false
	for i := range rule.Heads {
		head := rule.Heads[i]
		if len(head) == 1 && logic.BoundUnder(h, head[0]) {
			// The disjunct's only possible witness is h(head[0]):
			// one index probe replaces the homomorphism search.
			if idx, ok := store.IndexUnder(h, head[0]); ok {
				if idx < ar.dbLen {
					trivial = true
					break
				}
				clause = append(clause, ss.varOf(idx))
			}
			continue
		}
		logic.FindHoms(head, nil, store, h, func(mu logic.Subst) bool {
			lit := s.witLit(ss, store, head, mu)
			if lit == 0 {
				trivial = true
				return false
			}
			clause = append(clause, lit)
			return true
		})
		if trivial {
			break
		}
	}
	if trivial {
		sc.clause = clause[:0]
		return // satisfied in every J ⊇ D, for every descendant
	}
	hid := len(ar.homs)
	hm := stabHom{rule: rule, hom: h.Clone()}
	if len(neg) > 0 {
		hm.negKeys = make([]logic.FactKey, 0, len(neg))
		for _, n := range neg {
			hm.negKeys = append(hm.negKeys, store.InternKey(h.ApplyAtom(n)))
		}
		hm.act = act
	}
	if !rule.IsConstraint() {
		hm.ext = ar.sat.NewVar()
		ar.extVars = append(ar.extVars, hm.ext)
		clause = append(clause, hm.ext)
		if ss.occ == nil {
			ss.occ = make(map[string][]headOcc)
		}
		for d := range rule.Heads {
			var groundKey logic.FactKey
			if len(rule.Heads[d]) == 1 && logic.BoundUnder(h, rule.Heads[d][0]) {
				groundKey = store.InternKey(h.ApplyAtom(rule.Heads[d][0]))
			}
			seen := sc.predSeen
			for _, a := range rule.Heads[d] {
				if !seen[a.Pred] {
					seen[a.Pred] = true
					ss.occ[a.Pred] = append(ss.occ[a.Pred], headOcc{hom: hid, disjunct: d, groundKey: groundKey})
				}
			}
			for _, a := range rule.Heads[d] {
				delete(seen, a.Pred)
			}
		}
	}
	ar.homs = append(ar.homs, hm)
	ss.homs = append(ss.homs, hid)
	ar.addClause(clause...)
	sc.clause = clause[:0]
}

// completeHom joins one registered (hom, disjunct) occurrence against
// the window: witness extensions using at least one atom with index ≥
// from are chained onto the homomorphism's path-latest extension tail
// as ¬e ∨ w₁ ∨ … ∨ wₖ ∨ e'.
func (s *searcher) completeHom(ss *stabSession, store *logic.FactStore, from int, oc headOcc) {
	ar := ss.arena
	hm := &ar.homs[oc.hom]
	eOld, overridden := ss.latestExt(oc.hom)
	if overridden && eOld == 0 {
		return // permanently satisfied along this path
	}
	sc := &s.stab
	clause := sc.clause[:0]
	head := hm.rule.Heads[oc.disjunct]
	if oc.groundKey != "" {
		// Single possible witness: a window probe replaces the join.
		idx, ok := store.IndexOfFactKey(oc.groundKey)
		if !ok || idx < from {
			return // absent, or already encoded by an earlier window
		}
		eNew := ar.sat.NewVar()
		ar.extVars = append(ar.extVars, eNew)
		ss.links = append(ss.links, eNew)
		ar.addClause(-eOld, ss.varOf(idx), eNew)
		if ss.ext == nil {
			ss.ext = make(map[int]int)
		}
		ss.ext[oc.hom] = eNew
		return
	}
	satisfied := false
	logic.FindHomsFrom(head, nil, store, from, hm.hom, func(mu logic.Subst) bool {
		lit := s.witLit(ss, store, head, mu)
		if lit == 0 {
			// Unreachable for window extensions (every window atom is
			// non-database), but a satisfied instance would simply end
			// the chain for every state below this one.
			satisfied = true
			return false
		}
		clause = append(clause, lit)
		return true
	})
	if satisfied {
		if ss.ext == nil {
			ss.ext = make(map[int]int)
		}
		ss.ext[oc.hom] = 0
		sc.clause = clause[:0]
		return
	}
	if len(clause) == 0 {
		sc.clause = clause
		return // no new witnesses in the window
	}
	eNew := ar.sat.NewVar()
	ar.extVars = append(ar.extVars, eNew)
	ss.links = append(ss.links, eNew)
	clause = append(clause, -eOld, eNew)
	ar.addClause(clause...)
	sc.clause = clause[:0]
	if ss.ext == nil {
		ss.ext = make(map[int]int)
	}
	ss.ext[oc.hom] = eNew
}

// stableSession decides the stability of the fixpoint candidate st.A
// against its session chain. Enforced path homomorphisms — registered
// along the path and with every negative instance still absent from M
// — get their activation literal assumed and their path-latest
// extension tail assumed false, which switches the full accumulated
// clause on. Everything else in the arena is pinned to its satisfying
// polarity (activations false, tails true, retired subset guards
// false): dead encoding from sibling subtrees and earlier solves is
// then satisfied by the assumptions alone, so the DPLL search never
// branches inside it. One fresh guarded proper-subset clause over the
// path's non-database atoms completes the query; UNSAT means no J with
// D ⊆ J ⊊ M⁺ satisfies the τ-translation — M is stable.
func (s *searcher) stableSession(st *state) bool {
	failpoint.Inject(failpoint.CoreStability)
	ss := st.sess
	ar := ss.arena
	litsBefore := ar.lits
	sc := &s.stab
	if sc.extSeen == nil {
		sc.extSeen = make(map[int]int)
		sc.liveVars = make(map[int]bool)
	}
	ext := sc.extSeen   // homID -> path-latest extension tail
	live := sc.liveVars // act/ext vars that must not be pinned to junk polarity
	for layer := ss; layer != nil; layer = layer.parent {
		for hid, e := range layer.ext {
			if _, ok := ext[hid]; !ok {
				ext[hid] = e
			}
		}
		// Every chain link allocated along the path stays free —
		// including interior links superseded within their own window:
		// the solver walks them to reach the enforced tail, and a free
		// link can always satisfy its own clause through its successor.
		for _, e := range layer.links {
			live[e] = true
		}
	}
	assumps := sc.assumps[:0]
	for layer := ss; layer != nil; layer = layer.parent {
		for _, hid := range layer.homs {
			hm := &ar.homs[hid]
			e, overridden := ext[hid]
			if !overridden {
				e = hm.ext
			}
			if overridden && e == 0 {
				continue // permanently satisfied along this path
			}
			blocked := false
			for _, k := range hm.negKeys {
				if st.A.HasFactKey(k) {
					blocked = true
					break
				}
			}
			if blocked {
				continue // negatives are fixed to M: the clause is off
			}
			if hm.act != 0 {
				assumps = append(assumps, hm.act)
				live[hm.act] = true
			}
			if e != 0 {
				assumps = append(assumps, -e)
				live[e] = true // assumed false: exempt from the true-pin
				if hm.ext != e {
					live[hm.ext] = true // first link of the enforced chain
				}
			}
		}
	}
	for hid := range ext {
		delete(ext, hid)
	}
	// Pin the dead encoding: inactive activations false, non-live
	// extension tails true, every earlier solve's subset guard false.
	for _, v := range ar.actVars {
		if !live[v] {
			assumps = append(assumps, -v)
		}
	}
	for _, v := range ar.extVars {
		if !live[v] {
			assumps = append(assumps, v)
		}
	}
	for _, v := range ar.guardVars {
		assumps = append(assumps, -v)
	}
	for v := range live {
		delete(live, v)
	}
	// Proper subset: at least one non-database atom of M is dropped.
	// The clause is guarded by a fresh variable assumed only now; later
	// solves pin the guard false, so the clause goes permanently inert.
	guard := ar.sat.NewVar()
	clause := append(sc.clause[:0], -guard)
	for layer := ss; layer != nil; layer = layer.parent {
		for _, v := range layer.vars {
			clause = append(clause, -v)
		}
	}
	ar.addClause(clause...)
	sc.clause = clause[:0]
	ar.guardVars = append(ar.guardVars, guard)
	assumps = append(assumps, guard)
	sc.assumps = assumps[:0]
	// Each solve retires one guarded subset clause into the arena for
	// good; charge it against the memory watermark.
	s.chargeMem((ar.lits - litsBefore) * litBytes)
	return !ar.sat.Solve(assumps...)
}

// stableAgainstSubsets decides the stability condition for one
// standalone candidate via a throwaway session: the candidate is
// re-rooted over a copy of the database so that the database is exactly
// the store prefix the session encoder keys on. The search itself never
// calls this — it extends per-state sessions instead.
func stableAgainstSubsets(db *logic.FactStore, rules []*logic.Rule, m *logic.FactStore) bool {
	store := db.Clone()
	for _, a := range m.Atoms() {
		store.Add(a)
	}
	s := &searcher{run: &run{rules: rules, db: db}}
	sess := &stabSession{arena: newStabArena(db.Len())}
	s.extendSession(sess, store)
	return s.stableSession(&state{A: store, sess: sess})
}

// stableAgainstSubsetsNaive is the pre-session check kept verbatim as
// the differential-test oracle: it re-encodes the whole condition from
// scratch for every candidate model — one variable per atom of M⁺ \ D
// keyed by rendered atom strings, one clause per body homomorphism of a
// τ-rule into M⁺ (the head alternatives are the witness extensions of
// Definition 4, materialized over M⁺), plus a clause requiring J to be
// a proper subset — and hands the formula to a fresh solver; UNSAT
// means M is stable.
func stableAgainstSubsetsNaive(db *logic.FactStore, rules []*logic.Rule, m *logic.FactStore) bool {
	if m.Len() == db.Len() {
		// J must satisfy D ⊆ J ⊊ M⁺; no such J exists.
		return true
	}
	s := sat.New()
	varOf := make(map[string]int, m.Len())
	inDB := make(map[string]bool, db.Len())
	for _, a := range db.Atoms() {
		inDB[a.Key()] = true
	}
	var subsetVars []int
	for _, a := range m.Atoms() {
		k := a.Key()
		if inDB[k] {
			continue
		}
		v := s.NewVar()
		varOf[k] = v
		subsetVars = append(subsetVars, v)
	}
	// litOf returns (satLiteral, alwaysTrue): database atoms are fixed
	// true in J.
	litOf := func(a logic.Atom) (int, bool) {
		k := a.Key()
		if inDB[k] {
			return 0, true
		}
		return varOf[k], false
	}

	for _, r := range rules {
		rule := r
		pos, neg := logic.SplitLiterals(rule.Body)
		// Enumerate body homomorphisms into M⁺ whose negative
		// instances are absent from M (negatives are fixed to M).
		logic.FindHoms(pos, neg, m, logic.Subst{}, func(h logic.Subst) bool {
			clause := make([]int, 0, 8)
			for _, b := range pos {
				lit, fixed := litOf(h.ApplyAtom(b))
				if !fixed {
					clause = append(clause, -lit)
				}
			}
			trivially := false
			for i := range rule.Heads {
				logic.FindHoms(rule.Heads[i], nil, m, h, func(mu logic.Subst) bool {
					conj := make([]int, 0, len(rule.Heads[i]))
					for _, a := range rule.Heads[i] {
						lit, fixed := litOf(mu.ApplyAtom(a))
						if fixed {
							continue
						}
						dup := false
						for _, c := range conj {
							if c == lit {
								dup = true
								break
							}
						}
						if !dup {
							conj = append(conj, lit)
						}
					}
					switch len(conj) {
					case 0:
						// The extension lands entirely in D: the rule
						// instance is satisfied in every J ⊇ D.
						trivially = true
						return false
					case 1:
						clause = append(clause, conj[0])
					default:
						aux := s.NewVar()
						clause = append(clause, aux)
						for _, lit := range conj {
							s.AddClause(-aux, lit)
						}
					}
					return true
				})
				if trivially {
					break
				}
			}
			if !trivially {
				s.AddClause(clause...)
			}
			return true
		})
	}
	// Proper subset: at least one non-database atom of M is dropped.
	drop := make([]int, len(subsetVars))
	for i, v := range subsetVars {
		drop[i] = -v
	}
	s.AddClause(drop...)
	return !s.Solve()
}
