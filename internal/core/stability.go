package core

import (
	"ntgd/internal/logic"
	"ntgd/internal/sat"
)

// stableAgainstSubsets decides the second conjunct of SM[D,Σ]
// (Section 3.3): M is stable iff there is no tuple of predicate
// extensions s < p — equivalently, no set of atoms J with
// D ⊆ J ⊊ M⁺ — such that J satisfies τ_{p▷s}(D) ∧ τ_{p▷s}(Σ), where
// positive literals are evaluated in J and negative literals are
// evaluated in M (that is the essential difference from plain
// circumscription/minimal models: the negative predicates are fixed to
// their value in M, cf. Section 3.3's discussion of MM vs SM).
//
// Following Proposition 11, the check is encoded propositionally: one
// variable per atom of M⁺ \ D, one clause per body homomorphism of a
// τ-rule into M⁺ (the head alternatives are the witness extensions of
// Definition 4, materialized over M⁺), plus a clause requiring J to be
// a proper subset. The formula is handed to the DPLL solver; UNSAT
// means M is stable.
func stableAgainstSubsets(db *logic.FactStore, rules []*logic.Rule, m *logic.FactStore) bool {
	if m.Len() == db.Len() {
		// J must satisfy D ⊆ J ⊊ M⁺; no such J exists.
		return true
	}
	s := sat.New()
	varOf := make(map[string]int, m.Len())
	inDB := make(map[string]bool, db.Len())
	for _, a := range db.Atoms() {
		inDB[a.Key()] = true
	}
	var subsetVars []int
	for _, a := range m.Atoms() {
		k := a.Key()
		if inDB[k] {
			continue
		}
		v := s.NewVar()
		varOf[k] = v
		subsetVars = append(subsetVars, v)
	}
	// litOf returns (satLiteral, alwaysTrue): database atoms are fixed
	// true in J.
	litOf := func(a logic.Atom) (int, bool) {
		k := a.Key()
		if inDB[k] {
			return 0, true
		}
		return varOf[k], false
	}

	for _, r := range rules {
		rule := r
		pos, neg := logic.SplitLiterals(rule.Body)
		// Enumerate body homomorphisms into M⁺ whose negative
		// instances are absent from M (negatives are fixed to M).
		logic.FindHoms(pos, neg, m, logic.Subst{}, func(h logic.Subst) bool {
			clause := make([]int, 0, 8)
			for _, b := range pos {
				lit, fixed := litOf(h.ApplyAtom(b))
				if !fixed {
					clause = append(clause, -lit)
				}
			}
			trivially := false
			for i := range rule.Heads {
				logic.FindHoms(rule.Heads[i], nil, m, h, func(mu logic.Subst) bool {
					conj := make([]int, 0, len(rule.Heads[i]))
					for _, a := range rule.Heads[i] {
						lit, fixed := litOf(mu.ApplyAtom(a))
						if fixed {
							continue
						}
						dup := false
						for _, c := range conj {
							if c == lit {
								dup = true
								break
							}
						}
						if !dup {
							conj = append(conj, lit)
						}
					}
					switch len(conj) {
					case 0:
						// The extension lands entirely in D: the rule
						// instance is satisfied in every J ⊇ D.
						trivially = true
						return false
					case 1:
						clause = append(clause, conj[0])
					default:
						aux := s.NewVar()
						clause = append(clause, aux)
						for _, lit := range conj {
							s.AddClause(-aux, lit)
						}
					}
					return true
				})
				if trivially {
					break
				}
			}
			if !trivially {
				s.AddClause(clause...)
			}
			return true
		})
	}
	// Proper subset: at least one non-database atom of M is dropped.
	drop := make([]int, len(subsetVars))
	for i, v := range subsetVars {
		drop[i] = -v
	}
	s.AddClause(drop...)
	return !s.Solve()
}
