package core

import (
	"fmt"
	"testing"

	"ntgd/internal/logic"
	"ntgd/internal/parser"
)

// legacyTriggerKey is the pre-PR trigger identity, kept here for the
// benchmark below: it concatenated the rule label with hom.String(),
// which sorts the variable names and renders every binding through a
// fresh strings.Builder on every call.
func legacyTriggerKey(t *trigger) string { return t.rule.Label + "|" + t.hom.String() }

func benchTrigger(b *testing.B) (*searcher, *trigger) {
	b.Helper()
	prog, err := parser.Parse("e(X,Y), f(Y,Z), not u(X) -> u(Z).\n")
	if err != nil {
		b.Fatal(err)
	}
	c := &Compiled{rules: prog.Rules}
	c.initRules()
	s := &searcher{run: &run{rules: prog.Rules, ruleDet: c.ruleDet, ruleVars: c.ruleVars}}
	t := &trigger{
		rule:    prog.Rules[0],
		ruleIdx: 0,
		hom: logic.Subst{
			"X": logic.C("alpha"),
			"Y": logic.N("n17"),
			"Z": logic.F("sk", logic.C("alpha"), logic.C("beta")),
		},
	}
	return s, t
}

// BenchmarkTriggerKey compares the compact trigger key (rule index plus
// the bindings in the rule's precomputed variable order, assembled in a
// reused buffer) against the legacy Label+"|"+hom.String() key. The
// cached-key fast path (the common case: every deferred-set probe after
// the first) is measured separately.
func BenchmarkTriggerKey(b *testing.B) {
	s, t := benchTrigger(b)
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if legacyTriggerKey(t) == "" {
				b.Fatal("empty key")
			}
		}
	})
	b.Run("compact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t.key.Store(nil) // force a rebuild
			if s.triggerKey(t) == "" {
				b.Fatal("empty key")
			}
		}
	})
	b.Run("compact-cached", func(b *testing.B) {
		b.ReportAllocs()
		t.key.Store(nil)
		for i := 0; i < b.N; i++ {
			if s.triggerKey(t) == "" {
				b.Fatal("empty key")
			}
		}
	})
}

// BenchmarkWitnessPool pins the witness-pool construction: the domain
// is maintained incrementally by FactStore.Add and extra constants are
// deduplicated by hash lookups, so building the pool costs O(domain),
// not O(atoms) for the old full-store walk plus O(pool²) Equal scans.
// The store deliberately has many more atoms (8192) than domain terms
// (64) — a regression to per-call domain recomputation shows up as an
// ~128x blowup here.
func BenchmarkWitnessPool(b *testing.B) {
	st := &state{A: logic.NewFactStore()}
	for i := 0; i < 8192; i++ {
		st.A.Add(logic.A("e",
			logic.C(fmt.Sprintf("c%d", i%64)),
			logic.C(fmt.Sprintf("c%d", (i/64)%64))))
	}
	var extras []logic.Term
	for i := 0; i < 8; i++ {
		extras = append(extras, logic.C(fmt.Sprintf("c%d", 60+i))) // half duplicate the domain
	}
	s := &searcher{run: &run{opt: Options{ExtraConstants: extras}}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tuples := s.witnessTuples(st, []string{"Z"})
		if len(tuples) != 64+4+1 {
			b.Fatalf("tuples = %d, want 69", len(tuples))
		}
	}
}
