package core

import (
	"ntgd/internal/logic"
)

// groundInstance is one materialized rule instance over a universe
// store U, compiled to bitmasks over the non-database atoms of U (the
// database atoms are present in every candidate J with D ⊆ J ⊆ U, so
// they are folded away). For J given by jmask, the instance fires when
// pos ⊆ J and neg ∩ J = ∅, and is then satisfied iff some head
// extension set is contained in J.
type groundInstance struct {
	posMask  uint32
	negMask  uint32
	extMasks []uint32
}

// compiledModelCheck holds every rule instance over the universe,
// ready to decide logic.IsModel(rules, J) for any D ⊆ J ⊆ U with a few
// bitmask operations per instance. Because J ⊆ U, every body
// homomorphism into J is one into U and every head extension into J is
// one into U, so materializing against U once is exhaustive; this
// replaces the per-subset homomorphism searches of the naive
// enumeration (kept as isMinimalModelNaive / minimalModelsNaive, the
// differential-test oracles).
type compiledModelCheck struct {
	instances []groundInstance
}

// universeIndex addresses the universe by global store index instead of
// rendered atom keys: dbAt[i] reports database membership of the atom
// at universe index i, and bitAt[i] is its bitmask position (-1 for
// database atoms). One pass over the universe replaces the per-instance
// inDB/bit string-map lookups of the old compiler — instance atoms
// resolve through IndexUnder, which probes the store's existing key
// index without building per-call maps.
type universeIndex struct {
	dbAt  []bool
	bitAt []int
}

// indexUniverse partitions the universe against the database by store
// index, returning the index tables and the non-database atoms in
// insertion order.
func indexUniverse(db, universe *logic.FactStore) (universeIndex, []logic.Atom) {
	n := universe.Len()
	u := universeIndex{dbAt: make([]bool, n), bitAt: make([]int, n)}
	var extra []logic.Atom
	universe.EachAtomIn(0, n, func(i int, a logic.Atom) bool {
		if db.Has(a) {
			u.dbAt[i] = true
			u.bitAt[i] = -1
		} else {
			u.bitAt[i] = len(extra)
			extra = append(extra, a)
		}
		return true
	})
	return u, extra
}

// compileModelCheck materializes all rule instances of rules over the
// universe, with instance atoms addressed by store index (see
// universeIndex).
func compileModelCheck(rules []*logic.Rule, universe *logic.FactStore, u universeIndex) *compiledModelCheck {
	c := &compiledModelCheck{}
	for _, r := range rules {
		rule := r
		pos, neg := logic.SplitLiterals(rule.Body)
		// Negative literals are re-evaluated in J (all predicates are
		// starred in MM[D,Σ]), so they are NOT filtered here: enumerate
		// homomorphisms of the positive body into U and compile the
		// negative instances into the mask.
		logic.FindHoms(pos, nil, universe, logic.Subst{}, func(h logic.Subst) bool {
			inst := groundInstance{}
			for _, b := range pos {
				idx, _ := universe.IndexUnder(h, b)
				if u.dbAt[idx] {
					continue // always in J
				}
				inst.posMask |= 1 << u.bitAt[idx]
			}
			blocked := false
			for _, n := range neg {
				idx, inU := universe.IndexUnder(h, n)
				switch {
				case inU && u.dbAt[idx]:
					blocked = true // always in J: the instance never fires
				case inU:
					inst.negMask |= 1 << u.bitAt[idx]
				}
				// Atoms outside U can never be in J: vacuously absent.
				if blocked {
					break
				}
			}
			if blocked {
				return true
			}
			trivially := false
			for i := range rule.Heads {
				head := rule.Heads[i]
				logic.FindHoms(head, nil, universe, h, func(mu logic.Subst) bool {
					var ext uint32
					for _, a := range head {
						idx, _ := universe.IndexUnder(mu, a)
						if u.dbAt[idx] {
							continue
						}
						ext |= 1 << u.bitAt[idx]
					}
					if ext == 0 {
						// The extension lands entirely in D: satisfied
						// in every candidate J.
						trivially = true
						return false
					}
					inst.extMasks = append(inst.extMasks, ext)
					return true
				})
				if trivially {
					break
				}
			}
			if !trivially {
				c.instances = append(c.instances, inst)
			}
			return true
		})
	}
	return c
}

// isModel reports whether the candidate J (database plus the extra
// atoms selected by jmask) satisfies every compiled rule instance.
func (c *compiledModelCheck) isModel(jmask uint32) bool {
	for i := range c.instances {
		inst := &c.instances[i]
		if inst.posMask&jmask != inst.posMask || inst.negMask&jmask != 0 {
			continue // body does not fire in J
		}
		satisfied := false
		for _, ext := range inst.extMasks {
			if ext&jmask == ext {
				satisfied = true
				break
			}
		}
		if !satisfied {
			return false
		}
	}
	return true
}

// splitExtra returns the non-database atoms of the universe, preserving
// insertion order (the naive oracles' helper).
func splitExtra(db, universe *logic.FactStore) []logic.Atom {
	var extra []logic.Atom
	for _, a := range universe.Atoms() {
		if !db.Has(a) {
			extra = append(extra, a)
		}
	}
	return extra
}

// IsMinimalModel checks the circumscription condition MM[D,Σ] of
// Section 3.2: M contains D, M is a model of Σ, and no proper subset J
// with D ⊆ J ⊊ M⁺ is a model of D and Σ. Unlike the stability check,
// the negative literals are re-evaluated in J itself (all predicates
// are starred in MM[D,Σ]); the contrast between the two conditions on
// J = {p(0), t(0)} is exactly the paper's motivation for SM[D,Σ].
//
// The subset search enumerates bitmasks over M⁺ \ D against rule
// instances materialized over M once (compileModelCheck), so each of
// the 2^n candidates costs a few mask operations instead of a fresh
// homomorphism search; it returns false early when a smaller model is
// found.
func IsMinimalModel(db *logic.FactStore, rules []*logic.Rule, m *logic.FactStore) bool {
	if !db.SubsetOf(m) || !logic.IsModel(rules, m) {
		return false
	}
	u, extra := indexUniverse(db, m)
	n := len(extra)
	if n == 0 {
		return true
	}
	if n > 24 {
		// 2^n subsets would be prohibitive; callers should not use the
		// brute-force circumscription check at this size.
		panic("core: IsMinimalModel is limited to 24 non-database atoms")
	}
	c := compileModelCheck(rules, m, u)
	// Enumerate proper subsets.
	for mask := uint32(0); mask < 1<<n-1; mask++ {
		if c.isModel(mask) {
			return false
		}
	}
	return true
}

// isMinimalModelNaive is the original enumeration (one IsModel call
// per subset), kept as the differential-test oracle for the compiled
// fast path.
func isMinimalModelNaive(db *logic.FactStore, rules []*logic.Rule, m *logic.FactStore) bool {
	if !db.SubsetOf(m) || !logic.IsModel(rules, m) {
		return false
	}
	extra := splitExtra(db, m)
	n := len(extra)
	if n == 0 {
		return true
	}
	if n > 24 {
		panic("core: IsMinimalModel is limited to 24 non-database atoms")
	}
	for mask := 0; mask < 1<<n-1; mask++ {
		j := db.Clone()
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				j.Add(extra[i])
			}
		}
		if logic.IsModel(rules, j) {
			return false
		}
	}
	return true
}

// MinimalModels enumerates the minimal models of (D, Σ) over candidate
// atom sets drawn from the universe store (typically a chase result or
// a stable-model search space); used by the E4 experiment to contrast
// MM[D,Σ] with SM[D,Σ] on small instances. Model checking per subset
// uses the same compiled instances as IsMinimalModel.
func MinimalModels(db *logic.FactStore, rules []*logic.Rule, universe *logic.FactStore) []*logic.FactStore {
	u, extra := indexUniverse(db, universe)
	n := len(extra)
	if n > 20 {
		panic("core: MinimalModels is limited to 20 non-database atoms")
	}
	c := compileModelCheck(rules, universe, u)
	// A proper subset of a bitmask is numerically smaller, so the
	// ascending enumeration meets every minimal model before any model
	// it is contained in: one subset check against the kept masks is
	// exact.
	var modelMasks []uint32
	for mask := uint32(0); mask < 1<<n; mask++ {
		if !c.isModel(mask) {
			continue
		}
		minimal := true
		for _, prev := range modelMasks {
			if prev&mask == prev {
				minimal = false
				break
			}
		}
		if minimal {
			modelMasks = append(modelMasks, mask)
		}
	}
	var out []*logic.FactStore
	for _, mi := range modelMasks {
		j := db.Clone()
		for b := 0; b < n; b++ {
			if mi&(1<<b) != 0 {
				j.Add(extra[b])
			}
		}
		out = append(out, j)
	}
	return out
}

// minimalModelsNaive is the original enumeration kept as the
// differential-test oracle for MinimalModels.
func minimalModelsNaive(db *logic.FactStore, rules []*logic.Rule, universe *logic.FactStore) []*logic.FactStore {
	extra := splitExtra(db, universe)
	n := len(extra)
	if n > 20 {
		panic("core: MinimalModels is limited to 20 non-database atoms")
	}
	var out []*logic.FactStore
	for mask := 0; mask < 1<<n; mask++ {
		j := db.Clone()
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				j.Add(extra[i])
			}
		}
		if !logic.IsModel(rules, j) {
			continue
		}
		minimal := true
		for _, prev := range out {
			if prev.SubsetOf(j) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, j)
		}
	}
	var filtered []*logic.FactStore
	for i, mi := range out {
		minimal := true
		for k, mk := range out {
			if i != k && mk.SubsetOf(mi) && !mk.Equal(mi) {
				minimal = false
				break
			}
		}
		if minimal {
			filtered = append(filtered, mi)
		}
	}
	return filtered
}
