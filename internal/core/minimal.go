package core

import (
	"ntgd/internal/logic"
)

// IsMinimalModel checks the circumscription condition MM[D,Σ] of
// Section 3.2: M contains D, M is a model of Σ, and no proper subset J
// with D ⊆ J ⊊ M⁺ is a model of D and Σ. Unlike the stability check,
// the negative literals are re-evaluated in J itself (all predicates
// are starred in MM[D,Σ]); the contrast between the two conditions on
// J = {p(0), t(0)} is exactly the paper's motivation for SM[D,Σ].
//
// The subset search is a straightforward enumeration over M⁺ \ D and
// is intended for small models (tests, teaching tools, the E4
// experiment); it returns false early when a smaller model is found.
func IsMinimalModel(db *logic.FactStore, rules []*logic.Rule, m *logic.FactStore) bool {
	if !db.SubsetOf(m) || !logic.IsModel(rules, m) {
		return false
	}
	var extra []logic.Atom
	inDB := make(map[string]bool, db.Len())
	for _, a := range db.Atoms() {
		inDB[a.Key()] = true
	}
	for _, a := range m.Atoms() {
		if !inDB[a.Key()] {
			extra = append(extra, a)
		}
	}
	n := len(extra)
	if n == 0 {
		return true
	}
	if n > 24 {
		// 2^n subsets would be prohibitive; callers should not use the
		// brute-force circumscription check at this size.
		panic("core: IsMinimalModel is limited to 24 non-database atoms")
	}
	// Enumerate proper subsets.
	for mask := 0; mask < 1<<n-1; mask++ {
		j := db.Clone()
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				j.Add(extra[i])
			}
		}
		if logic.IsModel(rules, j) {
			return false
		}
	}
	return true
}

// MinimalModels enumerates the minimal models of (D, Σ) over candidate
// atom sets drawn from the universe store (typically a chase result or
// a stable-model search space); used by the E4 experiment to contrast
// MM[D,Σ] with SM[D,Σ] on small instances.
func MinimalModels(db *logic.FactStore, rules []*logic.Rule, universe *logic.FactStore) []*logic.FactStore {
	var extra []logic.Atom
	inDB := make(map[string]bool, db.Len())
	for _, a := range db.Atoms() {
		inDB[a.Key()] = true
	}
	for _, a := range universe.Atoms() {
		if !inDB[a.Key()] {
			extra = append(extra, a)
		}
	}
	n := len(extra)
	if n > 20 {
		panic("core: MinimalModels is limited to 20 non-database atoms")
	}
	var out []*logic.FactStore
	for mask := 0; mask < 1<<n; mask++ {
		j := db.Clone()
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				j.Add(extra[i])
			}
		}
		if !logic.IsModel(rules, j) {
			continue
		}
		minimal := true
		for _, prev := range out {
			if prev.SubsetOf(j) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, j)
		}
	}
	// A second pass removes non-minimal entries discovered later
	// (masks are not enumerated in subset order).
	var filtered []*logic.FactStore
	for i, mi := range out {
		minimal := true
		for k, mk := range out {
			if i != k && mk.SubsetOf(mi) && !mk.Equal(mi) {
				minimal = false
				break
			}
		}
		if minimal {
			filtered = append(filtered, mi)
		}
	}
	return filtered
}
