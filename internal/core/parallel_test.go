package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"testing"
	"time"

	"ntgd/internal/engine"
	"ntgd/internal/logic"
)

// choiceProgram has 2^n stable models — enough independent sibling
// subtrees that the pool demonstrably forks, and enough models that
// cancellation and early stops land mid-enumeration.
func choiceProgram(t *testing.T, n int) *logic.Program {
	t.Helper()
	src := ""
	for i := 0; i < n; i++ {
		src += fmt.Sprintf("item(i%d).\n", i)
	}
	src += "item(X), not out(X) -> in(X).\nitem(X), not in(X) -> out(X).\n"
	return mustParseInternal(t, src)
}

// awaitNoExtraGoroutines fails the test if the goroutine count stays
// above the baseline: the pool must join every worker before an
// enumeration returns, whatever ended it.
func awaitNoExtraGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool goroutines leaked: %d > baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestParallelMatchesSequentialSet pins set-equality directly on a
// branch-heavy program: every pool size emits exactly the canonical
// model set of the sequential search.
func TestParallelMatchesSequentialSet(t *testing.T) {
	prog := choiceProgram(t, 7) // 128 models
	db := prog.Database()
	keysAt := func(workers int) []string {
		var keys []string
		_, exhausted, err := EnumStableModels(db, prog.Rules, Options{Workers: workers}, func(m *logic.FactStore) bool {
			keys = append(keys, canonicalModelKey(m))
			return true
		})
		if err != nil || exhausted {
			t.Fatalf("workers=%d: err=%v exhausted=%v", workers, err, exhausted)
		}
		sort.Strings(keys)
		return keys
	}
	want := keysAt(1)
	if len(want) != 128 {
		t.Fatalf("sequential search found %d models, want 128", len(want))
	}
	for _, w := range []int{2, 4, 8} {
		got := keysAt(w)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("workers=%d: model set diverges from sequential (%d vs %d models)", w, len(got), len(want))
		}
	}
}

// TestParallelCancellationMidSearch cancels the context after a few
// models with a 4-worker pool: the run must end with the context
// error, report partial stats, join every worker goroutine, and leave
// the compiled engine reusable for a complete follow-up enumeration.
func TestParallelCancellationMidSearch(t *testing.T) {
	prog := choiceProgram(t, 10) // 1024 models
	baseline := runtime.NumGoroutine()
	c, err := Compile(prog.Database(), prog.Rules, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got := 0
	stats, exhausted, err := c.Enumerate(ctx, engine.Params{}, func(m *logic.FactStore) bool {
		got++
		if got == 3 {
			cancel()
		}
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !exhausted {
		t.Fatal("cancelled run must report a possibly incomplete enumeration")
	}
	if got < 3 || got >= 1024 {
		t.Fatalf("models before cancellation = %d, want a small prefix", got)
	}
	if stats.Nodes <= 0 || stats.ModelsEmitted < int64(got) {
		t.Fatalf("partial stats not recorded: %+v", stats)
	}
	awaitNoExtraGoroutines(t, baseline)
	// The engine must be reusable: a healthy context enumerates the
	// full set with the same pool size.
	n := 0
	_, exhausted, err = c.Enumerate(context.Background(), engine.Params{}, func(m *logic.FactStore) bool {
		n++
		return true
	})
	if err != nil || exhausted {
		t.Fatalf("second enumeration: err=%v exhausted=%v", err, exhausted)
	}
	if n != 1024 {
		t.Fatalf("second enumeration found %d models, want 1024", n)
	}
	awaitNoExtraGoroutines(t, baseline)
}

// TestParallelEarlyVisitorStop stops the visitor after one model: the
// run must end without an error, not report exhaustion, and join every
// worker.
func TestParallelEarlyVisitorStop(t *testing.T) {
	prog := choiceProgram(t, 8) // 256 models
	baseline := runtime.NumGoroutine()
	c, err := Compile(prog.Database(), prog.Rules, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	stats, exhausted, err := c.Enumerate(context.Background(), engine.Params{}, func(m *logic.FactStore) bool {
		got++
		return false
	})
	if err != nil {
		t.Fatalf("visitor stop must not be an error, got %v", err)
	}
	if exhausted {
		t.Fatal("visitor stop must not report exhaustion")
	}
	if got != 1 {
		t.Fatalf("visitor called %d times after stopping, want 1", got)
	}
	if stats.ModelsEmitted != 1 {
		t.Fatalf("ModelsEmitted = %d, want 1", stats.ModelsEmitted)
	}
	awaitNoExtraGoroutines(t, baseline)
}

// TestParallelBudgetExhaustion hits the shared MaxNodes budget with a
// 4-worker pool: the run reports ErrBudget with partial results and
// joins every worker.
func TestParallelBudgetExhaustion(t *testing.T) {
	prog := choiceProgram(t, 10)
	baseline := runtime.NumGoroutine()
	_, exhausted, err := EnumStableModels(prog.Database(), prog.Rules,
		Options{Workers: 4, MaxNodes: 64}, func(m *logic.FactStore) bool { return true })
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if !exhausted {
		t.Fatal("budget hit must report exhaustion")
	}
	awaitNoExtraGoroutines(t, baseline)
}

// TestParallelWorkersParamOverride pins the per-run engine.Params
// override: a Compiled built sequential can run parallel (and back)
// without recompiling, emitting the same canonical set.
func TestParallelWorkersParamOverride(t *testing.T) {
	prog := choiceProgram(t, 6) // 64 models
	c, err := Compile(prog.Database(), prog.Rules, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	count := func(p engine.Params) int {
		n := 0
		_, _, err := c.Enumerate(context.Background(), p, func(m *logic.FactStore) bool {
			n++
			return true
		})
		if err != nil {
			t.Fatalf("enumerate %+v: %v", p, err)
		}
		return n
	}
	if n := count(engine.Params{}); n != 64 {
		t.Fatalf("sequential: %d models, want 64", n)
	}
	if n := count(engine.Params{Workers: 4}); n != 64 {
		t.Fatalf("workers=4 override: %d models, want 64", n)
	}
	if n := count(engine.Params{Workers: 1}); n != 64 {
		t.Fatalf("workers=1 override: %d models, want 64", n)
	}
}
