package core_test

import (
	"fmt"
	"testing"

	"ntgd/internal/core"
	"ntgd/internal/parser"
)

// benchChoiceProgram is a branch-heavy stable-model search over a store
// that is large relative to its per-branch deltas: nItems choice pairs
// (2^nItems stable models, 2^nItems-1 branch nodes) on top of nPad
// inert facts plus one datalog rule doubling them. Pre-PR, every branch
// child deep-copied the whole store and every node re-ran full trigger
// detection; the snapshot + agenda engine pays O(delta) for both.
func benchChoiceProgram(nItems, nPad int) string {
	src := ""
	for i := 0; i < nItems; i++ {
		src += fmt.Sprintf("item(i%d).\n", i)
	}
	for i := 0; i < nPad; i++ {
		src += fmt.Sprintf("pad(p%d).\n", i)
	}
	src += "pad(X) -> padded(X).\n"
	src += "item(X), not out(X) -> in(X).\n"
	src += "item(X), not in(X) -> out(X).\n"
	return src
}

func BenchmarkStableSearchChoiceWide(b *testing.B) {
	for _, cfg := range []struct{ items, pad int }{{5, 64}, {7, 256}} {
		prog, err := parser.Parse(benchChoiceProgram(cfg.items, cfg.pad))
		if err != nil {
			b.Fatal(err)
		}
		db := prog.Database()
		opt := core.Options{MaxAtoms: 4096}
		want := 1 << cfg.items
		b.Run(fmt.Sprintf("items=%d/pad=%d", cfg.items, cfg.pad), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.StableModels(db, prog.Rules, opt)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Models) != want {
					b.Fatalf("models = %d, want %d", len(res.Models), want)
				}
				if res.Stats.Branches < int64(want)-1 {
					b.Fatalf("branch nodes = %d, want >= %d", res.Stats.Branches, want-1)
				}
			}
		})
	}
}

// BenchmarkParallelSearch pins the worker pool on a branch-heavy
// search (512 models over a padded store): workers=1 is the sequential
// baseline; larger pools must emit the identical model set while
// spreading the subtree exploration and the per-model stability checks
// across cores. On a multi-core runner workers=4 is the headline
// speedup number; on a single core it measures the pool's overhead.
func BenchmarkParallelSearch(b *testing.B) {
	prog, err := parser.Parse(benchChoiceProgram(9, 64))
	if err != nil {
		b.Fatal(err)
	}
	db := prog.Database()
	const want = 1 << 9
	for _, workers := range []int{1, 2, 4} {
		opt := core.Options{MaxAtoms: 4096, Workers: workers}
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.StableModels(db, prog.Rules, opt)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Models) != want {
					b.Fatalf("models = %d, want %d", len(res.Models), want)
				}
			}
		})
	}
}

// benchDisjExistProgram combines disjunctive branching with existential
// witnesses (fresh-only policy, so the witness pool stays canonical):
// 2-coloring an even cycle of nNodes nodes, where every red node grows
// an existential successor. Constraints prune improper colorings, so
// the search explores a deep branch-heavy tree (well over 64 branch
// nodes) but completes only the two alternating colorings — the cost is
// almost entirely branching machinery, which is what this benchmark
// pins. nPad inert facts (plus one datalog rule doubling them) keep the
// store large relative to the per-branch deltas.
func benchDisjExistProgram(nNodes, nPad int) string {
	src := ""
	for i := 0; i < nNodes; i++ {
		src += fmt.Sprintf("node(v%d).\n", i)
		src += fmt.Sprintf("edge(v%d,v%d).\n", i, (i+1)%nNodes)
	}
	for i := 0; i < nPad; i++ {
		src += fmt.Sprintf("pad(p%d).\n", i)
	}
	src += "pad(X) -> padded(X).\n"
	src += ":- edge(X,Y), red(X), red(Y).\n"
	src += ":- edge(X,Y), green(X), green(Y).\n"
	src += "node(X) -> red(X) | green(X).\n"
	src += "red(X) -> succ(X,Y).\n"
	return src
}

func BenchmarkStableSearchDisjunctiveExistential(b *testing.B) {
	for _, cfg := range []struct{ nodes, pad int }{{32, 128}} {
		prog, err := parser.Parse(benchDisjExistProgram(cfg.nodes, cfg.pad))
		if err != nil {
			b.Fatal(err)
		}
		db := prog.Database()
		opt := core.Options{MaxAtoms: 4096, WitnessPolicy: core.WitnessFreshOnly}
		b.Run(fmt.Sprintf("nodes=%d/pad=%d", cfg.nodes, cfg.pad), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.StableModels(db, prog.Rules, opt)
				if err != nil {
					b.Fatal(err)
				}
				// The two alternating 2-colorings of the even cycle.
				if len(res.Models) != 2 {
					b.Fatalf("models = %d, want 2", len(res.Models))
				}
				if res.Stats.Branches < 64 {
					b.Fatalf("branch nodes = %d, want >= 64", res.Stats.Branches)
				}
			}
		})
	}
}

// BenchmarkStabilitySession pins the incremental stability sessions on
// the two shapes they were built for. deep-pad grows a store that is
// very large relative to its per-branch deltas (few choices over a big
// inert prefix): pre-session, every emitted model re-encoded the whole
// prefix for its stability check; the session encodes it once at the
// root and each model pays only its delta window plus one
// solve-under-assumptions. wide-choice is branch-heavy (2^10 models
// over a small prefix), stressing per-branch window encoding, arena
// sharing down the tree, and the dead-encoding pinning that keeps each
// solve confined to its own path. Workers=8 additionally exercises the
// copy-on-extend arena cloning at forks (on a multi-core runner it
// also spreads the per-model solves).
func BenchmarkStabilitySession(b *testing.B) {
	shapes := []struct {
		name       string
		items, pad int
		wantModels int
	}{
		{"deep-pad", 4, 1024, 1 << 4},
		{"wide-choice", 10, 32, 1 << 10},
	}
	for _, shape := range shapes {
		prog, err := parser.Parse(benchChoiceProgram(shape.items, shape.pad))
		if err != nil {
			b.Fatal(err)
		}
		db := prog.Database()
		for _, workers := range []int{1, 8} {
			opt := core.Options{MaxAtoms: 8192, Workers: workers}
			b.Run(fmt.Sprintf("%s/workers=%d", shape.name, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := core.StableModels(db, prog.Rules, opt)
					if err != nil {
						b.Fatal(err)
					}
					if len(res.Models) != shape.wantModels {
						b.Fatalf("models = %d, want %d", len(res.Models), shape.wantModels)
					}
					if res.Stats.StabilityChecks < int64(shape.wantModels) {
						b.Fatalf("stability checks = %d, want >= %d", res.Stats.StabilityChecks, shape.wantModels)
					}
				}
			})
		}
	}
}
