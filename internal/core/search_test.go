package core_test

import (
	"testing"

	"ntgd/internal/core"
	"ntgd/internal/logic"
)

// TestBudgetExhaustionReported: a non-weakly-acyclic program that
// grows forever must hit the atom budget and report exhaustion rather
// than looping.
func TestBudgetExhaustionReported(t *testing.T) {
	prog := mustParse(t, `
node(a).
node(X) -> succ(X,Y).
succ(X,Y) -> node(Y).
`)
	res, err := core.StableModels(prog.Database(), prog.Rules, core.Options{MaxAtoms: 24, MaxNodes: 50000})
	if err == nil && !res.Exhausted {
		t.Fatalf("expected exhaustion on a non-terminating program")
	}
}

// TestAnswersCautiousAndBrave exercises the n-ary answer API on a
// program with two stable models.
func TestAnswersCautiousAndBrave(t *testing.T) {
	prog := mustParse(t, `
item(a). item(b).
item(X), not out(X) -> in(X).
item(X), not in(X) -> out(X).
in(a) -> marked(a).
`)
	db := prog.Database()
	q := logic.Query{AnswerVars: []string{"X"}, Pos: []logic.Atom{logic.A("in", logic.V("X"))}}

	brave, ok, err := core.Answers(db, prog.Rules, q, true, core.Options{})
	if err != nil || !ok {
		t.Fatalf("brave answers: %v ok=%v", err, ok)
	}
	if len(brave) != 2 {
		t.Fatalf("brave answers should be {a, b}: %v", brave)
	}
	cautious, ok, err := core.Answers(db, prog.Rules, q, false, core.Options{})
	if err != nil || !ok {
		t.Fatalf("cautious answers: %v ok=%v", err, ok)
	}
	if len(cautious) != 0 {
		t.Fatalf("no item is in every stable model: %v", cautious)
	}
}

// TestNoModelsVacuousCautious: a program with no stable models
// cautiously entails everything and bravely entails nothing.
func TestNoModelsVacuousCautious(t *testing.T) {
	prog := mustParse(t, `
p(0).
p(X), not t(X) -> r(X).
r(X) -> t(X).
?- r(0).
`)
	db := prog.Database()
	c, err := core.CautiousEntails(db, prog.Rules, prog.Queries[0], core.Options{})
	if err != nil {
		t.Fatalf("cautious: %v", err)
	}
	if !c.Entailed || !c.NoModels {
		t.Fatalf("cautious entailment over empty SMS is vacuous: %+v", c)
	}
	b, err := core.BraveEntails(db, prog.Rules, prog.Queries[0], core.Options{})
	if err != nil {
		t.Fatalf("brave: %v", err)
	}
	if b.Entailed {
		t.Fatalf("brave entailment over empty SMS is false")
	}
}

// TestSharedFreshNullWitnesses: two existential variables in one head
// may be witnessed by the same fresh value; the enumeration must
// include the collapsed model.
func TestSharedFreshNullWitnesses(t *testing.T) {
	prog := mustParse(t, `
seed(a).
seed(X) -> pair(Y,Z).
`)
	res, err := core.StableModels(prog.Database(), prog.Rules, core.Options{})
	if err != nil {
		t.Fatalf("StableModels: %v", err)
	}
	// Witness tuples over {a} ∪ fresh: (a,a), (a,n), (n,a), (n,n),
	// (n,m) — five non-isomorphic stable models.
	if len(res.Models) != 5 {
		for _, m := range res.Models {
			t.Logf("model: %s", m.CanonicalString())
		}
		t.Fatalf("expected 5 stable models, got %d", len(res.Models))
	}
	collapsed := false
	for _, m := range res.Models {
		p := m.ByPred("pair")[0]
		if p.Args[0].Kind == logic.Null && p.Args[0].Equal(p.Args[1]) {
			collapsed = true
		}
	}
	if !collapsed {
		t.Fatalf("the shared-null model pair(n,n) is missing")
	}
}

// TestDeterministicClosureNoBranching: positive non-existential
// programs complete without branching.
func TestDeterministicClosureNoBranching(t *testing.T) {
	prog := mustParse(t, `
e(a,b). e(b,c). e(c,d).
e(X,Y) -> t(X,Y).
t(X,Y), e(Y,Z) -> t(X,Z).
`)
	res, err := core.StableModels(prog.Database(), prog.Rules, core.Options{})
	if err != nil {
		t.Fatalf("StableModels: %v", err)
	}
	if len(res.Models) != 1 {
		t.Fatalf("datalog program has exactly one stable model")
	}
	if res.Stats.Branches != 0 {
		t.Fatalf("no branching expected, got %d", res.Stats.Branches)
	}
	if res.Models[0].CountPred("t") != 6 {
		t.Fatalf("transitive closure size = %d, want 6", res.Models[0].CountPred("t"))
	}
}

// TestMaxModelsEarlyStop: enumeration respects MaxModels.
func TestMaxModelsEarlyStop(t *testing.T) {
	prog := mustParse(t, `
item(a). item(b). item(c).
item(X), not out(X) -> in(X).
item(X), not in(X) -> out(X).
`)
	res, err := core.StableModels(prog.Database(), prog.Rules, core.Options{MaxModels: 3})
	if err != nil {
		t.Fatalf("StableModels: %v", err)
	}
	if len(res.Models) != 3 {
		t.Fatalf("MaxModels ignored: %d", len(res.Models))
	}
}

// TestChoiceProgramModelCount: the in/out choice program has 2^n
// stable models.
func TestChoiceProgramModelCount(t *testing.T) {
	prog := mustParse(t, `
item(a). item(b). item(c).
item(X), not out(X) -> in(X).
item(X), not in(X) -> out(X).
`)
	res, err := core.StableModels(prog.Database(), prog.Rules, core.Options{})
	if err != nil {
		t.Fatalf("StableModels: %v", err)
	}
	if len(res.Models) != 8 {
		t.Fatalf("choice over 3 items should give 8 stable models, got %d", len(res.Models))
	}
	for _, m := range res.Models {
		if !core.IsStableModel(prog.Database(), prog.Rules, m) {
			t.Fatalf("emitted model fails independent stability check")
		}
	}
}

// TestWitnessPolicyDiffersOnlyOnExistentials: on existential-free
// programs both policies enumerate the same models.
func TestWitnessPolicyDiffersOnlyOnExistentials(t *testing.T) {
	src := `
a(1). a(2).
a(X), not q(X) -> p(X).
a(X), not p(X) -> q(X).
`
	prog := mustParse(t, src)
	db := prog.Database()
	anyDom, err := core.StableModels(db, prog.Rules, core.Options{})
	if err != nil {
		t.Fatalf("any-domain: %v", err)
	}
	fresh, err := core.StableModels(db, prog.Rules, core.Options{WitnessPolicy: core.WitnessFreshOnly})
	if err != nil {
		t.Fatalf("fresh-only: %v", err)
	}
	if len(anyDom.Models) != len(fresh.Models) {
		t.Fatalf("policies disagree on an existential-free program: %d vs %d",
			len(anyDom.Models), len(fresh.Models))
	}
}

// TestConsistent reports SMS emptiness.
func TestConsistent(t *testing.T) {
	yes := mustParse(t, `p(a). p(X) -> q(X).`)
	ok, err := core.Consistent(yes.Database(), yes.Rules, core.Options{})
	if err != nil || !ok {
		t.Fatalf("consistent program: ok=%v err=%v", ok, err)
	}
	no := mustParse(t, `p(0). p(X), not t(X) -> r(X). r(X) -> t(X).`)
	ok, err = core.Consistent(no.Database(), no.Rules, core.Options{})
	if err != nil || ok {
		t.Fatalf("inconsistent program: ok=%v err=%v", ok, err)
	}
}

// TestGadgetDivergenceSticky (E9): the sticky undecidability gadget
// grows without bound under fresh-only witnesses; the search reports
// exhaustion at any budget. Under the full SO policy, constant reuse
// may yield finite stable models — both behaviours are checked.
func TestGadgetDivergenceSticky(t *testing.T) {
	prog := mustParse(t, `
p(a). s(b).
p(X), s(Y) -> t(X,Y).
t(X,Y) -> u(Y,Z).
u(Y,Z) -> s(Z).
`)
	res, err := core.StableModels(prog.Database(), prog.Rules, core.Options{
		MaxAtoms: 24, MaxNodes: 1 << 20, MaxModels: 1,
		WitnessPolicy: core.WitnessFreshOnly,
	})
	_ = err
	if !res.Exhausted {
		t.Fatalf("fresh-only witnesses must diverge on the grid gadget")
	}
	soRes, err := core.StableModels(prog.Database(), prog.Rules, core.Options{
		MaxAtoms: 24, MaxNodes: 1 << 20, MaxModels: 1,
	})
	if err != nil && len(soRes.Models) == 0 {
		t.Fatalf("the SO policy should find a finite stable model by constant reuse: %v", err)
	}
	if len(soRes.Models) == 1 && !core.IsStableModel(prog.Database(), prog.Rules, soRes.Models[0]) {
		t.Fatalf("found model fails the independent check")
	}
}

// TestQueryConstantEnlargesModelSet: with the query constant bob in
// scope, the father program acquires a third stable model.
func TestQueryConstantEnlargesModelSet(t *testing.T) {
	prog := mustParse(t, fatherProgram)
	db := prog.Database()
	plain, err := core.StableModels(db, prog.Rules, core.Options{})
	if err != nil {
		t.Fatalf("plain: %v", err)
	}
	withBob, err := core.StableModels(db, prog.Rules, core.Options{
		ExtraConstants: []logic.Term{logic.C("bob")},
	})
	if err != nil {
		t.Fatalf("with bob: %v", err)
	}
	if len(withBob.Models) != len(plain.Models)+1 {
		t.Fatalf("bob adds exactly one model: %d vs %d", len(withBob.Models), len(plain.Models))
	}
}
