package core

import (
	"ntgd/internal/logic"
)

// ImmediateConsequences computes T_{Σ,I}(S), the immediate consequence
// operator of Section 5.1 relative to the oracle interpretation I
// (given by its positive part): an atom p(t̄) ∈ I⁺ is an immediate
// consequence for S and Σ relative to I if some rule σ and
// homomorphism h satisfy h(B⁺(σ)) ⊆ S, h(B⁻(σ)) ∩ I⁺ = ∅ (the negative
// literals are answered by the oracle), and p(t̄) ∈ h(H(σ)) for an
// extension of h mapping some head disjunct into I⁺.
func ImmediateConsequences(s *logic.FactStore, rules []*logic.Rule, oracle *logic.FactStore) []logic.Atom {
	return immediateConsequencesFrom(s, rules, oracle, 0)
}

// immediateConsequencesFrom is the semi-naive variant: only body
// homomorphisms using at least one atom of s with store index ≥ from
// are considered (all of them when from <= 0). TInfinity seeds each
// round from the previous round's delta this way.
func immediateConsequencesFrom(s *logic.FactStore, rules []*logic.Rule, oracle *logic.FactStore, from int) []logic.Atom {
	var out []logic.Atom
	seen := make(map[string]bool)
	for _, r := range rules {
		rule := r
		pos, neg := logic.SplitLiterals(rule.Body)
		logic.FindHomsFrom(pos, nil, s, from, logic.Subst{}, func(h logic.Subst) bool {
			for _, n := range neg {
				if oracle.Has(h.ApplyAtom(n)) {
					return true
				}
			}
			for i := range rule.Heads {
				logic.FindHoms(rule.Heads[i], nil, oracle, h, func(mu logic.Subst) bool {
					for _, a := range rule.Heads[i] {
						g := mu.ApplyAtom(a)
						if k := g.Key(); !seen[k] {
							seen[k] = true
							out = append(out, g)
						}
					}
					return true
				})
			}
			return true
		})
	}
	return out
}

// TInfinity computes T∞_{Σ,I}(D): the least fixpoint of the immediate
// consequence operator starting from the database. Lemma 7 states that
// M⁺ = T∞_{Σ,M}(D) for every stable model M, which both justifies the
// search strategy of this package and provides an independent
// validation oracle used by the test suite. The fixpoint is computed
// semi-naively: each round seeds body homomorphisms from the atoms
// added in the previous round only.
func TInfinity(db *logic.FactStore, rules []*logic.Rule, oracle *logic.FactStore) *logic.FactStore {
	s := db.Snapshot()
	for from := 0; ; {
		mark := s.Len()
		added := 0
		for _, a := range immediateConsequencesFrom(s, rules, oracle, from) {
			if s.Add(a) {
				added++
			}
		}
		from = mark
		if added == 0 {
			return s
		}
	}
}
