package core

import (
	"ntgd/internal/logic"
)

// ImmediateConsequences computes T_{Σ,I}(S), the immediate consequence
// operator of Section 5.1 relative to the oracle interpretation I
// (given by its positive part): an atom p(t̄) ∈ I⁺ is an immediate
// consequence for S and Σ relative to I if some rule σ and
// homomorphism h satisfy h(B⁺(σ)) ⊆ S, h(B⁻(σ)) ∩ I⁺ = ∅ (the negative
// literals are answered by the oracle), and p(t̄) ∈ h(H(σ)) for an
// extension of h mapping some head disjunct into I⁺.
func ImmediateConsequences(s *logic.FactStore, rules []*logic.Rule, oracle *logic.FactStore) []logic.Atom {
	var out []logic.Atom
	seen := make(map[string]bool)
	for _, r := range rules {
		rule := r
		pos, neg := logic.SplitLiterals(rule.Body)
		logic.FindHoms(pos, nil, s, logic.Subst{}, func(h logic.Subst) bool {
			for _, n := range neg {
				if oracle.Has(h.ApplyAtom(n)) {
					return true
				}
			}
			for i := range rule.Heads {
				logic.FindHoms(rule.Heads[i], nil, oracle, h, func(mu logic.Subst) bool {
					for _, a := range rule.Heads[i] {
						g := mu.ApplyAtom(a)
						if k := g.Key(); !seen[k] {
							seen[k] = true
							out = append(out, g)
						}
					}
					return true
				})
			}
			return true
		})
	}
	return out
}

// TInfinity computes T∞_{Σ,I}(D): the least fixpoint of the immediate
// consequence operator starting from the database. Lemma 7 states that
// M⁺ = T∞_{Σ,M}(D) for every stable model M, which both justifies the
// search strategy of this package and provides an independent
// validation oracle used by the test suite.
func TInfinity(db *logic.FactStore, rules []*logic.Rule, oracle *logic.FactStore) *logic.FactStore {
	s := db.Clone()
	for {
		added := 0
		for _, a := range ImmediateConsequences(s, rules, oracle) {
			if s.Add(a) {
				added++
			}
		}
		if added == 0 {
			return s
		}
	}
}
