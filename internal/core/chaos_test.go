//go:build failpoint

package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"ntgd/internal/engine"
	"ntgd/internal/failpoint"
	"ntgd/internal/logic"
)

// TestChaosRandomPrograms is the probabilistic leg of the chaos suite:
// every failpoint site armed with a small seeded probability, over
// random programs and both pool shapes. Whatever the injection
// schedule, a run must end in a clean result or a taxonomy error —
// never a hang, a leak (the -race/-shuffle CI leg), or an untyped
// panic — and after disarming, the same Compiled value must reproduce
// the reference model set exactly.
func TestChaosRandomPrograms(t *testing.T) {
	defer failpoint.Reset()
	rng := rand.New(rand.NewSource(99))
	opt := Options{MaxAtoms: 40, MaxNodes: 40000}
	cases := 0
	for i := 0; cases < 12 && i < 100; i++ {
		prog := randomSearchProgram(rng)
		if prog == nil {
			continue
		}
		cases++
		db := prog.Database()
		ref, refEx := canonicalModelSet(t, db, prog.Rules, opt, false)
		for _, workers := range []int{1, 4} {
			wopt := opt
			wopt.Workers = workers
			c, err := Compile(db, prog.Rules, wopt)
			if err != nil {
				t.Fatalf("case %d: compile: %v", cases, err)
			}
			for _, site := range failpoint.Sites() {
				failpoint.ArmProb(site, 0.05, int64(1000*cases+workers))
			}
			_, _, cerr := c.Enumerate(context.Background(), engine.Params{}, func(*logic.FactStore) bool { return true })
			switch {
			case cerr == nil,
				errors.Is(cerr, engine.ErrBudget),
				errors.Is(cerr, engine.ErrInternal):
			default:
				t.Fatalf("case %d (workers=%d): chaos run err = %v, outside the taxonomy", cases, workers, cerr)
			}
			failpoint.Reset()
			// Recovery: the same Compiled value, uninjected, matches the
			// reference enumeration.
			var keys []string
			_, ex, err := c.Enumerate(context.Background(), engine.Params{}, func(m *logic.FactStore) bool {
				keys = append(keys, canonicalModelKey(m))
				return true
			})
			if err != nil && !ex {
				t.Fatalf("case %d (workers=%d): recovery run: %v", cases, workers, err)
			}
			if ex != refEx {
				t.Fatalf("case %d (workers=%d): recovery exhausted=%v, reference %v", cases, workers, ex, refEx)
			}
			if !ex && !sameKeySets(ref, keys) {
				t.Fatalf("case %d (workers=%d): recovery models diverged\nref: %v\ngot: %v", cases, workers, ref, keys)
			}
		}
	}
	if cases == 0 {
		t.Fatal("no random programs generated")
	}
}

func sameKeySets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[string]int, len(a))
	for _, k := range a {
		set[k]++
	}
	for _, k := range b {
		set[k]--
		if set[k] < 0 {
			return false
		}
	}
	return true
}
