package core

import (
	"context"

	"ntgd/internal/engine"
	"ntgd/internal/logic"
)

// QAResult is the outcome of a Boolean query answering call. It is the
// engine-uniform report shared with the other semantics (see
// internal/engine.QAResult for the field documentation).
type QAResult = engine.QAResult

// CautiousEntails decides (D,Σ) |=SMS q (Section 3.4): q must hold in
// every stable model. The enumeration stops at the first
// counter-model. The query's constants extend the witness pool
// (Example 2: the model containing hasFather(alice, bob) exists only
// if bob can witness the existential).
func CautiousEntails(db *logic.FactStore, rules []*logic.Rule, q logic.Query, opt Options) (QAResult, error) {
	c, err := Compile(db, rules, opt)
	if err != nil {
		return QAResult{}, err
	}
	return engine.CautiousEntails(context.Background(), c, engine.Params{}, q)
}

// BraveEntails decides whether some stable model satisfies q
// (Section 7.1's brave semantics). The enumeration stops at the first
// witness.
func BraveEntails(db *logic.FactStore, rules []*logic.Rule, q logic.Query, opt Options) (QAResult, error) {
	c, err := Compile(db, rules, opt)
	if err != nil {
		return QAResult{}, err
	}
	return engine.BraveEntails(context.Background(), c, engine.Params{}, q)
}

// Answers computes the certain (cautious) or possible (brave) answers
// of an n-ary query under the SO semantics (Sections 3.4 and 7.1). For
// cautious answering with an empty SMS the answer set is ill-defined
// (every tuple qualifies vacuously); ok=false is returned in that
// case.
func Answers(db *logic.FactStore, rules []*logic.Rule, q logic.Query, brave bool, opt Options) (tuples []logic.AnswerTuple, ok bool, err error) {
	c, err := Compile(db, rules, opt)
	if err != nil {
		return nil, false, err
	}
	tuples, ok, _, _, err = engine.Answers(context.Background(), c, engine.Params{}, q, brave)
	return tuples, ok, err
}

// Consistent reports whether SMS(D,Σ) is non-empty.
func Consistent(db *logic.FactStore, rules []*logic.Rule, opt Options) (bool, error) {
	c, err := Compile(db, rules, opt)
	if err != nil {
		return false, err
	}
	ok, _, _, err := engine.Consistent(context.Background(), c, engine.Params{})
	return ok, err
}
