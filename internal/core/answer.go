package core

import (
	"sort"

	"ntgd/internal/logic"
)

// QAResult is the outcome of a Boolean query answering call.
type QAResult struct {
	// Entailed reports the verdict ((D,Σ) |=SMS q for cautious,
	// ∃M ∈ SMS: M |= q for brave).
	Entailed bool
	// Witness is, for cautious answering, a counter-model (a stable
	// model not satisfying q) when Entailed is false; for brave
	// answering, a witnessing model when Entailed is true.
	Witness *logic.FactStore
	// ModelsChecked counts the stable models inspected.
	ModelsChecked int64
	// NoModels reports that SMS(D,Σ) is empty (cautious entailment is
	// then vacuously true and brave entailment false).
	NoModels bool
	// Exhausted reports that a search budget was hit; the verdict may
	// then be incomplete (for cautious answering a "true" verdict is
	// unconfirmed; a "false" verdict with a witness remains sound).
	Exhausted bool
	Stats     Stats
}

// queryOptions extends the witness pool with the query constants,
// without which the engine could miss stable models that distinguish
// the query (Example 2: the model containing hasFather(alice, bob)
// exists only if bob can witness the existential).
func queryOptions(opt Options, q logic.Query) Options {
	have := make(map[string]bool, len(opt.ExtraConstants))
	for _, c := range opt.ExtraConstants {
		have[c.Key()] = true
	}
	for _, c := range q.Constants() {
		if !have[c.Key()] {
			have[c.Key()] = true
			opt.ExtraConstants = append(opt.ExtraConstants, c)
		}
	}
	return opt
}

// CautiousEntails decides (D,Σ) |=SMS q (Section 3.4): q must hold in
// every stable model. The enumeration stops at the first
// counter-model.
func CautiousEntails(db *logic.FactStore, rules []*logic.Rule, q logic.Query, opt Options) (QAResult, error) {
	if err := q.Validate(); err != nil {
		return QAResult{}, err
	}
	opt = queryOptions(opt, q)
	res := QAResult{Entailed: true, NoModels: true}
	stats, exhausted, err := EnumStableModels(db, rules, opt, func(m *logic.FactStore) bool {
		res.ModelsChecked++
		res.NoModels = false
		if !q.Holds(m) {
			res.Entailed = false
			res.Witness = m
			return false
		}
		return true
	})
	res.Stats = stats
	res.Exhausted = exhausted
	if err == ErrBudget && !res.Entailed {
		// A concrete counter-model keeps the negative verdict sound.
		err = nil
		res.Exhausted = true
	}
	return res, err
}

// BraveEntails decides whether some stable model satisfies q
// (Section 7.1's brave semantics). The enumeration stops at the first
// witness.
func BraveEntails(db *logic.FactStore, rules []*logic.Rule, q logic.Query, opt Options) (QAResult, error) {
	if err := q.Validate(); err != nil {
		return QAResult{}, err
	}
	opt = queryOptions(opt, q)
	res := QAResult{NoModels: true}
	stats, exhausted, err := EnumStableModels(db, rules, opt, func(m *logic.FactStore) bool {
		res.ModelsChecked++
		res.NoModels = false
		if q.Holds(m) {
			res.Entailed = true
			res.Witness = m
			return false
		}
		return true
	})
	res.Stats = stats
	res.Exhausted = exhausted
	if err == ErrBudget && res.Entailed {
		err = nil
		res.Exhausted = true
	}
	return res, err
}

// Answers computes the certain (cautious) or possible (brave) answers
// of an n-ary NCQ: the intersection (resp. union) of q(M) over all
// stable models (Sections 3.4 and 7.1). For cautious answering with an
// empty SMS the answer set is ill-defined (every tuple qualifies
// vacuously); ok=false is returned in that case.
func Answers(db *logic.FactStore, rules []*logic.Rule, q logic.Query, brave bool, opt Options) (tuples []logic.AnswerTuple, ok bool, err error) {
	if err := q.Validate(); err != nil {
		return nil, false, err
	}
	opt = queryOptions(opt, q)
	var acc map[string]logic.AnswerTuple
	models := 0
	_, exhausted, err := EnumStableModels(db, rules, opt, func(m *logic.FactStore) bool {
		models++
		cur := make(map[string]logic.AnswerTuple)
		for _, t := range q.Answers(m) {
			cur[t.Key()] = t
		}
		if acc == nil {
			acc = cur
			return true
		}
		if brave {
			for k, t := range cur {
				acc[k] = t
			}
		} else {
			for k := range acc {
				if _, keep := cur[k]; !keep {
					delete(acc, k)
				}
			}
		}
		return true
	})
	if err != nil && err != ErrBudget {
		return nil, false, err
	}
	if models == 0 {
		if brave {
			return nil, true, err
		}
		return nil, false, err
	}
	keys := make([]string, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		tuples = append(tuples, acc[k])
	}
	return tuples, !exhausted, err
}

// Consistent reports whether SMS(D,Σ) is non-empty.
func Consistent(db *logic.FactStore, rules []*logic.Rule, opt Options) (bool, error) {
	found := false
	_, _, err := EnumStableModels(db, rules, opt, func(*logic.FactStore) bool {
		found = true
		return false
	})
	if found {
		return true, nil
	}
	return false, err
}
