package core_test

import (
	"testing"

	"ntgd/internal/core"
	"ntgd/internal/logic"
)

// TestNullRenamingCollapsesDuplicates: the engine must not report the
// same model twice when different branches invent nulls in different
// orders — two independent existential rules produce exactly four
// models, not more.
func TestNullRenamingCollapsesDuplicates(t *testing.T) {
	prog := mustParse(t, `
a(x).
a(X) -> p(X,Y).
a(X) -> q(X,Z).
`)
	res, err := core.StableModels(prog.Database(), prog.Rules, core.Options{})
	if err != nil {
		t.Fatalf("StableModels: %v", err)
	}
	// Witnesses for p: {x, fresh}; for q: {x, fresh, p's null when
	// fresh}. Up to isomorphism: (x,x), (x,n), (n,x), (n,n shared),
	// (n,m distinct) — five.
	if len(res.Models) != 5 {
		for _, m := range res.Models {
			t.Logf("model: %s", m.CanonicalString())
		}
		t.Fatalf("expected 5 pairwise non-isomorphic models, got %d", len(res.Models))
	}
	// No two emitted models may be equal after canonical null
	// renaming (spot-check pairwise distinctness).
	seen := map[string]bool{}
	for _, m := range res.Models {
		key := canonicalKeyForTest(m)
		if seen[key] {
			t.Fatalf("duplicate model emitted: %s", m.CanonicalString())
		}
		seen[key] = true
	}
}

// canonicalKeyForTest renames nulls by first occurrence over sorted
// atoms — a coarser canonical form than the engine's; collisions here
// imply collisions there.
func canonicalKeyForTest(m *logic.FactStore) string {
	ren := map[string]string{}
	out := ""
	for _, a := range m.Sorted() {
		args := make([]logic.Term, len(a.Args))
		for i, t := range a.Args {
			if t.Kind == logic.Null {
				n, ok := ren[t.Name]
				if !ok {
					n = "k" + string(rune('0'+len(ren)))
					ren[t.Name] = n
				}
				args[i] = logic.N(n)
			} else {
				args[i] = t
			}
		}
		out += logic.Atom{Pred: a.Pred, Args: args}.String() + ";"
	}
	return out
}

// TestStabilityRejectsJointlyUnsupported: two atoms supporting each
// other through rules but not grounded in D must be rejected by the
// stability check even though they form a classical model.
func TestStabilityRejectsJointlyUnsupported(t *testing.T) {
	prog := mustParse(t, `
seed(s).
p(X) -> q(X).
q(X) -> p(X).
`)
	db := prog.Database()
	m := logic.StoreOf(
		logic.A("seed", logic.C("s")),
		logic.A("p", logic.C("s")),
		logic.A("q", logic.C("s")),
	)
	if !logic.IsModel(prog.Rules, m) {
		t.Fatalf("m is a classical model")
	}
	if core.IsStableModel(db, prog.Rules, m) {
		t.Fatalf("circular support must fail the SM[D,Σ] subset check")
	}
	res, err := core.StableModels(db, prog.Rules, core.Options{})
	if err != nil {
		t.Fatalf("StableModels: %v", err)
	}
	if len(res.Models) != 1 || res.Models[0].Len() != 1 {
		t.Fatalf("only {seed(s)} is stable; got %d models", len(res.Models))
	}
}
