package core

import (
	"math/rand"
	"testing"

	"ntgd/internal/logic"
)

// Pins the semi-naive TInfinity (delta-seeded immediate-consequence
// rounds) to the naive fixpoint recomputed from the exported
// ImmediateConsequences every round.

func tInfinityNaive(db *logic.FactStore, rules []*logic.Rule, oracle *logic.FactStore) *logic.FactStore {
	s := db.Clone()
	for {
		added := 0
		for _, a := range ImmediateConsequences(s, rules, oracle) {
			if s.Add(a) {
				added++
			}
		}
		if added == 0 {
			return s
		}
	}
}

func TestTInfinityMatchesNaiveRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		db, universe, rules := randNDProgram(rng)
		// The universe doubles as the negative-literal oracle I.
		got := TInfinity(db, rules, universe)
		want := tInfinityNaive(db, rules, universe)
		if !got.Equal(want) {
			t.Fatalf("trial %d: TInfinity diverges\ngot:  %s\nwant: %s",
				trial, got.CanonicalString(), want.CanonicalString())
		}
	}
}
