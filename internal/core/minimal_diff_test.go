package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"ntgd/internal/logic"
)

// Pins the compiled bitmask model-subset search (compileModelCheck)
// behind IsMinimalModel/MinimalModels to the original
// one-homomorphism-search-per-subset oracles.

// randNDProgram generates a small database, candidate universe, and
// rule set exercising negation, repeated variables, constants, head
// existentials and disjunction.
func randNDProgram(rng *rand.Rand) (db, universe *logic.FactStore, rules []*logic.Rule) {
	consts := []logic.Term{logic.C("a"), logic.C("b"), logic.C("c")}
	randConst := func() logic.Term { return consts[rng.Intn(len(consts))] }
	db = logic.NewFactStore()
	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		db.Add(logic.A("b", randConst()))
	}
	universe = db.Clone()
	for i, n := 0, rng.Intn(6); i < n; i++ {
		if rng.Intn(2) == 0 {
			universe.Add(logic.A("p", randConst()))
		} else {
			universe.Add(logic.A("q", randConst(), randConst()))
		}
	}
	vars := []string{"X", "Y"}
	nrules := 1 + rng.Intn(3)
	for i := 0; i < nrules; i++ {
		var body []logic.Literal
		body = append(body, logic.Pos(logic.A("b", logic.V("X"))))
		switch rng.Intn(4) {
		case 0:
			body = append(body, logic.Pos(logic.A("q", logic.V("X"), logic.V("X")))) // repeated var
		case 1:
			body = append(body, logic.Neg(logic.A("p", logic.V("X")))) // negation
		case 2:
			body = append(body, logic.Pos(logic.A("q", logic.V("X"), randConst()))) // constant
		}
		r := &logic.Rule{Label: fmt.Sprintf("m%d", i), Body: body}
		switch rng.Intn(3) {
		case 0:
			r.Heads = [][]logic.Atom{{logic.A("p", logic.V(vars[rng.Intn(2)]))}} // maybe existential head
		case 1:
			r.Heads = [][]logic.Atom{
				{logic.A("p", logic.V("X"))},
				{logic.A("q", logic.V("X"), logic.V("X"))},
			} // disjunction
		default:
			r.Heads = [][]logic.Atom{{logic.A("q", logic.V("X"), logic.V("Y"))}} // existential Y
		}
		rules = append(rules, r)
	}
	return db, universe, rules
}

func storeSetKeys(ms []*logic.FactStore) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.CanonicalString()
	}
	sort.Strings(out)
	return out
}

func TestIsMinimalModelMatchesNaiveRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	agree, minimalSeen := 0, 0
	for trial := 0; trial < 200; trial++ {
		db, universe, rules := randNDProgram(rng)
		got := IsMinimalModel(db, rules, universe)
		want := isMinimalModelNaive(db, rules, universe)
		if got != want {
			t.Fatalf("trial %d: IsMinimalModel=%v naive=%v\ndb: %s\nuniverse: %s\nrules: %v",
				trial, got, want, db.CanonicalString(), universe.CanonicalString(), rules)
		}
		agree++
		if got {
			minimalSeen++
		}
	}
	if minimalSeen == 0 {
		t.Fatalf("degenerate test: no minimal model among %d trials", agree)
	}
}

func TestMinimalModelsMatchNaiveRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	nonEmpty := 0
	for trial := 0; trial < 200; trial++ {
		db, universe, rules := randNDProgram(rng)
		got := storeSetKeys(MinimalModels(db, rules, universe))
		want := storeSetKeys(minimalModelsNaive(db, rules, universe))
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d vs %d minimal models\ngot:  %v\nwant: %v", trial, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: model sets differ\ngot:  %v\nwant: %v", trial, got, want)
			}
		}
		if len(got) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Fatalf("degenerate test: no trial produced minimal models")
	}
}
