// Package core implements the paper's primary contribution: the new
// approach to stable model semantics for normal (possibly disjunctive)
// tuple-generating dependencies, defined via the second-order formula
// SM[D,Σ] (Definition 1) rather than via Skolemization. It provides:
//
//   - enumeration of the stable models SMS(D,Σ) by a chase-with-choices
//     search justified by Lemma 7 (M⁺ = T∞_{Σ,M}(D): every stable model
//     is obtained by "executing" Σ from D using M as an oracle for the
//     negative literals);
//   - the stability check of Proposition 11 (no J with D ⊆ J ⊊ M⁺
//     models the τ_{p▷s}-transformed program), encoded in CNF and
//     decided by internal/sat;
//   - the immediate consequence operator T_{Σ,I} of Section 5.1;
//   - cautious and brave query answering for normal (Boolean)
//     conjunctive queries (SMS-QAns, Sections 3.4 and 7.1).
//
// The key semantic point (Examples 2 and 4) is that an existential head
// variable may be witnessed by any domain element — including a
// constant such as Bob — not only by a fresh null as under
// Skolemization or the operational semantics of Baget et al. The engine
// therefore draws witnesses from the current domain plus the query's
// constants plus fresh nulls (Options.WitnessPolicy = WitnessAnyDomain);
// since NTGDs are constant-free and query answers are invariant under
// isomorphisms fixing the query constants, this restricted pool is
// complete for certain-answer computation. Setting WitnessFreshOnly
// reproduces the operational semantics of Baget et al. [3].
package core

import (
	"errors"
	"sort"
	"strconv"
	"strings"

	"ntgd/internal/chase"
	"ntgd/internal/logic"
)

// WitnessPolicy selects how existential head variables are witnessed
// during the stable model search.
type WitnessPolicy int

const (
	// WitnessAnyDomain draws witnesses from the current domain, the
	// extra constants, and fresh nulls — the paper's SO semantics.
	WitnessAnyDomain WitnessPolicy = iota
	// WitnessFreshOnly always invents fresh nulls — the operational
	// chase-based semantics of Baget et al. [3], provided for
	// comparison (Example 2 shows it yields unintended answers).
	WitnessFreshOnly
)

func (w WitnessPolicy) String() string {
	if w == WitnessFreshOnly {
		return "fresh-only"
	}
	return "any-domain"
}

// Options configures the stable model search.
type Options struct {
	// MaxAtoms bounds the candidate model size. 0 derives a budget
	// from the oblivious chase of Σ⁺ (sound for weakly-acyclic sets by
	// Proposition 9).
	MaxAtoms int
	// MaxNodes bounds the number of search nodes (0 = 8M).
	MaxNodes int64
	// WitnessPolicy selects the witness pool (see the type).
	WitnessPolicy WitnessPolicy
	// ExtraConstants extends the witness pool, typically with the
	// constants of the query being answered.
	ExtraConstants []logic.Term
	// MaxModels stops enumeration after this many models (0 = all).
	MaxModels int
}

// Stats reports search effort.
type Stats struct {
	Nodes           int64
	Branches        int64
	Deterministic   int64
	Completed       int64
	StabilityChecks int64
	StabilityFailed int64
	ModelsEmitted   int64
}

// Result holds an enumeration outcome.
type Result struct {
	Models []*logic.FactStore
	Stats  Stats
	// Exhausted is true when a budget was hit, in which case the
	// enumeration may be incomplete (additional stable models may
	// exist).
	Exhausted bool
}

// ErrBudget is reported (alongside partial results) when a budget was
// hit.
var ErrBudget = errors.New("core: search budget exhausted; enumeration may be incomplete")

// StableModels enumerates SMS(D,Σ).
func StableModels(db *logic.FactStore, rules []*logic.Rule, opt Options) (*Result, error) {
	res := &Result{}
	stats, exhausted, err := EnumStableModels(db, rules, opt, func(m *logic.FactStore) bool {
		res.Models = append(res.Models, m)
		return opt.MaxModels == 0 || len(res.Models) < opt.MaxModels
	})
	res.Stats = stats
	res.Exhausted = exhausted
	return res, err
}

// EnumStableModels streams stable models to visit (return false to
// stop). The bool result reports budget exhaustion (the enumeration may
// then be incomplete).
func EnumStableModels(db *logic.FactStore, rules []*logic.Rule, opt Options, visit func(*logic.FactStore) bool) (Stats, bool, error) {
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return Stats{}, false, err
		}
	}
	if opt.MaxAtoms <= 0 {
		opt.MaxAtoms = chase.BudgetForStableSearch(db, rules, opt.ExtraConstants, 0)
	}
	if opt.MaxNodes <= 0 {
		opt.MaxNodes = 8 << 20
	}
	s := &searcher{
		rules: rules,
		db:    db,
		opt:   opt,
		visit: visit,
		seen:  make(map[string]bool),
	}
	st := &state{
		A:        db.Clone(),
		mustIn:   map[string]logic.Atom{},
		mustOut:  map[string]logic.Atom{},
		deferred: map[string]bool{},
	}
	s.dfs(st)
	var err error
	if s.exhausted {
		err = ErrBudget
	}
	return s.stats, s.exhausted, err
}

// state is one node of the search: the derived atoms A, the negative
// assumptions made when firing rules through their negative literals
// (mustOut: atoms that must never be derived), the positive promises
// made when deferring a trigger (mustIn: atoms that must eventually be
// derived), and the set of deferred trigger keys.
type state struct {
	A        *logic.FactStore
	mustIn   map[string]logic.Atom
	mustOut  map[string]logic.Atom
	deferred map[string]bool
	nullCtr  int
}

func (st *state) clone() *state {
	c := &state{
		A:        st.A.Clone(),
		mustIn:   make(map[string]logic.Atom, len(st.mustIn)),
		mustOut:  make(map[string]logic.Atom, len(st.mustOut)),
		deferred: make(map[string]bool, len(st.deferred)),
		nullCtr:  st.nullCtr,
	}
	for k, v := range st.mustIn {
		c.mustIn[k] = v
	}
	for k, v := range st.mustOut {
		c.mustOut[k] = v
	}
	for k := range st.deferred {
		c.deferred[k] = true
	}
	return c
}

type searcher struct {
	rules     []*logic.Rule
	db        *logic.FactStore
	opt       Options
	visit     func(*logic.FactStore) bool
	stats     Stats
	seen      map[string]bool
	stopped   bool
	exhausted bool
}

// trigger is an active trigger: a rule, a homomorphism of its positive
// body into A whose negative body instances are absent from A, such
// that no head disjunct is satisfied and the trigger has not been
// deferred.
type trigger struct {
	rule *logic.Rule
	hom  logic.Subst
}

func (t *trigger) key() string { return t.rule.Label + "|" + t.hom.String() }

// deterministic reports whether handling the trigger requires no
// branching: single disjunct, no negative body literals, no
// existential head variables.
func (t *trigger) deterministic() bool {
	return len(t.rule.Heads) == 1 && !t.rule.HasNegation() && len(t.rule.ExistVars(0)) == 0
}

// findTrigger returns an active trigger, preferring deterministic ones.
func (s *searcher) findTrigger(st *state) *trigger {
	var firstAny *trigger
	for _, r := range s.rules {
		rule := r
		var found *trigger
		logic.FindHoms(rule.PosBody(), rule.NegBody(), st.A, logic.Subst{}, func(h logic.Subst) bool {
			// Satisfied heads need no action.
			for i := range rule.Heads {
				if logic.ExistsHom(rule.Heads[i], nil, st.A, h) {
					return true
				}
			}
			t := &trigger{rule: rule, hom: h.Clone()}
			if st.deferred[t.key()] {
				return true
			}
			found = t
			return false
		})
		if found == nil {
			continue
		}
		if found.deterministic() {
			return found
		}
		if firstAny == nil {
			firstAny = found
		}
	}
	return firstAny
}

// dfs explores the state; returns false if the search should stop
// globally (visitor stop or budget).
func (s *searcher) dfs(st *state) bool {
	s.stats.Nodes++
	if s.stats.Nodes > s.opt.MaxNodes {
		s.exhausted = true
		return false
	}
	// Deterministic closure: fire forced triggers without branching.
	for {
		t := s.findTrigger(st)
		if t == nil {
			return s.complete(st)
		}
		if !t.deterministic() {
			return s.branch(st, t)
		}
		s.stats.Deterministic++
		if !s.apply(st, t, 0, t.hom) {
			return true // dead branch
		}
	}
}

// branch handles a non-deterministic trigger: one child per
// (disjunct, witness tuple) plus one deferral child per negative body
// literal instance.
func (s *searcher) branch(st *state, t *trigger) bool {
	s.stats.Branches++
	for i := range t.rule.Heads {
		exist := t.rule.ExistVars(i)
		for _, mu := range s.witnessTuples(st, t, exist) {
			child := st.clone()
			full := t.hom.Clone()
			// Materialize witness terms, turning fresh placeholders
			// into sequentially numbered nulls.
			fresh := make(map[string]logic.Term)
			for _, z := range exist {
				w := mu[z]
				if w.Kind == logic.Var { // fresh placeholder
					n, ok := fresh[w.Name]
					if !ok {
						child.nullCtr++
						n = logic.N("n" + strconv.Itoa(child.nullCtr))
						fresh[w.Name] = n
					}
					full[z] = n
				} else {
					full[z] = w
				}
			}
			if s.applyTo(child, t, i, full) {
				if !s.dfs(child) {
					return false
				}
			}
		}
	}
	// Deferral branches: assume one negative body instance will be in
	// the final model, blocking the trigger.
	seenNeg := map[string]bool{}
	for _, n := range t.rule.NegBody() {
		g := t.hom.ApplyAtom(n)
		k := g.Key()
		if seenNeg[k] {
			continue
		}
		seenNeg[k] = true
		child := st.clone()
		if _, conflict := child.mustOut[k]; conflict {
			continue
		}
		child.mustIn[k] = g
		child.deferred[t.key()] = true
		if !s.dfs(child) {
			return false
		}
	}
	return true
}

// witnessTuples enumerates the witness assignments for the existential
// variables: every tuple over the current domain ∪ extra constants ∪
// fresh placeholders (canonically ordered: placeholder j+1 may appear
// only if placeholder j appears earlier), or a single all-fresh tuple
// under WitnessFreshOnly. The returned substitutions map existential
// variables to terms; fresh placeholders are variables named $f<i>.
func (s *searcher) witnessTuples(st *state, t *trigger, exist []string) []logic.Subst {
	if len(exist) == 0 {
		return []logic.Subst{{}}
	}
	if s.opt.WitnessPolicy == WitnessFreshOnly {
		mu := logic.Subst{}
		for i, z := range exist {
			mu[z] = logic.V("$f" + strconv.Itoa(i))
		}
		return []logic.Subst{mu}
	}
	pool := st.A.Domain()
	for _, c := range s.opt.ExtraConstants {
		dup := false
		for _, p := range pool {
			if p.Equal(c) {
				dup = true
				break
			}
		}
		if !dup {
			pool = append(pool, c)
		}
	}
	var out []logic.Subst
	mu := logic.Subst{}
	var rec func(i, freshUsed int)
	rec = func(i, freshUsed int) {
		if i == len(exist) {
			out = append(out, mu.Clone())
			return
		}
		for _, v := range pool {
			mu[exist[i]] = v
			rec(i+1, freshUsed)
		}
		// Reuse an already-introduced fresh placeholder…
		for f := 0; f < freshUsed; f++ {
			mu[exist[i]] = logic.V("$f" + strconv.Itoa(f))
			rec(i+1, freshUsed)
		}
		// …or introduce the next one (canonical order).
		if freshUsed < len(exist) {
			mu[exist[i]] = logic.V("$f" + strconv.Itoa(freshUsed))
			rec(i+1, freshUsed+1)
		}
		delete(mu, exist[i])
	}
	rec(0, 0)
	return out
}

// apply clones nothing: it fires the trigger on st in place (used for
// deterministic triggers). Reports false if the branch died.
func (s *searcher) apply(st *state, t *trigger, disjunct int, full logic.Subst) bool {
	return s.applyTo(st, t, disjunct, full)
}

// applyTo fires (rule, hom) choosing the given disjunct under the fully
// extended substitution: head atoms are added to A and the negative
// body instances recorded as permanent negative assumptions. It reports
// false when the state became inconsistent (or a budget was hit).
func (s *searcher) applyTo(st *state, t *trigger, disjunct int, full logic.Subst) bool {
	if t.rule.IsConstraint() {
		return false
	}
	for _, n := range t.rule.NegBody() {
		g := t.hom.ApplyAtom(n)
		k := g.Key()
		if st.A.HasKey(k) {
			return false
		}
		if _, promised := st.mustIn[k]; promised {
			return false
		}
		st.mustOut[k] = g
	}
	for _, a := range t.rule.Heads[disjunct] {
		g := full.ApplyAtom(a)
		if _, banned := st.mustOut[g.Key()]; banned {
			return false
		}
		st.A.Add(g)
	}
	if st.A.Len() > s.opt.MaxAtoms {
		s.exhausted = true
		return false
	}
	return true
}

// complete validates a fixpoint state and, if it passes the paper's
// stability condition, emits the model.
func (s *searcher) complete(st *state) bool {
	s.stats.Completed++
	for k := range st.mustIn {
		if !st.A.HasKey(k) {
			return true // a deferral promise was never fulfilled
		}
	}
	for k := range st.mustOut {
		if st.A.HasKey(k) {
			return true // a negative assumption was violated
		}
	}
	if !logic.IsModel(s.rules, st.A) {
		return true
	}
	key := canonicalModelKey(st.A)
	if s.seen[key] {
		return true
	}
	s.stats.StabilityChecks++
	if !stableAgainstSubsets(s.db, s.rules, st.A) {
		s.stats.StabilityFailed++
		return true
	}
	s.seen[key] = true
	s.stats.ModelsEmitted++
	return s.visit(st.A.Clone())
}

// canonicalModelKey renders the model with nulls renamed by first
// occurrence in a null-masked atom ordering, so that models differing
// only in null invention order collapse. (This is a practical
// canonicalization, not a full graph canonization; see DESIGN.md.)
func canonicalModelKey(m *logic.FactStore) string {
	atoms := append([]logic.Atom(nil), m.Atoms()...)
	masked := make([]string, len(atoms))
	for i, a := range atoms {
		masked[i] = maskNulls(a)
	}
	idx := make([]int, len(atoms))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		if masked[idx[i]] != masked[idx[j]] {
			return masked[idx[i]] < masked[idx[j]]
		}
		return atoms[idx[i]].Key() < atoms[idx[j]].Key()
	})
	ren := map[string]string{}
	var parts []string
	for _, i := range idx {
		a := atoms[i]
		renamed := renameCanonical(a, ren)
		parts = append(parts, renamed.String())
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

func maskNulls(a logic.Atom) string {
	var b strings.Builder
	b.WriteString(a.Pred)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		if t.Kind == logic.Null {
			b.WriteByte('*')
		} else {
			b.WriteString(t.String())
		}
	}
	b.WriteByte(')')
	return b.String()
}

func renameCanonical(a logic.Atom, ren map[string]string) logic.Atom {
	args := make([]logic.Term, len(a.Args))
	for i, t := range a.Args {
		if t.Kind == logic.Null {
			n, ok := ren[t.Name]
			if !ok {
				n = "c" + strconv.Itoa(len(ren)+1)
				ren[t.Name] = n
			}
			args[i] = logic.N(n)
		} else {
			args[i] = t
		}
	}
	return logic.Atom{Pred: a.Pred, Args: args}
}

// IsStableModel checks Definition 1 directly for a candidate
// interpretation (given by its positive part): M must contain D, be a
// model of Σ, and admit no J with D ⊆ J ⊊ M⁺ satisfying the
// τ_{p▷s}-transform (checked via SAT; Proposition 11).
func IsStableModel(db *logic.FactStore, rules []*logic.Rule, m *logic.FactStore) bool {
	if !db.SubsetOf(m) {
		return false
	}
	if !logic.IsModel(rules, m) {
		return false
	}
	return stableAgainstSubsets(db, rules, m)
}

// Describe renders a model deterministically for tests and tools.
func Describe(m *logic.FactStore) string { return m.CanonicalString() }
